module vsgm

go 1.22
