package vsgm

// One benchmark per experiment table (E1-E10; see DESIGN.md Section 4 and
// EXPERIMENTS.md). Each benchmark regenerates its table's measurement at a
// bench-friendly scale; cmd/vsgm-bench prints the full tables.
//
// The simulations run under a virtual clock, so ns/op measures the CPU cost
// of regenerating the experiment, while the domain results (speedups, copy
// counts, view counts) are attached as custom benchmark metrics.

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"vsgm/internal/experiments"
)

func benchParams() experiments.Params {
	p := experiments.DefaultParams()
	p.Reps = 1
	return p
}

// cellFloat extracts a numeric cell from a table.
func cellFloat(tb testing.TB, t *experiments.Table, row, col int) float64 {
	tb.Helper()
	var f float64
	if _, err := fmt.Sscan(t.Rows[row][col], &f); err != nil {
		tb.Fatalf("parse cell %q: %v", t.Rows[row][col], err)
	}
	return f
}

func BenchmarkE1Reconfiguration(b *testing.B) {
	p := benchParams()
	var speedup float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.E1Reconfiguration([]int{8}, p)
		if err != nil {
			b.Fatal(err)
		}
		speedup = cellFloat(b, t, 0, 4)
	}
	b.ReportMetric(speedup, "speedup-vs-two-round")
}

func BenchmarkE2ControlMessages(b *testing.B) {
	p := benchParams()
	var syncs float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.E2ControlMessages([]int{8}, p)
		if err != nil {
			b.Fatal(err)
		}
		syncs = cellFloat(b, t, 0, 1)
	}
	b.ReportMetric(syncs, "sync-msgs/change")
}

func BenchmarkE3ObsoleteViews(b *testing.B) {
	p := benchParams()
	var eager, restart float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.E3ObsoleteViews([]int{4}, p)
		if err != nil {
			b.Fatal(err)
		}
		eager = cellFloat(b, t, 0, 1)
		restart = cellFloat(b, t, 0, 2)
	}
	b.ReportMetric(eager, "eager-views/member")
	b.ReportMetric(restart, "restart-views/member")
}

func BenchmarkE4Forwarding(b *testing.B) {
	p := benchParams()
	var simple, min float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.E4Forwarding([]int{10}, p)
		if err != nil {
			b.Fatal(err)
		}
		simple = cellFloat(b, t, 0, 3)
		min = cellFloat(b, t, 0, 5)
	}
	b.ReportMetric(simple, "simple-copies/missing")
	b.ReportMetric(min, "min-copies/missing")
}

func BenchmarkE5Multicast(b *testing.B) {
	p := benchParams()
	var wire float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.E5Multicast([]int{8}, p)
		if err != nil {
			b.Fatal(err)
		}
		wire = cellFloat(b, t, 0, 2)
	}
	b.ReportMetric(wire, "wire-msgs/multicast")
}

func BenchmarkE6BlockingTime(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E6BlockingTime([]int{8}, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7Recovery(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E7Recovery([]int{5}, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8MembershipScalability(b *testing.B) {
	p := benchParams()
	var clientServer, flat float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.E8MembershipScalability([]int{16}, []int{2}, p)
		if err != nil {
			b.Fatal(err)
		}
		clientServer = cellFloat(b, t, 0, 2)
		flat = cellFloat(b, t, 1, 2)
	}
	b.ReportMetric(clientServer, "client-server-msgs/change")
	b.ReportMetric(flat, "flat-msgs/change")
}

func BenchmarkE9SyncMsgSize(b *testing.B) {
	p := benchParams()
	var plain, small float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.E9SyncMessageSize([]int{8}, p)
		if err != nil {
			b.Fatal(err)
		}
		plain = cellFloat(b, t, 0, 2)
		small = cellFloat(b, t, 0, 3)
	}
	b.ReportMetric(plain, "bytes-plain")
	b.ReportMetric(small, "bytes-small-sync")
}

func BenchmarkE10TotalOrder(b *testing.B) {
	p := benchParams()
	var ratio float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.E10TotalOrder([]int{8}, p)
		if err != nil {
			b.Fatal(err)
		}
		ratio = cellFloat(b, t, 0, 3)
	}
	b.ReportMetric(ratio, "order-vs-fifo-latency")
}

func BenchmarkE11GarbageCollection(b *testing.B) {
	p := benchParams()
	var without, with float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.E11GarbageCollection([]int{0, 5}, p)
		if err != nil {
			b.Fatal(err)
		}
		without = cellFloat(b, t, 0, 1)
		with = cellFloat(b, t, 1, 1)
	}
	b.ReportMetric(without, "buffered-no-acks")
	b.ReportMetric(with, "buffered-with-acks")
}

func BenchmarkE12Hierarchy(b *testing.B) {
	p := benchParams()
	var ratio float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.E12Hierarchy([]int{16}, 4, p)
		if err != nil {
			b.Fatal(err)
		}
		ratio = cellFloat(b, t, 0, 3)
	}
	b.ReportMetric(ratio, "hier/flat-msg-ratio")
}

// Micro-benchmarks of the hot paths themselves (wall-clock, not simulated).

func BenchmarkMulticastHotPath(b *testing.B) {
	for _, n := range []int{4, 16, 32} {
		n := n
		b.Run(sizeName(n), func(b *testing.B) {
			c, err := NewCluster(ClusterConfig{
				Procs:   ProcIDs(n),
				Latency: FixedLatency(time.Millisecond),
				Seed:    1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := c.ReconfigureTo(NewProcSet(c.Procs()...)); err != nil {
				b.Fatal(err)
			}
			payload := []byte("benchmark-payload")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Send("p00", payload); err != nil {
					b.Fatal(err)
				}
				if i%64 == 63 {
					if err := c.Run(); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := c.Run(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkViewChangeHotPath(b *testing.B) {
	for _, n := range []int{4, 16} {
		n := n
		b.Run(sizeName(n), func(b *testing.B) {
			c, err := NewCluster(ClusterConfig{
				Procs:   ProcIDs(n),
				Latency: FixedLatency(time.Millisecond),
				Seed:    1,
			})
			if err != nil {
				b.Fatal(err)
			}
			all := NewProcSet(c.Procs()...)
			if _, _, err := c.ReconfigureTo(all); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := c.ReconfigureTo(all); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	return "N=" + strconv.Itoa(n)
}
