package vsgm_test

import (
	"fmt"
	"sort"

	"vsgm"
)

// The canonical three-liner: form a group, multicast, observe delivery
// everywhere. The cluster is deterministic, so the output is exact.
func Example() {
	cluster, err := vsgm.NewCluster(vsgm.ClusterConfig{Procs: vsgm.ProcIDs(3), Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	view, _, err := cluster.ReconfigureTo(vsgm.NewProcSet(cluster.Procs()...))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("installed:", view)

	if _, err := cluster.Send("p00", []byte("hello")); err != nil {
		fmt.Println(err)
		return
	}
	if err := cluster.Run(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("deliveries:", cluster.Metrics().Delivered)
	// Output:
	// installed: view<1 {p00, p01, p02}>
	// deliveries: 3
}

// Transitional sets across a partition merge: each side learns exactly who
// shares its history.
func ExampleCluster_partition() {
	var transitions []string
	cluster, err := vsgm.NewCluster(vsgm.ClusterConfig{
		Procs: vsgm.ProcIDs(4),
		Seed:  2,
		OnAppEvent: func(p vsgm.ProcID, ev vsgm.Event) {
			if ve, ok := ev.(vsgm.ViewEvent); ok && ve.View.ID == 4 {
				transitions = append(transitions,
					fmt.Sprintf("%s moved with %s", p, ve.TransitionalSet))
			}
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	procs := cluster.Procs()
	all := vsgm.NewProcSet(procs...)
	if _, _, err := cluster.ReconfigureTo(all); err != nil {
		fmt.Println(err)
		return
	}
	left := vsgm.NewProcSet(procs[0], procs[1])
	right := vsgm.NewProcSet(procs[2], procs[3])
	if _, err := cluster.Partition(left, right); err != nil {
		fmt.Println(err)
		return
	}
	cluster.HealConnectivity()
	if _, _, err := cluster.ReconfigureTo(all); err != nil {
		fmt.Println(err)
		return
	}
	sort.Strings(transitions)
	for _, line := range transitions {
		fmt.Println(line)
	}
	// Output:
	// p00 moved with {p00, p01}
	// p01 moved with {p00, p01}
	// p02 moved with {p02, p03}
	// p03 moved with {p02, p03}
}

// Virtual synchrony is checked mechanically: attach a specification suite
// and verify the whole execution.
func ExampleFullSuite() {
	suite := vsgm.FullSuite()
	cluster, err := vsgm.NewCluster(vsgm.ClusterConfig{
		Procs: vsgm.ProcIDs(3),
		Seed:  3,
		Suite: suite,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	view, _, err := cluster.ReconfigureTo(vsgm.NewProcSet(cluster.Procs()...))
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, p := range cluster.Procs() {
		if _, err := cluster.Send(p, []byte("x")); err != nil {
			fmt.Println(err)
			return
		}
	}
	if err := cluster.Run(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("safety:", suite.Err() == nil)
	fmt.Println("liveness:", vsgm.CheckLiveness(suite.Trace(), view) == nil)
	// Output:
	// safety: true
	// liveness: true
}
