GO ?= go

.PHONY: all build vet test short race fuzz bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# Trimmed run: randomized sweeps shrink, chaos soak tests are skipped.
short:
	$(GO) test -short ./...

# Race detector across every package (the live transport and chaos tests
# are the main customers, but nothing is exempt).
race:
	$(GO) test -race ./...

# Native fuzzing of the wire codec: malformed length prefixes and truncated
# payloads must error, never panic or over-allocate.
fuzz:
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=30s ./internal/wire/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# The pre-merge gate: vet, the full suite, and the race detector on the
# concurrency-heavy packages.
check: vet test
	$(GO) test -race ./internal/live/ ./cmd/vsgm-live/
