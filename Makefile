GO ?= go

.PHONY: all build vet test short race fuzz fuzz-smoke bench bench-smoke benchstat docs-check fsck-smoke kv-smoke detector-smoke soak soak-smoke check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# Trimmed run: randomized sweeps shrink, chaos soak tests are skipped.
short:
	$(GO) test -short ./...

# Race detector across every package (the live transport and chaos tests
# are the main customers, but nothing is exempt).
race:
	$(GO) test -race ./...

# Native fuzzing of the wire codec: malformed length prefixes and truncated
# payloads must error, never panic or over-allocate.
fuzz:
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=30s ./internal/wire/

# Quick fuzz pass over every wire-facing decoder (frames, raw bodies, WAL
# records): 5 seconds per target, run as part of the pre-merge gate.
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=5s ./internal/wire/
	$(GO) test -fuzz=FuzzUnmarshalFrame -fuzztime=5s ./internal/wire/
	$(GO) test -fuzz=FuzzDecodeWALRecord -fuzztime=5s ./internal/wire/
	$(GO) test -fuzz=FuzzScanWAL -fuzztime=5s ./internal/wire/
	$(GO) test -fuzz=FuzzDecodeCreditFrame -fuzztime=5s ./internal/wire/

# Every benchmark in the tree, including the transport data-path set
# (BenchmarkFabricBroadcast, BenchmarkWireMarshal, BenchmarkMsgBufGrowth).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Transport data-path benchmarks with regression tracking: run the set,
# save it as BENCH_new.txt, and compare against BENCH_baseline.txt with
# cmd/vsgm-benchstat (benchstat-style old/new/delta tables, JSON copy in
# BENCH_transport.json). The first run seeds the baseline; refresh it by
# deleting BENCH_baseline.txt.
BENCH_PATTERN = BenchmarkFabricBroadcast|BenchmarkSendUnderBackpressure|BenchmarkWireMarshal|BenchmarkMsgBufGrowth|BenchmarkLinkScale
BENCH_PKGS = ./internal/wire/ ./internal/live/ ./internal/core/

benchstat:
	$(GO) test -bench='$(BENCH_PATTERN)' -benchmem -count=2 -run=^$$ $(BENCH_PKGS) | tee BENCH_new.txt
	@if [ -f BENCH_baseline.txt ]; then \
		$(GO) run ./cmd/vsgm-benchstat -json BENCH_transport.json BENCH_baseline.txt BENCH_new.txt; \
	else \
		$(GO) run ./cmd/vsgm-benchstat -json BENCH_transport.json BENCH_new.txt; \
		cp BENCH_new.txt BENCH_baseline.txt; \
		echo "baseline seeded: BENCH_baseline.txt"; \
	fi

# Zero-copy regression guard for the pre-merge gate: one steady-state run of
# the link-scale receive benchmark per engine. benchLinkScale fails the run
# if the receive path exceeds its allocs/op ceiling — a payload copy (or a
# dropped buffer release) sneaking back into the hot path fails `make check`
# here rather than surfacing as a benchstat regression later.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkLinkScale/links=1000' -benchtime 100000x ./internal/live/

# Documentation gate: every intra-repo markdown link must resolve, every
# public flag of the operator-facing binaries must appear in
# docs/OPERATIONS.md, the vsgm_* metric catalogue must match the code in
# both directions, and docs/ARCHITECTURE.md must map every package.
docs-check:
	$(GO) run ./cmd/vsgm-docscheck

# WAL fsck/repair smoke: build a state directory, corrupt it, and drive
# cmd/vsgm-fsck through dry-run, repair, and a clean re-open.
fsck-smoke:
	$(GO) test -run TestFsckCLI -count=1 ./cmd/vsgm-fsck/

# Sharded-KV smoke for the pre-merge gate: a scripted multi-shard
# bring-up through cmd/vsgm-kv — writes and reads across shards, a slot
# reshard and a group reshard, crash/recover from the durable store,
# partition/heal, and the no-lost-acknowledged-writes verify. See
# docs/SHARDING.md.
kv-smoke:
	$(GO) test -run TestKVSmoke -count=1 ./cmd/vsgm-kv/

# Failure-detector smoke for the pre-merge gate: a seeded flapping-link
# soak slice that must stay within the bounded-churn budget with flap
# damping engaged, a seeded gray-failure slice whose one-way link breaks
# must reconcile symmetrically, and the client-side arbitrary-state
# scramble slice. Replay any failure with the VSGM_SEED the test logs.
detector-smoke:
	$(GO) test -run 'TestDetectorSmoke|TestLiveSoakClientScramble' -count=1 ./internal/soak/
	$(GO) test -run 'TestLiveGrayFailureAsymmetricPartition' -count=1 ./internal/live/

# Long-soak chaos harness (cmd/vsgm-soak): every mode — the small simulated
# cluster, the 10k-client sampled-checking world, the live TCP cluster, and
# the sharded KV with resharding under churn — under randomized adversarial
# phases with the spec suite attached. Each run
# logs its replay seed (override with SOAK_SEED or VSGM_SEED); on a
# violation the report artifact path is printed. See docs/TESTING.md
# ("Regime 7: long soak") and docs/OPERATIONS.md for the knobs.
SOAK_DURATION ?= 60s
SOAK_SEED ?= 0

soak:
	$(GO) run ./cmd/vsgm-soak -mode all -duration $(SOAK_DURATION) -seed $(SOAK_SEED)

# A ~30s taste of the same harness for the pre-merge gate: a few seconds of
# virtual time in each simulated mode plus a short live soak.
soak-smoke:
	$(GO) run ./cmd/vsgm-soak -mode sim -duration 2s -seed $(SOAK_SEED) -q
	$(GO) run ./cmd/vsgm-soak -mode world -duration 5s -seed $(SOAK_SEED) -q
	$(GO) run ./cmd/vsgm-soak -mode live -duration 15s -seed $(SOAK_SEED) -q

# The pre-merge gate: vet, the full suite, the race detector on the
# concurrency-heavy packages, a fuzz smoke pass over the decoders, the
# documentation gate, and a short soak.
check: vet test
	$(GO) test -race ./internal/live/ ./internal/membership/ ./cmd/vsgm-live/
	$(MAKE) fuzz-smoke
	$(MAKE) bench-smoke
	$(MAKE) docs-check
	$(MAKE) fsck-smoke
	$(MAKE) kv-smoke
	$(MAKE) detector-smoke
	$(MAKE) soak-smoke
