package vsgm_test

// Facade tests: the public API, exercised the way a downstream user would.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"vsgm"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	suite := vsgm.FullSuite()
	cluster, err := vsgm.NewCluster(vsgm.ClusterConfig{
		Procs: vsgm.ProcIDs(3),
		Seed:  5,
		Suite: suite,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := vsgm.NewProcSet(cluster.Procs()...)

	view, took, err := cluster.ReconfigureTo(all)
	if err != nil {
		t.Fatal(err)
	}
	if took <= 0 {
		t.Error("reconfiguration took no time")
	}
	for _, p := range cluster.Procs() {
		if _, err := cluster.Send(p, []byte("hi")); err != nil {
			t.Fatal(err)
		}
	}
	if err := cluster.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := cluster.Metrics().Delivered, int64(9); got != want {
		t.Errorf("delivered = %d, want %d", got, want)
	}
	if err := suite.Err(); err != nil {
		t.Fatalf("spec violations:\n%v", err)
	}
	if err := vsgm.CheckLiveness(suite.Trace(), view); err != nil {
		t.Errorf("liveness: %v", err)
	}
}

func TestPublicAPIStandaloneEndpoint(t *testing.T) {
	// An end-point wired by hand over a raw substrate: the integration a
	// user doing their own transport scheduling would write.
	net := vsgm.NewNetwork()
	ep, err := vsgm.NewEndpoint(vsgm.EndpointConfig{
		ID:        "solo",
		Transport: net.Handle("solo"),
		AutoBlock: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Send([]byte("note to self")); err != nil {
		t.Fatal(err)
	}
	evs := ep.TakeEvents()
	if len(evs) != 1 {
		t.Fatalf("events = %v", evs)
	}
	if _, ok := evs[0].(vsgm.DeliverEvent); !ok {
		t.Fatalf("event = %v, want delivery", evs[0])
	}
}

func TestPublicAPIBaselineNode(t *testing.T) {
	cluster, err := vsgm.NewCluster(vsgm.ClusterConfig{
		Procs:   vsgm.ProcIDs(3),
		Latency: vsgm.FixedLatency(5 * time.Millisecond),
		Seed:    9,
		NewNode: func(p vsgm.ProcID, idx int, tr vsgm.TransportHandle) (vsgm.Node, error) {
			return vsgm.NewTwoRoundNode(p, tr, int64(idx+1)*1_000_000)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	all := vsgm.NewProcSet(cluster.Procs()...)
	if _, _, err := cluster.ReconfigureTo(all); err != nil {
		t.Fatal(err)
	}
	for _, p := range cluster.Procs() {
		if got := cluster.Endpoint(p).CurrentView(); !got.Members.Equal(all) {
			t.Errorf("%s view = %s", p, got)
		}
	}
}

func TestPublicAPIBlockedError(t *testing.T) {
	cluster, err := vsgm.NewCluster(vsgm.ClusterConfig{
		Procs:       vsgm.ProcIDs(2),
		ManualBlock: true,
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := vsgm.NewProcSet(cluster.Procs()...)
	if err := cluster.StartChange(all); err != nil {
		t.Fatal(err)
	}
	if err := cluster.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Manual blocking: acknowledge, then sends are rejected until the view.
	for _, p := range cluster.Procs() {
		cluster.BlockOK(p)
	}
	if _, err := cluster.Send("p00", []byte("x")); !errors.Is(err, vsgm.ErrBlocked) {
		t.Fatalf("err = %v, want ErrBlocked", err)
	}
	if _, err := cluster.DeliverView(all); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Send("p00", []byte("x")); err != nil {
		t.Fatalf("send after view: %v", err)
	}
}

func TestPublicAPIReplicatedCounter(t *testing.T) {
	// A custom StateMachine through the facade: a replicated counter.
	machines := make(map[vsgm.ProcID]*counter)
	replicas := make(map[vsgm.ProcID]*vsgm.Replica)

	cluster, err := vsgm.NewCluster(vsgm.ClusterConfig{
		Procs: vsgm.ProcIDs(2),
		Seed:  6,
		OnAppEvent: func(p vsgm.ProcID, ev vsgm.Event) {
			if r := replicas[p]; r != nil {
				if err := r.HandleEvent(ev); err != nil {
					t.Errorf("replica %s: %v", p, err)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range cluster.Procs() {
		p := p
		m := &counter{}
		machines[p] = m
		replicas[p], err = vsgm.NewReplica(vsgm.ReplicaConfig{
			ID:        p,
			Machine:   counterMachine{m},
			Bootstrap: true,
			Send: func(b []byte) error {
				_, err := cluster.Send(p, b)
				return err
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	all := vsgm.NewProcSet(cluster.Procs()...)
	if _, _, err := cluster.ReconfigureTo(all); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := replicas[cluster.Procs()[i%2]].Propose([]byte("inc")); err != nil {
			t.Fatal(err)
		}
	}
	if err := cluster.Run(); err != nil {
		t.Fatal(err)
	}
	for _, p := range cluster.Procs() {
		if machines[p].n != 4 {
			t.Errorf("%s counter = %d, want 4", p, machines[p].n)
		}
	}
}

type counter struct{ n int }

type counterMachine struct{ c *counter }

func (m counterMachine) Apply(_ vsgm.ProcID, cmd []byte) {
	if string(cmd) == "inc" {
		m.c.n++
	}
}

func (m counterMachine) Snapshot() []byte { return []byte(fmt.Sprint(m.c.n)) }

func (m counterMachine) Restore(snap []byte) error {
	_, err := fmt.Sscan(string(snap), &m.c.n)
	return err
}

func TestPublicAPIModelChecking(t *testing.T) {
	// The explorer through the facade: every interleaving of a two-member
	// formation plus multicast satisfies the specifications.
	members := vsgm.NewProcSet("a", "b")
	scenario := func(w *vsgm.ExploreWorld) error {
		if err := w.StartChange(members); err != nil {
			return err
		}
		if _, err := w.DeliverView(members); err != nil {
			return err
		}
		if err := w.Drain(); err != nil {
			return err
		}
		if _, err := w.Send("a", []byte("checked")); err != nil {
			return err
		}
		return w.Drain()
	}
	res, err := vsgm.Exhaustive(vsgm.ExploreConfig{Procs: []vsgm.ProcID{"a", "b"}}, scenario, 2000)
	if err != nil {
		t.Fatalf("after %d schedules: %v", res.Schedules, err)
	}
	if res.Schedules == 0 {
		t.Fatal("nothing explored")
	}
}
