package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFullScenario(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-n", "4", "-msgs", "5", "-partition", "-crash", "-churn", "2", "-seed", "3",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{
		"forming group of 4",
		"merged back into",
		"recovered and rejoined",
		"all specification checkers passed",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunQuiescentScenarioChecksLiveness(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "3", "-msgs", "3", "-seed", "9"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "liveness (Property 4.2) holds") {
		t.Errorf("output missing liveness confirmation:\n%s", out.String())
	}
}

func TestRunEachLevel(t *testing.T) {
	for _, level := range []string{"wv", "vs", "gcs"} {
		var out bytes.Buffer
		if err := run([]string{"-n", "3", "-msgs", "2", "-level", level}, &out); err != nil {
			t.Errorf("level %s: %v", level, err)
		}
	}
	if err := run([]string{"-level", "bogus"}, new(bytes.Buffer)); err == nil {
		t.Error("bogus level accepted")
	}
}

func TestRunTraceDump(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "2", "-msgs", "1", "-trace"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "execution trace") || !strings.Contains(s, "mbrshp.start_change") {
		t.Errorf("trace dump missing:\n%s", s)
	}
}

func TestRunWithExtensionsEnabled(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-n", "6", "-msgs", "4", "-partition", "-churn", "1",
		"-ack", "2", "-hierarchy", "2", "-small-sync",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all specification checkers passed") {
		t.Errorf("output:\n%s", out.String())
	}
}
