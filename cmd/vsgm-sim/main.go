// Command vsgm-sim runs one deterministic whole-system scenario — group
// formation, steady-state traffic, optional partition/merge, churn, and
// crash/recovery — and verifies the execution against every specification
// checker. It prints a summary of the run.
//
// Usage:
//
//	vsgm-sim -n 5 -msgs 50 -partition -crash -seed 7
//	vsgm-sim -n 5 -reconfig-trace            # per-endpoint reconfiguration timelines
//	vsgm-sim -n 5 -debug-addr 127.0.0.1:8080 # live /metrics, /statusz, /tracez, pprof
//
// With -reconfig-trace every reconfiguration is stamped with a trace id and
// the run ends with per-endpoint timelines (start_change → sync → view) in
// virtual time; for a fixed seed the timelines are deterministic.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/obs"
	"vsgm/internal/sim"
	"vsgm/internal/spec"
	"vsgm/internal/types"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vsgm-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vsgm-sim", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 5, "number of end-points")
		msgs      = fs.Int("msgs", 20, "multicasts per member per phase")
		seed      = fs.Int64("seed", 1, "simulation seed")
		partition = fs.Bool("partition", false, "split the group in half and merge it back")
		crash     = fs.Bool("crash", false, "crash and recover one member")
		churn     = fs.Int("churn", 0, "number of cascading joins to inject")
		latency   = fs.Duration("latency", 10*time.Millisecond, "base link latency")
		jitter    = fs.Duration("jitter", 5*time.Millisecond, "link latency jitter (±)")
		level     = fs.String("level", "gcs", "automaton level: wv, vs, or gcs")
		verbose   = fs.Bool("v", false, "print every application event")
		trace     = fs.Bool("trace", false, "dump the full external-event trace at the end")
		ack       = fs.Int("ack", 0, "stability-ack interval (0 disables within-view GC)")
		hierarchy = fs.Int("hierarchy", 0, "two-tier sync hierarchy group size (0 = flat)")
		smallSync = fs.Bool("small-sync", false, "enable the §5.2.4 sync-message optimizations")
		reconfTr  = fs.Bool("reconfig-trace", false, "trace every reconfiguration and print per-endpoint timelines (virtual time)")
		debugAddr = fs.String("debug-addr", "", "serve /metrics, /statusz, /tracez and pprof on this address while the simulation runs (implies -reconfig-trace)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var lvl core.Level
	var suite *spec.Suite
	switch *level {
	case "wv":
		lvl, suite = core.LevelWV, spec.WVSuite(spec.WithTrace())
	case "vs":
		lvl, suite = core.LevelVS, spec.VSSuite(spec.WithTrace())
	case "gcs":
		lvl, suite = core.LevelGCS, spec.FullSuite(spec.WithTrace())
	default:
		return fmt.Errorf("unknown level %q (want wv, vs, or gcs)", *level)
	}

	total := *n + *churn
	cfg := sim.Config{
		Procs:              sim.ProcIDs(total),
		Level:              lvl,
		Latency:            sim.UniformLatency{Base: *latency, Jitter: *jitter},
		MembershipRound:    *latency,
		Seed:               *seed,
		Suite:              suite,
		AckInterval:        *ack,
		HierarchyGroupSize: *hierarchy,
		SmallSync:          *smallSync,
	}

	// Reconfiguration tracing reads the cluster's virtual clock, so timelines
	// and the view-change latency histogram are in simulated time and stay
	// deterministic for a fixed seed. The cluster is created below; the
	// tracer only consults the clock once events start flowing.
	var tracer *obs.Tracer
	var simNow func() time.Duration
	if *reconfTr || *debugAddr != "" {
		reg := obs.NewRegistry()
		tracer = obs.NewTracer(reg, obs.WithNow(func() time.Time {
			base := time.Unix(0, 0).UTC()
			if simNow == nil {
				return base
			}
			return base.Add(simNow())
		}))
		cfg.TraceFor = func(p types.ProcID) core.ProtocolTrace { return tracer.ForEndpoint(p) }
		if *debugAddr != "" {
			dbg, err := obs.ServeDebug(*debugAddr, reg, tracer)
			if err != nil {
				return fmt.Errorf("debug listener: %w", err)
			}
			defer dbg.Close()
			fmt.Fprintf(out, "debug listener on %s (/metrics /statusz /tracez /debug/pprof)\n", dbg.Addr())
		}
	}
	if *verbose {
		cfg.OnAppEvent = func(p types.ProcID, ev core.Event) {
			fmt.Fprintf(out, "  %s: %s\n", p, ev)
		}
	}
	c, err := sim.NewCluster(cfg)
	if err != nil {
		return err
	}
	simNow = c.Now
	procs := c.Procs()
	members := types.NewProcSet(procs[:*n]...)

	fmt.Fprintf(out, "forming group of %d (level %s, seed %d)\n", *n, lvl, *seed)
	v, d, err := c.ReconfigureTo(members)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  installed %s in %v\n", v, d)

	sendPhase := func(tag string, senders types.ProcSet) error {
		for i := 0; i < *msgs; i++ {
			for _, p := range senders.Sorted() {
				if _, err := c.Send(p, []byte(fmt.Sprintf("%s-%d", tag, i))); err != nil {
					return fmt.Errorf("send from %s: %w", p, err)
				}
			}
		}
		return c.Run()
	}
	if err := sendPhase("steady", members); err != nil {
		return err
	}
	fmt.Fprintf(out, "steady phase: %d messages delivered\n", c.Metrics().Delivered)

	if *partition {
		mid := *n / 2
		left := types.NewProcSet(procs[:mid]...)
		right := types.NewProcSet(procs[mid:*n]...)
		fmt.Fprintf(out, "partitioning %s | %s\n", left, right)
		if _, err := c.Partition(left, right); err != nil {
			return err
		}
		if err := sendPhase("partitioned", left); err != nil {
			return err
		}
		c.HealConnectivity()
		v, d, err := c.ReconfigureTo(members)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "merged back into %s in %v\n", v, d)
	}

	if *crash {
		victim := procs[*n-1]
		fmt.Fprintf(out, "crashing %s\n", victim)
		if err := c.Crash(victim); err != nil {
			return err
		}
		survivors := members.Minus(types.NewProcSet(victim))
		if _, _, err := c.ReconfigureTo(survivors); err != nil {
			return err
		}
		if err := sendPhase("degraded", survivors); err != nil {
			return err
		}
		if err := c.Recover(victim); err != nil {
			return err
		}
		v, d, err := c.ReconfigureTo(members)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "recovered and rejoined %s in %v\n", v, d)
	}

	final := members
	if *churn > 0 {
		fmt.Fprintf(out, "injecting %d cascading joins\n", *churn)
		for i := 1; i <= *churn; i++ {
			set := types.NewProcSet(procs[:*n+i]...)
			if err := c.StartChange(set); err != nil {
				return err
			}
			if _, err := c.DeliverView(set); err != nil {
				return err
			}
			final = set
		}
		if err := c.Run(); err != nil {
			return err
		}
		fmt.Fprintf(out, "  group stabilized at %d members; views installed in total: %d\n",
			final.Len(), c.Metrics().ViewInstalls)
	}

	stats := c.Network().Stats()
	fmt.Fprintf(out, "\nsummary after %v of virtual time:\n", c.Now())
	fmt.Fprintf(out, "  app multicasts: %d, deliveries: %d, views installed: %d\n",
		c.Metrics().Sent, c.Metrics().Delivered, c.Metrics().ViewInstalls)
	fmt.Fprintf(out, "  wire traffic: app=%d view=%d sync=%d fwd=%d (bytes=%d)\n",
		stats.Sent.App, stats.Sent.View, stats.Sent.Sync, stats.Sent.Fwd, stats.SentBytes)

	if err := suite.Err(); err != nil {
		return fmt.Errorf("SPECIFICATION VIOLATIONS:\n%w", err)
	}
	fmt.Fprintln(out, "  all specification checkers passed")

	if tracer != nil {
		fmt.Fprintln(out, "\nreconfiguration trace (virtual time):")
		tracer.RenderTimeline(out)
	}

	if *trace {
		fmt.Fprintf(out, "\nexecution trace (%d external events):\n%s",
			len(suite.Trace()), spec.RenderTrace(suite.Trace()))
	}

	if !*partition && !*crash {
		// In quiescent runs the final view is stable: check Property 4.2.
		finalView := c.Endpoint(final.Sorted()[0]).CurrentView()
		if err := spec.CheckLiveness(suite.Trace(), finalView); err != nil {
			return fmt.Errorf("liveness: %w", err)
		}
		fmt.Fprintln(out, "  liveness (Property 4.2) holds for the final view")
	}
	return nil
}
