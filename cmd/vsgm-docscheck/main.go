// Command vsgm-docscheck is the documentation gate run by `make docs-check`:
//
//   - every intra-repo link in the markdown files must resolve to a file
//     that exists (http/https/mailto links and pure #anchors are skipped);
//   - every public flag of cmd/vsgm-live, cmd/vsgm-soak, and cmd/vsgm-fsck
//     must be documented in docs/OPERATIONS.md (as `-flagname`), so the
//     operator's handbook cannot silently fall behind the binaries.
//
// It prints one line per violation and exits non-zero if any were found.
//
// Usage:
//
//	vsgm-docscheck            # check the repo rooted at the working directory
//	vsgm-docscheck -root dir  # check another checkout
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vsgm-docscheck:", err)
		os.Exit(1)
	}
}

// mdLink matches [text](target) while ignoring images by stripping the
// leading ! separately; targets with spaces are not used in this repo.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// flagDef matches the fs.Type("name", ...) flag definitions in a main.go.
var flagDef = regexp.MustCompile(`fs\.(?:Bool|Int|Int64|String|Duration|Float64)\(\s*"([^"]+)"`)

func run(args []string, out io.Writer) error {
	fsFlags := flag.NewFlagSet("vsgm-docscheck", flag.ContinueOnError)
	root := fsFlags.String("root", ".", "repository root to check")
	if err := fsFlags.Parse(args); err != nil {
		return err
	}

	mds, err := markdownFiles(*root)
	if err != nil {
		return err
	}
	var violations []string

	for _, md := range mds {
		data, err := os.ReadFile(md)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(*root, md)
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if skipLink(target) {
				continue
			}
			// Strip an anchor suffix; the file part must still exist.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				violations = append(violations, fmt.Sprintf("%s: broken link %q", rel, m[1]))
			}
		}
	}

	// The operator's handbook must cover every public flag of the operator-
	// facing binaries (the deployment driver and the soak harness).
	opsPath := filepath.Join(*root, "docs", "OPERATIONS.md")
	ops, err := os.ReadFile(opsPath)
	if err != nil {
		return fmt.Errorf("operator's handbook: %w", err)
	}
	for _, bin := range []string{"vsgm-live", "vsgm-soak", "vsgm-fsck"} {
		binMain, err := os.ReadFile(filepath.Join(*root, "cmd", bin, "main.go"))
		if err != nil {
			return err
		}
		for _, m := range flagDef.FindAllStringSubmatch(string(binMain), -1) {
			name := m[1]
			if !strings.Contains(string(ops), "`-"+name+"`") {
				violations = append(violations,
					fmt.Sprintf("docs/OPERATIONS.md: %s flag -%s is undocumented", bin, name))
			}
		}
	}

	if len(violations) > 0 {
		sort.Strings(violations)
		for _, v := range violations {
			fmt.Fprintln(out, v)
		}
		return fmt.Errorf("%d documentation violation(s)", len(violations))
	}
	fmt.Fprintf(out, "docs-check: %d markdown files, all links resolve, all vsgm-live, vsgm-soak, and vsgm-fsck flags documented\n", len(mds))
	return nil
}

// markdownFiles lists every tracked-looking .md file under root, skipping
// vendor-ish and hidden directories.
func markdownFiles(root string) ([]string, error) {
	var mds []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".md") {
			mds = append(mds, path)
		}
		return nil
	})
	sort.Strings(mds)
	return mds, err
}

// skipLink reports whether a link target is outside this checker's remit:
// external URLs, mail links, and in-page anchors.
func skipLink(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
