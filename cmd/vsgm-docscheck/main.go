// Command vsgm-docscheck is the documentation gate run by `make docs-check`:
//
//   - every intra-repo link in the markdown files must resolve to a file
//     that exists (http/https/mailto links and pure #anchors are skipped);
//   - every public flag of cmd/vsgm-live, cmd/vsgm-soak, cmd/vsgm-fsck,
//     cmd/vsgm-kv, and cmd/vsgm-bench must be documented in
//     docs/OPERATIONS.md (as `-flagname`), so the operator's handbook
//     cannot silently fall behind the binaries;
//   - the vsgm_* metric catalogue in docs/OPERATIONS.md and the metric
//     names registered in code must agree in BOTH directions: every metric
//     literal in non-test Go code must be documented (verbatim, or covered
//     by a documented family prefix ending in an underscore), and every
//     metric the handbook names must exist in code;
//   - docs/ARCHITECTURE.md must mention every internal/ package and cmd/
//     binary, so the map of the repo cannot rot as packages are added;
//   - README.md must link the architecture and sharding docs.
//
// It prints one line per violation and exits non-zero if any were found.
//
// Usage:
//
//	vsgm-docscheck            # check the repo rooted at the working directory
//	vsgm-docscheck -root dir  # check another checkout
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vsgm-docscheck:", err)
		os.Exit(1)
	}
}

// mdLink matches [text](target) while ignoring images by stripping the
// leading ! separately; targets with spaces are not used in this repo.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// flagDef matches the fs.Type("name", ...) flag definitions in a main.go.
var flagDef = regexp.MustCompile(`fs\.(?:Bool|Int|Int64|String|Duration|Float64)\(\s*"([^"]+)"`)

// metricLit matches quoted vsgm_* string literals in Go source. A literal
// with a trailing underscore is a family prefix used for filtering, not a
// registered metric.
var metricLit = regexp.MustCompile(`"(vsgm_[a-z0-9_]+)"`)

// metricTok matches vsgm_* tokens in markdown, including family prefixes.
var metricTok = regexp.MustCompile(`vsgm_[a-z0-9_]*`)

// opsBinaries are the binaries whose public flags docs/OPERATIONS.md must
// cover.
var opsBinaries = []string{"vsgm-live", "vsgm-soak", "vsgm-fsck", "vsgm-kv", "vsgm-bench"}

func run(args []string, out io.Writer) error {
	fsFlags := flag.NewFlagSet("vsgm-docscheck", flag.ContinueOnError)
	root := fsFlags.String("root", ".", "repository root to check")
	if err := fsFlags.Parse(args); err != nil {
		return err
	}

	mds, err := markdownFiles(*root)
	if err != nil {
		return err
	}
	var violations []string

	for _, md := range mds {
		data, err := os.ReadFile(md)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(*root, md)
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if skipLink(target) {
				continue
			}
			// Strip an anchor suffix; the file part must still exist.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				violations = append(violations, fmt.Sprintf("%s: broken link %q", rel, m[1]))
			}
		}
	}

	// The operator's handbook must cover every public flag of the operator-
	// facing binaries.
	opsPath := filepath.Join(*root, "docs", "OPERATIONS.md")
	ops, err := os.ReadFile(opsPath)
	if err != nil {
		return fmt.Errorf("operator's handbook: %w", err)
	}
	for _, bin := range opsBinaries {
		binMain, err := os.ReadFile(filepath.Join(*root, "cmd", bin, "main.go"))
		if err != nil {
			return err
		}
		for _, m := range flagDef.FindAllStringSubmatch(string(binMain), -1) {
			name := m[1]
			if !strings.Contains(string(ops), "`-"+name+"`") {
				violations = append(violations,
					fmt.Sprintf("docs/OPERATIONS.md: %s flag -%s is undocumented", bin, name))
			}
		}
	}

	violations = append(violations, checkMetrics(*root, string(ops))...)
	violations = append(violations, checkArchitecture(*root)...)
	violations = append(violations, checkReadmeLinks(*root)...)

	if len(violations) > 0 {
		sort.Strings(violations)
		for _, v := range violations {
			fmt.Fprintln(out, v)
		}
		return fmt.Errorf("%d documentation violation(s)", len(violations))
	}
	fmt.Fprintf(out, "docs-check: %d markdown files, all links resolve, all %s flags documented, metric catalogue bidirectionally consistent, architecture map complete\n",
		len(mds), strings.Join(opsBinaries, ", "))
	return nil
}

// checkMetrics verifies the vsgm_* metric catalogue in both directions:
// code metric -> documented (verbatim or by a documented family prefix),
// and documented metric -> exists in code (a documented family prefix must
// cover at least one code metric).
func checkMetrics(root, ops string) []string {
	metrics, err := codeMetrics(root)
	if err != nil {
		return []string{fmt.Sprintf("metric scan: %v", err)}
	}

	docTokens := map[string]bool{}
	for _, t := range metricTok.FindAllString(ops, -1) {
		docTokens[t] = true
	}
	var docFamilies []string
	for t := range docTokens {
		// The bare "vsgm_" namespace prefix appears in prose ("all metrics
		// are prefixed vsgm_"); it covers nothing, or the check is vacuous.
		if strings.HasSuffix(t, "_") && t != "vsgm_" {
			docFamilies = append(docFamilies, t)
		}
	}

	var violations []string
	for m := range metrics {
		if docTokens[m] {
			continue
		}
		covered := false
		for _, fam := range docFamilies {
			if strings.HasPrefix(m, fam) {
				covered = true
				break
			}
		}
		if !covered {
			violations = append(violations,
				fmt.Sprintf("docs/OPERATIONS.md: metric %s exists in code but is undocumented", m))
		}
	}
	for t := range docTokens {
		if t == "vsgm_" {
			continue
		}
		if strings.HasSuffix(t, "_") {
			matched := false
			for m := range metrics {
				if strings.HasPrefix(m, t) {
					matched = true
					break
				}
			}
			if !matched {
				violations = append(violations,
					fmt.Sprintf("docs/OPERATIONS.md: metric family %s* matches nothing in code", t))
			}
			continue
		}
		if !metrics[t] {
			violations = append(violations,
				fmt.Sprintf("docs/OPERATIONS.md: metric %s is documented but does not exist in code", t))
		}
	}
	return violations
}

// codeMetrics collects every vsgm_* metric-name literal from non-test Go
// files under internal/ and cmd/. Literals with a trailing underscore are
// family prefixes (used for filtering), not metrics.
func codeMetrics(root string) (map[string]bool, error) {
	metrics := map[string]bool{}
	for _, dir := range []string{"internal", "cmd"} {
		base := filepath.Join(root, dir)
		if _, err := os.Stat(base); err != nil {
			continue
		}
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
				return nil
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, m := range metricLit.FindAllStringSubmatch(string(data), -1) {
				if strings.HasSuffix(m[1], "_") {
					continue
				}
				metrics[m[1]] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return metrics, nil
}

// checkArchitecture verifies docs/ARCHITECTURE.md names every internal/
// package and cmd/ binary.
func checkArchitecture(root string) []string {
	arch, err := os.ReadFile(filepath.Join(root, "docs", "ARCHITECTURE.md"))
	if err != nil {
		return []string{fmt.Sprintf("docs/ARCHITECTURE.md: %v", err)}
	}
	var violations []string
	for _, dir := range []string{"internal", "cmd"} {
		entries, err := os.ReadDir(filepath.Join(root, dir))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			want := dir + "/" + e.Name()
			if !strings.Contains(string(arch), want) {
				violations = append(violations,
					fmt.Sprintf("docs/ARCHITECTURE.md: %s is not mentioned", want))
			}
		}
	}
	return violations
}

// checkReadmeLinks verifies the README links the navigability docs.
func checkReadmeLinks(root string) []string {
	readme, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		return []string{fmt.Sprintf("README.md: %v", err)}
	}
	var violations []string
	for _, want := range []string{"docs/ARCHITECTURE.md", "docs/SHARDING.md"} {
		if !strings.Contains(string(readme), want) {
			violations = append(violations,
				fmt.Sprintf("README.md: missing link to %s", want))
		}
	}
	return violations
}

// markdownFiles lists every tracked-looking .md file under root, skipping
// vendor-ish and hidden directories.
func markdownFiles(root string) ([]string, error) {
	var mds []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".md") {
			mds = append(mds, path)
		}
		return nil
	})
	sort.Strings(mds)
	return mds, err
}

// skipLink reports whether a link target is outside this checker's remit:
// external URLs, mail links, and in-page anchors.
func skipLink(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
