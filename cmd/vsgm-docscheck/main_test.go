package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a miniature repo for the checker.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const fakeLiveMain = `package main
func run() {
	a := fs.Int("servers", 2, "")
	b := fs.String("debug-addr", "", "")
}
`

const fakeSoakMain = `package main
func run() {
	a := fs.String("mode", "all", "")
	b := fs.Int64("seed", 0, "")
}
`

const fakeFsckMain = `package main
func run() {
	a := fs.String("dir", "", "")
	b := fs.Bool("json", false, "")
}
`

func TestDocsCheckPasses(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md":             "see [design](DESIGN.md) and [ops](docs/OPERATIONS.md#runbooks)",
		"DESIGN.md":             "back to [readme](README.md), external [paper](https://example.org/x), [anchor](#s1)",
		"docs/OPERATIONS.md":    "flags: `-servers`, `-debug-addr`, `-mode`, `-seed`, `-dir`, and `-json`",
		"cmd/vsgm-live/main.go": fakeLiveMain,
		"cmd/vsgm-soak/main.go": fakeSoakMain,
		"cmd/vsgm-fsck/main.go": fakeFsckMain,
	})
	var out bytes.Buffer
	if err := run([]string{"-root", root}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all links resolve") {
		t.Errorf("missing success line:\n%s", out.String())
	}
}

func TestDocsCheckFlagsBrokenLink(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md":             "see [missing](NOPE.md)",
		"docs/OPERATIONS.md":    "flags: `-servers`, `-debug-addr`, `-mode`, `-seed`, `-dir`, and `-json`",
		"cmd/vsgm-live/main.go": fakeLiveMain,
		"cmd/vsgm-soak/main.go": fakeSoakMain,
		"cmd/vsgm-fsck/main.go": fakeFsckMain,
	})
	var out bytes.Buffer
	err := run([]string{"-root", root}, &out)
	if err == nil {
		t.Fatalf("broken link accepted:\n%s", out.String())
	}
	if !strings.Contains(out.String(), `broken link "NOPE.md"`) {
		t.Errorf("missing violation line:\n%s", out.String())
	}
}

func TestDocsCheckFlagsUndocumentedFlag(t *testing.T) {
	root := writeTree(t, map[string]string{
		"docs/OPERATIONS.md":    "flags: `-servers`, `-mode`, and `-dir` only",
		"cmd/vsgm-live/main.go": fakeLiveMain,
		"cmd/vsgm-soak/main.go": fakeSoakMain,
		"cmd/vsgm-fsck/main.go": fakeFsckMain,
	})
	var out bytes.Buffer
	err := run([]string{"-root", root}, &out)
	if err == nil {
		t.Fatalf("undocumented flag accepted:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "vsgm-live flag -debug-addr is undocumented") {
		t.Errorf("missing vsgm-live violation line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "vsgm-soak flag -seed is undocumented") {
		t.Errorf("missing vsgm-soak violation line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "vsgm-fsck flag -json is undocumented") {
		t.Errorf("missing vsgm-fsck violation line:\n%s", out.String())
	}
}

// TestDocsCheckRealRepo runs the checker against this checkout, so a broken
// cross-reference fails the test suite even without the make target.
func TestDocsCheckRealRepo(t *testing.T) {
	root := "../.."
	if _, err := os.Stat(filepath.Join(root, "docs", "OPERATIONS.md")); err != nil {
		t.Skipf("no operator's handbook at %s", root)
	}
	var out bytes.Buffer
	if err := run([]string{"-root", root}, &out); err != nil {
		t.Errorf("repo docs check failed: %v\n%s", err, out.String())
	}
}
