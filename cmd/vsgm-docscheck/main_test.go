package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a miniature repo for the checker.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const fakeLiveMain = `package main
func run() {
	a := fs.Int("servers", 2, "")
	b := fs.String("debug-addr", "", "")
}
`

const fakeSoakMain = `package main
func run() {
	a := fs.String("mode", "all", "")
	b := fs.Int64("seed", 0, "")
}
`

const fakeFsckMain = `package main
func run() {
	a := fs.String("dir", "", "")
	b := fs.Bool("json", false, "")
}
`

const fakeKVMain = `package main
func run() {
	a := fs.Int("shards", 2, "")
}
`

const fakeBenchMain = `package main
func run() {
	a := fs.Bool("kv", false, "")
	b := fs.Float64("kv-read", 0.5, "")
}
`

// fakeMetrics registers one plainly named metric and one family member.
const fakeMetrics = `package obs
func wire() {
	reg.Counter("vsgm_server_attaches_total", "")
	reg.Counter("vsgm_link_dials_total", "")
	if strings.HasPrefix(name, "vsgm_link_") { // filter prefix, not a metric
	}
}
`

// goodTree is a complete miniature repo that passes every check.
func goodTree() map[string]string {
	return map[string]string{
		"README.md": "see [design](DESIGN.md), [arch](docs/ARCHITECTURE.md), [sharding](docs/SHARDING.md)",
		"DESIGN.md": "back to [readme](README.md), external [paper](https://example.org/x), [anchor](#s1)",
		"docs/OPERATIONS.md": "flags: `-servers`, `-debug-addr`, `-mode`, `-seed`, `-dir`, `-json`, `-shards`, `-kv`, `-kv-read`\n" +
			"metrics: vsgm_server_attaches_total and the vsgm_link_ family\n",
		"docs/ARCHITECTURE.md":       "packages: internal/obs; binaries: cmd/vsgm-live, cmd/vsgm-soak, cmd/vsgm-fsck, cmd/vsgm-kv, cmd/vsgm-bench, cmd/vsgm-docscheck",
		"docs/SHARDING.md":           "the sharding doc",
		"cmd/vsgm-live/main.go":      fakeLiveMain,
		"cmd/vsgm-soak/main.go":      fakeSoakMain,
		"cmd/vsgm-fsck/main.go":      fakeFsckMain,
		"cmd/vsgm-kv/main.go":        fakeKVMain,
		"cmd/vsgm-bench/main.go":     fakeBenchMain,
		"cmd/vsgm-docscheck/main.go": "package main\n",
		"internal/obs/metrics.go":    fakeMetrics,
	}
}

func TestDocsCheckPasses(t *testing.T) {
	root := writeTree(t, goodTree())
	var out bytes.Buffer
	if err := run([]string{"-root", root}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all links resolve") {
		t.Errorf("missing success line:\n%s", out.String())
	}
}

func TestDocsCheckFlagsBrokenLink(t *testing.T) {
	tree := goodTree()
	tree["README.md"] += "\nsee [missing](NOPE.md)"
	root := writeTree(t, tree)
	var out bytes.Buffer
	err := run([]string{"-root", root}, &out)
	if err == nil {
		t.Fatalf("broken link accepted:\n%s", out.String())
	}
	if !strings.Contains(out.String(), `broken link "NOPE.md"`) {
		t.Errorf("missing violation line:\n%s", out.String())
	}
}

func TestDocsCheckFlagsUndocumentedFlag(t *testing.T) {
	tree := goodTree()
	tree["docs/OPERATIONS.md"] = "flags: `-servers`, `-mode`, `-dir`, `-shards`, `-kv-read` only\n" +
		"metrics: vsgm_server_attaches_total and the vsgm_link_ family\n"
	root := writeTree(t, tree)
	var out bytes.Buffer
	err := run([]string{"-root", root}, &out)
	if err == nil {
		t.Fatalf("undocumented flag accepted:\n%s", out.String())
	}
	for _, want := range []string{
		"vsgm-live flag -debug-addr is undocumented",
		"vsgm-soak flag -seed is undocumented",
		"vsgm-fsck flag -json is undocumented",
		"vsgm-bench flag -kv is undocumented",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing violation %q:\n%s", want, out.String())
		}
	}
}

func TestDocsCheckMetricUndocumented(t *testing.T) {
	tree := goodTree()
	tree["internal/obs/metrics.go"] = strings.Replace(fakeMetrics,
		`reg.Counter("vsgm_server_attaches_total", "")`,
		`reg.Counter("vsgm_server_attaches_total", "")
	reg.Counter("vsgm_server_brand_new_total", "")`, 1)
	root := writeTree(t, tree)
	var out bytes.Buffer
	err := run([]string{"-root", root}, &out)
	if err == nil {
		t.Fatalf("undocumented metric accepted:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "metric vsgm_server_brand_new_total exists in code but is undocumented") {
		t.Errorf("missing metric violation:\n%s", out.String())
	}
}

func TestDocsCheckMetricFamilyCoversMembers(t *testing.T) {
	// vsgm_link_dials_total is not documented verbatim, but the documented
	// vsgm_link_ family prefix covers it — no violation.
	root := writeTree(t, goodTree())
	var out bytes.Buffer
	if err := run([]string{"-root", root}, &out); err != nil {
		t.Fatalf("family-covered metric flagged: %v\n%s", err, out.String())
	}
}

func TestDocsCheckMetricStaleInDocs(t *testing.T) {
	tree := goodTree()
	tree["docs/OPERATIONS.md"] += "stale: vsgm_server_removed_total and the vsgm_ghost_ family\n"
	root := writeTree(t, tree)
	var out bytes.Buffer
	err := run([]string{"-root", root}, &out)
	if err == nil {
		t.Fatalf("stale doc metric accepted:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "metric vsgm_server_removed_total is documented but does not exist in code") {
		t.Errorf("missing stale-metric violation:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "metric family vsgm_ghost_* matches nothing in code") {
		t.Errorf("missing stale-family violation:\n%s", out.String())
	}
}

func TestDocsCheckArchitectureCoverage(t *testing.T) {
	tree := goodTree()
	tree["internal/newpkg/newpkg.go"] = "package newpkg\n"
	root := writeTree(t, tree)
	var out bytes.Buffer
	err := run([]string{"-root", root}, &out)
	if err == nil {
		t.Fatalf("unmapped package accepted:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "internal/newpkg is not mentioned") {
		t.Errorf("missing architecture violation:\n%s", out.String())
	}
}

func TestDocsCheckReadmeMustLinkNavDocs(t *testing.T) {
	tree := goodTree()
	tree["README.md"] = "see [design](DESIGN.md) only"
	root := writeTree(t, tree)
	var out bytes.Buffer
	err := run([]string{"-root", root}, &out)
	if err == nil {
		t.Fatalf("README without nav links accepted:\n%s", out.String())
	}
	for _, want := range []string{"missing link to docs/ARCHITECTURE.md", "missing link to docs/SHARDING.md"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing README violation %q:\n%s", want, out.String())
		}
	}
}

// TestDocsCheckRealRepo runs the checker against this checkout, so a broken
// cross-reference fails the test suite even without the make target.
func TestDocsCheckRealRepo(t *testing.T) {
	root := "../.."
	if _, err := os.Stat(filepath.Join(root, "docs", "OPERATIONS.md")); err != nil {
		t.Skipf("no operator's handbook at %s", root)
	}
	var out bytes.Buffer
	if err := run([]string{"-root", root}, &out); err != nil {
		t.Errorf("repo docs check failed: %v\n%s", err, out.String())
	}
}
