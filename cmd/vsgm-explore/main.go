// Command vsgm-explore runs the stateless model checker: it enumerates (or
// randomly swarms over) the message and membership-notification
// interleavings of a reconfiguration scenario and validates every schedule
// against all specification checkers.
//
// Usage:
//
//	vsgm-explore -n 2 -max 200000            # DFS over the schedule tree
//	vsgm-explore -n 3 -swarm 5000 -seed 9    # random swarm
//	vsgm-explore -n 3 -leave                 # a member leaves mid-traffic
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"vsgm/internal/explore"
	"vsgm/internal/sim"
	"vsgm/internal/types"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vsgm-explore:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vsgm-explore", flag.ContinueOnError)
	var (
		n     = fs.Int("n", 2, "number of end-points")
		max   = fs.Int("max", 100_000, "DFS schedule budget")
		swarm = fs.Int("swarm", 0, "run this many random schedules instead of DFS")
		seed  = fs.Int64("seed", 1, "swarm seed")
		leave = fs.Bool("leave", false, "one member leaves in the explored change")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 {
		return fmt.Errorf("need at least 2 end-points")
	}

	procs := sim.ProcIDs(*n)
	members := types.NewProcSet(procs...)
	survivors := members.Clone()
	if *leave {
		survivors.Remove(procs[*n-1])
	}

	scenario := func(w *explore.World) error {
		if err := w.StartChange(members); err != nil {
			return err
		}
		if _, err := w.DeliverView(members); err != nil {
			return err
		}
		if err := w.Drain(); err != nil {
			return err
		}
		for _, p := range members.Sorted() {
			if _, err := w.Send(p, []byte("m-"+string(p))); err != nil {
				return err
			}
		}
		if err := w.StartChange(survivors); err != nil {
			return err
		}
		v, err := w.DeliverView(survivors)
		if err != nil {
			return err
		}
		if err := w.Drain(); err != nil {
			return err
		}
		for _, p := range survivors.Sorted() {
			if got := w.Endpoint(p).CurrentView(); !got.Equal(v) {
				return fmt.Errorf("%s stabilized in %s, want %s", p, got, v)
			}
		}
		return nil
	}

	cfg := explore.Config{Procs: procs}
	start := time.Now()
	var (
		res explore.Result
		err error
	)
	if *swarm > 0 {
		fmt.Fprintf(out, "swarming %d random schedules over %d end-points (leave=%v, seed=%d)\n",
			*swarm, *n, *leave, *seed)
		res, err = explore.Swarm(cfg, scenario, *swarm, *seed)
	} else {
		fmt.Fprintf(out, "exploring schedules depth-first over %d end-points (leave=%v, budget %d)\n",
			*n, *leave, *max)
		res, err = explore.Exhaustive(cfg, scenario, *max)
	}
	if err != nil {
		return fmt.Errorf("VIOLATION after %d schedules:\n%w", res.Schedules, err)
	}
	fmt.Fprintf(out, "%d schedules verified in %v", res.Schedules, time.Since(start).Round(time.Millisecond))
	if res.Exhausted {
		fmt.Fprintf(out, " — schedule tree exhausted: every interleaving satisfies the specifications")
	}
	fmt.Fprintln(out)
	return nil
}
