package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDFS(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "2", "-max", "500"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "schedules verified") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunSwarmWithLeave(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "3", "-swarm", "100", "-leave"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "100 schedules verified") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunRejectsTinyGroups(t *testing.T) {
	if err := run([]string{"-n", "1"}, new(bytes.Buffer)); err == nil {
		t.Fatal("n=1 accepted")
	}
}
