package main

import (
	"bytes"
	"strings"
	"testing"
)

func runScript(t *testing.T, args []string, script string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, strings.NewReader(script), &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	return out.String()
}

// TestKVSmoke is the `make kv-smoke` target: one scripted pass over every
// command family — routed writes and reads, both reshard kinds, crash and
// recovery, partition and heal — ending in the full verification pass.
func TestKVSmoke(t *testing.T) {
	out := runScript(t, []string{"-shards", "2", "-slots", "16", "-seed", "7"}, `
set color blue
set fruit mango
set city lisbon
get color
where color
map
reshard slots 0 3 0 1
reshard group 1 s1-p01 s1-p03 s1-p04
set after reshard
get after
crash 0 s0-p01
set during crash
recover 0 s0-p01
partition 0 s0-p00 s0-p02 | s0-p01
set split brain
heal 0
del fruit
get fruit
stats
verify
quit
`)
	for _, want := range []string{
		`color = "blue"`,
		"map epoch now 2",      // slot move bumps 1 -> 2
		"map epoch now 3",      // group move bumps 2 -> 3
		`after = "reshard"`,    // writes land after resharding
		"recovered from its store (synced=true)",
		"fruit is unset",       // delete observed
		"all specification checkers pass",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("smoke output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "! ") {
		t.Errorf("smoke script hit an error:\n%s", out)
	}
}

func TestKVRoutedSetGet(t *testing.T) {
	out := runScript(t, []string{"-shards", "3", "-slots", "16"}, `
set alpha 1
set beta 2
set gamma 3
get alpha
get beta
get gamma
verify
quit
`)
	for _, want := range []string{`alpha = "1"`, `beta = "2"`, `gamma = "3"`, "all specification checkers pass"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestKVSlotReshardMovesData(t *testing.T) {
	// Move every slot of shard 0 except the last one it owns, then verify
	// the acknowledged writes survive wherever they landed.
	out := runScript(t, []string{"-shards", "2", "-slots", "8"}, `
set k0 a
set k1 b
set k2 c
reshard slots 0 2 0 1
get k0
get k1
get k2
verify
quit
`)
	for _, want := range []string{`k0 = "a"`, `k1 = "b"`, `k2 = "c"`, "acknowledged writes intact"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestKVErrorsAreReportedNotFatal(t *testing.T) {
	out := runScript(t, []string{"-shards", "2"}, `
get
bogus
crash 9 s9-p00
reshard slots 0 99 0 1
quit
`)
	for _, want := range []string{"usage: get <key>", "unknown command", "no shard 9", "aborted"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing error %q:\n%s", want, out)
		}
	}
}
