package main

import (
	"bytes"
	"strings"
	"testing"
)

func runScript(t *testing.T, n int, script string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(n, strings.NewReader(script), &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	return out.String()
}

func TestKVSetGetAcrossReplicas(t *testing.T) {
	out := runScript(t, 3, `
set p00 color blue
get p02 color
dump
check
quit
`)
	if !strings.Contains(out, `color = "blue"`) {
		t.Errorf("read-your-writes across replicas failed:\n%s", out)
	}
	if !strings.Contains(out, "all specification checkers pass") {
		t.Errorf("spec check missing:\n%s", out)
	}
}

func TestKVPartitionDivergeAndHeal(t *testing.T) {
	out := runScript(t, 3, `
set p00 base v0
partition p00 | p01 p02
set p00 left yes
set p01 right yes
heal
dump
check
quit
`)
	// After the merge, all replicas show the same fingerprint (the first
	// snapshot in total order wins deterministically).
	lines := strings.Split(out, "\n")
	var fps []string
	for _, line := range lines {
		for _, p := range []string{"p00: ", "p01: ", "p02: "} {
			if i := strings.Index(line, p); i >= 0 {
				fps = append(fps, line[i+len(p):])
			}
		}
	}
	if len(fps) < 3 {
		t.Fatalf("dump incomplete:\n%s", out)
	}
	last3 := fps[len(fps)-3:]
	if last3[0] != last3[1] || last3[1] != last3[2] {
		t.Errorf("replicas diverged after heal: %v\n%s", last3, out)
	}
	if !strings.Contains(last3[0], "base=v0") {
		t.Errorf("pre-partition state lost: %v", last3)
	}
}

func TestKVCrashRecoverStateTransfer(t *testing.T) {
	out := runScript(t, 3, `
set p00 k v
crash p02
set p00 during down
recover p02
get p02 during
dump
check
quit
`)
	if !strings.Contains(out, "synced=true") {
		t.Errorf("recovered replica did not sync:\n%s", out)
	}
	if !strings.Contains(out, `during = "down"`) {
		t.Errorf("state transfer missed a write made while down:\n%s", out)
	}
}

func TestKVErrorsAreReportedNotFatal(t *testing.T) {
	out := runScript(t, 2, `
set ghost k v
bogus
crash p00
crash p01
quit
`)
	for _, want := range []string{"no live replica ghost", "unknown command", "cannot crash the last replica"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing error %q:\n%s", want, out)
		}
	}
}
