// Command vsgm-kv is an interactive sharded, replicated key-value store: a
// multi-shard deployment (internal/shard) where each shard is its own
// virtually synchronous replica group, a hash-slot map routes every key, and
// live resharding moves whole groups or slot ranges while the store keeps
// serving — the paper's client-server architecture scaled out, hands on.
//
// The REPL is a client (writes route by key hash through the shard map,
// wrong-shard requests redirect) and an operator console (reshard, crash,
// recover, partition, heal) in one:
//
//	vsgm-kv -shards 2 -replicas 3
//	> set color blue                       # routed by hash(color)
//	> get color
//	> map                                  # the committed shard map
//	> reshard slots 0 7 0 1                # hand slots [0,7] from shard 0 to 1
//	> reshard group 1 s1-p00 s1-p03 s1-p04 # re-home shard 1's replica group
//	> crash 0 s0-p01 / recover 0 s0-p01
//	> partition 1 s1-p00 s1-p01 | s1-p02   # split one shard's network
//	> heal 1
//	> verify                               # spec suites + no-lost-acked-writes
//	> quit
//
// Commands can also be piped on stdin for scripted runs.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"vsgm/internal/shard"
	"vsgm/internal/types"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vsgm-kv:", err)
		os.Exit(1)
	}
}

// console bundles the sharded world with the routing client driving it.
// desired tracks each shard's intended membership — the set heal restores,
// maintained across crash, recover, and group reshards.
type console struct {
	w       *shard.World
	router  *shard.Router
	out     io.Writer
	nextID  int
	desired map[int]types.ProcSet
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("vsgm-kv", flag.ContinueOnError)
	var (
		shards   = fs.Int("shards", 2, "number of shards (each its own replica group)")
		replicas = fs.Int("replicas", 3, "replicas per shard group")
		spares   = fs.Int("spares", 2, "spare processes per shard (reshard targets)")
		slots    = fs.Int("slots", shard.DefaultSlots, "hash slots in the shard map")
		seed     = fs.Int64("seed", 1, "simulation seed")
		stateDir = fs.String("state-dir", "", "durable store root (empty = in-memory stores)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	w, err := shard.NewWorld(shard.WorldConfig{
		Shards:   *shards,
		Replicas: *replicas,
		Spares:   *spares,
		Slots:    *slots,
		Seed:     *seed,
		StateDir: *stateDir,
	})
	if err != nil {
		return err
	}
	c := &console{w: w, router: shard.NewRouter(w, 0), out: out, desired: make(map[int]types.ProcSet)}
	for _, id := range w.ShardIDs() {
		c.desired[id] = w.Group(id)
	}
	m := w.CommittedMap()
	fmt.Fprintf(out, "sharded store up: %d shards x %d replicas, %d slots, map epoch %d (try 'help')\n",
		len(m.Groups), *replicas, len(m.Slots), m.Epoch)

	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if err := c.exec(line); err != nil {
			fmt.Fprintf(out, "! %v\n", err)
		}
	}
}

func (c *console) exec(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "help":
		fmt.Fprint(c.out, `commands:
  set <key> <value>                write, routed by key hash through the shard map
  get <key>                        read from the key's shard
  del <key>                        delete, routed like set
  where <key>                      show the key's slot and owning shard
  map                              print the committed shard map
  stats                            router and per-shard metrics
  reshard group <shard> <procs..>  re-home a shard onto a new replica group
  reshard slots <lo> <hi> <s> <d>  hand a slot range from shard s to shard d
  crash <shard> <proc>             crash one replica (survivors reconfigure)
  recover <shard> <proc>           cold-restart it from its store and rejoin
  partition <shard> <ids> | <ids>  split one shard's network + membership
  heal <shard>                     reconnect and merge that shard
  verify                           spec suites + no-lost-acknowledged-writes
  quit
`)
		return nil

	case "set":
		if len(fields) != 3 {
			return errors.New("usage: set <key> <value>")
		}
		if err := c.router.Set(fields[1], fields[2]); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "%s = %q acknowledged by shard %d\n",
			fields[1], fields[2], c.w.CommittedMap().ShardForKey(fields[1]))
		return nil

	case "get":
		if len(fields) != 2 {
			return errors.New("usage: get <key>")
		}
		v, found, err := c.router.Get(fields[1])
		if err != nil {
			return err
		}
		if found {
			fmt.Fprintf(c.out, "%s = %q\n", fields[1], v)
		} else {
			fmt.Fprintf(c.out, "%s is unset\n", fields[1])
		}
		return nil

	case "del":
		if len(fields) != 2 {
			return errors.New("usage: del <key>")
		}
		if err := c.router.Del(fields[1]); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "%s deleted\n", fields[1])
		return nil

	case "where":
		if len(fields) != 2 {
			return errors.New("usage: where <key>")
		}
		m := c.w.CommittedMap()
		fmt.Fprintf(c.out, "%s: slot %d, shard %d, group %s\n",
			fields[1], m.SlotOf(fields[1]), m.ShardForKey(fields[1]),
			c.w.Group(m.ShardForKey(fields[1])))
		return nil

	case "map":
		m := c.w.CommittedMap()
		fmt.Fprintf(c.out, "epoch %d, %d slots\n", m.Epoch, len(m.Slots))
		for _, id := range m.ShardIDs() {
			owned := m.SlotsOwned(id)
			fmt.Fprintf(c.out, "  shard %d: %d slots %s, group %s\n",
				id, len(owned), slotRanges(owned), c.w.Group(id))
		}
		return nil

	case "stats":
		fmt.Fprintf(c.out, "router: epoch %d, %d redirects, %d map refreshes\n",
			c.router.Epoch(), c.router.Redirects(), c.router.Refreshes())
		fmt.Fprintf(c.out, "acknowledged writes: %d\n", len(c.w.Acks()))
		for _, s := range c.w.Registry().Snapshot().Samples {
			if !strings.HasPrefix(s.Name, "vsgm_shard_") {
				continue
			}
			label := ""
			for _, l := range s.Labels {
				label += fmt.Sprintf("{%s=%s}", l.Key, l.Value)
			}
			fmt.Fprintf(c.out, "  %s%s = %g\n", s.Name, label, s.Value)
		}
		return nil

	case "reshard":
		return c.reshard(fields[1:])

	case "crash":
		id, p, err := c.shardProc(fields, "crash")
		if err != nil {
			return err
		}
		if c.w.Group(id).Len() <= 1 {
			return errors.New("cannot crash the shard's last replica")
		}
		if err := c.w.CrashReplica(id, p); err != nil {
			return err
		}
		c.desired[id].Remove(p)
		fmt.Fprintf(c.out, "shard %d: %s crashed; group now %s\n", id, p, c.w.Group(id))
		return nil

	case "recover":
		id, p, err := c.shardProc(fields, "recover")
		if err != nil {
			return err
		}
		if err := c.w.RecoverReplica(id, p); err != nil {
			return err
		}
		c.desired[id].Add(p)
		if err := c.w.ReconfigureShard(id, c.desired[id]); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "shard %d: %s recovered from its store (synced=%v); group now %s\n",
			id, p, c.w.Replica(id, p).Synced(), c.w.Group(id))
		return nil

	case "partition":
		if len(fields) < 4 {
			return errors.New("usage: partition <shard> <ids> | <ids>")
		}
		id, err := c.shardID(fields[1])
		if err != nil {
			return err
		}
		rest := strings.Join(fields[2:], " ")
		halves := strings.Split(rest, "|")
		if len(halves) != 2 {
			return errors.New("usage: partition <shard> <ids> | <ids>")
		}
		sides := make([]types.ProcSet, 2)
		for i, half := range halves {
			sides[i] = types.NewProcSet()
			for _, raw := range strings.Fields(half) {
				sides[i].Add(types.ProcID(raw))
			}
			if sides[i].Len() == 0 {
				return errors.New("empty side")
			}
		}
		if err := c.w.PartitionShard(id, sides[0], sides[1]); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "shard %d partitioned %s | %s (serving side: %s)\n",
			id, sides[0], sides[1], c.w.Group(id))
		return nil

	case "heal":
		if len(fields) != 2 {
			return errors.New("usage: heal <shard>")
		}
		id, err := c.shardID(fields[1])
		if err != nil {
			return err
		}
		if err := c.w.HealShard(id, c.desired[id]); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "shard %d merged into %s\n", id, c.w.Group(id))
		return nil

	case "verify":
		if err := c.w.Check(); err != nil {
			return err
		}
		if err := c.w.VerifyAcked(); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "all specification checkers pass; %d acknowledged writes intact\n", len(c.w.Acks()))
		return nil

	default:
		return fmt.Errorf("unknown command %q (try 'help')", fields[0])
	}
}

// reshard parses and drives one resharding, printing each protocol step as
// it completes so the state-machine progression is visible.
func (c *console) reshard(args []string) error {
	if len(args) < 1 {
		return errors.New("usage: reshard group|slots ...")
	}
	var prop shard.Reshard
	switch args[0] {
	case "group":
		if len(args) < 3 {
			return errors.New("usage: reshard group <shard> <procs...>")
		}
		id, err := c.shardID(args[1])
		if err != nil {
			return err
		}
		group := make([]types.ProcID, 0, len(args)-2)
		for _, raw := range args[2:] {
			group = append(group, types.ProcID(raw))
		}
		prop = shard.Reshard{ID: c.mintID(), Kind: shard.MoveGroup, Shard: id, NewGroup: group}
	case "slots":
		if len(args) != 5 {
			return errors.New("usage: reshard slots <lo> <hi> <src> <dst>")
		}
		lo, err1 := strconv.Atoi(args[1])
		hi, err2 := strconv.Atoi(args[2])
		if err1 != nil || err2 != nil {
			return errors.New("slot bounds must be integers")
		}
		src, err := c.shardID(args[3])
		if err != nil {
			return err
		}
		dst, err := c.shardID(args[4])
		if err != nil {
			return err
		}
		prop = shard.Reshard{ID: c.mintID(), Kind: shard.MoveSlots, Shard: src, Dst: dst, SlotLo: lo, SlotHi: hi}
	default:
		return fmt.Errorf("unknown reshard kind %q (want group or slots)", args[0])
	}

	rs := shard.NewResharder(c.w, prop)
	for {
		step := rs.StepName()
		done, err := rs.Step()
		if err != nil {
			return fmt.Errorf("reshard %s aborted at step %s: %w", prop.ID, step, err)
		}
		fmt.Fprintf(c.out, "  [%s] %s done\n", prop.ID, step)
		if done {
			break
		}
	}
	if prop.Kind == shard.MoveGroup {
		c.desired[prop.Shard] = types.NewProcSet(prop.NewGroup...)
	}
	m := c.w.CommittedMap()
	fmt.Fprintf(c.out, "reshard %s committed; map epoch now %d\n", prop.ID, m.Epoch)
	return nil
}

func (c *console) mintID() string {
	c.nextID++
	return fmt.Sprintf("cli-%d", c.nextID)
}

func (c *console) shardID(raw string) (int, error) {
	id, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad shard id %q", raw)
	}
	for _, s := range c.w.ShardIDs() {
		if s == id {
			return id, nil
		}
	}
	return 0, fmt.Errorf("no shard %d", id)
}

func (c *console) shardProc(fields []string, verb string) (int, types.ProcID, error) {
	if len(fields) != 3 {
		return 0, "", fmt.Errorf("usage: %s <shard> <proc>", verb)
	}
	id, err := c.shardID(fields[1])
	if err != nil {
		return 0, "", err
	}
	return id, types.ProcID(fields[2]), nil
}

// slotRanges renders a sorted slot list as compact inclusive ranges.
func slotRanges(slots []int) string {
	if len(slots) == 0 {
		return "[]"
	}
	var b strings.Builder
	b.WriteByte('[')
	lo := slots[0]
	prev := slots[0]
	flush := func() {
		if b.Len() > 1 {
			b.WriteByte(' ')
		}
		if lo == prev {
			fmt.Fprintf(&b, "%d", lo)
		} else {
			fmt.Fprintf(&b, "%d-%d", lo, prev)
		}
	}
	for _, s := range slots[1:] {
		if s == prev+1 {
			prev = s
			continue
		}
		flush()
		lo, prev = s, s
	}
	flush()
	b.WriteByte(']')
	return b.String()
}
