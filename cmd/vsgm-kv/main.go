// Command vsgm-kv is an interactive replicated key-value store running on
// the virtually synchronous service inside the deterministic simulator: a
// REPL where you write through any replica, partition and heal the network,
// crash and recover members, and watch state transfer and convergence
// happen — the paper's motivating application, hands on.
//
// Usage:
//
//	vsgm-kv -n 3
//	> set p00 color blue        # propose through p00
//	> get p01 color             # read p01's local state
//	> partition p00 | p01 p02   # split the network + membership
//	> set p00 side left         # divergent updates
//	> heal                      # merge; deterministic state adoption
//	> dump                      # every replica's full state
//	> crash p02 / recover p02
//	> quit
//
// Commands can also be piped on stdin for scripted runs.
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"vsgm/internal/core"
	"vsgm/internal/rsm"
	"vsgm/internal/sim"
	"vsgm/internal/spec"
	"vsgm/internal/types"
)

func main() {
	n := 3
	if len(os.Args) == 3 && os.Args[1] == "-n" {
		fmt.Sscan(os.Args[2], &n)
	}
	if err := run(n, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vsgm-kv:", err)
		os.Exit(1)
	}
}

// world bundles the cluster with its replicas.
type world struct {
	c        *sim.Cluster
	suite    *spec.Suite
	replicas map[types.ProcID]*rsm.Replica
	stores   map[types.ProcID]*rsm.KVStore
	alive    types.ProcSet
	out      io.Writer
}

func run(n int, in io.Reader, out io.Writer) error {
	if n < 1 {
		return fmt.Errorf("need at least one replica")
	}
	w := &world{
		suite:    spec.FullSuite(),
		replicas: make(map[types.ProcID]*rsm.Replica),
		stores:   make(map[types.ProcID]*rsm.KVStore),
		out:      out,
	}
	cluster, err := sim.NewCluster(sim.Config{
		Procs: sim.ProcIDs(n),
		Seed:  1,
		Suite: w.suite,
		OnAppEvent: func(p types.ProcID, ev core.Event) {
			if r := w.replicas[p]; r != nil {
				if err := r.HandleEvent(ev); err != nil {
					fmt.Fprintf(out, "! replica %s: %v\n", p, err)
				}
			}
		},
	})
	if err != nil {
		return err
	}
	w.c = cluster
	w.alive = types.NewProcSet(cluster.Procs()...)
	for _, p := range cluster.Procs() {
		p := p
		store := rsm.NewKVStore()
		replica, err := rsm.NewReplica(rsm.Config{
			ID:        p,
			Machine:   store,
			Bootstrap: true,
			Send: func(b []byte) error {
				_, err := cluster.Send(p, b)
				return err
			},
		})
		if err != nil {
			return err
		}
		w.replicas[p] = replica
		w.stores[p] = store
	}
	if _, _, err := cluster.ReconfigureTo(w.alive); err != nil {
		return err
	}
	fmt.Fprintf(out, "replicated store up: %s (try 'help')\n", w.alive)

	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if err := w.exec(line); err != nil {
			fmt.Fprintf(out, "! %v\n", err)
		}
	}
}

func (w *world) exec(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "help":
		fmt.Fprint(w.out, `commands:
  set <replica> <key> <value>   propose a write through a replica
  del <replica> <key>           propose a delete
  get <replica> <key>           read a replica's local state
  dump                          print every live replica's state
  view                          print every live replica's current view
  partition <ids> | <ids>       split network + membership into two sides
  heal                          reconnect and merge into one view
  crash <replica>               crash a member (survivors reconfigure)
  recover <replica>             recover a member (rejoins the group)
  check                         run the specification checkers
  quit
`)
		return nil

	case "set", "del":
		want := 4
		if fields[0] == "del" {
			want = 3
		}
		if len(fields) != want {
			return fmt.Errorf("usage: %s <replica> <key> [value]", fields[0])
		}
		p := types.ProcID(fields[1])
		r, ok := w.replicas[p]
		if !ok || !w.alive.Contains(p) {
			return fmt.Errorf("no live replica %s", p)
		}
		var cmd []byte
		if fields[0] == "set" {
			cmd = rsm.EncodeSet(fields[2], fields[3])
		} else {
			cmd = rsm.EncodeDel(fields[2])
		}
		if err := r.Propose(cmd); err != nil {
			return err
		}
		return w.c.Run()

	case "get":
		if len(fields) != 3 {
			return fmt.Errorf("usage: get <replica> <key>")
		}
		p := types.ProcID(fields[1])
		store, ok := w.stores[p]
		if !ok {
			return fmt.Errorf("no replica %s", p)
		}
		if v, ok := store.Get(fields[2]); ok {
			fmt.Fprintf(w.out, "%s = %q\n", fields[2], v)
		} else {
			fmt.Fprintf(w.out, "%s is unset\n", fields[2])
		}
		return nil

	case "dump":
		for _, p := range w.alive.Sorted() {
			fmt.Fprintf(w.out, "  %s: %s\n", p, w.stores[p].Fingerprint())
		}
		return nil

	case "view":
		for _, p := range w.alive.Sorted() {
			fmt.Fprintf(w.out, "  %s: %s\n", p, w.c.Endpoint(p).CurrentView())
		}
		return nil

	case "partition":
		rest := strings.Join(fields[1:], " ")
		halves := strings.Split(rest, "|")
		if len(halves) != 2 {
			return fmt.Errorf("usage: partition <ids> | <ids>")
		}
		sides := make([]types.ProcSet, 2)
		for i, half := range halves {
			sides[i] = types.NewProcSet()
			for _, id := range strings.Fields(half) {
				p := types.ProcID(id)
				if !w.alive.Contains(p) {
					return fmt.Errorf("no live replica %s", p)
				}
				sides[i].Add(p)
			}
			if sides[i].Len() == 0 {
				return fmt.Errorf("empty side")
			}
		}
		if _, err := w.c.Partition(sides[0], sides[1]); err != nil {
			return err
		}
		fmt.Fprintf(w.out, "partitioned %s | %s\n", sides[0], sides[1])
		return nil

	case "heal":
		w.c.HealConnectivity()
		if _, _, err := w.c.ReconfigureTo(w.alive); err != nil {
			return err
		}
		fmt.Fprintf(w.out, "merged into %s\n", w.c.Endpoint(w.alive.Min()).CurrentView())
		return nil

	case "crash":
		if len(fields) != 2 {
			return fmt.Errorf("usage: crash <replica>")
		}
		p := types.ProcID(fields[1])
		if !w.alive.Contains(p) {
			return fmt.Errorf("no live replica %s", p)
		}
		if w.alive.Len() == 1 {
			return fmt.Errorf("cannot crash the last replica")
		}
		if err := w.c.Crash(p); err != nil {
			return err
		}
		w.alive.Remove(p)
		if _, _, err := w.c.ReconfigureTo(w.alive); err != nil {
			return err
		}
		fmt.Fprintf(w.out, "%s crashed; group now %s\n", p, w.alive)
		return nil

	case "recover":
		if len(fields) != 2 {
			return fmt.Errorf("usage: recover <replica>")
		}
		p := types.ProcID(fields[1])
		if w.alive.Contains(p) {
			return fmt.Errorf("%s is already live", p)
		}
		if err := w.c.Recover(p); err != nil {
			return err
		}
		// The recovered replica restarts with empty state; re-wire a fresh
		// unsynced replica and let the transitional set drive its transfer.
		store := rsm.NewKVStore()
		replica, err := rsm.NewReplica(rsm.Config{
			ID:      p,
			Machine: store,
			Send: func(b []byte) error {
				_, err := w.c.Send(p, b)
				return err
			},
		})
		if err != nil {
			return err
		}
		w.replicas[p] = replica
		w.stores[p] = store
		w.alive.Add(p)
		if _, _, err := w.c.ReconfigureTo(w.alive); err != nil {
			return err
		}
		if err := w.c.Run(); err != nil {
			return err
		}
		fmt.Fprintf(w.out, "%s recovered (synced=%v); group now %s\n",
			p, replica.Synced(), w.alive)
		return nil

	case "check":
		if err := w.suite.Err(); err != nil {
			return err
		}
		fmt.Fprintln(w.out, "all specification checkers pass")
		return nil

	default:
		return fmt.Errorf("unknown command %q (try 'help')", fields[0])
	}
}
