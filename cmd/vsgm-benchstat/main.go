// Command vsgm-benchstat summarizes and compares `go test -bench` output
// without external tooling. With one input file it prints per-benchmark
// means across repeated counts; with two it prints an old/new comparison
// with deltas, benchstat-style, plus a geomean row per metric.
//
// Usage:
//
//	go test -bench=. -benchmem -count=2 ./... | tee BENCH_new.txt
//	vsgm-benchstat BENCH_new.txt
//	vsgm-benchstat BENCH_baseline.txt BENCH_new.txt
//	vsgm-benchstat -json BENCH_transport.json BENCH_baseline.txt BENCH_new.txt
//
// The -json flag additionally writes the summarized numbers to a file, for
// BENCH_*.json regression tracking.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vsgm-benchstat:", err)
		os.Exit(1)
	}
}

// metrics maps a unit ("ns/op", "B/op", "allocs/op", "MB/s") to the mean of
// its samples for one benchmark.
type metrics map[string]float64

// benchFile is one parsed `go test -bench` output: benchmark name (with the
// trailing -GOMAXPROCS stripped) to averaged metrics, plus the name order of
// first appearance.
type benchFile struct {
	order []string
	bench map[string]metrics
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads `go test -bench` output, averaging repeated counts of
// the same benchmark.
func parseBench(r io.Reader) (*benchFile, error) {
	f := &benchFile{bench: make(map[string]metrics)}
	counts := make(map[string]map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		// fields[1] is the iteration count; the rest are value/unit pairs.
		m := f.bench[name]
		if m == nil {
			m = make(metrics)
			f.bench[name] = m
			counts[name] = make(map[string]int)
			f.order = append(f.order, name)
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			n := counts[name][unit]
			m[unit] = (m[unit]*float64(n) + v) / float64(n+1) // running mean
			counts[name][unit] = n + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(f.order) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return f, nil
}

func parseBenchPath(path string) (*benchFile, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	bf, err := parseBench(fd)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return bf, nil
}

// units lists every metric unit present, in a stable, conventional order.
func units(files ...*benchFile) []string {
	rank := map[string]int{"ns/op": 0, "B/op": 1, "allocs/op": 2, "MB/s": 3}
	seen := make(map[string]bool)
	var out []string
	for _, f := range files {
		for _, m := range f.bench {
			for u := range m {
				if !seen[u] {
					seen[u] = true
					out = append(out, u)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ri, iOK := rank[out[i]]
		rj, jOK := rank[out[j]]
		switch {
		case iOK && jOK:
			return ri < rj
		case iOK != jOK:
			return iOK
		default:
			return out[i] < out[j]
		}
	})
	return out
}

func fmtVal(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', 0, 64)
	case math.Abs(v) >= 100:
		return strconv.FormatFloat(v, 'f', 1, 64)
	default:
		return strconv.FormatFloat(v, 'f', 3, 64)
	}
}

// fmtDelta renders the old→new change. For MB/s higher is better, for
// everything else lower is better; the sign convention is benchstat's
// (negative = improvement for costs).
func fmtDelta(old, new float64) string {
	if old == 0 {
		return "?"
	}
	return fmt.Sprintf("%+.2f%%", (new-old)/old*100)
}

// summarize prints one file's averaged metrics.
func summarize(w io.Writer, f *benchFile) {
	for _, u := range units(f) {
		fmt.Fprintf(w, "metric: %s\n", u)
		tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
		var logSum float64
		var logN int
		for _, name := range f.order {
			v, ok := f.bench[name][u]
			if !ok {
				continue
			}
			fmt.Fprintf(tw, "  %s\t%s\n", name, fmtVal(v))
			if v > 0 {
				logSum += math.Log(v)
				logN++
			}
		}
		if logN > 1 {
			fmt.Fprintf(tw, "  geomean\t%s\n", fmtVal(math.Exp(logSum/float64(logN))))
		}
		tw.Flush()
	}
}

// compare prints an old/new/delta table per metric for benchmarks present
// in both files.
func compare(w io.Writer, old, new *benchFile) {
	for _, u := range units(old, new) {
		fmt.Fprintf(w, "metric: %s\n", u)
		tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
		fmt.Fprintf(tw, "  \told\tnew\tdelta\n")
		var logSum float64
		var logN int
		for _, name := range new.order {
			nv, nok := new.bench[name][u]
			ov, ook := old.bench[name][u]
			if !nok || !ook {
				continue
			}
			fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\n", name, fmtVal(ov), fmtVal(nv), fmtDelta(ov, nv))
			if ov > 0 && nv > 0 {
				logSum += math.Log(nv / ov)
				logN++
			}
		}
		if logN > 1 {
			fmt.Fprintf(tw, "  geomean\t\t\t%+.2f%%\n", (math.Exp(logSum/float64(logN))-1)*100)
		}
		tw.Flush()
	}
}

// jsonReport is the -json output shape: per benchmark, the averaged metrics
// (and, when comparing, the old values and relative deltas).
type jsonReport struct {
	Benchmarks []jsonBench `json:"benchmarks"`
}

type jsonBench struct {
	Name    string             `json:"name"`
	Metrics metrics            `json:"metrics"`
	Old     metrics            `json:"old,omitempty"`
	Delta   map[string]float64 `json:"delta,omitempty"` // (new-old)/old
}

func report(old, new *benchFile) jsonReport {
	var rep jsonReport
	for _, name := range new.order {
		jb := jsonBench{Name: name, Metrics: new.bench[name]}
		if old != nil {
			if om, ok := old.bench[name]; ok {
				jb.Old = om
				jb.Delta = make(map[string]float64)
				for u, nv := range new.bench[name] {
					if ov, ok := om[u]; ok && ov != 0 {
						jb.Delta[u] = (nv - ov) / ov
					}
				}
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, jb)
	}
	return rep
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vsgm-benchstat", flag.ContinueOnError)
	jsonPath := fs.String("json", "", "also write the summary as JSON to this file")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var old, new *benchFile
	switch fs.NArg() {
	case 1:
		bf, err := parseBenchPath(fs.Arg(0))
		if err != nil {
			return err
		}
		new = bf
		summarize(out, new)
	case 2:
		var err error
		if old, err = parseBenchPath(fs.Arg(0)); err != nil {
			return err
		}
		if new, err = parseBenchPath(fs.Arg(1)); err != nil {
			return err
		}
		compare(out, old, new)
	default:
		return fmt.Errorf("usage: vsgm-benchstat [-json file] bench.txt | old.txt new.txt")
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(report(old, new), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
