package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOld = `goos: linux
goarch: amd64
pkg: vsgm/internal/live
BenchmarkFabricBroadcast/fanout-8/encode-once-4     100000	 4000 ns/op	 800 B/op	 20 allocs/op
BenchmarkFabricBroadcast/fanout-8/encode-once-4     100000	 2000 ns/op	 600 B/op	 20 allocs/op
BenchmarkWireMarshal/append-pooled-4               5000000	  400 ns/op	  32 B/op	  1 allocs/op
PASS
`

const sampleNew = `BenchmarkFabricBroadcast/fanout-8/encode-once-4     200000	 1500 ns/op	 350 B/op	 5 allocs/op
BenchmarkWireMarshal/append-pooled-4               6000000	  200 ns/op	  32 B/op	  1 allocs/op
`

func TestParseBenchAveragesCounts(t *testing.T) {
	bf, err := parseBench(strings.NewReader(sampleOld))
	if err != nil {
		t.Fatal(err)
	}
	if len(bf.order) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(bf.order), bf.order)
	}
	name := "BenchmarkFabricBroadcast/fanout-8/encode-once"
	m, ok := bf.bench[name]
	if !ok {
		t.Fatalf("missing %s (GOMAXPROCS suffix not stripped?): %v", name, bf.order)
	}
	// Two counts of 4000 and 2000 ns/op average to 3000.
	if got := m["ns/op"]; got != 3000 {
		t.Fatalf("ns/op mean = %v, want 3000", got)
	}
	if got := m["B/op"]; got != 700 {
		t.Fatalf("B/op mean = %v, want 700", got)
	}
	if got := m["allocs/op"]; got != 20 {
		t.Fatalf("allocs/op mean = %v, want 20", got)
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok  \tvsgm\t0.1s\n")); err == nil {
		t.Fatal("want error for input with no benchmark lines")
	}
}

func TestRunSummarizesSingleFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(path, []byte(sampleOld), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"metric: ns/op", "metric: allocs/op", "encode-once", "3000", "geomean"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q:\n%s", want, text)
		}
	}
}

func TestRunComparesTwoFilesWithJSON(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.txt")
	newPath := filepath.Join(dir, "new.txt")
	jsonPath := filepath.Join(dir, "out.json")
	if err := os.WriteFile(oldPath, []byte(sampleOld), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(sampleNew), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-json", jsonPath, oldPath, newPath}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	// 3000 → 1500 ns/op is -50%; 20 → 5 allocs/op is -75%.
	for _, want := range []string{"old", "new", "delta", "-50.00%", "-75.00%"} {
		if !strings.Contains(text, want) {
			t.Errorf("comparison missing %q:\n%s", want, text)
		}
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, data)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("JSON has %d benchmarks, want 2", len(rep.Benchmarks))
	}
	bb := rep.Benchmarks[0]
	if bb.Name != "BenchmarkFabricBroadcast/fanout-8/encode-once" {
		t.Fatalf("unexpected first benchmark %q", bb.Name)
	}
	if got := bb.Metrics["ns/op"]; got != 1500 {
		t.Fatalf("JSON new ns/op = %v, want 1500", got)
	}
	if got := bb.Old["ns/op"]; got != 3000 {
		t.Fatalf("JSON old ns/op = %v, want 3000", got)
	}
	if got := bb.Delta["ns/op"]; math.Abs(got+0.5) > 1e-9 {
		t.Fatalf("JSON ns/op delta = %v, want -0.5", got)
	}
}

func TestRunUsageError(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("want usage error with no arguments")
	}
}
