// Command vsgm-soak runs the long-soak chaos harness (internal/soak): the
// simulated cluster, the large-population sampled-checking world, or the
// live TCP cluster — each under randomized, scheduled adversarial phases
// with the executable specification suite attached throughout.
//
// Usage:
//
//	vsgm-soak -mode sim -duration 5s -seed 7
//	vsgm-soak -mode world -clients 10000 -sample 100 -duration 10s
//	vsgm-soak -mode live -servers 3 -clients 6 -duration 60s
//	vsgm-soak -mode shard -shards 3 -scenario reshard-under-churn
//	vsgm-soak -mode all -duration 30s       # one soak of each kind
//
// Every run logs its replay seed; rerun with -seed (or VSGM_SEED) to replay
// the identical chaos schedule. On a violation the full report — replay
// seed, chaos schedule, violations, and the reconfiguration trace timeline
// — is written to the -report path (a temp-dir default otherwise) and the
// path is printed. -force-violation demonstrates that pipeline end to end.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"vsgm/internal/randseed"
	"vsgm/internal/soak"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vsgm-soak:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vsgm-soak", flag.ContinueOnError)
	var (
		mode     = fs.String("mode", "sim", "soak to run: sim, world, live, shard, or all")
		duration = fs.Duration("duration", 0, "soak duration (0 = each mode's default; virtual time for sim/world, wall time for live)")
		seed     = fs.Int64("seed", 0, "replay seed (0 = auto; VSGM_SEED overrides)")
		procs    = fs.Int("procs", 0, "sim: number of end-points (0 = default)")
		servers  = fs.Int("servers", 0, "world/live: number of membership servers (0 = default)")
		clients  = fs.Int("clients", 0, "world/live: number of clients (0 = default)")
		sample   = fs.Int("sample", 0, "world: check every k-th endpoint (0 = default, 1 = all)")
		shards   = fs.Int("shards", 0, "shard: number of shards (0 = default)")
		scenario = fs.String("scenario", "", "named scenario mix (default: the mode's own)")
		churn    = fs.Int("churn-budget", 0, "live: max membership views per client per chaos transition, checked over the whole run (0 = default, negative disables)")
		report   = fs.String("report", "", "write the report here (default: only on violation, to a temp path)")
		force    = fs.Bool("force-violation", false, "inject a fabricated violation to demonstrate the report pipeline")
		quiet    = fs.Bool("q", false, "suppress per-phase progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Seed resolution: an explicit -seed wins, then VSGM_SEED, then the
	// clock. Whatever is chosen is logged so the run replays.
	runSeed := *seed
	if runSeed == 0 {
		runSeed, _ = randseed.Pick(time.Now().UnixNano())
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(out, format+"\n", args...)
	}
	progress := logf
	if *quiet {
		progress = nil
	}

	var scen *soak.Scenario
	if *scenario != "" {
		var err error
		if scen, err = soak.ScenarioByName(*scenario); err != nil {
			return err
		}
	}

	modes := []string{*mode}
	if *mode == "all" {
		modes = []string{"sim", "world", "live", "shard"}
	}
	failed := false
	for _, m := range modes {
		var (
			rep *soak.Report
			err error
		)
		logf("soak %s: seed %d (replay with -seed %d or %s=%d)", m, runSeed, runSeed, randseed.EnvVar, runSeed)
		switch m {
		case "sim":
			rep, err = soak.RunSim(soak.SimConfig{
				Duration: *duration, Seed: runSeed, Procs: *procs,
				Scenario: scen, ForceViolation: *force, Log: progress,
			})
		case "world":
			rep, err = soak.RunWorld(soak.WorldConfig{
				Duration: *duration, Seed: runSeed, Servers: *servers,
				Clients: *clients, SampleEvery: *sample,
				Scenario: scen, ForceViolation: *force, Log: progress,
			})
		case "live":
			rep, err = soak.RunLive(soak.LiveConfig{
				Duration: *duration, Seed: runSeed, Servers: *servers,
				Clients: *clients, ChurnBudget: *churn,
				Scenario: scen, ForceViolation: *force, Log: progress,
			})
		case "shard":
			rep, err = soak.RunShard(soak.ShardConfig{
				Duration: *duration, Seed: runSeed, Shards: *shards,
				Scenario: scen, Log: progress,
			})
		default:
			return fmt.Errorf("unknown mode %q (want sim, world, live, shard, or all)", m)
		}
		if err != nil {
			return fmt.Errorf("soak %s: %w", m, err)
		}
		fmt.Fprint(out, rep.Render())
		if path := reportPath(*report, len(modes) > 1, runSeed, rep); path != "" {
			if werr := rep.WriteFile(path); werr != nil {
				return fmt.Errorf("soak %s: write report: %w", m, werr)
			}
			fmt.Fprintf(out, "report written to %s\n", path)
		}
		if !rep.OK() {
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("invariant violations detected (see report above; replay with -seed %d)", runSeed)
	}
	return nil
}

// reportPath decides where (and whether) to persist the report: an explicit
// -report path always persists; otherwise only violated runs do, to a
// deterministic temp-dir artifact named after the mode and replay seed.
func reportPath(explicit string, multi bool, seed int64, rep *soak.Report) string {
	if explicit != "" {
		if multi { // -mode all: one artifact per mode
			return explicit + "." + rep.Mode
		}
		return explicit
	}
	if rep.OK() {
		return ""
	}
	return filepath.Join(os.TempDir(), fmt.Sprintf("vsgm-soak-%s-seed%d.report", rep.Mode, seed))
}
