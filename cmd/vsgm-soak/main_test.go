package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSimSoakSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mode", "sim", "-duration", "200ms", "-seed", "7", "-q"}, &buf); err != nil {
		t.Fatalf("sim soak failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "seed 7") {
		t.Fatalf("output does not log the replay seed:\n%s", out)
	}
	if !strings.Contains(out, "PASS") {
		t.Fatalf("output does not report a clean run:\n%s", out)
	}
}

func TestRunForcedViolationWritesReport(t *testing.T) {
	report := filepath.Join(t.TempDir(), "soak.report")
	var buf bytes.Buffer
	err := run([]string{
		"-mode", "sim", "-duration", "100ms", "-seed", "7",
		"-force-violation", "-report", report, "-q",
	}, &buf)
	if err == nil {
		t.Fatalf("forced violation did not fail the run:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), report) {
		t.Fatalf("violation output does not print the report path:\n%s", buf.String())
	}
	b, rerr := os.ReadFile(report)
	if rerr != nil {
		t.Fatalf("report artifact missing: %v", rerr)
	}
	for _, want := range []string{"seed", "7"} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("report lacks %q:\n%s", want, b)
		}
	}
}

func TestRunRejectsUnknownMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mode", "bogus"}, &buf); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
