package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunLiveDeployment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-servers", "2", "-clients", "3", "-msgs", "3"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"group", "formed", "delivered 9 messages", "done"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunLiveWithLeave(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-servers", "1", "-clients", "3", "-msgs", "2", "-leave"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "survivors installed") {
		t.Errorf("output missing departure phase:\n%s", out.String())
	}
}

func TestRunLiveWithPartition(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-servers", "2", "-clients", "4", "-msgs", "2", "-partition"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"partitioning servers",
		"partition observed",
		"healed: group reconverged",
		"transport counters:",
		"drops=",
		"done",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunLiveKillAndRestartServer(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-servers", "2", "-clients", "4", "-msgs", "2",
		"-kill-server", "0", "-restart-server",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"killing s00 mid-deployment",
		"failed over to",
		"failover complete",
		"post-failover traffic delivered",
		"recovered",
		"from its WAL",
		"rejoined the server group",
		"node stats:",
		`"failovers":1`,
		"done",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunLiveSlowClientEviction(t *testing.T) {
	var out bytes.Buffer
	// Each sender must outrun the credit window (4) for the laggard's
	// exhaustion to cross the grace and trigger the slow-consumer report.
	err := run([]string{
		"-servers", "2", "-clients", "4", "-msgs", "8",
		"-slow-client", "3", "-window", "4", "-slow-delay", "400ms",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"throttling c003",
		"credit window 4",
		"evicted for overload",
		"survivors installed",
		"sends blocked en route",
		"creditsGranted=",
		"windowExhausted=",
		"done",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunLiveValidatesFlags(t *testing.T) {
	if err := run([]string{"-clients", "0"}, new(bytes.Buffer)); err == nil {
		t.Fatal("zero clients accepted")
	}
	if err := run([]string{"-servers", "1", "-partition"}, new(bytes.Buffer)); err == nil {
		t.Fatal("-partition with one server accepted")
	}
	if err := run([]string{"-servers", "1", "-clients", "2", "-kill-server", "0"}, new(bytes.Buffer)); err == nil {
		t.Fatal("-kill-server with one server accepted")
	}
	if err := run([]string{"-restart-server"}, new(bytes.Buffer)); err == nil {
		t.Fatal("-restart-server without -kill-server accepted")
	}
	if err := run([]string{"-servers", "2", "-kill-server", "5"}, new(bytes.Buffer)); err == nil {
		t.Fatal("out-of-range -kill-server accepted")
	}
	if err := run([]string{"-servers", "2", "-kill-server", "0", "-leave"}, new(bytes.Buffer)); err == nil {
		t.Fatal("-kill-server combined with -leave accepted")
	}
	if err := run([]string{"-servers", "2", "-clients", "3", "-slow-client", "7"}, new(bytes.Buffer)); err == nil {
		t.Fatal("out-of-range -slow-client accepted")
	}
	if err := run([]string{"-servers", "2", "-clients", "4", "-slow-client", "0", "-partition"}, new(bytes.Buffer)); err == nil {
		t.Fatal("-slow-client combined with -partition accepted")
	}
}
