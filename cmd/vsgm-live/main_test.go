package main

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// gateWriter lets the debug-listener test read run's output while the run is
// still producing it, and parks the run on its first write containing gate —
// a loopback deployment finishes in milliseconds, so without the gate the
// listener would be closed before the test could scrape it.
type gateWriter struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	gate    string
	reached chan struct{} // closed when gate first appears
	release chan struct{} // writes block after the gate until Release
	relOnce sync.Once
	gated   bool
}

// Release unparks a writer blocked on the gate; safe to call repeatedly.
func (w *gateWriter) Release() { w.relOnce.Do(func() { close(w.release) }) }

func newGateWriter(gate string) *gateWriter {
	return &gateWriter{gate: gate, reached: make(chan struct{}), release: make(chan struct{})}
}

func (w *gateWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	n, err := w.buf.Write(p)
	hit := !w.gated && strings.Contains(string(p), w.gate)
	if hit {
		w.gated = true
	}
	w.mu.Unlock()
	if hit {
		close(w.reached)
		<-w.release
	}
	return n, err
}

func (w *gateWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func TestRunLiveDeployment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-servers", "2", "-clients", "3", "-msgs", "3"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"group", "formed", "delivered 9 messages", "done"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunLiveWithLeave(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-servers", "1", "-clients", "3", "-msgs", "2", "-leave"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "survivors installed") {
		t.Errorf("output missing departure phase:\n%s", out.String())
	}
}

func TestRunLiveWithPartition(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-servers", "2", "-clients", "4", "-msgs", "2", "-partition"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"partitioning servers",
		"partition observed",
		"healed: group reconverged",
		"transport counters:",
		"drops=",
		"done",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunLiveKillAndRestartServer(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-servers", "2", "-clients", "4", "-msgs", "2",
		"-kill-server", "0", "-restart-server",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"killing s00 mid-deployment",
		"failed over to",
		"failover complete",
		"post-failover traffic delivered",
		"recovered",
		"from its WAL",
		"rejoined the server group",
		"node stats:",
		`"failovers":1`,
		"done",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunLiveSlowClientEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("slow-consumer eviction crosses real grace-period waits; skipped in -short")
	}
	var out bytes.Buffer
	// Each sender must outrun the credit window (4) for the laggard's
	// exhaustion to cross the grace and trigger the slow-consumer report.
	err := run([]string{
		"-servers", "2", "-clients", "4", "-msgs", "8",
		"-slow-client", "3", "-window", "4", "-slow-delay", "400ms",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"throttling c003",
		"credit window 4",
		"evicted for overload",
		"survivors installed",
		"sends blocked en route",
		"creditsGranted=",
		"windowExhausted=",
		"done",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunLiveDebugListener(t *testing.T) {
	// Park the run at its final report, scrape the listener while every
	// metric is populated, then release it to finish.
	out := newGateWriter("reconfiguration trace:")
	t.Cleanup(out.Release)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-servers", "2", "-clients", "3", "-msgs", "3", "-debug-addr", "127.0.0.1:0"}, out)
	}()
	select {
	case <-out.reached:
	case err := <-done:
		t.Fatalf("run finished without reaching the trace section (err=%v):\n%s", err, out.String())
	case <-time.After(30 * time.Second):
		t.Fatalf("run never reached the trace section:\n%s", out.String())
	}

	var addr string
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.HasPrefix(line, "debug listener on ") {
			addr = strings.Fields(strings.TrimPrefix(line, "debug listener on "))[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("no debug listener line in output:\n%s", out.String())
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return string(b)
	}
	metrics := get("/metrics")
	for _, want := range []string{
		"vsgm_view_change_latency_seconds_bucket",
		"vsgm_reconfigurations_total",
		"vsgm_link_dials_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	if statusz := get("/statusz"); !strings.Contains(statusz, `"server/s00"`) {
		t.Errorf("/statusz missing server section:\n%s", statusz)
	}

	out.Release()
	if err := <-done; err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "done") {
		t.Errorf("output missing done:\n%s", out.String())
	}
}

func TestRunLiveTraceReportsSingleSyncRound(t *testing.T) {
	var out bytes.Buffer
	// A failure-free departure reconfigures once; the emitted timeline must
	// prove the one-round property for the completed spans.
	if err := run([]string{"-servers", "1", "-clients", "3", "-msgs", "2", "-leave"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	idx := strings.Index(s, "reconfiguration trace:")
	if idx < 0 {
		t.Fatalf("output missing reconfiguration trace section:\n%s", s)
	}
	trace := s[idx:]
	for _, want := range []string{"trace=", "view_install", "(sync_rounds=1)"} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace section missing %q:\n%s", want, trace)
		}
	}
	if strings.Contains(trace, "sync_rounds=0") {
		t.Errorf("trace section reports a completed view with no sync round:\n%s", trace)
	}
}

func TestRunLiveValidatesFlags(t *testing.T) {
	if err := run([]string{"-clients", "0"}, new(bytes.Buffer)); err == nil {
		t.Fatal("zero clients accepted")
	}
	if err := run([]string{"-servers", "1", "-partition"}, new(bytes.Buffer)); err == nil {
		t.Fatal("-partition with one server accepted")
	}
	if err := run([]string{"-servers", "1", "-clients", "2", "-kill-server", "0"}, new(bytes.Buffer)); err == nil {
		t.Fatal("-kill-server with one server accepted")
	}
	if err := run([]string{"-restart-server"}, new(bytes.Buffer)); err == nil {
		t.Fatal("-restart-server without -kill-server accepted")
	}
	if err := run([]string{"-servers", "2", "-kill-server", "5"}, new(bytes.Buffer)); err == nil {
		t.Fatal("out-of-range -kill-server accepted")
	}
	if err := run([]string{"-servers", "2", "-kill-server", "0", "-leave"}, new(bytes.Buffer)); err == nil {
		t.Fatal("-kill-server combined with -leave accepted")
	}
	if err := run([]string{"-servers", "2", "-clients", "3", "-slow-client", "7"}, new(bytes.Buffer)); err == nil {
		t.Fatal("out-of-range -slow-client accepted")
	}
	if err := run([]string{"-servers", "2", "-clients", "4", "-slow-client", "0", "-partition"}, new(bytes.Buffer)); err == nil {
		t.Fatal("-slow-client combined with -partition accepted")
	}
}
