// Command vsgm-live runs the client-server deployment over real TCP
// loopback sockets: dedicated membership servers, GCS end-points as
// concurrent client processes, live traffic, and an optional member
// departure — then reports what every client observed.
//
// Usage:
//
//	vsgm-live -servers 2 -clients 4 -msgs 10
//	vsgm-live -clients 5 -leave
//	vsgm-live -servers 2 -clients 4 -partition
//	vsgm-live -servers 2 -clients 4 -kill-server 0 -restart-server
//	vsgm-live -servers 2 -clients 4 -slow-client 3 -window 4
//
// With -partition the servers run live heartbeat failure detectors, the
// chaos fabric splits the deployment into two components mid-run, each side
// reconfigures independently, and the partition then heals back into one
// merged view. The final report includes per-node transport counters
// (dials, retries, reconnects, drops) so the degradation is observable.
//
// With -kill-server N the deployment runs in crash-recovery mode: clients
// register through the in-band attach protocol, every server journals its
// identifier state to a WAL under -state-dir, and server N is killed
// mid-deployment — its clients fail over down their home lists and traffic
// resumes. Adding -restart-server then brings the dead server back on the
// same address, recovering its records from the WAL and rejoining the
// group. Every run ends with per-node stats snapshots in JSON.
//
// With -slow-client N the deployment exercises end-to-end flow control:
// client N throttles its event consumption by -slow-delay per event, the
// small -window credit budget shuts the other clients' send windows toward
// it, their Send calls block instead of shedding frames, and after the
// configured grace the laggard is reported, evicted, and banned — the
// survivors reconfigure to a smaller live view and traffic completes. The
// report includes the flow-control counters (credits granted/consumed,
// sends blocked, overload evictions).
//
// Every run shares one observability registry and reconfiguration tracer
// (internal/obs): the final report is scraped from the registry (so a killed
// server's frozen stats print without racing its shutdown) and ends with the
// per-endpoint reconfiguration timelines. With -debug-addr the same registry
// is served live over HTTP — Prometheus text on /metrics, JSON on /statusz,
// timelines on /tracez, and the standard pprof handlers — for the run's
// duration. See docs/OPERATIONS.md for the full metric catalogue.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/live"
	"vsgm/internal/membership"
	"vsgm/internal/obs"
	"vsgm/internal/sim"
	"vsgm/internal/types"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vsgm-live:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vsgm-live", flag.ContinueOnError)
	var (
		nServers   = fs.Int("servers", 2, "number of membership servers")
		nClients   = fs.Int("clients", 4, "number of client end-points")
		msgs       = fs.Int("msgs", 10, "multicasts per client")
		leave      = fs.Bool("leave", false, "remove one member after the traffic phase")
		partition  = fs.Bool("partition", false, "partition and heal the servers after the traffic phase")
		killServer = fs.Int("kill-server", -1, "kill this server (by index) after the traffic phase; enables in-band attach and WAL-backed servers")
		restartSrv = fs.Bool("restart-server", false, "with -kill-server: restart the killed server from its WAL")
		stateDir   = fs.String("state-dir", "", "root directory for per-server durable state (default: a temporary directory)")
		slowClient = fs.Int("slow-client", -1, "throttle this client (by index) into a slow consumer; enables flow control with a small credit window and eviction of the laggard")
		slowDelay  = fs.Duration("slow-delay", 500*time.Millisecond, "with -slow-client: extra processing time per delivered event")
		window     = fs.Int("window", 4, "with -slow-client: per-sender credit window in frames")
		timeout    = fs.Duration("timeout", 10*time.Second, "per-phase convergence timeout")
		debugAddr  = fs.String("debug-addr", "", "serve Prometheus /metrics, JSON /statusz, /tracez and pprof on this address for the run's duration (e.g. 127.0.0.1:8080; empty disables)")

		detMode    = fs.String("detector-mode", "adaptive", "server failure detector: adaptive (phi accrual + flap damping + gray reconciliation) or fixed (binary heartbeat timeout)")
		detWindow  = fs.Int("detector-window", 0, "adaptive detector: inter-arrival sliding window size (0 = default)")
		phiSuspect = fs.Float64("phi-suspect", 0, "adaptive detector: phi threshold that suspects a peer (0 = default)")
		phiRestore = fs.Float64("phi-restore", 0, "adaptive detector: phi threshold that restores a suspected peer (0 = default; must be below -phi-suspect)")
		quarBase   = fs.Duration("quarantine-base", 0, "adaptive detector: first rejoin quarantine a flapping peer earns (0 = default, negative disables damping)")
		quarCap    = fs.Duration("quarantine-cap", 0, "adaptive detector: upper bound on the exponentially growing rejoin quarantine (0 = default)")
		flapHalf   = fs.Duration("flap-half-life", 0, "adaptive detector: half-life of the decaying flap score (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	det := membership.DetectorConfig{
		Window:         *detWindow,
		SuspectPhi:     *phiSuspect,
		RestorePhi:     *phiRestore,
		QuarantineBase: *quarBase,
		QuarantineCap:  *quarCap,
		FlapHalfLife:   *flapHalf,
	}
	switch *detMode {
	case "adaptive":
		det.Mode = membership.DetectorAdaptive
	case "fixed":
		det.Mode = membership.DetectorFixed
	default:
		return fmt.Errorf("-detector-mode %q (want adaptive or fixed)", *detMode)
	}
	if *nServers < 1 || *nClients < 1 {
		return fmt.Errorf("need at least one server and one client")
	}
	if *partition && *nServers < 2 {
		return fmt.Errorf("-partition needs at least two servers")
	}
	attachMode := *killServer >= 0
	if attachMode {
		if *killServer >= *nServers {
			return fmt.Errorf("-kill-server %d out of range (have %d servers)", *killServer, *nServers)
		}
		if *nServers < 2 {
			return fmt.Errorf("-kill-server needs at least two servers to fail over to")
		}
		if *partition || *leave {
			return fmt.Errorf("-kill-server cannot combine with -partition or -leave")
		}
	}
	if *restartSrv && !attachMode {
		return fmt.Errorf("-restart-server needs -kill-server")
	}
	slowMode := *slowClient >= 0
	if slowMode {
		if *slowClient >= *nClients {
			return fmt.Errorf("-slow-client %d out of range (have %d clients)", *slowClient, *nClients)
		}
		if *nClients < 2 {
			return fmt.Errorf("-slow-client needs at least two clients (someone must outpace the laggard)")
		}
		if *window < 1 {
			return fmt.Errorf("-window must be at least 1")
		}
		if attachMode || *partition || *leave {
			return fmt.Errorf("-slow-client cannot combine with -kill-server, -partition, or -leave")
		}
	}
	inband := attachMode || slowMode
	stateRoot := *stateDir
	if attachMode && stateRoot == "" {
		tmp, err := os.MkdirTemp("", "vsgm-live-state-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		stateRoot = tmp
	}

	// Every node shares one registry and one reconfiguration tracer; the
	// final report reads these (not the live structs), so printing stats for
	// a killed server never races its shutdown.
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(reg)
	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr, reg, tracer)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer dbg.Close()
		fmt.Fprintf(out, "debug listener on %s (/metrics /statusz /tracez /debug/pprof)\n", dbg.Addr())
	}

	var (
		mu        sync.Mutex
		delivered = make(map[types.ProcID]int)
	)

	serverIDs := sim.ServerIDs(*nServers)
	serverSet := types.NewProcSet(serverIDs...)
	dir := make(map[types.ProcID]string)

	var servers []*live.ServerNode
	for _, sid := range serverIDs {
		cfg := live.ServerConfig{ID: sid, Addr: "127.0.0.1:0", Servers: serverSet, Obs: reg, Detector: det}
		if attachMode {
			// Crash-recovery mode: durable identifier state plus a fast
			// watchdog, so a restarted server resumes above everything it
			// issued and stalled attempts repair in demo time.
			store, err := live.NewFileStore(filepath.Join(stateRoot, string(sid)))
			if err != nil {
				return err
			}
			cfg.Store = store
			cfg.Watchdog = 25 * time.Millisecond
		}
		if slowMode {
			// Overload mode: a fast watchdog keeps the eviction
			// reconfiguration snappy, and the ban outlives the run so the
			// evicted laggard cannot re-attach and flap the view.
			cfg.Watchdog = 25 * time.Millisecond
			cfg.SlowBan = time.Minute
		}
		sn, err := live.NewServerNode(cfg)
		if err != nil {
			return err
		}
		defer sn.Close()
		servers = append(servers, sn)
		dir[sid] = sn.Addr()
	}

	clientIDs := sim.ClientIDs(*nClients)
	clients := make(map[types.ProcID]*live.Node, *nClients)
	for i, cid := range clientIDs {
		cid := cid
		cfg := live.NodeConfig{
			ID:        cid,
			Addr:      "127.0.0.1:0",
			AutoBlock: true,
			MsgIDBase: int64(i+1) * 1_000_000,
			Obs:       reg,
			Tracer:    tracer,
			OnEvent: func(ev core.Event) {
				if _, ok := ev.(core.DeliverEvent); ok {
					mu.Lock()
					delivered[cid]++
					mu.Unlock()
				}
			},
		}
		if inband {
			// In-band attachment: each client courts the servers in a
			// rotated order, so preferred homes round-robin and a dead home
			// fails over to the next server along.
			homeList := make([]types.ProcID, *nServers)
			for j := range homeList {
				homeList[j] = serverIDs[(i+j)%*nServers]
			}
			cfg.HomeServers = homeList
			cfg.AttachInterval = 40 * time.Millisecond
			cfg.AttachTimeout = 250 * time.Millisecond
		}
		if slowMode {
			// Flow-control mode: a small per-sender credit window, a short
			// slow-consumer grace so the laggard is reported in demo time,
			// and a memory budget clamping total resident bytes.
			cfg.Transport.Window = *window
			cfg.SlowConsumerGrace = 250 * time.Millisecond
			cfg.MemHighWater = 1 << 20
			if i == *slowClient {
				inner := cfg.OnEvent
				delay := *slowDelay
				cfg.OnEvent = func(ev core.Event) {
					time.Sleep(delay)
					inner(ev)
				}
			}
		}
		node, err := live.NewNode(cfg)
		if err != nil {
			return err
		}
		defer node.Close()
		clients[cid] = node
		dir[cid] = node.Addr()
	}

	for _, sn := range servers {
		sn.SetPeers(dir)
	}
	for _, node := range clients {
		node.SetPeers(dir)
	}
	homes := make(map[types.ProcID]types.ProcID, *nClients)
	for i, cid := range clientIDs {
		srv := servers[i%len(servers)]
		if !inband {
			srv.AddClient(cid)
		}
		homes[cid] = srv.ID()
	}

	fmt.Fprintf(out, "booting %d servers and %d clients on loopback TCP\n", *nServers, *nClients)
	switch {
	case *partition:
		// The partition scenario needs live failure detection: heartbeats
		// notice the silence across the cut and reconfigure each side.
		for _, sn := range servers {
			sn.StartHeartbeats(serverSet, 20*time.Millisecond, 150*time.Millisecond)
		}
	case inband:
		// Crash recovery and overload degradation need both: a known-good
		// starting reachability and heartbeats so membership stays live.
		for _, sn := range servers {
			sn.SetReachable(serverSet)
			sn.StartHeartbeats(serverSet, 20*time.Millisecond, 150*time.Millisecond)
		}
	default:
		for _, sn := range servers {
			sn.SetReachable(serverSet)
		}
	}
	all := types.NewProcSet(clientIDs...)
	if err := waitFor(*timeout, func() bool {
		for _, node := range clients {
			if inband && node.Home() == "" {
				return false
			}
			if !node.CurrentView().Members.Equal(all) {
				return false
			}
		}
		return true
	}); err != nil {
		return fmt.Errorf("group formation: %w", err)
	}
	fmt.Fprintf(out, "group %s formed\n", clients[clientIDs[0]].CurrentView())

	// In slow mode the laggard only consumes: the other clients' traffic is
	// what exhausts its credit windows, and keeping it out of the sender
	// pool makes the survivors' delivery totals deterministic after its
	// eviction.
	laggard := types.ProcID("")
	senders := clientIDs
	if slowMode {
		laggard = clientIDs[*slowClient]
		senders = make([]types.ProcID, 0, *nClients-1)
		for _, cid := range clientIDs {
			if cid != laggard {
				senders = append(senders, cid)
			}
		}
		fmt.Fprintf(out, "throttling %s: +%v per delivered event (credit window %d)\n", laggard, *slowDelay, *window)
	}
	sendAll := func() {
		fmt.Fprintf(out, "multicasting %d messages per client concurrently\n", *msgs)
		var wg sync.WaitGroup
		for _, cid := range senders {
			node := clients[cid]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < *msgs; i++ {
					// A send can race a view change; ErrBlocked simply means
					// retry after the change.
					for {
						_, err := node.Send([]byte(fmt.Sprintf("m%d", i)))
						if err == nil {
							break
						}
						if err != core.ErrBlocked {
							return
						}
						time.Sleep(time.Millisecond)
					}
				}
			}()
		}
		wg.Wait()
	}
	sendAll()

	want := *msgs * len(senders)
	if err := waitFor(*timeout, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, cid := range senders {
			if delivered[cid] < want {
				return false
			}
		}
		return true
	}); err != nil {
		return fmt.Errorf("traffic phase: %w", err)
	}

	if slowMode {
		rest := all.Minus(types.NewProcSet(laggard))
		if err := waitFor(*timeout, func() bool {
			var evicted int64
			for _, sn := range servers {
				evicted += sn.Stats().OverloadEvictions
			}
			if evicted == 0 {
				return false
			}
			for _, cid := range senders {
				if !clients[cid].CurrentView().Members.Equal(rest) {
					return false
				}
			}
			return true
		}); err != nil {
			return fmt.Errorf("overload eviction phase: %w", err)
		}
		var blocked int64
		for _, cid := range senders {
			blocked += clients[cid].Stats().SendsBlocked
		}
		fmt.Fprintf(out, "slow consumer %s evicted for overload; survivors installed %s (%d sends blocked en route)\n",
			laggard, clients[senders[0]].CurrentView(), blocked)
	}

	if attachMode {
		killed := servers[*killServer]
		killedID, killedAddr := killed.ID(), killed.Addr()
		floor := maxViewID(clients)
		fmt.Fprintf(out, "killing %s mid-deployment\n", killedID)
		killed.Close()

		if err := waitFor(*timeout, func() bool {
			for _, node := range clients {
				h := node.Home()
				if h == "" || h == killedID {
					return false
				}
				v := node.CurrentView()
				if v.ID <= floor || !v.Members.Equal(all) {
					return false
				}
			}
			return true
		}); err != nil {
			return fmt.Errorf("failover phase: %w", err)
		}
		for _, cid := range clientIDs {
			fmt.Fprintf(out, "  %s failed over to %s\n", cid, clients[cid].Home())
		}
		fmt.Fprintf(out, "failover complete: %s\n", clients[clientIDs[0]].CurrentView())

		// Traffic resumes through the survivors.
		sendAll()
		if err := waitFor(*timeout, func() bool {
			mu.Lock()
			defer mu.Unlock()
			for _, cid := range clientIDs {
				if delivered[cid] < 2*want {
					return false
				}
			}
			return true
		}); err != nil {
			return fmt.Errorf("post-failover traffic: %w", err)
		}
		fmt.Fprintln(out, "post-failover traffic delivered")

		if *restartSrv {
			store, err := live.NewFileStore(filepath.Join(stateRoot, string(killedID)))
			if err != nil {
				return err
			}
			sn, err := live.NewServerNode(live.ServerConfig{
				ID:       killedID,
				Addr:     killedAddr,
				Servers:  serverSet,
				Store:    store,
				Watchdog: 25 * time.Millisecond,
				Obs:      reg,
				Detector: det,
			})
			if err != nil {
				return fmt.Errorf("restart %s: %w", killedID, err)
			}
			defer sn.Close()
			servers[*killServer] = sn
			recs := sn.Records()
			rj, _ := json.Marshal(recs)
			fmt.Fprintf(out, "restarted %s on %s: recovered %d records from its WAL: %s\n",
				killedID, killedAddr, len(recs), rj)

			floor = maxViewID(clients)
			sn.SetPeers(dir)
			sn.SetReachable(serverSet)
			sn.StartHeartbeats(serverSet, 20*time.Millisecond, 150*time.Millisecond)
			if err := waitFor(*timeout, func() bool {
				for _, node := range clients {
					v := node.CurrentView()
					if v.ID <= floor || !v.Members.Equal(all) {
						return false
					}
				}
				return true
			}); err != nil {
				return fmt.Errorf("rejoin phase: %w", err)
			}
			fmt.Fprintf(out, "%s rejoined the server group: %s\n", killedID, clients[clientIDs[0]].CurrentView())
		}
	}

	if *partition {
		// Split the servers into two halves; each component is a server
		// group plus its homed clients, and every member blocks outbound
		// frames to the other side — the transport stays up, the frames
		// silently vanish, and the heartbeat detectors observe the silence.
		half := *nServers / 2
		groupA := types.NewProcSet(serverIDs[:half]...)
		groupB := types.NewProcSet(serverIDs[half:]...)
		compA, compB := groupA.Clone(), groupB.Clone()
		for cid, home := range homes {
			if groupA.Contains(home) {
				compA.Add(cid)
			} else {
				compB.Add(cid)
			}
		}
		chaos := make(map[types.ProcID]*live.Chaos)
		for _, sn := range servers {
			chaos[sn.ID()] = sn.Chaos()
		}
		for cid, node := range clients {
			chaos[cid] = node.Chaos()
		}
		union := compA.Union(compB)
		for _, comp := range []types.ProcSet{compA, compB} {
			outside := union.Minus(comp).Sorted()
			for p := range comp {
				chaos[p].BlockOutbound(outside...)
			}
		}
		fmt.Fprintf(out, "partitioning servers into %s | %s\n", groupA, groupB)

		clientsA := compA.Minus(groupA)
		clientsB := compB.Minus(groupB)
		if err := waitFor(*timeout, func() bool {
			for cid, node := range clients {
				want := clientsA
				if compB.Contains(cid) {
					want = clientsB
				}
				if !node.CurrentView().Members.Equal(want) {
					return false
				}
			}
			return true
		}); err != nil {
			return fmt.Errorf("partition phase: %w", err)
		}
		fmt.Fprintf(out, "partition observed: sides installed %s and %s\n", clientsA, clientsB)

		for _, c := range chaos {
			c.Heal()
		}
		if err := waitFor(*timeout, func() bool {
			for _, node := range clients {
				if !node.CurrentView().Members.Equal(all) {
					return false
				}
			}
			return true
		}); err != nil {
			return fmt.Errorf("heal phase: %w", err)
		}
		fmt.Fprintf(out, "healed: group reconverged on %s\n", clients[clientIDs[0]].CurrentView())
	}

	if *leave && *nClients > 1 {
		leaver := clientIDs[*nClients-1]
		fmt.Fprintf(out, "%s leaves the group\n", leaver)
		for _, sn := range servers {
			sn.RemoveClient(leaver)
		}
		servers[0].Reconfigure()
		rest := all.Minus(types.NewProcSet(leaver))
		if err := waitFor(*timeout, func() bool {
			for cid, node := range clients {
				if cid == leaver {
					continue
				}
				if !node.CurrentView().Members.Equal(rest) {
					return false
				}
			}
			return true
		}); err != nil {
			return fmt.Errorf("departure phase: %w", err)
		}
		fmt.Fprintf(out, "survivors installed %s\n", clients[clientIDs[0]].CurrentView())
	}

	mu.Lock()
	defer mu.Unlock()
	ids := append([]types.ProcID(nil), clientIDs...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, cid := range ids {
		fmt.Fprintf(out, "  %s delivered %d messages\n", cid, delivered[cid])
	}

	// The report below is scraped from the observability registry rather than
	// from the node structs: a killed server's collector and status section
	// were frozen at Close, so these reads never race a shutdown.
	snap := reg.Snapshot()
	linkTotals := make(map[string]map[string]int64) // node id -> metric name -> value
	for _, s := range snap.Samples {
		if !strings.HasPrefix(s.Name, "vsgm_link_") || len(s.Labels) == 0 {
			continue
		}
		m := linkTotals[s.Labels[0].Value]
		if m == nil {
			m = make(map[string]int64)
			linkTotals[s.Labels[0].Value] = m
		}
		m[s.Name] += int64(s.Value)
	}
	fmt.Fprintln(out, "transport counters:")
	printStats := func(id types.ProcID) {
		m := linkTotals[string(id)]
		g := func(name string) int64 { return m["vsgm_link_"+name+"_total"] }
		fmt.Fprintf(out, "  %s: dials=%d failures=%d retries=%d reconnects=%d frames=%d flushes=%d writeErrs=%d drops=%d creditsGranted=%d creditsConsumed=%d windowExhausted=%d\n",
			id, g("dials"), g("dial_failures"), g("retries"), g("reconnects"), g("frames_sent"), g("flushes"),
			g("write_errors"), g("queue_drops")+g("chaos_drops"),
			g("credits_granted"), g("credits_consumed"), g("window_exhausted"))
	}
	for _, sid := range serverIDs {
		printStats(sid)
	}
	for _, cid := range ids {
		printStats(cid)
	}

	// Full per-node snapshots, one JSON object per line, for scraping.
	status, _ := reg.StatusSnapshot()
	fmt.Fprintln(out, "node stats:")
	for _, sid := range serverIDs {
		if st, ok := status["server/"+string(sid)]; ok {
			if b, err := json.Marshal(st); err == nil {
				fmt.Fprintf(out, "  %s\n", b)
			}
		}
	}
	for _, cid := range ids {
		if st, ok := status["node/"+string(cid)]; ok {
			if b, err := json.Marshal(st); err == nil {
				fmt.Fprintf(out, "  %s\n", b)
			}
		}
	}

	// Per-endpoint reconfiguration timelines, stamped with the trace ids the
	// servers gossiped through their proposals.
	fmt.Fprintln(out, "reconfiguration trace:")
	tracer.RenderTimeline(out)
	fmt.Fprintln(out, "done")
	return nil
}

// maxViewID returns the highest view identifier any client has installed.
func maxViewID(clients map[types.ProcID]*live.Node) types.ViewID {
	var max types.ViewID
	for _, node := range clients {
		if v := node.CurrentView().ID; v > max {
			max = v
		}
	}
	return max
}

func waitFor(limit time.Duration, cond func() bool) error {
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("timed out after %v", limit)
}
