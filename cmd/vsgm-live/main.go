// Command vsgm-live runs the client-server deployment over real TCP
// loopback sockets: dedicated membership servers, GCS end-points as
// concurrent client processes, live traffic, and an optional member
// departure — then reports what every client observed.
//
// Usage:
//
//	vsgm-live -servers 2 -clients 4 -msgs 10
//	vsgm-live -clients 5 -leave
//	vsgm-live -servers 2 -clients 4 -partition
//
// With -partition the servers run live heartbeat failure detectors, the
// chaos fabric splits the deployment into two components mid-run, each side
// reconfigures independently, and the partition then heals back into one
// merged view. The final report includes per-node transport counters
// (dials, retries, reconnects, drops) so the degradation is observable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/live"
	"vsgm/internal/sim"
	"vsgm/internal/types"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vsgm-live:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vsgm-live", flag.ContinueOnError)
	var (
		nServers = fs.Int("servers", 2, "number of membership servers")
		nClients = fs.Int("clients", 4, "number of client end-points")
		msgs     = fs.Int("msgs", 10, "multicasts per client")
		leave     = fs.Bool("leave", false, "remove one member after the traffic phase")
		partition = fs.Bool("partition", false, "partition and heal the servers after the traffic phase")
		timeout   = fs.Duration("timeout", 10*time.Second, "per-phase convergence timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nServers < 1 || *nClients < 1 {
		return fmt.Errorf("need at least one server and one client")
	}
	if *partition && *nServers < 2 {
		return fmt.Errorf("-partition needs at least two servers")
	}

	var (
		mu        sync.Mutex
		delivered = make(map[types.ProcID]int)
	)

	serverIDs := sim.ServerIDs(*nServers)
	serverSet := types.NewProcSet(serverIDs...)
	dir := make(map[types.ProcID]string)

	var servers []*live.ServerNode
	for _, sid := range serverIDs {
		sn, err := live.NewServerNode(live.ServerConfig{ID: sid, Addr: "127.0.0.1:0", Servers: serverSet})
		if err != nil {
			return err
		}
		defer sn.Close()
		servers = append(servers, sn)
		dir[sid] = sn.Addr()
	}

	clientIDs := sim.ClientIDs(*nClients)
	clients := make(map[types.ProcID]*live.Node, *nClients)
	for i, cid := range clientIDs {
		cid := cid
		node, err := live.NewNode(live.NodeConfig{
			ID:        cid,
			Addr:      "127.0.0.1:0",
			AutoBlock: true,
			MsgIDBase: int64(i+1) * 1_000_000,
			OnEvent: func(ev core.Event) {
				if _, ok := ev.(core.DeliverEvent); ok {
					mu.Lock()
					delivered[cid]++
					mu.Unlock()
				}
			},
		})
		if err != nil {
			return err
		}
		defer node.Close()
		clients[cid] = node
		dir[cid] = node.Addr()
	}

	for _, sn := range servers {
		sn.SetPeers(dir)
	}
	for _, node := range clients {
		node.SetPeers(dir)
	}
	homes := make(map[types.ProcID]types.ProcID, *nClients)
	for i, cid := range clientIDs {
		srv := servers[i%len(servers)]
		srv.AddClient(cid)
		homes[cid] = srv.ID()
	}

	fmt.Fprintf(out, "booting %d servers and %d clients on loopback TCP\n", *nServers, *nClients)
	if *partition {
		// The partition scenario needs live failure detection: heartbeats
		// notice the silence across the cut and reconfigure each side.
		for _, sn := range servers {
			sn.StartHeartbeats(serverSet, 20*time.Millisecond, 150*time.Millisecond)
		}
	} else {
		for _, sn := range servers {
			sn.SetReachable(serverSet)
		}
	}
	all := types.NewProcSet(clientIDs...)
	if err := waitFor(*timeout, func() bool {
		for _, node := range clients {
			if !node.CurrentView().Members.Equal(all) {
				return false
			}
		}
		return true
	}); err != nil {
		return fmt.Errorf("group formation: %w", err)
	}
	fmt.Fprintf(out, "group %s formed\n", clients[clientIDs[0]].CurrentView())

	fmt.Fprintf(out, "multicasting %d messages per client concurrently\n", *msgs)
	var wg sync.WaitGroup
	for _, cid := range clientIDs {
		node := clients[cid]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < *msgs; i++ {
				// A send can race a view change; ErrBlocked simply means
				// retry after the change.
				for {
					_, err := node.Send([]byte(fmt.Sprintf("m%d", i)))
					if err == nil {
						break
					}
					if err != core.ErrBlocked {
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()

	want := *msgs * *nClients
	if err := waitFor(*timeout, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, cid := range clientIDs {
			if delivered[cid] < want {
				return false
			}
		}
		return true
	}); err != nil {
		return fmt.Errorf("traffic phase: %w", err)
	}

	if *partition {
		// Split the servers into two halves; each component is a server
		// group plus its homed clients, and every member blocks outbound
		// frames to the other side — the transport stays up, the frames
		// silently vanish, and the heartbeat detectors observe the silence.
		half := *nServers / 2
		groupA := types.NewProcSet(serverIDs[:half]...)
		groupB := types.NewProcSet(serverIDs[half:]...)
		compA, compB := groupA.Clone(), groupB.Clone()
		for cid, home := range homes {
			if groupA.Contains(home) {
				compA.Add(cid)
			} else {
				compB.Add(cid)
			}
		}
		chaos := make(map[types.ProcID]*live.Chaos)
		for _, sn := range servers {
			chaos[sn.ID()] = sn.Chaos()
		}
		for cid, node := range clients {
			chaos[cid] = node.Chaos()
		}
		union := compA.Union(compB)
		for _, comp := range []types.ProcSet{compA, compB} {
			outside := union.Minus(comp).Sorted()
			for p := range comp {
				chaos[p].BlockOutbound(outside...)
			}
		}
		fmt.Fprintf(out, "partitioning servers into %s | %s\n", groupA, groupB)

		clientsA := compA.Minus(groupA)
		clientsB := compB.Minus(groupB)
		if err := waitFor(*timeout, func() bool {
			for cid, node := range clients {
				want := clientsA
				if compB.Contains(cid) {
					want = clientsB
				}
				if !node.CurrentView().Members.Equal(want) {
					return false
				}
			}
			return true
		}); err != nil {
			return fmt.Errorf("partition phase: %w", err)
		}
		fmt.Fprintf(out, "partition observed: sides installed %s and %s\n", clientsA, clientsB)

		for _, c := range chaos {
			c.Heal()
		}
		if err := waitFor(*timeout, func() bool {
			for _, node := range clients {
				if !node.CurrentView().Members.Equal(all) {
					return false
				}
			}
			return true
		}); err != nil {
			return fmt.Errorf("heal phase: %w", err)
		}
		fmt.Fprintf(out, "healed: group reconverged on %s\n", clients[clientIDs[0]].CurrentView())
	}

	if *leave && *nClients > 1 {
		leaver := clientIDs[*nClients-1]
		fmt.Fprintf(out, "%s leaves the group\n", leaver)
		for _, sn := range servers {
			sn.RemoveClient(leaver)
		}
		servers[0].Reconfigure()
		rest := all.Minus(types.NewProcSet(leaver))
		if err := waitFor(*timeout, func() bool {
			for cid, node := range clients {
				if cid == leaver {
					continue
				}
				if !node.CurrentView().Members.Equal(rest) {
					return false
				}
			}
			return true
		}); err != nil {
			return fmt.Errorf("departure phase: %w", err)
		}
		fmt.Fprintf(out, "survivors installed %s\n", clients[clientIDs[0]].CurrentView())
	}

	mu.Lock()
	defer mu.Unlock()
	ids := append([]types.ProcID(nil), clientIDs...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, cid := range ids {
		fmt.Fprintf(out, "  %s delivered %d messages\n", cid, delivered[cid])
	}

	fmt.Fprintln(out, "transport counters:")
	printStats := func(id types.ProcID, stats map[types.ProcID]live.LinkStats) {
		var a live.LinkStats
		for _, s := range stats {
			a.Dials += s.Dials
			a.DialFailures += s.DialFailures
			a.Retries += s.Retries
			a.Reconnects += s.Reconnects
			a.FramesSent += s.FramesSent
			a.Flushes += s.Flushes
			a.WriteErrors += s.WriteErrors
			a.QueueDrops += s.QueueDrops
			a.ChaosDrops += s.ChaosDrops
		}
		fmt.Fprintf(out, "  %s: dials=%d failures=%d retries=%d reconnects=%d frames=%d flushes=%d writeErrs=%d drops=%d\n",
			id, a.Dials, a.DialFailures, a.Retries, a.Reconnects, a.FramesSent, a.Flushes, a.WriteErrors, a.Drops())
	}
	for _, sn := range servers {
		printStats(sn.ID(), sn.LinkStats())
	}
	for _, cid := range ids {
		printStats(cid, clients[cid].LinkStats())
	}
	fmt.Fprintln(out, "done")
	return nil
}

func waitFor(limit time.Duration, cond func() bool) error {
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("timed out after %v", limit)
}
