package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSelectedExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E4", "-reps", "1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "E4 — Forwarded copies per missing message") {
		t.Errorf("output missing the E4 table:\n%s", out.String())
	}
}

func TestRunMarkdownOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E7", "-reps", "1", "-markdown"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "### E7") {
		t.Errorf("markdown output malformed:\n%s", out.String())
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "E42"}, new(bytes.Buffer)); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E1", "E12"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %s:\n%s", want, out.String())
		}
	}
}
