package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSelectedExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E4", "-reps", "1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "E4 — Forwarded copies per missing message") {
		t.Errorf("output missing the E4 table:\n%s", out.String())
	}
}

func TestRunMarkdownOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "E7", "-reps", "1", "-markdown"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "### E7") {
		t.Errorf("markdown output malformed:\n%s", out.String())
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "E42"}, new(bytes.Buffer)); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E1", "E12"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %s:\n%s", want, out.String())
		}
	}
}

// TestKVBenchScalesWithShards is the sharding acceptance measurement: the
// YCSB-style mixed workload must show at least 2x aggregate virtual-time
// throughput going from 1 shard to 4 on the sim fabric (the run is fully
// deterministic at a fixed seed).
func TestKVBenchScalesWithShards(t *testing.T) {
	cfg := kvBenchConfig{shardCounts: []int{1, 4}, ops: 300, keys: 256,
		readFrac: 0.5, dist: "zipfian", seed: 42}
	one, err := kvBenchOne(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	four, err := kvBenchOne(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if one.opsSec <= 0 || four.opsSec <= 0 {
		t.Fatalf("no throughput measured: 1 shard %v, 4 shards %v", one, four)
	}
	speedup := four.opsSec / one.opsSec
	t.Logf("1 shard: %.1f ops/s; 4 shards: %.1f ops/s; speedup %.2fx", one.opsSec, four.opsSec, speedup)
	if speedup < 2.0 {
		t.Errorf("aggregate throughput speedup 1->4 shards = %.2fx, want >= 2x", speedup)
	}
}

func TestKVBenchTableAndFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kv", "-kv-shards", "1,2", "-kv-ops", "60", "-kv-dist", "uniform"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "Sharded KV") || !strings.Contains(out.String(), "speedup") {
		t.Errorf("kv table malformed:\n%s", out.String())
	}
	if err := run([]string{"-kv", "-kv-dist", "bogus"}, new(bytes.Buffer)); err == nil {
		t.Fatal("bad -kv-dist accepted")
	}
	if err := run([]string{"-kv", "-kv-shards", "0,2"}, new(bytes.Buffer)); err == nil {
		t.Fatal("bad -kv-shards accepted")
	}
}
