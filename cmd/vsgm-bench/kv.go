package main

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"vsgm/internal/experiments"
	"vsgm/internal/shard"
)

// kvBenchConfig parameterizes the sharded-KV workload sweep (-kv): a
// YCSB-style mixed read/write workload driven through the shard router
// against deployments of increasing shard count, reporting aggregate
// throughput in virtual time on the sim fabric.
type kvBenchConfig struct {
	shardCounts []int
	ops         int     // operations per deployment
	keys        int     // key-space size
	readFrac    float64 // fraction of ops that are reads
	dist        string  // "zipfian" (YCSB default) or "uniform"
	seed        int64
}

func parseShardCounts(raw string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(raw, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q (want a comma-separated list of positive integers)", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// kvResult is one deployment's measurement.
type kvResult struct {
	shards  int
	reads   int
	writes  int
	elapsed float64 // virtual seconds, max over shard clusters
	opsSec  float64
}

// runKVBench sweeps the shard counts and prints the throughput table. The
// interesting column is ops/sec in VIRTUAL time: each shard is its own
// cluster with its own virtual clock, so wall-aggregate throughput is total
// ops over the busiest shard's clock — exactly the scaling a sharded
// deployment buys when the key space spreads across groups.
func runKVBench(cfg kvBenchConfig, out io.Writer, markdown bool) error {
	table := &experiments.Table{
		ID:    "KV",
		Title: "Sharded KV: YCSB-style mixed workload throughput vs shard count",
		Claim: "aggregate throughput scales with the number of shard groups (target: >=2x from 1 to 4 shards)",
		Columns: []string{"shards", "ops", "reads", "writes",
			"virtual time (s)", "ops/sec (virtual)", "speedup"},
		Notes: fmt.Sprintf("distribution %s, %d keys, read fraction %.2f, seed %d; throughput is total ops over the busiest shard's virtual clock",
			cfg.dist, cfg.keys, cfg.readFrac, cfg.seed),
	}
	var base float64
	for _, n := range cfg.shardCounts {
		res, err := kvBenchOne(n, cfg)
		if err != nil {
			return fmt.Errorf("kv bench, %d shards: %w", n, err)
		}
		if base == 0 {
			base = res.opsSec
		}
		table.AddRow(res.shards, res.reads+res.writes, res.reads, res.writes,
			fmt.Sprintf("%.3f", res.elapsed),
			fmt.Sprintf("%.1f", res.opsSec),
			fmt.Sprintf("%.2fx", res.opsSec/base))
	}
	if markdown {
		fmt.Fprint(out, table.Markdown())
	} else {
		fmt.Fprint(out, table.Render())
	}
	return nil
}

// kvBenchOne measures one deployment: ops routed by key hash through the
// epoch-cached router, keys drawn zipfian or uniform over the key space.
func kvBenchOne(shards int, cfg kvBenchConfig) (kvResult, error) {
	w, err := shard.NewWorld(shard.WorldConfig{Shards: shards, Seed: cfg.seed})
	if err != nil {
		return kvResult{}, err
	}
	router := shard.NewRouter(w, 0)
	rng := rand.New(rand.NewSource(cfg.seed + int64(shards)))
	zipf := rand.NewZipf(rng, 1.07, 1, uint64(cfg.keys-1)) // YCSB's default skew

	pick := func() string {
		var i uint64
		if cfg.dist == "zipfian" {
			i = zipf.Uint64()
		} else {
			i = uint64(rng.Intn(cfg.keys))
		}
		return fmt.Sprintf("user%06d", i)
	}

	res := kvResult{shards: shards}
	for i := 0; i < cfg.ops; i++ {
		key := pick()
		if rng.Float64() < cfg.readFrac {
			if _, _, err := router.Get(key); err != nil {
				return res, err
			}
			res.reads++
		} else {
			if err := router.Set(key, fmt.Sprintf("v%d", i)); err != nil {
				return res, err
			}
			res.writes++
		}
	}
	res.elapsed = w.Now().Seconds()
	if res.elapsed > 0 {
		res.opsSec = float64(res.reads+res.writes) / res.elapsed
	}
	return res, nil
}
