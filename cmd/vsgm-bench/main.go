// Command vsgm-bench runs the reproduction experiments E1-E10 (see DESIGN.md
// Section 4) and prints their result tables. It regenerates the measured
// numbers recorded in EXPERIMENTS.md.
//
// Usage:
//
//	vsgm-bench                 # run every experiment
//	vsgm-bench -exp E1,E4      # run selected experiments
//	vsgm-bench -markdown       # emit GitHub-flavored markdown tables
//	vsgm-bench -seed 7 -reps 3 # change the environment
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"vsgm/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vsgm-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vsgm-bench", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list the experiments and exit")
		expList  = fs.String("exp", "", "comma-separated experiment ids (default: all)")
		markdown = fs.Bool("markdown", false, "emit markdown tables")
		seed     = fs.Int64("seed", 42, "simulation seed")
		reps     = fs.Int("reps", 5, "repetitions per data point")
		latency  = fs.Duration("latency", 10*time.Millisecond, "base link latency")
		jitter   = fs.Duration("jitter", 5*time.Millisecond, "link latency jitter (±)")
		mRound   = fs.Duration("membership-round", 10*time.Millisecond, "membership agreement round duration")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, s := range experiments.All() {
			fmt.Fprintf(out, "%-4s %s\n", s.ID, s.Title)
		}
		return nil
	}

	p := experiments.Params{
		Seed:            *seed,
		Latency:         *latency,
		Jitter:          *jitter,
		MembershipRound: *mRound,
		Reps:            *reps,
	}

	var specs []experiments.Spec
	if *expList == "" {
		specs = experiments.All()
	} else {
		for _, id := range strings.Split(*expList, ",") {
			s, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			specs = append(specs, s)
		}
	}

	for i, s := range specs {
		start := time.Now()
		table, err := s.Run(p)
		if err != nil {
			return fmt.Errorf("%s: %w", s.ID, err)
		}
		if *markdown {
			fmt.Fprint(out, table.Markdown())
		} else {
			if i > 0 {
				fmt.Fprintln(out)
			}
			fmt.Fprint(out, table.Render())
			fmt.Fprintf(out, "(ran in %v)\n", time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
