// Command vsgm-bench runs the reproduction experiments E1-E12 (see DESIGN.md
// Section 4) and prints their result tables. It regenerates the measured
// numbers recorded in EXPERIMENTS.md. With -kv it instead runs the sharded
// KV YCSB-style workload sweep (see docs/SHARDING.md) and reports aggregate
// throughput versus shard count.
//
// Usage:
//
//	vsgm-bench                 # run every experiment
//	vsgm-bench -exp E1,E4      # run selected experiments
//	vsgm-bench -markdown       # emit GitHub-flavored markdown tables
//	vsgm-bench -seed 7 -reps 3 # change the environment
//	vsgm-bench -kv -kv-shards 1,2,4 -kv-dist zipfian
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"vsgm/internal/experiments"
	"vsgm/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vsgm-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vsgm-bench", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list the experiments and exit")
		expList   = fs.String("exp", "", "comma-separated experiment ids (default: all)")
		markdown  = fs.Bool("markdown", false, "emit markdown tables")
		seed      = fs.Int64("seed", 42, "simulation seed")
		reps      = fs.Int("reps", 5, "repetitions per data point")
		latency   = fs.Duration("latency", 10*time.Millisecond, "base link latency")
		jitter    = fs.Duration("jitter", 5*time.Millisecond, "link latency jitter (±)")
		mRound    = fs.Duration("membership-round", 10*time.Millisecond, "membership agreement round duration")
		debugAddr = fs.String("debug-addr", "", "serve run progress on /metrics and /statusz plus pprof on this address while the experiments run")
		kv        = fs.Bool("kv", false, "run the sharded KV YCSB workload sweep instead of the experiments")
		kvShards  = fs.String("kv-shards", "1,2,4", "kv: comma-separated shard counts to sweep")
		kvOps     = fs.Int("kv-ops", 400, "kv: operations per deployment")
		kvKeys    = fs.Int("kv-keys", 256, "kv: key-space size")
		kvRead    = fs.Float64("kv-read", 0.5, "kv: fraction of operations that are reads")
		kvDist    = fs.String("kv-dist", "zipfian", "kv: key distribution, zipfian or uniform")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *kv {
		counts, err := parseShardCounts(*kvShards)
		if err != nil {
			return err
		}
		if *kvDist != "zipfian" && *kvDist != "uniform" {
			return fmt.Errorf("unknown -kv-dist %q (want zipfian or uniform)", *kvDist)
		}
		if *kvKeys < 2 || *kvOps < 1 {
			return fmt.Errorf("-kv-keys must be >= 2 and -kv-ops >= 1")
		}
		return runKVBench(kvBenchConfig{
			shardCounts: counts, ops: *kvOps, keys: *kvKeys,
			readFrac: *kvRead, dist: *kvDist, seed: *seed,
		}, out, *markdown)
	}

	// The debug listener is chiefly a pprof surface for profiling the
	// simulator under experiment load; the registry adds coarse progress so
	// a long sweep can be watched from outside.
	var (
		progMu   sync.Mutex
		progress = map[string]string{}
		reg      *obs.Registry // stays nil without -debug-addr; nil handles still work
	)
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		reg.RegisterStatus("bench", func() any {
			progMu.Lock()
			defer progMu.Unlock()
			cp := make(map[string]string, len(progress))
			for k, v := range progress {
				cp[k] = v
			}
			return cp
		})
		dbg, err := obs.ServeDebug(*debugAddr, reg, nil)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer dbg.Close()
		fmt.Fprintf(out, "debug listener on %s (/metrics /statusz /debug/pprof)\n", dbg.Addr())
	}
	expsDone := reg.Counter("vsgm_bench_experiments_completed_total", "Experiments finished by this vsgm-bench run.")

	if *list {
		for _, s := range experiments.All() {
			fmt.Fprintf(out, "%-4s %s\n", s.ID, s.Title)
		}
		return nil
	}

	p := experiments.Params{
		Seed:            *seed,
		Latency:         *latency,
		Jitter:          *jitter,
		MembershipRound: *mRound,
		Reps:            *reps,
	}

	var specs []experiments.Spec
	if *expList == "" {
		specs = experiments.All()
	} else {
		for _, id := range strings.Split(*expList, ",") {
			s, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			specs = append(specs, s)
		}
	}

	for i, s := range specs {
		start := time.Now()
		progMu.Lock()
		progress[s.ID] = "running"
		progMu.Unlock()
		table, err := s.Run(p)
		if err != nil {
			return fmt.Errorf("%s: %w", s.ID, err)
		}
		expsDone.Inc()
		progMu.Lock()
		progress[s.ID] = "done in " + time.Since(start).Round(time.Millisecond).String()
		progMu.Unlock()
		if *markdown {
			fmt.Fprint(out, table.Markdown())
		} else {
			if i > 0 {
				fmt.Fprintln(out)
			}
			fmt.Fprint(out, table.Render())
			fmt.Fprintf(out, "(ran in %v)\n", time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
