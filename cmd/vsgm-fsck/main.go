// Command vsgm-fsck scans and repairs a membership server's durable state
// directory (wal.log + snapshot.bin) with the same engine NewFileStore runs
// at every open — exposed standalone so an operator can inspect a suspect
// directory without starting a server, or repair one ahead of a restart.
//
//	vsgm-fsck -dir state/srv0               # dry-run scan; exit 1 if damaged
//	vsgm-fsck -dir state/srv0 -mode repair  # quarantine damage, rewrite files
//	vsgm-fsck -dir state/srv0 -mode dump    # print every decodable record
//
// Dry-run never touches the directory. Repair quarantines every damaged
// byte range to wal.quarantine, rewrites both files from their intact
// records (migrating legacy v1 records to checksummed v2), and sweeps stale
// snapshot temp files. Run repair only while no server has the directory
// open. Exit status: 0 clean (or repaired), 1 damage found in dry-run, 2
// usage or I/O error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vsgm/internal/live"
	"vsgm/internal/wire"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsgm-fsck:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("vsgm-fsck", flag.ContinueOnError)
	dir := fs.String("dir", "", "server state directory to scan (required)")
	mode := fs.String("mode", "dry-run", "dry-run (scan and report), repair (quarantine and rewrite), or dump (print every decodable record)")
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *dir == "" {
		return 2, fmt.Errorf("-dir is required")
	}
	switch *mode {
	case "dry-run", "repair":
		m := live.FsckDryRun
		if *mode == "repair" {
			m = live.FsckRepair
		}
		report, err := live.Fsck(*dir, m)
		if err != nil {
			return 2, err
		}
		if *asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(report); err != nil {
				return 2, err
			}
		} else {
			fmt.Fprintln(out, report.String())
		}
		if m == live.FsckDryRun && report.Damaged() {
			fmt.Fprintln(out, "damage found; run with -mode repair to quarantine and rewrite")
			return 1, nil
		}
		return 0, nil
	case "dump":
		return 0, dump(*dir, out)
	default:
		return 2, fmt.Errorf("unknown -mode %q (want dry-run, repair, or dump)", *mode)
	}
}

// dump prints every record the skip-and-resync scan decodes from each state
// file, with its byte offset, interleaved with the damaged ranges.
func dump(dir string, out io.Writer) error {
	found := false
	for _, name := range []string{"snapshot.bin", "wal.log"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return err
		}
		found = true
		scan := wire.ScanWAL(b)
		fmt.Fprintf(out, "%s: %d bytes, %d records (%d v1), %d damaged ranges\n",
			name, len(b), len(scan.Records), scan.V1Records, len(scan.Damaged))
		di := 0
		for i, rec := range scan.Records {
			for di < len(scan.Damaged) && scan.Damaged[di].Off < scan.Offsets[i] {
				fmt.Fprintf(out, "  %8d  DAMAGED %d bytes\n", scan.Damaged[di].Off, scan.Damaged[di].Len)
				di++
			}
			fmt.Fprintf(out, "  %8d  client=%s cid=%d vid=%d epoch=%d\n",
				scan.Offsets[i], rec.Client, rec.CID, rec.Vid, rec.Epoch)
		}
		for ; di < len(scan.Damaged); di++ {
			fmt.Fprintf(out, "  %8d  DAMAGED %d bytes\n", scan.Damaged[di].Off, scan.Damaged[di].Len)
		}
	}
	if !found {
		fmt.Fprintf(out, "%s: no state files\n", dir)
	}
	return nil
}
