package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vsgm/internal/live"
	"vsgm/internal/types"
	"vsgm/internal/wire"
)

// TestFsckCLI is the fsck smoke test `make fsck-smoke` runs: build a state
// directory, corrupt it, and drive the CLI through dry-run, repair, and a
// clean re-open — the full operator runbook in one test.
func TestFsckCLI(t *testing.T) {
	dir := t.TempDir()
	store, err := live.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []wire.WALRecord{
		{Client: "cli0", CID: 1, Vid: 1, Epoch: 0},
		{Client: "cli1", CID: 4<<32 + 2, Vid: 7, Epoch: 4},
		{Client: "cli2", CID: 9, Vid: 3, Epoch: 1},
	}
	for _, rec := range recs {
		if err := store.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the middle record and strand a snapshot temp file.
	walPath := filepath.Join(dir, "wal.log")
	b, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xA5
	if err := os.WriteFile(walPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snapshot.bin.tmp-123"), []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Dry-run: damage reported, exit code 1, directory untouched.
	var out strings.Builder
	code, err := run([]string{"-dir", dir}, &out)
	if err != nil || code != 1 {
		t.Fatalf("dry-run on damaged dir: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "damage found") {
		t.Fatalf("dry-run output missing damage notice:\n%s", out.String())
	}
	if after, _ := os.ReadFile(walPath); string(after) != string(b) {
		t.Fatal("dry-run modified the WAL")
	}

	// Dump: the intact records print, the damage is marked.
	out.Reset()
	if code, err := run([]string{"-dir", dir, "-mode", "dump"}, &out); err != nil || code != 0 {
		t.Fatalf("dump: code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "client=cli0") || !strings.Contains(out.String(), "DAMAGED") {
		t.Fatalf("dump output incomplete:\n%s", out.String())
	}

	// Repair: exit 0, quarantine written, temp swept.
	out.Reset()
	if code, err := run([]string{"-dir", dir, "-mode", "repair"}, &out); err != nil || code != 0 {
		t.Fatalf("repair: code=%d err=%v\n%s", code, err, out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "wal.quarantine")); err != nil {
		t.Fatalf("repair left no quarantine file: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.bin.tmp-123")); !os.IsNotExist(err) {
		t.Fatal("repair did not sweep the stale snapshot temp")
	}

	// A second dry-run is clean (exit 0), and a JSON report parses.
	out.Reset()
	if code, err := run([]string{"-dir", dir, "-json"}, &out); err != nil || code != 0 {
		t.Fatalf("dry-run after repair: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), `"damaged_ranges": 0`) {
		t.Fatalf("post-repair JSON report still shows damage:\n%s", out.String())
	}

	// The repaired directory re-opens and serves the surviving records.
	reopened, err := live.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	state, err := reopened.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []types.ProcID{"cli0", "cli2"} {
		if _, ok := state[p]; !ok {
			t.Errorf("record for %s lost outside the damaged span: %v", p, state)
		}
	}

	// Usage errors exit 2 via a returned error.
	if _, err := run([]string{"-mode", "repair"}, &out); err == nil {
		t.Fatal("missing -dir accepted")
	}
	if _, err := run([]string{"-dir", dir, "-mode", "bogus"}, &out); err == nil {
		t.Fatal("bogus mode accepted")
	}
}
