// Package vsgm is a virtually synchronous group multicast library with a
// client-server architecture, reproducing Keidar & Khazan, "A Client-Server
// Approach to Virtually Synchronous Group Multicast: Specifications,
// Algorithms, and Proofs" (ICDCS 2000).
//
// # Architecture
//
// Group membership is maintained by an external membership service — either
// dedicated membership servers (MembershipServer) or a controllable oracle
// (MembershipOracle) — while virtually synchronous multicast is implemented
// by GCS end-points (Endpoint) running at the clients, on top of a
// connection-oriented reliable FIFO substrate (Network). The end-point
// algorithm runs its synchronization round in parallel with the membership
// round, keyed by locally unique start-change identifiers, so
// reconfiguration completes in a single message round without pre-agreement
// on a globally unique identifier.
//
// The service guarantees, per view: Self Inclusion, Local Monotonicity,
// within-view gap-free FIFO delivery, Virtual Synchrony (agreed cuts),
// Transitional Sets, and Self Delivery — plus conditional liveness when the
// membership stabilizes. Every property has an executable specification
// checker (Suite) that can validate whole-system traces.
//
// # Quick start
//
// The most convenient entry point is the deterministic in-memory Cluster,
// which composes end-points, substrate, and membership under a virtual
// clock:
//
//	cluster, err := vsgm.NewCluster(vsgm.ClusterConfig{Procs: vsgm.ProcIDs(3), Seed: 1})
//	...
//	view, dur, err := cluster.ReconfigureTo(vsgm.NewProcSet(cluster.Procs()...))
//	cluster.Send("p00", []byte("hello"))
//	cluster.Run()
//
// Higher layers build on the service exactly as the paper motivates:
// NewTotalOrder provides totally ordered multicast over the FIFO service,
// and NewReplica provides replicated state machines whose state transfer is
// driven by transitional sets.
package vsgm

import (
	"vsgm/internal/baseline"
	"vsgm/internal/causal"
	"vsgm/internal/core"
	"vsgm/internal/corfifo"
	"vsgm/internal/explore"
	"vsgm/internal/membership"
	"vsgm/internal/rsm"
	"vsgm/internal/sim"
	"vsgm/internal/spec"
	"vsgm/internal/totalorder"
	"vsgm/internal/types"
)

// Fundamental vocabulary (see internal/types).
type (
	// ProcID identifies a process / GCS end-point.
	ProcID = types.ProcID
	// ProcSet is a finite set of process identifiers.
	ProcSet = types.ProcSet
	// View is a membership view: identifier, member set, and the startId
	// map from members to their last start-change identifiers.
	View = types.View
	// ViewID identifies a view.
	ViewID = types.ViewID
	// StartChangeID is a locally unique, increasing start-change identifier.
	StartChangeID = types.StartChangeID
	// StartChange is a membership service's change notification.
	StartChange = types.StartChange
	// Cut maps senders to committed last-delivered message indices.
	Cut = types.Cut
	// AppMsg is an application message.
	AppMsg = types.AppMsg
	// WireMsg is a message on the reliable FIFO substrate.
	WireMsg = types.WireMsg
)

// NewProcSet builds a process set from the given members.
func NewProcSet(members ...ProcID) ProcSet { return types.NewProcSet(members...) }

// InitialView returns the default singleton view of process p.
func InitialView(p ProcID) View { return types.InitialView(p) }

// The GCS end-point automaton (see internal/core).
type (
	// Endpoint is the GCS end-point automaton of Section 5 of the paper.
	Endpoint = core.Endpoint
	// EndpointConfig parameterizes an end-point.
	EndpointConfig = core.Config
	// Level selects the automaton layer (WV_RFIFO, VS_RFIFO+TS, or GCS).
	Level = core.Level
	// Event is an end-point output to its application.
	Event = core.Event
	// DeliverEvent delivers an application message.
	DeliverEvent = core.DeliverEvent
	// ViewEvent delivers a view with its transitional set.
	ViewEvent = core.ViewEvent
	// BlockEvent asks the application to stop sending during a change.
	BlockEvent = core.BlockEvent
	// ForwardingStrategy is the Section 5.2.2 forwarding predicate.
	ForwardingStrategy = core.ForwardingStrategy
	// Transport is the end-point's interface to the FIFO substrate.
	Transport = core.Transport
)

// Automaton levels.
const (
	// LevelWV runs only the within-view reliable FIFO layer.
	LevelWV = core.LevelWV
	// LevelVS adds Virtual Synchrony and Transitional Sets.
	LevelVS = core.LevelVS
	// LevelGCS adds Self Delivery with client blocking (the full service).
	LevelGCS = core.LevelGCS
)

// Errors returned by Endpoint.Send.
var (
	// ErrBlocked is returned while the client is blocked for a view change.
	ErrBlocked = core.ErrBlocked
	// ErrCrashed is returned after Crash and before Recover.
	ErrCrashed = core.ErrCrashed
)

// NewEndpoint constructs a GCS end-point in its initial singleton view.
func NewEndpoint(cfg EndpointConfig) (*Endpoint, error) { return core.NewEndpoint(cfg) }

// NewSimpleForwarding returns the paper's simple forwarding strategy.
func NewSimpleForwarding() ForwardingStrategy { return core.NewSimpleForwarding() }

// NewMinCopiesForwarding returns the copy-minimizing forwarding strategy.
func NewMinCopiesForwarding() ForwardingStrategy { return core.NewMinCopiesForwarding() }

// The reliable FIFO substrate (see internal/corfifo).
type (
	// Network is the CO_RFIFO substrate automaton.
	Network = corfifo.Network
	// NetworkStats aggregates substrate traffic counters.
	NetworkStats = corfifo.Stats
)

// NewNetwork returns an empty CO_RFIFO substrate.
func NewNetwork() *Network { return corfifo.NewNetwork() }

// The membership service (see internal/membership).
type (
	// MembershipOracle is the controllable membership implementation.
	MembershipOracle = membership.Oracle
	// MembershipServer is one dedicated server of the distributed
	// client-server membership service.
	MembershipServer = membership.Server
	// MembershipNotification is a start_change or view notification.
	MembershipNotification = membership.Notification
	// MembershipOutput receives notifications for clients.
	MembershipOutput = membership.Output
)

// NewMembershipOracle returns a controllable membership service.
func NewMembershipOracle(out MembershipOutput) *MembershipOracle {
	return membership.NewOracle(out)
}

// NewMembershipServer returns one dedicated membership server.
func NewMembershipServer(id ProcID, servers ProcSet, tr membership.ServerTransport, out MembershipOutput) (*MembershipServer, error) {
	return membership.NewServer(id, servers, tr, out)
}

// The deterministic simulation harness (see internal/sim).
type (
	// Cluster composes end-points, substrate, and membership under a
	// virtual clock.
	Cluster = sim.Cluster
	// ClusterConfig parameterizes a cluster.
	ClusterConfig = sim.Config
	// Node is the automaton interface the cluster drives.
	Node = sim.Node
	// LatencyModel samples per-message link latencies.
	LatencyModel = sim.LatencyModel
	// UniformLatency draws latencies uniformly around a base.
	UniformLatency = sim.UniformLatency
	// FixedLatency is a constant latency.
	FixedLatency = sim.FixedLatency
	// ServerWorld simulates the full client-server deployment with
	// dedicated membership servers.
	ServerWorld = sim.ServerWorld
	// ServerWorldConfig parameterizes a server world.
	ServerWorldConfig = sim.ServerWorldConfig
	// NodeFactory builds alternative node implementations for a cluster.
	NodeFactory = sim.NodeFactory
	// TransportHandle is a sender-side handle onto the FIFO substrate,
	// bound to one end-point.
	TransportHandle = *corfifo.Handle
)

// NewCluster builds a simulated cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return sim.NewCluster(cfg) }

// NewServerWorld builds a simulated client-server deployment.
func NewServerWorld(cfg ServerWorldConfig) (*ServerWorld, error) { return sim.NewServerWorld(cfg) }

// ProcIDs returns n process identifiers p00, p01, ...
func ProcIDs(n int) []ProcID { return sim.ProcIDs(n) }

// Executable specifications (see internal/spec).
type (
	// Suite runs specification checkers over a trace.
	Suite = spec.Suite
	// TraceEvent is one external event of the composed system.
	TraceEvent = spec.Event
)

// FullSuite returns the checkers for a complete GCS-level run.
func FullSuite() *Suite { return spec.FullSuite(spec.WithTrace()) }

// CheckLiveness evaluates the conditional liveness property (Property 4.2)
// on a finished trace for the stabilized view v.
func CheckLiveness(trace []TraceEvent, v View) error { return spec.CheckLiveness(trace, v) }

// Higher layers (see internal/totalorder, internal/causal, internal/rsm).
type (
	// TotalOrder is a totally ordered multicast session layered on the
	// virtually synchronous FIFO service.
	TotalOrder = totalorder.Session
	// CausalOrder is a causally ordered multicast session layered on the
	// virtually synchronous FIFO service.
	CausalOrder = causal.Session
	// Replica is a replicated-state-machine member with transitional-set
	// driven state transfer.
	Replica = rsm.Replica
	// ReplicaConfig parameterizes a replica.
	ReplicaConfig = rsm.Config
	// StateMachine is the deterministic state replicas manage.
	StateMachine = rsm.StateMachine
	// KVStore is a replicated key-value state machine.
	KVStore = rsm.KVStore
)

// NewTotalOrder builds a total-order session for end-point id; feed it the
// end-point's events and send through it.
func NewTotalOrder(id ProcID, send func([]byte) error, deliver func(ProcID, []byte), onView func(View, ProcSet)) (*TotalOrder, error) {
	return totalorder.New(id, send, deliver, onView)
}

// NewCausalOrder builds a causal-order session for end-point id; feed it
// the end-point's events and send through it.
func NewCausalOrder(id ProcID, send func([]byte) error, deliver func(ProcID, []byte), onView func(View, ProcSet)) (*CausalOrder, error) {
	return causal.New(id, send, deliver, onView)
}

// NewReplica builds a replicated-state-machine member.
func NewReplica(cfg ReplicaConfig) (*Replica, error) { return rsm.NewReplica(cfg) }

// NewKVStore returns an empty replicated key-value store.
func NewKVStore() *KVStore { return rsm.NewKVStore() }

// EncodeSet returns the KV command that sets key to value.
func EncodeSet(key, value string) []byte { return rsm.EncodeSet(key, value) }

// EncodeDel returns the KV command that deletes key.
func EncodeDel(key string) []byte { return rsm.EncodeDel(key) }

// The stateless model checker (see internal/explore).
type (
	// ExploreConfig parameterizes a schedule exploration.
	ExploreConfig = explore.Config
	// ExploreWorld is one instantiation of the system under exploration.
	ExploreWorld = explore.World
	// Scenario drives an exploration world through a fixed script.
	Scenario = explore.Scenario
	// ExploreResult summarizes an exploration.
	ExploreResult = explore.Result
)

// Exhaustive explores a scenario's schedule tree depth-first (replaying from
// the initial state per branch) until exhaustion or maxSchedules.
func Exhaustive(cfg ExploreConfig, scenario Scenario, maxSchedules int) (ExploreResult, error) {
	return explore.Exhaustive(cfg, scenario, maxSchedules)
}

// Swarm explores `runs` random schedules of a scenario from the given seed.
func Swarm(cfg ExploreConfig, scenario Scenario, runs int, seed int64) (ExploreResult, error) {
	return explore.Swarm(cfg, scenario, runs, seed)
}

// Baseline algorithms for comparison (see internal/baseline).
type (
	// TwoRoundNode is the two-round (identifier pre-agreement) virtually
	// synchronous end-point the paper improves on.
	TwoRoundNode = baseline.TwoRound
)

// NewTwoRoundNode constructs a baseline two-round end-point.
func NewTwoRoundNode(id ProcID, tr Transport, msgIDBase int64) (*TwoRoundNode, error) {
	return baseline.NewTwoRound(id, tr, msgIDBase)
}
