// Partition and merge: the service is partitionable — disjoint views exist
// concurrently, each side keeps multicasting, and on merge the transitional
// sets tell every application exactly which peers share its history. This
// is the information an application needs to reconcile divergent state
// (Property 4.1 of the paper).
package main

import (
	"fmt"
	"log"

	"vsgm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var cluster *vsgm.Cluster
	cluster, err := vsgm.NewCluster(vsgm.ClusterConfig{
		Procs: vsgm.ProcIDs(4),
		Seed:  7,
		OnAppEvent: func(p vsgm.ProcID, ev vsgm.Event) {
			if ve, ok := ev.(vsgm.ViewEvent); ok {
				fmt.Printf("  [%s] installed %s, moved together with %s\n",
					p, ve.View, ve.TransitionalSet)
			}
		},
	})
	if err != nil {
		return err
	}
	procs := cluster.Procs()
	all := vsgm.NewProcSet(procs...)

	fmt.Println("forming the initial group:")
	if _, _, err := cluster.ReconfigureTo(all); err != nil {
		return err
	}

	// The network splits. Both halves receive their own views and keep
	// working independently — several disjoint views exist concurrently.
	left := vsgm.NewProcSet(procs[0], procs[1])
	right := vsgm.NewProcSet(procs[2], procs[3])
	fmt.Printf("\nnetwork partitions into %s and %s:\n", left, right)
	if _, err := cluster.Partition(left, right); err != nil {
		return err
	}

	fmt.Println("\neach side multicasts within its partition:")
	if _, err := cluster.Send(procs[0], []byte("left-side update")); err != nil {
		return err
	}
	if _, err := cluster.Send(procs[3], []byte("right-side update")); err != nil {
		return err
	}
	if err := cluster.Run(); err != nil {
		return err
	}
	for _, p := range procs {
		fmt.Printf("  [%s] delivered %d messages so far\n",
			p, cluster.CoreEndpoint(p).MessagesDelivered())
	}

	// The network heals and the membership merges the group. Note the
	// transitional sets in the merged view: {p00,p01} moved together from
	// the left view, {p02,p03} from the right one — each side knows whose
	// state it already shares and with whom it must reconcile.
	fmt.Println("\nnetwork heals; merging into one view:")
	cluster.HealConnectivity()
	if _, _, err := cluster.ReconfigureTo(all); err != nil {
		return err
	}
	return nil
}
