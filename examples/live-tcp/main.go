// Live TCP deployment: the same GCS end-point and membership-server
// automata that power the deterministic simulator, here running as
// concurrent goroutines over real loopback TCP sockets — two dedicated
// membership servers serving three clients, exactly the client-server
// architecture of the paper's Figure 1.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"vsgm"
	"vsgm/internal/live"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		mu        sync.Mutex
		delivered = make(map[vsgm.ProcID][]string)
		views     = make(map[vsgm.ProcID]vsgm.View)
	)

	// Two membership servers.
	serverSet := vsgm.NewProcSet("srv0", "srv1")
	var servers []*live.ServerNode
	dir := make(map[vsgm.ProcID]string)
	for _, sid := range serverSet.Sorted() {
		sn, err := live.NewServerNode(live.ServerConfig{
			ID: sid, Addr: "127.0.0.1:0", Servers: serverSet,
		})
		if err != nil {
			return err
		}
		defer sn.Close()
		servers = append(servers, sn)
		dir[sid] = sn.Addr()
	}

	// Three clients, each with a GCS end-point on its own TCP listener.
	clientIDs := []vsgm.ProcID{"alice", "bob", "carol"}
	clients := make(map[vsgm.ProcID]*live.Node, len(clientIDs))
	for i, cid := range clientIDs {
		cid := cid
		node, err := live.NewNode(live.NodeConfig{
			ID:        cid,
			Addr:      "127.0.0.1:0",
			AutoBlock: true,
			MsgIDBase: int64(i+1) * 1_000_000,
			OnEvent: func(ev vsgm.Event) {
				mu.Lock()
				defer mu.Unlock()
				switch e := ev.(type) {
				case vsgm.DeliverEvent:
					delivered[cid] = append(delivered[cid],
						fmt.Sprintf("%s:%s", e.Sender, e.Msg.Payload))
				case vsgm.ViewEvent:
					views[cid] = e.View
				}
			},
		})
		if err != nil {
			return err
		}
		defer node.Close()
		clients[cid] = node
		dir[cid] = node.Addr()
	}

	// Distribute the address directory and home the clients: alice and bob
	// at srv0, carol at srv1.
	for _, sn := range servers {
		sn.SetPeers(dir)
	}
	for _, node := range clients {
		node.SetPeers(dir)
	}
	servers[0].AddClient("alice")
	servers[0].AddClient("bob")
	servers[1].AddClient("carol")

	// The servers discover each other with heartbeat failure detectors —
	// no manual reachability wiring.
	fmt.Println("booting the membership servers (heartbeat detectors)...")
	for _, sn := range servers {
		sn.StartHeartbeats(serverSet, 10*time.Millisecond, 50*time.Millisecond)
	}

	all := vsgm.NewProcSet(clientIDs...)
	if err := waitFor(3*time.Second, func() bool {
		for _, node := range clients {
			if !node.CurrentView().Members.Equal(all) {
				return false
			}
		}
		return true
	}); err != nil {
		return fmt.Errorf("clients did not converge: %w", err)
	}
	fmt.Printf("all clients installed %s over TCP\n\n", clients["alice"].CurrentView())

	fmt.Println("everyone multicasts concurrently:")
	var wg sync.WaitGroup
	for _, cid := range clientIDs {
		node := clients[cid]
		cid := cid
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := node.Send([]byte("hello from " + string(cid))); err != nil {
				log.Printf("send from %s: %v", cid, err)
			}
		}()
	}
	wg.Wait()

	if err := waitFor(3*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, cid := range clientIDs {
			if len(delivered[cid]) < len(clientIDs) {
				return false
			}
		}
		return true
	}); err != nil {
		return fmt.Errorf("messages did not propagate: %w", err)
	}

	mu.Lock()
	for _, cid := range clientIDs {
		msgs := append([]string(nil), delivered[cid]...)
		sort.Strings(msgs)
		fmt.Printf("  %s delivered %v\n", cid, msgs)
	}
	mu.Unlock()

	// The supervised transport keeps per-link counters; a healthy run shows
	// one dial per active link and no retries or drops.
	fmt.Println("\ntransport counters:")
	for _, cid := range clientIDs {
		var dials, retries, drops, frames int64
		for _, s := range clients[cid].LinkStats() {
			dials += s.Dials
			retries += s.Retries
			frames += s.FramesSent
			drops += s.Drops()
		}
		fmt.Printf("  %s: dials=%d retries=%d frames=%d drops=%d\n", cid, dials, retries, frames, drops)
	}

	fmt.Println("\nvirtually synchronous multicast over real sockets ✓")
	return nil
}

func waitFor(limit time.Duration, cond func() bool) error {
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("timed out after %v", limit)
}
