// WAN hierarchy: the paper's Section 9 scalability extension in action. A
// 12-member group reconfigures twice — once with the flat all-to-all
// synchronization exchange, once with two-tier cut aggregation (members
// send their cut to a group leader; leaders exchange aggregated bundles) —
// and we compare what crossed the wire.
package main

import (
	"fmt"
	"log"
	"time"

	"vsgm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const members = 12

	measure := func(groupSize int) (syncs, bundles int64, err error) {
		cluster, err := vsgm.NewCluster(vsgm.ClusterConfig{
			Procs: vsgm.ProcIDs(members),
			Seed:  17,
			// A realistic membership agreement round: the leaders' batching
			// window is the gap between start_change and the view decision.
			MembershipRound:    10 * time.Millisecond,
			HierarchyGroupSize: groupSize,
		})
		if err != nil {
			return 0, 0, err
		}
		all := vsgm.NewProcSet(cluster.Procs()...)
		if _, _, err := cluster.ReconfigureTo(all); err != nil {
			return 0, 0, err
		}
		// Some in-flight traffic so the cut agreement carries real state.
		for _, p := range cluster.Procs() {
			if _, err := cluster.Send(p, []byte("wan-payload")); err != nil {
				return 0, 0, err
			}
		}
		if err := cluster.Run(); err != nil {
			return 0, 0, err
		}

		before := cluster.Network().Stats()
		if _, _, err := cluster.ReconfigureTo(all); err != nil {
			return 0, 0, err
		}
		delta := cluster.Network().Stats().Sub(before)
		return delta.Sent.Sync, delta.Sent.Bundle, nil
	}

	flatSync, flatBundle, err := measure(0)
	if err != nil {
		return err
	}
	hierSync, hierBundle, err := measure(4)
	if err != nil {
		return err
	}

	fmt.Printf("synchronizing a view change across %d members:\n\n", members)
	fmt.Printf("  flat (every member → every member):\n")
	fmt.Printf("    %d sync messages, %d bundles\n\n", flatSync, flatBundle)
	fmt.Printf("  two-tier (groups of 4, cuts aggregated at leaders):\n")
	fmt.Printf("    %d sync messages, %d bundles\n\n", hierSync, hierBundle)

	flatTotal := flatSync + flatBundle
	hierTotal := hierSync + hierBundle
	fmt.Printf("total sync-related messages: %d → %d (%.0f%% saved)\n",
		flatTotal, hierTotal, 100*float64(flatTotal-hierTotal)/float64(flatTotal))
	fmt.Println("\nthe paper's §9 trade: fewer, aggregated messages per change,")
	fmt.Println("at the cost of the extra member→leader→leader hops.")
	return nil
}
