// Causal feed: a microblog where replies can never appear before the posts
// they answer — causally ordered multicast (vector timestamps) layered on
// the virtually synchronous FIFO service, the second of the stronger
// ordering services Section 4.1.1 of the paper points at.
package main

import (
	"fmt"
	"log"
	"time"

	"vsgm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		cluster  *vsgm.Cluster
		sessions = make(map[vsgm.ProcID]*vsgm.CausalOrder)
		feeds    = make(map[vsgm.ProcID][]string)
	)
	cluster, err := vsgm.NewCluster(vsgm.ClusterConfig{
		Procs: vsgm.ProcIDs(3),
		Seed:  5,
		// Heavy jitter: without the causal layer, the reply regularly
		// overtakes the post it answers at some member.
		Latency: vsgm.UniformLatency{Base: 10 * time.Millisecond, Jitter: 9 * time.Millisecond},
		OnAppEvent: func(p vsgm.ProcID, ev vsgm.Event) {
			if s := sessions[p]; s != nil {
				if err := s.HandleEvent(ev); err != nil {
					log.Printf("session %s: %v", p, err)
				}
			}
		},
	})
	if err != nil {
		return err
	}
	procs := cluster.Procs()
	names := map[vsgm.ProcID]string{procs[0]: "ana", procs[1]: "ben", procs[2]: "cho"}

	for _, p := range procs {
		p := p
		session, err := vsgm.NewCausalOrder(p,
			func(payload []byte) error {
				_, err := cluster.Send(p, payload)
				return err
			},
			func(sender vsgm.ProcID, payload []byte) {
				post := fmt.Sprintf("%s: %s", names[sender], payload)
				feeds[p] = append(feeds[p], post)
				// ben replies the moment he sees ana's post — a genuine
				// causal dependency.
				if p == procs[1] && string(payload) == "shipping the release today!" {
					if err := sessions[p].Send([]byte("congrats! 🎉")); err != nil {
						log.Printf("reply: %v", err)
					}
				}
			},
			nil)
		if err != nil {
			return err
		}
		sessions[p] = session
	}

	if _, _, err := cluster.ReconfigureTo(vsgm.NewProcSet(procs...)); err != nil {
		return err
	}

	if err := sessions[procs[0]].Send([]byte("shipping the release today!")); err != nil {
		return err
	}
	if err := cluster.Run(); err != nil {
		return err
	}

	fmt.Println("every member's feed (replies always follow their posts):")
	for _, p := range procs {
		fmt.Printf("\n-- %s's feed --\n", names[p])
		for _, post := range feeds[p] {
			fmt.Println(" ", post)
		}
	}

	// Verify the causal guarantee explicitly at every member.
	for _, p := range procs {
		postAt, replyAt := -1, -1
		for i, post := range feeds[p] {
			switch post {
			case "ana: shipping the release today!":
				postAt = i
			case "ben: congrats! 🎉":
				replyAt = i
			}
		}
		if postAt == -1 || replyAt == -1 || replyAt < postAt {
			return fmt.Errorf("causal order violated at %s: %v", names[p], feeds[p])
		}
	}
	fmt.Println("\ncausal order holds everywhere ✓")
	return nil
}
