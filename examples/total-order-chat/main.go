// Total-order chat: a chat room where every participant sees every message
// in exactly the same order, even when everyone talks at once — totally
// ordered multicast layered on the within-view FIFO service, exactly the
// layering the paper points at in Section 4.1.1.
package main

import (
	"fmt"
	"log"
	"time"

	"vsgm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		cluster  *vsgm.Cluster
		sessions = make(map[vsgm.ProcID]*vsgm.TotalOrder)
		logs     = make(map[vsgm.ProcID][]string)
	)
	cluster, err := vsgm.NewCluster(vsgm.ClusterConfig{
		Procs: vsgm.ProcIDs(3),
		Seed:  99,
		// Strong jitter: the racing messages genuinely arrive in different
		// orders at different members; the total-order layer fixes it.
		Latency: vsgm.UniformLatency{Base: 10 * time.Millisecond, Jitter: 9 * time.Millisecond},
		OnAppEvent: func(p vsgm.ProcID, ev vsgm.Event) {
			if s := sessions[p]; s != nil {
				if err := s.HandleEvent(ev); err != nil {
					log.Printf("session %s: %v", p, err)
				}
			}
		},
	})
	if err != nil {
		return err
	}
	procs := cluster.Procs()
	names := map[vsgm.ProcID]string{procs[0]: "alice", procs[1]: "bob", procs[2]: "carol"}

	for _, p := range procs {
		p := p
		session, err := vsgm.NewTotalOrder(p,
			func(payload []byte) error {
				_, err := cluster.Send(p, payload)
				return err
			},
			func(sender vsgm.ProcID, payload []byte) {
				logs[p] = append(logs[p], fmt.Sprintf("%s: %s", names[sender], payload))
			},
			nil)
		if err != nil {
			return err
		}
		sessions[p] = session
	}

	if _, _, err := cluster.ReconfigureTo(vsgm.NewProcSet(procs...)); err != nil {
		return err
	}

	// Everyone talks at once, repeatedly.
	lines := []string{"hi all", "who's driving today?", "I can take it", "works for me"}
	for i, line := range lines {
		p := procs[i%len(procs)]
		if err := sessions[p].Send([]byte(line)); err != nil {
			return err
		}
		// Two members interject concurrently with the line above.
		other := procs[(i+1)%len(procs)]
		if err := sessions[other].Send([]byte("+1")); err != nil {
			return err
		}
	}
	if err := cluster.Run(); err != nil {
		return err
	}

	fmt.Println("every member's chat log (identical by construction):")
	for _, p := range procs {
		fmt.Printf("\n-- as seen by %s --\n", names[p])
		for _, line := range logs[p] {
			fmt.Println(" ", line)
		}
	}

	// Verify the guarantee explicitly.
	for _, p := range procs[1:] {
		if fmt.Sprint(logs[p]) != fmt.Sprint(logs[procs[0]]) {
			return fmt.Errorf("logs diverged between %s and %s", procs[0], p)
		}
	}
	fmt.Println("\nall logs identical ✓")
	return nil
}
