// Quickstart: form a group, multicast a few messages with virtually
// synchronous semantics, then watch a view change. Everything runs in a
// deterministic in-memory simulation, so the output is reproducible.
package main

import (
	"fmt"
	"log"

	"vsgm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A three-member group whose application events we print as they
	// happen at end-point p00.
	cluster, err := vsgm.NewCluster(vsgm.ClusterConfig{
		Procs: vsgm.ProcIDs(3),
		Seed:  1,
		OnAppEvent: func(p vsgm.ProcID, ev vsgm.Event) {
			if p == "p00" {
				fmt.Printf("  [%s] %s\n", p, ev)
			}
		},
	})
	if err != nil {
		return err
	}
	procs := cluster.Procs()
	all := vsgm.NewProcSet(procs...)

	// The membership service forms the first view; every end-point runs
	// the one-round synchronization protocol and installs it.
	fmt.Println("forming the group:")
	view, took, err := cluster.ReconfigureTo(all)
	if err != nil {
		return err
	}
	fmt.Printf("group %s installed everywhere in %v\n\n", view, took)

	// Multicast: messages are delivered in the view they were sent in,
	// gap-free and FIFO per sender, at every member.
	fmt.Println("multicasting:")
	for _, p := range procs {
		if _, err := cluster.Send(p, []byte("hello from "+string(p))); err != nil {
			return err
		}
	}
	if err := cluster.Run(); err != nil {
		return err
	}

	// A member leaves. The survivors agree on the exact set of messages
	// delivered in the old view (Virtual Synchrony) and learn, via the
	// transitional set, exactly who moved with them.
	fmt.Println("\np02 leaves the group:")
	rest := vsgm.NewProcSet(procs[0], procs[1])
	view, took, err = cluster.ReconfigureTo(rest)
	if err != nil {
		return err
	}
	fmt.Printf("view %s installed at the survivors in %v\n", view, took)

	fmt.Printf("\ntotals: %d messages delivered, %d views installed\n",
		cluster.Metrics().Delivered, cluster.Metrics().ViewInstalls)
	return nil
}
