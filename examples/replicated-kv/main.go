// Replicated key-value store: state-machine replication over the virtually
// synchronous service. Commands flow in total order; when a view change
// brings in a process from a different view, the transitional set tells the
// replicas that a state transfer is needed — and when everyone moves
// together, Virtual Synchrony guarantees identical state with no transfer
// at all (the paper's Section 4.1.2 motivation).
package main

import (
	"fmt"
	"log"

	"vsgm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		cluster  *vsgm.Cluster
		replicas = make(map[vsgm.ProcID]*vsgm.Replica)
		stores   = make(map[vsgm.ProcID]*vsgm.KVStore)
	)
	cluster, err := vsgm.NewCluster(vsgm.ClusterConfig{
		Procs: vsgm.ProcIDs(3),
		Seed:  11,
		OnAppEvent: func(p vsgm.ProcID, ev vsgm.Event) {
			if r := replicas[p]; r != nil {
				if err := r.HandleEvent(ev); err != nil {
					log.Printf("replica %s: %v", p, err)
				}
			}
		},
	})
	if err != nil {
		return err
	}
	procs := cluster.Procs()

	// p00 and p01 found the store; p02 joins later with empty state.
	for _, p := range procs {
		p := p
		store := vsgm.NewKVStore()
		replica, err := vsgm.NewReplica(vsgm.ReplicaConfig{
			ID:        p,
			Machine:   store,
			Bootstrap: p != "p02",
			Send: func(payload []byte) error {
				_, err := cluster.Send(p, payload)
				return err
			},
		})
		if err != nil {
			return err
		}
		replicas[p] = replica
		stores[p] = store
	}

	founders := vsgm.NewProcSet(procs[0], procs[1])
	fmt.Println("founders p00, p01 form the store:")
	if _, _, err := cluster.ReconfigureTo(founders); err != nil {
		return err
	}

	fmt.Println("writing through p00 and p01:")
	writes := map[string]string{"region": "eu-west", "replicas": "2", "owner": "alice"}
	for k, v := range writes {
		if err := replicas[procs[0]].Propose(vsgm.EncodeSet(k, v)); err != nil {
			return err
		}
	}
	if err := replicas[procs[1]].Propose(vsgm.EncodeSet("owner", "bob")); err != nil {
		return err
	}
	if err := cluster.Run(); err != nil {
		return err
	}
	fmt.Printf("  p00 sees: %s\n", stores[procs[0]].Fingerprint())
	fmt.Printf("  p01 sees: %s\n", stores[procs[1]].Fingerprint())

	// p02 joins. Its transitional set differs from the new membership, so
	// the minimum synced member publishes a snapshot; p02 restores it and
	// then participates as a full replica.
	fmt.Println("\np02 joins and receives a state transfer:")
	all := vsgm.NewProcSet(procs...)
	if _, _, err := cluster.ReconfigureTo(all); err != nil {
		return err
	}
	if err := cluster.Run(); err != nil {
		return err
	}
	fmt.Printf("  p02 synced=%v, sees: %s\n", replicas[procs[2]].Synced(), stores[procs[2]].Fingerprint())

	fmt.Println("\np02 writes after syncing:")
	if err := replicas[procs[2]].Propose(vsgm.EncodeSet("joined", "p02")); err != nil {
		return err
	}
	if err := cluster.Run(); err != nil {
		return err
	}
	for _, p := range procs {
		fmt.Printf("  %s sees: %s\n", p, stores[p].Fingerprint())
	}

	// A same-membership view change: everyone moves together, so no state
	// is exchanged at all.
	before := replicas[procs[2]].Applied()
	if _, _, err := cluster.ReconfigureTo(all); err != nil {
		return err
	}
	fmt.Printf("\nview change with everyone moving together: %d commands re-applied (Virtual Synchrony at work)\n",
		replicas[procs[2]].Applied()-before)
	return nil
}
