// Package baseline implements the comparison algorithms against which the
// paper positions its contribution:
//
//   - TwoRound: a virtually synchronous multicast end-point in the style the
//     paper attributes to previously suggested algorithms (e.g., Totem,
//     structured virtual synchrony): upon a membership view, the members
//     first run an explicit round to pre-agree on a globally unique
//     identifier, and only then exchange synchronization messages tagged
//     with it. Reconfiguration therefore costs two sequential message
//     rounds after the membership decision, where the paper's algorithm
//     overlaps its single synchronization round with the membership round.
//
//   - RestartPolicy helpers (restart.go): the view-change scheduling policy
//     of algorithms that complete the current membership change before
//     admitting new joiners, delivering views that are already known to be
//     out of date (experiment E3).
//
// TwoRound implements the sim.Node interface so it runs under the identical
// simulation harness, latency model, and spec checkers as the paper's
// algorithm.
package baseline

import (
	"errors"

	"vsgm/internal/core"
	"vsgm/internal/types"
)

// TwoRound is the two-round virtually synchronous end-point. It ignores
// start_change notifications entirely: without locally unique identifiers
// echoed in the view, it cannot synchronize before the membership decision
// arrives, which is precisely the structural difference the paper removes.
type TwoRound struct {
	id        types.ProcID
	transport core.Transport

	currentView types.View
	pendingView *types.View

	msgs      map[types.ProcID]map[string][]types.AppMsg
	lastSent  int
	lastDlvrd map[types.ProcID]int
	viewMsg   map[types.ProcID]types.View
	viewAnn   bool // view_msg for currentView already multicast

	// Per-identifier round state. The globally unique identifier the
	// members agree on is the new view's key.
	proposes map[string]types.ProcSet
	syncs    map[string]map[types.ProcID]*types.SyncMsg

	blocked bool
	crashed bool

	nextMsgID int64
	pending   []core.Event

	viewsInstalled int64
}

// sync payload: we reuse types.SyncMsg; View carries the sender's previous
// view so receivers can compute transitional sets and restrict cut agreement
// to processes moving from the same view.

// NewTwoRound constructs a baseline end-point.
func NewTwoRound(id types.ProcID, tr core.Transport, msgIDBase int64) (*TwoRound, error) {
	if id == "" {
		return nil, errors.New("baseline: id required")
	}
	if tr == nil {
		return nil, errors.New("baseline: transport required")
	}
	b := &TwoRound{id: id, transport: tr, nextMsgID: msgIDBase}
	b.reset()
	return b, nil
}

func (b *TwoRound) reset() {
	b.currentView = types.InitialView(b.id)
	b.pendingView = nil
	b.msgs = make(map[types.ProcID]map[string][]types.AppMsg)
	b.lastSent = 0
	b.lastDlvrd = make(map[types.ProcID]int)
	b.viewMsg = map[types.ProcID]types.View{b.id: types.InitialView(b.id)}
	b.viewAnn = true // the singleton view needs no announcement
	b.proposes = make(map[string]types.ProcSet)
	b.syncs = make(map[string]map[types.ProcID]*types.SyncMsg)
	b.blocked = false
}

// ID implements sim.Node.
func (b *TwoRound) ID() types.ProcID { return b.id }

// CurrentView implements sim.Node.
func (b *TwoRound) CurrentView() types.View { return b.currentView.Clone() }

// ViewsInstalled returns the number of views delivered to the application.
func (b *TwoRound) ViewsInstalled() int64 { return b.viewsInstalled }

// TakeEvents implements sim.Node.
func (b *TwoRound) TakeEvents() []core.Event {
	evs := b.pending
	b.pending = nil
	return evs
}

// HandleStartChange implements sim.Node: the baseline cannot exploit
// start_change notifications.
func (b *TwoRound) HandleStartChange(types.StartChange) {}

// BlockOK implements sim.Node; the baseline blocks its client implicitly at
// view arrival.
func (b *TwoRound) BlockOK() {}

// Crash implements sim.Node.
func (b *TwoRound) Crash() {
	b.crashed = true
	b.pending = nil
}

// Recover implements sim.Node.
func (b *TwoRound) Recover() {
	if !b.crashed {
		return
	}
	b.crashed = false
	b.reset()
}

// Send implements sim.Node: multicast an application message in the current
// view. Sending during a view change is rejected (the client is blocked for
// the whole two-round exchange).
func (b *TwoRound) Send(payload []byte) (types.AppMsg, error) {
	if b.crashed {
		return types.AppMsg{}, core.ErrCrashed
	}
	if b.blocked {
		return types.AppMsg{}, core.ErrBlocked
	}
	b.nextMsgID++
	m := types.AppMsg{ID: b.nextMsgID, Payload: append([]byte(nil), payload...)}
	b.appendMsg(b.id, b.currentView.Key(), m)
	b.announceView()
	others := b.others(b.currentView.Members)
	b.lastSent = b.ownCount()
	if len(others) > 0 {
		b.transport.Send(others, types.WireMsg{Kind: types.KindApp, App: m})
	}
	b.deliverReady()
	return m, nil
}

// HandleView implements sim.Node: the membership decided a view. Round one
// begins: multicast a propose message carrying the (globally unique) view
// identifier to the new members.
func (b *TwoRound) HandleView(v types.View) {
	if b.crashed || v.ID <= b.currentView.ID {
		return
	}
	cp := v.Clone()
	b.pendingView = &cp
	if !b.blocked {
		b.blocked = true
		b.emit(core.BlockEvent{})
	}
	b.transport.SetReliable(b.currentView.Members.Union(v.Members))
	key := v.Key()
	if b.proposes[key] == nil {
		b.proposes[key] = types.NewProcSet()
	}
	b.proposes[key].Add(b.id)
	if others := b.others(v.Members); len(others) > 0 {
		b.transport.Send(others, types.WireMsg{Kind: types.KindPropose, View: v.Clone()})
	}
	b.maybeSendSync()
	b.maybeInstall()
}

// HandleMessage implements sim.Node.
func (b *TwoRound) HandleMessage(from types.ProcID, m types.WireMsg) {
	if b.crashed {
		return
	}
	switch m.Kind {
	case types.KindView:
		b.viewMsg[from] = m.View.Clone()
	case types.KindApp:
		vm, ok := b.viewMsg[from]
		if !ok {
			vm = types.InitialView(from)
		}
		b.appendMsg(from, vm.Key(), m.App)
		b.deliverReady()
	case types.KindPropose:
		key := m.View.Key()
		if b.proposes[key] == nil {
			b.proposes[key] = types.NewProcSet()
		}
		b.proposes[key].Add(from)
		b.maybeSendSync()
	case types.KindSync:
		// For the baseline, CID is unused; the sync is tagged by the view
		// carried in m.HistView (the pending view) and m.View is the
		// sender's previous view.
		key := m.HistView.Key()
		row := b.syncs[key]
		if row == nil {
			row = make(map[types.ProcID]*types.SyncMsg)
			b.syncs[key] = row
		}
		row[from] = &types.SyncMsg{View: m.View.Clone(), Cut: m.Cut.Clone()}
		b.deliverReady()
	}
	b.maybeInstall()
}

// maybeSendSync fires round two once round one completed: proposes for the
// pending view's identifier have arrived from every member.
func (b *TwoRound) maybeSendSync() {
	if b.pendingView == nil {
		return
	}
	key := b.pendingView.Key()
	got := b.proposes[key]
	if got == nil || !b.pendingView.Members.SubsetOf(got) {
		return
	}
	row := b.syncs[key]
	if row == nil {
		row = make(map[types.ProcID]*types.SyncMsg)
		b.syncs[key] = row
	}
	if _, sent := row[b.id]; sent {
		return
	}
	cut := make(types.Cut, b.currentView.Members.Len())
	for q := range b.currentView.Members {
		cut[q] = len(b.msgs[q][b.currentView.Key()])
	}
	row[b.id] = &types.SyncMsg{View: b.currentView.Clone(), Cut: cut.Clone()}
	if others := b.others(b.pendingView.Members); len(others) > 0 {
		b.transport.Send(others, types.WireMsg{
			Kind:     types.KindSync,
			View:     b.currentView.Clone(),
			Cut:      cut,
			HistView: b.pendingView.Clone(),
		})
	}
	b.deliverReady()
}

// agreedCut returns the maximum cut over the transitional-set members (those
// whose sync declares the same previous view as ours), or nil if any sync is
// still missing.
func (b *TwoRound) agreedCut() (types.Cut, types.ProcSet) {
	if b.pendingView == nil {
		return nil, nil
	}
	key := b.pendingView.Key()
	row := b.syncs[key]
	for q := range b.pendingView.Members {
		if row[q] == nil {
			return nil, nil
		}
	}
	trans := types.NewProcSet()
	var cuts []types.Cut
	for q, sm := range row {
		if b.pendingView.Members.Contains(q) && sm.View.Equal(b.currentView) {
			trans.Add(q)
			cuts = append(cuts, sm.Cut)
		}
	}
	return types.MaxCut(cuts), trans
}

// deliveryLimit bounds application delivery during a view change, exactly as
// the paper's algorithm does: own cut once committed, agreed cut once known.
func (b *TwoRound) deliveryLimit(q types.ProcID) (int, bool) {
	if b.pendingView == nil {
		return 0, false
	}
	own := b.syncs[b.pendingView.Key()][b.id]
	if own == nil {
		return 0, false
	}
	if agreed, _ := b.agreedCut(); agreed != nil {
		return agreed[q], true
	}
	return own.Cut[q], true
}

// deliverReady delivers pending application messages in FIFO order.
func (b *TwoRound) deliverReady() {
	for progress := true; progress; {
		progress = false
		for _, q := range b.currentView.Members.Sorted() {
			next := b.lastDlvrd[q] + 1
			seq := b.msgs[q][b.currentView.Key()]
			if next > len(seq) {
				continue
			}
			if q == b.id && next > b.lastSent {
				continue
			}
			if limit, limited := b.deliveryLimit(q); limited && next > limit {
				continue
			}
			b.lastDlvrd[q] = next
			b.emit(core.DeliverEvent{Sender: q, Msg: seq[next-1], InView: b.currentView.Clone()})
			progress = true
		}
	}
}

// maybeInstall installs the pending view once both rounds completed and the
// agreed cut has been delivered.
func (b *TwoRound) maybeInstall() {
	if b.crashed || b.pendingView == nil {
		return
	}
	agreed, trans := b.agreedCut()
	if agreed == nil {
		return
	}
	b.deliverReady()
	for q := range b.currentView.Members {
		if b.lastDlvrd[q] != agreed[q] {
			return
		}
	}
	if b.lastDlvrd[b.id] != b.ownCount() {
		return // self delivery
	}

	v := *b.pendingView
	b.emit(core.ViewEvent{View: v.Clone(), TransitionalSet: trans.Clone()})
	b.currentView = v.Clone()
	b.pendingView = nil
	b.lastSent = 0
	b.lastDlvrd = make(map[types.ProcID]int)
	b.blocked = false
	b.viewAnn = false
	b.viewsInstalled++
	delete(b.proposes, v.Key())
	delete(b.syncs, v.Key())
	b.transport.SetReliable(b.currentView.Members.Clone())
	b.announceView()
	b.deliverReady()
}

// announceView multicasts the view_msg for the current view once.
func (b *TwoRound) announceView() {
	if b.viewAnn {
		return
	}
	b.viewAnn = true
	b.viewMsg[b.id] = b.currentView.Clone()
	if others := b.others(b.currentView.Members); len(others) > 0 {
		b.transport.Send(others, types.WireMsg{Kind: types.KindView, View: b.currentView.Clone()})
	}
}

func (b *TwoRound) appendMsg(q types.ProcID, viewKey string, m types.AppMsg) {
	row := b.msgs[q]
	if row == nil {
		row = make(map[string][]types.AppMsg)
		b.msgs[q] = row
	}
	row[viewKey] = append(row[viewKey], m)
}

func (b *TwoRound) ownCount() int {
	return len(b.msgs[b.id][b.currentView.Key()])
}

func (b *TwoRound) others(set types.ProcSet) []types.ProcID {
	return set.Minus(types.NewProcSet(b.id)).Sorted()
}

func (b *TwoRound) emit(ev core.Event) { b.pending = append(b.pending, ev) }
