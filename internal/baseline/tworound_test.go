package baseline

import (
	"testing"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/corfifo"
	"vsgm/internal/sim"
	"vsgm/internal/spec"
	"vsgm/internal/types"
)

// newBaselineCluster builds a simulation cluster running TwoRound nodes.
func newBaselineCluster(t *testing.T, n int, suite *spec.Suite) *sim.Cluster {
	t.Helper()
	c, err := sim.NewCluster(sim.Config{
		Procs:           sim.ProcIDs(n),
		Latency:         sim.FixedLatency(10 * time.Millisecond),
		MembershipRound: 10 * time.Millisecond,
		Seed:            3,
		Suite:           suite,
		NewNode: func(p types.ProcID, idx int, tr *corfifo.Handle) (sim.Node, error) {
			return NewTwoRound(p, tr, int64(idx+1)*1_000_000_000)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTwoRoundFormsViewAndMulticasts(t *testing.T) {
	suite := spec.VSSuite(spec.WithTrace())
	c := newBaselineCluster(t, 4, suite)
	all := types.NewProcSet(c.Procs()...)

	v, _, err := c.ReconfigureTo(all)
	if err != nil {
		t.Fatalf("reconfigure: %v", err)
	}
	for _, p := range c.Procs() {
		if got := c.Endpoint(p).CurrentView(); !got.Equal(v) {
			t.Errorf("%s current view = %s, want %s", p, got, v)
		}
	}

	for _, p := range c.Procs() {
		if _, err := c.Send(p, []byte("hello")); err != nil {
			t.Fatalf("send from %s: %v", p, err)
		}
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	want := int64(len(c.Procs()) * len(c.Procs()))
	if got := c.Metrics().Delivered; got != want {
		t.Errorf("delivered %d, want %d", got, want)
	}
	if err := suite.Err(); err != nil {
		t.Fatalf("spec violations:\n%v", err)
	}
	if err := spec.CheckLiveness(suite.Trace(), v); err != nil {
		t.Errorf("liveness: %v", err)
	}
}

func TestTwoRoundVirtualSynchronyAcrossLeave(t *testing.T) {
	suite := spec.VSSuite(spec.WithTrace())
	c := newBaselineCluster(t, 4, suite)
	procs := c.Procs()
	all := types.NewProcSet(procs...)
	if _, _, err := c.ReconfigureTo(all); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		for _, p := range procs {
			if _, err := c.Send(p, []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
	}
	survivors := types.NewProcSet(procs[0], procs[1], procs[2])
	if _, _, err := c.ReconfigureTo(survivors); err != nil {
		t.Fatal(err)
	}
	if err := suite.Err(); err != nil {
		t.Fatalf("spec violations:\n%v", err)
	}
}

func TestTwoRoundIsSlowerThanOneRound(t *testing.T) {
	// The headline comparison (experiment E1 in miniature): with equal link
	// latency, the paper's algorithm installs the view in roughly one round
	// after the membership decision; the baseline needs two more rounds.
	const (
		latency = 10 * time.Millisecond
		mRound  = 10 * time.Millisecond
	)

	run := func(factory sim.NodeFactory) time.Duration {
		cfg := sim.Config{
			Procs:           sim.ProcIDs(8),
			Latency:         sim.FixedLatency(latency),
			MembershipRound: mRound,
			Seed:            5,
			NewNode:         factory,
		}
		c, err := sim.NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		all := types.NewProcSet(c.Procs()...)
		// Warm up: form the group (first formation from singletons is
		// degenerate), then measure a same-membership reconfiguration.
		if _, _, err := c.ReconfigureTo(all); err != nil {
			t.Fatal(err)
		}
		_, d, err := c.ReconfigureTo(all)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	ours := run(nil)
	base := run(func(p types.ProcID, idx int, tr *corfifo.Handle) (sim.Node, error) {
		return NewTwoRound(p, tr, int64(idx+1)*1_000_000_000)
	})

	if ours >= base {
		t.Errorf("one-round algorithm (%v) not faster than two-round baseline (%v)", ours, base)
	}
	// The baseline pays ~2 extra link latencies after the membership view.
	if base-ours < latency {
		t.Errorf("expected at least one round of advantage, got %v (ours=%v base=%v)",
			base-ours, ours, base)
	}
}

func TestTwoRoundBlocksSendsDuringChange(t *testing.T) {
	c := newBaselineCluster(t, 3, nil)
	all := types.NewProcSet(c.Procs()...)
	if _, _, err := c.ReconfigureTo(all); err != nil {
		t.Fatal(err)
	}
	// Begin a change but stop the clock before it completes: the baseline
	// blocks its client for the whole two-round exchange.
	if err := c.StartChange(all); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DeliverView(all); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFor(15 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send(c.Procs()[0], []byte("x")); err != core.ErrBlocked {
		t.Fatalf("send mid-change: err = %v, want ErrBlocked", err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send(c.Procs()[0], []byte("x")); err != nil {
		t.Fatalf("send after change: %v", err)
	}
}

func TestTwoRoundCrashAndRecover(t *testing.T) {
	c := newBaselineCluster(t, 3, nil)
	procs := c.Procs()
	all := types.NewProcSet(procs...)
	if _, _, err := c.ReconfigureTo(all); err != nil {
		t.Fatal(err)
	}

	if err := c.Crash(procs[2]); err != nil {
		t.Fatal(err)
	}
	node := c.Endpoint(procs[2])
	if _, err := node.Send([]byte("dead")); err != core.ErrCrashed {
		t.Fatalf("send while crashed: %v", err)
	}
	survivors := types.NewProcSet(procs[0], procs[1])
	if _, _, err := c.ReconfigureTo(survivors); err != nil {
		t.Fatal(err)
	}

	if err := c.Recover(procs[2]); err != nil {
		t.Fatal(err)
	}
	if !node.CurrentView().Equal(types.InitialView(procs[2])) {
		t.Fatalf("recovered baseline node view = %s", node.CurrentView())
	}
	v, _, err := c.ReconfigureTo(all)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range procs {
		if got := c.Endpoint(p).CurrentView(); !got.Equal(v) {
			t.Errorf("%s view = %s, want %s", p, got, v)
		}
	}
}

func TestRestartChurnWithBaselineNodes(t *testing.T) {
	// The churn drivers also run over baseline nodes: every join is a full
	// two-round change, and every intermediate view is delivered.
	c := newBaselineCluster(t, 6, nil)
	procs := c.Procs()
	initial := types.NewProcSet(procs[:3]...)
	if _, _, err := c.ReconfigureTo(initial); err != nil {
		t.Fatal(err)
	}

	joins := []types.ProcSet{
		types.NewProcSet(procs[:4]...),
		types.NewProcSet(procs[:5]...),
		types.NewProcSet(procs[:6]...),
	}
	res, err := RunRestartChurn(c, joins)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FinalView.Members.Equal(joins[2]) {
		t.Fatalf("final view = %s", res.FinalView)
	}
	// Original members saw all three views; joiners fewer — the average
	// sits strictly between 1 and 3.
	if res.ViewsPerMember <= 1 || res.ViewsPerMember > 3 {
		t.Fatalf("views/member = %.2f", res.ViewsPerMember)
	}
}
