package baseline

import (
	"fmt"

	"vsgm/internal/sim"
	"vsgm/internal/types"
)

// ChurnResult summarizes a cascading-join scenario (experiment E3): how many
// views the applications had to process while the membership worked through
// a burst of joins, and how long the whole burst took to stabilize.
type ChurnResult struct {
	// ViewsPerMember is the number of views delivered to each surviving
	// application (averaged over the members of the final view).
	ViewsPerMember float64
	// FinalView is the stabilized view.
	FinalView types.View
}

// RunEagerChurn drives the paper's policy on the given cluster: the
// membership announces every change as soon as it is known (a fresh
// start_change per change of mind), so end-points skip views that are
// already out of date. joins lists the successive membership sets; the
// changes are issued back-to-back, before the previous view installs.
func RunEagerChurn(c *sim.Cluster, joins []types.ProcSet) (ChurnResult, error) {
	before := installCounts(c)
	for i, set := range joins {
		if err := c.StartChange(set); err != nil {
			return ChurnResult{}, fmt.Errorf("churn step %d: %w", i, err)
		}
		if _, err := c.DeliverView(set); err != nil {
			return ChurnResult{}, fmt.Errorf("churn step %d: %w", i, err)
		}
	}
	final := joins[len(joins)-1]
	if err := c.Run(); err != nil {
		return ChurnResult{}, err
	}
	return churnResult(c, final, before)
}

// RunRestartChurn drives the restart-on-join policy the paper contrasts
// with (Section 1): each membership change runs to completion — the view is
// delivered to every application — before the next join is admitted, so the
// applications process every intermediate (already out-of-date) view.
func RunRestartChurn(c *sim.Cluster, joins []types.ProcSet) (ChurnResult, error) {
	before := installCounts(c)
	for i, set := range joins {
		if err := c.StartChange(set); err != nil {
			return ChurnResult{}, fmt.Errorf("churn step %d: %w", i, err)
		}
		if _, err := c.DeliverView(set); err != nil {
			return ChurnResult{}, fmt.Errorf("churn step %d: %w", i, err)
		}
		// Complete this change before admitting the next join.
		if err := c.Run(); err != nil {
			return ChurnResult{}, err
		}
	}
	return churnResult(c, joins[len(joins)-1], before)
}

func installCounts(c *sim.Cluster) map[types.ProcID]int64 {
	out := make(map[types.ProcID]int64)
	for _, p := range c.Procs() {
		out[p] = viewsInstalled(c, p)
	}
	return out
}

func viewsInstalled(c *sim.Cluster, p types.ProcID) int64 {
	if ep := c.CoreEndpoint(p); ep != nil {
		return ep.ViewsInstalled()
	}
	if b, ok := c.Endpoint(p).(*TwoRound); ok {
		return b.ViewsInstalled()
	}
	return 0
}

func churnResult(c *sim.Cluster, final types.ProcSet, before map[types.ProcID]int64) (ChurnResult, error) {
	var (
		total   int64
		members int
	)
	var finalView types.View
	for _, p := range final.Sorted() {
		cur := c.Endpoint(p).CurrentView()
		if !cur.Members.Equal(final) {
			return ChurnResult{}, fmt.Errorf("%s stabilized in %s, want members %s", p, cur, final)
		}
		finalView = cur
		total += viewsInstalled(c, p) - before[p]
		members++
	}
	return ChurnResult{
		ViewsPerMember: float64(total) / float64(members),
		FinalView:      finalView,
	}, nil
}
