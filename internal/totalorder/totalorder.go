// Package totalorder layers a totally ordered multicast on top of the
// virtually synchronous FIFO service, substantiating the paper's remark
// (Section 4.1.1) that WV_RFIFO is a base on which stronger ordering
// services — like the totally ordered multicast of Chockler-Huleihel-Dolev —
// are built.
//
// The algorithm is sequencer-based within each view: the minimum-identifier
// member of the current view assigns global sequence numbers to the
// (sender, per-sender index) pairs it delivers, and multicasts the
// assignments as ordinary application messages. Every member releases data
// messages to the application in assignment order. Virtual Synchrony makes
// view changes safe: processes moving together deliver the same set of data
// and assignment messages in the old view, so the deterministic flush at a
// view boundary (remaining unassigned messages, sorted by sender and index)
// yields the identical order at every member of the transitional set.
package totalorder

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"vsgm/internal/core"
	"vsgm/internal/types"
)

// SendFunc multicasts a raw payload through the underlying GCS end-point.
type SendFunc func(payload []byte) error

// DeliverFunc receives one totally ordered application message.
type DeliverFunc func(sender types.ProcID, payload []byte)

// ViewFunc observes view changes after the boundary flush.
type ViewFunc func(v types.View, transitionalSet types.ProcSet)

const (
	tagData  byte = 1
	tagOrder byte = 2
)

// ErrBlocked is returned by Send while the underlying end-point is blocked
// for a view change.
var ErrBlocked = core.ErrBlocked

// pendingMsg is a data message delivered by the GCS but not yet released in
// total order.
type pendingMsg struct {
	sender  types.ProcID
	index   int
	payload []byte
}

// Session is one process's total-order layer. Feed it every event of the
// underlying GCS end-point via HandleEvent, and send through Send. Not safe
// for concurrent use.
type Session struct {
	id      types.ProcID
	send    SendFunc
	deliver DeliverFunc
	onView  ViewFunc

	view      types.View
	seen      map[types.ProcID]int // per-sender data-message count in this view
	pending   map[string]*pendingMsg
	order     []string // assigned order keys not yet released
	sequenced map[string]bool
}

// New builds a session for end-point id. deliver is required; onView may be
// nil.
func New(id types.ProcID, send SendFunc, deliver DeliverFunc, onView ViewFunc) (*Session, error) {
	if send == nil || deliver == nil {
		return nil, errors.New("totalorder: send and deliver functions are required")
	}
	s := &Session{
		id:      id,
		send:    send,
		deliver: deliver,
		onView:  onView,
		view:    types.InitialView(id),
	}
	s.resetView()
	return s, nil
}

func (s *Session) resetView() {
	s.seen = make(map[types.ProcID]int)
	s.pending = make(map[string]*pendingMsg)
	s.order = nil
	s.sequenced = make(map[string]bool)
}

// Send multicasts payload in total order.
func (s *Session) Send(payload []byte) error {
	buf := make([]byte, 1+len(payload))
	buf[0] = tagData
	copy(buf[1:], payload)
	return s.send(buf)
}

// sequencer returns the current view's sequencer.
func (s *Session) sequencer() types.ProcID { return s.view.Members.Min() }

// HandleEvent feeds one event from the underlying GCS end-point.
func (s *Session) HandleEvent(ev core.Event) error {
	switch e := ev.(type) {
	case core.DeliverEvent:
		return s.onDeliver(e)
	case core.ViewEvent:
		s.flush()
		s.view = e.View.Clone()
		s.resetView()
		if s.onView != nil {
			s.onView(e.View, e.TransitionalSet)
		}
		return nil
	default:
		return nil
	}
}

func (s *Session) onDeliver(e core.DeliverEvent) error {
	if len(e.Msg.Payload) == 0 {
		return fmt.Errorf("totalorder: empty payload from %s", e.Sender)
	}
	switch e.Msg.Payload[0] {
	case tagData:
		s.seen[e.Sender]++
		idx := s.seen[e.Sender]
		key := orderKey(e.Sender, idx)
		s.pending[key] = &pendingMsg{
			sender:  e.Sender,
			index:   idx,
			payload: append([]byte(nil), e.Msg.Payload[1:]...),
		}
		if s.sequencer() == s.id {
			if err := s.sendAssignment(e.Sender, idx); err != nil && !errors.Is(err, ErrBlocked) {
				return err
			}
			// ErrBlocked: a view change is in progress; the boundary flush
			// will order this message deterministically instead.
		}
		s.release()
		return nil
	case tagOrder:
		sender, idx, err := decodeAssignment(e.Msg.Payload[1:])
		if err != nil {
			return err
		}
		key := orderKey(sender, idx)
		if !s.sequenced[key] {
			s.sequenced[key] = true
			s.order = append(s.order, key)
		}
		s.release()
		return nil
	default:
		return fmt.Errorf("totalorder: unknown tag %d from %s", e.Msg.Payload[0], e.Sender)
	}
}

// release delivers every assigned message whose data has arrived, in
// assignment order, stopping at the first gap.
func (s *Session) release() {
	for len(s.order) > 0 {
		key := s.order[0]
		m, ok := s.pending[key]
		if !ok {
			return // data not here yet; FIFO guarantees it will arrive
		}
		s.order = s.order[1:]
		delete(s.pending, key)
		s.deliver(m.sender, m.payload)
	}
}

// flush deterministically drains the layer at a view boundary: first the
// assigned backlog in assignment order (skipping assignments whose data
// never arrived — possible only when the assigner itself disconnected), then
// the never-assigned remainder sorted by sender and index. Virtual Synchrony
// guarantees every member of the transitional set holds the identical sets,
// so the flushed order agrees everywhere.
func (s *Session) flush() {
	s.release()
	for _, key := range s.order {
		if m, ok := s.pending[key]; ok {
			delete(s.pending, key)
			s.deliver(m.sender, m.payload)
		}
	}
	s.order = nil
	rest := make([]*pendingMsg, 0, len(s.pending))
	for _, m := range s.pending {
		rest = append(rest, m)
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].sender != rest[j].sender {
			return rest[i].sender < rest[j].sender
		}
		return rest[i].index < rest[j].index
	})
	for _, m := range rest {
		s.deliver(m.sender, m.payload)
	}
}

func (s *Session) sendAssignment(sender types.ProcID, idx int) error {
	buf := make([]byte, 1+8+len(sender))
	buf[0] = tagOrder
	binary.BigEndian.PutUint64(buf[1:9], uint64(idx))
	copy(buf[9:], sender)
	return s.send(buf)
}

func decodeAssignment(b []byte) (types.ProcID, int, error) {
	if len(b) < 9 {
		return "", 0, fmt.Errorf("totalorder: short assignment payload (%d bytes)", len(b))
	}
	idx := int(binary.BigEndian.Uint64(b[:8]))
	return types.ProcID(b[8:]), idx, nil
}

func orderKey(p types.ProcID, idx int) string {
	return fmt.Sprintf("%s/%d", p, idx)
}
