package totalorder_test

import (
	"fmt"
	"testing"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/sim"
	"vsgm/internal/spec"
	"vsgm/internal/totalorder"
	"vsgm/internal/types"
)

// harness wires one total-order session per cluster member.
type harness struct {
	c        *sim.Cluster
	sessions map[types.ProcID]*totalorder.Session
	orders   map[types.ProcID][]string
	views    map[types.ProcID]int
}

func newHarness(t *testing.T, n int, seed int64) *harness {
	t.Helper()
	h := &harness{
		sessions: make(map[types.ProcID]*totalorder.Session),
		orders:   make(map[types.ProcID][]string),
		views:    make(map[types.ProcID]int),
	}
	cfg := sim.Config{
		Procs:           sim.ProcIDs(n),
		Latency:         sim.UniformLatency{Base: 10 * time.Millisecond, Jitter: 8 * time.Millisecond},
		MembershipRound: 10 * time.Millisecond,
		Seed:            seed,
		Suite:           spec.FullSuite(),
		OnAppEvent: func(p types.ProcID, ev core.Event) {
			if s := h.sessions[p]; s != nil {
				if err := s.HandleEvent(ev); err != nil {
					t.Errorf("session %s: %v", p, err)
				}
			}
		},
	}
	c, err := sim.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.c = c
	for _, p := range c.Procs() {
		p := p
		s, err := totalorder.New(p,
			func(payload []byte) error {
				_, err := c.Send(p, payload)
				return err
			},
			func(sender types.ProcID, payload []byte) {
				h.orders[p] = append(h.orders[p], fmt.Sprintf("%s:%s", sender, payload))
			},
			func(types.View, types.ProcSet) { h.views[p]++ },
		)
		if err != nil {
			t.Fatal(err)
		}
		h.sessions[p] = s
	}
	return h
}

func (h *harness) assertIdenticalOrders(t *testing.T, members types.ProcSet) {
	t.Helper()
	var ref []string
	var refProc types.ProcID
	for i, p := range members.Sorted() {
		got := h.orders[p]
		if i == 0 {
			ref = got
			refProc = p
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("%s delivered %d messages, %s delivered %d", p, len(got), refProc, len(ref))
		}
		for j := range got {
			if got[j] != ref[j] {
				t.Fatalf("order diverges at %d: %s has %q, %s has %q", j, p, got[j], refProc, ref[j])
			}
		}
	}
}

func TestTotalOrderConcurrentSenders(t *testing.T) {
	h := newHarness(t, 4, 21)
	all := types.NewProcSet(h.c.Procs()...)
	if _, _, err := h.c.ReconfigureTo(all); err != nil {
		t.Fatal(err)
	}

	// Interleave sends from every member with some virtual-time spacing so
	// the streams genuinely race.
	for round := 0; round < 8; round++ {
		for i, p := range h.c.Procs() {
			p := p
			msg := fmt.Sprintf("r%d", round)
			h.c.At(time.Duration(i)*3*time.Millisecond, func() {
				if err := h.sessions[p].Send([]byte(msg)); err != nil {
					t.Errorf("send: %v", err)
				}
			})
		}
		if err := h.c.RunFor(5 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.c.Run(); err != nil {
		t.Fatal(err)
	}

	want := 8 * len(h.c.Procs())
	for _, p := range h.c.Procs() {
		if got := len(h.orders[p]); got != want {
			t.Errorf("%s delivered %d ordered messages, want %d", p, got, want)
		}
	}
	h.assertIdenticalOrders(t, all)
}

func TestTotalOrderAcrossViewChange(t *testing.T) {
	h := newHarness(t, 4, 23)
	procs := h.c.Procs()
	all := types.NewProcSet(procs...)
	if _, _, err := h.c.ReconfigureTo(all); err != nil {
		t.Fatal(err)
	}

	// Send while a member leaves: the view-boundary flush must produce the
	// same order at all survivors.
	for i := 0; i < 6; i++ {
		for _, p := range procs {
			if err := h.sessions[p].Send([]byte(fmt.Sprintf("m%d", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	survivors := types.NewProcSet(procs[0], procs[1], procs[2])
	if _, _, err := h.c.ReconfigureTo(survivors); err != nil {
		t.Fatal(err)
	}
	if err := h.c.Run(); err != nil {
		t.Fatal(err)
	}
	h.assertIdenticalOrders(t, survivors)

	// All messages sent in the old view must have been flushed everywhere.
	want := 6 * len(procs)
	for _, p := range survivors.Sorted() {
		if got := len(h.orders[p]); got != want {
			t.Errorf("%s delivered %d messages, want %d", p, got, want)
		}
	}
}

func TestTotalOrderSequencerLeaves(t *testing.T) {
	h := newHarness(t, 3, 29)
	procs := h.c.Procs()
	all := types.NewProcSet(procs...)
	if _, _, err := h.c.ReconfigureTo(all); err != nil {
		t.Fatal(err)
	}

	// p00 is the sequencer (minimum id). Load the group, let the data
	// propagate (so the survivors' cuts commit to the sequencer's
	// messages), then remove it.
	for i := 0; i < 5; i++ {
		for _, p := range procs {
			if err := h.sessions[p].Send([]byte(fmt.Sprintf("x%d", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := h.c.RunFor(60 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	rest := types.NewProcSet(procs[1], procs[2])
	if _, _, err := h.c.ReconfigureTo(rest); err != nil {
		t.Fatal(err)
	}
	// The new sequencer (p01) takes over.
	if err := h.sessions[procs[1]].Send([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := h.c.Run(); err != nil {
		t.Fatal(err)
	}
	h.assertIdenticalOrders(t, rest)
	for _, p := range rest.Sorted() {
		if got, want := len(h.orders[p]), 5*3+1; got != want {
			t.Errorf("%s delivered %d messages, want %d", p, got, want)
		}
	}
}
