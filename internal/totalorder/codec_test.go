package totalorder

import (
	"errors"
	"testing"

	"vsgm/internal/core"
	"vsgm/internal/types"
)

func newLoopbackSession(t *testing.T) (*Session, *[]string) {
	t.Helper()
	var delivered []string
	var s *Session
	var err error
	s, err = New("p",
		func(payload []byte) error {
			// Loopback: the GCS would deliver our own message back to us.
			return s.HandleEvent(core.DeliverEvent{
				Sender: "p",
				Msg:    types.AppMsg{Payload: payload},
				InView: types.InitialView("p"),
			})
		},
		func(sender types.ProcID, payload []byte) {
			delivered = append(delivered, string(payload))
		},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	return s, &delivered
}

func TestNewRequiresCallbacks(t *testing.T) {
	if _, err := New("p", nil, func(types.ProcID, []byte) {}, nil); err == nil {
		t.Error("missing send accepted")
	}
	if _, err := New("p", func([]byte) error { return nil }, nil, nil); err == nil {
		t.Error("missing deliver accepted")
	}
}

func TestSingletonSelfOrdering(t *testing.T) {
	s, delivered := newLoopbackSession(t)
	// In a singleton view this process is its own sequencer: send →
	// self-delivery → self-assignment → release.
	if err := s.Send([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Send([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if len(*delivered) != 2 || (*delivered)[0] != "one" || (*delivered)[1] != "two" {
		t.Fatalf("delivered = %v", *delivered)
	}
}

func TestRejectsEmptyAndUnknownPayloads(t *testing.T) {
	s, _ := newLoopbackSession(t)
	err := s.HandleEvent(core.DeliverEvent{Sender: "q", Msg: types.AppMsg{}})
	if err == nil {
		t.Error("empty payload accepted")
	}
	err = s.HandleEvent(core.DeliverEvent{Sender: "q", Msg: types.AppMsg{Payload: []byte{99}}})
	if err == nil {
		t.Error("unknown tag accepted")
	}
}

func TestRejectsShortAssignment(t *testing.T) {
	s, _ := newLoopbackSession(t)
	// tagOrder with a truncated body.
	err := s.HandleEvent(core.DeliverEvent{Sender: "q", Msg: types.AppMsg{Payload: []byte{2, 0, 0}}})
	if err == nil {
		t.Error("short assignment accepted")
	}
}

func TestBlockedSendSurfacesErrBlocked(t *testing.T) {
	s, err := New("p",
		func([]byte) error { return core.ErrBlocked },
		func(types.ProcID, []byte) {},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send([]byte("x")); !errors.Is(err, ErrBlocked) {
		t.Fatalf("err = %v, want ErrBlocked", err)
	}
}

func TestViewFlushDeliversUnassignedDeterministically(t *testing.T) {
	var delivered []string
	s, err := New("b",
		func([]byte) error { return nil }, // sends vanish: we are not the sequencer
		func(sender types.ProcID, payload []byte) {
			delivered = append(delivered, string(sender)+":"+string(payload))
		},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	// Data from two senders arrives but the sequencer's assignments never
	// do; the view change flushes in (sender, index) order.
	feed := func(sender types.ProcID, body string) {
		payload := append([]byte{1}, []byte(body)...)
		if err := s.HandleEvent(core.DeliverEvent{Sender: sender, Msg: types.AppMsg{Payload: payload}}); err != nil {
			t.Fatal(err)
		}
	}
	feed("z", "z1")
	feed("a", "a1")
	feed("z", "z2")

	v := types.NewView(1, types.NewProcSet("a", "b"),
		map[types.ProcID]types.StartChangeID{"a": 1, "b": 1})
	if err := s.HandleEvent(core.ViewEvent{View: v, TransitionalSet: types.NewProcSet("b")}); err != nil {
		t.Fatal(err)
	}
	want := []string{"a:a1", "z:z1", "z:z2"}
	if len(delivered) != len(want) {
		t.Fatalf("delivered = %v, want %v", delivered, want)
	}
	for i := range want {
		if delivered[i] != want[i] {
			t.Fatalf("delivered = %v, want %v", delivered, want)
		}
	}
}
