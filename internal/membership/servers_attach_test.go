package membership

// Unit tests for the crash-recovery surface of the membership server: the
// attach protocol's epoch-ranged identifiers, ownership arbitration through
// epoch gossip, record retention across deregistration, and the watchdog's
// proposal-repair path (Repropose plus the reply-on-completed-attempt rule).

import (
	"testing"
)

func TestAttachClientIssuesEpochRangedCids(t *testing.T) {
	rig := newServerRig(t, 1)
	srv := rig.servers["A"]
	rig.boot(t)

	if _, added := srv.AttachClient("c", 1); !added {
		t.Fatal("first attach did not register the client")
	}
	srv.Reconfigure()
	rig.pump(t)
	rec1, ok := srv.RecordOf("c")
	if !ok {
		t.Fatal("no record after first attempt")
	}
	if rec1.CID < 1<<cidEpochShift || rec1.CID >= 2<<cidEpochShift {
		t.Fatalf("epoch-1 cid %d outside its epoch range", rec1.CID)
	}
	if rec1.Vid <= 0 {
		t.Fatalf("no view recorded: %+v", rec1)
	}

	// A keepalive under the same epoch is idempotent: no new registration.
	if _, added := srv.AttachClient("c", 1); added {
		t.Fatal("keepalive reported a fresh registration")
	}

	// A re-attach under a higher epoch (post-failover identity) jumps the
	// cid into the new epoch's range, dominating everything issued before.
	srv.RemoveClient("c")
	if _, added := srv.AttachClient("c", 2); !added {
		t.Fatal("re-attach did not register the client")
	}
	srv.Reconfigure()
	rig.pump(t)
	rec2, ok := srv.RecordOf("c")
	if !ok {
		t.Fatal("no record after re-attach")
	}
	if rec2.CID < 2<<cidEpochShift {
		t.Fatalf("epoch-2 cid %d not in the new epoch's range", rec2.CID)
	}
	if rec2.CID <= rec1.CID || rec2.Vid <= rec1.Vid {
		t.Fatalf("identifiers regressed across re-attach: %+v -> %+v", rec1, rec2)
	}
}

func TestAttachClientClaimFloorsColdServer(t *testing.T) {
	rig := newServerRig(t, 1)
	srv := rig.servers["A"]
	rig.boot(t)

	// A server resurrected from a stale store has no retained record and no
	// peer gossip for this client (peers never gossip a client only this
	// server holds) — the claim carried by the attach request is the only
	// source that can floor the identifiers it mints next.
	claim := ClientRecord{CID: 3<<cidEpochShift + 7, Vid: 41, Epoch: 3}
	rec, added := srv.AttachClientClaim("c", 3, claim)
	if !added {
		t.Fatal("attach did not register the client")
	}
	if rec.CID < claim.CID || rec.Vid < claim.Vid || rec.Epoch < claim.Epoch {
		t.Fatalf("returned record %+v below the claim %+v", rec, claim)
	}

	srv.Reconfigure()
	rig.pump(t)
	got, ok := srv.RecordOf("c")
	if !ok {
		t.Fatal("no record after the attempt")
	}
	if got.CID <= claim.CID {
		t.Fatalf("minted cid %d does not dominate the claimed %d", got.CID, claim.CID)
	}
	if got.Vid <= claim.Vid {
		t.Fatalf("minted view id %d does not dominate the claimed %d", got.Vid, claim.Vid)
	}
	if v := lastView(t, rig.out, "c"); v.ID <= claim.Vid {
		t.Fatalf("delivered view %d does not dominate the claimed %d", v.ID, claim.Vid)
	}

	// A keepalive with a zero claim is idempotent and regresses nothing.
	rec2, added := srv.AttachClientClaim("c", 3, ClientRecord{})
	if added {
		t.Fatal("keepalive reported a fresh registration")
	}
	if rec2.CID < got.CID || rec2.Vid < got.Vid {
		t.Fatalf("zero claim regressed the record: %+v -> %+v", got, rec2)
	}
}

func TestRemoveClientRetainsRecord(t *testing.T) {
	rig := newServerRig(t, 1)
	srv := rig.servers["A"]
	rig.boot(t)

	srv.AttachClient("c", 1)
	srv.Reconfigure()
	rig.pump(t)
	before, ok := srv.RecordOf("c")
	if !ok || before.CID == 0 {
		t.Fatalf("expected a populated record, got %+v (ok=%v)", before, ok)
	}

	srv.RemoveClient("c")
	if srv.HasClient("c") {
		t.Fatal("client still registered after removal")
	}
	after, ok := srv.RecordOf("c")
	if !ok || after.CID < before.CID || after.Vid < before.Vid {
		t.Fatalf("record lost or regressed on removal: %+v -> %+v (ok=%v)", before, after, ok)
	}
}

func TestEpochGossipEvictsStaleOwner(t *testing.T) {
	rig := newServerRig(t, 2)
	a, b := rig.servers["A"], rig.servers["B"]
	rig.boot(t)

	a.AttachClient("c", 1)
	a.Reconfigure()
	rig.pump(t)
	if !a.HasClient("c") {
		t.Fatal("A lost its client before any failover")
	}

	// The client fails over to B under a fresh epoch while A still believes
	// it owns the registration. B's proposal gossips the higher epoch, and A
	// must cede rather than fight over ownership.
	b.AttachClient("c", 2)
	b.Reconfigure()
	rig.pump(t)

	if a.HasClient("c") {
		t.Fatal("A kept a registration superseded by a higher epoch")
	}
	if !b.HasClient("c") {
		t.Fatal("B lost the adopted client")
	}
	if ev := a.Evictions(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	// A's retained record remembers the newer epoch, so a late detach or
	// stale re-attach for the old incarnation cannot resurrect it.
	rec, ok := a.RecordOf("c")
	if !ok || rec.Epoch < 2 {
		t.Fatalf("A's retained record missed the newer epoch: %+v (ok=%v)", rec, ok)
	}
	// Both servers agree on the client's view after the hand-off.
	if va, vb := lastView(t, rig.out, "c"), b.ClientRecords()["c"]; va.ID != vb.Vid {
		t.Fatalf("view disagreement after hand-off: delivered %d, B recorded %d", va.ID, vb.Vid)
	}
}

func TestReproposeRepairsLostProposal(t *testing.T) {
	rig := newServerRig(t, 2)
	a, b := rig.servers["A"], rig.servers["B"]
	a.AddClient("c0")
	b.AddClient("c1")
	rig.boot(t)
	if a.Stalled() || b.Stalled() {
		t.Fatal("servers stalled after a clean boot")
	}
	firstView := lastView(t, rig.out, "c0")

	// A starts an attempt and its proposal to B is lost in transit: the
	// one-round protocol is wedged until someone retries.
	a.Reconfigure()
	if err := rig.net.LoseTail("A", "B"); err != nil {
		t.Fatal(err)
	}
	rig.pump(t)
	if !a.Stalled() {
		t.Fatal("A not stalled after its proposal was lost")
	}

	// The watchdog's retry path: resend the current proposal and converge.
	if !a.Repropose() {
		t.Fatal("Repropose refused to resend a stalled attempt")
	}
	rig.pump(t)
	if a.Stalled() || b.Stalled() {
		t.Fatalf("attempt still stalled after repropose (A=%v B=%v)", a.Stalled(), b.Stalled())
	}
	if got := a.Reproposals(); got != 1 {
		t.Fatalf("reproposals = %d, want 1", got)
	}
	if v := lastView(t, rig.out, "c0"); v.ID <= firstView.ID {
		t.Fatalf("no fresh view after repair: %d -> %d", firstView.ID, v.ID)
	}
}

func TestReproposeAgainstCompletedAttemptGetsReply(t *testing.T) {
	rig := newServerRig(t, 2)
	a, b := rig.servers["A"], rig.servers["B"]
	a.AddClient("c0")
	b.AddClient("c1")
	rig.boot(t)

	// Asymmetric loss: B receives A's proposal and completes the attempt,
	// but B's own proposal back to A is lost — only A is wedged.
	a.Reconfigure()
	if _, ok := rig.net.DeliverNext("A", "B"); !ok {
		t.Fatal("no proposal queued from A to B")
	}
	if err := rig.net.LoseTail("B", "A"); err != nil {
		t.Fatal(err)
	}
	rig.pump(t)
	if b.Stalled() {
		t.Fatal("B should have completed the attempt")
	}
	if !a.Stalled() {
		t.Fatal("A should be wedged awaiting B's proposal")
	}

	// A's retry hits an attempt B already completed; B must answer with its
	// last proposal instead of ignoring the stale-looking frame.
	if !a.Repropose() {
		t.Fatal("Repropose refused to resend")
	}
	rig.pump(t)
	if a.Stalled() {
		t.Fatal("A still wedged: completed peer did not reply to the retry")
	}
	if va, vb := lastView(t, rig.out, "c0"), lastView(t, rig.out, "c1"); va.ID != vb.ID || !va.Members.Equal(vb.Members) {
		t.Fatalf("servers diverged after repair: %+v vs %+v", va, vb)
	}
}
