package membership

import (
	"testing"

	"vsgm/internal/types"
)

// TestSanitizeRecordCleanPassThrough pins the zero-cost contract: a record
// from any correct execution passes through untouched, with zero clamps.
func TestSanitizeRecordCleanPassThrough(t *testing.T) {
	clean := []ClientRecord{
		{},
		{CID: 1, Vid: 1, Epoch: 0},
		{CID: 3<<cidEpochShift + 17, Vid: 42, Epoch: 3},
		{CID: MaxSaneCID, Vid: MaxSaneVid, Epoch: MaxAttachEpoch},
	}
	for _, rec := range clean {
		got, st := SanitizeRecord(rec)
		if got != rec || st.Total() != 0 {
			t.Errorf("SanitizeRecord(%+v) = %+v with %d clamps, want unchanged", rec, got, st.Total())
		}
	}
}

// TestSanitizeRecordClamps covers one case per rule plus a compound case.
func TestSanitizeRecordClamps(t *testing.T) {
	cases := []struct {
		name string
		in   ClientRecord
		want ClientRecord
		st   SanitizeStats
	}{
		{
			name: "negative fields",
			in:   ClientRecord{CID: -1, Vid: -2, Epoch: -3},
			want: ClientRecord{},
			st:   SanitizeStats{Negative: 3},
		},
		{
			name: "wrapped epoch",
			in:   ClientRecord{CID: 7, Vid: 3, Epoch: 1 << 33},
			want: ClientRecord{CID: 7, Vid: 3, Epoch: 0},
			st:   SanitizeStats{WrappedEpoch: 1},
		},
		{
			name: "cid above the attach-claim ceiling",
			in:   ClientRecord{CID: MaxSaneCID + 1, Vid: 1, Epoch: 1},
			// Dropping the cid orphans the vid, which is then dropped too.
			want: ClientRecord{Epoch: 1},
			st:   SanitizeStats{CIDCeiling: 1, VidOrphan: 1},
		},
		{
			name: "vid above the ceiling",
			in:   ClientRecord{CID: 9, Vid: MaxSaneVid + 1, Epoch: 0},
			want: ClientRecord{CID: 9},
			st:   SanitizeStats{VidCeiling: 1},
		},
		{
			name: "vid with no start-change behind it",
			in:   ClientRecord{Vid: 5},
			want: ClientRecord{},
			st:   SanitizeStats{VidOrphan: 1},
		},
		{
			name: "cid implies a higher epoch",
			in:   ClientRecord{CID: 5<<cidEpochShift + 1, Vid: 2, Epoch: 3},
			want: ClientRecord{CID: 5<<cidEpochShift + 1, Vid: 2, Epoch: 5},
			st:   SanitizeStats{EpochRaised: 1},
		},
		{
			name: "arbitrary garbage compounds",
			in:   ClientRecord{CID: -9, Vid: MaxSaneVid + 7, Epoch: 1 << 40},
			want: ClientRecord{},
			st:   SanitizeStats{Negative: 1, WrappedEpoch: 1, VidCeiling: 1},
		},
	}
	for _, tc := range cases {
		got, st := SanitizeRecord(tc.in)
		if got != tc.want {
			t.Errorf("%s: SanitizeRecord(%+v) = %+v, want %+v", tc.name, tc.in, got, tc.want)
		}
		if st != tc.st {
			t.Errorf("%s: stats = %+v, want %+v", tc.name, st, tc.st)
		}
	}
}

// TestSanitizeClaimSkipsEpochRaise pins the claim variant: an honest attach
// claim carries identifiers without the epoch they were minted under, so the
// cid/epoch inversion rule must not fire — while every ceiling still does.
func TestSanitizeClaimSkipsEpochRaise(t *testing.T) {
	honest := ClientRecord{CID: 4<<cidEpochShift + 9, Vid: 12}
	got, st := SanitizeClaim(honest)
	if got != honest || st.Total() != 0 {
		t.Fatalf("honest claim clamped: %+v, stats %+v", got, st)
	}
	// The same record through SanitizeRecord raises the epoch.
	rec, st := SanitizeRecord(honest)
	if rec.Epoch != 4 || st.EpochRaised != 1 {
		t.Fatalf("full-record sanitize did not raise epoch: %+v, stats %+v", rec, st)
	}
	// Ceilings still bind claims.
	if got, st := SanitizeClaim(ClientRecord{CID: MaxSaneCID + 1}); got.CID != 0 || st.CIDCeiling != 1 {
		t.Fatalf("claim above cid ceiling survived: %+v, stats %+v", got, st)
	}
}

// TestSanitizeRecordsAggregates checks the map form clamps in place and sums
// the statistics.
func TestSanitizeRecordsAggregates(t *testing.T) {
	recs := map[types.ProcID]ClientRecord{
		"ok":      {CID: 1, Vid: 1, Epoch: 0},
		"wrapped": {CID: 7, Vid: 3, Epoch: 1 << 33},
		"orphan":  {Vid: 4},
	}
	st := SanitizeRecords(recs)
	if st.WrappedEpoch != 1 || st.VidOrphan != 1 || st.Total() != 2 {
		t.Fatalf("aggregate stats = %+v", st)
	}
	if recs["wrapped"].Epoch != 0 || recs["orphan"].Vid != 0 {
		t.Fatalf("records not clamped in place: %+v", recs)
	}
	if recs["ok"] != (ClientRecord{CID: 1, Vid: 1, Epoch: 0}) {
		t.Fatalf("clean record touched: %+v", recs["ok"])
	}
}

// TestServerSanitizesRestoredState pins the integration: impossible values
// replayed into a server are clamped before they can reach a proposal, the
// clamps are counted, and legal state passes through.
func TestServerSanitizesRestoredState(t *testing.T) {
	srv, err := NewServer("s1", types.NewProcSet("s1"), nullTransport{}, func(types.ProcID, Notification) {})
	if err != nil {
		t.Fatal(err)
	}
	srv.RestoreRecords(map[types.ProcID]ClientRecord{
		"c1": {CID: 3<<cidEpochShift + 2, Vid: 9, Epoch: 3}, // legal
		"c2": {CID: 5, Vid: 2, Epoch: 1 << 33},              // wrapped epoch
	})
	if st := srv.Sanitized(); st.WrappedEpoch != 1 || st.Total() != 1 {
		t.Fatalf("restore stats = %+v", st)
	}
	if rec, ok := srv.RecordOf("c1"); !ok || rec != (ClientRecord{CID: 3<<cidEpochShift + 2, Vid: 9, Epoch: 3}) {
		t.Fatalf("legal record mangled: %+v", rec)
	}
	if rec, ok := srv.RecordOf("c2"); !ok || rec.Epoch != 0 || rec.CID != 5 {
		t.Fatalf("wrapped epoch survived restore: %+v", rec)
	}

	// An attach claim with impossible identifiers is clamped the same way.
	rec, _ := srv.AttachClientClaim("c3", 2, ClientRecord{CID: MaxSaneCID + 1, Vid: 1})
	if rec.CID>>cidEpochShift > MaxAttachEpoch {
		t.Fatalf("impossible claim burned the identifier space: %+v", rec)
	}
	if st := srv.Sanitized(); st.CIDCeiling != 1 {
		t.Fatalf("claim clamp not counted: %+v", st)
	}

	// A wrapped attach epoch degrades to epoch 0 instead of wrapping cids.
	srv.AttachClient("c4", 1<<40)
	if rec, ok := srv.RecordOf("c4"); !ok || rec.Epoch != 0 {
		t.Fatalf("wrapped attach epoch survived: %+v", rec)
	}
}

type nullTransport struct{}

func (nullTransport) Send([]types.ProcID, types.WireMsg) {}
