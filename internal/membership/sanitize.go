package membership

import "vsgm/internal/types"

// State sanitization: the semantic half of self-stabilizing recovery.
// Checksummed WAL records (internal/wire) and fsck (internal/live) guarantee
// a restarted server replays only records that were once genuinely written —
// but say nothing about whether the *values* in a record are possible. A
// stale generation resurrected by an operator, an unchecksummed v1 record
// reassembled out of damage, or a client restored from arbitrary state can
// all present identifier triples no correct execution produces: attach
// epochs so large their cid floor (epoch << cidEpochShift) wraps int64,
// start-change identifiers claiming an epoch range above any plausible
// failover count, view identifiers with no start-change behind them. Left
// alone, such values replay into proposals, burn the identifier space to
// the brink of wraparound, and defeat the very monotonicity they encode.
//
// SanitizeRecord clamps each impossible field to the nearest value some
// correct execution could have produced, preferring upward (monotone-safe)
// repairs where one exists and discarding otherwise — discarding is safe
// because the attach-claim protocol re-floats any identifier a live client
// actually saw (the PR-6 mechanism), which is exactly the convergence
// argument of "Practically-Self-Stabilizing Virtual Synchrony": bounded
// counters plus client re-assertion reach a legal state from any state.

const (
	// MaxAttachEpoch is the plausibility ceiling for attach epochs. An epoch
	// increments once per client failover, so 2^24 failovers of one client
	// is unreachable in any real deployment — while an epoch at or above
	// 2^(63-cidEpochShift) = 2^31 wraps the cid floor computation entirely.
	// Anything above the ceiling is corruption, not history.
	MaxAttachEpoch = 1 << 24

	// MaxSaneCID is the attach-claim ceiling for start-change identifiers:
	// the largest cid the epoch range of MaxAttachEpoch can mint. A cid
	// above it claims an epoch no correct execution reaches.
	MaxSaneCID = ((MaxAttachEpoch + 1) << cidEpochShift) - 1

	// MaxSaneVid is the plausibility ceiling for view identifiers, which
	// advance by one per installed view: 2^48 reconfigurations is
	// unreachable.
	MaxSaneVid = 1 << 48
)

// SanitizeStats counts the clamps a sanitization pass applied, by rule.
type SanitizeStats struct {
	// Negative counts fields whose sign bit was set (no identifier is ever
	// negative); each is reset to zero.
	Negative int64
	// WrappedEpoch counts epochs above MaxAttachEpoch, reset to zero — the
	// attach protocol re-establishes the true epoch from the client's claim.
	WrappedEpoch int64
	// CIDCeiling counts start-change identifiers above MaxSaneCID, reset to
	// zero for the same reason.
	CIDCeiling int64
	// VidCeiling counts view identifiers above MaxSaneVid, reset to zero.
	VidCeiling int64
	// VidOrphan counts records claiming a delivered view but no start-change
	// identifier — impossible, since a view delivery is always preceded by a
	// start_change; the vid is reset to zero.
	VidOrphan int64
	// EpochRaised counts records whose cid's implied epoch (cid >>
	// cidEpochShift) exceeded the recorded epoch; the epoch is raised to
	// match, the unique upward (regression-free) repair.
	EpochRaised int64
}

// Total sums the clamps across all rules.
func (st SanitizeStats) Total() int64 {
	return st.Negative + st.WrappedEpoch + st.CIDCeiling + st.VidCeiling + st.VidOrphan + st.EpochRaised
}

// add accumulates other into st.
func (st *SanitizeStats) add(other SanitizeStats) {
	st.Negative += other.Negative
	st.WrappedEpoch += other.WrappedEpoch
	st.CIDCeiling += other.CIDCeiling
	st.VidCeiling += other.VidCeiling
	st.VidOrphan += other.VidOrphan
	st.EpochRaised += other.EpochRaised
}

// SanitizeRecord clamps every impossible value in rec and reports what it
// did. A record from any correct execution passes through unchanged.
func SanitizeRecord(rec ClientRecord) (ClientRecord, SanitizeStats) {
	return sanitize(rec, true)
}

// SanitizeClaim is SanitizeRecord for an attach claim. A claim legitimately
// carries a cid without the epoch it was minted under (the client reports
// identifiers, not registration metadata), so the cid/epoch inversion
// repair — which would fire on every honest claim — is skipped.
func SanitizeClaim(rec ClientRecord) (ClientRecord, SanitizeStats) {
	return sanitize(rec, false)
}

func sanitize(rec ClientRecord, fullRecord bool) (ClientRecord, SanitizeStats) {
	var st SanitizeStats
	if rec.CID < 0 {
		rec.CID = 0
		st.Negative++
	}
	if rec.Vid < 0 {
		rec.Vid = 0
		st.Negative++
	}
	if rec.Epoch < 0 {
		rec.Epoch = 0
		st.Negative++
	}
	if rec.Epoch > MaxAttachEpoch {
		rec.Epoch = 0
		st.WrappedEpoch++
	}
	if rec.CID > MaxSaneCID {
		rec.CID = 0
		st.CIDCeiling++
	}
	if rec.Vid > MaxSaneVid {
		rec.Vid = 0
		st.VidCeiling++
	}
	if rec.Vid > 0 && rec.CID == 0 {
		rec.Vid = 0
		st.VidOrphan++
	}
	if implied := int64(rec.CID >> cidEpochShift); fullRecord && implied > rec.Epoch {
		rec.Epoch = implied
		st.EpochRaised++
	}
	return rec, st
}

// SanitizeRecords clamps every record in recs in place and returns the
// aggregate statistics.
func SanitizeRecords(recs map[types.ProcID]ClientRecord) SanitizeStats {
	var st SanitizeStats
	for p, rec := range recs {
		clean, s := SanitizeRecord(rec)
		if s.Total() > 0 {
			recs[p] = clean
			st.add(s)
		}
	}
	return st
}
