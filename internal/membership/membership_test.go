package membership

import (
	"testing"
	"time"

	"vsgm/internal/spec"
	"vsgm/internal/types"
)

// collectingOutput records notifications and feeds the MBRSHP spec checker.
type collectingOutput struct {
	checker *spec.Membership
	byProc  map[types.ProcID][]Notification
}

func newCollectingOutput() *collectingOutput {
	return &collectingOutput{
		checker: spec.NewMembership(),
		byProc:  make(map[types.ProcID][]Notification),
	}
}

func (o *collectingOutput) out(p types.ProcID, n Notification) {
	o.byProc[p] = append(o.byProc[p], n)
	switch n.Kind {
	case NotifyStartChange:
		o.checker.OnEvent(spec.EMStartChange{P: p, SC: n.StartChange})
	case NotifyView:
		o.checker.OnEvent(spec.EMView{P: p, View: n.View})
	}
}

func (o *collectingOutput) assertSpec(t *testing.T) {
	t.Helper()
	o.checker.Finalize()
	if v := o.checker.Violations(); len(v) != 0 {
		t.Fatalf("MBRSHP spec violations: %v", v)
	}
}

func TestOracleBasicChange(t *testing.T) {
	o := newCollectingOutput()
	orc := NewOracle(o.out)
	orc.Register("a")
	orc.Register("b")

	set := types.NewProcSet("a", "b")
	ids, err := orc.StartChange(set)
	if err != nil {
		t.Fatal(err)
	}
	if ids["a"] != 1 || ids["b"] != 1 {
		t.Fatalf("first cids = %v, want 1 each", ids)
	}
	v, err := orc.DeliverView(set)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Members.Equal(set) || v.StartID["a"] != 1 || v.StartID["b"] != 1 {
		t.Fatalf("view = %+v", v)
	}
	o.assertSpec(t)
}

func TestOracleStartChangeIdentifiersAreLocallyIncreasing(t *testing.T) {
	o := newCollectingOutput()
	orc := NewOracle(o.out)
	orc.Register("a")
	set := types.NewProcSet("a")
	for i := 1; i <= 3; i++ {
		ids, err := orc.StartChange(set)
		if err != nil {
			t.Fatal(err)
		}
		if ids["a"] != types.StartChangeID(i) {
			t.Fatalf("cid = %d, want %d", ids["a"], i)
		}
	}
	o.assertSpec(t)
}

func TestOracleViewRequiresStartChange(t *testing.T) {
	orc := NewOracle(func(types.ProcID, Notification) {})
	orc.Register("a")
	if _, err := orc.DeliverView(types.NewProcSet("a")); err == nil {
		t.Fatal("view without a preceding start_change must be rejected")
	}
}

func TestOracleViewMembersMustBeSubsetOfStartChange(t *testing.T) {
	orc := NewOracle(func(types.ProcID, Notification) {})
	orc.Register("a")
	orc.Register("b")
	if _, err := orc.StartChange(types.NewProcSet("a")); err != nil {
		t.Fatal(err)
	}
	// b never saw a start_change mentioning it together with a.
	if _, err := orc.DeliverView(types.NewProcSet("a", "b")); err == nil {
		t.Fatal("view exceeding the start_change set must be rejected")
	}
}

func TestOracleRejectsUnknownAndEmpty(t *testing.T) {
	orc := NewOracle(func(types.ProcID, Notification) {})
	if _, err := orc.StartChange(types.NewProcSet("ghost")); err == nil {
		t.Fatal("unknown client accepted")
	}
	if _, err := orc.DeliverView(types.NewProcSet()); err == nil {
		t.Fatal("empty view accepted")
	}
}

func TestOracleViewIDsIncreaseAcrossPartitions(t *testing.T) {
	o := newCollectingOutput()
	orc := NewOracle(o.out)
	for _, p := range []types.ProcID{"a", "b", "c", "d"} {
		orc.Register(p)
	}
	views, err := orc.Partition(types.NewProcSet("a", "b"), types.NewProcSet("c", "d"))
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 || views[0].ID == views[1].ID {
		t.Fatalf("partition views = %v", views)
	}
	// Merge: the new id must exceed both.
	merged, err := orc.ProposeAndCommit(types.NewProcSet("a", "b", "c", "d"))
	if err != nil {
		t.Fatal(err)
	}
	if merged.ID <= views[0].ID || merged.ID <= views[1].ID {
		t.Fatalf("merged id %d not above partition ids", merged.ID)
	}
	o.assertSpec(t)
}

func TestOracleCrashSuppressesNotificationsButKeepsState(t *testing.T) {
	o := newCollectingOutput()
	orc := NewOracle(o.out)
	orc.Register("a")
	orc.Register("b")
	if _, err := orc.ProposeAndCommit(types.NewProcSet("a", "b")); err != nil {
		t.Fatal(err)
	}

	if err := orc.Crash("b"); err != nil {
		t.Fatal(err)
	}
	countB := len(o.byProc["b"])
	if _, err := orc.ProposeAndCommit(types.NewProcSet("a")); err != nil {
		t.Fatal(err)
	}
	if len(o.byProc["b"]) != countB {
		t.Fatal("crashed client received notifications")
	}

	// A view naming a crashed member is rejected.
	if _, err := orc.StartChange(types.NewProcSet("a", "b")); err != nil {
		t.Fatal(err)
	}
	if _, err := orc.DeliverView(types.NewProcSet("a", "b")); err == nil {
		t.Fatal("view naming a crashed member accepted")
	}

	// After recovery, the client's identifier state continues: its next
	// view id and cid exceed all pre-crash values (Section 8).
	if err := orc.Recover("b"); err != nil {
		t.Fatal(err)
	}
	v, err := orc.ProposeAndCommit(types.NewProcSet("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if v.StartID["b"] <= 1 {
		t.Fatalf("recovered client's cid = %d, want > 1", v.StartID["b"])
	}
	o.assertSpec(t)
}

func TestOracleGetters(t *testing.T) {
	orc := NewOracle(func(types.ProcID, Notification) {})
	orc.Register("a")
	v, err := orc.CurrentView("a")
	if err != nil || !v.Equal(types.InitialView("a")) {
		t.Fatalf("initial current view = %v, err %v", v, err)
	}
	if _, err := orc.LastStartChange("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := orc.CurrentView("ghost"); err == nil {
		t.Fatal("unknown client accepted")
	}
}

func TestNotificationString(t *testing.T) {
	sc := Notification{Kind: NotifyStartChange, StartChange: types.StartChange{ID: 1, Set: types.NewProcSet("a")}}
	if sc.String() == "" {
		t.Fatal("empty string")
	}
	vn := Notification{Kind: NotifyView, View: types.InitialView("a")}
	if vn.String() == "" {
		t.Fatal("empty string")
	}
}

func TestDetectorSuspectsAndTrustsAgain(t *testing.T) {
	start := time.Unix(0, 0)
	peers := types.NewProcSet("A", "B", "C")
	d := NewDetector("A", peers, 50*time.Millisecond, start)

	// Bootstrap: the first tick reports full reachability as a change.
	reachable, changed := d.Tick(start)
	if !changed || !reachable.Equal(peers) {
		t.Fatalf("bootstrap tick = (%s, %v), want full set and changed", reachable, changed)
	}

	// B keeps beating, C goes silent.
	d.OnHeartbeat("B", start.Add(40*time.Millisecond))
	reachable, changed = d.Tick(start.Add(80 * time.Millisecond))
	if !changed {
		t.Fatal("C's silence went unnoticed")
	}
	if !reachable.Equal(types.NewProcSet("A", "B")) {
		t.Fatalf("reachable = %s, want {A, B}", reachable)
	}

	// A steady state reports no change.
	d.OnHeartbeat("B", start.Add(90*time.Millisecond))
	if _, changed := d.Tick(start.Add(100 * time.Millisecond)); changed {
		t.Fatal("spurious change in steady state")
	}

	// C comes back.
	d.OnHeartbeat("C", start.Add(120*time.Millisecond))
	d.OnHeartbeat("B", start.Add(120*time.Millisecond))
	reachable, changed = d.Tick(start.Add(130 * time.Millisecond))
	if !changed || !reachable.Equal(peers) {
		t.Fatalf("recovery tick = (%s, %v), want full set and changed", reachable, changed)
	}
	if !d.Reachable().Equal(peers) {
		t.Fatalf("Reachable() = %s", d.Reachable())
	}
}

func TestDetectorIgnoresStrangersAndStaleBeats(t *testing.T) {
	start := time.Unix(0, 0)
	d := NewDetector("A", types.NewProcSet("A", "B"), 50*time.Millisecond, start)
	d.Tick(start)

	d.OnHeartbeat("ghost", start.Add(10*time.Millisecond))
	if reachable, _ := d.Tick(start.Add(20 * time.Millisecond)); reachable.Contains("ghost") {
		t.Fatal("stranger admitted")
	}

	// A stale (reordered) heartbeat must not move lastSeen backwards.
	d.OnHeartbeat("B", start.Add(40*time.Millisecond))
	d.OnHeartbeat("B", start.Add(10*time.Millisecond))
	if reachable, _ := d.Tick(start.Add(80 * time.Millisecond)); !reachable.Contains("B") {
		t.Fatal("stale heartbeat regressed B's freshness")
	}
}

func TestDetectorSuspectIsImmediateAndRecoverable(t *testing.T) {
	start := time.Unix(0, 0)
	peers := types.NewProcSet("A", "B", "C")
	d := NewDetector("A", peers, 50*time.Millisecond, start)
	d.Tick(start)

	// External link-failure evidence removes B well before the heartbeat
	// timeout would have.
	at := start.Add(10 * time.Millisecond)
	d.Suspect("B", at)
	reachable, changed := d.Tick(at)
	if !changed || reachable.Contains("B") {
		t.Fatalf("after Suspect, Tick = (%s, %v), want B excluded and changed", reachable, changed)
	}
	if !reachable.Contains("C") {
		t.Fatal("Suspect(B) removed an unrelated peer")
	}

	// A fresh heartbeat restores trust.
	d.OnHeartbeat("B", start.Add(20*time.Millisecond))
	if reachable, _ := d.Tick(start.Add(25 * time.Millisecond)); !reachable.Contains("B") {
		t.Fatal("heartbeat after Suspect did not restore trust")
	}

	// Suspecting self or a stranger is a no-op.
	d.Suspect("A", at)
	d.Suspect("ghost", at)
	if reachable, _ := d.Tick(start.Add(30 * time.Millisecond)); !reachable.Contains("A") {
		t.Fatal("Suspect(self) removed self")
	}

	// A Suspect older than current freshness must not regress lastSeen.
	d.OnHeartbeat("C", start.Add(100*time.Millisecond))
	d.Suspect("C", start.Add(40*time.Millisecond))
	if reachable, _ := d.Tick(start.Add(110 * time.Millisecond)); !reachable.Contains("C") {
		t.Fatal("stale Suspect regressed C's freshness")
	}
}
