package membership

import (
	"testing"
	"time"

	"vsgm/internal/types"
)

// warmDetector feeds B regular 20ms heartbeats until the inter-arrival
// window is warm enough for accrual scoring, returning the last beat time.
func warmDetector(d *Detector, p types.ProcID, start time.Time, beats int) time.Time {
	at := start
	for i := 0; i < beats; i++ {
		at = at.Add(20 * time.Millisecond)
		d.OnHeartbeat(p, at)
		d.Tick(at)
	}
	return at
}

// TestDetectorHeartbeatSuspectTieBreak pins the equal-timestamp semantics:
// a heartbeat and a suspicion carrying the same instant must resolve to
// "trusted" regardless of which call lands first and in both engines — a
// heartbeat is direct evidence of liveness, a suspicion only inference.
// Before the tie-break was made explicit, the fixed engine resolved the
// race by call order: Suspect-then-heartbeat trusted, heartbeat-then-
// Suspect suspected a peer that had just proven itself alive.
func TestDetectorHeartbeatSuspectTieBreak(t *testing.T) {
	start := time.Unix(0, 0)
	peers := types.NewProcSet("A", "B")
	cases := []struct {
		name    string
		mode    DetectorMode
		hbFirst bool
	}{
		{"fixed heartbeat-then-suspect", DetectorFixed, true},
		{"fixed suspect-then-heartbeat", DetectorFixed, false},
		{"adaptive heartbeat-then-suspect", DetectorAdaptive, true},
		{"adaptive suspect-then-heartbeat", DetectorAdaptive, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDetectorWith("A", peers, 50*time.Millisecond, start, DetectorConfig{Mode: tc.mode})
			d.Tick(start)
			at := start.Add(30 * time.Millisecond)
			if tc.hbFirst {
				d.OnHeartbeat("B", at)
				d.Suspect("B", at)
			} else {
				d.Suspect("B", at)
				d.OnHeartbeat("B", at)
			}
			if reachable, _ := d.Tick(at); !reachable.Contains("B") {
				t.Fatalf("equal-timestamp race suspected B (reachable %s), heartbeat must win", reachable)
			}
		})
	}
}

// TestDetectorAdaptiveHysteresis drives the accrual engine through one
// suspicion cycle: a warm window, silence until phi crosses the suspect
// threshold, then a fresh heartbeat dropping phi below the restore
// threshold. In between — inside the hysteresis band — the verdict must
// hold.
func TestDetectorAdaptiveHysteresis(t *testing.T) {
	start := time.Unix(0, 0)
	peers := types.NewProcSet("A", "B")
	d := NewDetectorWith("A", peers, 150*time.Millisecond, start, DetectorConfig{})
	d.Tick(start)
	last := warmDetector(d, "B", start, 8) // 7 x 20ms inter-arrivals in the window

	// 100ms of silence is ~5x the mean inter-arrival: phi sits between the
	// restore and suspect thresholds, so the trusted verdict must hold.
	mid := last.Add(100 * time.Millisecond)
	if phi := d.Phi("B", mid); phi <= DefaultRestorePhi || phi >= DefaultSuspectPhi {
		t.Fatalf("phi after 100ms silence = %.2f, want inside the hysteresis band (%v, %v)",
			phi, DefaultRestorePhi, DefaultSuspectPhi)
	}
	if reachable, changed := d.Tick(mid); changed || !reachable.Contains("B") {
		t.Fatalf("verdict flipped inside the hysteresis band: (%s, %v)", reachable, changed)
	}

	// 600ms of silence is ~30x the mean: phi is far past the suspect
	// threshold and the verdict crosses.
	late := last.Add(600 * time.Millisecond)
	if phi := d.Phi("B", late); phi < DefaultSuspectPhi {
		t.Fatalf("phi after 600ms silence = %.2f, want >= %v", phi, DefaultSuspectPhi)
	}
	reachable, changed := d.Tick(late)
	if !changed || reachable.Contains("B") {
		t.Fatalf("silence not suspected: (%s, %v)", reachable, changed)
	}
	if st := d.Stats(); st.Suspects != 1 {
		t.Fatalf("Suspects = %d, want 1", st.Suspects)
	}

	// One fresh heartbeat restores: phi collapses below the restore
	// threshold. The first restore is a flap crossing, but well under the
	// damping threshold, so no quarantine is imposed.
	back := late.Add(20 * time.Millisecond)
	d.OnHeartbeat("B", back)
	reachable, changed = d.Tick(back.Add(time.Millisecond))
	if !changed || !reachable.Contains("B") {
		t.Fatalf("fresh heartbeat did not restore: (%s, %v)", reachable, changed)
	}
	if st := d.Stats(); st.Flaps != 1 || st.Quarantines != 0 {
		t.Fatalf("stats after one flap = %+v, want 1 flap, 0 quarantines", st)
	}
}

// TestDetectorFlapDamping crosses the suspect/restore boundary repeatedly:
// once the decayed flap score reaches the threshold, each further restore
// must earn an exponentially growing rejoin quarantine (bounded by the
// cap), and a long quiet stretch must decay the score back to a clean
// slate.
func TestDetectorFlapDamping(t *testing.T) {
	start := time.Unix(0, 0)
	peers := types.NewProcSet("A", "B")
	cfg := DetectorConfig{
		QuarantineBase: 100 * time.Millisecond,
		QuarantineCap:  400 * time.Millisecond,
		FlapHalfLife:   time.Hour, // no decay inside the flapping burst
	}
	d := NewDetectorWith("A", peers, 150*time.Millisecond, start, cfg)
	d.Tick(start)
	at := warmDetector(d, "B", start, 8)

	flap := func() (quarantined bool) {
		t.Helper()
		// Silence until suspected...
		at = at.Add(600 * time.Millisecond)
		if reachable, _ := d.Tick(at); reachable.Contains("B") {
			t.Fatal("silence not suspected")
		}
		// ...then one heartbeat and a tick: restored, unless quarantined.
		at = at.Add(20 * time.Millisecond)
		d.OnHeartbeat("B", at)
		at = at.Add(time.Millisecond)
		reachable, _ := d.Tick(at)
		return !reachable.Contains("B")
	}

	// The first crossings stay under the decayed threshold: immediate
	// rejoin. (Each crossing decays the score a hair before bumping it, so
	// the Nth flap scores just under N — the threshold of 3 is crossed on
	// the 4th.)
	for i := 0; i < 3; i++ {
		if flap() {
			t.Fatalf("flap %d quarantined below the damping threshold", i+1)
		}
	}
	// Flap 4 crosses the threshold: the restore is held back.
	if !flap() {
		t.Fatal("flap 4 rejoined immediately, damping never engaged")
	}
	st := d.Stats()
	if st.Flaps != 4 || st.Quarantines != 1 || st.Quarantined != 1 {
		t.Fatalf("stats after 4 flaps = %+v, want 4 flaps, 1 quarantine, 1 quarantined", st)
	}
	// The first quarantine is the base; with heartbeats flowing, the peer
	// rejoins once it expires.
	for i := 0; i < 8; i++ {
		at = at.Add(20 * time.Millisecond)
		d.OnHeartbeat("B", at)
		d.Tick(at)
	}
	if !d.Reachable().Contains("B") {
		t.Fatalf("B still out %v after a %v quarantine", 160*time.Millisecond, cfg.QuarantineBase)
	}
	// Flap 5's quarantine doubles: 160ms of heartbeats is no longer enough.
	if !flap() {
		t.Fatal("flap 5 rejoined immediately")
	}
	for i := 0; i < 8; i++ {
		at = at.Add(20 * time.Millisecond)
		d.OnHeartbeat("B", at)
		d.Tick(at)
	}
	if d.Reachable().Contains("B") {
		t.Fatal("flap 5's quarantine did not grow past the base")
	}
	for i := 0; i < 8; i++ {
		at = at.Add(20 * time.Millisecond)
		d.OnHeartbeat("B", at)
		d.Tick(at)
	}
	if !d.Reachable().Contains("B") {
		t.Fatal("B never rejoined after the doubled quarantine")
	}

	// Decay: with a short half-life, a long quiet stretch earns back a
	// clean slate — the next flap rejoins immediately again.
	d2 := NewDetectorWith("A", peers, 150*time.Millisecond, start, DetectorConfig{
		QuarantineBase: 100 * time.Millisecond,
		FlapHalfLife:   100 * time.Millisecond,
	})
	d2.Tick(start)
	at2 := warmDetector(d2, "B", start, 8)
	d = d2
	at = at2
	for i := 0; i < 3; i++ {
		flap()
	}
	// Hours of clean heartbeats: the flap score decays to ~zero.
	for i := 0; i < 200; i++ {
		at = at.Add(20 * time.Millisecond)
		d.OnHeartbeat("B", at)
		d.Tick(at)
	}
	if flap() {
		t.Fatal("flap score never decayed: a fresh flap after a long quiet stretch was quarantined")
	}
}

// TestDetectorGrayDirectRule covers the one-way-link reconciliation: a peer
// we hear from whose bitmap has excluded us past the grace cannot hear us,
// and must be downgraded — while the advertised Bitmap() keeps reporting
// the hearing truth, so the exclusion unwinds as soon as the peer's bitmap
// re-includes us.
func TestDetectorGrayDirectRule(t *testing.T) {
	start := time.Unix(0, 0)
	peers := types.NewProcSet("A", "B")
	d := NewDetectorWith("A", peers, 50*time.Millisecond, start, DetectorConfig{})
	d.Tick(start)

	// B beats regularly but its bitmap excludes A (it cannot hear us).
	at := start
	for i := 0; i < 5; i++ {
		at = at.Add(20 * time.Millisecond)
		d.OnHeartbeatInfo("B", at, types.NewProcSet("B"))
		d.Tick(at)
	}
	// Sustained past the grace (= timeout, 50ms): B is downgraded...
	if d.Reachable().Contains("B") {
		t.Fatalf("one-way link not downgraded: reachable %s", d.Reachable())
	}
	// ...but the hearing bitmap still includes B — advertising the gray
	// verdict would make mutual exclusion self-sustaining after a heal.
	if !d.Bitmap().Contains("B") {
		t.Fatalf("Bitmap() = %s echoes the gray downgrade; it must report hearing", d.Bitmap())
	}
	st := d.Stats()
	if st.GrayDowngrades != 1 || st.GrayExcluded != 1 {
		t.Fatalf("gray stats = %+v, want 1 downgrade, 1 excluded", st)
	}

	// B's bitmap re-includes A: trust returns on the next tick.
	at = at.Add(20 * time.Millisecond)
	d.OnHeartbeatInfo("B", at, peers)
	if reachable, changed := d.Tick(at); !changed || !reachable.Contains("B") {
		t.Fatalf("healed one-way link not restored: (%s, %v)", reachable, changed)
	}
	if st := d.Stats(); st.GrayExcluded != 0 {
		t.Fatalf("GrayExcluded = %d after heal, want 0", st.GrayExcluded)
	}
}

// TestDetectorGrayPairRule covers third-party arbitration: when B's bitmap
// reports it cannot hear A, every observer must drop the lexicographically
// larger of the pair (B), so the survivors' verdicts converge with the
// pair's own instead of livelocking the one-round membership protocol.
func TestDetectorGrayPairRule(t *testing.T) {
	start := time.Unix(0, 0)
	peers := types.NewProcSet("A", "B", "C")
	d := NewDetectorWith("C", peers, 50*time.Millisecond, start, DetectorConfig{})
	d.Tick(start)

	at := start
	for i := 0; i < 5; i++ {
		at = at.Add(20 * time.Millisecond)
		d.OnHeartbeatInfo("A", at, peers)                            // A hears everyone
		d.OnHeartbeatInfo("B", at, types.NewProcSet("B", "C"))       // B cannot hear A
		d.Tick(at)
	}
	reachable := d.Reachable()
	if reachable.Contains("B") {
		t.Fatalf("pair rule did not drop the larger of the broken pair: %s", reachable)
	}
	if !reachable.Contains("A") || !reachable.Contains("C") {
		t.Fatalf("pair rule dropped a survivor: %s", reachable)
	}

	// The pair heals: B's bitmap re-includes A, and B is re-admitted.
	at = at.Add(20 * time.Millisecond)
	d.OnHeartbeatInfo("A", at, peers)
	d.OnHeartbeatInfo("B", at, peers)
	if reachable, _ := d.Tick(at); !reachable.Equal(peers) {
		t.Fatalf("healed pair not re-admitted: %s", reachable)
	}
}

// TestDetectorLegacyConstructorIsFixedMode pins the compatibility contract:
// NewDetector (the signature every pre-adaptive call site uses) selects the
// fixed engine, whose verdict is the plain binary timeout.
func TestDetectorLegacyConstructorIsFixedMode(t *testing.T) {
	start := time.Unix(0, 0)
	d := NewDetector("A", types.NewProcSet("A", "B"), 50*time.Millisecond, start)
	if st := d.Stats(); st.Mode != DetectorFixed {
		t.Fatalf("NewDetector mode = %v, want DetectorFixed", st.Mode)
	}
	d.Tick(start)
	if phi := d.Phi("B", start.Add(time.Hour)); phi != 0 {
		t.Fatalf("fixed mode reports phi %v, want 0", phi)
	}
	// One nanosecond inside the timeout: trusted. One past: suspected.
	d.OnHeartbeat("B", start.Add(10*time.Millisecond))
	if reachable, _ := d.Tick(start.Add(60 * time.Millisecond)); !reachable.Contains("B") {
		t.Fatal("fixed mode suspected inside the timeout")
	}
	if reachable, _ := d.Tick(start.Add(60*time.Millisecond + time.Nanosecond)); reachable.Contains("B") {
		t.Fatal("fixed mode trusted past the timeout")
	}
}
