package membership

import (
	"time"

	"vsgm/internal/types"
)

// Detector is a heartbeat-based failure detector for the membership
// servers: each server periodically multicasts a heartbeat to its peers and
// suspects any peer it has not heard from within the timeout. Its output —
// the set of servers currently believed reachable — feeds
// Server.SetReachable, closing the loop the paper leaves to "the failure
// detector it employs" (Section 3.1's discussion of [27]'s liveness).
//
// The detector is a passive state machine: the deployment harness calls
// OnHeartbeat when a heartbeat arrives and Tick on its heartbeat schedule;
// Tick reports the new reachable set whenever the verdict changes. This
// keeps it usable under both the simulated clock and real time.
type Detector struct {
	self    types.ProcID
	peers   types.ProcSet
	timeout time.Duration

	lastSeen  map[types.ProcID]time.Time
	reachable types.ProcSet
}

// NewDetector builds a detector for server self among the given peer set
// (which includes self). A peer is suspected after timeout without a
// heartbeat. Initially every peer is unsuspected, anchored at start.
func NewDetector(self types.ProcID, peers types.ProcSet, timeout time.Duration, start time.Time) *Detector {
	d := &Detector{
		self:     self,
		peers:    peers.Clone(),
		timeout:  timeout,
		lastSeen: make(map[types.ProcID]time.Time, peers.Len()),
	}
	for p := range peers {
		d.lastSeen[p] = start
	}
	// The initial verdict is pessimistic ({self}); the first Tick after the
	// anchor reports the full set as a change, which bootstraps the first
	// membership attempt.
	d.reachable = types.NewProcSet(self)
	return d
}

// OnHeartbeat records a heartbeat from a peer at the given instant.
func (d *Detector) OnHeartbeat(from types.ProcID, at time.Time) {
	if !d.peers.Contains(from) {
		return
	}
	if at.After(d.lastSeen[from]) {
		d.lastSeen[from] = at
	}
}

// Suspect records external evidence (as of instant at) that peer p is
// unreachable — typically a broken or repeatedly undialable transport link.
// The peer's last-seen time is pushed past the timeout horizon so the next
// Tick excludes it immediately instead of waiting out the heartbeat
// timeout; a subsequent heartbeat from p restores trust as usual.
func (d *Detector) Suspect(p types.ProcID, at time.Time) {
	if p == d.self || !d.peers.Contains(p) {
		return
	}
	if at.Before(d.lastSeen[p]) {
		return // stale evidence: a heartbeat arrived after the failure
	}
	d.lastSeen[p] = at.Add(-d.timeout - time.Nanosecond)
}

// Tick re-evaluates suspicions at the given instant. It returns the
// reachable set and whether it changed since the last verdict.
func (d *Detector) Tick(now time.Time) (types.ProcSet, bool) {
	next := types.NewProcSet(d.self)
	for p := range d.peers {
		if p == d.self {
			continue
		}
		if now.Sub(d.lastSeen[p]) <= d.timeout {
			next.Add(p)
		}
	}
	changed := !next.Equal(d.reachable)
	d.reachable = next
	return next.Clone(), changed
}

// Reachable returns the current verdict.
func (d *Detector) Reachable() types.ProcSet { return d.reachable.Clone() }
