package membership

import (
	"math"
	"time"

	"vsgm/internal/types"
)

// DetectorMode selects the suspicion engine of the failure detector.
type DetectorMode int

const (
	// DetectorAdaptive is the default engine: phi-accrual suspicion over a
	// sliding window of heartbeat inter-arrival times, with a hysteresis
	// band between the suspect and restore thresholds, exponential rejoin
	// quarantine for flapping peers, and gray-failure reconciliation from
	// the reachability bitmaps peers piggyback on their heartbeats.
	DetectorAdaptive DetectorMode = iota
	// DetectorFixed is the compatibility engine: the original binary
	// last-seen timeout. No accrual scoring, no damping, no bitmap
	// reconciliation — a peer is reachable iff a heartbeat arrived within
	// the timeout.
	DetectorFixed
)

// Defaults for the zero DetectorConfig. Exported so the operator docs and
// the CLI flag defaults cannot drift from the implementation.
const (
	// DefaultDetectorWindow is the inter-arrival sliding-window length.
	DefaultDetectorWindow = 32
	// DefaultSuspectPhi is the accrual score at which an unsuspected peer
	// becomes suspected.
	DefaultSuspectPhi = 8.0
	// DefaultRestorePhi is the accrual score at or below which a suspected
	// peer is restored. The band between the two thresholds is the
	// hysteresis zone: a peer whose score sits inside it keeps its current
	// verdict, so one late heartbeat cannot flip it.
	DefaultRestorePhi = 1.0
	// DefaultQuarantineBase is the first rejoin quarantine a flapping peer
	// earns once it crosses the flap threshold.
	DefaultQuarantineBase = 250 * time.Millisecond
	// DefaultQuarantineCap bounds the exponential quarantine growth.
	DefaultQuarantineCap = 2 * time.Second
	// DefaultFlapHalfLife is the decay half-life of the per-peer flap
	// score: a peer that stops flapping for a few half-lives earns back a
	// clean slate.
	DefaultFlapHalfLife = 10 * time.Second

	// flapThreshold is how high the decayed flap score must climb before a
	// restore triggers a quarantine. Below it, isolated suspect/restore
	// cycles (a restart, one genuine partition) rejoin immediately.
	flapThreshold = 3
	// minPhiSamples is how many inter-arrival samples the window needs
	// before accrual scoring engages; until then the fixed timeout decides,
	// so a freshly booted detector behaves exactly like the legacy one.
	minPhiSamples = 3
)

// DetectorConfig tunes the adaptive failure detector. The zero value
// selects DetectorAdaptive with the defaults above; set Mode to
// DetectorFixed for the legacy binary-timeout behavior.
type DetectorConfig struct {
	// Mode selects the suspicion engine.
	Mode DetectorMode
	// Window is the sliding-window length for heartbeat inter-arrival
	// samples; 0 selects DefaultDetectorWindow.
	Window int
	// SuspectPhi and RestorePhi are the hysteresis thresholds; 0 selects
	// the defaults. RestorePhi must stay below SuspectPhi (normalize
	// clamps it).
	SuspectPhi float64
	RestorePhi float64
	// QuarantineBase and QuarantineCap bound the exponential rejoin
	// quarantine a flapping peer earns; 0 selects the defaults, negative
	// disables quarantine entirely.
	QuarantineBase time.Duration
	QuarantineCap  time.Duration
	// FlapHalfLife is the decay half-life of the flap score; 0 selects the
	// default.
	FlapHalfLife time.Duration
	// GrayGrace is how long a peer's heartbeat bitmap must exclude a
	// server before the one-way evidence acts on the verdict; 0 selects
	// the heartbeat timeout. The grace absorbs bootstrap transients (the
	// first heartbeat legitimately carries a singleton bitmap) and
	// heal-time re-admission skew.
	GrayGrace time.Duration
}

// normalize fills zero fields with defaults; timeout is the constructor's
// fixed-timeout fallback used while the window is cold.
func (c DetectorConfig) normalize(timeout time.Duration) DetectorConfig {
	if c.Window <= 0 {
		c.Window = DefaultDetectorWindow
	}
	if c.SuspectPhi <= 0 {
		c.SuspectPhi = DefaultSuspectPhi
	}
	if c.RestorePhi <= 0 {
		c.RestorePhi = DefaultRestorePhi
	}
	if c.RestorePhi >= c.SuspectPhi {
		c.RestorePhi = c.SuspectPhi / 2
	}
	if c.QuarantineBase == 0 {
		c.QuarantineBase = DefaultQuarantineBase
	}
	if c.QuarantineCap == 0 {
		c.QuarantineCap = DefaultQuarantineCap
	}
	if c.QuarantineCap < c.QuarantineBase {
		c.QuarantineCap = c.QuarantineBase
	}
	if c.FlapHalfLife <= 0 {
		c.FlapHalfLife = DefaultFlapHalfLife
	}
	if c.GrayGrace <= 0 {
		c.GrayGrace = timeout
	}
	return c
}

// DetectorStats is a snapshot of the detector's counters, for the
// observability surface. Totals are monotone; Quarantined and GrayExcluded
// are current-state gauges.
type DetectorStats struct {
	Mode           DetectorMode
	Suspects       int64 // verdict crossings into suspicion
	Flaps          int64 // suspect-to-restore crossings (the damped signal)
	Quarantines    int64 // rejoin quarantines imposed
	Quarantined    int   // peers currently serving a quarantine
	GrayDowngrades int64 // peers downgraded on one-way-link evidence
	GrayExcluded   int   // peers currently excluded by bitmap reconciliation
	VerdictChanges int64 // Ticks whose reachable set differed from the last
}

// peerState is the detector's per-peer bookkeeping.
type peerState struct {
	lastSeen time.Time
	heard    bool // a real heartbeat arrived (lastSeen is not the anchor)

	// Sliding window of heartbeat inter-arrival times (ring buffer).
	intervals []time.Duration
	ringIdx   int

	// Hysteresis latch and flap damping.
	suspected       bool
	flapScore       float64
	lastFlap        time.Time
	quarantineUntil time.Time

	// Gray-failure evidence: for each server q, since when this peer's
	// heartbeat bitmap has excluded q (entry absent while included). The
	// self entry is the direct one-way-link signal; third-party entries
	// feed pair arbitration so every observer converges on the same drop.
	brokenSince map[types.ProcID]time.Time
	grayOut     bool // currently excluded by reconciliation (for counters)
}

// Detector is a heartbeat-based failure detector for the membership
// servers: each server periodically multicasts a heartbeat to its peers and
// suspects any peer whose heartbeats stop. Its output — the set of servers
// currently believed reachable — feeds Server.SetReachable, closing the
// loop the paper leaves to "the failure detector it employs" (Section 3.1's
// discussion of [27]'s liveness).
//
// The detector is a passive state machine: the deployment harness calls
// OnHeartbeat (or OnHeartbeatInfo, with the sender's piggybacked
// reachability bitmap) when a heartbeat arrives and Tick on its heartbeat
// schedule; Tick reports the new reachable set whenever the verdict
// changes. This keeps it usable under both the simulated clock and real
// time.
//
// In the adaptive mode the verdict is shaped by three mechanisms beyond
// the raw timeout:
//
//   - Accrual suspicion: the score phi = log10(e) * elapsed/(mean+stddev)
//     over a sliding window of inter-arrival times (an exponential-tail
//     accrual detector in the style of Hayashibara et al. as deployed by
//     Cassandra). A peer is suspected when phi crosses SuspectPhi and
//     restored when it falls to RestorePhi; the band between them is
//     hysteresis, so a verdict never flips on a score that merely wobbles.
//
//   - Flap damping: each suspect-to-restore crossing bumps a per-peer flap
//     score that decays with half-life FlapHalfLife. Once the score
//     crosses the flap threshold, every further restore earns the peer an
//     exponentially growing rejoin quarantine (QuarantineBase doubling up
//     to QuarantineCap), so a flapping link converges to "out" instead of
//     driving a view change per flap.
//
//   - Gray-failure reconciliation: heartbeats carry the sender's current
//     reachable set. A peer we hear from whose bitmap has excluded us for
//     longer than GrayGrace cannot hear us — a one-way link — and is
//     downgraded, so both sides converge on symmetric verdicts instead of
//     livelocking the one-round membership protocol (which requires all
//     proposals to agree on the server set). Bitmaps about third parties
//     feed the same rule: if p's bitmap says the p-q link is broken, every
//     observer drops the lexicographically larger of the pair, so the
//     survivors' verdicts converge without waiting out q's own timeout.
type Detector struct {
	self    types.ProcID
	peers   types.ProcSet
	timeout time.Duration
	cfg     DetectorConfig

	state     map[types.ProcID]*peerState
	reachable types.ProcSet
	hearing   types.ProcSet
	stats     DetectorStats
}

// NewDetector builds a detector for server self among the given peer set
// (which includes self), in the legacy fixed-timeout compatibility mode: a
// peer is suspected after timeout without a heartbeat, nothing else.
// Initially every peer is unsuspected, anchored at start.
func NewDetector(self types.ProcID, peers types.ProcSet, timeout time.Duration, start time.Time) *Detector {
	return NewDetectorWith(self, peers, timeout, start, DetectorConfig{Mode: DetectorFixed})
}

// NewDetectorWith builds a detector with an explicit configuration. The
// timeout remains meaningful in the adaptive mode: it decides while the
// inter-arrival window is cold and defaults the gray grace.
func NewDetectorWith(self types.ProcID, peers types.ProcSet, timeout time.Duration, start time.Time, cfg DetectorConfig) *Detector {
	d := &Detector{
		self:    self,
		peers:   peers.Clone(),
		timeout: timeout,
		cfg:     cfg.normalize(timeout),
		state:   make(map[types.ProcID]*peerState, peers.Len()),
	}
	d.stats.Mode = d.cfg.Mode
	for p := range peers {
		d.state[p] = &peerState{lastSeen: start}
	}
	// The initial verdict is pessimistic ({self}); the first Tick after the
	// anchor reports the full set as a change, which bootstraps the first
	// membership attempt.
	d.reachable = types.NewProcSet(self)
	d.hearing = types.NewProcSet(self)
	return d
}

// OnHeartbeat records a heartbeat from a peer at the given instant.
func (d *Detector) OnHeartbeat(from types.ProcID, at time.Time) {
	d.OnHeartbeatInfo(from, at, nil)
}

// OnHeartbeatInfo records a heartbeat carrying the sender's reachability
// bitmap (its current reachable set, piggybacked on the wire message; nil
// when the sender sent none). The tie-break against Suspect is explicit:
// a heartbeat at the same instant as a suspicion wins regardless of which
// call lands first, because a heartbeat is direct evidence of liveness
// while a suspicion is only inference.
func (d *Detector) OnHeartbeatInfo(from types.ProcID, at time.Time, reach types.ProcSet) {
	st, ok := d.state[from]
	if !ok {
		return // stranger
	}
	if !at.Before(st.lastSeen) { // >=: heartbeat wins an equal-timestamp race
		if st.heard && !st.suspected {
			// Only true inter-arrivals feed the window; the gap back to the
			// construction anchor is not one, and neither is a gap spanning a
			// detected failure — sampling a partition's length would inflate
			// the window and blunt every later detection.
			d.sample(st, at.Sub(st.lastSeen))
		}
		st.lastSeen = at
		st.heard = true
	}
	if reach == nil {
		return
	}
	// Refresh the broken-link evidence this peer's bitmap carries. Entries
	// keep their original first-excluded instant so the gray grace measures
	// sustained exclusion, not bitmap arrival times.
	for q := range d.peers {
		if q == from {
			continue
		}
		if reach.Contains(q) {
			delete(st.brokenSince, q)
			continue
		}
		if st.brokenSince == nil {
			st.brokenSince = make(map[types.ProcID]time.Time)
		}
		if _, seen := st.brokenSince[q]; !seen {
			st.brokenSince[q] = at
		}
	}
}

// sample pushes one inter-arrival observation into the sliding window.
func (d *Detector) sample(st *peerState, dt time.Duration) {
	if dt <= 0 {
		return
	}
	if len(st.intervals) < d.cfg.Window {
		st.intervals = append(st.intervals, dt)
		return
	}
	st.intervals[st.ringIdx] = dt
	st.ringIdx = (st.ringIdx + 1) % d.cfg.Window
}

// Suspect records external evidence (as of instant at) that peer p is
// unreachable — typically a broken or repeatedly undialable transport
// link — so the next Tick excludes it immediately instead of waiting out
// the heartbeat horizon. A subsequent heartbeat from p restores trust as
// usual. Evidence not after the last heartbeat is stale and ignored: on an
// exact tie the heartbeat wins (see OnHeartbeatInfo).
func (d *Detector) Suspect(p types.ProcID, at time.Time) {
	if p == d.self {
		return
	}
	st, ok := d.state[p]
	if !ok {
		return
	}
	if !at.After(st.lastSeen) {
		return // stale or tied evidence: a heartbeat arrived at or after it
	}
	if d.cfg.Mode == DetectorFixed {
		// Legacy mechanism: push the last-seen time past the timeout horizon.
		st.lastSeen = at.Add(-d.timeout - time.Nanosecond)
		return
	}
	if !st.suspected {
		st.suspected = true
		d.stats.Suspects++
	}
}

// Phi returns the current accrual suspicion score for peer p at the given
// instant (0 while the window is cold or in fixed mode) — the value the
// deployment surfaces as the vsgm_detector_phi histogram.
func (d *Detector) Phi(p types.ProcID, now time.Time) float64 {
	st, ok := d.state[p]
	if !ok || p == d.self || d.cfg.Mode == DetectorFixed {
		return 0
	}
	return d.phi(st, now.Sub(st.lastSeen))
}

// phi computes the accrual score for an elapsed silence. With a cold
// window it degenerates to the binary timeout, reporting exactly the
// suspect threshold once the timeout passes.
func (d *Detector) phi(st *peerState, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	if len(st.intervals) < minPhiSamples {
		if elapsed > d.timeout {
			return d.cfg.SuspectPhi
		}
		return 0
	}
	var sum, sumSq float64
	for _, dt := range st.intervals {
		s := dt.Seconds()
		sum += s
		sumSq += s * s
	}
	n := float64(len(st.intervals))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	scale := mean + math.Sqrt(variance)
	if scale < 0.001 { // 1ms floor guards degenerate windows
		scale = 0.001
	}
	// Exponential-tail accrual: phi = -log10 P(silence > elapsed).
	return math.Log10(math.E) * elapsed.Seconds() / scale
}

// noteFlap accounts one suspect-to-restore crossing and, once the decayed
// flap score crosses the threshold, imposes the exponentially growing
// rejoin quarantine.
func (d *Detector) noteFlap(st *peerState, now time.Time) {
	if !st.lastFlap.IsZero() {
		if dt := now.Sub(st.lastFlap); dt > 0 {
			st.flapScore *= math.Exp2(-dt.Seconds() / d.cfg.FlapHalfLife.Seconds())
		}
	}
	st.flapScore++
	st.lastFlap = now
	d.stats.Flaps++
	if d.cfg.QuarantineBase < 0 || st.flapScore < flapThreshold {
		return
	}
	exp := int(st.flapScore) - flapThreshold
	if exp > 20 {
		exp = 20
	}
	q := d.cfg.QuarantineBase << uint(exp)
	if q > d.cfg.QuarantineCap || q <= 0 {
		q = d.cfg.QuarantineCap
	}
	st.quarantineUntil = now.Add(q)
	d.stats.Quarantines++
}

// brokenSustained reports whether p's bitmap has excluded q for longer
// than the gray grace as of now.
func (st *peerState) brokenSustained(q types.ProcID, now time.Time, grace time.Duration) bool {
	since, ok := st.brokenSince[q]
	return ok && now.Sub(since) > grace
}

// Tick re-evaluates suspicions at the given instant. It returns the
// reachable set and whether it changed since the last verdict.
func (d *Detector) Tick(now time.Time) (types.ProcSet, bool) {
	next := types.NewProcSet(d.self)
	if d.cfg.Mode == DetectorFixed {
		for p, st := range d.state {
			if p == d.self {
				continue
			}
			if now.Sub(st.lastSeen) <= d.timeout {
				next.Add(p)
			}
		}
		d.hearing = next.Clone()
	} else {
		d.tickAdaptive(now, next)
	}
	changed := !next.Equal(d.reachable)
	if changed {
		d.stats.VerdictChanges++
	}
	d.reachable = next
	return next.Clone(), changed
}

// tickAdaptive runs the accrual/damping/reconciliation verdict, adding the
// trusted peers to next.
func (d *Detector) tickAdaptive(now time.Time, next types.ProcSet) {
	d.stats.Quarantined = 0
	for p, st := range d.state {
		if p == d.self {
			continue
		}
		score := d.phi(st, now.Sub(st.lastSeen))
		if !st.suspected && score >= d.cfg.SuspectPhi {
			st.suspected = true
			d.stats.Suspects++
		} else if st.suspected && score <= d.cfg.RestorePhi {
			st.suspected = false
			d.noteFlap(st, now)
		}
		if st.suspected {
			continue
		}
		if now.Before(st.quarantineUntil) {
			d.stats.Quarantined++
			continue
		}
		next.Add(p)
	}
	// The hearing set is the verdict before reconciliation: who we can
	// actually hear. It — not the reconciled set — is what Bitmap()
	// advertises, because a bitmap that echoed our own gray downgrades
	// would make mutual exclusion self-sustaining after a heal: each side
	// would keep dropping the other for a stale bitmap that its own drop
	// perpetuates. Hearing recovers the moment frames flow again, so the
	// reconciliation unwinds itself.
	d.hearing = next.Clone()

	// Gray-failure reconciliation over the surviving candidates. The direct
	// rule: a peer whose bitmap has excluded us past the grace cannot hear
	// us, so we stop trusting it — making the pair's verdicts symmetric.
	// The pair rule: sustained broken-link evidence between two candidates
	// drops the lexicographically larger one everywhere, so third parties
	// converge with the pair instead of holding out for a three-way
	// agreement that can never form.
	grayExcluded := 0
	drop := make([]types.ProcID, 0, 2)
	for p := range next {
		if p == d.self {
			continue
		}
		st := d.state[p]
		if st.brokenSustained(d.self, now, d.cfg.GrayGrace) {
			drop = append(drop, p)
			continue
		}
		for q := range next {
			if q == d.self || q == p {
				continue
			}
			if st.brokenSustained(q, now, d.cfg.GrayGrace) {
				loser := p
				if q > p {
					loser = q
				}
				drop = append(drop, loser)
			}
		}
	}
	for _, p := range drop {
		next.Remove(p)
	}
	for p, st := range d.state {
		if p == d.self {
			continue
		}
		out := !st.suspected && !now.Before(st.quarantineUntil) && !next.Contains(p)
		if out {
			grayExcluded++
			if !st.grayOut {
				st.grayOut = true
				d.stats.GrayDowngrades++
			}
		} else {
			st.grayOut = false
		}
	}
	d.stats.GrayExcluded = grayExcluded
}

// Reachable returns the current verdict.
func (d *Detector) Reachable() types.ProcSet { return d.reachable.Clone() }

// Bitmap returns the reachability bitmap to piggyback on outgoing
// heartbeats: the hearing set as of the last Tick — suspicion and
// quarantine applied, gray reconciliation NOT applied (see tickAdaptive
// for why echoing the reconciled verdict would deadlock heals). In fixed
// mode it coincides with Reachable.
func (d *Detector) Bitmap() types.ProcSet { return d.hearing.Clone() }

// Stats snapshots the detector's counters.
func (d *Detector) Stats() DetectorStats { return d.stats }
