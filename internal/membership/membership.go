// Package membership implements the external membership service of Section
// 3.1 (Figure 2) of Keidar & Khazan: a partitionable service whose interface
// to each client consists of start_change(cid, set) notifications, carrying
// a locally unique increasing identifier, followed by view(v) notifications
// whose startId map echoes each member's last cid.
//
// Two implementations are provided:
//
//   - Oracle: a centralized, fully controllable service. Tests and the
//     simulator drive it explicitly (begin a change, commit a view, split
//     into partitions), and it enforces every precondition of the MBRSHP
//     specification automaton, so any schedule it produces is a legal
//     membership trace.
//
//   - ServerGroup (servers.go): a distributed client-server membership in
//     the style of Keidar-Sussman-Marzullo-Dolev, in which a small set of
//     dedicated servers runs a one-round membership algorithm and serves
//     many clients. It exists to demonstrate and measure the client-server
//     architecture (experiment E8).
package membership

import (
	"fmt"

	"vsgm/internal/types"
)

// NotificationKind discriminates membership notifications.
type NotificationKind int

const (
	// NotifyStartChange is a start_change_p(cid, set) notification.
	NotifyStartChange NotificationKind = iota + 1
	// NotifyView is a view_p(v) notification.
	NotifyView
)

// Notification is a single membership-service output to one client.
type Notification struct {
	Kind        NotificationKind
	StartChange types.StartChange // valid when Kind == NotifyStartChange
	View        types.View        // valid when Kind == NotifyView

	// Trace is the reconfiguration trace identifier stamped by the
	// membership servers (zero from sources that do not stamp, such as the
	// controllable test oracle). Both notification kinds of one
	// reconfiguration carry the same trace, so observers can correlate the
	// start_change with the view that resolves it.
	Trace uint64
}

// String renders the notification for traces.
func (n Notification) String() string {
	switch n.Kind {
	case NotifyStartChange:
		return fmt.Sprintf("start_change(cid=%d set=%s)", n.StartChange.ID, n.StartChange.Set)
	case NotifyView:
		return n.View.String()
	default:
		return fmt.Sprintf("notification(%d)", int(n.Kind))
	}
}

// Output receives the service's notifications for a given client. The
// simulator typically wraps delivery with a latency model; unit tests
// dispatch synchronously.
type Output func(p types.ProcID, n Notification)

type clientMode int

const (
	modeNormal clientMode = iota + 1
	modeChangeStarted
)

type clientState struct {
	view        types.View
	startChange types.StartChange
	mode        clientMode
	crashed     bool
}

// Oracle is the controllable MBRSHP implementation. It is not safe for
// concurrent use; drive it from a single goroutine (the simulator's event
// loop or a test).
type Oracle struct {
	out     Output
	clients map[types.ProcID]*clientState
	nextVid types.ViewID
}

// NewOracle returns an oracle that reports notifications through out.
func NewOracle(out Output) *Oracle {
	return &Oracle{
		out:     out,
		clients: make(map[types.ProcID]*clientState),
		nextVid: types.InitialViewID + 1,
	}
}

// Register adds client p in its initial singleton view v_p with mode normal.
func (o *Oracle) Register(p types.ProcID) {
	o.clients[p] = &clientState{
		view:        types.InitialView(p),
		startChange: types.StartChange{ID: types.InitialStartChangeID, Set: types.NewProcSet()},
		mode:        modeNormal,
	}
}

// CurrentView returns mbrshp_view[p].
func (o *Oracle) CurrentView(p types.ProcID) (types.View, error) {
	st, err := o.client(p)
	if err != nil {
		return types.View{}, err
	}
	return st.view.Clone(), nil
}

// LastStartChange returns the latest start_change delivered to p.
func (o *Oracle) LastStartChange(p types.ProcID) (types.StartChange, error) {
	st, err := o.client(p)
	if err != nil {
		return types.StartChange{}, err
	}
	return st.startChange.Clone(), nil
}

// StartChange performs the output action start_change_p(cid, set) for every
// live member of set: each member receives a fresh, locally increasing cid
// (identifiers are deliberately not coordinated across members — that is the
// paper's central interface idea). It returns the per-member identifiers.
func (o *Oracle) StartChange(set types.ProcSet) (map[types.ProcID]types.StartChangeID, error) {
	ids := make(map[types.ProcID]types.StartChangeID, set.Len())
	for _, p := range set.Sorted() {
		st, err := o.client(p)
		if err != nil {
			return nil, err
		}
		if st.crashed {
			continue
		}
		// Precondition: cid > start_change[p].id and p ∈ set.
		cid := st.startChange.ID + 1
		st.startChange = types.StartChange{ID: cid, Set: set.Clone()}
		st.mode = modeChangeStarted
		ids[p] = cid
		o.out(p, Notification{Kind: NotifyStartChange, StartChange: st.startChange.Clone()})
	}
	return ids, nil
}

// DeliverView performs the output action view_p(v) for every live member of
// members, forming a fresh view whose identifier exceeds every member's
// current view identifier and whose startId map echoes each member's latest
// cid. It enforces the MBRSHP preconditions:
//
//   - every member is in mode change_started,
//   - members ⊆ start_change[p].set for every member p,
//   - v.id > mbrshp_view[p].id for every member p.
//
// It returns the delivered view.
func (o *Oracle) DeliverView(members types.ProcSet) (types.View, error) {
	if members.Len() == 0 {
		return types.View{}, fmt.Errorf("deliver view: empty membership")
	}
	startID := make(map[types.ProcID]types.StartChangeID, members.Len())
	vid := o.nextVid
	for _, p := range members.Sorted() {
		st, err := o.client(p)
		if err != nil {
			return types.View{}, err
		}
		if st.crashed {
			return types.View{}, fmt.Errorf("deliver view: member %s is crashed", p)
		}
		if st.mode != modeChangeStarted {
			return types.View{}, fmt.Errorf("deliver view: no preceding start_change at %s", p)
		}
		if !members.SubsetOf(st.startChange.Set) {
			return types.View{}, fmt.Errorf(
				"deliver view: members %s not a subset of start_change set %s at %s",
				members, st.startChange.Set, p)
		}
		if st.view.ID >= vid {
			vid = st.view.ID + 1
		}
		startID[p] = st.startChange.ID
	}
	if vid >= o.nextVid {
		o.nextVid = vid + 1
	}
	v := types.NewView(vid, members, startID)
	for _, p := range members.Sorted() {
		st := o.clients[p]
		st.view = v.Clone()
		st.mode = modeNormal
		o.out(p, Notification{Kind: NotifyView, View: v.Clone()})
	}
	return v, nil
}

// ProposeAndCommit is the common one-shot sequence: a start_change to every
// member of set immediately followed by the corresponding view.
func (o *Oracle) ProposeAndCommit(set types.ProcSet) (types.View, error) {
	if _, err := o.StartChange(set); err != nil {
		return types.View{}, err
	}
	return o.DeliverView(set)
}

// Partition splits the processes into the given disjoint groups, delivering
// to each group a start_change followed by a fresh view containing exactly
// that group (the service is partitionable; Section 3.1). It returns the
// views in group order.
func (o *Oracle) Partition(groups ...types.ProcSet) ([]types.View, error) {
	views := make([]types.View, 0, len(groups))
	for _, g := range groups {
		v, err := o.ProposeAndCommit(g)
		if err != nil {
			return nil, err
		}
		views = append(views, v)
	}
	return views, nil
}

// Crash marks p as crashed: the service stops notifying p but, per Section
// 8, retains p's identifier state (last cid and view id) so that the first
// view delivered after recovery still satisfies Local Monotonicity.
func (o *Oracle) Crash(p types.ProcID) error {
	st, err := o.client(p)
	if err != nil {
		return err
	}
	st.crashed = true
	return nil
}

// Recover marks p as live again and resets its mode to normal (the
// recover_p action of Section 8).
func (o *Oracle) Recover(p types.ProcID) error {
	st, err := o.client(p)
	if err != nil {
		return err
	}
	st.crashed = false
	st.mode = modeNormal
	return nil
}

func (o *Oracle) client(p types.ProcID) (*clientState, error) {
	st, ok := o.clients[p]
	if !ok {
		return nil, fmt.Errorf("membership: unknown client %s", p)
	}
	return st, nil
}
