package membership

import (
	"fmt"

	"vsgm/internal/types"
)

// ServerTransport is the sender side of the channel the membership servers
// use among themselves (corfifo.Handle satisfies it).
type ServerTransport interface {
	Send(dests []types.ProcID, m types.WireMsg)
}

// Server is one dedicated membership server of the client-server
// architecture (Section 1; after Keidar-Sussman-Marzullo-Dolev). A small,
// static group of servers runs a one-round membership algorithm among
// themselves and serves many clients: each client has a home server, which
// issues its start_change notifications (with per-client locally unique
// identifiers) and delivers its views.
//
// The algorithm per attempt: a server announces the estimated next
// membership to its local clients via start_change, then multicasts a
// proposal — its reachable-server set, a view-identifier floor, and its
// local clients with their latest start-change identifiers — to the servers
// it can reach. When a server holds proposals for the current attempt from
// exactly its reachable set, all agreeing on that server set, it assembles
// the view deterministically (member set = union of proposed clients, id =
// max of the floors, startId = union of the proposed identifier maps) and
// delivers it to its local clients. If the assembled membership exceeds
// what a local client was told in its last start_change (cold caches), the
// server re-announces and runs one more attempt, so a stable system
// converges in at most two attempts and steady state takes one round.
//
// Server-side per-client state (identifiers, last view id) survives client
// crashes, which is what lets recovered clients rejoin under their original
// identity without stable storage (Section 8).
type Server struct {
	id        types.ProcID
	transport ServerTransport
	out       Output
	servers   types.ProcSet

	clients map[types.ProcID]*serverClient
	cache   map[types.ProcID]map[types.ProcID]types.StartChangeID

	// records retains identifier state for clients that are no longer
	// registered locally — crashed, departed, evicted to another server, or
	// restored from a WAL replay. It is what AttachClient consults so a
	// returning client never regresses below an identifier this server ever
	// issued (Section 8, extended to server restarts).
	records map[types.ProcID]ClientRecord

	// recorder, when set, observes every mutation of a client's durable
	// identifier state (cid, vid, epoch). The live layer points it at a
	// write-ahead log; the membership core itself stays storage-free.
	recorder func(types.ProcID, ClientRecord)

	reachable types.ProcSet
	attempt   int64
	proposals map[int64]map[types.ProcID]*types.MembProposal
	maxVid    types.ViewID

	// lastProp is this server's proposal for the current attempt, kept so a
	// watchdog can re-send it (Repropose) and so a peer stuck on an attempt
	// we already completed can be answered directly.
	lastProp      *types.MembProposal
	lastCompleted int64

	// trace is the reconfiguration trace identifier for traceAttempt: a
	// deterministic function of the initiating server and attempt number,
	// gossiped in proposals so every server stamps the same identifier on
	// one reconfiguration's notifications. Servers adopting a peer's higher
	// attempt adopt its trace; concurrent initiators of the same attempt
	// converge on the numerically largest.
	trace        uint64
	traceAttempt int64

	attemptsRun    int64
	viewsDelivered int64
	reproposals    int64
	evictions      int64

	// sanitize accumulates the clamps applied to impossible identifier
	// state arriving through RestoreRecords, AdoptClient, or attach claims
	// — the self-stabilization counters surfaced as vsgm_sanitize_*.
	sanitize SanitizeStats
}

type serverClient struct {
	cid       types.StartChangeID
	vid       types.ViewID
	epoch     int64
	announced types.ProcSet
	mode      clientMode
	crashed   bool
}

// ClientRecord is the durable per-client identifier state a home server
// maintains on behalf of a client: the last start-change identifier it
// issued, the last view identifier it delivered, and the attach epoch the
// registration is held under. It is what must survive server restarts for
// Local Monotonicity to hold across a crash.
type ClientRecord struct {
	CID   types.StartChangeID
	Vid   types.ViewID
	Epoch int64
}

// merge folds other into r field-wise, keeping the maxima.
func (r ClientRecord) merge(other ClientRecord) ClientRecord {
	if other.CID > r.CID {
		r.CID = other.CID
	}
	if other.Vid > r.Vid {
		r.Vid = other.Vid
	}
	if other.Epoch > r.Epoch {
		r.Epoch = other.Epoch
	}
	return r
}

// cidEpochShift partitions the start-change identifier space by attach
// epoch: cid = epoch<<cidEpochShift + counter. Each failover increments the
// client's epoch, so the adopting server's identifiers are strictly above
// everything any previous home ever issued — even identifiers whose gossip
// was lost with the crashed server. Epoch 0 (out-of-band registration)
// degenerates to plain counters, leaving legacy deployments untouched.
const cidEpochShift = 32

// nextCID returns the successor of last within epoch's identifier range.
func nextCID(epoch int64, last types.StartChangeID) types.StartChangeID {
	if floor := types.StartChangeID(epoch << cidEpochShift); last < floor {
		last = floor
	}
	return last + 1
}

// NewServer constructs a membership server. servers is the static set of
// all server identifiers (including id); out receives client notifications.
func NewServer(id types.ProcID, servers types.ProcSet, tr ServerTransport, out Output) (*Server, error) {
	if !servers.Contains(id) {
		return nil, fmt.Errorf("membership: server set %s does not contain %s", servers, id)
	}
	return &Server{
		id:        id,
		transport: tr,
		out:       out,
		servers:   servers.Clone(),
		clients:   make(map[types.ProcID]*serverClient),
		cache:     make(map[types.ProcID]map[types.ProcID]types.StartChangeID),
		records:   make(map[types.ProcID]ClientRecord),
		reachable: types.NewProcSet(id),
		proposals: make(map[int64]map[types.ProcID]*types.MembProposal),
	}, nil
}

// SetRecorder installs the observer for durable identifier-state mutations.
// Pass nil to disable. The recorder is invoked synchronously from whatever
// call mutates the state, before any resulting notification is emitted, so
// a write-ahead log is always at least as fresh as what clients have seen.
func (s *Server) SetRecorder(f func(types.ProcID, ClientRecord)) { s.recorder = f }

// record reports c's current durable state to the recorder.
func (s *Server) record(p types.ProcID, c *serverClient) {
	if s.recorder != nil {
		s.recorder(p, ClientRecord{CID: c.cid, Vid: c.vid, Epoch: c.epoch})
	}
}

// RestoreRecords merges previously persisted identifier state (a WAL
// replay) into the retained-record map. Field-wise maxima are kept, so
// replay order and duplicate records do not matter. Every record is passed
// through the sanitizer first: restart recovery must converge from
// arbitrary state, so impossible values (wrapped epochs, identifiers above
// the attach-claim ceiling, views with no start-change behind them) are
// clamped here rather than replayed into proposals.
func (s *Server) RestoreRecords(recs map[types.ProcID]ClientRecord) {
	for p, rec := range recs {
		clean, st := SanitizeRecord(rec)
		s.sanitize.add(st)
		s.records[p] = s.records[p].merge(clean)
	}
}

// Sanitized returns the accumulated sanitization statistics: how many
// impossible identifier values this server clamped out of restored state
// and attach claims since construction.
func (s *Server) Sanitized() SanitizeStats { return s.sanitize }

// ID returns the server's identifier.
func (s *Server) ID() types.ProcID { return s.id }

// AttemptsRun counts the membership attempts this server initiated or
// adopted.
func (s *Server) AttemptsRun() int64 { return s.attemptsRun }

// ViewsDelivered counts the views this server delivered to local clients.
func (s *Server) ViewsDelivered() int64 { return s.viewsDelivered }

// AddClient registers a local client. The caller triggers a reconfiguration
// (SetReachable or Reconfigure) to admit it into a view. A retained record
// for p (an earlier registration, or a WAL replay) seeds its identifier
// state, so re-adding a client never regresses its identifiers.
func (s *Server) AddClient(p types.ProcID) {
	s.register(p, 0)
}

// AttachClient registers (or refreshes) a local client under an attach
// epoch — the in-band protocol's entry point. It returns the client's
// durable record and whether this call created the registration (a fresh
// registration needs a Reconfigure to enter a view; a keepalive does not).
// The returned record merges every identifier source this server knows:
// its retained records, the live registration, and peer gossip.
func (s *Server) AttachClient(p types.ProcID, epoch int64) (ClientRecord, bool) {
	return s.AttachClientClaim(p, epoch, ClientRecord{})
}

// AttachClientClaim is AttachClient for a client that reports its own
// identifier high-water mark — the largest cid and view id it has already
// seen. The claim is merged into the registration so every identifier this
// server mints next is strictly above anything the client has observed.
// This is the only defense that works when this server's other sources are
// all cold: peers never gossip a client only this server holds, so a server
// resurrected from a stale or corrupted store would otherwise keep issuing
// identifiers the client must reject as regressions, wedging the attachment.
// The claim is sanitized before merging: a client restarted from arbitrary
// state could otherwise claim an impossible identifier and burn the space
// to the brink of wraparound for everyone serving it afterwards.
func (s *Server) AttachClientClaim(p types.ProcID, epoch int64, claim ClientRecord) (ClientRecord, bool) {
	var st SanitizeStats
	claim, st = SanitizeClaim(claim)
	s.sanitize.add(st)
	if epoch < 0 || epoch > MaxAttachEpoch {
		epoch = 0
		s.sanitize.WrappedEpoch++
	}
	c, added := s.register(p, epoch)
	if epoch > c.epoch {
		c.epoch = epoch
	}
	if claim.CID > c.cid {
		c.cid = claim.CID
	}
	if claim.Vid > c.vid {
		c.vid = claim.Vid
	}
	if claim.Epoch > c.epoch {
		c.epoch = claim.Epoch
	}
	if added || epoch > 0 || claim != (ClientRecord{}) {
		s.record(p, c)
	}
	return ClientRecord{CID: c.cid, Vid: c.vid, Epoch: c.epoch}, added
}

// register inserts p if absent, seeding from retained records and gossip.
func (s *Server) register(p types.ProcID, epoch int64) (*serverClient, bool) {
	if c, ok := s.clients[p]; ok {
		return c, false
	}
	c := &serverClient{mode: modeNormal, epoch: epoch}
	if rec, ok := s.records[p]; ok {
		c.cid, c.vid, c.epoch = rec.CID, rec.Vid, rec.Epoch
		if epoch > c.epoch {
			c.epoch = epoch
		}
		delete(s.records, p)
	}
	if cid := s.gossipCID(p); cid > c.cid {
		c.cid = cid
	}
	s.clients[p] = c
	return c, true
}

// gossipCID returns the highest start-change identifier any peer's cached
// proposal claims for p — the adoption path's defense against issuing an
// identifier the client has already seen from its previous home.
func (s *Server) gossipCID(p types.ProcID) types.StartChangeID {
	var max types.StartChangeID
	for _, clients := range s.cache {
		if cid, ok := clients[p]; ok && cid > max {
			max = cid
		}
	}
	return max
}

// RemoveClient deregisters a local client (it has left the group). Its
// identifier state is retained so a later re-registration resumes above it.
func (s *Server) RemoveClient(p types.ProcID) {
	if c, ok := s.clients[p]; ok {
		s.records[p] = s.records[p].merge(ClientRecord{CID: c.cid, Vid: c.vid, Epoch: c.epoch})
		delete(s.clients, p)
	}
}

// ExportClient deregisters a local client and returns its durable record,
// for handing the registration to another server.
func (s *Server) ExportClient(p types.ProcID) (ClientRecord, bool) {
	c, ok := s.clients[p]
	if !ok {
		return ClientRecord{}, false
	}
	s.RemoveClient(p)
	return ClientRecord{CID: c.cid, Vid: c.vid, Epoch: c.epoch}, true
}

// AdoptClient registers a local client with explicit identifier state (the
// counterpart of ExportClient). The caller triggers a reconfiguration to
// admit it into a view. The record is sanitized first: a migration source
// resurrected from arbitrary state must not hand impossible identifiers to
// a healthy adopter.
func (s *Server) AdoptClient(p types.ProcID, rec ClientRecord) {
	clean, st := SanitizeRecord(rec)
	s.sanitize.add(st)
	rec = clean
	s.records[p] = s.records[p].merge(rec)
	c, _ := s.register(p, rec.Epoch)
	s.record(p, c)
}

// RecordOf returns the durable record this server holds for p — from the
// live registration if present, else the retained records.
func (s *Server) RecordOf(p types.ProcID) (ClientRecord, bool) {
	if c, ok := s.clients[p]; ok {
		return ClientRecord{CID: c.cid, Vid: c.vid, Epoch: c.epoch}, true
	}
	rec, ok := s.records[p]
	return rec, ok
}

// HasClient reports whether p is currently registered locally.
func (s *Server) HasClient(p types.ProcID) bool {
	_, ok := s.clients[p]
	return ok
}

// LocalClients returns the currently registered local clients.
func (s *Server) LocalClients() types.ProcSet {
	set := types.NewProcSet()
	for p := range s.clients {
		set.Add(p)
	}
	return set
}

// ClientRecords snapshots the durable identifier state of every client this
// server knows — live registrations and retained records — for snapshots
// and diagnostics.
func (s *Server) ClientRecords() map[types.ProcID]ClientRecord {
	out := make(map[types.ProcID]ClientRecord, len(s.clients)+len(s.records))
	for p, rec := range s.records {
		out[p] = rec
	}
	for p, c := range s.clients {
		out[p] = out[p].merge(ClientRecord{CID: c.cid, Vid: c.vid, Epoch: c.epoch})
	}
	return out
}

// CrashClient marks a local client crashed: notifications stop but its
// identifier state is retained (Section 8).
func (s *Server) CrashClient(p types.ProcID) {
	if c, ok := s.clients[p]; ok {
		c.crashed = true
	}
}

// RecoverClient marks a local client recovered.
func (s *Server) RecoverClient(p types.ProcID) {
	if c, ok := s.clients[p]; ok {
		c.crashed = false
		c.mode = modeNormal
	}
}

// SetReachable is the failure-detector input: the set of servers (including
// this one) currently believed reachable. A change starts a new attempt.
func (s *Server) SetReachable(set types.ProcSet) {
	if !set.Contains(s.id) {
		set = set.Clone()
		set.Add(s.id)
	}
	// The very first report always starts an attempt — a single-server
	// deployment's reachable set ({self}) never differs from the initial
	// state, yet its clients still need a first view.
	if s.reachable.Equal(set) && s.attempt > 0 {
		return
	}
	s.reachable = set.Clone()
	s.startAttempt(s.attempt + 1)
}

// Reachable returns the servers this one currently believes reachable —
// the failure detector's last report. Observability surface: harnesses use
// it to tell an integrated peer (whose death owes the survivors a
// reconfiguration) from one still being re-admitted after a restart.
func (s *Server) Reachable() types.ProcSet {
	return s.reachable.Clone()
}

// Reconfigure starts a new attempt without a failure-detector change (used
// after client joins/leaves).
func (s *Server) Reconfigure() {
	s.startAttempt(s.attempt + 1)
}

// HandleMessage processes a server-to-server message.
func (s *Server) HandleMessage(from types.ProcID, m types.WireMsg) {
	if m.Kind != types.KindMembProposal || m.MembProp == nil {
		return
	}
	prop := m.MembProp.Clone()
	s.adoptTrace(prop.Attempt, prop.Trace)
	s.cache[from] = prop.Clients
	s.evictClaimed(prop)
	row := s.proposals[prop.Attempt]
	if row == nil {
		row = make(map[types.ProcID]*types.MembProposal)
		s.proposals[prop.Attempt] = row
	}
	row[from] = prop
	if prop.MinVid > s.maxVid {
		s.maxVid = prop.MinVid - 1
	}
	if prop.Attempt > s.attempt {
		s.startAttempt(prop.Attempt)
		return // startAttempt calls tryComplete
	}
	if prop.Attempt <= s.lastCompleted && s.lastProp != nil {
		// The sender is still working an attempt we already completed — our
		// proposal to it was evidently lost. Answer with our latest proposal
		// directly so its watchdog retries converge instead of spinning.
		s.transport.Send([]types.ProcID{from}, types.WireMsg{Kind: types.KindMembProposal, MembProp: s.lastProp.Clone()})
	}
	s.tryComplete()
}

// evictClaimed detaches any local client that a peer's proposal claims
// under a strictly higher attach epoch: the client has failed over, and a
// stale registration here would double-serve it. The identifier state moves
// to the retained records.
func (s *Server) evictClaimed(prop *types.MembProposal) {
	for p, epoch := range prop.Epochs {
		if c, ok := s.clients[p]; ok && epoch > c.epoch {
			s.evictions++
			s.RemoveClient(p)
			s.records[p] = s.records[p].merge(ClientRecord{Epoch: epoch})
		}
	}
}

// attemptTrace mints the reconfiguration trace identifier an initiating
// server stamps on attempt a: FNV-1a over the server identifier, the attempt
// folded in, and a final avalanche so consecutive attempts share no prefix.
// Deterministic (no randomness) so simulator runs stay reproducible; never
// zero, because zero means "untraced".
func attemptTrace(id types.ProcID, a int64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	h ^= uint64(a)
	h *= prime64
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	if h == 0 {
		h = 1
	}
	return h
}

// adoptTrace folds a peer proposal's trace into this server's: a newer
// attempt replaces ours outright; the same attempt max-merges so concurrent
// initiators converge on one identifier.
func (s *Server) adoptTrace(attempt int64, trace uint64) {
	if trace == 0 {
		return
	}
	switch {
	case attempt > s.traceAttempt:
		s.trace = trace
		s.traceAttempt = attempt
	case attempt == s.traceAttempt && trace > s.trace:
		s.trace = trace
	}
}

// estimate returns the membership estimate: this server's clients plus the
// cached clients of every reachable server.
func (s *Server) estimate() types.ProcSet {
	est := types.NewProcSet()
	for p := range s.clients {
		est.Add(p)
	}
	for srv := range s.reachable {
		for p := range s.cache[srv] {
			est.Add(p)
		}
	}
	return est
}

// startAttempt announces the estimate to local clients and proposes.
func (s *Server) startAttempt(a int64) {
	s.attempt = a
	s.attemptsRun++
	if s.traceAttempt != a {
		// No adopted trace for this attempt: we are initiating it.
		s.trace = attemptTrace(s.id, a)
		s.traceAttempt = a
	}
	// One estimate snapshot is shared across every per-client announcement
	// and notification of this attempt. estimate() builds a fresh set, the
	// server never mutates it afterwards, and notification receivers treat
	// sets as immutable (the end-point and the spec checkers clone on
	// receipt; the live fabric encodes the frame immediately). Per-client
	// clones would cost O(clients²) per attempt, which is what caps
	// large-population simulations.
	est := s.estimate()

	clients := make(map[types.ProcID]types.StartChangeID, len(s.clients))
	var epochs map[types.ProcID]int64
	for p, c := range s.clients {
		// Never issue an identifier at or below one a peer has proposed for
		// this client: a healed partition may reveal that its previous home
		// kept counting while we could not hear it.
		if cid := s.gossipCID(p); cid > c.cid {
			c.cid = cid
		}
		c.cid = nextCID(c.epoch, c.cid)
		c.announced = est
		c.mode = modeChangeStarted
		clients[p] = c.cid
		if c.epoch > 0 {
			if epochs == nil {
				epochs = make(map[types.ProcID]int64)
			}
			epochs[p] = c.epoch
		}
		s.record(p, c)
		if !c.crashed {
			s.out(p, Notification{
				Kind:        NotifyStartChange,
				StartChange: types.StartChange{ID: c.cid, Set: est, Trace: s.trace},
				Trace:       s.trace,
			})
		}
	}

	minVid := s.maxVid + 1
	for _, c := range s.clients {
		if c.vid >= minVid {
			minVid = c.vid + 1
		}
	}
	prop := &types.MembProposal{
		Attempt: a,
		Servers: s.reachable.Clone(),
		MinVid:  minVid,
		Clients: clients,
		Epochs:  epochs,
		Trace:   s.trace,
	}
	s.lastProp = prop
	row := s.proposals[a]
	if row == nil {
		row = make(map[types.ProcID]*types.MembProposal)
		s.proposals[a] = row
	}
	row[s.id] = prop
	if others := s.reachable.Minus(types.NewProcSet(s.id)); others.Len() > 0 {
		s.transport.Send(others.Sorted(), types.WireMsg{Kind: types.KindMembProposal, MembProp: prop.Clone()})
	}
	s.tryComplete()
}

// tryComplete assembles and delivers the view once the current attempt has
// agreeing proposals from the whole reachable set.
func (s *Server) tryComplete() {
	row := s.proposals[s.attempt]
	if row == nil {
		return
	}
	for srv := range s.reachable {
		prop, ok := row[srv]
		if !ok {
			return
		}
		if !prop.Servers.Equal(s.reachable) {
			// Failure detectors disagree; wait for them to converge (a new
			// SetReachable will start a fresh attempt).
			return
		}
	}

	members := types.NewProcSet()
	startID := make(map[types.ProcID]types.StartChangeID)
	vid := types.ViewID(0)
	for srv := range s.reachable {
		prop := row[srv]
		for p, cid := range prop.Clients {
			members.Add(p)
			// A client can appear in two proposals during a migration
			// window; take the maximum so every server assembles the same
			// startID regardless of map iteration order.
			if cid > startID[p] {
				startID[p] = cid
			}
		}
		if prop.MinVid > vid {
			vid = prop.MinVid
		}
	}
	if members.Len() == 0 {
		return
	}

	// The MBRSHP spec requires v.set ⊆ start_change[p].set. If the
	// assembled membership exceeds what a local client was last told, run
	// another attempt: the caches are now warm, so it will complete.
	//
	// Every client in change_started mode was (re)announced by the latest
	// startAttempt — registrations created since then are in normal mode,
	// and RecoverClient resets mode to normal — so all announced sets are
	// one shared estimate snapshot and the subset check runs once, not per
	// client.
	subsetChecked, subsetOK := false, true
	for p, c := range s.clients {
		if !members.Contains(p) {
			continue
		}
		if c.mode != modeChangeStarted {
			s.startAttempt(s.attempt + 1)
			return
		}
		if !subsetChecked {
			subsetChecked, subsetOK = true, members.SubsetOf(c.announced)
		}
		if !subsetOK {
			s.startAttempt(s.attempt + 1)
			return
		}
	}

	v := types.NewView(vid, members, startID)
	if vid > s.maxVid {
		s.maxVid = vid
	}
	delete(s.proposals, s.attempt)
	s.lastCompleted = s.attempt
	s.viewsDelivered++
	for p, c := range s.clients {
		if !members.Contains(p) {
			continue
		}
		c.vid = vid
		c.mode = modeNormal
		s.record(p, c)
		if !c.crashed {
			// v is shared across the fan-out (receivers clone on receipt, as
			// with the start_change estimate above): cloning a view per
			// client is O(clients²) per delivered view.
			s.out(p, Notification{Kind: NotifyView, View: v, Trace: s.trace})
		}
	}
}

// Stalled reports whether the current attempt has yet to complete. A stall
// can be transient (proposals in flight) or permanent (proposal frames
// lost); the watchdog re-proposes when a stall persists.
func (s *Server) Stalled() bool { return s.attempt > s.lastCompleted }

// CurrentAttempt returns the attempt number the server is working on.
func (s *Server) CurrentAttempt() int64 { return s.attempt }

// Repropose re-sends this server's proposal for the current attempt to the
// reachable peers. Proposals are idempotent — a receiver simply overwrites
// the row entry — so the watchdog may call this freely when an attempt
// stalls; it reports whether anything was sent.
func (s *Server) Repropose() bool {
	if !s.Stalled() || s.lastProp == nil || s.lastProp.Attempt != s.attempt {
		return false
	}
	others := s.reachable.Minus(types.NewProcSet(s.id))
	if others.Len() == 0 {
		return false
	}
	s.reproposals++
	s.transport.Send(others.Sorted(), types.WireMsg{Kind: types.KindMembProposal, MembProp: s.lastProp.Clone()})
	return true
}

// Reproposals counts watchdog-triggered proposal re-sends.
func (s *Server) Reproposals() int64 { return s.reproposals }

// Evictions counts local registrations dropped because a peer claimed the
// client under a higher attach epoch.
func (s *Server) Evictions() int64 { return s.evictions }
