package membership

import (
	"fmt"

	"vsgm/internal/types"
)

// ServerTransport is the sender side of the channel the membership servers
// use among themselves (corfifo.Handle satisfies it).
type ServerTransport interface {
	Send(dests []types.ProcID, m types.WireMsg)
}

// Server is one dedicated membership server of the client-server
// architecture (Section 1; after Keidar-Sussman-Marzullo-Dolev). A small,
// static group of servers runs a one-round membership algorithm among
// themselves and serves many clients: each client has a home server, which
// issues its start_change notifications (with per-client locally unique
// identifiers) and delivers its views.
//
// The algorithm per attempt: a server announces the estimated next
// membership to its local clients via start_change, then multicasts a
// proposal — its reachable-server set, a view-identifier floor, and its
// local clients with their latest start-change identifiers — to the servers
// it can reach. When a server holds proposals for the current attempt from
// exactly its reachable set, all agreeing on that server set, it assembles
// the view deterministically (member set = union of proposed clients, id =
// max of the floors, startId = union of the proposed identifier maps) and
// delivers it to its local clients. If the assembled membership exceeds
// what a local client was told in its last start_change (cold caches), the
// server re-announces and runs one more attempt, so a stable system
// converges in at most two attempts and steady state takes one round.
//
// Server-side per-client state (identifiers, last view id) survives client
// crashes, which is what lets recovered clients rejoin under their original
// identity without stable storage (Section 8).
type Server struct {
	id        types.ProcID
	transport ServerTransport
	out       Output
	servers   types.ProcSet

	clients map[types.ProcID]*serverClient
	cache   map[types.ProcID]map[types.ProcID]types.StartChangeID

	reachable types.ProcSet
	attempt   int64
	proposals map[int64]map[types.ProcID]*types.MembProposal
	maxVid    types.ViewID

	attemptsRun    int64
	viewsDelivered int64
}

type serverClient struct {
	cid       types.StartChangeID
	vid       types.ViewID
	announced types.ProcSet
	mode      clientMode
	crashed   bool
}

// NewServer constructs a membership server. servers is the static set of
// all server identifiers (including id); out receives client notifications.
func NewServer(id types.ProcID, servers types.ProcSet, tr ServerTransport, out Output) (*Server, error) {
	if !servers.Contains(id) {
		return nil, fmt.Errorf("membership: server set %s does not contain %s", servers, id)
	}
	return &Server{
		id:        id,
		transport: tr,
		out:       out,
		servers:   servers.Clone(),
		clients:   make(map[types.ProcID]*serverClient),
		cache:     make(map[types.ProcID]map[types.ProcID]types.StartChangeID),
		reachable: types.NewProcSet(id),
		proposals: make(map[int64]map[types.ProcID]*types.MembProposal),
	}, nil
}

// ID returns the server's identifier.
func (s *Server) ID() types.ProcID { return s.id }

// AttemptsRun counts the membership attempts this server initiated or
// adopted.
func (s *Server) AttemptsRun() int64 { return s.attemptsRun }

// ViewsDelivered counts the views this server delivered to local clients.
func (s *Server) ViewsDelivered() int64 { return s.viewsDelivered }

// AddClient registers a local client. The caller triggers a reconfiguration
// (SetReachable or Reconfigure) to admit it into a view.
func (s *Server) AddClient(p types.ProcID) {
	if _, ok := s.clients[p]; !ok {
		s.clients[p] = &serverClient{mode: modeNormal}
	}
}

// RemoveClient deregisters a local client (it has left the group).
func (s *Server) RemoveClient(p types.ProcID) {
	delete(s.clients, p)
}

// CrashClient marks a local client crashed: notifications stop but its
// identifier state is retained (Section 8).
func (s *Server) CrashClient(p types.ProcID) {
	if c, ok := s.clients[p]; ok {
		c.crashed = true
	}
}

// RecoverClient marks a local client recovered.
func (s *Server) RecoverClient(p types.ProcID) {
	if c, ok := s.clients[p]; ok {
		c.crashed = false
		c.mode = modeNormal
	}
}

// SetReachable is the failure-detector input: the set of servers (including
// this one) currently believed reachable. A change starts a new attempt.
func (s *Server) SetReachable(set types.ProcSet) {
	if !set.Contains(s.id) {
		set = set.Clone()
		set.Add(s.id)
	}
	// The very first report always starts an attempt — a single-server
	// deployment's reachable set ({self}) never differs from the initial
	// state, yet its clients still need a first view.
	if s.reachable.Equal(set) && s.attempt > 0 {
		return
	}
	s.reachable = set.Clone()
	s.startAttempt(s.attempt + 1)
}

// Reconfigure starts a new attempt without a failure-detector change (used
// after client joins/leaves).
func (s *Server) Reconfigure() {
	s.startAttempt(s.attempt + 1)
}

// HandleMessage processes a server-to-server message.
func (s *Server) HandleMessage(from types.ProcID, m types.WireMsg) {
	if m.Kind != types.KindMembProposal || m.MembProp == nil {
		return
	}
	prop := m.MembProp.Clone()
	s.cache[from] = prop.Clients
	row := s.proposals[prop.Attempt]
	if row == nil {
		row = make(map[types.ProcID]*types.MembProposal)
		s.proposals[prop.Attempt] = row
	}
	row[from] = prop
	if prop.MinVid > s.maxVid {
		s.maxVid = prop.MinVid - 1
	}
	if prop.Attempt > s.attempt {
		s.startAttempt(prop.Attempt)
		return // startAttempt calls tryComplete
	}
	s.tryComplete()
}

// estimate returns the membership estimate: this server's clients plus the
// cached clients of every reachable server.
func (s *Server) estimate() types.ProcSet {
	est := types.NewProcSet()
	for p := range s.clients {
		est.Add(p)
	}
	for srv := range s.reachable {
		for p := range s.cache[srv] {
			est.Add(p)
		}
	}
	return est
}

// startAttempt announces the estimate to local clients and proposes.
func (s *Server) startAttempt(a int64) {
	s.attempt = a
	s.attemptsRun++
	est := s.estimate()

	clients := make(map[types.ProcID]types.StartChangeID, len(s.clients))
	for p, c := range s.clients {
		c.cid++
		c.announced = est.Clone()
		c.mode = modeChangeStarted
		clients[p] = c.cid
		if !c.crashed {
			s.out(p, Notification{
				Kind:        NotifyStartChange,
				StartChange: types.StartChange{ID: c.cid, Set: est.Clone()},
			})
		}
	}

	minVid := s.maxVid + 1
	for _, c := range s.clients {
		if c.vid >= minVid {
			minVid = c.vid + 1
		}
	}
	prop := &types.MembProposal{
		Attempt: a,
		Servers: s.reachable.Clone(),
		MinVid:  minVid,
		Clients: clients,
	}
	row := s.proposals[a]
	if row == nil {
		row = make(map[types.ProcID]*types.MembProposal)
		s.proposals[a] = row
	}
	row[s.id] = prop
	if others := s.reachable.Minus(types.NewProcSet(s.id)); others.Len() > 0 {
		s.transport.Send(others.Sorted(), types.WireMsg{Kind: types.KindMembProposal, MembProp: prop.Clone()})
	}
	s.tryComplete()
}

// tryComplete assembles and delivers the view once the current attempt has
// agreeing proposals from the whole reachable set.
func (s *Server) tryComplete() {
	row := s.proposals[s.attempt]
	if row == nil {
		return
	}
	for srv := range s.reachable {
		prop, ok := row[srv]
		if !ok {
			return
		}
		if !prop.Servers.Equal(s.reachable) {
			// Failure detectors disagree; wait for them to converge (a new
			// SetReachable will start a fresh attempt).
			return
		}
	}

	members := types.NewProcSet()
	startID := make(map[types.ProcID]types.StartChangeID)
	vid := types.ViewID(0)
	for srv := range s.reachable {
		prop := row[srv]
		for p, cid := range prop.Clients {
			members.Add(p)
			startID[p] = cid
		}
		if prop.MinVid > vid {
			vid = prop.MinVid
		}
	}
	if members.Len() == 0 {
		return
	}

	// The MBRSHP spec requires v.set ⊆ start_change[p].set. If the
	// assembled membership exceeds what a local client was last told, run
	// another attempt: the caches are now warm, so it will complete.
	for p, c := range s.clients {
		if !members.Contains(p) {
			continue
		}
		if c.mode != modeChangeStarted || !members.SubsetOf(c.announced) {
			s.startAttempt(s.attempt + 1)
			return
		}
	}

	v := types.NewView(vid, members, startID)
	if vid > s.maxVid {
		s.maxVid = vid
	}
	delete(s.proposals, s.attempt)
	s.viewsDelivered++
	for p, c := range s.clients {
		if !members.Contains(p) {
			continue
		}
		c.vid = vid
		c.mode = modeNormal
		if !c.crashed {
			s.out(p, Notification{Kind: NotifyView, View: v.Clone()})
		}
	}
}
