package membership

import (
	"testing"

	"vsgm/internal/corfifo"
	"vsgm/internal/types"
)

// serverRig wires a set of servers over an in-memory substrate with a
// synchronous pump (no virtual clock; messages deliver in send order).
type serverRig struct {
	net     *corfifo.Network
	servers map[types.ProcID]*Server
	ids     []types.ProcID
	out     *collectingOutput
}

func newServerRig(t *testing.T, n int) *serverRig {
	t.Helper()
	rig := &serverRig{
		net:     corfifo.NewNetwork(),
		servers: make(map[types.ProcID]*Server),
		out:     newCollectingOutput(),
	}
	for i := 0; i < n; i++ {
		rig.ids = append(rig.ids, types.ProcID(string(rune('A'+i))))
	}
	all := types.NewProcSet(rig.ids...)
	for _, id := range rig.ids {
		srv, err := NewServer(id, all, rig.net.Handle(id), rig.out.out)
		if err != nil {
			t.Fatal(err)
		}
		rig.servers[id] = srv
		s := srv
		rig.net.Register(id, corfifo.HandlerFunc(func(from types.ProcID, m types.WireMsg) {
			s.HandleMessage(from, m)
		}))
	}
	return rig
}

// pump delivers queued server-to-server traffic until quiescence.
func (rig *serverRig) pump(t *testing.T) {
	t.Helper()
	for rounds := 0; rounds < 10_000; rounds++ {
		progressed := false
		for _, from := range rig.ids {
			for _, to := range rig.ids {
				if from == to {
					continue
				}
				if _, ok := rig.net.DeliverNext(from, to); ok {
					progressed = true
				}
			}
		}
		if !progressed {
			return
		}
	}
	t.Fatal("server traffic did not quiesce")
}

func (rig *serverRig) boot(t *testing.T) {
	t.Helper()
	all := types.NewProcSet(rig.ids...)
	for _, id := range rig.ids {
		rig.servers[id].SetReachable(all)
	}
	rig.pump(t)
}

func lastView(t *testing.T, out *collectingOutput, p types.ProcID) types.View {
	t.Helper()
	for i := len(out.byProc[p]) - 1; i >= 0; i-- {
		if out.byProc[p][i].Kind == NotifyView {
			return out.byProc[p][i].View
		}
	}
	t.Fatalf("no view delivered to %s", p)
	return types.View{}
}

func TestServerGroupFormsAgreedView(t *testing.T) {
	rig := newServerRig(t, 3)
	clients := []types.ProcID{"c0", "c1", "c2", "c3", "c4", "c5"}
	for i, c := range clients {
		rig.servers[rig.ids[i%3]].AddClient(c)
	}
	rig.boot(t)

	want := types.NewProcSet(clients...)
	ref := lastView(t, rig.out, clients[0])
	if !ref.Members.Equal(want) {
		t.Fatalf("view members = %s, want %s", ref.Members, want)
	}
	for _, c := range clients[1:] {
		if v := lastView(t, rig.out, c); !v.Equal(ref) {
			t.Fatalf("client %s got %s, client %s got %s: views differ", c, v, clients[0], ref)
		}
	}
	rig.out.assertSpec(t)
}

func TestServerGroupSteadyStateIsOneAttempt(t *testing.T) {
	rig := newServerRig(t, 3)
	for i, c := range []types.ProcID{"c0", "c1", "c2"} {
		rig.servers[rig.ids[i]].AddClient(c)
	}
	rig.boot(t)

	before := make(map[types.ProcID]int64)
	for _, id := range rig.ids {
		before[id] = rig.servers[id].AttemptsRun()
	}
	rig.servers[rig.ids[0]].Reconfigure()
	rig.pump(t)
	for _, id := range rig.ids {
		if got := rig.servers[id].AttemptsRun() - before[id]; got != 1 {
			t.Errorf("server %s ran %d attempts in steady state, want 1", id, got)
		}
	}
	rig.out.assertSpec(t)
}

func TestServerGroupClientJoinAndLeave(t *testing.T) {
	rig := newServerRig(t, 2)
	rig.servers["A"].AddClient("c0")
	rig.servers["B"].AddClient("c1")
	rig.boot(t)

	rig.servers["A"].AddClient("c2")
	rig.servers["A"].Reconfigure()
	rig.pump(t)
	want := types.NewProcSet("c0", "c1", "c2")
	if v := lastView(t, rig.out, "c2"); !v.Members.Equal(want) {
		t.Fatalf("after join, view = %s, want members %s", v, want)
	}

	rig.servers["B"].RemoveClient("c1")
	rig.servers["B"].Reconfigure()
	rig.pump(t)
	want = types.NewProcSet("c0", "c2")
	if v := lastView(t, rig.out, "c0"); !v.Members.Equal(want) {
		t.Fatalf("after leave, view = %s, want members %s", v, want)
	}
	rig.out.assertSpec(t)
}

func TestServerGroupClientCrashKeepsIdentifierState(t *testing.T) {
	rig := newServerRig(t, 2)
	rig.servers["A"].AddClient("c0")
	rig.servers["B"].AddClient("c1")
	rig.boot(t)
	preCrash := lastView(t, rig.out, "c1")

	rig.servers["B"].CrashClient("c1")
	notifs := len(rig.out.byProc["c1"])
	rig.servers["B"].Reconfigure()
	rig.pump(t)
	if len(rig.out.byProc["c1"]) != notifs {
		t.Fatal("crashed client received notifications")
	}

	// Recovery: the next view's identifier exceeds the pre-crash one even
	// though the client itself kept no state (Section 8).
	rig.servers["B"].RecoverClient("c1")
	rig.servers["B"].Reconfigure()
	rig.pump(t)
	post := lastView(t, rig.out, "c1")
	if post.ID <= preCrash.ID {
		t.Fatalf("post-recovery view id %d not above pre-crash id %d", post.ID, preCrash.ID)
	}
	rig.out.assertSpec(t)
}

func TestNewServerRejectsForeignID(t *testing.T) {
	if _, err := NewServer("X", types.NewProcSet("A", "B"), nil, nil); err == nil {
		t.Fatal("server outside its own server set accepted")
	}
}

func TestServerGroupPartitionsAndMerges(t *testing.T) {
	rig := newServerRig(t, 2)
	rig.servers["A"].AddClient("c0")
	rig.servers["A"].AddClient("c1")
	rig.servers["B"].AddClient("c2")
	rig.boot(t)

	// The failure detectors split: each server only sees itself, so each
	// side forms its own disjoint view — the membership service is
	// partitionable (Section 3.1).
	rig.servers["A"].SetReachable(types.NewProcSet("A"))
	rig.servers["B"].SetReachable(types.NewProcSet("B"))
	rig.pump(t)

	sideA := lastView(t, rig.out, "c0")
	sideB := lastView(t, rig.out, "c2")
	if !sideA.Members.Equal(types.NewProcSet("c0", "c1")) {
		t.Fatalf("A-side view members = %s", sideA.Members)
	}
	if !sideB.Members.Equal(types.NewProcSet("c2")) {
		t.Fatalf("B-side view members = %s", sideB.Members)
	}
	if sideA.Key() == sideB.Key() {
		t.Fatal("disjoint concurrent views must be distinct")
	}

	// The detectors converge again: one merged view with all clients.
	all := types.NewProcSet("A", "B")
	rig.servers["A"].SetReachable(all)
	rig.servers["B"].SetReachable(all)
	rig.pump(t)

	merged := lastView(t, rig.out, "c0")
	if !merged.Members.Equal(types.NewProcSet("c0", "c1", "c2")) {
		t.Fatalf("merged view members = %s", merged.Members)
	}
	for _, c := range []types.ProcID{"c1", "c2"} {
		if v := lastView(t, rig.out, c); !v.Equal(merged) {
			t.Fatalf("%s got %s, want %s", c, v, merged)
		}
	}
	rig.out.assertSpec(t)
}

func TestServerGroupDisagreeingDetectorsStall(t *testing.T) {
	// When the failure detectors disagree (A sees both, B sees only
	// itself), A must not complete an attempt on B's behalf; it waits for
	// convergence rather than delivering an inconsistent view.
	rig := newServerRig(t, 2)
	rig.servers["A"].AddClient("c0")
	rig.servers["B"].AddClient("c1")
	rig.boot(t)
	before := lastView(t, rig.out, "c0")

	rig.servers["B"].SetReachable(types.NewProcSet("B")) // B splits away
	rig.servers["A"].Reconfigure()                       // A still sees both
	rig.pump(t)

	// A's clients received a start_change for the doomed attempt but no
	// view; B's side moved on alone.
	if v := lastView(t, rig.out, "c0"); !v.Equal(before) {
		t.Fatalf("A delivered %s although the detectors disagree", v)
	}

	// Once A's detector catches up, its side completes too.
	rig.servers["A"].SetReachable(types.NewProcSet("A"))
	rig.pump(t)
	if v := lastView(t, rig.out, "c0"); !v.Members.Equal(types.NewProcSet("c0")) {
		t.Fatalf("A-side view = %s after convergence", v)
	}
	rig.out.assertSpec(t)
}
