package causal

import (
	"fmt"
	"testing"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/sim"
	"vsgm/internal/spec"
	"vsgm/internal/types"
)

// feed wraps a raw encoded message into a DeliverEvent.
func feed(t *testing.T, s *Session, sender types.ProcID, seq uint64, deps clock, body string) {
	t.Helper()
	buf := encodeMessage(seq, deps, []byte(body))
	if err := s.HandleEvent(core.DeliverEvent{Sender: sender, Msg: types.AppMsg{Payload: buf}}); err != nil {
		t.Fatal(err)
	}
}

func TestCausalBuffersUntilDependenciesArrive(t *testing.T) {
	var got []string
	s, err := New("r",
		func([]byte) error { return nil },
		func(sender types.ProcID, payload []byte) {
			got = append(got, fmt.Sprintf("%s:%s", sender, payload))
		},
		nil)
	if err != nil {
		t.Fatal(err)
	}

	// q's message causally depends on p's first message, but arrives
	// first: it must be buffered.
	feed(t, s, "q", 1, clock{"p": 1}, "reply")
	if len(got) != 0 {
		t.Fatalf("delivered %v before the dependency", got)
	}
	feed(t, s, "p", 1, nil, "original")
	if len(got) != 2 || got[0] != "p:original" || got[1] != "q:reply" {
		t.Fatalf("delivered = %v, want original before reply", got)
	}
}

func TestCausalCascadingRelease(t *testing.T) {
	var got []string
	s, err := New("r",
		func([]byte) error { return nil },
		func(sender types.ProcID, payload []byte) { got = append(got, string(payload)) },
		nil)
	if err != nil {
		t.Fatal(err)
	}
	// A chain arriving fully reversed: c depends on b depends on a.
	feed(t, s, "z", 1, clock{"y": 1}, "c")
	feed(t, s, "y", 1, clock{"x": 1}, "b")
	if len(got) != 0 {
		t.Fatalf("premature delivery: %v", got)
	}
	feed(t, s, "x", 1, nil, "a")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("delivered = %v, want [a b c]", got)
	}
}

func TestCausalPerSenderFIFO(t *testing.T) {
	var got []string
	s, err := New("r",
		func([]byte) error { return nil },
		func(_ types.ProcID, payload []byte) { got = append(got, string(payload)) },
		nil)
	if err != nil {
		t.Fatal(err)
	}
	// seq 2 cannot be delivered before seq 1 even with no cross deps.
	feed(t, s, "p", 2, nil, "second")
	if len(got) != 0 {
		t.Fatal("FIFO violated")
	}
	feed(t, s, "p", 1, nil, "first")
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("delivered = %v", got)
	}
}

func TestCausalDecodeErrors(t *testing.T) {
	s, err := New("r", func([]byte) error { return nil }, func(types.ProcID, []byte) {}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.HandleEvent(core.DeliverEvent{Sender: "p", Msg: types.AppMsg{Payload: []byte{1, 2}}}); err == nil {
		t.Error("short message accepted")
	}
	// Claimed dependency count with truncated body.
	bad := encodeMessage(1, clock{"p": 1}, nil)[:14]
	if err := s.HandleEvent(core.DeliverEvent{Sender: "p", Msg: types.AppMsg{Payload: bad}}); err == nil {
		t.Error("truncated dependency accepted")
	}
}

func TestCausalCodecRoundTrip(t *testing.T) {
	deps := clock{"alpha": 3, "b": 1, "zeta": 0} // zero entries are elided
	payload := []byte("body-bytes")
	seq, got, body, err := decodeMessage(encodeMessage(7, deps, payload))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 {
		t.Errorf("seq = %d", seq)
	}
	if len(got) != 2 || got["alpha"] != 3 || got["b"] != 1 {
		t.Errorf("deps = %v", got)
	}
	if string(body) != string(payload) {
		t.Errorf("payload = %q", body)
	}
}

// TestCausalOverTheFullStack drives real sessions over the simulated GCS:
// a three-step causal chain (question → answer → ack) issued across
// different members must deliver in chain order at every member despite
// heavy latency jitter.
func TestCausalOverTheFullStack(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		sessions := make(map[types.ProcID]*Session)
		logs := make(map[types.ProcID][]string)

		c, err := sim.NewCluster(sim.Config{
			Procs:           sim.ProcIDs(3),
			Latency:         sim.UniformLatency{Base: 10 * time.Millisecond, Jitter: 9 * time.Millisecond},
			MembershipRound: 5 * time.Millisecond,
			Seed:            seed,
			Suite:           spec.FullSuite(),
			OnAppEvent: func(p types.ProcID, ev core.Event) {
				if s := sessions[p]; s != nil {
					if err := s.HandleEvent(ev); err != nil {
						t.Errorf("seed %d: session %s: %v", seed, p, err)
					}
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range c.Procs() {
			p := p
			s, err := New(p,
				func(payload []byte) error {
					_, err := c.Send(p, payload)
					return err
				},
				func(sender types.ProcID, payload []byte) {
					logs[p] = append(logs[p], string(payload))
				},
				nil)
			if err != nil {
				t.Fatal(err)
			}
			sessions[p] = s
		}
		if _, _, err := c.ReconfigureTo(types.NewProcSet(c.Procs()...)); err != nil {
			t.Fatal(err)
		}

		procs := c.Procs()
		// p00 asks; when p01 has delivered the question it answers; when
		// p02 has delivered the answer it acks. The chain is driven by
		// delivery callbacks, so each step is genuinely causally dependent.
		sessions[procs[1]] = mustChain(t, c, procs[1], logs, "question", "answer")
		sessions[procs[2]] = mustChain(t, c, procs[2], logs, "answer", "ack")
		if err := sessions[procs[0]].Send([]byte("question")); err != nil {
			t.Fatal(err)
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}

		for _, p := range procs {
			idx := make(map[string]int)
			for i, m := range logs[p] {
				idx[m] = i
			}
			if !(idx["question"] < idx["answer"] && idx["answer"] < idx["ack"]) {
				t.Fatalf("seed %d: causal order violated at %s: %v", seed, p, logs[p])
			}
		}
	}
}

// mustChain rebuilds a session whose deliver callback sends `reply` upon
// delivering `trigger` (in addition to logging).
func mustChain(t *testing.T, c *sim.Cluster, p types.ProcID,
	logs map[types.ProcID][]string, trigger, reply string) *Session {
	t.Helper()
	s, err := New(p,
		func(payload []byte) error {
			_, err := c.Send(p, payload)
			return err
		},
		func(types.ProcID, []byte) {}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Rewire deliver with access to s itself.
	s.deliver = func(sender types.ProcID, payload []byte) {
		logs[p] = append(logs[p], string(payload))
		if string(payload) == trigger {
			if err := s.Send([]byte(reply)); err != nil {
				t.Errorf("chained send at %s: %v", p, err)
			}
		}
	}
	return s
}
