// Package causal layers causally ordered multicast on top of the virtually
// synchronous FIFO service — the second of the stronger ordering services
// the paper points out are built over WV_RFIFO (Section 4.1.1).
//
// Each message carries a vector timestamp over the current view's members:
// the sender's own send sequence number plus, for every other member, how
// many of that member's messages the sender had delivered when it sent.
// A receiver delays a message until its own deliveries dominate the
// timestamp, which yields causal order; per-sender FIFO comes for free from
// the underlying service. Virtual Synchrony makes view boundaries safe: all
// members of a transitional set hold identical delayed sets, so the
// deterministic boundary flush (sorted by sender, then sequence) agrees
// everywhere.
package causal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"vsgm/internal/core"
	"vsgm/internal/types"
)

// SendFunc multicasts a raw payload through the underlying GCS end-point.
type SendFunc func(payload []byte) error

// DeliverFunc receives one causally ordered application message.
type DeliverFunc func(sender types.ProcID, payload []byte)

// ViewFunc observes view changes after the boundary flush.
type ViewFunc func(v types.View, transitionalSet types.ProcSet)

// ErrBlocked is returned by Send while the underlying end-point is blocked
// for a view change.
var ErrBlocked = core.ErrBlocked

// clock is a vector timestamp: per member, a count of messages.
type clock map[types.ProcID]uint64

// pendingMsg is a received message waiting for its causal predecessors.
type pendingMsg struct {
	sender  types.ProcID
	seq     uint64 // the sender's own send sequence number
	deps    clock  // messages from others delivered before the send
	payload []byte
}

// Session is one process's causal-order layer. Feed it every event of the
// underlying GCS end-point via HandleEvent, and send through Send. Not safe
// for concurrent use.
type Session struct {
	id      types.ProcID
	send    SendFunc
	deliver DeliverFunc
	onView  ViewFunc

	sent      uint64
	delivered clock
	pending   []*pendingMsg
}

// New builds a session for end-point id. deliver is required; onView may be
// nil.
func New(id types.ProcID, send SendFunc, deliver DeliverFunc, onView ViewFunc) (*Session, error) {
	if send == nil || deliver == nil {
		return nil, errors.New("causal: send and deliver functions are required")
	}
	return &Session{
		id:        id,
		send:      send,
		deliver:   deliver,
		onView:    onView,
		delivered: make(clock),
	}, nil
}

// Send multicasts payload in causal order.
func (s *Session) Send(payload []byte) error {
	s.sent++
	buf := encodeMessage(s.sent, s.delivered, payload)
	if err := s.send(buf); err != nil {
		s.sent--
		return err
	}
	return nil
}

// HandleEvent feeds one event from the underlying GCS end-point.
func (s *Session) HandleEvent(ev core.Event) error {
	switch e := ev.(type) {
	case core.DeliverEvent:
		seq, deps, payload, err := decodeMessage(e.Msg.Payload)
		if err != nil {
			return err
		}
		s.pending = append(s.pending, &pendingMsg{
			sender:  e.Sender,
			seq:     seq,
			deps:    deps,
			payload: payload,
		})
		s.release()
		return nil
	case core.ViewEvent:
		s.flush()
		s.sent = 0
		s.delivered = make(clock)
		if s.onView != nil {
			s.onView(e.View, e.TransitionalSet)
		}
		return nil
	default:
		return nil
	}
}

// ready reports whether m's causal predecessors have all been delivered.
func (s *Session) ready(m *pendingMsg) bool {
	if s.delivered[m.sender]+1 != m.seq {
		return false // FIFO predecessor from the same sender missing
	}
	for q, n := range m.deps {
		if q == m.sender {
			continue // covered by the FIFO check above
		}
		if s.delivered[q] < n {
			return false
		}
	}
	return true
}

// release delivers every pending message whose dependencies are met,
// cascading until a fixpoint.
func (s *Session) release() {
	for progress := true; progress; {
		progress = false
		for i, m := range s.pending {
			if m == nil || !s.ready(m) {
				continue
			}
			s.pending[i] = nil
			s.delivered[m.sender] = m.seq
			s.deliver(m.sender, m.payload)
			progress = true
		}
	}
	compact := s.pending[:0]
	for _, m := range s.pending {
		if m != nil {
			compact = append(compact, m)
		}
	}
	s.pending = compact
}

// flush drains the layer at a view boundary: whatever remains undeliverable
// (its predecessors were sent by processes that did not make the agreed
// cut) is delivered in a deterministic order — identical across the
// transitional set by Virtual Synchrony.
func (s *Session) flush() {
	s.release()
	rest := s.pending
	s.pending = nil
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].sender != rest[j].sender {
			return rest[i].sender < rest[j].sender
		}
		return rest[i].seq < rest[j].seq
	})
	for _, m := range rest {
		s.deliver(m.sender, m.payload)
	}
}

// Wire format: seq (8 bytes) | depCount (4 bytes) | deps (idLen(2) | id |
// count(8))* | payload.
func encodeMessage(seq uint64, deps clock, payload []byte) []byte {
	size := 8 + 4
	ids := make([]types.ProcID, 0, len(deps))
	for q, n := range deps {
		if n == 0 {
			continue
		}
		ids = append(ids, q)
		size += 2 + len(q) + 8
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	size += len(payload)

	buf := make([]byte, 0, size)
	var scratch [8]byte
	binary.BigEndian.PutUint64(scratch[:], seq)
	buf = append(buf, scratch[:]...)
	binary.BigEndian.PutUint32(scratch[:4], uint32(len(ids)))
	buf = append(buf, scratch[:4]...)
	for _, q := range ids {
		binary.BigEndian.PutUint16(scratch[:2], uint16(len(q)))
		buf = append(buf, scratch[:2]...)
		buf = append(buf, q...)
		binary.BigEndian.PutUint64(scratch[:], deps[q])
		buf = append(buf, scratch[:]...)
	}
	return append(buf, payload...)
}

func decodeMessage(b []byte) (seq uint64, deps clock, payload []byte, err error) {
	if len(b) < 12 {
		return 0, nil, nil, fmt.Errorf("causal: message too short (%d bytes)", len(b))
	}
	seq = binary.BigEndian.Uint64(b[:8])
	n := int(binary.BigEndian.Uint32(b[8:12]))
	b = b[12:]
	deps = make(clock, n)
	for i := 0; i < n; i++ {
		if len(b) < 2 {
			return 0, nil, nil, errors.New("causal: truncated dependency header")
		}
		idLen := int(binary.BigEndian.Uint16(b[:2]))
		b = b[2:]
		if len(b) < idLen+8 {
			return 0, nil, nil, errors.New("causal: truncated dependency entry")
		}
		id := types.ProcID(b[:idLen])
		deps[id] = binary.BigEndian.Uint64(b[idLen : idLen+8])
		b = b[idLen+8:]
	}
	return seq, deps, b, nil
}
