package soak

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/obs"
	"vsgm/internal/sim"
	"vsgm/internal/spec"
	"vsgm/internal/types"
)

// SimConfig parameterizes a GCS-cluster simulation soak: a small cluster
// of full end-points under the controllable membership oracle, driven
// through randomized adversarial phases over virtual time with the full
// specification suite attached.
type SimConfig struct {
	// Duration is the virtual-time budget; default 2s (hundreds of phases).
	Duration time.Duration
	// Seed drives the entire schedule.
	Seed int64
	// Procs is the cluster size; default 6.
	Procs int
	// Scenario is the phase mix; default SimScenario().
	Scenario *Scenario
	// ForceViolation injects a fabricated Local Monotonicity violation at
	// the end of the run, to demonstrate the violation-report pipeline.
	ForceViolation bool
	// Log receives progress lines; nil discards them.
	Log func(format string, args ...any)
}

var simSupported = map[PhaseKind]bool{
	PhaseTraffic:       true,
	PhaseViewRace:      true,
	PhasePartitionHeal: true,
	PhaseOscillate:     true,
	PhaseCrashRestart:  true,
}

type simRun struct {
	cfg   SimConfig
	c     *sim.Cluster
	rng   *rand.Rand
	sched *Schedule

	alive   types.ProcSet
	crashed types.ProcSet
}

// RunSim executes the simulation soak and returns its report. The error is
// non-nil only for harness failures (bad configuration, a wedged
// simulation); specification violations are reported in the Report.
func RunSim(cfg SimConfig) (*Report, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Procs <= 0 {
		cfg.Procs = 6
	}
	if cfg.Procs < 4 {
		return nil, fmt.Errorf("soak: sim needs at least 4 processes, got %d", cfg.Procs)
	}
	if cfg.Scenario == nil {
		cfg.Scenario = SimScenario()
	}
	if err := cfg.Scenario.validate(simSupported); err != nil {
		return nil, err
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	suite := spec.FullSuite(spec.WithTrace())

	// The tracer's clock is the simulation's virtual clock, so timeline
	// offsets line up with the schedule's virtual timestamps.
	var cl *sim.Cluster
	tracer := obs.NewTracer(obs.NewRegistry(), obs.WithNow(func() time.Time {
		if cl == nil {
			return time.Unix(0, 0)
		}
		return time.Unix(0, 0).Add(cl.Now())
	}))

	c, err := sim.NewCluster(sim.Config{
		Procs:           sim.ProcIDs(cfg.Procs),
		Level:           core.LevelGCS,
		Latency:         sim.UniformLatency{Base: 10 * time.Millisecond, Jitter: 8 * time.Millisecond},
		MembershipRound: 8 * time.Millisecond,
		Seed:            cfg.Seed*7 + 1,
		Suite:           suite,
		TraceFor:        func(p types.ProcID) core.ProtocolTrace { return tracer.ForEndpoint(p) },
	})
	if err != nil {
		return nil, err
	}
	cl = c

	r := &simRun{
		cfg:     cfg,
		c:       c,
		rng:     rng,
		sched:   &Schedule{Scenario: cfg.Scenario.Name, Seed: cfg.Seed},
		alive:   types.NewProcSet(c.Procs()...),
		crashed: types.NewProcSet(),
	}
	report := &Report{Mode: "sim", Seed: cfg.Seed, Schedule: r.sched, Population: cfg.Procs, SampleEvery: 1}

	for c.Now() < cfg.Duration {
		if err := r.phase(cfg.Scenario.pick(rng)); err != nil {
			return nil, err
		}
	}
	cfg.Log("sim soak: %d phases executed, stabilizing", len(r.sched.Steps))

	// Stabilize: recover everyone, heal, reconfigure to the full set, and
	// check conditional liveness on the final view.
	c.HealConnectivity()
	for _, p := range r.crashed.Sorted() {
		if err := c.Recover(p); err != nil {
			return nil, err
		}
		r.crashed.Remove(p)
		r.alive.Add(p)
	}
	final, _, err := c.ReconfigureTo(r.alive)
	if err != nil {
		// A stabilization that cannot complete is itself a liveness
		// violation worth reporting, not a harness bug.
		report.violate(fmt.Errorf("final reconfiguration did not complete: %w", err))
	} else {
		for _, p := range r.alive.Sorted() {
			if _, err := c.Send(p, []byte("soak-final")); err != nil {
				report.violate(fmt.Errorf("post-stabilization send from %s failed: %w", p, err))
			}
		}
		if err := c.Run(); err != nil {
			return nil, err
		}
	}

	if cfg.ForceViolation {
		r.sched.Note(c.Now(), PhaseKind("forced-violation"), "injected regressing membership view at %s", c.Procs()[0])
		injectForcedViolation(suite, c.Procs()[0])
	}

	report.violate(suite.Err())
	if report.OK() && err == nil {
		if lerr := spec.CheckLiveness(suite.Trace(), final); lerr != nil {
			report.violate(lerr)
		}
	}
	report.EventsSeen, report.EventsChecked = suite.SampleStats()
	report.Elapsed = c.Now()
	if !report.OK() {
		report.Timeline = tracer.TimelineString()
	}
	return report, nil
}

// injectForcedViolation feeds a fabricated membership view with a
// regressing identifier for p — a guaranteed Local Monotonicity violation
// that exercises the report/timeline dump path end to end.
func injectForcedViolation(suite *spec.Suite, p types.ProcID) {
	suite.OnEvent(spec.EMView{P: p, View: types.NewView(
		0, types.NewProcSet(p), map[types.ProcID]types.StartChangeID{p: 1},
	)})
}

// settle advances virtual time by a random dwell in [min, max).
func (r *simRun) settle(min, max time.Duration) error {
	d := min
	if max > min {
		d += time.Duration(r.rng.Int63n(int64(max - min)))
	}
	return r.c.RunFor(d)
}

// randomAliveSubset draws a non-empty subset of the live members.
func (r *simRun) randomAliveSubset() types.ProcSet {
	members := r.alive.Sorted()
	r.rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
	k := 1 + r.rng.Intn(len(members))
	return types.NewProcSet(members[:k]...)
}

// reconfigure drives a full change to set, with the re-announce fallback
// of Section 5 when a racing change invalidated the pending one.
func (r *simRun) reconfigure(set types.ProcSet) error {
	if _, _, err := r.c.ReconfigureTo(set); err != nil {
		if err := r.c.StartChange(set); err != nil {
			return err
		}
		if _, err := r.c.DeliverView(set); err != nil {
			return err
		}
		return r.c.Run()
	}
	return nil
}

// traffic multicasts a burst from random live members, tolerating blocked
// and crashed senders (both are legal mid-reconfiguration outcomes).
func (r *simRun) traffic(tag string, n int) error {
	for i := 0; i < n; i++ {
		p := r.alive.Sorted()[r.rng.Intn(r.alive.Len())]
		_, err := r.c.Send(p, []byte(fmt.Sprintf("%s-%d", tag, i)))
		if err != nil && !errors.Is(err, core.ErrBlocked) && !errors.Is(err, core.ErrCrashed) {
			return fmt.Errorf("soak: send from %s: %w", p, err)
		}
	}
	return nil
}

func (r *simRun) phase(kind PhaseKind) error {
	at := r.c.Now()
	switch kind {
	case PhaseTraffic:
		n := 4 + r.rng.Intn(8)
		r.sched.Note(at, kind, "%d sends from random members", n)
		if err := r.traffic("t", n); err != nil {
			return err
		}
		return r.settle(5*time.Millisecond, 20*time.Millisecond)

	case PhaseViewRace:
		set := r.randomAliveSubset()
		r.sched.Note(at, kind, "start_change %s, commit while traffic is in flight", set)
		if err := r.c.StartChange(set); err != nil {
			return err
		}
		if err := r.traffic("race", 3); err != nil {
			return err
		}
		if err := r.settle(2*time.Millisecond, 10*time.Millisecond); err != nil {
			return err
		}
		commit := set.Minus(r.crashed)
		if commit.Len() == 0 {
			return nil
		}
		if _, err := r.c.DeliverView(commit); err != nil {
			if err := r.c.StartChange(commit); err != nil {
				return err
			}
			if _, err := r.c.DeliverView(commit); err != nil {
				return err
			}
		}
		return r.settle(5*time.Millisecond, 15*time.Millisecond)

	case PhasePartitionHeal:
		if r.alive.Len() < 4 {
			return r.phase(PhaseTraffic)
		}
		members := r.alive.Sorted()
		r.rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
		mid := 1 + r.rng.Intn(len(members)-1)
		left, right := types.NewProcSet(members[:mid]...), types.NewProcSet(members[mid:]...)
		r.sched.Note(at, kind, "split %s | %s, dwell, heal", left, right)
		if _, err := r.c.Partition(left, right); err != nil {
			return err
		}
		if err := r.traffic("part", 3); err != nil {
			return err
		}
		if err := r.settle(10*time.Millisecond, 30*time.Millisecond); err != nil {
			return err
		}
		r.c.HealConnectivity()
		return r.reconfigure(r.alive)

	case PhaseOscillate:
		if r.alive.Len() < 4 {
			return r.phase(PhaseTraffic)
		}
		members := r.alive.Sorted()
		mid := len(members) / 2
		left, right := types.NewProcSet(members[:mid]...), types.NewProcSet(members[mid:]...)
		flips := 2 + r.rng.Intn(3)
		r.sched.Note(at, kind, "%d rapid flips of %s | %s", flips, left, right)
		for i := 0; i < flips; i++ {
			if _, err := r.c.Partition(left, right); err != nil {
				return err
			}
			if err := r.settle(2*time.Millisecond, 8*time.Millisecond); err != nil {
				return err
			}
			r.c.HealConnectivity()
			if err := r.reconfigure(r.alive); err != nil {
				return err
			}
		}
		return nil

	case PhaseCrashRestart:
		if r.alive.Len() <= 2 {
			return r.phase(PhaseTraffic)
		}
		victims := r.alive.Sorted()
		p := victims[r.rng.Intn(len(victims))]
		r.sched.Note(at, kind, "crash %s, reconfigure, recover, reconfigure", p)
		if err := r.c.Crash(p); err != nil {
			return err
		}
		r.alive.Remove(p)
		r.crashed.Add(p)
		if err := r.reconfigure(r.alive); err != nil {
			return err
		}
		if err := r.traffic("crash", 3); err != nil {
			return err
		}
		if err := r.c.Recover(p); err != nil {
			return err
		}
		r.crashed.Remove(p)
		r.alive.Add(p)
		return r.reconfigure(r.alive)

	default:
		return fmt.Errorf("soak: sim runner cannot execute phase %q", kind)
	}
}
