package soak

import (
	"testing"
	"time"

	"vsgm/internal/randseed"
)

// TestDetectorSmokeFlappingLink is the seeded flapping-link slice run by
// `make detector-smoke`: a live soak whose every chaos phase flaps one
// server-server link faster than an undamped detector stabilizes. The run
// must stay within the bounded-churn budget (spec.CheckChurn over the
// whole trace) AND the damping machinery must actually engage — flap
// crossings observed and at least one rejoin quarantine imposed — so a
// regression that silently disables damping fails the test even while the
// cluster happens to survive.
func TestDetectorSmokeFlappingLink(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak: skipped under -short (run make detector-smoke)")
	}
	seed, _ := randseed.Pick(67)
	logReplay(t, seed)
	sc := &Scenario{Name: "flap-smoke", Weights: []Weight{{PhaseFlappingLink, 1}}}
	rep, err := RunLive(LiveConfig{
		Duration:    4 * time.Second,
		Seed:        seed,
		StateRoot:   t.TempDir(),
		Scenario:    sc,
		ChurnBudget: 6,
		Log:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("flapping-link soak violated the spec:\n%s", rep.Render())
	}
	if len(rep.Schedule.Steps) == 0 {
		t.Fatal("soak executed no flapping phases")
	}
	if rep.DetectorFlaps < 2 {
		t.Fatalf("detector saw only %d flap crossings across %d flapping phases — suspicion never fired",
			rep.DetectorFlaps, len(rep.Schedule.Steps))
	}
	if rep.DetectorQuarantines < 1 {
		t.Fatalf("flap damping never engaged: %d flaps but 0 rejoin quarantines", rep.DetectorFlaps)
	}
	t.Logf("flapping-link soak: %d phases, %d transitions, %d flaps, %d quarantines in %v",
		len(rep.Schedule.Steps), rep.ChaosTransitions, rep.DetectorFlaps, rep.DetectorQuarantines,
		rep.Elapsed.Round(time.Millisecond))
}

// TestDetectorSmokeGrayFailure drives the gray-failure phase: one direction
// of a server-server link is blocked, and the reachability-bitmap
// reconciliation must converge every server on a symmetric verdict (the
// phase itself asserts no server keeps both ends of the broken pairing and
// that the verdict holds without oscillating). The report must additionally
// show the gray downgrade machinery fired.
func TestDetectorSmokeGrayFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak: skipped under -short (run make detector-smoke)")
	}
	seed, _ := randseed.Pick(71)
	logReplay(t, seed)
	sc := &Scenario{Name: "gray-smoke", Weights: []Weight{{PhaseGrayFailure, 1}}}
	rep, err := RunLive(LiveConfig{
		Duration:  3 * time.Second,
		Seed:      seed,
		StateRoot: t.TempDir(),
		Scenario:  sc,
		Log:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("gray-failure soak violated the spec:\n%s", rep.Render())
	}
	if len(rep.Schedule.Steps) == 0 {
		t.Fatal("soak executed no gray-failure phases")
	}
	if rep.DetectorGrayDrops < 1 {
		t.Fatalf("gray reconciliation never fired across %d gray-failure phases", len(rep.Schedule.Steps))
	}
	t.Logf("gray-failure soak: %d phases, %d gray downgrades in %v",
		len(rep.Schedule.Steps), rep.DetectorGrayDrops, rep.Elapsed.Round(time.Millisecond))
}

// TestLiveSoakClientScramble concentrates on the client half of
// arbitrary-state convergence: every phase scrambles a live client's
// in-memory identifier watermarks, and the run's final CheckConvergence
// must still hold — the node either self-clamps impossible values or
// re-floats huge ones through its attach claim. Closes the client-side
// injection gap left open by the server-side scramble phases.
func TestLiveSoakClientScramble(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak: skipped under -short (run make detector-smoke)")
	}
	seed, _ := randseed.Pick(73)
	logReplay(t, seed)
	sc := &Scenario{Name: "client-scramble-smoke", Weights: []Weight{
		{PhaseClientScramble, 3},
		{PhaseTraffic, 1},
	}}
	rep, err := RunLive(LiveConfig{
		Duration:  3 * time.Second,
		Seed:      seed,
		StateRoot: t.TempDir(),
		Scenario:  sc,
		Log:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("client-scramble soak violated the spec:\n%s", rep.Render())
	}
	scrambles := 0
	for _, st := range rep.Schedule.Steps {
		if st.Kind == PhaseClientScramble {
			scrambles++
		}
	}
	if scrambles == 0 {
		t.Fatal("soak executed no client-scramble phases")
	}
	t.Logf("client-scramble soak: %d scrambles in %d phases, %v",
		scrambles, len(rep.Schedule.Steps), rep.Elapsed.Round(time.Millisecond))
}
