package soak

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vsgm/internal/randseed"
)

// logReplay prints the seed line every randomized soak test emits, so a
// failure in CI can be replayed exactly (see docs/TESTING.md).
func logReplay(t *testing.T, seed int64) {
	t.Helper()
	t.Logf("PRNG seed %d (replay: %s=%d go test -run '%s' ./internal/soak)",
		seed, randseed.EnvVar, seed, t.Name())
}

func TestScenarioPickIsWeightedAndDeterministic(t *testing.T) {
	sc := SimScenario()
	counts := make(map[PhaseKind]int)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		counts[sc.pick(rng)]++
	}
	for _, w := range sc.Weights {
		if counts[w.Kind] == 0 {
			t.Errorf("phase %s (weight %d) never drawn in 2000 picks", w.Kind, w.Weight)
		}
	}
	if counts[PhaseTraffic] <= counts[PhaseOscillate] {
		t.Errorf("weight 4 phase drawn %d times, weight 1 phase %d times — weighting inverted",
			counts[PhaseTraffic], counts[PhaseOscillate])
	}
	// Same seed, same stream.
	a, b := rand.New(rand.NewSource(11)), rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		if sc.pick(a) != sc.pick(b) {
			t.Fatal("same seed produced different phase streams")
		}
	}
}

func TestScenarioValidateRejectsUnsupportedPhase(t *testing.T) {
	if _, err := RunSim(SimConfig{Duration: time.Millisecond, Seed: 1, Scenario: WorldScenario()}); err == nil {
		t.Fatal("sim runner accepted a scenario with flash-crowd phases it cannot execute")
	}
	if _, err := ScenarioByName("no-such-mix"); err == nil {
		t.Fatal("unknown scenario name resolved")
	}
	if sc, err := ScenarioByName("live-default"); err != nil || sc.Name != "live-default" {
		t.Fatalf("live-default did not resolve: %v", err)
	}
}

// TestSimSoakScheduleReplays runs the same seeded sim soak twice and
// demands bit-identical chaos schedules — the reproducibility contract
// behind every logged seed.
func TestSimSoakScheduleReplays(t *testing.T) {
	run := func() string {
		rep, err := RunSim(SimConfig{Duration: 300 * time.Millisecond, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Schedule.Render()
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("same seed produced different schedules:\n--- first\n%s--- second\n%s", first, second)
	}
}

func TestSimSoak(t *testing.T) {
	seed, _ := randseed.Pick(23)
	logReplay(t, seed)
	dur := 2 * time.Second // virtual time
	if testing.Short() {
		dur = 400 * time.Millisecond
	}
	rep, err := RunSim(SimConfig{Duration: dur, Seed: seed, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("sim soak violated the spec:\n%s", rep.Render())
	}
	if len(rep.Schedule.Steps) < 5 {
		t.Fatalf("soak ran only %d phases over %v of virtual time", len(rep.Schedule.Steps), dur)
	}
}

// TestSimSoakForcedViolationReport forces a fabricated Local Monotonicity
// violation and checks the report dumps everything a post-mortem needs:
// the violation, the replay seed, the chaos schedule, and the
// reconfiguration trace timeline.
func TestSimSoakForcedViolationReport(t *testing.T) {
	rep, err := RunSim(SimConfig{Duration: 200 * time.Millisecond, Seed: 5, ForceViolation: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("forced violation not reported")
	}
	out := rep.Render()
	for _, want := range []string{
		"FAIL",
		"replay: " + randseed.EnvVar + "=5",
		"chaos schedule:",
		"forced-violation",
		"reconfiguration trace timeline:",
		"view_install",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("violation report missing %q:\n%s", want, out)
		}
	}
	path := filepath.Join(t.TempDir(), "report.txt")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if b, err := os.ReadFile(path); err != nil || string(b) != out {
		t.Fatalf("artifact on disk does not match the rendered report (err=%v)", err)
	}
}

// TestWorldSoakSampled drives the large-population client-server soak with
// sampled spec checking. The full population (10k endpoints, the paper's
// scalability regime) runs outside -short; -short keeps a smaller crowd so
// the tier-1 suite stays fast.
func TestWorldSoakSampled(t *testing.T) {
	seed, _ := randseed.Pick(31)
	logReplay(t, seed)
	cfg := WorldConfig{Duration: 6 * time.Second, Seed: seed, Clients: 10000, SampleEvery: 100, Log: t.Logf}
	if testing.Short() {
		cfg = WorldConfig{Duration: 1500 * time.Millisecond, Seed: seed, Clients: 600, SampleEvery: 10, Log: t.Logf}
	}
	rep, err := RunWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("world soak violated the spec:\n%s", rep.Render())
	}
	if rep.EventsChecked >= rep.EventsSeen {
		t.Fatalf("sampling had no effect: checked %d of %d events", rep.EventsChecked, rep.EventsSeen)
	}
	if rep.EventsChecked == 0 {
		t.Fatal("sampling kept no events at all")
	}
	if len(rep.Schedule.Steps) == 0 {
		t.Fatal("soak executed no phases")
	}
	t.Logf("world soak: population %d, %d/%d events checked, %d phases",
		rep.Population, rep.EventsChecked, rep.EventsSeen, len(rep.Schedule.Steps))
}

func TestWorldSoakForcedViolationReport(t *testing.T) {
	rep, err := RunWorld(WorldConfig{Duration: 300 * time.Millisecond, Seed: 3, Clients: 60, SampleEvery: 5, ForceViolation: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("forced violation not reported")
	}
	out := rep.Render()
	for _, want := range []string{"FAIL", "sampled checking: every 5th endpoint", "replay: " + randseed.EnvVar + "=3", "chaos schedule:"} {
		if !strings.Contains(out, want) {
			t.Errorf("violation report missing %q:\n%s", want, out)
		}
	}
}

// TestWorldSoakArbitraryState drives the arbitrary-state scenario: most
// phases scramble retained identifier records with fully random 64-bit
// patterns or resurrect corrupted counters, and the run must still converge
// to one agreed full view within the spec checker's round budget.
func TestWorldSoakArbitraryState(t *testing.T) {
	seed, _ := randseed.Pick(53)
	logReplay(t, seed)
	cfg := WorldConfig{Duration: 4 * time.Second, Seed: seed, Clients: 2000, SampleEvery: 20,
		Scenario: WorldArbitraryScenario(), Log: t.Logf}
	if testing.Short() {
		cfg.Duration = 1200 * time.Millisecond
		cfg.Clients = 300
		cfg.SampleEvery = 5
	}
	rep, err := RunWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("arbitrary-state world soak violated the spec:\n%s", rep.Render())
	}
	if len(rep.Schedule.Steps) == 0 {
		t.Fatal("soak executed no phases")
	}
}

// TestLiveSoakArbitraryState is the live-cluster arbitrary-state soak: WAL
// scrambles through the fsck/repair path and in-memory record scrambles
// through the sanitizer, asserting bounded reconvergence throughout. Long
// by nature; -short skips it.
func TestLiveSoakArbitraryState(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak: skipped under -short (run make soak-smoke or make soak)")
	}
	seed, _ := randseed.Pick(59)
	logReplay(t, seed)
	rep, err := RunLive(LiveConfig{Duration: 5 * time.Second, Seed: seed, StateRoot: t.TempDir(),
		Scenario: LiveArbitraryScenario(), Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("arbitrary-state live soak violated the spec:\n%s", rep.Render())
	}
	if len(rep.Schedule.Steps) == 0 {
		t.Fatal("live soak executed no phases")
	}
	t.Logf("arbitrary-state live soak: %d phases in %v", len(rep.Schedule.Steps), rep.Elapsed.Round(time.Millisecond))
}

// TestLiveSoakSmoke runs a short live-cluster soak over real TCP loopback
// sockets. Long by nature; -short skips it (make check runs it via the
// soak-smoke target, make soak runs the full-duration version).
func TestLiveSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak: skipped under -short (run make soak-smoke or make soak)")
	}
	seed, _ := randseed.Pick(47)
	logReplay(t, seed)
	rep, err := RunLive(LiveConfig{Duration: 5 * time.Second, Seed: seed, StateRoot: t.TempDir(), Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("live soak violated the spec:\n%s", rep.Render())
	}
	if len(rep.Schedule.Steps) == 0 {
		t.Fatal("live soak executed no phases")
	}
	t.Logf("live soak: %d phases in %v", len(rep.Schedule.Steps), rep.Elapsed.Round(time.Millisecond))
}

// TestShardSoakDefault runs the sharded-KV soak under the default mixed
// scenario: client traffic through the epoch-cached router, both reshard
// kinds with traffic between their steps, partitions and crash/recovery —
// and the no-lost-acknowledged-writes checker as the verdict.
func TestShardSoakDefault(t *testing.T) {
	seed, _ := randseed.Pick(61)
	logReplay(t, seed)
	dur := 800 * time.Millisecond // virtual time
	if testing.Short() {
		dur = 400 * time.Millisecond
	}
	rep, err := RunShard(ShardConfig{Duration: dur, Seed: seed, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("shard soak violated the spec:\n%s", rep.Render())
	}
	if len(rep.Schedule.Steps) == 0 {
		t.Fatal("shard soak executed no phases")
	}
	if rep.EventsChecked == 0 {
		t.Fatal("shard soak acknowledged no writes — nothing was checked")
	}
}

// TestShardSoakReshardUnderChurn is the acceptance slice from the issue: a
// seeded reshard-under-churn run — crashes, recoveries, and partitions
// injected between the steps of in-flight reshards — must end with every
// acknowledged write still readable at its owning shard.
func TestShardSoakReshardUnderChurn(t *testing.T) {
	seed := int64(1009) // fixed: this is the acceptance slice, not a fuzz run
	logReplay(t, seed)
	dur := 900 * time.Millisecond // virtual time
	if testing.Short() {
		dur = 500 * time.Millisecond
	}
	rep, err := RunShard(ShardConfig{
		Duration: dur, Seed: seed, Shards: 3,
		Scenario: ReshardUnderChurnScenario(), Log: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("reshard-under-churn soak lost acknowledged writes:\n%s", rep.Render())
	}
	if rep.EventsChecked == 0 {
		t.Fatal("churn soak acknowledged no writes — nothing was checked")
	}
	t.Logf("reshard-under-churn: %d phases, %d acked writes verified", len(rep.Schedule.Steps), rep.EventsChecked)
}
