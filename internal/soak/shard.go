package soak

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"vsgm/internal/shard"
	"vsgm/internal/types"
)

// ShardConfig parameterizes the sharded-KV soak: a multi-shard World
// (internal/shard) under randomized chaos — client traffic through the
// epoch-cached router, both reshard kinds with traffic and failures
// interleaved between their steps, partitions, and crash/recovery — with
// the no-lost-acknowledged-writes checker as the run's verdict.
type ShardConfig struct {
	// Duration is the virtual-time budget; default 800ms.
	Duration time.Duration
	// Seed drives the entire schedule.
	Seed int64
	// Shards is the shard count; default 2.
	Shards int
	// Scenario is the phase mix; default ShardScenario().
	Scenario *Scenario
	// Log receives progress lines; nil discards them.
	Log func(format string, args ...any)
}

var shardSupported = map[PhaseKind]bool{
	PhaseTraffic:       true,
	PhaseReshardGroup:  true,
	PhaseReshardSlots:  true,
	PhaseReshardChurn:  true,
	PhasePartitionHeal: true,
	PhaseCrashRestart:  true,
}

type shardRun struct {
	cfg     ShardConfig
	w       *shard.World
	router  *shard.Router
	rng     *rand.Rand
	sched   *Schedule
	nextKey int
	nextID  int

	acked   int64
	bounced int64 // retryable rejections (resharding / unavailable)
	aborted int64 // reshards that ended in a clean abort under chaos
}

// RunShard executes the sharded-KV soak and returns its report. The error
// is non-nil only for harness failures; invariant violations (a lost
// acknowledged write, a spec-suite violation, a durable-store failure) land
// in the Report.
func RunShard(cfg ShardConfig) (*Report, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 800 * time.Millisecond
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.Scenario == nil {
		cfg.Scenario = ShardScenario()
	}
	if err := cfg.Scenario.validate(shardSupported); err != nil {
		return nil, err
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}

	w, err := shard.NewWorld(shard.WorldConfig{Shards: cfg.Shards, Seed: cfg.Seed*13 + 5})
	if err != nil {
		return nil, err
	}
	r := &shardRun{
		cfg:    cfg,
		w:      w,
		router: shard.NewRouter(w, 0),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		sched:  &Schedule{Scenario: cfg.Scenario.Name, Seed: cfg.Seed},
	}
	report := &Report{Mode: "shard", Seed: cfg.Seed, Schedule: r.sched, SampleEvery: 1}
	report.Population = 0
	for _, id := range w.ShardIDs() {
		report.Population += len(w.GroupProcs(id))
	}

	for w.Now() < cfg.Duration {
		if err := r.phase(cfg.Scenario.pick(r.rng)); err != nil {
			return nil, err
		}
	}
	cfg.Log("shard soak: %d phases, %d acked ops, %d retryable bounces, %d aborted reshards; stabilizing",
		len(r.sched.Steps), r.acked, r.bounced, r.aborted)

	// Stabilize: every shard back to its (possibly re-homed) group, fully
	// connected, then hold the run to its invariants.
	for _, id := range w.ShardIDs() {
		if err := w.HealShard(id, w.Group(id)); err != nil {
			report.violate(fmt.Errorf("shard %d did not stabilize: %w", id, err))
		}
	}
	if err := w.RunAll(); err != nil {
		return nil, err
	}
	report.violate(w.Check())
	report.violate(w.VerifyAcked())
	report.Elapsed = w.Now()
	report.EventsSeen = r.acked + r.bounced
	report.EventsChecked = r.acked
	return report, nil
}

// doOp issues one random client op through the router. Retryable rejections
// (a migrating slot, a shard briefly below quorum, a mid-reconfiguration
// redirect storm) are counted and tolerated; anything else is a harness
// error.
func (r *shardRun) doOp() error {
	var key string
	if r.nextKey > 0 && r.rng.Intn(3) == 0 {
		key = fmt.Sprintf("soak-%04d", r.rng.Intn(r.nextKey)) // rewrite an old key
	} else {
		key = fmt.Sprintf("soak-%04d", r.nextKey)
		r.nextKey++
	}
	err := r.router.Set(key, fmt.Sprintf("v%d", r.rng.Int31()))
	switch {
	case err == nil:
		r.acked++
		return nil
	case errors.Is(err, shard.ErrResharding),
		errors.Is(err, shard.ErrUnavailable),
		errors.Is(err, shard.ErrRedirectLoop):
		// All retryable: the client was never told the write took. A
		// redirect loop can only happen transiently here, while reshards
		// move the map underneath this very router.
		r.bounced++
		return nil
	default:
		return fmt.Errorf("soak: shard traffic: %w", err)
	}
}

func (r *shardRun) traffic(n int) error {
	for i := 0; i < n; i++ {
		if err := r.doOp(); err != nil {
			return err
		}
	}
	return nil
}

// randomShard picks a shard id.
func (r *shardRun) randomShard() int {
	ids := r.w.ShardIDs()
	return ids[r.rng.Intn(len(ids))]
}

// reshardID mints a schedule-unique proposal id.
func (r *shardRun) reshardID(prefix string) string {
	r.nextID++
	return fmt.Sprintf("%s-%d", prefix, r.nextID)
}

// buildGroupMove draws a MoveGroup proposal: a new group of the same size
// from the shard's process universe, different from the current one.
func (r *shardRun) buildGroupMove(id int) (shard.Reshard, bool) {
	universe := r.w.GroupProcs(id)
	size := r.w.Group(id).Len()
	if size <= 0 || size > len(universe) {
		return shard.Reshard{}, false
	}
	r.rng.Shuffle(len(universe), func(i, j int) { universe[i], universe[j] = universe[j], universe[i] })
	next := types.NewProcSet(universe[:size]...)
	if next.Equal(r.w.Group(id)) {
		return shard.Reshard{}, false
	}
	return shard.Reshard{
		ID: r.reshardID("mg"), Kind: shard.MoveGroup, Shard: id, NewGroup: next.Sorted(),
	}, true
}

// buildSlotMove draws a MoveSlots proposal between two distinct shards.
func (r *shardRun) buildSlotMove() (shard.Reshard, bool) {
	ids := r.w.ShardIDs()
	if len(ids) < 2 {
		return shard.Reshard{}, false
	}
	src := ids[r.rng.Intn(len(ids))]
	dst := ids[r.rng.Intn(len(ids))]
	for dst == src {
		dst = ids[r.rng.Intn(len(ids))]
	}
	m := r.w.CommittedMap()
	owned := m.SlotsOwned(src)
	if len(owned) <= 1 { // never strip a shard of its last slot
		return shard.Reshard{}, false
	}
	lo := owned[r.rng.Intn(len(owned)-1)]
	hi := lo + r.rng.Intn(3)
	if hi >= len(m.Slots) {
		hi = len(m.Slots) - 1
	}
	return shard.Reshard{
		ID: r.reshardID("ms"), Kind: shard.MoveSlots, Shard: src, Dst: dst, SlotLo: lo, SlotHi: hi,
	}, true
}

// runReshard steps one reshard to completion, calling between after every
// step (traffic, or chaos for the churn phase). A rejected proposal or a
// step failure under chaos ends in a clean abort — legal, counted, and
// noted; the acknowledgment ledger still must verify at the end of the run.
func (r *shardRun) runReshard(rs *shard.Resharder, between func() error) error {
	for {
		done, err := rs.Step()
		if err != nil {
			r.aborted++
			r.sched.Note(r.w.Now(), PhaseKind("reshard-abort"), "%v", err)
			return nil
		}
		if done {
			return nil
		}
		if between != nil {
			if err := between(); err != nil {
				return err
			}
		}
	}
}

// churnBetween is the mid-reshard chaos hook: traffic always, plus an
// occasional crash/recover or partition/heal of a random shard while the
// handoff is in flight.
func (r *shardRun) churnBetween() func() error {
	return func() error {
		if err := r.traffic(1 + r.rng.Intn(3)); err != nil {
			return err
		}
		switch r.rng.Intn(4) {
		case 0:
			return r.crashRecoverOnce(r.randomShard())
		case 1:
			return r.partitionHealOnce(r.randomShard())
		default:
			return nil
		}
	}
}

// crashRecoverOnce crashes one member of the shard's current group (only
// when the survivors still hold quorum), serves traffic around the hole,
// then recovers and rejoins it.
func (r *shardRun) crashRecoverOnce(id int) error {
	group := r.w.Group(id)
	quorum := group.Len()/2 + 1
	if group.Len()-1 < quorum {
		return r.traffic(2)
	}
	members := group.Sorted()
	p := members[r.rng.Intn(len(members))]
	r.sched.Note(r.w.Now(), PhaseCrashRestart, "shard %d: crash %s, recover, rejoin", id, p)
	if err := r.w.CrashReplica(id, p); err != nil {
		return err
	}
	if err := r.traffic(2); err != nil {
		return err
	}
	if err := r.w.RecoverReplica(id, p); err != nil {
		return err
	}
	return r.w.ReconfigureShard(id, group)
}

// partitionHealOnce splits one shard majority/minority, serves traffic
// through the majority, then heals.
func (r *shardRun) partitionHealOnce(id int) error {
	group := r.w.Group(id)
	if group.Len() < 3 {
		return r.traffic(2)
	}
	members := group.Sorted()
	r.rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
	quorum := group.Len()/2 + 1
	maj := types.NewProcSet(members[:quorum]...)
	min := types.NewProcSet(members[quorum:]...)
	r.sched.Note(r.w.Now(), PhasePartitionHeal, "shard %d: split %s | %s, heal", id, maj, min)
	if err := r.w.PartitionShard(id, maj, min); err != nil {
		return err
	}
	if err := r.traffic(3); err != nil {
		return err
	}
	return r.w.HealShard(id, group)
}

func (r *shardRun) phase(kind PhaseKind) error {
	at := r.w.Now()
	switch kind {
	case PhaseTraffic:
		n := 4 + r.rng.Intn(8)
		r.sched.Note(at, kind, "%d client ops", n)
		return r.traffic(n)

	case PhaseReshardGroup:
		id := r.randomShard()
		prop, ok := r.buildGroupMove(id)
		if !ok {
			return r.phase(PhaseTraffic)
		}
		r.sched.Note(at, kind, "shard %d → group %v, traffic between steps", id, prop.NewGroup)
		return r.runReshard(shard.NewResharder(r.w, prop), func() error {
			return r.traffic(1 + r.rng.Intn(3))
		})

	case PhaseReshardSlots:
		prop, ok := r.buildSlotMove()
		if !ok {
			return r.phase(PhaseTraffic)
		}
		r.sched.Note(at, kind, "slots [%d,%d] shard %d → %d, traffic between steps",
			prop.SlotLo, prop.SlotHi, prop.Shard, prop.Dst)
		return r.runReshard(shard.NewResharder(r.w, prop), func() error {
			return r.traffic(1 + r.rng.Intn(3))
		})

	case PhaseReshardChurn:
		var prop shard.Reshard
		var ok bool
		if r.rng.Intn(2) == 0 {
			prop, ok = r.buildGroupMove(r.randomShard())
		} else {
			prop, ok = r.buildSlotMove()
		}
		if !ok {
			return r.phase(PhaseTraffic)
		}
		r.sched.Note(at, kind, "%s reshard %s with chaos between steps", prop.Kind, prop.ID)
		return r.runReshard(shard.NewResharder(r.w, prop), r.churnBetween())

	case PhasePartitionHeal:
		return r.partitionHealOnce(r.randomShard())

	case PhaseCrashRestart:
		return r.crashRecoverOnce(r.randomShard())

	default:
		return fmt.Errorf("soak: shard runner cannot execute phase %q", kind)
	}
}
