package soak

import (
	"fmt"
	"math/rand"
	"time"

	"vsgm/internal/membership"
	"vsgm/internal/sim"
	"vsgm/internal/spec"
	"vsgm/internal/types"
)

// WorldConfig parameterizes the large-population client-server soak: a
// simulated deployment of dedicated membership servers carrying tens of
// thousands of clients, checked by the specification suite in sampled
// mode (every k-th endpoint) so the checkers scale with the sample, not
// the population.
type WorldConfig struct {
	// Duration is the wall-clock budget for the phase loop; default 10s.
	Duration time.Duration
	// Seed drives the entire schedule.
	Seed int64
	// Servers is the number of membership servers; default 3.
	Servers int
	// Clients is the initial total client population; default 10000.
	Clients int
	// SampleEvery checks every k-th endpoint (1 = all); default 100.
	SampleEvery int
	// Scenario is the phase mix; default WorldScenario().
	Scenario *Scenario
	// ForceViolation injects a fabricated violation at a sampled client.
	ForceViolation bool
	// Log receives progress lines; nil discards them.
	Log func(format string, args ...any)
}

var worldSupported = map[PhaseKind]bool{
	PhaseFlashCrowd:     true,
	PhaseChurn:          true,
	PhasePartitionHeal:  true,
	PhaseOscillate:      true,
	PhaseFlappingLink:   true,
	PhaseCorruptCounter: true,
	PhaseStateScramble:  true,
}

// worldConvergeBudget bounds how many misaligned membership views one
// sampled client may install after the final heal: the simulated world
// stabilizes within a couple of reconfiguration rounds, so a modest budget
// asserts bounded (not merely eventual) convergence.
const worldConvergeBudget = 8

type worldRun struct {
	cfg     WorldConfig
	w       *sim.ServerWorld
	rng     *rand.Rand
	sched   *Schedule
	start   time.Time
	joinSeq int
}

// RunWorld executes the large-population soak and returns its report.
func RunWorld(cfg WorldConfig) (*Report, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 3
	}
	if cfg.Servers < 2 {
		return nil, fmt.Errorf("soak: world needs at least 2 servers, got %d", cfg.Servers)
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 10000
	}
	if cfg.Clients < cfg.Servers {
		return nil, fmt.Errorf("soak: world needs at least one client per server")
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 100
	}
	if cfg.Scenario == nil {
		cfg.Scenario = WorldScenario()
	}
	if err := cfg.Scenario.validate(worldSupported); err != nil {
		return nil, err
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	keep := spec.SampleEveryKth(cfg.SampleEvery)
	// Membership safety only: liveness checking is unsound on a sampled
	// trace, and per-message checkers would see sender-projected deliveries
	// anyway — the world runner sends no application traffic.
	suite := spec.FullSuite(spec.WithTrace(), spec.WithSample(keep))

	w, err := sim.NewServerWorld(sim.ServerWorldConfig{
		Servers:          cfg.Servers,
		ClientsPerServer: cfg.Clients / cfg.Servers,
		Seed:             cfg.Seed*7 + 1,
		Suite:            suite,
	})
	if err != nil {
		return nil, err
	}
	if err := w.Boot(); err != nil {
		return nil, err
	}

	r := &worldRun{
		cfg:   cfg,
		w:     w,
		rng:   rng,
		sched: &Schedule{Scenario: cfg.Scenario.Name, Seed: cfg.Seed},
		start: time.Now(),
	}
	report := &Report{Mode: "world", Seed: cfg.Seed, Schedule: r.sched, SampleEvery: cfg.SampleEvery}

	for time.Since(r.start) < cfg.Duration {
		if err := r.phase(cfg.Scenario.pick(rng)); err != nil {
			return nil, err
		}
		cfg.Log("world soak: step %d done, population %d, %v elapsed",
			len(r.sched.Steps), len(w.Clients()), time.Since(r.start).Round(time.Millisecond))
	}

	// Stabilize: heal everything and drive one final view over the whole
	// population. The trace index at the heal is the convergence mark —
	// every injection has ceased, so alignment must follow within budget.
	mark := len(suite.Trace())
	if err := w.HealServers(); err != nil {
		return nil, err
	}
	if err := w.TriggerChange(); err != nil {
		return nil, err
	}

	if cfg.ForceViolation {
		victim := r.sampledClient(keep)
		r.sched.Note(time.Since(r.start), PhaseKind("forced-violation"), "injected regressing membership view at %s", victim)
		injectForcedViolation(suite, victim)
	}

	report.violate(suite.Err())
	if report.OK() {
		report.violate(r.checkConvergence(suite, keep, mark))
	}
	report.Population = len(w.Clients())
	report.EventsSeen, report.EventsChecked = suite.SampleStats()
	report.Elapsed = time.Since(r.start)
	return report, nil
}

// sampledClient returns an attached client the sampling predicate keeps
// (falling back to the first client if the sample is empty).
func (r *worldRun) sampledClient(keep func(types.ProcID) bool) types.ProcID {
	clients := r.w.Clients()
	for _, c := range clients {
		if keep(c) {
			return c
		}
	}
	return clients[0]
}

// checkConvergence hands the sampled trace to the spec-level convergence
// checker: every sampled attached client must reach the same view over the
// full population within worldConvergeBudget reconfiguration rounds of the
// final heal — the flash crowds, churn storms, scrambles, and resurrections
// all merged back into one agreed view, boundedly.
func (r *worldRun) checkConvergence(suite *spec.Suite, keep func(types.ProcID) bool, mark int) error {
	want := types.NewProcSet(r.w.Clients()...)
	sampled := types.NewProcSet()
	for _, c := range r.w.Clients() {
		if keep(c) {
			sampled.Add(c)
		}
	}
	if sampled.Len() == 0 {
		return fmt.Errorf("soak: sampling stride %d kept no clients out of %d", r.cfg.SampleEvery, want.Len())
	}
	return spec.CheckConvergence(suite.Trace(), mark, sampled, want, worldConvergeBudget)
}

// freshJoiners mints n never-used client identifiers.
func (r *worldRun) freshJoiners(n int) []types.ProcID {
	ids := make([]types.ProcID, n)
	for i := range ids {
		ids[i] = types.ProcID(fmt.Sprintf("j%06d", r.joinSeq))
		r.joinSeq++
	}
	return ids
}

// attachSpread attaches ids round-robin across the servers.
func (r *worldRun) attachSpread(ids []types.ProcID) error {
	servers := r.w.Servers()
	for i, sid := range servers {
		var batch []types.ProcID
		for j := i; j < len(ids); j += len(servers) {
			batch = append(batch, ids[j])
		}
		if len(batch) == 0 {
			continue
		}
		if err := r.w.AttachClients(sid, batch); err != nil {
			return err
		}
	}
	return nil
}

// serverSplit draws a random 2-way split of the server set.
func (r *worldRun) serverSplit() (types.ProcSet, types.ProcSet) {
	servers := r.w.Servers()
	r.rng.Shuffle(len(servers), func(i, j int) { servers[i], servers[j] = servers[j], servers[i] })
	mid := 1 + r.rng.Intn(len(servers)-1)
	return types.NewProcSet(servers[:mid]...), types.NewProcSet(servers[mid:]...)
}

func (r *worldRun) phase(kind PhaseKind) error {
	at := time.Since(r.start)
	switch kind {
	case PhaseFlashCrowd:
		n := 1000 + r.rng.Intn(2000)
		ids := r.freshJoiners(n)
		r.sched.Note(at, kind, "%d clients join in one instant (%s..%s)", n, ids[0], ids[n-1])
		if err := r.attachSpread(ids); err != nil {
			return err
		}
		return r.w.TriggerChange()

	case PhaseChurn:
		clients := r.w.Clients()
		depart := len(clients) * (10 + r.rng.Intn(21)) / 100
		if max := len(clients) - r.cfg.Servers; depart > max {
			depart = max
		}
		if depart <= 0 {
			return nil
		}
		r.rng.Shuffle(len(clients), func(i, j int) { clients[i], clients[j] = clients[j], clients[i] })
		arrive := 1 + r.rng.Intn(depart)
		r.sched.Note(at, kind, "%d clients leave, %d fresh clients join", depart, arrive)
		if err := r.w.DetachClients(clients[:depart]...); err != nil {
			return err
		}
		if err := r.attachSpread(r.freshJoiners(arrive)); err != nil {
			return err
		}
		return r.w.TriggerChange()

	case PhasePartitionHeal:
		left, right := r.serverSplit()
		r.sched.Note(at, kind, "server split %s | %s, stabilize both sides, heal", left, right)
		if err := r.w.PartitionServers(left, right); err != nil {
			return err
		}
		return r.w.HealServers()

	case PhaseOscillate:
		left, right := r.serverSplit()
		flips := 2 + r.rng.Intn(2)
		r.sched.Note(at, kind, "%d rapid flips of server split %s | %s", flips, left, right)
		for i := 0; i < flips; i++ {
			if err := r.w.PartitionServers(left, right); err != nil {
				return err
			}
			if err := r.w.HealServers(); err != nil {
				return err
			}
		}
		return nil

	case PhaseFlappingLink:
		// The world's detectors are driven directly (no heartbeats to score),
		// so this phase exercises the membership protocol under a flapping
		// verdict rather than the damping itself: one server's reachability
		// flips several times faster than a full stabilization, and every
		// flip must still converge to agreed views.
		servers := r.w.Servers()
		victim := servers[r.rng.Intn(len(servers))]
		rest := types.NewProcSet(servers...).Minus(types.NewProcSet(victim))
		flips := 3 + r.rng.Intn(3)
		r.sched.Note(at, kind, "%d rapid reachability flips of %s against %s", flips, victim, rest)
		for i := 0; i < flips; i++ {
			if err := r.w.PartitionServers(types.NewProcSet(victim), rest); err != nil {
				return err
			}
			if err := r.w.HealServers(); err != nil {
				return err
			}
		}
		return nil

	case PhaseCorruptCounter:
		clients := r.w.Clients()
		victim := clients[r.rng.Intn(len(clients))]
		oldHome := r.w.HomeOf(victim)
		servers := r.w.Servers()
		newHome := servers[r.rng.Intn(len(servers))]
		for newHome == oldHome {
			newHome = servers[r.rng.Intn(len(servers))]
		}
		// Two corruption flavours: a huge (but overflow-safe) identifier
		// triple, and a wrapped attach epoch whose cid floor (epoch<<32)
		// overflows int64 back to zero.
		rec := membership.ClientRecord{CID: 1 << 40, Vid: 1 << 40, Epoch: 1 << 7}
		flavour := "huge counters"
		if r.rng.Intn(2) == 0 {
			rec = membership.ClientRecord{CID: 7, Vid: 3, Epoch: 1 << 33}
			flavour = "wrapped epoch"
		}
		r.sched.Note(at, kind, "resurrect %s at %s with %s (cid=%d vid=%d epoch=%d)",
			victim, newHome, flavour, rec.CID, rec.Vid, rec.Epoch)
		if err := r.w.DetachClients(victim); err != nil {
			return err
		}
		r.w.Server(newHome).RestoreRecords(map[types.ProcID]membership.ClientRecord{victim: rec})
		if err := r.w.AttachClients(newHome, []types.ProcID{victim}); err != nil {
			return err
		}
		return r.w.TriggerChange()

	case PhaseStateScramble:
		clients := r.w.Clients()
		servers := r.w.Servers()
		sid := servers[r.rng.Intn(len(servers))]
		n := 1 + r.rng.Intn(4)
		recs := make(map[types.ProcID]membership.ClientRecord, n)
		for i := 0; i < n; i++ {
			victim := clients[r.rng.Intn(len(clients))]
			// Fully arbitrary 64-bit patterns: mostly impossible (negative,
			// above the ceilings — the sanitizer must clamp them), sometimes
			// huge-but-legal (the protocol must absorb them monotonically).
			recs[victim] = membership.ClientRecord{
				CID:   types.StartChangeID(r.rng.Uint64()),
				Vid:   types.ViewID(r.rng.Uint64()),
				Epoch: int64(r.rng.Uint64()),
			}
		}
		r.sched.Note(at, kind, "scramble %d retained records at %s with arbitrary identifiers", n, sid)
		r.w.Server(sid).RestoreRecords(recs)
		return r.w.TriggerChange()

	default:
		return fmt.Errorf("soak: world runner cannot execute phase %q", kind)
	}
}
