package soak

import (
	"fmt"
	"os"
	"strings"
	"time"

	"vsgm/internal/randseed"
)

// Report is the outcome of one soak run. A clean run records the schedule
// it survived; a violated run additionally carries every specification
// violation, the reconfiguration trace timeline of the implicated
// attempts, and the replay seed — everything needed to reproduce and
// debug the failure.
type Report struct {
	// Mode names the runner: "sim", "world", or "live".
	Mode string
	// Seed is the PRNG seed the whole run derives from.
	Seed int64
	// Schedule is the executed chaos schedule (up to the failure, when the
	// run aborted).
	Schedule *Schedule
	// Population is the number of endpoints/clients at the end of the run.
	Population int
	// SampleEvery is the spec-checking sampling stride (1 = every
	// endpoint checked).
	SampleEvery int
	// EventsSeen / EventsChecked are the suite's sampling statistics.
	EventsSeen, EventsChecked int64
	// Violations lists every invariant violation (empty on a clean run).
	Violations []string
	// Timeline is the rendered reconfiguration trace timeline
	// (internal/obs), populated when the run ends in violation.
	Timeline string
	// Elapsed is how long the run took — virtual time for simulation
	// soaks, wall time for live soaks.
	Elapsed time.Duration

	// Detector aggregates (live mode): chaos transitions the schedule
	// executed, and the servers' failure-detector counters at the end of
	// the run — flap crossings seen, rejoin quarantines imposed, gray
	// (one-way link) downgrades applied. They let a seeded detector soak
	// assert that damping actually engaged, not merely that nothing broke.
	ChaosTransitions    int
	DetectorFlaps       int64
	DetectorQuarantines int64
	DetectorGrayDrops   int64
}

// OK reports whether the run finished without violations.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// violate appends a violation, splitting multi-line checker aggregates.
func (r *Report) violate(err error) {
	if err == nil {
		return
	}
	for _, line := range strings.Split(err.Error(), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			r.Violations = append(r.Violations, line)
		}
	}
}

// Render formats the report for humans: verdict, replay instructions,
// violations, the chaos schedule, and (on failure) the reconfiguration
// timeline.
func (r *Report) Render() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.OK() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "soak %s: %s (seed %d, %d steps, %v, population %d)\n",
		r.Mode, verdict, r.Seed, len(r.Schedule.Steps), r.Elapsed.Round(time.Millisecond), r.Population)
	if r.SampleEvery > 1 {
		fmt.Fprintf(&b, "sampled checking: every %dth endpoint; %d of %d events checked\n",
			r.SampleEvery, r.EventsChecked, r.EventsSeen)
	}
	fmt.Fprintf(&b, "replay: %s=%d (same mode and scenario reproduces the schedule)\n", randseed.EnvVar, r.Seed)
	if r.Mode == "live" {
		fmt.Fprintf(&b, "detector: %d chaos transitions, %d flaps, %d quarantines, %d gray downgrades\n",
			r.ChaosTransitions, r.DetectorFlaps, r.DetectorQuarantines, r.DetectorGrayDrops)
	}
	if !r.OK() {
		fmt.Fprintf(&b, "\n%d violation(s):\n", len(r.Violations))
		for i, v := range r.Violations {
			fmt.Fprintf(&b, "  %2d. %s\n", i+1, v)
		}
	}
	fmt.Fprintf(&b, "\nchaos schedule:\n%s", r.Schedule.Render())
	if !r.OK() && r.Timeline != "" {
		fmt.Fprintf(&b, "\nreconfiguration trace timeline:\n%s", r.Timeline)
	}
	return b.String()
}

// WriteFile writes the rendered report to path (the violation artifact).
func (r *Report) WriteFile(path string) error {
	return os.WriteFile(path, []byte(r.Render()), 0o644)
}
