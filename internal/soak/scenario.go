// Package soak is the long-soak chaos harness: it drives the simulated and
// live clusters for sustained durations under randomized, scheduled
// adversarial phases — partitions and heals, oscillating partitions,
// crash/restart, flash-crowd joins, churn storms, stale-WAL resurrection,
// and wrapped-epoch/corrupted-counter injection — with the executable
// specification suite (internal/spec) attached throughout.
//
// A run is driven by a single seeded PRNG: the weighted scenario picks the
// phase sequence, and every phase draws its parameters (victims, splits,
// burst sizes, dwell times) from the same stream, so the whole chaos
// schedule replays deterministically from the logged seed. On any
// invariant violation the run's Report carries the replay seed, the chaos
// schedule up to the failure, and the reconfiguration trace timeline of
// the implicated attempts (internal/obs).
package soak

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// PhaseKind names one adversarial phase of a soak schedule.
type PhaseKind string

// The scenario phase vocabulary.
const (
	// PhaseTraffic runs plain application multicast rounds.
	PhaseTraffic PhaseKind = "traffic"
	// PhaseViewRace commits a membership change while traffic and earlier
	// changes are still in flight (sim only).
	PhaseViewRace PhaseKind = "view-race"
	// PhasePartitionHeal splits the deployment in two, lets each side
	// stabilize, then heals and re-merges.
	PhasePartitionHeal PhaseKind = "partition-heal"
	// PhaseOscillate flips a partition open and closed several times
	// faster than the system stabilizes, then heals.
	PhaseOscillate PhaseKind = "oscillate"
	// PhaseCrashRestart crashes a process (sim) or kills and restarts a
	// server from its durable state (live).
	PhaseCrashRestart PhaseKind = "crash-restart"
	// PhaseFlashCrowd joins a large batch of new clients in one instant.
	PhaseFlashCrowd PhaseKind = "flash-crowd"
	// PhaseChurn detaches a random batch of clients and joins fresh ones.
	PhaseChurn PhaseKind = "churn"
	// PhaseStaleResurrect restarts a server from an old snapshot/WAL
	// generation, resurrecting stale identifier state.
	PhaseStaleResurrect PhaseKind = "stale-resurrect"
	// PhaseCorruptCounter injects a corrupted (huge or epoch-wrapped)
	// identifier record and lets the protocol absorb it.
	PhaseCorruptCounter PhaseKind = "corrupt-counter"
	// PhaseWALScramble kills a server, rewrites its durable state with
	// adversarially random bytes — record-boundary-aware or blind — and
	// restarts it through the fsck/repair path (live only).
	PhaseWALScramble PhaseKind = "wal-scramble"
	// PhaseStateScramble injects adversarially random identifier records
	// straight into a running server's retained state, exercising the
	// sanitizer's arbitrary-state convergence without a restart.
	PhaseStateScramble PhaseKind = "state-scramble"
	// PhaseClientScramble scrambles a live client's in-memory identifier
	// watermarks (cid, view id, last start-change) with adversarially random
	// values, exercising the client half of arbitrary-state convergence:
	// self-clamping, the attach-claim re-float, and the notification filter
	// (live only).
	PhaseClientScramble PhaseKind = "client-scramble"
	// PhaseFlappingLink rapidly blocks and unblocks one server-server link,
	// faster than an undamped detector stabilizes; flap damping must
	// converge the verdict instead of installing a view per flip.
	PhaseFlappingLink PhaseKind = "flapping-link"
	// PhaseReshardGroup re-homes a random shard onto a new replica group
	// (paired reconfigurations with transitional-set state handoff), with
	// traffic interleaved between the reshard's steps (shard only).
	PhaseReshardGroup PhaseKind = "reshard-group"
	// PhaseReshardSlots moves a random slot range between two shards
	// (snapshot, chunked install, marker-gated cutover, prune), with traffic
	// interleaved between the reshard's steps (shard only).
	PhaseReshardSlots PhaseKind = "reshard-slots"
	// PhaseReshardChurn runs a reshard with chaos — crash/recover and
	// partition/heal — injected between its steps, so handoffs must survive
	// (or cleanly abort under) mid-flight failures (shard only).
	PhaseReshardChurn PhaseKind = "reshard-churn"
	// PhaseGrayFailure blocks exactly one direction of a server-server link
	// — a gray failure one side cannot see directly. Reachability-bitmap
	// reconciliation must converge both sides (and every third party) on
	// one symmetric reconfiguration (live only; the simulated world drives
	// detector verdicts directly, with no heartbeats to piggyback on).
	PhaseGrayFailure PhaseKind = "gray-failure"
)

// Weight gives one phase kind a relative selection weight.
type Weight struct {
	Kind   PhaseKind
	Weight int
}

// Scenario is a weighted phase mix — the DSL a soak run is scheduled from.
type Scenario struct {
	Name    string
	Weights []Weight
}

// pick draws the next phase kind from the weighted mix.
func (sc *Scenario) pick(rng *rand.Rand) PhaseKind {
	total := 0
	for _, w := range sc.Weights {
		if w.Weight > 0 {
			total += w.Weight
		}
	}
	if total == 0 {
		return PhaseTraffic
	}
	n := rng.Intn(total)
	for _, w := range sc.Weights {
		if w.Weight <= 0 {
			continue
		}
		if n < w.Weight {
			return w.Kind
		}
		n -= w.Weight
	}
	return sc.Weights[len(sc.Weights)-1].Kind
}

// validate checks the mix is usable with the runner's supported kinds.
func (sc *Scenario) validate(supported map[PhaseKind]bool) error {
	if len(sc.Weights) == 0 {
		return fmt.Errorf("soak: scenario %q has no phases", sc.Name)
	}
	for _, w := range sc.Weights {
		if !supported[w.Kind] {
			return fmt.Errorf("soak: scenario %q: phase %q is not supported by this runner", sc.Name, w.Kind)
		}
	}
	return nil
}

// SimScenario is the default mix for the GCS-cluster simulation soak:
// racing view changes, partitions, oscillation, and crash/recovery over
// continuous traffic.
func SimScenario() *Scenario {
	return &Scenario{
		Name: "sim-default",
		Weights: []Weight{
			{PhaseTraffic, 4},
			{PhaseViewRace, 3},
			{PhasePartitionHeal, 2},
			{PhaseOscillate, 1},
			{PhaseCrashRestart, 2},
		},
	}
}

// WorldScenario is the default mix for the large-population client-server
// simulation soak: flash crowds, churn storms, server partitions,
// oscillation, and corrupted-counter resurrection.
func WorldScenario() *Scenario {
	return &Scenario{
		Name: "world-default",
		Weights: []Weight{
			{PhaseFlashCrowd, 3},
			{PhaseChurn, 3},
			{PhasePartitionHeal, 2},
			{PhaseOscillate, 1},
			{PhaseFlappingLink, 1},
			{PhaseCorruptCounter, 2},
			{PhaseStateScramble, 2},
		},
	}
}

// LiveScenario is the default mix for the live TCP deployment soak.
func LiveScenario() *Scenario {
	return &Scenario{
		Name: "live-default",
		Weights: []Weight{
			{PhaseTraffic, 4},
			{PhasePartitionHeal, 3},
			{PhaseOscillate, 2},
			{PhaseFlappingLink, 2},
			{PhaseGrayFailure, 2},
			{PhaseCrashRestart, 3},
			{PhaseFlashCrowd, 2},
			{PhaseStaleResurrect, 2},
			{PhaseCorruptCounter, 2},
			{PhaseWALScramble, 2},
			{PhaseStateScramble, 2},
			{PhaseClientScramble, 2},
		},
	}
}

// LiveArbitraryScenario concentrates the live soak on the self-stabilizing
// recovery paths: every phase leaves a server holding state no correct
// execution produces — scrambled WAL bytes, scrambled in-memory records,
// stale generations, corrupted counters — with just enough traffic to prove
// the data path survives each convergence.
func LiveArbitraryScenario() *Scenario {
	return &Scenario{
		Name: "live-arbitrary",
		Weights: []Weight{
			{PhaseTraffic, 2},
			{PhaseWALScramble, 4},
			{PhaseStateScramble, 4},
			{PhaseClientScramble, 4},
			{PhaseStaleResurrect, 2},
			{PhaseCorruptCounter, 2},
			{PhaseCrashRestart, 1},
		},
	}
}

// LiveDetectorScenario concentrates the live soak on the adaptive failure
// detector: flapping links that must be damped, gray failures that must be
// reconciled symmetrically, and just enough clean partitions and traffic to
// prove the detector still converges the easy cases. Runs of this scenario
// additionally hold the trace to the bounded-churn property
// (spec.CheckChurn) over the run's chaos transitions.
func LiveDetectorScenario() *Scenario {
	return &Scenario{
		Name: "live-detector",
		Weights: []Weight{
			{PhaseTraffic, 2},
			{PhaseFlappingLink, 4},
			{PhaseGrayFailure, 4},
			{PhasePartitionHeal, 1},
		},
	}
}

// WorldArbitraryScenario is the arbitrary-state mix for the large-population
// simulation: scrambled and corrupted identifier records under churn.
func WorldArbitraryScenario() *Scenario {
	return &Scenario{
		Name: "world-arbitrary",
		Weights: []Weight{
			{PhaseFlashCrowd, 1},
			{PhaseChurn, 2},
			{PhaseStateScramble, 4},
			{PhaseCorruptCounter, 3},
		},
	}
}

// ShardScenario is the default mix for the sharded-KV soak: client traffic
// over both reshard kinds, partitions, and crash/recovery.
func ShardScenario() *Scenario {
	return &Scenario{
		Name: "shard-default",
		Weights: []Weight{
			{PhaseTraffic, 4},
			{PhaseReshardGroup, 2},
			{PhaseReshardSlots, 2},
			{PhasePartitionHeal, 2},
			{PhaseCrashRestart, 2},
		},
	}
}

// ReshardUnderChurnScenario concentrates the sharded-KV soak on handoffs
// with failures injected between their steps: most phases are mid-reshard
// chaos, with enough plain traffic and standalone faults to keep the
// acknowledgment ledger growing between handoffs.
func ReshardUnderChurnScenario() *Scenario {
	return &Scenario{
		Name: "reshard-under-churn",
		Weights: []Weight{
			{PhaseTraffic, 2},
			{PhaseReshardChurn, 4},
			{PhasePartitionHeal, 1},
			{PhaseCrashRestart, 1},
		},
	}
}

// ScenarioByName resolves a named scenario ("sim-default", "world-default",
// "live-default", "live-arbitrary", "live-detector", "world-arbitrary",
// "shard-default", "reshard-under-churn"), for the -scenario CLI flag.
func ScenarioByName(name string) (*Scenario, error) {
	for _, sc := range []*Scenario{SimScenario(), WorldScenario(), LiveScenario(), LiveArbitraryScenario(), LiveDetectorScenario(), WorldArbitraryScenario(), ShardScenario(), ReshardUnderChurnScenario()} {
		if sc.Name == name {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("soak: unknown scenario %q", name)
}

// Step is one executed phase of a soak run's chaos schedule.
type Step struct {
	// Index numbers the step from 1.
	Index int
	// At is the run clock when the phase started — virtual time for
	// simulation soaks, wall time since start for live soaks.
	At time.Duration
	// Kind is the phase kind.
	Kind PhaseKind
	// Detail records the drawn parameters (victims, splits, burst sizes).
	Detail string
}

func (s Step) String() string {
	return fmt.Sprintf("#%02d +%-10v %-15s %s", s.Index, s.At.Round(time.Millisecond), s.Kind, s.Detail)
}

// Schedule is the executed chaos schedule of one soak run, recorded as the
// run unfolds so a violation report can show everything the adversary did
// up to the failure.
type Schedule struct {
	Scenario string
	Seed     int64
	Steps    []Step
}

// Note appends one executed step at the given run clock.
func (s *Schedule) Note(at time.Duration, kind PhaseKind, format string, args ...any) {
	s.Steps = append(s.Steps, Step{
		Index:  len(s.Steps) + 1,
		At:     at,
		Kind:   kind,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Render formats the schedule, one step per line.
func (s *Schedule) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s, seed %d, %d steps\n", s.Scenario, s.Seed, len(s.Steps))
	for _, st := range s.Steps {
		fmt.Fprintf(&b, "%s\n", st)
	}
	return b.String()
}
