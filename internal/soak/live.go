package soak

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/live"
	"vsgm/internal/membership"
	"vsgm/internal/obs"
	"vsgm/internal/spec"
	"vsgm/internal/types"
	"vsgm/internal/wire"
)

// LiveConfig parameterizes the live-cluster soak: membership servers and
// client nodes on real TCP loopback sockets, file-backed server state, and
// scripted kill/restart/partition orchestration under the full spec suite.
type LiveConfig struct {
	// Duration is the wall-clock budget for the phase loop; default 20s.
	Duration time.Duration
	// Seed drives the entire schedule.
	Seed int64
	// Servers is the number of membership servers; default 3 (min 2).
	Servers int
	// Clients is the number of client nodes; default 6.
	Clients int
	// StateRoot is where per-server file stores live; default a temp dir
	// (removed on success, kept on violation for post-mortems).
	StateRoot string
	// ConvergeTimeout bounds every stabilization wait; default 15s. A wait
	// that times out is reported as a (liveness) violation.
	ConvergeTimeout time.Duration
	// Scenario is the phase mix; default LiveScenario().
	Scenario *Scenario
	// Detector tunes the servers' failure detectors. The zero value selects
	// the adaptive engine with its defaults; set Mode to
	// membership.DetectorFixed for the legacy binary timeout.
	Detector membership.DetectorConfig
	// ChurnBudget bounds how many membership views one client may install
	// per chaos transition over the whole run (spec.CheckChurn; every block,
	// heal, kill, restart, or injection is one transition). 0 selects
	// liveChurnBudget; negative disables the check.
	ChurnBudget int
	// ForceViolation injects a fabricated violation at the end of the run.
	ForceViolation bool
	// Log receives progress lines; nil discards them.
	Log func(format string, args ...any)
}

var liveSupported = map[PhaseKind]bool{
	PhaseTraffic:        true,
	PhasePartitionHeal:  true,
	PhaseOscillate:      true,
	PhaseFlappingLink:   true,
	PhaseGrayFailure:    true,
	PhaseCrashRestart:   true,
	PhaseFlashCrowd:     true,
	PhaseStaleResurrect: true,
	PhaseCorruptCounter: true,
	PhaseWALScramble:    true,
	PhaseStateScramble:  true,
	PhaseClientScramble: true,
}

// liveConvergeBudget bounds how many misaligned membership views one client
// may install after the final heal before the run is a convergence
// violation. Live re-homing storms legitimately deliver a handful of
// partial views while the detectors re-admit everyone; the budget asserts
// boundedness, not a tight constant.
const liveConvergeBudget = 32

// liveChurnBudget is the default CheckChurn allowance: membership views one
// client may install per chaos transition across the whole run. Live
// re-homing legitimately installs a handful of views per transition; an
// undamped detector on a flapping link installs them without bound.
const liveChurnBudget = 16

// violationError marks a phase failure that is a property of the system
// under test (a stabilization that never converged, a send that never
// unblocked) rather than of the harness.
type violationError struct{ msg string }

func (e violationError) Error() string { return e.msg }

func violationf(format string, args ...any) error {
	return violationError{msg: fmt.Sprintf(format, args...)}
}

// soakTransport mirrors the live package's test transport: timeouts shrunk
// so fault injection reconnects in soak time, not production time.
func soakTransport() live.TransportConfig {
	return live.TransportConfig{
		DialTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
		BackoffBase:  10 * time.Millisecond,
		BackoffMax:   250 * time.Millisecond,
	}
}

const (
	liveWatchdog       = 25 * time.Millisecond
	liveAttachInterval = 40 * time.Millisecond
	liveAttachTimeout  = 250 * time.Millisecond
	// liveAttachLease is 25 keepalive intervals: far past any chaos-induced
	// keepalive gap, yet well inside the converge timeout, so a crowd
	// straggler whose attach landed after its node closed is evicted before
	// the next phase's full-view wait gives up.
	liveAttachLease = time.Second
	liveHBInterval  = 20 * time.Millisecond
	liveHBTimeout   = 150 * time.Millisecond
)

type liveRun struct {
	cfg       LiveConfig
	rng       *rand.Rand
	sched     *Schedule
	start     time.Time
	serverIDs []types.ProcID
	serverSet types.ProcSet
	servers   map[types.ProcID]*live.ServerNode
	clients   map[types.ProcID]*live.Node
	stateDirs map[types.ProcID]string
	tracer    *obs.Tracer
	crowdSeq  int
	clientSeq int // distinct MsgIDBase per node ever created, survivors and crowds alike

	// transitions counts the adversary's reachability/state flips (each
	// block, heal, kill, restart, and injection is one) — the denominator
	// of the bounded-churn check.
	transitions int
	// detStats accumulates detector counters of servers that were killed,
	// so end-of-run totals survive restarts replacing the nodes.
	detStats membership.DetectorStats

	// Collector state: the synchronous Observe/ObserveNotify/OnSend hooks of
	// every node funnel here, serialized by mu (as in the live test world).
	mu    sync.Mutex
	suite *spec.Suite
	dlvrs map[types.ProcID]int
}

// RunLive executes the live-cluster soak and returns its report.
func RunLive(cfg LiveConfig) (*Report, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 20 * time.Second
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 3
	}
	if cfg.Servers < 2 {
		return nil, fmt.Errorf("soak: live needs at least 2 servers, got %d", cfg.Servers)
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 6
	}
	if cfg.ConvergeTimeout <= 0 {
		cfg.ConvergeTimeout = 15 * time.Second
	}
	if cfg.Scenario == nil {
		cfg.Scenario = LiveScenario()
	}
	if cfg.ChurnBudget == 0 {
		cfg.ChurnBudget = liveChurnBudget
	}
	if err := cfg.Scenario.validate(liveSupported); err != nil {
		return nil, err
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	removeState := false
	if cfg.StateRoot == "" {
		dir, err := os.MkdirTemp("", "vsgm-soak-live-*")
		if err != nil {
			return nil, err
		}
		cfg.StateRoot = dir
		removeState = true
	}

	r := &liveRun{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		sched:     &Schedule{Scenario: cfg.Scenario.Name, Seed: cfg.Seed},
		servers:   make(map[types.ProcID]*live.ServerNode),
		clients:   make(map[types.ProcID]*live.Node),
		stateDirs: make(map[types.ProcID]string),
		tracer:    obs.NewTracer(obs.NewRegistry()),
		suite:     spec.FullSuite(spec.WithTrace()),
		dlvrs:     make(map[types.ProcID]int),
	}
	report := &Report{Mode: "live", Seed: cfg.Seed, Schedule: r.sched, SampleEvery: 1}
	defer r.closeAll()

	if err := r.boot(); err != nil {
		return nil, err
	}
	r.start = time.Now()
	if err := r.waitFullView("initial full view", 0); err != nil {
		return nil, fmt.Errorf("soak: live cluster never booted: %w", err)
	}

	var phaseErr error
	for time.Since(r.start) < cfg.Duration {
		kind := cfg.Scenario.pick(r.rng)
		if phaseErr = r.phase(kind); phaseErr != nil {
			break
		}
		if verr := r.specErr(); verr != nil {
			phaseErr = violationf("spec violation after %s phase: %v", kind, verr)
			break
		}
		cfg.Log("live soak: step %d (%s) done, %v elapsed",
			len(r.sched.Steps), kind, time.Since(r.start).Round(time.Millisecond))
	}
	var verr violationError
	if phaseErr != nil && !errors.As(phaseErr, &verr) {
		return nil, phaseErr
	}
	if phaseErr == nil {
		// Final stabilization: heal everything and run one more round, then
		// hold the run to the bounded-convergence property from the heal mark
		// and the bounded-churn property over the whole run.
		r.healAll()
		r.transitions++
		r.mu.Lock()
		mark := len(r.suite.Trace())
		r.mu.Unlock()
		if err := r.waitFullView("final full view", 0); err != nil {
			phaseErr = err
		} else if err := r.trafficRound("final"); err != nil {
			phaseErr = err
		} else {
			all := r.clientSet()
			r.mu.Lock()
			cerr := spec.CheckConvergence(r.suite.Trace(), mark, all, all, liveConvergeBudget)
			if cerr == nil && cfg.ChurnBudget > 0 {
				cerr = spec.CheckChurn(r.suite.Trace(), 0, r.transitions, cfg.ChurnBudget, all)
			}
			r.mu.Unlock()
			if cerr != nil {
				phaseErr = violationf("%v", cerr)
			}
		}
	}

	if cfg.ForceViolation {
		victim := r.clientIDs()[0]
		r.sched.Note(time.Since(r.start), PhaseKind("forced-violation"), "injected regressing membership view at %s", victim)
		r.mu.Lock()
		injectForcedViolation(r.suite, victim)
		r.mu.Unlock()
	}

	if phaseErr != nil {
		report.violate(phaseErr)
	}
	report.violate(r.specErr())
	report.Population = len(r.clients)
	report.ChaosTransitions = r.transitions
	det := r.detStats
	for _, sn := range r.servers {
		st := sn.DetectorStats()
		det.Flaps += st.Flaps
		det.Quarantines += st.Quarantines
		det.GrayDowngrades += st.GrayDowngrades
	}
	report.DetectorFlaps = det.Flaps
	report.DetectorQuarantines = det.Quarantines
	report.DetectorGrayDrops = det.GrayDowngrades
	r.mu.Lock()
	report.EventsSeen, report.EventsChecked = r.suite.SampleStats()
	r.mu.Unlock()
	report.Elapsed = time.Since(r.start)
	if !report.OK() {
		report.Timeline = r.tracer.TimelineString()
	} else if removeState {
		defer os.RemoveAll(cfg.StateRoot)
	}
	return report, nil
}

// boot builds the deployment: file-backed servers, attach-protocol clients
// with rotated home lists, spec collection on every node, heartbeats on.
func (r *liveRun) boot() error {
	r.serverIDs = make([]types.ProcID, r.cfg.Servers)
	for i := range r.serverIDs {
		r.serverIDs[i] = types.ProcID(fmt.Sprintf("srv%d", i))
	}
	r.serverSet = types.NewProcSet(r.serverIDs...)

	for _, sid := range r.serverIDs {
		dir := filepath.Join(r.cfg.StateRoot, string(sid))
		r.stateDirs[sid] = dir
		sn, err := r.newServer(sid, "127.0.0.1:0", dir)
		if err != nil {
			return err
		}
		r.servers[sid] = sn
	}
	for i := 0; i < r.cfg.Clients; i++ {
		cid := types.ProcID(fmt.Sprintf("cli%d", i))
		node, err := r.newClient(cid, i)
		if err != nil {
			return err
		}
		r.clients[cid] = node
	}
	r.setPeersEverywhere()
	for _, sn := range r.servers {
		sn.SetReachable(r.serverSet)
		sn.StartHeartbeats(r.serverSet, liveHBInterval, liveHBTimeout)
	}
	return nil
}

func (r *liveRun) newServer(sid types.ProcID, addr, stateDir string) (*live.ServerNode, error) {
	store, err := live.NewFileStore(stateDir)
	if err != nil {
		return nil, err
	}
	sn, err := live.NewServerNode(live.ServerConfig{
		ID:          sid,
		Addr:        addr,
		Servers:     r.serverSet,
		Store:       store,
		Watchdog:    liveWatchdog,
		AttachLease: liveAttachLease,
		Transport:   soakTransport(),
		Detector:    r.cfg.Detector,
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	return sn, nil
}

func (r *liveRun) newClient(cid types.ProcID, rotate int) (*live.Node, error) {
	homeList := make([]types.ProcID, len(r.serverIDs))
	for j := range homeList {
		homeList[j] = r.serverIDs[(rotate+j)%len(r.serverIDs)]
	}
	r.clientSeq++
	return live.NewNode(live.NodeConfig{
		ID:             cid,
		Addr:           "127.0.0.1:0",
		AutoBlock:      true,
		MsgIDBase:      int64(r.clientSeq) * 1_000_000,
		HomeServers:    homeList,
		AttachInterval: liveAttachInterval,
		AttachTimeout:  liveAttachTimeout,
		Transport:      soakTransport(),
		Tracer:         r.tracer,
		Observe:        func(ev core.Event) { r.onEvent(cid, ev) },
		OnSend:         func(m types.AppMsg) { r.onSend(cid, m.ID) },
		ObserveNotify:  func(n membership.Notification) { r.onNotify(cid, n) },
	})
}

func (r *liveRun) onEvent(p types.ProcID, ev core.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch e := ev.(type) {
	case core.DeliverEvent:
		r.dlvrs[p]++
		r.suite.OnEvent(spec.EDeliver{P: p, From: e.Sender, MsgID: e.Msg.ID})
	case core.ViewEvent:
		r.suite.OnEvent(spec.EView{P: p, View: e.View, Trans: e.TransitionalSet, HasTrans: true})
	case core.BlockEvent:
		r.suite.OnEvent(spec.EBlock{P: p})
		r.suite.OnEvent(spec.EBlockOK{P: p})
	}
}

func (r *liveRun) onNotify(p types.ProcID, n membership.Notification) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch n.Kind {
	case membership.NotifyStartChange:
		r.suite.OnEvent(spec.EMStartChange{P: p, SC: n.StartChange})
	case membership.NotifyView:
		r.suite.OnEvent(spec.EMView{P: p, View: n.View})
	}
}

func (r *liveRun) onSend(p types.ProcID, id int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.suite.OnEvent(spec.ESend{P: p, MsgID: id})
}

func (r *liveRun) specErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.suite.Err()
}

func (r *liveRun) deliveredSnapshot() map[types.ProcID]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[types.ProcID]int, len(r.dlvrs))
	for k, v := range r.dlvrs {
		out[k] = v
	}
	return out
}

func (r *liveRun) clientIDs() []types.ProcID {
	out := make([]types.ProcID, 0, len(r.clients))
	for cid := range r.clients {
		out = append(out, cid)
	}
	set := types.NewProcSet(out...)
	return set.Sorted()
}

func (r *liveRun) clientSet() types.ProcSet {
	s := types.NewProcSet()
	for cid := range r.clients {
		s.Add(cid)
	}
	return s
}

func (r *liveRun) setPeersEverywhere() {
	dir := make(map[types.ProcID]string)
	for sid, sn := range r.servers {
		dir[sid] = sn.Addr()
	}
	for cid, node := range r.clients {
		dir[cid] = node.Addr()
	}
	for _, sn := range r.servers {
		sn.SetPeers(dir)
	}
	for _, node := range r.clients {
		node.SetPeers(dir)
	}
}

func (r *liveRun) maxViewID() types.ViewID {
	var max types.ViewID
	for _, node := range r.clients {
		if v := node.CurrentView().ID; v > max {
			max = v
		}
	}
	return max
}

// waitFor polls cond until it holds or the converge timeout passes; a
// timeout is a liveness violation of the deployment.
func (r *liveRun) waitFor(what string, cond func() bool) error {
	deadline := time.Now().Add(r.cfg.ConvergeTimeout)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return violationf("timed out after %v waiting for %s", r.cfg.ConvergeTimeout, what)
}

// waitFullView waits until every client is attached and has installed a
// view over the full client population with an id above floor. On timeout
// the violation carries each client's home and view so the report shows
// who was stuck, not just that someone was.
func (r *liveRun) waitFullView(what string, floor types.ViewID) error {
	all := r.clientSet()
	err := r.waitFor(what, func() bool {
		for _, node := range r.clients {
			if node.Home() == "" {
				return false
			}
			v := node.CurrentView()
			if v.ID <= floor || !v.Members.Equal(all) {
				return false
			}
		}
		return true
	})
	if err != nil {
		var b strings.Builder
		for _, cid := range r.clientIDs() {
			node := r.clients[cid]
			v := node.CurrentView()
			fmt.Fprintf(&b, " %s[home=%s vid=%d members=%d]", cid, node.Home(), v.ID, v.Members.Len())
		}
		for _, sid := range r.serverIDs {
			sn := r.servers[sid]
			st := sn.Stats()
			fmt.Fprintf(&b, " %s[reach=%s clients=%d attempts=%d views=%d repro=%d evict=%d]",
				sid, sn.Reachable(), len(st.Clients), st.AttemptsRun, st.ViewsDelivered, st.Reproposals, st.Evictions)
		}
		return violationf("%v (floor %d, want %d members);%s", err, floor, all.Len(), b.String())
	}
	return nil
}

// sendRetry multicasts from cid, retrying through transient block windows.
func (r *liveRun) sendRetry(cid types.ProcID, payload string) error {
	node := r.clients[cid]
	deadline := time.Now().Add(r.cfg.ConvergeTimeout)
	for time.Now().Before(deadline) {
		_, err := node.Send([]byte(payload))
		if err == nil {
			return nil
		}
		if err != core.ErrBlocked {
			return violationf("send from %s failed: %v", cid, err)
		}
		time.Sleep(3 * time.Millisecond)
	}
	return violationf("send from %s still blocked after %v", cid, r.cfg.ConvergeTimeout)
}

// commonView waits until every client has installed the same view over the
// full population — the precondition for a within-view traffic round.
func (r *liveRun) commonView(deadline time.Time) error {
	all := r.clientSet()
	for time.Now().Before(deadline) {
		key := ""
		agree := len(r.clients) > 0
		for _, node := range r.clients {
			v := node.CurrentView()
			if !v.Members.Equal(all) {
				agree = false
				break
			}
			if key == "" {
				key = v.Key()
			} else if v.Key() != key {
				agree = false
				break
			}
		}
		if agree {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return violationf("clients never agreed on one full view")
}

// trafficRound has every client multicast once and waits until everyone has
// delivered the whole round. Messages are delivered within the view they
// were sent in, so a reconfiguration still draining from the previous chaos
// phase can legally erase a round for a client that did not move directly
// between views — that is correct virtual synchrony, not a violation. Each
// attempt therefore first waits for all clients to agree on one full view,
// sends, and gives the deliveries a bounded window; the round is retried
// until the converge timeout expires.
func (r *liveRun) trafficRound(tag string) error {
	deadline := time.Now().Add(r.cfg.ConvergeTimeout)
	for {
		if err := r.commonView(deadline); err != nil {
			return violationf("%s traffic round: %v", tag, err)
		}
		base := r.deliveredSnapshot()
		ids := r.clientIDs()
		for _, cid := range ids {
			if err := r.sendRetry(cid, tag+"-"+string(cid)); err != nil {
				return err
			}
		}
		n := len(ids)
		window := time.Now().Add(2 * time.Second)
		if window.After(deadline) {
			window = deadline
		}
		for time.Now().Before(window) {
			snap := r.deliveredSnapshot()
			done := true
			for _, cid := range ids {
				if snap[cid]-base[cid] < n {
					done = false
					break
				}
			}
			if done {
				return nil
			}
			time.Sleep(5 * time.Millisecond)
		}
		if !time.Now().Before(deadline) {
			return violationf("%s traffic not delivered everywhere within %v", tag, r.cfg.ConvergeTimeout)
		}
	}
}

// chaosOf returns every node's chaos controller.
func (r *liveRun) chaosOf() map[types.ProcID]*live.Chaos {
	out := make(map[types.ProcID]*live.Chaos)
	for sid, sn := range r.servers {
		out[sid] = sn.Chaos()
	}
	for cid, node := range r.clients {
		out[cid] = node.Chaos()
	}
	return out
}

// partitionComponents blocks outbound traffic between components, where
// each component is a server group plus the clients currently homed at it
// (unattached clients ride with the first group).
func (r *liveRun) partitionComponents(groups ...types.ProcSet) []types.ProcSet {
	comps := make([]types.ProcSet, len(groups))
	for i, g := range groups {
		comps[i] = g.Clone()
	}
	for cid, node := range r.clients {
		placed := false
		for i, g := range groups {
			if g.Contains(node.Home()) {
				comps[i].Add(cid)
				placed = true
				break
			}
		}
		if !placed {
			comps[0].Add(cid)
		}
	}
	all := types.NewProcSet()
	for _, comp := range comps {
		for p := range comp {
			all.Add(p)
		}
	}
	chaos := r.chaosOf()
	for _, comp := range comps {
		outside := all.Minus(comp).Sorted()
		for p := range comp {
			if c := chaos[p]; c != nil {
				c.BlockOutbound(outside...)
			}
		}
	}
	return comps
}

// healAll lifts every chaos block on every node.
func (r *liveRun) healAll() {
	for _, c := range r.chaosOf() {
		c.Heal()
	}
}

// serverPair draws a random ordered pair of distinct servers.
func (r *liveRun) serverPair() (types.ProcID, types.ProcID) {
	i := r.rng.Intn(len(r.serverIDs))
	j := r.rng.Intn(len(r.serverIDs) - 1)
	if j >= i {
		j++
	}
	return r.serverIDs[i], r.serverIDs[j]
}

// serverSplit draws a random 2-way split of the server set.
func (r *liveRun) serverSplit() (types.ProcSet, types.ProcSet) {
	ids := append([]types.ProcID(nil), r.serverIDs...)
	r.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	mid := 1 + r.rng.Intn(len(ids)-1)
	return types.NewProcSet(ids[:mid]...), types.NewProcSet(ids[mid:]...)
}

// waitServersIntegrated waits until every server's failure detector has
// re-admitted every other server. Kill phases must start from this state:
// killing a server the survivors never re-admitted (because the previous
// phase restarted it milliseconds ago) causes no reachability transition,
// so no new view is owed and a floor-based expectation would wedge.
func (r *liveRun) waitServersIntegrated() error {
	return r.waitFor("all servers mutually re-admitted", func() bool {
		for _, sn := range r.servers {
			if !sn.Reachable().Equal(r.serverSet) {
				return false
			}
		}
		return true
	})
}

// retire banks a server's detector counters and closes it, so end-of-run
// detector totals survive the restart replacing the node.
func (r *liveRun) retire(sn *live.ServerNode) {
	st := sn.DetectorStats()
	r.detStats.Flaps += st.Flaps
	r.detStats.Quarantines += st.Quarantines
	r.detStats.GrayDowngrades += st.GrayDowngrades
	sn.Close()
}

// restartServer rebuilds a killed server on its old address from whatever
// its state directory now holds, rejoining heartbeats and the peer
// directory.
func (r *liveRun) restartServer(sid types.ProcID, addr string) error {
	sn, err := r.newServer(sid, addr, r.stateDirs[sid])
	if err != nil {
		return err
	}
	r.servers[sid] = sn
	r.setPeersEverywhere()
	sn.SetReachable(r.serverSet)
	sn.StartHeartbeats(r.serverSet, liveHBInterval, liveHBTimeout)
	return nil
}

func (r *liveRun) closeAll() {
	for _, node := range r.clients {
		node.Close()
	}
	for _, sn := range r.servers {
		sn.Close()
	}
}

func (r *liveRun) phase(kind PhaseKind) error {
	at := time.Since(r.start)
	switch kind {
	case PhaseTraffic:
		r.sched.Note(at, kind, "full multicast round from all %d clients", len(r.clients))
		return r.trafficRound(fmt.Sprintf("t%d", len(r.sched.Steps)))

	case PhasePartitionHeal:
		left, right := r.serverSplit()
		r.sched.Note(at, kind, "split %s | %s, stabilize both sides, heal", left, right)
		r.transitions += 2 // the split and the heal
		comps := r.partitionComponents(left, right)
		// Each side settles on a view over exactly its own clients.
		if err := r.waitFor("both sides of the partition stabilize", func() bool {
			for i := range comps {
				side := types.NewProcSet()
				for p := range comps[i] {
					if _, isClient := r.clients[p]; isClient {
						side.Add(p)
					}
				}
				for p := range side {
					if !r.clients[p].CurrentView().Members.Equal(side) {
						return false
					}
				}
			}
			return true
		}); err != nil {
			return err
		}
		r.healAll()
		// Floor 0, not the pre-partition view id: if every client happened to
		// be homed on one side, the split was vacuous — no view ever shrank,
		// detectors may not even fire before the heal — and no new view is
		// owed. A full-membership view at every client IS the merge.
		return r.waitFullView("merged view after heal", 0)

	case PhaseOscillate:
		left, right := r.serverSplit()
		flips := 2 + r.rng.Intn(3)
		r.sched.Note(at, kind, "%d rapid flips of %s | %s", flips, left, right)
		r.transitions += 2 * flips
		for i := 0; i < flips; i++ {
			r.partitionComponents(left, right)
			time.Sleep(time.Duration(50+r.rng.Intn(150)) * time.Millisecond)
			r.healAll()
			time.Sleep(time.Duration(50+r.rng.Intn(100)) * time.Millisecond)
		}
		return r.waitFullView("full view after oscillation", 0)

	case PhaseCrashRestart:
		sid := r.serverIDs[r.rng.Intn(len(r.serverIDs))]
		sn := r.servers[sid]
		addr := sn.Addr()
		// The kill only owes the survivors a new view if the victim was
		// integrated when it died.
		if err := r.waitServersIntegrated(); err != nil {
			return err
		}
		floor := r.maxViewID()
		r.sched.Note(at, kind, "kill %s, converge on survivors, restart it from its store", sid)
		r.transitions += 2 // the kill and the restart
		r.retire(sn)
		if err := r.waitFor("orphans of "+string(sid)+" re-home at survivors", func() bool {
			for _, node := range r.clients {
				if h := node.Home(); h == "" || h == sid {
					return false
				}
			}
			return true
		}); err != nil {
			return err
		}
		if err := r.waitFullView("survivors reinstall the full view", floor); err != nil {
			return err
		}
		if err := r.restartServer(sid, addr); err != nil {
			return err
		}
		return r.waitFullView("cluster stable after restart", 0)

	case PhaseFlashCrowd:
		n := 3 + r.rng.Intn(3)
		fresh := make([]types.ProcID, n)
		for i := range fresh {
			fresh[i] = types.ProcID(fmt.Sprintf("flash%d", r.crowdSeq))
			r.crowdSeq++
		}
		r.sched.Note(at, kind, "%d clients join in one burst, one round of traffic, then leave", n)
		r.transitions += 2 // the burst admission and the departure
		// The whole phase leans on floor-based waits, and its reconfigurations
		// (burst admission, departure shrink) may be triggered at any one
		// server: they reach clients homed elsewhere only if the servers are
		// mutually re-admitted after whatever restarts preceded this phase.
		// Nothing below kills a server, so integration holds throughout.
		if err := r.waitServersIntegrated(); err != nil {
			return err
		}
		floor := r.maxViewID()
		for i, cid := range fresh {
			node, err := r.newClient(cid, r.rng.Intn(len(r.serverIDs))+i)
			if err != nil {
				return err
			}
			r.clients[cid] = node
		}
		r.setPeersEverywhere()
		if err := r.waitFullView("burst admitted into one view", floor); err != nil {
			return err
		}
		if err := r.trafficRound("flash"); err != nil {
			return err
		}
		// Departure: close each crowd node and deregister it at whichever
		// server still holds it (closing sends no detach of its own). The
		// removal must be retried until it sticks: an attach request that
		// timed out during the burst can land at a server after a one-shot
		// scan, resurrecting the registration of a closed client — whose
		// membership views would then never complete their sync round.
		floor = r.maxViewID()
		for _, cid := range fresh {
			r.clients[cid].Close()
			delete(r.clients, cid)
		}
		if err := r.waitFor("crowd deregistered at every server", func() bool {
			clean := true
			for _, sn := range r.servers {
				for _, cid := range fresh {
					if sn.Clients().Contains(cid) {
						sn.RemoveClient(cid)
						sn.Reconfigure()
						clean = false
					}
				}
			}
			return clean
		}); err != nil {
			return err
		}
		return r.waitFullView("view shrinks after the crowd departs", floor)

	case PhaseStaleResurrect:
		sid := r.serverIDs[r.rng.Intn(len(r.serverIDs))]
		sn := r.servers[sid]
		addr := sn.Addr()
		backup := filepath.Join(r.cfg.StateRoot, string(sid)+".stale")
		r.sched.Note(at, kind, "snapshot %s's store, advance identifiers, resurrect it from the stale generation", sid)
		r.transitions += 3 // the advance, the kill, the resurrection
		// Point-in-time backup of the current (soon to be stale) generation.
		if err := live.CloneStateDir(r.stateDirs[sid], backup); err != nil {
			return err
		}
		// Advance identifier state past the backup. The reconfiguring server
		// must be integrated first: an attempt run by a server its peers have
		// not re-admitted cannot install views at clients homed elsewhere.
		if err := r.waitServersIntegrated(); err != nil {
			return err
		}
		floor := r.maxViewID()
		sn.Reconfigure()
		if err := r.waitFullView("identifiers advanced past the backup", floor); err != nil {
			return err
		}
		// Kill, roll the store back to the stale generation, restart.
		r.retire(sn)
		if err := live.CloneStateDir(backup, r.stateDirs[sid]); err != nil {
			return err
		}
		if err := r.restartServer(sid, addr); err != nil {
			return err
		}
		// Epoch gossip and client-side stale-notification filtering must
		// absorb the resurrected identifiers without regressing anyone.
		if err := r.waitFor("all clients re-homed after resurrection", func() bool {
			for _, node := range r.clients {
				if node.Home() == "" {
					return false
				}
			}
			return true
		}); err != nil {
			return err
		}
		return r.waitFullView("cluster converged past the stale generation", 0)

	case PhaseCorruptCounter:
		sid := r.serverIDs[r.rng.Intn(len(r.serverIDs))]
		sn := r.servers[sid]
		addr := sn.Addr()
		locals := sn.Clients()
		victim := r.clientIDs()[r.rng.Intn(len(r.clients))]
		if locals.Len() > 0 {
			victim = locals.Sorted()[r.rng.Intn(locals.Len())]
		}
		rec := wire.WALRecord{Client: victim, CID: 1 << 40, Vid: 1 << 40, Epoch: 1 << 7}
		flavour := "huge counters"
		if r.rng.Intn(2) == 0 {
			rec = wire.WALRecord{Client: victim, CID: 7, Vid: 3, Epoch: 1 << 33}
			flavour = "wrapped epoch"
		}
		r.sched.Note(at, kind, "kill %s, append %s for %s (cid=%d vid=%d epoch=%d) to its WAL, restart",
			sid, flavour, victim, rec.CID, rec.Vid, rec.Epoch)
		r.transitions += 2 // the kill and the restart
		r.retire(sn)
		store, err := live.NewFileStore(r.stateDirs[sid])
		if err != nil {
			return err
		}
		if err := store.Append(rec); err != nil {
			store.Close()
			return err
		}
		if err := store.Close(); err != nil {
			return err
		}
		if err := r.restartServer(sid, addr); err != nil {
			return err
		}
		// The corrupted record must be absorbed monotonically: if the victim
		// re-registers here its identifiers jump above the bogus values; if
		// it settled elsewhere the record stays inert. Either way the view
		// must reconverge and the suite stay green.
		if err := r.waitFor("all clients re-homed after corruption", func() bool {
			for _, node := range r.clients {
				if node.Home() == "" {
					return false
				}
			}
			return true
		}); err != nil {
			return err
		}
		return r.waitFullView("cluster converged past the corrupted record", 0)

	case PhaseWALScramble:
		sid := r.serverIDs[r.rng.Intn(len(r.serverIDs))]
		sn := r.servers[sid]
		addr := sn.Addr()
		// The restart only re-integrates cleanly if the victim was integrated
		// when it died (same reasoning as the crash-restart phase).
		if err := r.waitServersIntegrated(); err != nil {
			return err
		}
		r.retire(sn)
		detail, err := r.scrambleStateDir(r.stateDirs[sid])
		if err != nil {
			return err
		}
		r.sched.Note(at, kind, "kill %s, %s, restart through fsck/repair", sid, detail)
		r.transitions += 2 // the kill and the restart
		if err := r.restartServer(sid, addr); err != nil {
			return err
		}
		// The fsck pass quarantined whatever the scramble destroyed; any
		// identifier state it lost must be re-floated by attach claims, and
		// the whole cluster must reconverge on one full view.
		if err := r.waitFor("all clients re-homed after WAL scramble", func() bool {
			for _, node := range r.clients {
				if node.Home() == "" {
					return false
				}
			}
			return true
		}); err != nil {
			return err
		}
		return r.waitFullView("cluster converged past the scrambled store", 0)

	case PhaseStateScramble:
		sid := r.serverIDs[r.rng.Intn(len(r.serverIDs))]
		sn := r.servers[sid]
		// The injection forces a reconfiguration at sid; it reaches clients
		// homed elsewhere only once the servers are mutually re-admitted.
		if err := r.waitServersIntegrated(); err != nil {
			return err
		}
		ids := r.clientIDs()
		n := 1 + r.rng.Intn(3)
		recs := make(map[types.ProcID]membership.ClientRecord, n)
		for i := 0; i < n; i++ {
			victim := ids[r.rng.Intn(len(ids))]
			recs[victim] = membership.ClientRecord{
				CID:   types.StartChangeID(r.rng.Uint64()),
				Vid:   types.ViewID(r.rng.Uint64()),
				Epoch: int64(r.rng.Uint64()),
			}
		}
		r.sched.Note(at, kind, "inject %d adversarially random records into %s's retained state", len(recs), sid)
		r.transitions++
		sn.InjectRecords(recs)
		return r.waitFullView("cluster converged past the scrambled records", 0)

	case PhaseClientScramble:
		ids := r.clientIDs()
		victim := ids[r.rng.Intn(len(ids))]
		node := r.clients[victim]
		// Two flavours, mirroring the server-side scramble: impossible
		// values (above the plausibility ceilings, negative) that the node
		// must self-clamp, and huge-but-possible values that must re-float
		// through the attach claim so the servers mint above them.
		var cid, sc types.StartChangeID
		var vid types.ViewID
		flavour := "impossible"
		if r.rng.Intn(2) == 0 {
			flavour = "huge-but-possible"
			cid = types.StartChangeID(int64(1+r.rng.Intn(1000)) << 32)
			vid = types.ViewID(1) << (40 + r.rng.Intn(8))
			sc = cid - types.StartChangeID(r.rng.Intn(5))
		} else {
			cid = types.StartChangeID(r.rng.Uint64())
			vid = types.ViewID(r.rng.Uint64())
			sc = types.StartChangeID(r.rng.Uint64())
		}
		r.sched.Note(at, kind, "scramble %s's in-memory identifiers with %s values (cid=%d vid=%d sc=%d)",
			victim, flavour, cid, vid, sc)
		r.transitions += 2 // the scramble and the forced reconfiguration
		node.ScrambleIdentifiers(cid, vid, sc)
		// A reconfiguration observing the poisoned watermarks reaches every
		// client only through mutually re-admitted servers; the sleep gives
		// the victim's next attach ticks time to self-clamp (impossible
		// flavour) or land the scrambled claim (huge flavour) before the
		// attempt that must out-bid it.
		if err := r.waitServersIntegrated(); err != nil {
			return err
		}
		time.Sleep(4 * liveAttachInterval)
		home := node.Home()
		sn, ok := r.servers[home]
		if !ok {
			sn = r.servers[r.serverIDs[0]]
		}
		floor := r.maxViewID()
		sn.Reconfigure()
		return r.waitFullView("cluster converged past the scrambled client", floor)

	case PhaseFlappingLink:
		a, b := r.serverPair()
		flips := 3 + r.rng.Intn(3)
		r.sched.Note(at, kind, "flap the %s<->%s link %d times (block past detection, briefly heal)", a, b, flips)
		r.transitions += 2 * flips
		// Start integrated so the first flip is a genuine verdict crossing.
		if err := r.waitServersIntegrated(); err != nil {
			return err
		}
		chaos := r.chaosOf()
		for i := 0; i < flips; i++ {
			chaos[a].BlockOutbound(b)
			chaos[b].BlockOutbound(a)
			// Long enough for accrual suspicion to fire (phi crosses the
			// suspect threshold a few hundred ms into the silence at the
			// soak's 20ms heartbeat interval)...
			time.Sleep(time.Duration(600+r.rng.Intn(250)) * time.Millisecond)
			chaos[a].Unblock(b)
			chaos[b].Unblock(a)
			// ...and short enough that the restore is a flap, not a heal.
			time.Sleep(time.Duration(100+r.rng.Intn(150)) * time.Millisecond)
		}
		// Damping is allowed to hold the verdict down well past the last
		// flip (that is the point); the converge wait absorbs the final
		// quarantine before the full view is owed.
		if err := r.waitServersIntegrated(); err != nil {
			return err
		}
		return r.waitFullView("full view after link flapping", 0)

	case PhaseGrayFailure:
		a, b := r.serverPair()
		// Break exactly one direction: b stops hearing a, while a still
		// hears b and every third party hears both.
		r.sched.Note(at, kind, "gray failure: block %s's inbound from %s, converge symmetrically, heal", b, a)
		r.transitions += 2 // the break and the heal
		if err := r.waitServersIntegrated(); err != nil {
			return err
		}
		r.servers[b].Chaos().BlockInbound(a)
		// Reconciliation must converge every server on a verdict that
		// excludes the broken pairing: b suspects a outright; a downgrades b
		// on b's bitmap (the direct rule); third parties drop the
		// lexicographically larger of the pair (the pair rule). The one
		// observable all of them share: nobody keeps both a and b.
		if err := r.waitFor("gray failure reconciled symmetrically", func() bool {
			for _, sn := range r.servers {
				reach := sn.Reachable()
				if reach.Contains(a) && reach.Contains(b) {
					return false
				}
			}
			return true
		}); err != nil {
			return err
		}
		// Hold the broken link briefly: verdicts must not oscillate once
		// reconciled (each side would livelock the one-round protocol if
		// they disagreed, and flap if they alternated).
		time.Sleep(500 * time.Millisecond)
		for _, sn := range r.servers {
			reach := sn.Reachable()
			if reach.Contains(a) && reach.Contains(b) {
				return violationf("gray-failure verdict oscillated: %s re-admitted both %s and %s over a broken link",
					sn.ID(), a, b)
			}
		}
		r.servers[b].Chaos().Unblock(a)
		if err := r.waitServersIntegrated(); err != nil {
			return err
		}
		return r.waitFullView("full view after the gray failure heals", 0)

	default:
		return fmt.Errorf("soak: live runner cannot execute phase %q", kind)
	}
}

// scrambleStateDir corrupts one of the victim's durable state files with
// adversarially random bytes drawn from the run's PRNG. Half the damage
// modes are record-boundary-aware (randomize exactly one scanned record),
// half are blind (splice, torn tail, garbage prefix) — together they cover
// both the damage a crash plausibly leaves and damage no crash would. The
// returned description goes on the chaos schedule.
func (r *liveRun) scrambleStateDir(dir string) (string, error) {
	var targets []string
	for _, name := range []string{"wal.log", "snapshot.bin"} {
		if fi, err := os.Stat(filepath.Join(dir, name)); err == nil && fi.Size() > 0 {
			targets = append(targets, name)
		}
	}
	if len(targets) == 0 {
		return "found no non-empty state files (nothing to scramble)", nil
	}
	name := targets[r.rng.Intn(len(targets))]
	path := filepath.Join(dir, name)
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	mode := r.rng.Intn(4)
	if mode == 0 {
		if scan := wire.ScanWAL(b); len(scan.Offsets) > 0 {
			i := r.rng.Intn(len(scan.Offsets))
			start := scan.Offsets[i]
			end := len(b)
			if i+1 < len(scan.Offsets) {
				end = scan.Offsets[i+1]
			}
			for j := start; j < end; j++ {
				b[j] = byte(r.rng.Intn(256))
			}
			return fmt.Sprintf("randomize record %d (bytes [%d,%d)) of %s", i, start, end, name),
				os.WriteFile(path, b, 0o644)
		}
		mode = 1 // nothing decodes: degrade to a blind splice
	}
	switch mode {
	case 1:
		off := r.rng.Intn(len(b))
		span := 1 + r.rng.Intn(len(b)-off)
		for j := off; j < off+span; j++ {
			b[j] = byte(r.rng.Intn(256))
		}
		return fmt.Sprintf("splice %d random bytes at offset %d of %s", span, off, name),
			os.WriteFile(path, b, 0o644)
	case 2:
		cut := r.rng.Intn(len(b))
		return fmt.Sprintf("tear %s to %d of %d bytes", name, cut, len(b)),
			os.WriteFile(path, b[:cut], 0o644)
	default:
		pre := make([]byte, 1+r.rng.Intn(32))
		r.rng.Read(pre)
		return fmt.Sprintf("prepend %d garbage bytes to %s", len(pre), name),
			os.WriteFile(path, append(pre, b...), 0o644)
	}
}
