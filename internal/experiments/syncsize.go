package experiments

import (
	"fmt"

	"vsgm/internal/sim"
	"vsgm/internal/types"
)

// E9SyncMessageSize measures the Section 5.2.4 optimizations: end-points in
// start_change.set but outside the sender's current view receive a small,
// cut-less synchronization message ("I am not in your transitional set"),
// and current-view members receive syncs with the view elided (deducible
// from the preceding view_msg). The scenario doubles the group — every
// joiner would otherwise receive a full view + cut payload from every old
// member and vice versa.
func E9SyncMessageSize(sizes []int, p Params) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "Synchronization message bytes per join wave (§5.2.4 optimizations)",
		Claim: "end-points need not send their view and cut to processes that cannot have them in their transitional set, nor their view to processes that already know it from a view_msg (§5.2.4)",
		Columns: []string{
			"old members", "joiners", "bytes (plain)", "bytes (optimized)", "saved",
		},
		Notes: "bytes use the deterministic wire-size model of the substrate; the change doubles the group",
	}
	for _, n := range sizes {
		plain, err := runJoinWave(n, p, false)
		if err != nil {
			return nil, fmt.Errorf("E9 plain n=%d: %w", n, err)
		}
		small, err := runJoinWave(n, p, true)
		if err != nil {
			return nil, fmt.Errorf("E9 small n=%d: %w", n, err)
		}
		saved := float64(plain-small) / float64(plain) * 100
		t.AddRow(n, n, plain, small, fmt.Sprintf("%.1f%%", saved))
	}
	return t, nil
}

// runJoinWave forms a group of n, then admits n joiners in one change, and
// returns the bytes of control traffic the change cost.
func runJoinWave(n int, p Params, smallSync bool) (int64, error) {
	c, err := newCluster(2*n, p, p.Seed+int64(n)*37, func(cfg *sim.Config) {
		cfg.SmallSync = smallSync
	})
	if err != nil {
		return 0, err
	}
	procs := c.Procs()
	initial := types.NewProcSet(procs[:n]...)
	if _, _, err := c.ReconfigureTo(initial); err != nil {
		return 0, err
	}
	// In-flight state so the cuts are non-trivial.
	for _, q := range initial.Sorted() {
		if _, err := c.Send(q, []byte("warm")); err != nil {
			return 0, err
		}
	}
	if err := c.Run(); err != nil {
		return 0, err
	}

	before := c.Network().Stats()
	if _, _, err := c.ReconfigureTo(allOf(c)); err != nil {
		return 0, err
	}
	delta := c.Network().Stats().Sub(before)
	return delta.SentBytes, nil
}
