package experiments

import (
	"fmt"
	"time"

	"vsgm/internal/sim"
)

// E11GarbageCollection is the ablation for the buffer-reclamation design
// choice (Section 5.1's closing remark): without acknowledgments, every
// message stays buffered until the next view change; with stability
// acknowledgments every AckInterval deliveries, buffers stay bounded at the
// cost of ack traffic.
func E11GarbageCollection(intervals []int, p Params) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Within-view buffer reclamation (stability acknowledgments)",
		Claim: "an actual implementation needs a garbage collection mechanism; acknowledgments track which messages have been delivered to all view members, and such messages are discarded (§5.1)",
		Columns: []string{
			"ack interval", "buffered msgs (peak of steady state)", "ack msgs", "ack bytes",
		},
		Notes: "4-member group, 50 multicasts per member in one view; interval 0 disables acks (reclamation only at view changes)",
	}
	for _, interval := range intervals {
		buffered, acks, bytes, err := runGCWorkload(interval, p)
		if err != nil {
			return nil, fmt.Errorf("E11 interval=%d: %w", interval, err)
		}
		t.AddRow(interval, buffered, acks, bytes)
	}
	return t, nil
}

func runGCWorkload(interval int, p Params) (buffered int, acks, ackBytes int64, err error) {
	const (
		members   = 4
		perSender = 50
	)
	c, err := newCluster(members, p, p.Seed+int64(interval)*43, func(cfg *sim.Config) {
		cfg.AckInterval = interval
	})
	if err != nil {
		return 0, 0, 0, err
	}
	if _, _, err := c.ReconfigureTo(allOf(c)); err != nil {
		return 0, 0, 0, err
	}

	before := c.Network().Stats()
	stats, err := (sim.Workload{
		PerSender: perSender,
		Interval:  2 * time.Millisecond,
	}).Apply(c)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := c.Run(); err != nil {
		return 0, 0, 0, err
	}
	if stats.Err() != nil {
		return 0, 0, 0, stats.Err()
	}

	for _, q := range c.Procs() {
		buffered += c.CoreEndpoint(q).BufferedMessages()
	}
	delta := c.Network().Stats().Sub(before)
	// Charge the size model for the ack traffic.
	ackBytes = delta.Sent.Ack * int64(8*(1+members))
	return buffered, delta.Sent.Ack, ackBytes, nil
}
