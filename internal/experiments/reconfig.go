package experiments

import (
	"fmt"
	"time"

	"vsgm/internal/corfifo"
	"vsgm/internal/sim"
)

// reconfigMeasurement is one algorithm's averaged view-change cost.
type reconfigMeasurement struct {
	dur     time.Duration
	control corfifo.KindCounts
	bytes   int64
	blocked time.Duration
}

// measureReconfig forms a group of n and measures reps steady-state view
// changes (same-membership reconfigurations, so both algorithms do identical
// application work).
func measureReconfig(n int, p Params, useBaseline bool) (reconfigMeasurement, error) {
	var out reconfigMeasurement
	reps := p.reps()
	for rep := 0; rep < reps; rep++ {
		seed := p.Seed + int64(rep)*101
		var (
			c   *sim.Cluster
			err error
		)
		if useBaseline {
			c, err = newBaselineCluster(n, p, seed)
		} else {
			c, err = newCluster(n, p, seed, nil)
		}
		if err != nil {
			return out, err
		}
		all := allOf(c)
		if _, _, err := c.ReconfigureTo(all); err != nil {
			return out, fmt.Errorf("warm-up: %w", err)
		}

		// A little in-flight traffic so the cut agreement has real work.
		for _, q := range c.Procs() {
			if _, err := c.Send(q, []byte("steady")); err != nil {
				return out, err
			}
		}
		if err := c.Run(); err != nil {
			return out, err
		}

		before := c.Network().Stats()
		blockedBefore := totalBlocked(c)
		_, d, err := c.ReconfigureTo(all)
		if err != nil {
			return out, err
		}
		delta := c.Network().Stats().Sub(before)
		out.dur += d
		out.control.View += delta.Sent.View
		out.control.Sync += delta.Sent.Sync
		out.control.Propose += delta.Sent.Propose
		out.bytes += delta.SentBytes
		out.blocked += (totalBlocked(c) - blockedBefore) / time.Duration(n)
	}
	out.dur /= time.Duration(reps)
	out.blocked /= time.Duration(reps)
	out.control.View /= int64(reps)
	out.control.Sync /= int64(reps)
	out.control.Propose /= int64(reps)
	out.bytes /= int64(reps)
	return out, nil
}

func totalBlocked(c *sim.Cluster) time.Duration {
	var total time.Duration
	for _, d := range c.Metrics().BlockedTotal {
		total += d
	}
	return total
}

// E1Reconfiguration measures reconfiguration latency — from the membership
// service's start_change to the last member's view installation — for the
// paper's one-round algorithm against the two-round baseline.
func E1Reconfiguration(sizes []int, p Params) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Reconfiguration latency vs group size",
		Claim: "the virtual synchrony round runs in parallel with the membership round, so reconfiguration completes in one message round; prior algorithms pay an extra identifier pre-agreement round (§1, §5, §9)",
		Columns: []string{
			"N", "one-round (ours)", "two-round (baseline)", "saved", "speedup",
		},
		Notes: fmt.Sprintf("links %v±%v, membership round %v; duration = start_change → last view install, mean of %d runs",
			p.Latency, p.Jitter, p.MembershipRound, p.reps()),
	}
	for _, n := range sizes {
		ours, err := measureReconfig(n, p, false)
		if err != nil {
			return nil, fmt.Errorf("E1 ours n=%d: %w", n, err)
		}
		base, err := measureReconfig(n, p, true)
		if err != nil {
			return nil, fmt.Errorf("E1 baseline n=%d: %w", n, err)
		}
		t.AddRow(n, msDur(ours.dur), msDur(base.dur), msDur(base.dur-ours.dur),
			float64(base.dur)/float64(ours.dur))
	}
	return t, nil
}

// E2ControlMessages counts the control messages (view announcements,
// synchronization messages, identifier pre-agreement messages) each
// algorithm spends per view change.
func E2ControlMessages(sizes []int, p Params) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "Control messages per view change",
		Claim: "our algorithm spends one all-to-all round of synchronization messages; two-round algorithms add an equal-size pre-agreement round (§1, §5.2)",
		Columns: []string{
			"N", "ours sync", "ours total", "baseline sync", "baseline propose", "baseline total",
		},
		Notes: "counts are (message, destination) pairs; totals include the post-install view_msg announcements",
	}
	for _, n := range sizes {
		ours, err := measureReconfig(n, p, false)
		if err != nil {
			return nil, fmt.Errorf("E2 ours n=%d: %w", n, err)
		}
		base, err := measureReconfig(n, p, true)
		if err != nil {
			return nil, fmt.Errorf("E2 baseline n=%d: %w", n, err)
		}
		t.AddRow(n,
			ours.control.Sync, ours.control.Sync+ours.control.View,
			base.control.Sync, base.control.Propose,
			base.control.Sync+base.control.Propose+base.control.View)
	}
	return t, nil
}

// E6BlockingTime measures how long the application is blocked from sending
// during a view change under each algorithm.
func E6BlockingTime(sizes []int, p Params) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Application blocking time during reconfiguration",
		Claim: "blocking is bounded by the single synchronization round; some application messages are still delivered while the service reconfigures (§1, §5.3)",
		Columns: []string{
			"N", "ours blocked", "baseline blocked",
		},
		Notes: "mean per-member wall (virtual) time between block() and the next view delivery",
	}
	for _, n := range sizes {
		ours, err := measureReconfig(n, p, false)
		if err != nil {
			return nil, fmt.Errorf("E6 ours n=%d: %w", n, err)
		}
		base, err := measureReconfig(n, p, true)
		if err != nil {
			return nil, fmt.Errorf("E6 baseline n=%d: %w", n, err)
		}
		t.AddRow(n, msDur(ours.blocked), msDur(base.blocked))
	}
	return t, nil
}
