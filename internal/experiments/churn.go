package experiments

import (
	"fmt"

	"vsgm/internal/baseline"
	"vsgm/internal/types"
)

// E3ObsoleteViews measures how many views the applications must process when
// a burst of joins cascades into the membership while a change is already in
// progress: the paper's eager policy (a fresh start_change per change of
// mind, letting end-points skip views known to be out of date) against the
// restart policy (finish the current change, then admit the next joiner).
func E3ObsoleteViews(churns []int, p Params) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Views delivered under cascading joins",
		Claim: "our algorithm never delivers views that reflect a membership already known to be out of date (§1)",
		Columns: []string{
			"joins", "eager views/member", "restart views/member", "eager time", "restart time",
		},
		Notes: "starting group of 3; each join extends the membership by one while the previous change is (eager) or is not (restart) still in progress",
	}
	for _, k := range churns {
		eager, eagerDur, err := runChurn(k, p, false)
		if err != nil {
			return nil, fmt.Errorf("E3 eager k=%d: %w", k, err)
		}
		restart, restartDur, err := runChurn(k, p, true)
		if err != nil {
			return nil, fmt.Errorf("E3 restart k=%d: %w", k, err)
		}
		t.AddRow(k, eager.ViewsPerMember, restart.ViewsPerMember,
			eagerDur, restartDur)
	}
	return t, nil
}

func runChurn(k int, p Params, restart bool) (baseline.ChurnResult, string, error) {
	const baseGroup = 3
	c, err := newCluster(baseGroup+k, p, p.Seed+int64(k)*7, nil)
	if err != nil {
		return baseline.ChurnResult{}, "", err
	}
	procs := c.Procs()
	initial := types.NewProcSet(procs[:baseGroup]...)
	if _, _, err := c.ReconfigureTo(initial); err != nil {
		return baseline.ChurnResult{}, "", err
	}

	joins := make([]types.ProcSet, 0, k)
	for i := 1; i <= k; i++ {
		joins = append(joins, types.NewProcSet(procs[:baseGroup+i]...))
	}
	start := c.Now()
	var (
		res baseline.ChurnResult
	)
	if restart {
		res, err = baseline.RunRestartChurn(c, joins)
	} else {
		res, err = baseline.RunEagerChurn(c, joins)
	}
	if err != nil {
		return baseline.ChurnResult{}, "", err
	}
	return res, msDur(c.Now() - start), nil
}
