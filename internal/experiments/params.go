package experiments

import (
	"time"

	"vsgm/internal/baseline"
	"vsgm/internal/corfifo"
	"vsgm/internal/sim"
	"vsgm/internal/types"
)

// Params are the common knobs of the simulated environment.
type Params struct {
	// Seed seeds every run (runs derive distinct sub-seeds from it).
	Seed int64
	// Latency is the base one-way link latency.
	Latency time.Duration
	// Jitter is the uniform latency jitter (±).
	Jitter time.Duration
	// MembershipRound is the simulated duration of the membership servers'
	// agreement round.
	MembershipRound time.Duration
	// Reps is the number of repetitions averaged per data point.
	Reps int
}

// DefaultParams returns the standard LAN-ish environment used by
// EXPERIMENTS.md: 10ms ± 5ms links, a 10ms membership round, 5 repetitions.
func DefaultParams() Params {
	return Params{
		Seed:            42,
		Latency:         10 * time.Millisecond,
		Jitter:          5 * time.Millisecond,
		MembershipRound: 10 * time.Millisecond,
		Reps:            5,
	}
}

func (p Params) latencyModel() sim.LatencyModel {
	return sim.UniformLatency{Base: p.Latency, Jitter: p.Jitter}
}

func (p Params) reps() int {
	if p.Reps <= 0 {
		return 1
	}
	return p.Reps
}

// newCluster builds a cluster of n of the paper's end-points.
func newCluster(n int, p Params, seed int64, mutate func(*sim.Config)) (*sim.Cluster, error) {
	cfg := sim.Config{
		Procs:           sim.ProcIDs(n),
		Latency:         p.latencyModel(),
		MembershipRound: p.MembershipRound,
		Seed:            seed,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return sim.NewCluster(cfg)
}

// newBaselineCluster builds a cluster of two-round baseline end-points.
func newBaselineCluster(n int, p Params, seed int64) (*sim.Cluster, error) {
	return newCluster(n, p, seed, func(cfg *sim.Config) {
		cfg.NewNode = func(id types.ProcID, idx int, tr *corfifo.Handle) (sim.Node, error) {
			return baseline.NewTwoRound(id, tr, int64(idx+1)*1_000_000_000)
		}
	})
}

// allOf returns the full membership of a cluster.
func allOf(c *sim.Cluster) types.ProcSet {
	return types.NewProcSet(c.Procs()...)
}

func msDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}
