package experiments

import (
	"fmt"
	"time"

	"vsgm/internal/corfifo"
	"vsgm/internal/sim"
)

// E12Hierarchy measures the Section 9 future-work extension: the two-tier
// synchronization hierarchy in which members send cuts to designated
// leaders that aggregate and exchange them, against the flat all-to-all
// exchange of the base algorithm.
func E12Hierarchy(sizes []int, groupSize int, p Params) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Two-tier synchronization hierarchy vs flat exchange",
		Claim: "to increase scalability, processes send cut messages to a designated leader, which aggregates them into a single message and forwards it to the other leaders (§9)",
		Columns: []string{
			"N", "flat sync msgs", "hier msgs (sync+bundle)", "msg ratio", "flat reconfig", "hier reconfig",
		},
		Notes: fmt.Sprintf("groups of %d, leader = minimum id per group; reconfig = start_change → last install", groupSize),
	}
	for _, n := range sizes {
		flatStats, flatDur, err := runHierarchyChange(n, 0, p)
		if err != nil {
			return nil, fmt.Errorf("E12 flat n=%d: %w", n, err)
		}
		hierStats, hierDur, err := runHierarchyChange(n, groupSize, p)
		if err != nil {
			return nil, fmt.Errorf("E12 hier n=%d: %w", n, err)
		}
		flatMsgs := flatStats.Sync + flatStats.Bundle
		hierMsgs := hierStats.Sync + hierStats.Bundle
		t.AddRow(n, flatMsgs, hierMsgs,
			float64(hierMsgs)/float64(flatMsgs),
			msDur(flatDur), msDur(hierDur))
	}
	return t, nil
}

func runHierarchyChange(n, groupSize int, p Params) (corfifo.KindCounts, time.Duration, error) {
	c, err := newCluster(n, p, p.Seed+int64(n)*47+int64(groupSize), func(cfg *sim.Config) {
		cfg.HierarchyGroupSize = groupSize
	})
	if err != nil {
		return corfifo.KindCounts{}, 0, err
	}
	all := allOf(c)
	if _, _, err := c.ReconfigureTo(all); err != nil {
		return corfifo.KindCounts{}, 0, err
	}
	for _, q := range c.Procs() {
		if _, err := c.Send(q, []byte("steady")); err != nil {
			return corfifo.KindCounts{}, 0, err
		}
	}
	if err := c.Run(); err != nil {
		return corfifo.KindCounts{}, 0, err
	}

	before := c.Network().Stats()
	_, d, err := c.ReconfigureTo(all)
	if err != nil {
		return corfifo.KindCounts{}, 0, err
	}
	return c.Network().Stats().Sub(before).Sent, d, nil
}
