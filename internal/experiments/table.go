// Package experiments implements the reproduction harness for the paper's
// quantitative claims. The paper (a specifications/algorithms/proofs paper)
// has no measurement tables of its own; DESIGN.md Section 4 derives ten
// experiments E1-E10 from its explicit claims, and this package generates
// one result table per experiment. cmd/vsgm-bench prints the tables;
// bench_test.go wraps each experiment as a Go benchmark.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result: an identifier, a caption, column
// headers, and formatted rows.
type Table struct {
	ID      string
	Title   string
	Claim   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}

	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Markdown returns the table as a GitHub-flavored markdown table (used to
// regenerate EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "*Claim:* %s\n\n", t.Claim)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n%s\n", t.Notes)
	}
	b.WriteByte('\n')
	return b.String()
}
