package experiments

import (
	"fmt"
	"time"

	"vsgm/internal/sim"
	"vsgm/internal/spec"
	"vsgm/internal/types"
)

// E7Recovery exercises the Section 8 semantics: an end-point crashes, the
// survivors reconfigure and keep working, the end-point recovers with no
// stable storage and rejoins under its original identity. The experiment
// reports the rejoin latency and verifies that the whole execution satisfies
// every safety specification.
func E7Recovery(sizes []int, p Params) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "Crash and recovery without stable storage",
		Claim: "recovered end-points restart from initial state under their original identity; Local Monotonicity survives because the membership service retains their identifier state (§8)",
		Columns: []string{
			"N", "exclude change", "rejoin change", "safety",
		},
		Notes: "exclude = crash → survivors install the reduced view; rejoin = recover → everyone installs the full view again",
	}
	for _, n := range sizes {
		exclude, rejoin, err := runRecovery(n, p)
		if err != nil {
			return nil, fmt.Errorf("E7 n=%d: %w", n, err)
		}
		t.AddRow(n, msDur(exclude), msDur(rejoin), "all specs hold")
	}
	return t, nil
}

func runRecovery(n int, p Params) (exclude, rejoin time.Duration, err error) {
	suite := spec.FullSuite()
	c, err := newCluster(n, p, p.Seed+int64(n)*29, func(cfg *sim.Config) {
		cfg.Suite = suite
	})
	if err != nil {
		return 0, 0, err
	}
	procs := c.Procs()
	all := allOf(c)
	if _, _, err := c.ReconfigureTo(all); err != nil {
		return 0, 0, err
	}
	for _, q := range procs {
		if _, err := c.Send(q, []byte("pre-crash")); err != nil {
			return 0, 0, err
		}
	}
	if err := c.Run(); err != nil {
		return 0, 0, err
	}

	victim := procs[n-1]
	if err := c.Crash(victim); err != nil {
		return 0, 0, err
	}
	survivors := all.Minus(types.NewProcSet(victim))
	if _, exclude, err = c.ReconfigureTo(survivors); err != nil {
		return 0, 0, err
	}
	for _, q := range survivors.Sorted() {
		if _, err := c.Send(q, []byte("while-down")); err != nil {
			return 0, 0, err
		}
	}
	if err := c.Run(); err != nil {
		return 0, 0, err
	}

	if err := c.Recover(victim); err != nil {
		return 0, 0, err
	}
	if _, rejoin, err = c.ReconfigureTo(all); err != nil {
		return 0, 0, err
	}
	if err := suite.Err(); err != nil {
		return 0, 0, fmt.Errorf("spec violations: %w", err)
	}
	return exclude, rejoin, nil
}
