package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func tinyParams() Params {
	return Params{
		Seed:            3,
		Latency:         10 * time.Millisecond,
		Jitter:          5 * time.Millisecond,
		MembershipRound: 10 * time.Millisecond,
		Reps:            1,
	}
}

func TestE1OneRoundBeatsTwoRound(t *testing.T) {
	tab, err := E1Reconfiguration([]int{4}, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	var speedup float64
	if _, err := fmtSscan(tab.Rows[0][4], &speedup); err != nil {
		t.Fatal(err)
	}
	if speedup <= 1.0 {
		t.Errorf("speedup = %.2f, want > 1 (the paper's headline claim)", speedup)
	}
}

func TestE2SyncMessageCountIsNTimesNMinusOne(t *testing.T) {
	tab, err := E2ControlMessages([]int{4}, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Rows[0][1]; got != "12" { // 4·3
		t.Errorf("ours sync = %s, want 12", got)
	}
	if got := tab.Rows[0][4]; got != "12" { // baseline pays the same again in proposes
		t.Errorf("baseline propose = %s, want 12", got)
	}
}

func TestE3EagerDeliversFewerViews(t *testing.T) {
	tab, err := E3ObsoleteViews([]int{4}, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	var eager, restart float64
	if _, err := fmtSscan(tab.Rows[0][1], &eager); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tab.Rows[0][2], &restart); err != nil {
		t.Fatal(err)
	}
	if eager >= restart {
		t.Errorf("eager %.2f views/member not below restart %.2f", eager, restart)
	}
}

func TestE4MinCopiesForwardsExactlyOnce(t *testing.T) {
	tab, err := E4Forwarding([]int{5}, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Rows[0][5]; got != "1.00" {
		t.Errorf("min-copies copies/missing = %s, want 1.00", got)
	}
	var simple float64
	if _, err := fmtSscan(tab.Rows[0][3], &simple); err != nil {
		t.Fatal(err)
	}
	if simple <= 1.0 {
		t.Errorf("simple strategy copies/missing = %.2f, want > 1", simple)
	}
}

func TestE5WireCostIsNMinusOne(t *testing.T) {
	tab, err := E5Multicast([]int{4}, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Rows[0][2]; got != "3.00" {
		t.Errorf("wire msgs/multicast = %s, want 3.00", got)
	}
}

func TestE8ClientServerCheaperThanFlat(t *testing.T) {
	tab, err := E8MembershipScalability([]int{8}, []int{2}, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	var cs, flat float64
	if _, err := fmtSscan(tab.Rows[0][2], &cs); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tab.Rows[1][2], &flat); err != nil {
		t.Fatal(err)
	}
	if cs >= flat {
		t.Errorf("client-server %v not cheaper than flat %v", cs, flat)
	}
}

func TestE9SmallSyncSavesBytes(t *testing.T) {
	tab, err := E9SyncMessageSize([]int{4}, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	var plain, small float64
	if _, err := fmtSscan(tab.Rows[0][2], &plain); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tab.Rows[0][3], &small); err != nil {
		t.Fatal(err)
	}
	if small >= plain {
		t.Errorf("small-sync bytes %v not below plain %v", small, plain)
	}
}

func TestE11AcksReclaimBuffers(t *testing.T) {
	tab, err := E11GarbageCollection([]int{0, 1}, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	var without, with float64
	if _, err := fmtSscan(tab.Rows[0][1], &without); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tab.Rows[1][1], &with); err != nil {
		t.Fatal(err)
	}
	if with >= without {
		t.Errorf("buffered with acks (%v) not below without (%v)", with, without)
	}
}

func TestE12HierarchyReducesSyncMessages(t *testing.T) {
	tab, err := E12Hierarchy([]int{16}, 4, tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	var ratio float64
	if _, err := fmtSscan(tab.Rows[0][3], &ratio); err != nil {
		t.Fatal(err)
	}
	if ratio >= 1.0 {
		t.Errorf("hierarchical/flat message ratio = %.2f, want < 1", ratio)
	}
}

func TestRemainingExperimentsRun(t *testing.T) {
	p := tinyParams()
	if _, err := E6BlockingTime([]int{3}, p); err != nil {
		t.Errorf("E6: %v", err)
	}
	if _, err := E7Recovery([]int{3}, p); err != nil {
		t.Errorf("E7: %v", err)
	}
	if _, err := E10TotalOrder([]int{3}, p); err != nil {
		t.Errorf("E10: %v", err)
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("registry has %d experiments, want 12", len(all))
	}
	seen := make(map[string]bool)
	for _, s := range all {
		if s.ID == "" || s.Title == "" || s.Run == nil {
			t.Errorf("incomplete spec %+v", s)
		}
		if seen[s.ID] {
			t.Errorf("duplicate id %s", s.ID)
		}
		seen[s.ID] = true
	}
	if _, err := ByID("E4"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "T1",
		Title:   "demo",
		Claim:   "claim",
		Columns: []string{"a", "bee"},
		Notes:   "note",
	}
	tab.AddRow(1, 2.5)
	txt := tab.Render()
	for _, want := range []string{"T1", "demo", "claim", "bee", "2.50", "note"} {
		if !strings.Contains(txt, want) {
			t.Errorf("render missing %q:\n%s", want, txt)
		}
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | bee |") || !strings.Contains(md, "### T1") {
		t.Errorf("markdown malformed:\n%s", md)
	}
}

// fmtSscan is a tiny indirection so the tests read naturally.
func fmtSscan(s string, out *float64) (int, error) {
	return fmt.Sscan(s, out)
}
