package experiments

import "fmt"

// Runner produces one experiment's table under the given parameters.
type Runner func(p Params) (*Table, error)

// Spec names one experiment.
type Spec struct {
	ID    string
	Title string
	Run   Runner
}

// DefaultSizes is the group-size sweep used by the standard tables.
var DefaultSizes = []int{2, 4, 8, 16, 32}

// All returns every experiment with its standard sweep.
func All() []Spec {
	return []Spec{
		{ID: "E1", Title: "Reconfiguration latency", Run: func(p Params) (*Table, error) {
			return E1Reconfiguration(DefaultSizes, p)
		}},
		{ID: "E2", Title: "Control messages per view change", Run: func(p Params) (*Table, error) {
			return E2ControlMessages(DefaultSizes, p)
		}},
		{ID: "E3", Title: "Views delivered under cascading joins", Run: func(p Params) (*Table, error) {
			return E3ObsoleteViews([]int{1, 2, 4, 8}, p)
		}},
		{ID: "E4", Title: "Forwarding strategies", Run: func(p Params) (*Table, error) {
			return E4Forwarding([]int{1, 5, 10, 20}, p)
		}},
		{ID: "E5", Title: "Steady-state multicast cost", Run: func(p Params) (*Table, error) {
			return E5Multicast(DefaultSizes, p)
		}},
		{ID: "E6", Title: "Application blocking time", Run: func(p Params) (*Table, error) {
			return E6BlockingTime(DefaultSizes, p)
		}},
		{ID: "E7", Title: "Crash and recovery", Run: func(p Params) (*Table, error) {
			return E7Recovery([]int{3, 5, 9}, p)
		}},
		{ID: "E8", Title: "Membership scalability", Run: func(p Params) (*Table, error) {
			return E8MembershipScalability([]int{8, 32, 64, 128}, []int{2, 4}, p)
		}},
		{ID: "E9", Title: "Sync message size optimization", Run: func(p Params) (*Table, error) {
			return E9SyncMessageSize([]int{2, 4, 8, 16}, p)
		}},
		{ID: "E10", Title: "Total order layered on FIFO", Run: func(p Params) (*Table, error) {
			return E10TotalOrder([]int{2, 4, 8, 16}, p)
		}},
		{ID: "E11", Title: "Buffer reclamation ablation", Run: func(p Params) (*Table, error) {
			return E11GarbageCollection([]int{0, 1, 5, 20}, p)
		}},
		{ID: "E12", Title: "Two-tier hierarchy vs flat sync exchange", Run: func(p Params) (*Table, error) {
			return E12Hierarchy([]int{8, 16, 32, 64}, 8, p)
		}},
	}
}

// ByID returns the experiment with the given identifier.
func ByID(id string) (Spec, error) {
	for _, s := range All() {
		if s.ID == id {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("unknown experiment %q", id)
}
