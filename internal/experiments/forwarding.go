package experiments

import (
	"fmt"

	"vsgm/internal/core"
	"vsgm/internal/sim"
	"vsgm/internal/types"
)

// E4Forwarding compares the two ForwardingStrategyPredicates of Section
// 5.2.2 on a recovery scenario: a sender's messages reach only part of the
// group before the sender is partitioned away, so the surviving members must
// forward the missing messages before anyone can install the next view.
func E4Forwarding(msgCounts []int, p Params) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Forwarded copies per missing message",
		Claim: "the min-copies strategy has exactly one transitional-set member forward each missing message; the simple strategy lets every committed holder forward a copy (§5.2.2)",
		Columns: []string{
			"lost msgs", "missing copies", "simple fwds", "simple copies/miss", "min-copies fwds", "min copies/miss",
		},
		Notes: "5-member group; the departing member's stream reaches 2 of 4 survivors before the partition",
	}
	for _, k := range msgCounts {
		simple, miss, err := runForwarding(k, p, core.NewSimpleForwarding())
		if err != nil {
			return nil, fmt.Errorf("E4 simple k=%d: %w", k, err)
		}
		min, miss2, err := runForwarding(k, p, core.NewMinCopiesForwarding())
		if err != nil {
			return nil, fmt.Errorf("E4 min-copies k=%d: %w", k, err)
		}
		if miss2 != miss {
			return nil, fmt.Errorf("E4: scenarios diverged (%d vs %d missing)", miss, miss2)
		}
		t.AddRow(k, miss,
			simple, float64(simple)/float64(miss),
			min, float64(min)/float64(miss))
	}
	return t, nil
}

// runForwarding returns the number of forwarded copies sent and the number
// of missing (message, destination) instances that needed recovery.
func runForwarding(k int, p Params, strategy core.ForwardingStrategy) (int64, int64, error) {
	c, err := newCluster(5, p, p.Seed+int64(k)*13, func(cfg *sim.Config) {
		cfg.Forwarding = strategy
	})
	if err != nil {
		return 0, 0, err
	}
	procs := c.Procs()
	all := allOf(c)
	if _, _, err := c.ReconfigureTo(all); err != nil {
		return 0, 0, err
	}

	// The departing sender's messages reach p00 and p01 but not p02/p03.
	leaver := procs[4]
	c.BlockLink(leaver, procs[2])
	c.BlockLink(leaver, procs[3])
	for i := 0; i < k; i++ {
		if _, err := c.Send(leaver, []byte(fmt.Sprintf("lost-%d", i))); err != nil {
			return 0, 0, err
		}
	}
	if err := c.Run(); err != nil {
		return 0, 0, err
	}

	// Partition the sender away and reconfigure the survivors.
	survivors := types.NewProcSet(procs[0], procs[1], procs[2], procs[3])
	c.SetConnectivity(survivors)
	v, _, err := c.ReconfigureTo(survivors)
	if err != nil {
		return 0, 0, err
	}

	// Sanity: every survivor installed the view and delivered the full
	// agreed cut, including the recovered messages.
	for _, q := range survivors.Sorted() {
		ep := c.CoreEndpoint(q)
		if !ep.CurrentView().Equal(v) {
			return 0, 0, fmt.Errorf("%s did not install %s", q, v)
		}
	}

	var forwards int64
	for _, q := range survivors.Sorted() {
		forwards += c.CoreEndpoint(q).ForwardsSent()
	}
	missing := int64(2 * k) // two survivors each missed k messages
	return forwards, missing, nil
}
