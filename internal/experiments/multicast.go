package experiments

import (
	"fmt"
	"sort"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/sim"
	"vsgm/internal/totalorder"
	"vsgm/internal/types"
)

// latencyProbe records virtual send and delivery times to compute
// end-to-end delivery latency statistics.
type latencyProbe struct {
	c       *sim.Cluster
	sendAt  map[int64]time.Duration
	samples []time.Duration
}

func (lp *latencyProbe) onEvent(_ types.ProcID, ev core.Event) {
	d, ok := ev.(core.DeliverEvent)
	if !ok {
		return
	}
	if at, ok := lp.sendAt[d.Msg.ID]; ok {
		lp.samples = append(lp.samples, lp.c.Now()-at)
	}
}

func (lp *latencyProbe) mean() time.Duration {
	if len(lp.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, s := range lp.samples {
		total += s
	}
	return total / time.Duration(len(lp.samples))
}

// percentile returns the q-th percentile (0 < q ≤ 100) of the samples.
func (lp *latencyProbe) percentile(q float64) time.Duration {
	if len(lp.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lp.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q/100*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// E5Multicast measures the steady-state multicast path: wire cost and mean
// delivery latency of the within-view reliable FIFO service.
func E5Multicast(sizes []int, p Params) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "Steady-state multicast cost",
		Claim: "in stable views the service adds no protocol overhead beyond the N-1 unicasts of a multicast and delivers at substrate latency (§4.1.1, §5.1)",
		Columns: []string{
			"N", "multicasts", "wire msgs/multicast", "mean latency", "p95 latency",
		},
	}
	const perSender = 10
	for _, n := range sizes {
		probe := &latencyProbe{sendAt: make(map[int64]time.Duration)}
		c, err := newCluster(n, p, p.Seed+int64(n)*17, func(cfg *sim.Config) {
			cfg.OnAppEvent = probe.onEvent
		})
		if err != nil {
			return nil, err
		}
		probe.c = c

		all := allOf(c)
		if _, _, err := c.ReconfigureTo(all); err != nil {
			return nil, err
		}
		before := c.Network().Stats()
		sends := 0
		for i := 0; i < perSender; i++ {
			for _, q := range c.Procs() {
				m, err := c.Send(q, []byte("payload"))
				if err != nil {
					return nil, err
				}
				probe.sendAt[m.ID] = c.Now()
				sends++
			}
			if err := c.RunFor(2 * time.Millisecond); err != nil {
				return nil, err
			}
		}
		if err := c.Run(); err != nil {
			return nil, err
		}
		delta := c.Network().Stats().Sub(before)
		t.AddRow(n, sends,
			float64(delta.Sent.Total())/float64(sends),
			msDur(probe.mean()), msDur(probe.percentile(95)))
	}
	return t, nil
}

// E10TotalOrder measures the latency a totally ordered multicast adds over
// the plain FIFO service: non-sequencer messages pay one extra hop through
// the sequencer's assignment.
func E10TotalOrder(sizes []int, p Params) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Total order layered on WV_RFIFO",
		Claim: "FIFO multicast is a base on which stronger ordering services are built (§4.1.1)",
		Columns: []string{
			"N", "FIFO latency", "total-order latency", "ratio",
		},
		Notes: "mean over all (message, receiver) pairs; the sequencer is the minimum-id member",
	}
	const perSender = 10
	for _, n := range sizes {
		fifoLat, err := fifoLatency(n, p, perSender)
		if err != nil {
			return nil, err
		}
		toLat, err := totalOrderLatency(n, p, perSender)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, msDur(fifoLat), msDur(toLat), float64(toLat)/float64(fifoLat))
	}
	return t, nil
}

func fifoLatency(n int, p Params, perSender int) (time.Duration, error) {
	probe := &latencyProbe{sendAt: make(map[int64]time.Duration)}
	c, err := newCluster(n, p, p.Seed+int64(n)*19, func(cfg *sim.Config) {
		cfg.OnAppEvent = probe.onEvent
	})
	if err != nil {
		return 0, err
	}
	probe.c = c
	if _, _, err := c.ReconfigureTo(allOf(c)); err != nil {
		return 0, err
	}
	for i := 0; i < perSender; i++ {
		for _, q := range c.Procs() {
			m, err := c.Send(q, []byte("x"))
			if err != nil {
				return 0, err
			}
			probe.sendAt[m.ID] = c.Now()
		}
		if err := c.RunFor(2 * time.Millisecond); err != nil {
			return 0, err
		}
	}
	if err := c.Run(); err != nil {
		return 0, err
	}
	return probe.mean(), nil
}

func totalOrderLatency(n int, p Params, perSender int) (time.Duration, error) {
	type sessions = map[types.ProcID]*totalorder.Session
	var (
		c        *sim.Cluster
		sess     = make(sessions)
		sendAt   = make(map[string]time.Duration)
		total    time.Duration
		nSamples int64
	)
	cfg := sim.Config{
		Procs:           sim.ProcIDs(n),
		Latency:         p.latencyModel(),
		MembershipRound: p.MembershipRound,
		Seed:            p.Seed + int64(n)*23,
		OnAppEvent: func(q types.ProcID, ev core.Event) {
			if s := sess[q]; s != nil {
				_ = s.HandleEvent(ev)
			}
		},
	}
	var err error
	c, err = sim.NewCluster(cfg)
	if err != nil {
		return 0, err
	}
	for _, q := range c.Procs() {
		q := q
		s, err := totalorder.New(q,
			func(payload []byte) error {
				_, err := c.Send(q, payload)
				return err
			},
			func(sender types.ProcID, payload []byte) {
				if at, ok := sendAt[string(payload)]; ok {
					total += c.Now() - at
					nSamples++
				}
			},
			nil)
		if err != nil {
			return 0, err
		}
		sess[q] = s
	}
	if _, _, err := c.ReconfigureTo(allOf(c)); err != nil {
		return 0, err
	}
	for i := 0; i < perSender; i++ {
		for _, q := range c.Procs() {
			payload := fmt.Sprintf("%s-%d", q, i)
			sendAt[payload] = c.Now()
			if err := sess[q].Send([]byte(payload)); err != nil {
				return 0, err
			}
		}
		if err := c.RunFor(2 * time.Millisecond); err != nil {
			return 0, err
		}
	}
	if err := c.Run(); err != nil {
		return 0, err
	}
	if nSamples == 0 {
		return 0, fmt.Errorf("total order: no samples")
	}
	return total / time.Duration(nSamples), nil
}
