package experiments

import (
	"fmt"

	"vsgm/internal/sim"
)

// E8MembershipScalability measures the per-change message cost of the
// client-server membership architecture against a flat architecture in
// which every client participates in the membership protocol directly.
func E8MembershipScalability(clientCounts []int, serverCounts []int, p Params) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Membership cost: client-server vs flat",
		Claim: "maintaining membership at a small set of dedicated servers makes the service scalable in the number of clients (§1, §9)",
		Columns: []string{
			"clients", "architecture", "server msgs/change", "notifications/change", "total",
		},
		Notes: "server msgs are the O(S²) proposal exchange; flat = every client runs the membership protocol (S = C)",
	}
	for _, clients := range clientCounts {
		for _, servers := range serverCounts {
			if clients%servers != 0 {
				continue
			}
			memb, notif, err := runMembershipChange(servers, clients/servers, p)
			if err != nil {
				return nil, fmt.Errorf("E8 S=%d C=%d: %w", servers, clients, err)
			}
			t.AddRow(clients, fmt.Sprintf("%d servers", servers), memb, notif, memb+notif)
		}
		memb, notif, err := runMembershipChange(clients, 1, p)
		if err != nil {
			return nil, fmt.Errorf("E8 flat C=%d: %w", clients, err)
		}
		t.AddRow(clients, "flat (C servers)", memb, notif, memb+notif)
	}
	return t, nil
}

func runMembershipChange(servers, clientsPerServer int, p Params) (memb, notif int64, err error) {
	w, err := sim.NewServerWorld(sim.ServerWorldConfig{
		Servers:          servers,
		ClientsPerServer: clientsPerServer,
		Latency:          p.latencyModel(),
		Seed:             p.Seed + int64(servers)*31 + int64(clientsPerServer),
	})
	if err != nil {
		return 0, 0, err
	}
	if err := w.Boot(); err != nil {
		return 0, 0, err
	}
	membBefore := w.Network().Stats().Sent.Memb
	notifBefore := w.Notifications
	if err := w.TriggerChange(); err != nil {
		return 0, 0, err
	}
	return w.Network().Stats().Sent.Memb - membBefore, w.Notifications - notifBefore, nil
}
