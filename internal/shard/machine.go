package shard

import (
	"encoding/json"
	"fmt"
	"sort"

	"vsgm/internal/rsm"
	"vsgm/internal/types"
)

// KVOp is the command vocabulary of a shard group's state machine. Besides
// the client-facing set/del it carries the resharding data plane: chunked
// range installs, the handoff marker, and the post-cutover prune.
type KVOp struct {
	Op    string `json:"op"` // "set", "del", "install", "marker", "prune"
	Key   string `json:"key,omitempty"`
	Value string `json:"value,omitempty"`
	// Data is one chunk of a migrating key range ("install").
	Data map[string]string `json:"data,omitempty"`
	// Reshard is the proposal id a marker seals ("marker").
	Reshard string `json:"reshard,omitempty"`
	// SlotLo/SlotHi/NSlots describe the pruned range ("prune"): keys whose
	// slot under an NSlots-sized slot space falls inside [SlotLo, SlotHi]
	// are deleted. NSlots rides in the command so the machine needs no
	// access to the shard map.
	SlotLo int `json:"slot_lo,omitempty"`
	SlotHi int `json:"slot_hi,omitempty"`
	NSlots int `json:"n_slots,omitempty"`
}

// EncodeSet returns the command setting key to value.
func EncodeSet(key, value string) []byte {
	b, _ := json.Marshal(KVOp{Op: "set", Key: key, Value: value})
	return b
}

// EncodeDel returns the command deleting key.
func EncodeDel(key string) []byte {
	b, _ := json.Marshal(KVOp{Op: "del", Key: key})
	return b
}

// EncodeInstall returns the command installing one chunk of a migrated
// range.
func EncodeInstall(data map[string]string) []byte {
	b, _ := json.Marshal(KVOp{Op: "install", Data: data})
	return b
}

// EncodeMarker returns the handoff marker for a reshard proposal.
func EncodeMarker(reshardID string) []byte {
	b, _ := json.Marshal(KVOp{Op: "marker", Reshard: reshardID})
	return b
}

// EncodePrune returns the command deleting every key in the given slot
// range (post-cutover cleanup on the source group).
func EncodePrune(slotLo, slotHi, nslots int) []byte {
	b, _ := json.Marshal(KVOp{Op: "prune", SlotLo: slotLo, SlotHi: slotHi, NSlots: nslots})
	return b
}

// snapEvery is the write-through compaction cadence: every this many
// applied commands the durable snapshot is rewritten and the WAL truncated.
const snapEvery = 256

// Machine is the state machine one shard replica runs: a key-value map plus
// the resharding bookkeeping (last handoff marker seen), optionally written
// through to a durable Store on every apply.
type Machine struct {
	kv         map[string]string
	lastMarker string
	applied    int64
	store      Store
	storeErr   error
}

// machineSnap is the serialized form of the machine state.
type machineSnap struct {
	KV         map[string]string `json:"kv"`
	LastMarker string            `json:"last_marker,omitempty"`
}

// NewMachine builds an empty machine. store may be nil (no durability).
func NewMachine(store Store) *Machine {
	return &Machine{kv: make(map[string]string), store: store}
}

// LoadMachine builds a machine from the durable store's contents (snapshot
// replay plus WAL replay) — the cold-restart path.
func LoadMachine(store Store) (*Machine, error) {
	m := NewMachine(store)
	snap, cmds, err := store.Load()
	if err != nil {
		return nil, err
	}
	if snap != nil {
		if err := m.restore(snap); err != nil {
			return nil, err
		}
	}
	for _, cmd := range cmds {
		m.apply(cmd)
	}
	return m, nil
}

// Get reads a key from the local state.
func (m *Machine) Get(key string) (string, bool) {
	v, ok := m.kv[key]
	return v, ok
}

// Len returns the number of keys held.
func (m *Machine) Len() int { return len(m.kv) }

// LastMarker returns the id of the last handoff marker applied.
func (m *Machine) LastMarker() string { return m.lastMarker }

// Applied returns the number of commands applied.
func (m *Machine) Applied() int64 { return m.applied }

// StoreErr surfaces the first durable-store write error (nil when healthy).
func (m *Machine) StoreErr() error { return m.storeErr }

// RangeSnapshot extracts the keys whose slot under an nslots-sized slot
// space falls in [lo, hi] — the migrating range of a slot move.
func (m *Machine) RangeSnapshot(lo, hi, nslots int) map[string]string {
	out := make(map[string]string)
	for k, v := range m.kv {
		if s := SlotForKey(k, nslots); s >= lo && s <= hi {
			out[k] = v
		}
	}
	return out
}

// Fingerprint renders the whole state deterministically, for comparing
// replicas in tests and the verify pass.
func (m *Machine) Fingerprint() string {
	keys := make([]string, 0, len(m.kv))
	for k := range m.kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%s;", k, m.kv[k])
	}
	if m.lastMarker != "" {
		out += "marker=" + m.lastMarker + ";"
	}
	return out
}

// apply executes one command against the in-memory state (no durability).
func (m *Machine) apply(cmd []byte) {
	var op KVOp
	if err := json.Unmarshal(cmd, &op); err != nil {
		return // ignoring garbage is deterministic; diverging on it is not
	}
	switch op.Op {
	case "set":
		m.kv[op.Key] = op.Value
	case "del":
		delete(m.kv, op.Key)
	case "install":
		for k, v := range op.Data {
			m.kv[k] = v
		}
	case "marker":
		m.lastMarker = op.Reshard
	case "prune":
		if op.NSlots <= 0 {
			return
		}
		for k := range m.kv {
			if s := SlotForKey(k, op.NSlots); s >= op.SlotLo && s <= op.SlotHi {
				delete(m.kv, k)
			}
		}
	}
}

// Apply implements rsm.StateMachine with write-through durability: the
// command is logged before it mutates state, and every snapEvery applies
// the log compacts into a fresh snapshot.
func (m *Machine) Apply(_ types.ProcID, cmd []byte) {
	if m.store != nil {
		if err := m.store.AppendCommand(cmd); err != nil && m.storeErr == nil {
			m.storeErr = err
		}
	}
	m.apply(cmd)
	m.applied++
	if m.store != nil && m.applied%snapEvery == 0 {
		if err := m.store.WriteSnapshot(m.Snapshot()); err != nil && m.storeErr == nil {
			m.storeErr = err
		}
	}
}

// Snapshot implements rsm.StateMachine.
func (m *Machine) Snapshot() []byte {
	b, _ := json.Marshal(machineSnap{KV: m.kv, LastMarker: m.lastMarker})
	return b
}

func (m *Machine) restore(snapshot []byte) error {
	var s machineSnap
	if err := json.Unmarshal(snapshot, &s); err != nil {
		return fmt.Errorf("shard: machine restore: %w", err)
	}
	if s.KV == nil {
		s.KV = make(map[string]string)
	}
	m.kv = s.KV
	m.lastMarker = s.LastMarker
	return nil
}

// Restore implements rsm.StateMachine; the adopted state is also compacted
// into the durable snapshot so a crash right after a state transfer
// recovers to the transferred state.
func (m *Machine) Restore(snapshot []byte) error {
	if err := m.restore(snapshot); err != nil {
		return err
	}
	if m.store != nil {
		if err := m.store.WriteSnapshot(append([]byte(nil), snapshot...)); err != nil && m.storeErr == nil {
			m.storeErr = err
		}
	}
	return nil
}

var _ rsm.StateMachine = (*Machine)(nil)
