package shard

import (
	"errors"
	"fmt"
)

// Result is the outcome of one KV operation.
type Result struct {
	Value string
	Found bool
}

// Backend is the service as the Router sees it: a request/response surface
// to the shard servers plus a way to fetch the current committed map. The
// in-process World implements it; a network client would implement it over
// the wire.
type Backend interface {
	// Do executes op against the named shard, which validates the request
	// against its committed map (epoch is advisory — stale clients are
	// corrected by ErrWrongShard, not by epoch comparison).
	Do(shard int, epoch int64, op KVOp) (Result, error)
	// FetchMap returns the current committed shard map.
	FetchMap() (Map, error)
}

// DefaultMaxRedirects bounds the wrong-shard retry loop. Each retry
// refreshes the map, so under a quiescent map one redirect suffices; the
// budget only buys headroom for maps moving underneath the client.
const DefaultMaxRedirects = 4

// Router is the client side of the sharded KV: it caches the shard map with
// its epoch, routes each key by hash slot, and on ErrWrongShard refreshes
// the map and retries, up to a bounded number of redirects.
type Router struct {
	backend      Backend
	cached       Map
	haveMap      bool
	maxRedirects int

	redirects int64
	refreshes int64
}

// NewRouter builds a router over a backend. maxRedirects <= 0 selects
// DefaultMaxRedirects.
func NewRouter(backend Backend, maxRedirects int) *Router {
	if maxRedirects <= 0 {
		maxRedirects = DefaultMaxRedirects
	}
	return &Router{backend: backend, maxRedirects: maxRedirects}
}

// Epoch returns the epoch of the cached map (0 before the first fetch).
func (r *Router) Epoch() int64 {
	if !r.haveMap {
		return 0
	}
	return r.cached.Epoch
}

// Redirects returns how many ErrWrongShard responses this router absorbed.
func (r *Router) Redirects() int64 { return r.redirects }

// Refreshes returns how many times the map was (re)fetched.
func (r *Router) Refreshes() int64 { return r.refreshes }

// InvalidateMap drops the cached map; the next operation re-fetches. Tests
// use it to model a client whose cache went arbitrarily stale.
func (r *Router) InvalidateMap() { r.haveMap = false }

// CachedMap returns the cached map and whether one is held.
func (r *Router) CachedMap() (Map, bool) { return r.cached, r.haveMap }

func (r *Router) ensureMap() error {
	if r.haveMap {
		return nil
	}
	return r.refresh()
}

func (r *Router) refresh() error {
	m, err := r.backend.FetchMap()
	if err != nil {
		return fmt.Errorf("shard: fetch map: %w", err)
	}
	r.cached = m
	r.haveMap = true
	r.refreshes++
	return nil
}

// do routes one keyed operation, absorbing wrong-shard redirects.
func (r *Router) do(key string, op KVOp) (Result, error) {
	if err := r.ensureMap(); err != nil {
		return Result{}, err
	}
	for attempt := 0; ; attempt++ {
		res, err := r.backend.Do(r.cached.ShardForKey(key), r.cached.Epoch, op)
		if !errors.Is(err, ErrWrongShard) {
			return res, err
		}
		r.redirects++
		if attempt >= r.maxRedirects {
			return Result{}, fmt.Errorf("%w (key %q, %d attempts)", ErrRedirectLoop, key, attempt+1)
		}
		if err := r.refresh(); err != nil {
			return Result{}, err
		}
	}
}

// Get reads a key.
func (r *Router) Get(key string) (string, bool, error) {
	res, err := r.do(key, KVOp{Op: "get", Key: key})
	return res.Value, res.Found, err
}

// Set writes a key. A nil error means the write was acknowledged as durably
// applied by an authoritative replica.
func (r *Router) Set(key, value string) error {
	_, err := r.do(key, KVOp{Op: "set", Key: key, Value: value})
	return err
}

// Del deletes a key. A nil error means the delete was acknowledged.
func (r *Router) Del(key string) error {
	_, err := r.do(key, KVOp{Op: "del", Key: key})
	return err
}
