// Package shard builds a sharded replicated key-value service out of the
// single-group machinery the rest of the repository proves: every shard is
// its own virtually synchronous group running the internal/rsm state
// machine, a meta-group RSM maintains the shard map (hash slots → shard →
// replica group), clients route by key hash against a cached map epoch, and
// live resharding is expressed as paired reconfigurations in which the
// transitional set delivered with each view drives the key-range state
// handoff — the paper's guarantees doing production work.
//
// The package has four layers:
//
//   - Map (this file): the versioned routing table. Keys hash to one of a
//     fixed number of slots; slots map to shards; shards map to replica
//     groups. Every committed reshard bumps the epoch.
//   - MetaMachine (meta.go): the shard map as a replicated state machine on
//     its own meta-group, serializing reshard proposals (a concurrent
//     proposal for a busy shard is deterministically rejected).
//   - Router (router.go): the client side — epoch-cached routing with
//     retry-on-ErrWrongShard and a bounded redirect loop.
//   - World + Resharder (world.go, reshard.go): the deployment harness on
//     the deterministic simulator, and the step-wise resharding state
//     machine (so chaos can interleave with a handoff in flight).
package shard

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"

	"vsgm/internal/types"
)

// DefaultSlots is the default size of the hash-slot space. Keys hash to a
// slot, slots map to shards; moving a contiguous slot range is the unit of
// keyspace rebalancing.
const DefaultSlots = 64

// Map is the shard map: the routing table every server holds and every
// client caches. It is immutable by convention — mutations go through the
// meta-group RSM, which installs a new map with a bumped Epoch.
type Map struct {
	// Epoch versions the map; it increments on every committed reshard.
	// Clients cache a map together with its epoch and refresh on
	// ErrWrongShard.
	Epoch int64 `json:"epoch"`
	// Slots maps hash slot → owning shard id. len(Slots) is the slot-space
	// size and never changes after creation.
	Slots []int `json:"slots"`
	// Groups maps shard id → the sorted replica group serving it.
	Groups map[int][]types.ProcID `json:"groups"`
}

// NewUniformMap builds an epoch-1 map with shards owning contiguous,
// near-equal slot ranges and the given replica groups.
func NewUniformMap(slots int, groups map[int][]types.ProcID) (Map, error) {
	if slots <= 0 {
		slots = DefaultSlots
	}
	if len(groups) == 0 {
		return Map{}, fmt.Errorf("shard: map needs at least one group")
	}
	if slots < len(groups) {
		return Map{}, fmt.Errorf("shard: %d slots cannot cover %d shards", slots, len(groups))
	}
	m := Map{Epoch: 1, Slots: make([]int, slots), Groups: make(map[int][]types.ProcID, len(groups))}
	ids := make([]int, 0, len(groups))
	for id, g := range groups {
		if len(g) == 0 {
			return Map{}, fmt.Errorf("shard: shard %d has an empty group", id)
		}
		ids = append(ids, id)
		sorted := append([]types.ProcID(nil), g...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		m.Groups[id] = sorted
	}
	sort.Ints(ids)
	for s := 0; s < slots; s++ {
		m.Slots[s] = ids[s*len(ids)/slots]
	}
	return m, nil
}

// Clone deep-copies the map.
func (m Map) Clone() Map {
	out := Map{Epoch: m.Epoch, Slots: append([]int(nil), m.Slots...), Groups: make(map[int][]types.ProcID, len(m.Groups))}
	for id, g := range m.Groups {
		out.Groups[id] = append([]types.ProcID(nil), g...)
	}
	return out
}

// SlotForKey hashes a key into the slot space of size nslots (FNV-1a; the
// same function everywhere, so routing is deterministic across clients,
// servers, and the prune command a reshard leaves behind).
func SlotForKey(key string, nslots int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(nslots))
}

// SlotOf hashes key into this map's slot space.
func (m Map) SlotOf(key string) int { return SlotForKey(key, len(m.Slots)) }

// ShardForKey returns the shard owning key under this map.
func (m Map) ShardForKey(key string) int { return m.Slots[m.SlotOf(key)] }

// Group returns the replica group of a shard (nil if unknown).
func (m Map) Group(id int) []types.ProcID { return m.Groups[id] }

// ShardIDs returns the shard ids in sorted order.
func (m Map) ShardIDs() []int {
	ids := make([]int, 0, len(m.Groups))
	for id := range m.Groups {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// SlotsOwned returns the sorted slots a shard currently owns.
func (m Map) SlotsOwned(id int) []int {
	var out []int
	for s, owner := range m.Slots {
		if owner == id {
			out = append(out, s)
		}
	}
	return out
}

// Validate checks internal consistency: every slot's owner has a group and
// every group is non-empty.
func (m Map) Validate() error {
	if len(m.Slots) == 0 {
		return fmt.Errorf("shard: map has no slots")
	}
	for s, owner := range m.Slots {
		if g, ok := m.Groups[owner]; !ok || len(g) == 0 {
			return fmt.Errorf("shard: slot %d owned by shard %d which has no replica group", s, owner)
		}
	}
	return nil
}

// Encode serializes the map (JSON; the map is control-plane state, tiny and
// rarely moved, so the hand-rolled binary codec would be overkill).
func (m Map) Encode() []byte {
	b, _ := json.Marshal(m)
	return b
}

// DecodeMap deserializes a map produced by Encode.
func DecodeMap(b []byte) (Map, error) {
	var m Map
	if err := json.Unmarshal(b, &m); err != nil {
		return Map{}, fmt.Errorf("shard: decode map: %w", err)
	}
	return m, nil
}

func (m Map) String() string {
	out := fmt.Sprintf("epoch %d:", m.Epoch)
	for _, id := range m.ShardIDs() {
		out += fmt.Sprintf(" s%d(%d slots, group %v)", id, len(m.SlotsOwned(id)), m.Groups[id])
	}
	return out
}
