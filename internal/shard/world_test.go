package shard

import (
	"errors"
	"fmt"
	"testing"

	"vsgm/internal/types"
)

func newTestWorld(t *testing.T, cfg WorldConfig) *World {
	t.Helper()
	if cfg.Slots == 0 {
		cfg.Slots = 16
	}
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := w.Check(); err != nil {
			t.Errorf("world check: %v", err)
		}
	})
	return w
}

// keyForShard finds a key the map routes to the wanted shard.
func keyForShard(t *testing.T, m Map, shard int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("k%04d", i)
		if m.ShardForKey(k) == shard {
			return k
		}
	}
	t.Fatalf("no key found for shard %d", shard)
	return ""
}

// keyInSlotRange finds a key hashing into [lo,hi].
func keyInSlotRange(t *testing.T, m Map, lo, hi int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("r%04d", i)
		if s := m.SlotOf(k); s >= lo && s <= hi {
			return k
		}
	}
	t.Fatalf("no key found for slots [%d,%d]", lo, hi)
	return ""
}

func TestWorldBasicOpsThroughRouter(t *testing.T) {
	w := newTestWorld(t, WorldConfig{Shards: 2, Seed: 101})
	r := NewRouter(w, 0)
	for i := 0; i < 24; i++ {
		k := fmt.Sprintf("key%02d", i)
		if err := r.Set(k, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 24; i++ {
		k := fmt.Sprintf("key%02d", i)
		v, ok, err := r.Get(k)
		if err != nil || !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %s = %q ok=%v err=%v", k, v, ok, err)
		}
	}
	if err := r.Del("key00"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := r.Get("key00"); err != nil || ok {
		t.Fatalf("deleted key still present (err %v)", err)
	}
	if err := w.VerifyAcked(); err != nil {
		t.Fatal(err)
	}
	// Both shards served something (24 keys over 16 slots: overwhelmingly
	// likely, and deterministic for this seed/key set).
	for _, id := range w.ShardIDs() {
		if w.groups[id].ops.Value() == 0 {
			t.Errorf("shard %d served no ops", id)
		}
	}
}

func TestMoveGroupReshardKeepsAckedWrites(t *testing.T) {
	w := newTestWorld(t, WorldConfig{Shards: 2, Seed: 103})
	r := NewRouter(w, 0)
	for i := 0; i < 16; i++ {
		if err := r.Set(fmt.Sprintf("mg%02d", i), "x"); err != nil {
			t.Fatal(err)
		}
	}
	epochBefore := w.CommittedMap().Epoch

	// Re-home shard 0 onto a group overlapping in one member only.
	procs := w.GroupProcs(0)
	newGroup := []types.ProcID{procs[2], procs[3], procs[4]}
	rs := NewResharder(w, Reshard{ID: "mg-1", Kind: MoveGroup, Shard: 0, NewGroup: newGroup})
	if err := rs.Run(); err != nil {
		t.Fatal(err)
	}
	if got := w.CommittedMap().Epoch; got != epochBefore+1 {
		t.Fatalf("epoch %d, want %d", got, epochBefore+1)
	}
	if !w.Group(0).Equal(types.NewProcSet(newGroup...)) {
		t.Fatalf("shard 0 group %s, want %v", w.Group(0), newGroup)
	}
	// The joiners hold the full state, marker included.
	for _, p := range newGroup {
		if got := w.Machine(0, p).LastMarker(); got != "mg-1" {
			t.Errorf("%s lacks handoff marker (has %q)", p, got)
		}
	}
	if err := w.VerifyAcked(); err != nil {
		t.Fatal(err)
	}
	// The re-homed shard keeps serving.
	if err := r.Set("after-move", "y"); err != nil {
		t.Fatal(err)
	}
	if err := w.VerifyAcked(); err != nil {
		t.Fatal(err)
	}
	if w.reg != nil && w.mRounds.Value() != 1 {
		t.Errorf("reshard rounds %d, want 1", w.mRounds.Value())
	}
}

func TestMoveSlotsReshardRedirectsStaleClient(t *testing.T) {
	w := newTestWorld(t, WorldConfig{Shards: 2, Seed: 107})
	stale := NewRouter(w, 0)
	initial := w.CommittedMap()
	lo, hi := 0, 3
	moved := keyInSlotRange(t, initial, lo, hi)
	if initial.ShardForKey(moved) != 0 {
		t.Fatalf("slots [0,3] should start on shard 0")
	}
	if err := stale.Set(moved, "before"); err != nil {
		t.Fatal(err)
	}

	rs := NewResharder(w, Reshard{ID: "ms-1", Kind: MoveSlots, Shard: 0, Dst: 1, SlotLo: lo, SlotHi: hi})
	if err := rs.Run(); err != nil {
		t.Fatal(err)
	}
	after := w.CommittedMap()
	if after.ShardForKey(moved) != 1 {
		t.Fatalf("moved key still routed to shard %d", after.ShardForKey(moved))
	}

	// The stale client still holds the old map: its write bounces off shard
	// 0, refreshes, and lands on shard 1.
	wrongBefore := w.mWrong.Value()
	if err := stale.Set(moved, "after"); err != nil {
		t.Fatal(err)
	}
	if stale.Redirects() == 0 || w.mWrong.Value() == wrongBefore {
		t.Fatal("stale client should have been redirected")
	}
	if stale.Epoch() != after.Epoch {
		t.Fatalf("router cached epoch %d, want %d", stale.Epoch(), after.Epoch)
	}
	v, ok, err := stale.Get(moved)
	if err != nil || !ok || v != "after" {
		t.Fatalf("read-after-reshard: %q ok=%v err=%v", v, ok, err)
	}
	// The moved value survived and the source pruned its copy.
	if err := w.VerifyAcked(); err != nil {
		t.Fatal(err)
	}
	p := w.Group(0).Sorted()[0]
	if _, held := w.Machine(0, p).Get(moved); held {
		t.Error("source shard still holds the moved key after prune")
	}
	if w.mHandoff.Value() == 0 {
		t.Error("handoff bytes metric did not move")
	}
}

func TestStaleEpochSpanningTwoReshards(t *testing.T) {
	w := newTestWorld(t, WorldConfig{Shards: 2, Seed: 109})
	stale := NewRouter(w, 0)
	initial := w.CommittedMap()
	k01 := keyInSlotRange(t, initial, 0, 1)  // shard 0 → shard 1 (reshard A)
	k89 := keyInSlotRange(t, initial, 8, 9)  // shard 1 → shard 0 (reshard B)
	if err := stale.Set(k01, "one"); err != nil {
		t.Fatal(err)
	}
	if err := stale.Set(k89, "two"); err != nil {
		t.Fatal(err)
	}
	cachedEpoch := stale.Epoch()

	for _, r := range []Reshard{
		{ID: "span-a", Kind: MoveSlots, Shard: 0, Dst: 1, SlotLo: 0, SlotHi: 1},
		{ID: "span-b", Kind: MoveSlots, Shard: 1, Dst: 0, SlotLo: 8, SlotHi: 9},
	} {
		if err := NewResharder(w, r).Run(); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.CommittedMap().Epoch; got != cachedEpoch+2 {
		t.Fatalf("epoch %d, want %d", got, cachedEpoch+2)
	}

	// The client's map is now two epochs stale and wrong about both keys.
	if err := stale.Set(k01, "one'"); err != nil {
		t.Fatal(err)
	}
	// After the first redirect the map is fresh; the second key routes
	// correctly on the first try.
	if err := stale.Set(k89, "two'"); err != nil {
		t.Fatal(err)
	}
	if err := w.VerifyAcked(); err != nil {
		t.Fatal(err)
	}
	if got := stale.Epoch(); got != cachedEpoch+2 {
		t.Fatalf("router ended on epoch %d, want %d", got, cachedEpoch+2)
	}
}

// bouncingBackend always answers ErrWrongShard — a server whose map never
// agrees with ours.
type bouncingBackend struct {
	m     Map
	calls int
}

func (b *bouncingBackend) Do(int, int64, KVOp) (Result, error) {
	b.calls++
	return Result{}, ErrWrongShard
}

func (b *bouncingBackend) FetchMap() (Map, error) { return b.m, nil }

func TestRouterRedirectLoopBound(t *testing.T) {
	m := testMap(t, 2)
	b := &bouncingBackend{m: m}
	r := NewRouter(b, 3)
	err := r.Set("k", "v")
	if !errors.Is(err, ErrRedirectLoop) {
		t.Fatalf("err = %v, want ErrRedirectLoop", err)
	}
	if b.calls != 4 { // initial attempt + maxRedirects retries
		t.Fatalf("backend called %d times, want 4", b.calls)
	}
}

func TestConcurrentReshardProposalsSerialized(t *testing.T) {
	w := newTestWorld(t, WorldConfig{Shards: 2, Seed: 113})
	a := NewResharder(w, Reshard{ID: "c-a", Kind: MoveSlots, Shard: 0, Dst: 1, SlotLo: 0, SlotHi: 1})
	if _, err := a.Step(); err != nil { // begin only: a holds shard 0 and 1
		t.Fatal(err)
	}
	b := NewResharder(w, Reshard{ID: "c-b", Kind: MoveSlots, Shard: 1, Dst: 0, SlotLo: 8, SlotHi: 9})
	if err := b.Run(); !errors.Is(err, ErrRejected) {
		t.Fatalf("second concurrent proposal: err = %v, want ErrRejected", err)
	}
	// The loser's failure must not abort the winner: a runs to completion.
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	// With a committed and the shards free, b's proposal is accepted now.
	b2 := NewResharder(w, Reshard{ID: "c-b2", Kind: MoveSlots, Shard: 1, Dst: 0, SlotLo: 8, SlotHi: 9})
	if err := b2.Run(); err != nil {
		t.Fatal(err)
	}
	if got := w.MetaMachineView().Rejected(); got != 1 {
		t.Errorf("meta rejected count %d, want 1", got)
	}
	if err := w.VerifyAcked(); err != nil {
		t.Fatal(err)
	}
}

func TestWritesToMigratingSlotBounceThenLand(t *testing.T) {
	w := newTestWorld(t, WorldConfig{Shards: 2, Seed: 127})
	r := NewRouter(w, 0)
	initial := w.CommittedMap()
	moved := keyInSlotRange(t, initial, 0, 3)
	if err := r.Set(moved, "v0"); err != nil {
		t.Fatal(err)
	}

	rs := NewResharder(w, Reshard{ID: "mid-1", Kind: MoveSlots, Shard: 0, Dst: 1, SlotLo: 0, SlotHi: 3})
	for i := 0; i < 2; i++ { // begin + snapshot: the range is now migrating
		if _, err := rs.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Set(moved, "v1"); !errors.Is(err, ErrResharding) {
		t.Fatalf("write to migrating slot: err = %v, want ErrResharding", err)
	}
	// Reads still serve from the source during the handoff.
	if v, ok, err := r.Get(moved); err != nil || !ok || v != "v0" {
		t.Fatalf("read during handoff: %q ok=%v err=%v", v, ok, err)
	}
	if err := rs.Run(); err != nil {
		t.Fatal(err)
	}
	// Retry after cutover: redirected to the new owner and acknowledged.
	if err := r.Set(moved, "v1"); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := r.Get(moved); !ok || v != "v1" {
		t.Fatalf("post-cutover read %q ok=%v", v, ok)
	}
	if err := w.VerifyAcked(); err != nil {
		t.Fatal(err)
	}
}

func TestQuorumPartitionPreservesAckedWrites(t *testing.T) {
	w := newTestWorld(t, WorldConfig{Shards: 2, Seed: 131})
	r := NewRouter(w, 0)
	k := keyForShard(t, w.CommittedMap(), 0)
	if err := r.Set(k, "before"); err != nil {
		t.Fatal(err)
	}

	group := w.Group(0).Sorted()
	maj := types.NewProcSet(group[0], group[1])
	min := types.NewProcSet(group[2])
	if err := w.PartitionShard(0, maj, min); err != nil {
		t.Fatal(err)
	}
	// The minority replica is demoted: it must not be authoritative.
	if w.Replica(0, group[2]).Authoritative() {
		t.Fatal("minority replica still authoritative")
	}
	// Writes keep flowing through the majority and are acknowledged.
	if err := r.Set(k, "during"); err != nil {
		t.Fatal(err)
	}

	if err := w.HealShard(0, types.NewProcSet(group...)); err != nil {
		t.Fatal(err)
	}
	// The merge must adopt the primary component's state — the acknowledged
	// write survives on every replica, including the rejoined minority.
	if err := w.VerifyAcked(); err != nil {
		t.Fatal(err)
	}
	if v, ok := w.Machine(0, group[2]).Get(k); !ok || v != "during" {
		t.Fatalf("rejoined minority reads %q ok=%v, want %q", v, ok, "during")
	}
}

func TestCrashRecoverReplicaRejoins(t *testing.T) {
	w := newTestWorld(t, WorldConfig{Shards: 2, Seed: 137})
	r := NewRouter(w, 0)
	k := keyForShard(t, w.CommittedMap(), 0)
	if err := r.Set(k, "v1"); err != nil {
		t.Fatal(err)
	}
	group := w.Group(0).Sorted()
	victim := group[2]
	if err := w.CrashReplica(0, victim); err != nil {
		t.Fatal(err)
	}
	if err := r.Set(k, "v2"); err != nil { // survivors keep serving
		t.Fatal(err)
	}
	if err := w.RecoverReplica(0, victim); err != nil {
		t.Fatal(err)
	}
	if err := w.ReconfigureShard(0, types.NewProcSet(group...)); err != nil {
		t.Fatal(err)
	}
	if err := w.VerifyAcked(); err != nil {
		t.Fatal(err)
	}
	if v, ok := w.Machine(0, victim).Get(k); !ok || v != "v2" {
		t.Fatalf("recovered replica reads %q ok=%v, want v2", v, ok)
	}
}
