package shard

import (
	"encoding/json"
	"fmt"
	"sort"

	"vsgm/internal/rsm"
	"vsgm/internal/types"
)

// ReshardKind discriminates the two rebalance operations.
type ReshardKind string

const (
	// MoveGroup re-homes a shard onto a new replica group: the shard's own
	// group reconfigures through the joint membership and the transitional
	// set drives full-state handoff to the joiners.
	MoveGroup ReshardKind = "group"
	// MoveSlots moves a contiguous slot range from one shard to another:
	// the key range rides chunked install commands (and a handoff marker)
	// through the destination group's total order, and cutover happens only
	// after the destination installs the view that contains the marker.
	MoveSlots ReshardKind = "slots"
)

// Reshard is one rebalance proposal.
type Reshard struct {
	// ID is the coordinator-chosen proposal identifier; outcomes are
	// reported against it.
	ID string `json:"id"`
	// Kind selects group move vs slot move.
	Kind ReshardKind `json:"kind"`
	// Shard is the source shard.
	Shard int `json:"shard"`
	// NewGroup is the destination replica group (MoveGroup).
	NewGroup []types.ProcID `json:"new_group,omitempty"`
	// Dst is the destination shard (MoveSlots).
	Dst int `json:"dst,omitempty"`
	// SlotLo/SlotHi bound the inclusive slot range to move (MoveSlots).
	SlotLo int `json:"slot_lo,omitempty"`
	SlotHi int `json:"slot_hi,omitempty"`
}

// MetaOp is the command vocabulary of the meta-group RSM.
type MetaOp struct {
	Op      string  `json:"op"` // "begin", "commit", "abort"
	Reshard Reshard `json:"reshard"`
}

// EncodeBegin returns the command proposing a reshard.
func EncodeBegin(r Reshard) []byte { b, _ := json.Marshal(MetaOp{Op: "begin", Reshard: r}); return b }

// EncodeCommit returns the command committing the pending reshard of
// r.Shard (matched by ID).
func EncodeCommit(r Reshard) []byte { b, _ := json.Marshal(MetaOp{Op: "commit", Reshard: r}); return b }

// EncodeAbort returns the command aborting the pending reshard of r.Shard
// (matched by ID).
func EncodeAbort(r Reshard) []byte { b, _ := json.Marshal(MetaOp{Op: "abort", Reshard: r}); return b }

// Outcome of a proposal, kept so coordinators (and tests) can learn whether
// their begin won the race against a concurrent proposal.
const (
	OutcomeAccepted  = "accepted"
	OutcomeRejected  = "rejected"
	OutcomeCommitted = "committed"
	OutcomeAborted   = "aborted"
)

// maxOutcomes bounds the outcome journal; older entries are evicted in
// arrival order.
const maxOutcomes = 256

// metaState is the replicated state of the meta-group: the committed map,
// at most one pending reshard per involved shard, and a bounded outcome
// journal.
type metaState struct {
	Map      Map                 `json:"map"`
	Pending  map[string]*Reshard `json:"pending"` // keyed by source shard id (decimal)
	Outcomes map[string]string   `json:"outcomes"`
	Order    []string            `json:"order"` // outcome eviction order
	Rejected int64               `json:"rejected"`
}

// MetaMachine is the shard-map RSM: a deterministic state machine replicated
// on the meta-group. All mutation flows through Apply in total order, so
// every meta replica holds the identical map and the identical verdicts on
// racing reshard proposals.
type MetaMachine struct {
	st metaState
	// OnCommit observes every committed map change (called during Apply on
	// every replica; wire it only where a single observer is wanted, e.g.
	// the world's server-side map watcher).
	OnCommit func(Map)
}

// NewMetaMachine builds the machine holding an initial committed map.
func NewMetaMachine(initial Map) *MetaMachine {
	return &MetaMachine{st: metaState{
		Map:      initial.Clone(),
		Pending:  make(map[string]*Reshard),
		Outcomes: make(map[string]string),
	}}
}

// CurrentMap returns the committed map.
func (m *MetaMachine) CurrentMap() Map { return m.st.Map.Clone() }

// PendingFor returns the pending reshard involving shard id, if any.
func (m *MetaMachine) PendingFor(id int) *Reshard {
	if r, ok := m.st.Pending[key(id)]; ok {
		return r
	}
	for _, r := range m.st.Pending {
		if r.Kind == MoveSlots && r.Dst == id {
			return r
		}
	}
	return nil
}

// Outcome returns the recorded outcome for a proposal id ("" if unknown or
// evicted).
func (m *MetaMachine) Outcome(id string) string { return m.st.Outcomes[id] }

// Rejected returns how many begin proposals were rejected for conflicting
// with a pending reshard.
func (m *MetaMachine) Rejected() int64 { return m.st.Rejected }

func key(shard int) string { return fmt.Sprintf("%d", shard) }

// Apply implements rsm.StateMachine. Malformed or stale commands are
// ignored or rejected deterministically — every replica reaches the same
// verdict because the commands arrive in total order.
func (m *MetaMachine) Apply(_ types.ProcID, cmd []byte) {
	var op MetaOp
	if err := json.Unmarshal(cmd, &op); err != nil {
		return
	}
	r := op.Reshard
	switch op.Op {
	case "begin":
		if err := m.beginOK(r); err != nil {
			m.st.Rejected++
			m.outcome(r.ID, OutcomeRejected+": "+err.Error())
			return
		}
		cp := r
		m.st.Pending[key(r.Shard)] = &cp
		m.outcome(r.ID, OutcomeAccepted)
	case "commit":
		p, ok := m.st.Pending[key(r.Shard)]
		if !ok || p.ID != r.ID {
			return // stale commit for a superseded or aborted proposal
		}
		m.applyCommit(*p)
		delete(m.st.Pending, key(r.Shard))
		m.outcome(r.ID, OutcomeCommitted)
		if m.OnCommit != nil {
			m.OnCommit(m.st.Map.Clone())
		}
	case "abort":
		p, ok := m.st.Pending[key(r.Shard)]
		if !ok || p.ID != r.ID {
			return
		}
		delete(m.st.Pending, key(r.Shard))
		m.outcome(r.ID, OutcomeAborted)
	}
}

// beginOK validates a begin proposal against the committed map and the
// pending set: one reshard at a time per involved shard, structurally sound
// parameters only.
func (m *MetaMachine) beginOK(r Reshard) error {
	if r.ID == "" {
		return fmt.Errorf("no proposal id")
	}
	if _, ok := m.st.Map.Groups[r.Shard]; !ok {
		return fmt.Errorf("unknown shard %d", r.Shard)
	}
	for _, p := range m.st.Pending {
		if p.Shard == r.Shard || (p.Kind == MoveSlots && p.Dst == r.Shard) {
			return fmt.Errorf("shard %d already resharding (proposal %s)", r.Shard, p.ID)
		}
		if r.Kind == MoveSlots && (p.Shard == r.Dst || (p.Kind == MoveSlots && p.Dst == r.Dst)) {
			return fmt.Errorf("destination shard %d already resharding (proposal %s)", r.Dst, p.ID)
		}
	}
	switch r.Kind {
	case MoveGroup:
		if len(r.NewGroup) == 0 {
			return fmt.Errorf("empty destination group")
		}
	case MoveSlots:
		if _, ok := m.st.Map.Groups[r.Dst]; !ok {
			return fmt.Errorf("unknown destination shard %d", r.Dst)
		}
		if r.Dst == r.Shard {
			return fmt.Errorf("destination equals source")
		}
		if r.SlotLo < 0 || r.SlotHi >= len(m.st.Map.Slots) || r.SlotLo > r.SlotHi {
			return fmt.Errorf("slot range [%d,%d] out of bounds", r.SlotLo, r.SlotHi)
		}
	default:
		return fmt.Errorf("unknown reshard kind %q", r.Kind)
	}
	return nil
}

func (m *MetaMachine) applyCommit(r Reshard) {
	next := m.st.Map.Clone()
	next.Epoch++
	switch r.Kind {
	case MoveGroup:
		g := append([]types.ProcID(nil), r.NewGroup...)
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		next.Groups[r.Shard] = g
	case MoveSlots:
		for s := r.SlotLo; s <= r.SlotHi; s++ {
			if next.Slots[s] == r.Shard {
				next.Slots[s] = r.Dst
			}
		}
	}
	m.st.Map = next
}

func (m *MetaMachine) outcome(id, verdict string) {
	if id == "" {
		return
	}
	if _, exists := m.st.Outcomes[id]; !exists {
		m.st.Order = append(m.st.Order, id)
	}
	m.st.Outcomes[id] = verdict
	for len(m.st.Order) > maxOutcomes {
		delete(m.st.Outcomes, m.st.Order[0])
		m.st.Order = m.st.Order[1:]
	}
}

// Snapshot implements rsm.StateMachine.
func (m *MetaMachine) Snapshot() []byte {
	b, _ := json.Marshal(m.st)
	return b
}

// Restore implements rsm.StateMachine.
func (m *MetaMachine) Restore(snapshot []byte) error {
	var st metaState
	if err := json.Unmarshal(snapshot, &st); err != nil {
		return fmt.Errorf("shard: meta restore: %w", err)
	}
	if st.Pending == nil {
		st.Pending = make(map[string]*Reshard)
	}
	if st.Outcomes == nil {
		st.Outcomes = make(map[string]string)
	}
	m.st = st
	return nil
}

var _ rsm.StateMachine = (*MetaMachine)(nil)
