package shard

import (
	"os"
	"path/filepath"
	"testing"
)

func TestMachineColdRestartFromFileStore(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(st)
	m.Apply("p", EncodeSet("a", "1"))
	m.Apply("p", EncodeSet("b", "2"))
	m.Apply("p", EncodeDel("a"))
	fp := m.Fingerprint()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m2, err := LoadMachine(st2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Fingerprint() != fp {
		t.Fatalf("cold restart diverged: %q vs %q", m2.Fingerprint(), fp)
	}
	if _, ok := m2.Get("a"); ok {
		t.Fatal("deleted key resurrected by replay")
	}
}

func TestMachineRestartAfterSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(st)
	// Cross the compaction threshold so snapshot + truncated WAL both matter.
	for i := 0; i < snapEvery+10; i++ {
		m.Apply("p", EncodeSet(key(i%50), key(i)))
	}
	if m.StoreErr() != nil {
		t.Fatal(m.StoreErr())
	}
	fp := m.Fingerprint()
	st.Close()

	st2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m2, err := LoadMachine(st2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Fingerprint() != fp {
		t.Fatal("compacted restart diverged")
	}
}

func TestStoreTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(st)
	m.Apply("p", EncodeSet("a", "1"))
	m.Apply("p", EncodeSet("b", "2"))
	st.Close()

	// Simulate a crash mid-append: chop bytes off the WAL tail.
	walPath := filepath.Join(dir, kvWALName)
	b, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m2, err := LoadMachine(st2)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m2.Get("a"); !ok || v != "1" {
		t.Fatalf("intact prefix lost: a=%q ok=%v", v, ok)
	}
	if _, ok := m2.Get("b"); ok {
		t.Fatal("torn record should not replay")
	}
}

func TestMachineRestoreWritesThroughToStore(t *testing.T) {
	st := NewMemStore()
	src := NewMachine(nil)
	src.Apply("p", EncodeSet("x", "42"))
	src.Apply("p", EncodeMarker("r-1"))

	dst := NewMachine(st)
	if err := dst.Restore(src.Snapshot()); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadMachine(st)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := reloaded.Get("x"); !ok || v != "42" {
		t.Fatal("state transfer not durable")
	}
	if reloaded.LastMarker() != "r-1" {
		t.Fatal("handoff marker not durable")
	}
}

func TestRangeSnapshotAndPrune(t *testing.T) {
	m := NewMachine(nil)
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, k := range keys {
		m.Apply("p", EncodeSet(k, "v"))
	}
	const nslots = 8
	snap := m.RangeSnapshot(0, 3, nslots)
	for k := range snap {
		if s := SlotForKey(k, nslots); s > 3 {
			t.Fatalf("key %q (slot %d) outside requested range", k, s)
		}
	}
	m.Apply("p", EncodePrune(0, 3, nslots))
	for _, k := range keys {
		_, ok := m.Get(k)
		inRange := SlotForKey(k, nslots) <= 3
		if inRange && ok {
			t.Errorf("key %q survived prune of its slot", k)
		}
		if !inRange && !ok {
			t.Errorf("key %q outside the range was pruned", k)
		}
	}
}
