package shard

import (
	"fmt"
	"path/filepath"
	"strconv"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/obs"
	"vsgm/internal/rsm"
	"vsgm/internal/sim"
	"vsgm/internal/spec"
	"vsgm/internal/types"
)

// WorldConfig parameterizes a sharded deployment on the deterministic
// simulator.
type WorldConfig struct {
	// Shards is the number of shards (each its own group); default 2.
	Shards int
	// Replicas is the replica-group size per shard; default 3.
	Replicas int
	// Spares is how many extra (initially idle) processes each shard's
	// cluster holds, available as MoveGroup destinations and crash-recovery
	// stand-ins; default 2.
	Spares int
	// MetaReplicas sizes the meta-group carrying the shard map; default 3.
	MetaReplicas int
	// Slots is the hash-slot space size; default DefaultSlots.
	Slots int
	// Quorum is the primary-component threshold for shard replicas; default
	// majority of Replicas. The meta-group always runs at majority quorum.
	Quorum int
	// Seed drives every cluster's deterministic RNG.
	Seed int64
	// StateDir, when non-empty, backs every shard replica with a FileStore
	// under StateDir/s<shard>/<proc>; empty selects in-memory stores.
	StateDir string
	// Registry receives the vsgm_shard_* metrics; nil allocates a private
	// one.
	Registry *obs.Registry
}

// shardGroup is one shard's deployment: a simulated cluster whose process
// universe is the replica group plus spares, with an rsm replica and a
// Machine per process.
type shardGroup struct {
	id       int
	c        *sim.Cluster
	suite    *spec.Suite
	procs    []types.ProcID
	replicas map[types.ProcID]*rsm.Replica
	machines map[types.ProcID]*Machine
	stores   map[types.ProcID]Store
	current  types.ProcSet // membership of the group's latest reconfiguration
	ops      *obs.Counter
}

// World is a complete sharded KV deployment on the simulator: one cluster
// per shard, one meta cluster carrying the shard-map RSM, an acknowledgment
// ledger for the no-lost-writes checker, and the vsgm_shard_* metrics. It
// implements Backend, so a Router can sit directly on top. Not safe for
// concurrent use (the simulator is single-threaded by design).
type World struct {
	cfg WorldConfig
	reg *obs.Registry

	meta         *sim.Cluster
	metaSuite    *spec.Suite
	metaProcs    []types.ProcID
	metaReplicas map[types.ProcID]*rsm.Replica
	metaMachines map[types.ProcID]*MetaMachine

	groups    map[int]*shardGroup
	committed Map
	migrating map[int]string // slot → reshard id currently moving it

	acks   []spec.KVAck
	ackSeq int64

	mWrong   *obs.Counter
	mHandoff *obs.Counter
	mRounds  *obs.Counter
	mAborts  *obs.Counter
	mEpoch   *obs.Gauge

	errs []error
}

// ShardProcs returns the process identifiers of shard id's cluster
// (replicas first, then spares): s<id>-p00, s<id>-p01, ...
func ShardProcs(id, n int) []types.ProcID {
	out := make([]types.ProcID, n)
	for i := range out {
		out[i] = types.ProcID(fmt.Sprintf("s%d-p%02d", id, i))
	}
	return out
}

// MetaProcs returns the meta-group process identifiers m00, m01, ...
func MetaProcs(n int) []types.ProcID {
	out := make([]types.ProcID, n)
	for i := range out {
		out[i] = types.ProcID(fmt.Sprintf("m%02d", i))
	}
	return out
}

func (cfg *WorldConfig) defaults() {
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.Spares < 0 {
		cfg.Spares = 0
	} else if cfg.Spares == 0 {
		cfg.Spares = 2
	}
	if cfg.MetaReplicas <= 0 {
		cfg.MetaReplicas = 3
	}
	if cfg.Slots <= 0 {
		cfg.Slots = DefaultSlots
	}
	if cfg.Quorum <= 0 {
		cfg.Quorum = cfg.Replicas/2 + 1
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
}

// NewWorld builds and boots the deployment: every shard group and the
// meta-group are reconfigured into their initial memberships and run to
// quiescence.
func NewWorld(cfg WorldConfig) (*World, error) {
	cfg.defaults()
	w := &World{
		cfg:       cfg,
		reg:       cfg.Registry,
		groups:    make(map[int]*shardGroup, cfg.Shards),
		migrating: make(map[int]string),
	}
	w.mWrong = w.reg.Counter("vsgm_shard_wrong_shard_redirects_total",
		"Requests bounced with ErrWrongShard because the key's slot lives elsewhere.")
	w.mHandoff = w.reg.Counter("vsgm_shard_handoff_bytes_total",
		"Bytes of key-range state moved through install commands during slot reshards.")
	w.mRounds = w.reg.Counter("vsgm_shard_reshard_rounds_total",
		"Reshard proposals that ran to commit.")
	w.mAborts = w.reg.Counter("vsgm_shard_reshard_aborts_total",
		"Reshard proposals that were aborted after acceptance.")
	w.mEpoch = w.reg.Gauge("vsgm_shard_map_epoch",
		"Epoch of the committed shard map.")

	// Initial map: shard id → the first Replicas procs of its cluster.
	initGroups := make(map[int][]types.ProcID, cfg.Shards)
	for id := 0; id < cfg.Shards; id++ {
		initGroups[id] = ShardProcs(id, cfg.Replicas)
	}
	initial, err := NewUniformMap(cfg.Slots, initGroups)
	if err != nil {
		return nil, err
	}

	// Meta-group.
	w.metaProcs = MetaProcs(cfg.MetaReplicas)
	w.metaReplicas = make(map[types.ProcID]*rsm.Replica, cfg.MetaReplicas)
	w.metaMachines = make(map[types.ProcID]*MetaMachine, cfg.MetaReplicas)
	w.metaSuite = spec.FullSuite()
	metaCluster, err := sim.NewCluster(sim.Config{
		Procs:           w.metaProcs,
		Latency:         sim.UniformLatency{Base: 10 * time.Millisecond, Jitter: 5 * time.Millisecond},
		MembershipRound: 10 * time.Millisecond,
		Seed:            cfg.Seed,
		Suite:           w.metaSuite,
		OnAppEvent: func(p types.ProcID, ev core.Event) {
			if r := w.metaReplicas[p]; r != nil {
				if err := r.HandleEvent(ev); err != nil {
					w.errs = append(w.errs, fmt.Errorf("meta %s: %w", p, err))
				}
			}
		},
	})
	if err != nil {
		return nil, err
	}
	w.meta = metaCluster
	for i, p := range w.metaProcs {
		p := p
		m := NewMetaMachine(initial)
		if i == 0 {
			// The watcher: the server side learns committed maps from the
			// first meta replica's applies.
			m.OnCommit = w.onMapCommit
		}
		w.metaMachines[p] = m
		r, err := rsm.NewReplica(rsm.Config{
			ID:        p,
			Machine:   m,
			Bootstrap: true,
			Quorum:    cfg.MetaReplicas/2 + 1,
			Send: func(payload []byte) error {
				_, err := metaCluster.Send(p, payload)
				return err
			},
		})
		if err != nil {
			return nil, err
		}
		w.metaReplicas[p] = r
	}
	if _, _, err := w.meta.ReconfigureTo(types.NewProcSet(w.metaProcs...)); err != nil {
		return nil, fmt.Errorf("shard: boot meta-group: %w", err)
	}

	// Shard groups.
	for id := 0; id < cfg.Shards; id++ {
		g, err := w.newShardGroup(id, initial.Groups[id])
		if err != nil {
			return nil, err
		}
		w.groups[id] = g
	}
	w.committed = initial.Clone()
	w.mEpoch.Set(initial.Epoch)
	return w, nil
}

func (w *World) newShardGroup(id int, members []types.ProcID) (*shardGroup, error) {
	cfg := w.cfg
	g := &shardGroup{
		id:       id,
		procs:    ShardProcs(id, cfg.Replicas+cfg.Spares),
		replicas: make(map[types.ProcID]*rsm.Replica),
		machines: make(map[types.ProcID]*Machine),
		stores:   make(map[types.ProcID]Store),
		suite:    spec.FullSuite(),
		ops: w.reg.Counter("vsgm_shard_ops_total",
			"Acknowledged KV operations served, per shard.", obs.L("shard", strconv.Itoa(id))),
	}
	c, err := sim.NewCluster(sim.Config{
		Procs:           g.procs,
		Latency:         sim.UniformLatency{Base: 10 * time.Millisecond, Jitter: 5 * time.Millisecond},
		MembershipRound: 10 * time.Millisecond,
		Seed:            cfg.Seed + int64(id) + 1,
		Suite:           g.suite,
		OnAppEvent: func(p types.ProcID, ev core.Event) {
			if r := g.replicas[p]; r != nil {
				if err := r.HandleEvent(ev); err != nil {
					w.errs = append(w.errs, fmt.Errorf("shard %d %s: %w", id, p, err))
				}
			}
		},
	})
	if err != nil {
		return nil, err
	}
	g.c = c
	initialSet := types.NewProcSet(members...)
	for _, p := range g.procs {
		if err := w.attachReplica(g, p, initialSet.Contains(p), false); err != nil {
			return nil, err
		}
	}
	if _, _, err := c.ReconfigureTo(initialSet); err != nil {
		return nil, fmt.Errorf("shard: boot shard %d: %w", id, err)
	}
	g.current = initialSet
	return g, nil
}

// attachReplica builds the store, machine, and rsm replica for one shard
// process. fromDisk reloads the machine from the durable store (the
// crash-recovery path); otherwise the machine starts empty.
func (w *World) attachReplica(g *shardGroup, p types.ProcID, bootstrap, fromDisk bool) error {
	store := g.stores[p]
	if store == nil {
		if w.cfg.StateDir != "" {
			fs, err := NewFileStore(filepath.Join(w.cfg.StateDir, fmt.Sprintf("s%d", g.id), string(p)))
			if err != nil {
				return err
			}
			store = fs
		} else {
			store = NewMemStore()
		}
		g.stores[p] = store
	}
	var m *Machine
	var err error
	if fromDisk {
		if m, err = LoadMachine(store); err != nil {
			return fmt.Errorf("shard: reload %s: %w", p, err)
		}
	} else {
		m = NewMachine(store)
	}
	g.machines[p] = m
	r, err := rsm.NewReplica(rsm.Config{
		ID:        p,
		Machine:   m,
		Bootstrap: bootstrap,
		Quorum:    w.cfg.Quorum,
		Send: func(payload []byte) error {
			_, err := g.c.Send(p, payload)
			return err
		},
	})
	if err != nil {
		return err
	}
	g.replicas[p] = r
	return nil
}

// onMapCommit is the watcher hook: the first meta replica applied a commit,
// so the committed map (the one servers validate requests against) moves.
func (w *World) onMapCommit(m Map) {
	w.committed = m
	w.mEpoch.Set(m.Epoch)
}

// ---- accessors ----

// Registry returns the metrics registry.
func (w *World) Registry() *obs.Registry { return w.reg }

// CommittedMap returns the committed shard map as the servers see it.
func (w *World) CommittedMap() Map { return w.committed.Clone() }

// Group returns shard id's current membership.
func (w *World) Group(id int) types.ProcSet { return w.groups[id].current.Clone() }

// GroupProcs returns the full process universe of shard id's cluster
// (members and spares).
func (w *World) GroupProcs(id int) []types.ProcID {
	return append([]types.ProcID(nil), w.groups[id].procs...)
}

// ShardIDs returns the shard ids.
func (w *World) ShardIDs() []int { return w.committed.ShardIDs() }

// Acks returns the acknowledgment ledger.
func (w *World) Acks() []spec.KVAck { return append([]spec.KVAck(nil), w.acks...) }

// MetaMachineView returns the watcher meta machine (for outcome queries and
// tests). All meta machines hold identical state.
func (w *World) MetaMachineView() *MetaMachine { return w.metaMachines[w.metaProcs[0]] }

// Machine returns the state machine of one shard process (tests).
func (w *World) Machine(shard int, p types.ProcID) *Machine { return w.groups[shard].machines[p] }

// Replica returns the rsm replica of one shard process (tests).
func (w *World) Replica(shard int, p types.ProcID) *rsm.Replica { return w.groups[shard].replicas[p] }

// Now returns the maximum virtual time across all clusters.
func (w *World) Now() time.Duration {
	t := w.meta.Now()
	for _, g := range w.groups {
		if g.c.Now() > t {
			t = g.c.Now()
		}
	}
	return t
}

// RunAll runs the meta cluster and every shard cluster to quiescence.
func (w *World) RunAll() error {
	if err := w.meta.Run(); err != nil {
		return err
	}
	for _, id := range w.ShardIDs() {
		if err := w.groups[id].c.Run(); err != nil {
			return err
		}
	}
	return nil
}

// Check surfaces accumulated replica errors, spec-suite violations, and
// durable-store write failures.
func (w *World) Check() error {
	if len(w.errs) > 0 {
		return w.errs[0]
	}
	if err := w.metaSuite.Err(); err != nil {
		return fmt.Errorf("meta suite: %w", err)
	}
	for id, g := range w.groups {
		if err := g.suite.Err(); err != nil {
			return fmt.Errorf("shard %d suite: %w", id, err)
		}
		for p, m := range g.machines {
			if err := m.StoreErr(); err != nil {
				return fmt.Errorf("shard %d %s store: %w", id, p, err)
			}
		}
	}
	return nil
}

// ---- serving (Backend) ----

// authoritative returns an authoritative replica of the group, preferring
// members of the current configuration in identifier order.
func (g *shardGroup) authoritative() (types.ProcID, *rsm.Replica, bool) {
	for _, p := range g.current.Sorted() {
		if r := g.replicas[p]; r != nil && r.Authoritative() {
			return p, r, true
		}
	}
	return "", nil, false
}

// FetchMap implements Backend.
func (w *World) FetchMap() (Map, error) { return w.CommittedMap(), nil }

// Do implements Backend: the server front door of one shard. The request is
// validated against the committed map (wrong-shard requests bounce), writes
// to a migrating slot bounce as retryable, and a write is acknowledged only
// after an authoritative replica applied it and the group ran to
// quiescence — an acknowledgment therefore implies the write survived into
// the primary component's state.
func (w *World) Do(shardID int, epoch int64, op KVOp) (Result, error) {
	g, ok := w.groups[shardID]
	if !ok {
		return Result{}, fmt.Errorf("shard: unknown shard %d", shardID)
	}
	if op.Key == "" {
		return Result{}, fmt.Errorf("shard: operation without a key")
	}
	if owner := w.committed.ShardForKey(op.Key); owner != shardID {
		w.mWrong.Inc()
		return Result{}, fmt.Errorf("%w: key %q belongs to shard %d (map epoch %d, request epoch %d)",
			ErrWrongShard, op.Key, owner, w.committed.Epoch, epoch)
	}
	switch op.Op {
	case "get":
		p, _, ok := g.authoritative()
		if !ok {
			return Result{}, w.unavailable(g)
		}
		v, found := g.machines[p].Get(op.Key)
		g.ops.Inc()
		return Result{Value: v, Found: found}, nil
	case "set", "del":
		if id, busy := w.migrating[w.committed.SlotOf(op.Key)]; busy {
			return Result{}, fmt.Errorf("%w (proposal %s)", ErrResharding, id)
		}
		p, r, ok := g.authoritative()
		if !ok {
			return Result{}, w.unavailable(g)
		}
		var cmd []byte
		if op.Op == "set" {
			cmd = EncodeSet(op.Key, op.Value)
		} else {
			cmd = EncodeDel(op.Key)
		}
		if err := r.Propose(cmd); err != nil {
			return Result{}, err
		}
		if err := g.c.Run(); err != nil {
			return Result{}, err
		}
		// Acknowledge only what demonstrably survived: the proposing replica
		// must still be authoritative and its machine must reflect the write.
		if !r.Authoritative() {
			return Result{}, w.unavailable(g)
		}
		v, found := g.machines[p].Get(op.Key)
		applied := (op.Op == "set" && found && v == op.Value) || (op.Op == "del" && !found)
		if !applied {
			return Result{}, fmt.Errorf("%w: write not applied before quiescence", ErrUnavailable)
		}
		w.ackSeq++
		w.acks = append(w.acks, spec.KVAck{Key: op.Key, Value: op.Value, Seq: w.ackSeq, Deleted: op.Op == "del"})
		g.ops.Inc()
		return Result{Value: op.Value, Found: op.Op == "set"}, nil
	default:
		return Result{}, fmt.Errorf("shard: unknown op %q", op.Op)
	}
}

func (w *World) unavailable(g *shardGroup) error {
	return fmt.Errorf("%w (shard %d, group %s)", ErrUnavailable, g.id, g.current)
}

// ---- meta-group plumbing ----

// proposeMeta pushes one command through the meta-group's total order and
// runs the meta cluster to quiescence.
func (w *World) proposeMeta(cmd []byte) error {
	var rep *rsm.Replica
	for _, p := range w.metaProcs {
		if r := w.metaReplicas[p]; r.Authoritative() {
			rep = r
			break
		}
	}
	if rep == nil {
		return fmt.Errorf("%w (meta-group)", ErrUnavailable)
	}
	if err := rep.Propose(cmd); err != nil {
		return err
	}
	return w.meta.Run()
}

// ---- chaos controls ----

// ReconfigureShard moves shard id's group to the given membership and runs
// the cluster to quiescence.
func (w *World) ReconfigureShard(id int, set types.ProcSet) error {
	g := w.groups[id]
	if _, _, err := g.c.ReconfigureTo(set); err != nil {
		return err
	}
	g.current = set.Clone()
	return nil
}

// CrashReplica crashes one shard process. If it was a member of the current
// configuration, the group is reconfigured around it so the survivors keep
// serving.
func (w *World) CrashReplica(id int, p types.ProcID) error {
	g := w.groups[id]
	if err := g.c.Crash(p); err != nil {
		return err
	}
	if g.current.Contains(p) {
		rest := g.current.Clone()
		rest.Remove(p)
		return w.ReconfigureShard(id, rest)
	}
	return g.c.Run()
}

// RecoverReplica restarts a crashed shard process. The simulator restarts
// the end-point from its initial state; the replica is rebuilt cold from
// its durable store (LoadMachine) and rejoins unsynced — the next
// reconfiguration that includes it drives a state transfer.
func (w *World) RecoverReplica(id int, p types.ProcID) error {
	g := w.groups[id]
	if err := w.attachReplica(g, p, false, true); err != nil {
		return err
	}
	if err := g.c.Recover(p); err != nil {
		return err
	}
	return g.c.Run()
}

// PartitionShard splits shard id's cluster into the given groups (network
// and membership), running to quiescence. With quorum mode on, only a side
// holding >= Quorum members stays authoritative.
func (w *World) PartitionShard(id int, sides ...types.ProcSet) error {
	g := w.groups[id]
	if _, err := g.c.Partition(sides...); err != nil {
		return err
	}
	for _, s := range sides {
		if s.Len() >= w.cfg.Quorum {
			g.current = s.Clone()
		}
	}
	return nil
}

// HealShard heals shard id's connectivity and reconfigures to the given
// membership (typically the pre-partition group).
func (w *World) HealShard(id int, set types.ProcSet) error {
	g := w.groups[id]
	g.c.HealConnectivity()
	return w.ReconfigureShard(id, set)
}

// ---- verification ----

// Lookup routes a key by the committed map and reads it from an
// authoritative replica of the owning shard.
func (w *World) Lookup(key string) (string, bool) {
	g := w.groups[w.committed.ShardForKey(key)]
	if g == nil {
		return "", false
	}
	p, _, ok := g.authoritative()
	if !ok {
		return "", false
	}
	return g.machines[p].Get(key)
}

// VerifyAcked checks the no-lost-acknowledged-writes invariant against the
// current committed map and authoritative replica states. Call it with every
// shard quiesced and at least one authoritative replica per shard (heal
// partitions first — a shard with no authoritative replica reads as data
// loss, which is exactly what an operator would see).
func (w *World) VerifyAcked() error {
	return spec.CheckNoLostAckedWrites(w.acks, w.Lookup)
}
