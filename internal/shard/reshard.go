package shard

import (
	"fmt"
	"sort"

	"vsgm/internal/types"
)

// installChunkKeys bounds how many keys ride in one install command, so a
// large range handoff is spread over several totally ordered messages
// instead of one giant frame.
const installChunkKeys = 32

// Resharder executes one reshard proposal as an explicit step machine, so a
// test (or the soak harness) can interleave chaos between steps of an
// in-flight handoff. Run() steps to completion; Step() advances one step.
//
// MoveGroup — re-home shard S from group A to group B:
//  1. begin      — meta-group accepts the proposal (or rejects: ErrRejected)
//  2. joint      — paired reconfiguration #1: S reconfigures to A ∪ B; the
//     transitional set tells A's replicas that B's members joined from
//     outside, and the rsm sync transfers full state to them
//  3. marker     — the handoff marker rides S's total order; every joint
//     member applies it
//  4. cutover    — paired reconfiguration #2: S reconfigures to B, a view
//     whose members all hold the marker (and therefore the state)
//  5. commit     — the meta-group flips S's group to B and bumps the epoch
//
// MoveSlots — move slot range [lo,hi] from shard S to shard D:
//  1. begin      — as above; also marks the slots migrating (writes bounce
//     with ErrResharding, so nothing acknowledged can slip into the window)
//  2. snapshot   — an authoritative replica of S extracts the key range
//  3. install    — the range rides D's total order as chunked install
//     commands, sealed by the handoff marker
//  4. dstview    — paired reconfiguration #1: D reconfigures (same
//     membership); cutover is gated on D installing the view that contains
//     the marker — every member of that view provably holds the range
//  5. commit     — the meta-group flips slot ownership and bumps the epoch;
//     the migrating marks clear, and clients start being redirected to D
//  6. prune      — the prune command deletes the moved range from S, then
//     paired reconfiguration #2 closes S's side of the move
type Resharder struct {
	w    *World
	r    Reshard
	kind ReshardKind

	steps []step
	next  int
	begun bool // meta accepted; abort must be proposed on failure
	data  map[string]string
	slots []int // slots marked migrating by this reshard
}

type step struct {
	name string
	run  func() error
}

// NewResharder prepares the step machine for one proposal. Nothing runs
// until Step or Run.
func NewResharder(w *World, r Reshard) *Resharder {
	rs := &Resharder{w: w, r: r, kind: r.Kind}
	switch r.Kind {
	case MoveGroup:
		rs.steps = []step{
			{"begin", rs.stepBegin},
			{"joint", rs.stepJoint},
			{"marker", rs.stepGroupMarker},
			{"cutover", rs.stepCutover},
			{"commit", rs.stepCommit},
		}
	case MoveSlots:
		rs.steps = []step{
			{"begin", rs.stepBegin},
			{"snapshot", rs.stepSnapshot},
			{"install", rs.stepInstall},
			{"dstview", rs.stepDstView},
			{"commit", rs.stepCommit},
			{"prune", rs.stepPrune},
		}
	}
	return rs
}

// StepName returns the name of the next step ("" when done).
func (rs *Resharder) StepName() string {
	if rs.next >= len(rs.steps) {
		return ""
	}
	return rs.steps[rs.next].name
}

// Done reports whether every step completed.
func (rs *Resharder) Done() bool { return rs.next >= len(rs.steps) }

// Step advances one step. On error the reshard is aborted (meta abort plus
// migrating-mark cleanup) before the error returns; the step machine is then
// spent.
func (rs *Resharder) Step() (done bool, err error) {
	if rs.Done() {
		return true, nil
	}
	s := rs.steps[rs.next]
	if err := s.run(); err != nil {
		rs.abort()
		rs.next = len(rs.steps)
		return true, fmt.Errorf("shard: reshard %s step %s: %w", rs.r.ID, s.name, err)
	}
	rs.next++
	return rs.Done(), nil
}

// Run steps to completion.
func (rs *Resharder) Run() error {
	for {
		done, err := rs.Step()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// Abort aborts an in-flight reshard (no-op when done or not yet begun).
func (rs *Resharder) Abort() {
	if !rs.Done() {
		rs.abort()
		rs.next = len(rs.steps)
	}
}

func (rs *Resharder) abort() {
	rs.clearMigrating()
	if rs.begun {
		rs.begun = false
		rs.w.mAborts.Inc()
		// Best effort: if the meta-group is unreachable the pending entry
		// stays until an operator (or a later abort) clears it.
		_ = rs.w.proposeMeta(EncodeAbort(rs.r))
	}
}

func (rs *Resharder) clearMigrating() {
	for _, s := range rs.slots {
		if rs.w.migrating[s] == rs.r.ID {
			delete(rs.w.migrating, s)
		}
	}
	rs.slots = nil
}

// ---- shared steps ----

func (rs *Resharder) stepBegin() error {
	if err := rs.w.proposeMeta(EncodeBegin(rs.r)); err != nil {
		return err
	}
	outcome := rs.w.MetaMachineView().Outcome(rs.r.ID)
	if outcome != OutcomeAccepted {
		return fmt.Errorf("%w: %s", ErrRejected, outcome)
	}
	rs.begun = true
	if rs.kind == MoveSlots {
		// Freeze writes to the moving range for the whole handoff window;
		// anything a client is told "acknowledged" must live outside it.
		m := rs.w.committed
		for s := rs.r.SlotLo; s <= rs.r.SlotHi && s < len(m.Slots); s++ {
			if m.Slots[s] == rs.r.Shard {
				rs.w.migrating[s] = rs.r.ID
				rs.slots = append(rs.slots, s)
			}
		}
	}
	return nil
}

func (rs *Resharder) stepCommit() error {
	if err := rs.w.proposeMeta(EncodeCommit(rs.r)); err != nil {
		return err
	}
	if got := rs.w.MetaMachineView().Outcome(rs.r.ID); got != OutcomeCommitted {
		return fmt.Errorf("commit did not take: outcome %q", got)
	}
	rs.begun = false
	rs.clearMigrating()
	rs.w.mRounds.Inc()
	return nil
}

// ---- MoveGroup steps ----

func (rs *Resharder) stepJoint() error {
	g := rs.w.groups[rs.r.Shard]
	joint := g.current.Union(types.NewProcSet(rs.r.NewGroup...))
	return rs.w.ReconfigureShard(rs.r.Shard, joint)
}

func (rs *Resharder) stepGroupMarker() error {
	return rs.orderMarker(rs.r.Shard)
}

func (rs *Resharder) stepCutover() error {
	target := types.NewProcSet(rs.r.NewGroup...)
	if err := rs.w.ReconfigureShard(rs.r.Shard, target); err != nil {
		return err
	}
	// The cutover view's members must all hold the marker — i.e. the state.
	return rs.verifyMarker(rs.r.Shard, target)
}

// ---- MoveSlots steps ----

func (rs *Resharder) stepSnapshot() error {
	g := rs.w.groups[rs.r.Shard]
	p, _, ok := g.authoritative()
	if !ok {
		return rs.w.unavailable(g)
	}
	rs.data = g.machines[p].RangeSnapshot(rs.r.SlotLo, rs.r.SlotHi, len(rs.w.committed.Slots))
	return nil
}

func (rs *Resharder) stepInstall() error {
	dst := rs.w.groups[rs.r.Dst]
	_, rep, ok := dst.authoritative()
	if !ok {
		return rs.w.unavailable(dst)
	}
	keys := make([]string, 0, len(rs.data))
	for k := range rs.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for at := 0; at < len(keys); at += installChunkKeys {
		end := at + installChunkKeys
		if end > len(keys) {
			end = len(keys)
		}
		chunk := make(map[string]string, end-at)
		for _, k := range keys[at:end] {
			chunk[k] = rs.data[k]
		}
		cmd := EncodeInstall(chunk)
		if err := rep.Propose(cmd); err != nil {
			return err
		}
		rs.w.mHandoff.Add(int64(len(cmd)))
	}
	if err := rep.Propose(EncodeMarker(rs.r.ID)); err != nil {
		return err
	}
	return dst.c.Run()
}

func (rs *Resharder) stepDstView() error {
	dst := rs.w.groups[rs.r.Dst]
	// Same-membership paired reconfiguration: the destination installs a
	// fresh view; because the marker was ordered before the view boundary's
	// flush, every member of this view holds the migrated range.
	if err := rs.w.ReconfigureShard(rs.r.Dst, dst.current); err != nil {
		return err
	}
	return rs.verifyMarker(rs.r.Dst, dst.current)
}

func (rs *Resharder) stepPrune() error {
	g := rs.w.groups[rs.r.Shard]
	_, rep, ok := g.authoritative()
	if !ok {
		return rs.w.unavailable(g)
	}
	if err := rep.Propose(EncodePrune(rs.r.SlotLo, rs.r.SlotHi, len(rs.w.committed.Slots))); err != nil {
		return err
	}
	if err := g.c.Run(); err != nil {
		return err
	}
	// Paired reconfiguration #2: the source closes out its side of the move.
	return rs.w.ReconfigureShard(rs.r.Shard, g.current)
}

// ---- helpers ----

// orderMarker pushes the handoff marker through a shard's total order.
func (rs *Resharder) orderMarker(shard int) error {
	g := rs.w.groups[shard]
	_, rep, ok := g.authoritative()
	if !ok {
		return rs.w.unavailable(g)
	}
	if err := rep.Propose(EncodeMarker(rs.r.ID)); err != nil {
		return err
	}
	return g.c.Run()
}

// verifyMarker checks that every synced member of the set applied this
// reshard's marker — the cutover gate.
func (rs *Resharder) verifyMarker(shard int, set types.ProcSet) error {
	g := rs.w.groups[shard]
	for _, p := range set.Sorted() {
		r := g.replicas[p]
		if r == nil || !r.Synced() {
			return fmt.Errorf("member %s of the cutover view is not synced", p)
		}
		if got := g.machines[p].LastMarker(); got != rs.r.ID {
			return fmt.Errorf("member %s lacks handoff marker %s (has %q)", p, rs.r.ID, got)
		}
	}
	return nil
}
