package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// Store is the durable backing of one shard replica, following the PR-3
// Store design (append-only WAL plus compacted snapshot, temp/fsync/rename
// snapshot replacement, torn-tail-tolerant replay): every applied command
// is appended, and Restore/compaction rewrites the snapshot and truncates
// the log. A replica restarted cold replays snapshot + WAL and holds every
// state mutation it applied before the crash.
type Store interface {
	// AppendCommand durably logs one applied command.
	AppendCommand(cmd []byte) error
	// WriteSnapshot replaces the compacted state and truncates the log.
	WriteSnapshot(snap []byte) error
	// Load returns the last snapshot (nil if none) and the commands
	// appended after it, in order.
	Load() (snap []byte, cmds [][]byte, err error)
	// Close releases resources; the store is unusable afterwards.
	Close() error
}

// MemStore is the in-memory Store for tests and ephemeral worlds.
type MemStore struct {
	mu   sync.Mutex
	snap []byte
	wal  [][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// AppendCommand implements Store.
func (s *MemStore) AppendCommand(cmd []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wal = append(s.wal, append([]byte(nil), cmd...))
	return nil
}

// WriteSnapshot implements Store.
func (s *MemStore) WriteSnapshot(snap []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snap = append([]byte(nil), snap...)
	s.wal = s.wal[:0]
	return nil
}

// Load implements Store.
func (s *MemStore) Load() ([]byte, [][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cmds := make([][]byte, len(s.wal))
	for i, c := range s.wal {
		cmds[i] = append([]byte(nil), c...)
	}
	var snap []byte
	if s.snap != nil {
		snap = append([]byte(nil), s.snap...)
	}
	return snap, cmds, nil
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// Record framing for the shard store files: magic 0xA9 | u32 bodyLen |
// u32 crc32c(body) | body. The magic differs from the membership WAL's
// (0xA7/0xA8) so a shard log can never be mistaken for an identifier log.
const recordMagic byte = 0xA9

const recordHeader = 1 + 4 + 4

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendRecord frames one body onto dst.
func appendRecord(dst, body []byte) []byte {
	var hdr [recordHeader]byte
	hdr[0] = recordMagic
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[5:9], crc32.Checksum(body, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// scanRecords decodes a concatenation of framed records, stopping at the
// first damage (a torn tail from a crash mid-append costs only the bytes it
// covers — everything before it replays).
func scanRecords(b []byte) [][]byte {
	var out [][]byte
	for len(b) >= recordHeader {
		if b[0] != recordMagic {
			break
		}
		n := int(binary.BigEndian.Uint32(b[1:5]))
		if n < 0 || recordHeader+n > len(b) {
			break
		}
		body := b[recordHeader : recordHeader+n]
		if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(b[5:9]) {
			break
		}
		out = append(out, body)
		b = b[recordHeader+n:]
	}
	return out
}

// FileStore is the file-backed Store: kv.wal (checksummed command records)
// plus kv.snapshot (one checksummed record holding the machine snapshot) in
// one directory per replica.
type FileStore struct {
	mu   sync.Mutex
	dir  string
	wal  *os.File
	buf  []byte
	done bool
}

const (
	kvWALName  = "kv.wal"
	kvSnapName = "kv.snapshot"
)

// NewFileStore opens (creating if needed) a file-backed shard store rooted
// at dir.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: store dir: %w", err)
	}
	wal, err := os.OpenFile(filepath.Join(dir, kvWALName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("shard: open wal: %w", err)
	}
	return &FileStore{dir: dir, wal: wal}, nil
}

// Dir returns the store's root directory.
func (s *FileStore) Dir() string { return s.dir }

// AppendCommand implements Store.
func (s *FileStore) AppendCommand(cmd []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return fmt.Errorf("shard: store closed")
	}
	s.buf = appendRecord(s.buf[:0], cmd)
	_, err := s.wal.Write(s.buf)
	return err
}

// WriteSnapshot implements Store.
func (s *FileStore) WriteSnapshot(snap []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return fmt.Errorf("shard: store closed")
	}
	tmp, err := os.CreateTemp(s.dir, kvSnapName+".tmp-*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(appendRecord(nil, snap)); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, kvSnapName)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// The snapshot covers everything the WAL held; replay after a crash
	// before this truncate merely re-applies commands the snapshot already
	// contains, which the deterministic machine tolerates.
	return os.Truncate(filepath.Join(s.dir, kvWALName), 0)
}

// Load implements Store.
func (s *FileStore) Load() ([]byte, [][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var snap []byte
	if b, err := os.ReadFile(filepath.Join(s.dir, kvSnapName)); err == nil {
		if recs := scanRecords(b); len(recs) > 0 {
			snap = append([]byte(nil), recs[0]...)
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	var cmds [][]byte
	if b, err := os.ReadFile(filepath.Join(s.dir, kvWALName)); err == nil {
		for _, rec := range scanRecords(b) {
			cmds = append(cmds, append([]byte(nil), rec...))
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	return snap, cmds, nil
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil
	}
	s.done = true
	return s.wal.Close()
}
