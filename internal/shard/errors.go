package shard

import "errors"

var (
	// ErrWrongShard is returned by a server that does not own the key's slot
	// under its committed map. The client should refresh its map and retry
	// against the new owner.
	ErrWrongShard = errors.New("shard: key routed to wrong shard")
	// ErrResharding is returned for writes to a slot whose key range is
	// mid-handoff. The write was NOT applied and NOT acknowledged; the client
	// should retry after the cutover.
	ErrResharding = errors.New("shard: slot is resharding, retry")
	// ErrUnavailable is returned when no authoritative replica of the owning
	// shard is reachable (quorum loss or total crash).
	ErrUnavailable = errors.New("shard: no authoritative replica available")
	// ErrRedirectLoop is returned by the Router when ErrWrongShard persists
	// past its redirect budget — the signature of a map that will not
	// converge (or a server bug).
	ErrRedirectLoop = errors.New("shard: redirect loop: wrong-shard persisted past retry budget")
	// ErrRejected is returned by the Resharder when the meta-group rejected
	// the begin proposal (another reshard holds the shard).
	ErrRejected = errors.New("shard: reshard proposal rejected")
)
