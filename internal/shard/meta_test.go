package shard

import (
	"testing"

	"vsgm/internal/types"
)

func testMap(t *testing.T, shards int) Map {
	t.Helper()
	groups := make(map[int][]types.ProcID, shards)
	for id := 0; id < shards; id++ {
		groups[id] = ShardProcs(id, 3)
	}
	m, err := NewUniformMap(16, groups)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestUniformMapCoversAllSlots(t *testing.T) {
	m := testMap(t, 3)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for _, owner := range m.Slots {
		counts[owner]++
	}
	if len(counts) != 3 {
		t.Fatalf("expected 3 owners, got %v", counts)
	}
	for id, n := range counts {
		if n < 16/3 || n > 16/3+1 {
			t.Errorf("shard %d owns %d slots, want near-uniform", id, n)
		}
	}
}

func TestSlotForKeyDeterministic(t *testing.T) {
	for _, key := range []string{"", "a", "user:42", "zzz"} {
		s := SlotForKey(key, 64)
		if s < 0 || s >= 64 {
			t.Fatalf("slot %d out of range for %q", s, key)
		}
		if SlotForKey(key, 64) != s {
			t.Fatalf("hash not deterministic for %q", key)
		}
	}
}

func TestMapEncodeDecodeRoundTrip(t *testing.T) {
	m := testMap(t, 2)
	got, err := DecodeMap(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != m.Epoch || len(got.Slots) != len(m.Slots) || len(got.Groups) != len(m.Groups) {
		t.Fatalf("round trip mismatch: %v vs %v", got, m)
	}
}

func apply(m *MetaMachine, cmd []byte) { m.Apply("test", cmd) }

func TestMetaMachineConcurrentProposalsSecondRejected(t *testing.T) {
	m := NewMetaMachine(testMap(t, 2))
	a := Reshard{ID: "r-a", Kind: MoveSlots, Shard: 0, Dst: 1, SlotLo: 0, SlotHi: 3}
	b := Reshard{ID: "r-b", Kind: MoveSlots, Shard: 0, Dst: 1, SlotLo: 4, SlotHi: 7}
	apply(m, EncodeBegin(a))
	apply(m, EncodeBegin(b)) // same source shard: loses the race
	if got := m.Outcome("r-a"); got != OutcomeAccepted {
		t.Fatalf("first proposal outcome %q, want accepted", got)
	}
	if got := m.Outcome("r-b"); got == OutcomeAccepted || got == "" {
		t.Fatalf("second proposal outcome %q, want a rejection", got)
	}
	if m.Rejected() != 1 {
		t.Fatalf("rejected count %d, want 1", m.Rejected())
	}
	// After the first commits, the shard is free again.
	apply(m, EncodeCommit(a))
	if got := m.Outcome("r-a"); got != OutcomeCommitted {
		t.Fatalf("outcome %q, want committed", got)
	}
	apply(m, EncodeBegin(b))
	if got := m.Outcome("r-b"); got != OutcomeAccepted {
		t.Fatalf("retried proposal outcome %q, want accepted", got)
	}
}

func TestMetaMachineRejectsConflictingDestination(t *testing.T) {
	m := NewMetaMachine(testMap(t, 3))
	apply(m, EncodeBegin(Reshard{ID: "r-a", Kind: MoveSlots, Shard: 0, Dst: 2, SlotLo: 0, SlotHi: 1}))
	// Shard 1 is untouched by r-a, but its destination collides with r-a's.
	apply(m, EncodeBegin(Reshard{ID: "r-b", Kind: MoveSlots, Shard: 1, Dst: 2, SlotLo: 6, SlotHi: 7}))
	if got := m.Outcome("r-b"); got == OutcomeAccepted {
		t.Fatal("proposal with a busy destination shard should be rejected")
	}
	// A move between two uninvolved shards is fine.
	apply(m, EncodeBegin(Reshard{ID: "r-c", Kind: MoveGroup, Shard: 1, NewGroup: ShardProcs(1, 3)}))
	if got := m.Outcome("r-c"); got != OutcomeAccepted {
		t.Fatalf("independent proposal outcome %q, want accepted", got)
	}
}

func TestMetaMachineCommitFlipsOwnershipAndEpoch(t *testing.T) {
	m := NewMetaMachine(testMap(t, 2))
	before := m.CurrentMap()
	moved := before.SlotsOwned(0)[:2]
	r := Reshard{ID: "r-1", Kind: MoveSlots, Shard: 0, Dst: 1, SlotLo: moved[0], SlotHi: moved[1]}
	apply(m, EncodeBegin(r))
	apply(m, EncodeCommit(r))
	after := m.CurrentMap()
	if after.Epoch != before.Epoch+1 {
		t.Fatalf("epoch %d, want %d", after.Epoch, before.Epoch+1)
	}
	for _, s := range moved {
		if after.Slots[s] != 1 {
			t.Errorf("slot %d still owned by %d", s, after.Slots[s])
		}
	}
}

func TestMetaMachineStaleCommitIgnored(t *testing.T) {
	m := NewMetaMachine(testMap(t, 2))
	r := Reshard{ID: "r-1", Kind: MoveGroup, Shard: 0, NewGroup: ShardProcs(0, 4)}
	apply(m, EncodeBegin(r))
	apply(m, EncodeAbort(r))
	before := m.CurrentMap()
	apply(m, EncodeCommit(r)) // aborted proposal: must not commit
	if got := m.CurrentMap().Epoch; got != before.Epoch {
		t.Fatalf("stale commit moved the epoch to %d", got)
	}
	if got := m.Outcome("r-1"); got != OutcomeAborted {
		t.Fatalf("outcome %q, want aborted", got)
	}
}

func TestMetaMachineSnapshotRoundTrip(t *testing.T) {
	m := NewMetaMachine(testMap(t, 2))
	apply(m, EncodeBegin(Reshard{ID: "r-1", Kind: MoveGroup, Shard: 0, NewGroup: ShardProcs(0, 4)}))
	snap := m.Snapshot()
	m2 := NewMetaMachine(testMap(t, 2))
	if err := m2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if m2.PendingFor(0) == nil {
		t.Fatal("pending reshard lost across snapshot round trip")
	}
	if m2.Outcome("r-1") != OutcomeAccepted {
		t.Fatal("outcome journal lost across snapshot round trip")
	}
}
