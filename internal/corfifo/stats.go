package corfifo

import "vsgm/internal/types"

// Stats aggregates traffic counters by message kind. Sent counts each
// (message, destination) pair; Delivered and Lost likewise. Bytes uses the
// deterministic size model of types.WireMsg.Size.
type Stats struct {
	Sent      KindCounts
	Delivered KindCounts
	Lost      KindCounts

	SentBytes int64
}

// KindCounts holds one counter per wire-message kind.
type KindCounts struct {
	View    int64
	App     int64
	Fwd     int64
	Sync    int64
	Propose int64
	Memb    int64
	Ack     int64
	Beat    int64
	Bundle  int64
}

// Total returns the sum across all kinds.
func (k KindCounts) Total() int64 {
	return k.View + k.App + k.Fwd + k.Sync + k.Propose + k.Memb + k.Ack
}

// Control returns the non-application traffic (view + sync messages): the
// protocol overhead measured by experiments E2 and E9.
func (k KindCounts) Control() int64 { return k.View + k.Sync + k.Propose + k.Bundle }

func (k *KindCounts) add(kind types.MsgKind) {
	switch kind {
	case types.KindView:
		k.View++
	case types.KindApp:
		k.App++
	case types.KindFwd:
		k.Fwd++
	case types.KindSync:
		k.Sync++
	case types.KindPropose:
		k.Propose++
	case types.KindMembProposal:
		k.Memb++
	case types.KindAck:
		k.Ack++
	case types.KindHeartbeat:
		k.Beat++
	case types.KindSyncBundle:
		k.Bundle++
	}
}

func (s *Stats) record(m types.WireMsg) {
	s.Sent.add(m.Kind)
	s.SentBytes += int64(m.Size())
}

func (s *Stats) recordDelivered(m types.WireMsg) { s.Delivered.add(m.Kind) }

func (s *Stats) recordLost(m types.WireMsg) { s.Lost.add(m.Kind) }

// Sub returns the component-wise difference s - t, used to measure traffic
// within a benchmark phase.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Sent:      s.Sent.sub(t.Sent),
		Delivered: s.Delivered.sub(t.Delivered),
		Lost:      s.Lost.sub(t.Lost),
		SentBytes: s.SentBytes - t.SentBytes,
	}
}

func (k KindCounts) sub(t KindCounts) KindCounts {
	return KindCounts{
		View:    k.View - t.View,
		App:     k.App - t.App,
		Fwd:     k.Fwd - t.Fwd,
		Sync:    k.Sync - t.Sync,
		Propose: k.Propose - t.Propose,
		Memb:    k.Memb - t.Memb,
		Ack:     k.Ack - t.Ack,
		Beat:    k.Beat - t.Beat,
		Bundle:  k.Bundle - t.Bundle,
	}
}
