package corfifo

import (
	"testing"

	"vsgm/internal/types"
)

func BenchmarkSendDeliver(b *testing.B) {
	n := NewNetwork()
	n.Register("b", HandlerFunc(func(types.ProcID, types.WireMsg) {}))
	dests := []types.ProcID{"b"}
	m := types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: 1, Payload: make([]byte, 64)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send("a", dests, m)
		n.DeliverNext("a", "b")
	}
}

func BenchmarkMulticastFanOut(b *testing.B) {
	n := NewNetwork()
	var dests []types.ProcID
	for _, p := range []types.ProcID{"b", "c", "d", "e", "f", "g", "h", "i"} {
		n.Register(p, HandlerFunc(func(types.ProcID, types.WireMsg) {}))
		dests = append(dests, p)
	}
	m := types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send("a", dests, m)
		for _, q := range dests {
			n.DeliverNext("a", q)
		}
	}
}
