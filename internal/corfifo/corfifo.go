// Package corfifo implements CO_RFIFO, the connection-oriented reliable FIFO
// multicast substrate of Section 3.2 (Figure 3) of Keidar & Khazan.
//
// The substrate maintains a FIFO queue channel[p][q] for every ordered pair
// of end-points. send_p(set, m) appends m to channel[p][q] for every q in
// set. deliver_{p,q} removes the head of channel[p][q] and hands it to q's
// handler. An end-point controls reliable_set[p]: for any q outside it, the
// substrate may lose an arbitrary suffix of channel[p][q] (the lose(p,q)
// internal action). live_set[p] models which processes are really alive and
// connected to p; it parameterizes the liveness obligation only.
//
// The package is a passive state machine: it never spawns goroutines and
// performs no I/O. A driver (the deterministic simulator in internal/sim, or
// a live runtime) decides when deliver and lose steps occur. All methods are
// safe for concurrent use.
package corfifo

import (
	"fmt"
	"sort"
	"sync"

	"vsgm/internal/types"
)

// Handler receives messages delivered by the substrate to one end-point.
type Handler interface {
	// HandleMessage is invoked for each message delivered to this
	// end-point, in per-sender FIFO order.
	HandleMessage(from types.ProcID, m types.WireMsg)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from types.ProcID, m types.WireMsg)

// HandleMessage calls f(from, m).
func (f HandlerFunc) HandleMessage(from types.ProcID, m types.WireMsg) { f(from, m) }

// SendObserver is notified synchronously for every (message, destination)
// pair enqueued by a send. Drivers use it to schedule delivery steps.
type SendObserver func(from, to types.ProcID, m types.WireMsg)

// Network is the centralized CO_RFIFO automaton state.
type Network struct {
	mu       sync.Mutex
	channels map[types.ProcID]map[types.ProcID][]types.WireMsg
	reliable map[types.ProcID]types.ProcSet
	live     map[types.ProcID]types.ProcSet
	handlers map[types.ProcID]Handler
	onSend   SendObserver
	stats    Stats
}

// NewNetwork returns an empty substrate with no registered end-points.
func NewNetwork() *Network {
	return &Network{
		channels: make(map[types.ProcID]map[types.ProcID][]types.WireMsg),
		reliable: make(map[types.ProcID]types.ProcSet),
		live:     make(map[types.ProcID]types.ProcSet),
		handlers: make(map[types.ProcID]Handler),
	}
}

// SetSendObserver installs fn as the send observer. It must be set before
// traffic flows; passing nil removes the observer.
func (n *Network) SetSendObserver(fn SendObserver) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onSend = fn
}

// Register installs the delivery handler for end-point p and initializes
// reliable_set[p] and live_set[p] to {p} per the automaton's start state.
func (n *Network) Register(p types.ProcID, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[p] = h
	if _, ok := n.reliable[p]; !ok {
		n.reliable[p] = types.NewProcSet(p)
	}
	if _, ok := n.live[p]; !ok {
		n.live[p] = types.NewProcSet(p)
	}
}

// Handle returns a sender-side handle bound to end-point p; the handle
// satisfies the transport interface expected by the GCS end-point automaton.
func (n *Network) Handle(p types.ProcID) *Handle {
	return &Handle{net: n, proc: p}
}

// Send models the input action send_p(set, m): m is appended to
// channel[p][q] for every q in dests. The send observer fires once per
// destination, after the message is enqueued.
func (n *Network) Send(from types.ProcID, dests []types.ProcID, m types.WireMsg) {
	n.mu.Lock()
	row := n.channels[from]
	if row == nil {
		row = make(map[types.ProcID][]types.WireMsg)
		n.channels[from] = row
	}
	for _, q := range dests {
		row[q] = append(row[q], m)
		n.stats.record(m)
	}
	onSend := n.onSend
	n.mu.Unlock()

	if onSend != nil {
		for _, q := range dests {
			onSend(from, q, m)
		}
	}
}

// SetReliable models the input action reliable_p(set): p wishes to maintain
// gap-free FIFO connections to exactly the end-points in set.
func (n *Network) SetReliable(p types.ProcID, set types.ProcSet) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reliable[p] = set.Clone()
}

// Reliable returns a copy of reliable_set[p].
func (n *Network) Reliable(p types.ProcID) types.ProcSet {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s, ok := n.reliable[p]; ok {
		return s.Clone()
	}
	return types.NewProcSet(p)
}

// SetLive models the input action live_p(set). It is linked to the
// membership service's start_change and view outputs (Section 5, Figure 8).
func (n *Network) SetLive(p types.ProcID, set types.ProcSet) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.live[p] = set.Clone()
}

// Live returns a copy of live_set[p].
func (n *Network) Live(p types.ProcID) types.ProcSet {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s, ok := n.live[p]; ok {
		return s.Clone()
	}
	return types.NewProcSet(p)
}

// Pending returns the number of messages queued on channel[from][to].
func (n *Network) Pending(from, to types.ProcID) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.channels[from][to])
}

// PendingLink identifies one ordered channel with queued traffic.
type PendingLink struct {
	From, To types.ProcID
	Count    int
}

// PendingLinks returns every ordered pair whose channel is non-empty,
// sorted by (From, To) for deterministic iteration. Drivers use it to flush
// backlogged links after a connectivity change without scanning all O(n²)
// process pairs — the channel map is sparse (drained channels are removed),
// so the cost is proportional to the number of links actually carrying
// traffic.
func (n *Network) PendingLinks() []PendingLink {
	n.mu.Lock()
	links := make([]PendingLink, 0, len(n.channels))
	for p, row := range n.channels {
		for q, queue := range row {
			if len(queue) > 0 {
				links = append(links, PendingLink{From: p, To: q, Count: len(queue)})
			}
		}
	}
	n.mu.Unlock()
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	return links
}

// TotalPending returns the number of messages queued across all channels.
func (n *Network) TotalPending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, row := range n.channels {
		for _, q := range row {
			total += len(q)
		}
	}
	return total
}

// DeliverNext models the output action deliver_{p,q}(m): it dequeues the
// head of channel[from][to] and hands it to to's handler. It reports whether
// a message was delivered. Delivery to an unregistered end-point discards
// the message (the end-point has crashed; Section 8).
func (n *Network) DeliverNext(from, to types.ProcID) (types.WireMsg, bool) {
	n.mu.Lock()
	q := n.channels[from][to]
	if len(q) == 0 {
		n.mu.Unlock()
		return types.WireMsg{}, false
	}
	m := q[0]
	if len(q) == 1 {
		delete(n.channels[from], to)
	} else {
		n.channels[from][to] = q[1:]
	}
	h := n.handlers[to]
	n.stats.recordDelivered(m)
	n.mu.Unlock()

	if h != nil {
		h.HandleMessage(from, m)
	}
	return m, true
}

// LoseTail models the internal action lose(from, to): it drops the last
// message of channel[from][to]. The step is enabled only when to is not in
// reliable_set[from]; calling it otherwise is a driver bug and returns an
// error.
func (n *Network) LoseTail(from, to types.ProcID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.reliable[from].Contains(to) {
		return fmt.Errorf("lose(%s,%s): %s is in reliable_set[%s]", from, to, to, from)
	}
	q := n.channels[from][to]
	if len(q) == 0 {
		return nil
	}
	if len(q) == 1 {
		delete(n.channels[from], to)
	} else {
		n.channels[from][to] = q[:len(q)-1]
	}
	n.stats.recordLost(q[len(q)-1])
	return nil
}

// LoseSuffix drops the last k messages of channel[from][to] (or the whole
// queue if k exceeds its length), subject to the same enabling condition as
// LoseTail.
func (n *Network) LoseSuffix(from, to types.ProcID, k int) error {
	for i := 0; i < k; i++ {
		if err := n.LoseTail(from, to); err != nil {
			return err
		}
		if n.Pending(from, to) == 0 {
			return nil
		}
	}
	return nil
}

// DropUnreliable applies the lose action exhaustively: for every pair (p,q)
// with q outside reliable_set[p], the entire queued suffix is dropped. The
// simulator invokes it when modeling a disconnection that the sender has
// already been told about.
func (n *Network) DropUnreliable() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	dropped := 0
	for p, row := range n.channels {
		for q, queue := range row {
			if n.reliable[p].Contains(q) {
				continue
			}
			for _, m := range queue {
				n.stats.recordLost(m)
			}
			dropped += len(queue)
			delete(row, q)
		}
	}
	return dropped
}

// Unregister removes end-point p's handler (p has crashed). Queued traffic
// to and from p remains until lost or delivered-to-nobody.
func (n *Network) Unregister(p types.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.handlers, p)
}

// Stats returns a snapshot of the substrate's traffic counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// ResetStats zeroes the traffic counters (used between benchmark phases).
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{}
}

// Handle is a sender-side view of the substrate bound to one end-point.
type Handle struct {
	net  *Network
	proc types.ProcID
}

// Send multicasts m to dests on behalf of the bound end-point.
func (h *Handle) Send(dests []types.ProcID, m types.WireMsg) {
	h.net.Send(h.proc, dests, m)
}

// SetReliable updates the bound end-point's reliable_set.
func (h *Handle) SetReliable(set types.ProcSet) {
	h.net.SetReliable(h.proc, set)
}

// Proc returns the identifier the handle is bound to.
func (h *Handle) Proc() types.ProcID { return h.proc }
