package corfifo

import (
	"testing"

	"vsgm/internal/types"
)

type recorder struct {
	got []types.WireMsg
}

func (r *recorder) HandleMessage(_ types.ProcID, m types.WireMsg) {
	r.got = append(r.got, m)
}

func appMsg(id int64) types.WireMsg {
	return types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: id}}
}

func TestFIFODeliveryPerChannel(t *testing.T) {
	n := NewNetwork()
	var rb recorder
	n.Register("a", nil)
	n.Register("b", &rb)

	for i := int64(1); i <= 5; i++ {
		n.Send("a", []types.ProcID{"b"}, appMsg(i))
	}
	for i := 0; i < 5; i++ {
		if _, ok := n.DeliverNext("a", "b"); !ok {
			t.Fatalf("delivery %d: nothing to deliver", i)
		}
	}
	if _, ok := n.DeliverNext("a", "b"); ok {
		t.Fatal("delivered from an empty channel")
	}
	for i, m := range rb.got {
		if m.App.ID != int64(i+1) {
			t.Fatalf("message %d has id %d: FIFO violated", i, m.App.ID)
		}
	}
}

func TestMulticastEnqueuesPerDestination(t *testing.T) {
	n := NewNetwork()
	n.Register("a", nil)
	n.Register("b", nil)
	n.Register("c", nil)
	n.Send("a", []types.ProcID{"b", "c"}, appMsg(1))
	if n.Pending("a", "b") != 1 || n.Pending("a", "c") != 1 {
		t.Fatal("multicast did not enqueue per destination")
	}
	if n.TotalPending() != 2 {
		t.Fatalf("total pending = %d, want 2", n.TotalPending())
	}
}

func TestSendObserverFiresPerDestination(t *testing.T) {
	n := NewNetwork()
	var fired []types.ProcID
	n.SetSendObserver(func(_, to types.ProcID, _ types.WireMsg) {
		fired = append(fired, to)
	})
	n.Send("a", []types.ProcID{"b", "c"}, appMsg(1))
	if len(fired) != 2 || fired[0] != "b" || fired[1] != "c" {
		t.Fatalf("observer fired for %v", fired)
	}
}

func TestLoseRequiresUnreliableDestination(t *testing.T) {
	n := NewNetwork()
	n.Register("a", nil)
	n.SetReliable("a", types.NewProcSet("a", "b"))
	n.Send("a", []types.ProcID{"b"}, appMsg(1))

	if err := n.LoseTail("a", "b"); err == nil {
		t.Fatal("lose succeeded for a reliable destination")
	}
	n.SetReliable("a", types.NewProcSet("a"))
	if err := n.LoseTail("a", "b"); err != nil {
		t.Fatalf("lose failed for unreliable destination: %v", err)
	}
	if n.Pending("a", "b") != 0 {
		t.Fatal("message not dropped")
	}
}

func TestLoseSuffixDropsFromTheTail(t *testing.T) {
	n := NewNetwork()
	n.Register("b", nil)
	for i := int64(1); i <= 4; i++ {
		n.Send("a", []types.ProcID{"b"}, appMsg(i))
	}
	if err := n.LoseSuffix("a", "b", 2); err != nil {
		t.Fatal(err)
	}
	if n.Pending("a", "b") != 2 {
		t.Fatalf("pending = %d, want 2", n.Pending("a", "b"))
	}
	m, _ := n.DeliverNext("a", "b")
	if m.App.ID != 1 {
		t.Fatalf("head id = %d, want 1: lose must drop the suffix, not the prefix", m.App.ID)
	}
}

func TestDropUnreliable(t *testing.T) {
	n := NewNetwork()
	n.Register("a", nil)
	n.SetReliable("a", types.NewProcSet("a", "b"))
	n.Send("a", []types.ProcID{"b", "c"}, appMsg(1))
	dropped := n.DropUnreliable()
	if dropped != 1 {
		t.Fatalf("dropped %d, want 1 (only the unreliable destination)", dropped)
	}
	if n.Pending("a", "b") != 1 || n.Pending("a", "c") != 0 {
		t.Fatal("wrong channel dropped")
	}
}

func TestDeliveryToUnregisteredEndpointDiscards(t *testing.T) {
	n := NewNetwork()
	n.Send("a", []types.ProcID{"b"}, appMsg(1))
	if _, ok := n.DeliverNext("a", "b"); !ok {
		t.Fatal("delivery should pop the message even without a handler")
	}
	if n.Pending("a", "b") != 0 {
		t.Fatal("message still queued")
	}
}

func TestUnregisterStopsHandler(t *testing.T) {
	n := NewNetwork()
	var rb recorder
	n.Register("b", &rb)
	n.Unregister("b")
	n.Send("a", []types.ProcID{"b"}, appMsg(1))
	n.DeliverNext("a", "b")
	if len(rb.got) != 0 {
		t.Fatal("handler invoked after unregister")
	}
}

func TestReliableAndLiveDefaults(t *testing.T) {
	n := NewNetwork()
	n.Register("p", nil)
	if !n.Reliable("p").Equal(types.NewProcSet("p")) {
		t.Error("reliable_set should initialize to {p}")
	}
	if !n.Live("p").Equal(types.NewProcSet("p")) {
		t.Error("live_set should initialize to {p}")
	}
	n.SetLive("p", types.NewProcSet("p", "q"))
	if !n.Live("p").Equal(types.NewProcSet("p", "q")) {
		t.Error("live_set not updated")
	}
	// Unknown processes report singleton defaults rather than nil.
	if !n.Reliable("ghost").Equal(types.NewProcSet("ghost")) {
		t.Error("unknown process should report default reliable set")
	}
}

func TestStats(t *testing.T) {
	n := NewNetwork()
	n.Register("b", nil)
	n.Send("a", []types.ProcID{"b"}, appMsg(1))
	n.Send("a", []types.ProcID{"b"}, types.WireMsg{Kind: types.KindSync, CID: 1, Small: true})
	n.DeliverNext("a", "b")

	s := n.Stats()
	if s.Sent.App != 1 || s.Sent.Sync != 1 || s.Sent.Total() != 2 {
		t.Errorf("sent = %+v", s.Sent)
	}
	if s.Delivered.App != 1 || s.Delivered.Total() != 1 {
		t.Errorf("delivered = %+v", s.Delivered)
	}
	if s.Sent.Control() != 1 {
		t.Errorf("control = %d, want 1", s.Sent.Control())
	}
	if s.SentBytes <= 0 {
		t.Error("sent bytes not recorded")
	}

	before := s
	n.Send("a", []types.ProcID{"b"}, appMsg(2))
	diff := n.Stats().Sub(before)
	if diff.Sent.App != 1 || diff.Sent.Sync != 0 {
		t.Errorf("diff = %+v", diff.Sent)
	}

	n.ResetStats()
	if n.Stats().Sent.Total() != 0 {
		t.Error("reset did not zero stats")
	}
}

func TestHandleBindsSender(t *testing.T) {
	n := NewNetwork()
	var rb recorder
	n.Register("b", &rb)
	h := n.Handle("a")
	if h.Proc() != "a" {
		t.Fatalf("handle proc = %s", h.Proc())
	}
	h.Send([]types.ProcID{"b"}, appMsg(9))
	h.SetReliable(types.NewProcSet("a", "b"))
	n.DeliverNext("a", "b")
	if len(rb.got) != 1 || rb.got[0].App.ID != 9 {
		t.Fatal("handle send did not reach the destination")
	}
	if !n.Reliable("a").Contains("b") {
		t.Fatal("handle SetReliable did not apply")
	}
}
