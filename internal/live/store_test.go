package live

import (
	"os"
	"path/filepath"
	"testing"

	"vsgm/internal/membership"
	"vsgm/internal/types"
	"vsgm/internal/wire"
)

func mustAppend(t *testing.T, s Store, recs ...wire.WALRecord) {
	t.Helper()
	for _, rec := range recs {
		if err := s.Append(rec); err != nil {
			t.Fatalf("append %+v: %v", rec, err)
		}
	}
}

func wantRecord(t *testing.T, state map[types.ProcID]membership.ClientRecord, p types.ProcID, cid types.StartChangeID, vid types.ViewID, epoch int64) {
	t.Helper()
	rec, ok := state[p]
	if !ok {
		t.Fatalf("no record for %s in %v", p, state)
	}
	if rec.CID != cid || rec.Vid != vid || rec.Epoch != epoch {
		t.Fatalf("record for %s = %+v, want {CID:%d Vid:%d Epoch:%d}", p, rec, cid, vid, epoch)
	}
}

func TestMemStoreLoadMergesAppendsAndSnapshot(t *testing.T) {
	s := NewMemStore()
	mustAppend(t, s,
		wire.WALRecord{Client: "a", CID: 3, Vid: 1, Epoch: 1},
		wire.WALRecord{Client: "a", CID: 2, Vid: 4, Epoch: 1}, // out of order: max wins per field
		wire.WALRecord{Client: "b", CID: 7, Vid: 2, Epoch: 2},
	)
	state, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	wantRecord(t, state, "a", 3, 4, 1)
	wantRecord(t, state, "b", 7, 2, 2)

	// A snapshot replaces the log; later appends still merge over it.
	if err := s.WriteSnapshot(state); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, wire.WALRecord{Client: "a", CID: 9, Vid: 4, Epoch: 1})
	state, err = s.Load()
	if err != nil {
		t.Fatal(err)
	}
	wantRecord(t, state, "a", 9, 4, 1)
	wantRecord(t, state, "b", 7, 2, 2)
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s,
		wire.WALRecord{Client: "a", CID: 5, Vid: 2, Epoch: 1},
		wire.WALRecord{Client: "b", CID: 11, Vid: 3, Epoch: 2},
		wire.WALRecord{Client: "a", CID: 6, Vid: 3, Epoch: 1},
	)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := s.Append(wire.WALRecord{Client: "c", CID: 1}); err == nil {
		t.Fatal("append after close succeeded")
	}

	// A fresh handle on the same directory recovers everything.
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	state, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	wantRecord(t, state, "a", 6, 3, 1)
	wantRecord(t, state, "b", 11, 3, 2)
	if _, ok := state["c"]; ok {
		t.Fatal("rejected append leaked into the store")
	}
}

func TestFileStoreSnapshotCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustAppend(t, s, wire.WALRecord{Client: "a", CID: 4, Vid: 1, Epoch: 1})
	state, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(state); err != nil {
		t.Fatal(err)
	}

	// The snapshot subsumed the log, so the log must be empty now.
	fi, err := os.Stat(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("wal not truncated after snapshot: %d bytes", fi.Size())
	}

	// Appends after compaction merge over the snapshot on the next load.
	mustAppend(t, s, wire.WALRecord{Client: "a", CID: 8, Vid: 2, Epoch: 1})
	state, err = s.Load()
	if err != nil {
		t.Fatal(err)
	}
	wantRecord(t, state, "a", 8, 2, 1)
}

func TestFileStoreToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s,
		wire.WALRecord{Client: "a", CID: 3, Vid: 1, Epoch: 1},
		wire.WALRecord{Client: "b", CID: 5, Vid: 2, Epoch: 1},
	)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a full record followed by a torn prefix
	// of another. Replay must keep everything before the tear.
	full, err := wire.AppendWALRecord(nil, wire.WALRecord{Client: "c", CID: 9, Vid: 4, Epoch: 2})
	if err != nil {
		t.Fatal(err)
	}
	torn := append(full, full[:len(full)/2]...)
	f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	state, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	wantRecord(t, state, "a", 3, 1, 1)
	wantRecord(t, state, "b", 5, 2, 1)
	wantRecord(t, state, "c", 9, 4, 2)
}

// TestMemStoreBacksServerRestart drives the restart cycle a ServerNode
// performs against its store: appends, a compaction, more appends, then a
// Load by a fresh server instance resuming the merged state.
func TestMemStoreBacksServerRestart(t *testing.T) {
	s := NewMemStore()
	mustAppend(t, s, wire.WALRecord{Client: "a", CID: 2, Vid: 1, Epoch: 1})
	state, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(state); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, wire.WALRecord{Client: "a", CID: 4, Vid: 2, Epoch: 1})

	// "Restart": the same MemStore handed to a new server instance.
	state, err = s.Load()
	if err != nil {
		t.Fatal(err)
	}
	wantRecord(t, state, "a", 4, 2, 1)
}
