package live

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"vsgm/internal/obs"
	"vsgm/internal/types"
)

// TestLiveTracedReconfigurationSingleSyncRound runs a real TCP deployment
// with a shared registry and tracer, triggers a failure-free departure
// reconfiguration, and asserts the one-round property the tracer exists to
// prove: every surviving member's completed span for the new view records
// exactly one sync round. It then closes the deployment and checks the
// frozen sections keep the final numbers scrapeable.
func TestLiveTracedReconfigurationSingleSyncRound(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(reg)

	serverIDs := []types.ProcID{"srv0", "srv1"}
	serverSet := types.NewProcSet(serverIDs...)
	dir := make(map[types.ProcID]string)

	var servers []*ServerNode
	for _, sid := range serverIDs {
		sn, err := NewServerNode(ServerConfig{
			ID: sid, Addr: "127.0.0.1:0", Servers: serverSet,
			Transport: testTransport(), Obs: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sn.Close()
		servers = append(servers, sn)
		dir[sid] = sn.Addr()
	}

	clientIDs := []types.ProcID{"cli0", "cli1", "cli2"}
	clients := make(map[types.ProcID]*Node)
	for i, cid := range clientIDs {
		node, err := NewNode(NodeConfig{
			ID: cid, Addr: "127.0.0.1:0", AutoBlock: true,
			MsgIDBase: int64(i+1) * 1_000_000,
			Transport: testTransport(), Obs: reg, Tracer: tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		clients[cid] = node
		dir[cid] = node.Addr()
	}
	for _, sn := range servers {
		sn.SetPeers(dir)
	}
	for _, node := range clients {
		node.SetPeers(dir)
	}
	for i, cid := range clientIDs {
		servers[i%len(servers)].AddClient(cid)
	}
	for _, sn := range servers {
		sn.SetReachable(serverSet)
	}

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}

	all := types.NewProcSet(clientIDs...)
	waitFor("group formation", func() bool {
		for _, node := range clients {
			if !node.CurrentView().Members.Equal(all) {
				return false
			}
		}
		return true
	})

	// Failure-free departure: both servers drop the leaver, one
	// reconfiguration removes it from the view.
	leaver := clientIDs[len(clientIDs)-1]
	survivors := all.Minus(types.NewProcSet(leaver))
	for _, sn := range servers {
		sn.RemoveClient(leaver)
	}
	servers[0].Reconfigure()
	waitFor("survivor view", func() bool {
		for _, cid := range clientIDs[:len(clientIDs)-1] {
			if !clients[cid].CurrentView().Members.Equal(survivors) {
				return false
			}
		}
		return true
	})

	// The departure view's span must be complete with exactly one sync round
	// on every survivor.
	finalVid := clients[clientIDs[0]].CurrentView().ID
	spans := make(map[types.ProcID]obs.ReconfigReport)
	for _, sp := range tracer.Completed() {
		if sp.View == finalVid {
			spans[sp.Endpoint] = sp
		}
	}
	for _, cid := range clientIDs[:len(clientIDs)-1] {
		sp, ok := spans[cid]
		if !ok {
			t.Fatalf("no completed span for %s installing view %d; completed: %+v", cid, finalVid, tracer.Completed())
		}
		if sp.SyncRounds != 1 {
			t.Errorf("%s installed view %d in %d sync rounds, want exactly 1: %+v", cid, finalVid, sp.SyncRounds, sp)
		}
		if sp.Trace == 0 {
			t.Errorf("%s span carries no trace id: %+v", cid, sp)
		}
		if sp.Latency <= 0 {
			t.Errorf("%s span has non-positive latency %v", cid, sp.Latency)
		}
	}

	// Survivors that installed the same view share the trace id the servers
	// gossiped for that attempt.
	traces := make(map[uint64]bool)
	for _, sp := range spans {
		traces[sp.Trace] = true
	}
	if len(traces) != 1 {
		t.Errorf("survivors report %d distinct trace ids for one view change: %+v", len(traces), spans)
	}

	// Close everything; the frozen sections must keep the final numbers
	// without touching the closed nodes.
	for _, node := range clients {
		node.Close()
	}
	for _, sn := range servers {
		sn.Close()
	}
	status, _ := reg.StatusSnapshot()
	for _, cid := range clientIDs {
		if _, ok := status["node/"+string(cid)]; !ok {
			t.Errorf("no frozen status section for closed node %s", cid)
		}
	}
	var views float64
	for _, s := range reg.Snapshot().Samples {
		if s.Name == "vsgm_endpoint_views_installed_total" {
			views += s.Value
		}
	}
	if views == 0 {
		t.Error("frozen collectors report zero installed views after close")
	}

	// The timeline renders each survivor's one-round proof.
	var b strings.Builder
	tracer.RenderTimeline(&b)
	for _, cid := range clientIDs[:len(clientIDs)-1] {
		want := fmt.Sprintf("%s cid=", cid)
		if !strings.Contains(b.String(), want) {
			t.Errorf("timeline missing %q:\n%s", want, b.String())
		}
	}
	if !strings.Contains(b.String(), "(sync_rounds=1)") {
		t.Errorf("timeline missing a one-round span:\n%s", b.String())
	}
}
