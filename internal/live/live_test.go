package live

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/membership"
	"vsgm/internal/spec"
	"vsgm/internal/types"
	"vsgm/internal/wire"
)

// liveWorld spins up membership servers and client nodes on real TCP
// loopback sockets and collects every application event, tagged per client,
// into a spec suite (serialized by a collector mutex). Collection uses the
// synchronous Observe/ObserveNotify/OnSend hooks rather than the pump-based
// OnEvent: the online checkers need an arrival order consistent with
// causality — in particular a send recorded before any peer's delivery of
// it — and the pump can report an event after a fast peer has already
// reacted to its consequences.
type liveWorld struct {
	t       *testing.T
	servers []*ServerNode
	clients map[types.ProcID]*Node
	homes   map[types.ProcID]types.ProcID

	mu    sync.Mutex
	suite *spec.Suite
	views map[types.ProcID]types.View
	dlvrs map[types.ProcID]int
}

func (w *liveWorld) homeOf(cid types.ProcID) types.ProcID { return w.homes[cid] }

// testTransport shrinks the supervised transport's timeouts so
// fault-injection tests reconnect and shed load quickly.
func testTransport() TransportConfig {
	return TransportConfig{
		DialTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
		BackoffBase:  10 * time.Millisecond,
		BackoffMax:   250 * time.Millisecond,
	}
}

func newLiveWorld(t *testing.T, nServers, nClients int) *liveWorld {
	t.Helper()
	w := &liveWorld{
		t:       t,
		clients: make(map[types.ProcID]*Node),
		homes:   make(map[types.ProcID]types.ProcID),
		suite:   spec.FullSuite(spec.WithTrace()),
		views:   make(map[types.ProcID]types.View),
		dlvrs:   make(map[types.ProcID]int),
	}

	serverIDs := make([]types.ProcID, nServers)
	for i := range serverIDs {
		serverIDs[i] = types.ProcID(fmt.Sprintf("srv%d", i))
	}
	serverSet := types.NewProcSet(serverIDs...)

	dir := make(map[types.ProcID]string)
	for _, sid := range serverIDs {
		sn, err := NewServerNode(ServerConfig{ID: sid, Addr: "127.0.0.1:0", Servers: serverSet, Transport: testTransport()})
		if err != nil {
			t.Fatal(err)
		}
		w.servers = append(w.servers, sn)
		dir[sid] = sn.Addr()
	}

	for i := 0; i < nClients; i++ {
		cid := types.ProcID(fmt.Sprintf("cli%d", i))
		node, err := NewNode(NodeConfig{
			ID:            cid,
			Addr:          "127.0.0.1:0",
			AutoBlock:     true,
			MsgIDBase:     int64(i+1) * 1_000_000,
			Transport:     testTransport(),
			Observe:       func(ev core.Event) { w.onEvent(cid, ev) },
			OnSend:        func(m types.AppMsg) { w.recordSend(cid, m.ID) },
			ObserveNotify: func(n membership.Notification) { w.onNotify(cid, n) },
		})
		if err != nil {
			t.Fatal(err)
		}
		w.clients[cid] = node
		dir[cid] = node.Addr()
	}

	for _, sn := range w.servers {
		sn.SetPeers(dir)
	}
	for _, node := range w.clients {
		node.SetPeers(dir)
	}

	// Home each client at a server, round-robin.
	i := 0
	for cid := range w.clients {
		srv := w.servers[i%len(w.servers)]
		srv.AddClient(cid)
		w.homes[cid] = srv.ID()
		i++
	}
	return w
}

func (w *liveWorld) onEvent(p types.ProcID, ev core.Event) {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch e := ev.(type) {
	case core.DeliverEvent:
		w.dlvrs[p]++
		w.suite.OnEvent(spec.EDeliver{P: p, From: e.Sender, MsgID: e.Msg.ID})
	case core.ViewEvent:
		w.views[p] = e.View
		w.suite.OnEvent(spec.EView{P: p, View: e.View, Trans: e.TransitionalSet, HasTrans: true})
	case core.BlockEvent:
		// AutoBlock end-points acknowledge immediately (as in sim.drain).
		w.suite.OnEvent(spec.EBlock{P: p})
		w.suite.OnEvent(spec.EBlockOK{P: p})
	}
}

// onNotify feeds membership notifications into the MBRSHP checker, in the
// per-client order the node's event pump guarantees.
func (w *liveWorld) onNotify(p types.ProcID, n membership.Notification) {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch n.Kind {
	case membership.NotifyStartChange:
		w.suite.OnEvent(spec.EMStartChange{P: p, SC: n.StartChange})
	case membership.NotifyView:
		w.suite.OnEvent(spec.EMView{P: p, View: n.View})
	}
}

// specErr finalizes the suite under the collector lock (event pumps may
// still be running).
func (w *liveWorld) specErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.suite.Err()
}

func (w *liveWorld) recordSend(p types.ProcID, id int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.suite.OnEvent(spec.ESend{P: p, MsgID: id})
}

func (w *liveWorld) boot() {
	all := types.NewProcSet()
	for _, sn := range w.servers {
		all.Add(sn.ID())
	}
	for _, sn := range w.servers {
		sn.SetReachable(all)
	}
}

func (w *liveWorld) startHeartbeats(interval, timeout time.Duration) {
	serverSet := types.NewProcSet()
	for _, sn := range w.servers {
		serverSet.Add(sn.ID())
	}
	for _, sn := range w.servers {
		sn.StartHeartbeats(serverSet, interval, timeout)
	}
}

// chaosOf returns every node's chaos controller keyed by process.
func (w *liveWorld) chaosOf() map[types.ProcID]*Chaos {
	out := make(map[types.ProcID]*Chaos)
	for _, sn := range w.servers {
		out[sn.ID()] = sn.Chaos()
	}
	for cid, node := range w.clients {
		out[cid] = node.Chaos()
	}
	return out
}

// partitionServers splits the deployment the way sim.PartitionServers does:
// each group of servers plus the clients homed at them becomes one
// component, and every node blocks outbound frames to nodes outside its
// component. The heartbeat detectors then observe the silence and
// reconfigure each side independently.
func (w *liveWorld) partitionServers(groups ...types.ProcSet) {
	comps := make([]types.ProcSet, len(groups))
	for i, g := range groups {
		comp := g.Clone()
		for cid, home := range w.homes {
			if g.Contains(home) {
				comp.Add(cid)
			}
		}
		comps[i] = comp
	}
	all := types.NewProcSet()
	for _, comp := range comps {
		for p := range comp {
			all.Add(p)
		}
	}
	chaos := w.chaosOf()
	for _, comp := range comps {
		outside := all.Minus(comp).Sorted()
		for p := range comp {
			if c := chaos[p]; c != nil {
				c.BlockOutbound(outside...)
			}
		}
	}
}

// healServers lifts every partition block.
func (w *liveWorld) healServers() {
	for _, c := range w.chaosOf() {
		c.Heal()
	}
}

// waitFor polls until cond holds or the deadline passes.
func (w *liveWorld) waitFor(what string, cond func() bool) {
	w.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	w.t.Fatalf("timed out waiting for %s", what)
}

func (w *liveWorld) close() {
	for _, node := range w.clients {
		node.Close()
	}
	for _, sn := range w.servers {
		sn.Close()
	}
	w.checkPoolLeaks()
}

// checkPoolLeaks asserts that every process returned all pooled receive
// buffers after Close: a nonzero outstanding count means a frame body (or a
// staging slab) was delivered without a matching Release.
func (w *liveWorld) checkPoolLeaks() {
	w.t.Helper()
	check := func(kind string, id types.ProcID, f *fabric) {
		// Close has joined every loop, so the count is already final; the
		// brief poll only absorbs pump goroutines that Close let finish.
		var n int64
		for deadline := time.Now().Add(time.Second); ; {
			if n = f.PoolStats().Outstanding; n == 0 || !time.Now().Before(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		if n != 0 {
			w.t.Errorf("%s %s: %d pooled buffers still outstanding after Close (leaked reference)", kind, id, n)
		}
	}
	for cid, node := range w.clients {
		check("client", cid, node.fabric)
	}
	for _, sn := range w.servers {
		check("server", sn.id, sn.fabric)
	}
}

func TestLiveTCPEndToEnd(t *testing.T) {
	w := newLiveWorld(t, 2, 4)
	defer w.close()
	w.boot()

	// Every client converges on the full view over real sockets.
	want := types.NewProcSet()
	for cid := range w.clients {
		want.Add(cid)
	}
	w.waitFor("all clients to install the full view", func() bool {
		for _, node := range w.clients {
			if !node.CurrentView().Members.Equal(want) {
				return false
			}
		}
		return true
	})

	// Concurrent multicasts from every client, delivered everywhere with
	// virtually synchronous semantics.
	const perClient = 5
	var senders sync.WaitGroup
	for cid, node := range w.clients {
		cid, node := cid, node
		senders.Add(1)
		go func() {
			defer senders.Done()
			for i := 0; i < perClient; i++ {
				if _, err := node.Send([]byte(fmt.Sprintf("%s-%d", cid, i))); err != nil {
					t.Errorf("send from %s: %v", cid, err)
					return
				}
			}
		}()
	}
	senders.Wait()

	total := perClient * len(w.clients)
	w.waitFor("all messages to be delivered everywhere", func() bool {
		w.mu.Lock()
		defer w.mu.Unlock()
		for cid := range w.clients {
			if w.dlvrs[cid] < total {
				return false
			}
		}
		return true
	})

	if err := w.specErr(); err != nil {
		t.Fatalf("spec violations on the live run:\n%v", err)
	}
}

func TestLiveViewChange(t *testing.T) {
	w := newLiveWorld(t, 2, 3)
	defer w.close()
	w.boot()

	all := types.NewProcSet()
	for cid := range w.clients {
		all.Add(cid)
	}
	w.waitFor("initial view", func() bool {
		for _, node := range w.clients {
			if !node.CurrentView().Members.Equal(all) {
				return false
			}
		}
		return true
	})

	// A member leaves via its home server; the survivors reconfigure.
	leaver := all.Min()
	for _, sn := range w.servers {
		sn.RemoveClient(leaver)
	}
	w.servers[0].Reconfigure()

	rest := all.Minus(types.NewProcSet(leaver))
	w.waitFor("survivors to install the reduced view", func() bool {
		for cid, node := range w.clients {
			if cid == leaver {
				continue
			}
			if !node.CurrentView().Members.Equal(rest) {
				return false
			}
		}
		return true
	})

	if err := w.specErr(); err != nil {
		t.Fatalf("spec violations:\n%v", err)
	}
}

func TestLiveNodeCloseIsIdempotent(t *testing.T) {
	node, err := NewNode(NodeConfig{ID: "x", Addr: "127.0.0.1:0", AutoBlock: true})
	if err != nil {
		t.Fatal(err)
	}
	node.Close()
	node.Close() // second close must not panic or hang
}

func TestMailboxOrderAndClose(t *testing.T) {
	mb := newMailbox[int]()
	for i := 0; i < 100; i++ {
		if !mb.put(i) {
			t.Fatal("put on open mailbox failed")
		}
	}
	for i := 0; i < 100; i++ {
		v, ok := mb.take()
		if !ok || v != i {
			t.Fatalf("take %d = (%d, %v)", i, v, ok)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := mb.take(); ok {
			t.Error("take on closed empty mailbox reported a value")
		}
	}()
	mb.close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("take did not unblock on close")
	}
	if mb.put(1) {
		t.Fatal("put on closed mailbox succeeded")
	}
}

func TestLiveSurvivesAbruptNodeDeath(t *testing.T) {
	// A client dies without ceremony (its sockets close mid-traffic); the
	// membership removes it and the survivors keep working.
	w := newLiveWorld(t, 1, 3)
	defer w.close()
	w.boot()

	all := types.NewProcSet()
	for cid := range w.clients {
		all.Add(cid)
	}
	w.waitFor("initial view", func() bool {
		for _, node := range w.clients {
			if !node.CurrentView().Members.Equal(all) {
				return false
			}
		}
		return true
	})

	victim := all.Min()
	w.clients[victim].Close() // abrupt: connections break, no goodbye
	for _, sn := range w.servers {
		sn.RemoveClient(victim)
	}
	w.servers[0].Reconfigure()

	rest := all.Minus(types.NewProcSet(victim))
	w.waitFor("survivors to reconfigure past the dead node", func() bool {
		for cid, node := range w.clients {
			if cid == victim {
				continue
			}
			if !node.CurrentView().Members.Equal(rest) {
				return false
			}
		}
		return true
	})
	for cid, node := range w.clients {
		if cid == victim {
			continue
		}
		if _, err := node.Send([]byte("post-mortem")); err != nil {
			t.Fatalf("send from %s after the death: %v", cid, err)
		}
	}
	if err := w.specErr(); err != nil {
		t.Fatalf("spec violations:\n%v", err)
	}
}

func TestLiveCloseJoinsAllGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		w := newLiveWorld(t, 2, 3)
		w.boot()
		all := types.NewProcSet()
		for cid := range w.clients {
			all.Add(cid)
		}
		w.waitFor("view", func() bool {
			for _, node := range w.clients {
				if !node.CurrentView().Members.Equal(all) {
					return false
				}
			}
			return true
		})
		w.close()
	}
	// Allow lingering conn-watcher goroutines to finish.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestLiveHeartbeatsBootstrapMembership(t *testing.T) {
	// No SetReachable calls at all: the live heartbeat detectors discover
	// the server set and bootstrap the first view themselves.
	w := newLiveWorld(t, 2, 3)
	defer w.close()

	serverSet := types.NewProcSet()
	for _, sn := range w.servers {
		serverSet.Add(sn.ID())
	}
	for _, sn := range w.servers {
		sn.StartHeartbeats(serverSet, 10*time.Millisecond, 50*time.Millisecond)
	}

	all := types.NewProcSet()
	for cid := range w.clients {
		all.Add(cid)
	}
	w.waitFor("heartbeat-driven group formation", func() bool {
		for _, node := range w.clients {
			if !node.CurrentView().Members.Equal(all) {
				return false
			}
		}
		return true
	})

	// A server dies; the survivor's detector notices, and the surviving
	// server's clients reconfigure down to its own clients.
	dead := w.servers[1]
	deadClients := types.NewProcSet()
	for cid, node := range w.clients {
		_ = node
		if w.homeOf(cid) == dead.ID() {
			deadClients.Add(cid)
		}
	}
	dead.Close()

	rest := all.Minus(deadClients)
	w.waitFor("survivor-side reconfiguration after server death", func() bool {
		for cid, node := range w.clients {
			if deadClients.Contains(cid) {
				continue
			}
			if !node.CurrentView().Members.Equal(rest) {
				return false
			}
		}
		return true
	})
	if err := w.specErr(); err != nil {
		t.Fatalf("spec violations:\n%v", err)
	}
}

func TestFrameGobRoundTripAllKinds(t *testing.T) {
	// Every wire-message kind must survive the live transport's gob
	// encoding — including ProcSet's custom codec and the view's startId
	// maps (the cached view key is unexported and recomputed on demand).
	v := types.NewView(3, types.NewProcSet("a", "b"),
		map[types.ProcID]types.StartChangeID{"a": 1, "b": 2})
	msgs := []types.WireMsg{
		{Kind: types.KindView, View: v},
		{Kind: types.KindApp, App: types.AppMsg{ID: 7, Payload: []byte("x")}, HistView: v, HistIndex: 2},
		{Kind: types.KindFwd, App: types.AppMsg{ID: 8}, Origin: "a", View: v, Index: 3},
		{Kind: types.KindSync, CID: 4, View: v, Cut: types.Cut{"a": 1, "b": 0}},
		{Kind: types.KindSync, CID: 5, Small: true},
		{Kind: types.KindSync, CID: 6, ElideView: true, Cut: types.Cut{"a": 2}},
		{Kind: types.KindSync, CID: 7, Probe: true, View: v, Cut: types.Cut{"a": 3}},
		{Kind: types.KindAck, Cut: types.Cut{"a": 9}},
		{Kind: types.KindHeartbeat},
		{Kind: types.KindMembProposal, MembProp: &types.MembProposal{
			Attempt: 2, Servers: types.NewProcSet("s0", "s1"), MinVid: 4,
			Clients: map[types.ProcID]types.StartChangeID{"c": 3},
			Epochs:  map[types.ProcID]int64{"c": 2},
		}},
		{Kind: types.KindSyncBundle, Bundle: []types.SyncEntry{
			{From: "a", CID: 1, View: v, Cut: types.Cut{"a": 1}},
			{From: "b", CID: 2, Small: true},
		}},
	}

	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	dec := gob.NewDecoder(&buf)
	for i, m := range msgs {
		if err := enc.Encode(frame{From: "sender", Msg: &m}); err != nil {
			t.Fatalf("encode kind %s: %v", m.Kind, err)
		}
		var got frame
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("decode kind %s: %v", m.Kind, err)
		}
		if got.From != "sender" || got.Msg == nil || got.Msg.Kind != m.Kind {
			t.Fatalf("frame %d mangled: %+v", i, got)
		}
		switch m.Kind {
		case types.KindView:
			if !got.Msg.View.Equal(v) || got.Msg.View.Key() != v.Key() {
				t.Fatalf("view mangled: %s vs %s", got.Msg.View, v)
			}
		case types.KindSync:
			if got.Msg.CID != m.CID || got.Msg.Small != m.Small ||
				got.Msg.ElideView != m.ElideView || got.Msg.Probe != m.Probe {
				t.Fatalf("sync flags mangled: %+v", got.Msg)
			}
			if m.Cut != nil && !got.Msg.Cut.Equal(m.Cut) {
				t.Fatalf("cut mangled: %v vs %v", got.Msg.Cut, m.Cut)
			}
		case types.KindMembProposal:
			if !got.Msg.MembProp.Servers.Equal(m.MembProp.Servers) ||
				got.Msg.MembProp.Clients["c"] != 3 ||
				got.Msg.MembProp.Epochs["c"] != 2 {
				t.Fatalf("proposal mangled: %+v", got.Msg.MembProp)
			}
		case types.KindSyncBundle:
			if len(got.Msg.Bundle) != 2 || !got.Msg.Bundle[0].View.Equal(v) {
				t.Fatalf("bundle mangled: %+v", got.Msg.Bundle)
			}
		}
	}

	// A membership notification frame.
	notif := membership.Notification{
		Kind:        membership.NotifyStartChange,
		StartChange: types.StartChange{ID: 9, Set: types.NewProcSet("a", "b", "c")},
	}
	if err := enc.Encode(frame{From: "srv", Notify: &notif}); err != nil {
		t.Fatal(err)
	}
	var got frame
	if err := dec.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Notify == nil || got.Notify.StartChange.ID != 9 ||
		!got.Notify.StartChange.Set.Equal(notif.StartChange.Set) {
		t.Fatalf("notification mangled: %+v", got.Notify)
	}

	// An attach-protocol frame.
	att := wire.Attach{Kind: wire.AttachAck, Client: "c", Epoch: 2, CID: 2 << 32, Vid: 5}
	if err := enc.Encode(frame{From: "srv", Attach: &att}); err != nil {
		t.Fatal(err)
	}
	var gotAtt frame
	if err := dec.Decode(&gotAtt); err != nil {
		t.Fatal(err)
	}
	if gotAtt.Attach == nil || *gotAtt.Attach != att {
		t.Fatalf("attach frame mangled: %+v", gotAtt.Attach)
	}
}
