package live

// Regime 4 tests: server failure. Clients register through the in-band
// attach protocol, so a dead or partitioned home server is survivable: the
// node fails over down its HomeServers list under a fresh attach epoch, the
// adopting server issues identifiers that dominate everything the old home
// handed out, and the full spec suite checks that Virtual Synchrony, Local
// Monotonicity, and Self Delivery hold across the hand-off. Durable server
// state (WAL + snapshot) is exercised by restarting a server on its store,
// and the reconfiguration watchdog by running attempts over a lossy
// server-to-server trunk that would wedge a retry-free protocol.

import (
	"fmt"
	"testing"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/membership"
	"vsgm/internal/spec"
	"vsgm/internal/types"
)

// attachOptions tunes newAttachWorld.
type attachOptions struct {
	// stores optionally backs individual servers with durable state.
	stores map[types.ProcID]Store
	// watchdog overrides the servers' stall-detection interval
	// (default 25ms — fast enough that lossy-trunk tests converge quickly).
	watchdog time.Duration
	// transport, when non-nil, replaces testTransport() for every node —
	// flow-control tests shrink the credit window this way.
	transport *TransportConfig
	// tuneServer / tuneNode, when set, adjust each node's config just
	// before construction (slow-consumer grace, memory budgets, throttled
	// event callbacks, bans).
	tuneServer func(sid types.ProcID, cfg *ServerConfig)
	tuneNode   func(i int, cfg *NodeConfig)
}

// transportOrDefault picks the per-test transport override.
func (o attachOptions) transportOrDefault() TransportConfig {
	if o.transport != nil {
		return *o.transport
	}
	return testTransport()
}

// newAttachWorld is newLiveWorld's in-band sibling: no AddClient calls —
// every client is configured with a rotated HomeServers list and registers
// itself through the attach protocol, with intervals shrunk so failover
// happens in test time. w.homes records each client's *preferred* home
// (the actual home moves on failover; read Node.Home for that).
func newAttachWorld(t *testing.T, nServers, nClients int, opt attachOptions) *liveWorld {
	t.Helper()
	w := &liveWorld{
		t:       t,
		clients: make(map[types.ProcID]*Node),
		homes:   make(map[types.ProcID]types.ProcID),
		suite:   spec.FullSuite(spec.WithTrace()),
		views:   make(map[types.ProcID]types.View),
		dlvrs:   make(map[types.ProcID]int),
	}
	if opt.watchdog == 0 {
		opt.watchdog = 25 * time.Millisecond
	}

	serverIDs := make([]types.ProcID, nServers)
	for i := range serverIDs {
		serverIDs[i] = types.ProcID(fmt.Sprintf("srv%d", i))
	}
	serverSet := types.NewProcSet(serverIDs...)

	dir := make(map[types.ProcID]string)
	for _, sid := range serverIDs {
		cfg := ServerConfig{
			ID:        sid,
			Addr:      "127.0.0.1:0",
			Servers:   serverSet,
			Store:     opt.stores[sid],
			Watchdog:  opt.watchdog,
			Transport: opt.transportOrDefault(),
		}
		if opt.tuneServer != nil {
			opt.tuneServer(sid, &cfg)
		}
		sn, err := NewServerNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w.servers = append(w.servers, sn)
		dir[sid] = sn.Addr()
	}

	for i := 0; i < nClients; i++ {
		cid := types.ProcID(fmt.Sprintf("cli%d", i))
		// Rotate the server list so preferred homes round-robin and each
		// client's failover target is the next server along.
		homeList := make([]types.ProcID, nServers)
		for j := range homeList {
			homeList[j] = serverIDs[(i+j)%nServers]
		}
		cfg := NodeConfig{
			ID:             cid,
			Addr:           "127.0.0.1:0",
			AutoBlock:      true,
			MsgIDBase:      int64(i+1) * 1_000_000,
			HomeServers:    homeList,
			AttachInterval: 40 * time.Millisecond,
			AttachTimeout:  250 * time.Millisecond,
			Transport:      opt.transportOrDefault(),
			Observe:        func(ev core.Event) { w.onEvent(cid, ev) },
			OnSend:         func(m types.AppMsg) { w.recordSend(cid, m.ID) },
			ObserveNotify:  func(n membership.Notification) { w.onNotify(cid, n) },
		}
		if opt.tuneNode != nil {
			opt.tuneNode(i, &cfg)
		}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w.clients[cid] = node
		w.homes[cid] = homeList[0]
		dir[cid] = node.Addr()
	}

	for _, sn := range w.servers {
		sn.SetPeers(dir)
	}
	for _, node := range w.clients {
		node.SetPeers(dir)
	}
	return w
}

// directory rebuilds the address book (needed when a server restarts).
func (w *liveWorld) directory() map[types.ProcID]string {
	dir := make(map[types.ProcID]string)
	for _, sn := range w.servers {
		dir[sn.ID()] = sn.Addr()
	}
	for cid, node := range w.clients {
		dir[cid] = node.Addr()
	}
	return dir
}

// maxViewID returns the highest view identifier any client has installed.
func (w *liveWorld) maxViewID() types.ViewID {
	var max types.ViewID
	for _, node := range w.clients {
		if v := node.CurrentView().ID; v > max {
			max = v
		}
	}
	return max
}

// waitFullView waits until every client is attached somewhere and has
// installed a view containing all clients with an id above floor.
func (w *liveWorld) waitFullView(what string, floor types.ViewID) {
	w.t.Helper()
	all := w.allClients()
	w.waitFor(what, func() bool {
		for _, node := range w.clients {
			if node.Home() == "" {
				return false
			}
			v := node.CurrentView()
			if v.ID <= floor || !v.Members.Equal(all) {
				return false
			}
		}
		return true
	})
}

// roundOfTraffic has every client multicast once and waits until every
// client has delivered the whole round.
func (w *liveWorld) roundOfTraffic(tag string) {
	w.t.Helper()
	base := w.deliveredSnapshot()
	for cid := range w.clients {
		w.sendRetry(cid, tag+"-"+string(cid))
	}
	n := len(w.clients)
	w.waitFor(tag+" traffic delivered everywhere", func() bool {
		snap := w.deliveredSnapshot()
		for cid := range w.clients {
			if snap[cid]-base[cid] < n {
				return false
			}
		}
		return true
	})
}

// TestLiveServerCrashFailover kills a home server mid-deployment: its
// clients detect the dead link (or the silent home), re-attach to the next
// server in their list, and the surviving server reconfigures everyone into
// a fresh full view. Traffic flows before and after, and the full spec
// suite holds across the hand-off.
func TestLiveServerCrashFailover(t *testing.T) {
	w := newAttachWorld(t, 2, 4, attachOptions{})
	defer w.close()
	w.boot()
	w.startHeartbeats(20*time.Millisecond, 150*time.Millisecond)

	w.waitFullView("all clients attached and in the full view", 0)
	w.roundOfTraffic("pre-crash")

	dead, survivor := w.servers[0], w.servers[1]
	floor := w.maxViewID()
	dead.Close()

	w.waitFor("all clients re-homed at the survivor", func() bool {
		for _, node := range w.clients {
			if node.Home() != survivor.ID() {
				return false
			}
		}
		return true
	})
	w.waitFullView("survivor reinstalls the full view", floor)
	w.roundOfTraffic("post-crash")

	// The orphans (clients whose preferred home died) must have failed over.
	for cid, node := range w.clients {
		if w.homes[cid] != dead.ID() {
			continue
		}
		if st := node.Stats(); st.Failovers == 0 || st.Epoch < 2 {
			t.Errorf("%s: expected a failover under a fresh epoch, got %+v", cid, st)
		}
	}
	if err := w.specErr(); err != nil {
		t.Fatalf("spec violation across server crash: %v", err)
	}
}

// TestLiveServerRestartFromWAL crashes the only server and restarts it on
// the same address from its file store: the replayed WAL restores every
// client's identifier record, so the resumed deployment issues cids and
// view ids strictly above everything from before the crash — Local
// Monotonicity survives the restart (the spec suite would flag any
// regression in the notification stream).
func TestLiveServerRestartFromWAL(t *testing.T) {
	dir := t.TempDir()
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	w := newAttachWorld(t, 1, 2, attachOptions{
		stores: map[types.ProcID]Store{"srv0": store},
	})
	defer w.close()
	w.boot()

	w.waitFullView("clients attached and in the full view", 0)
	w.roundOfTraffic("pre-crash")

	pre := w.servers[0].Records()
	if len(pre) != len(w.clients) {
		t.Fatalf("expected %d pre-crash records, got %v", len(w.clients), pre)
	}
	for p, rec := range pre {
		if rec.CID <= 0 || rec.Vid <= 0 {
			t.Fatalf("pre-crash record for %s not yet populated: %+v", p, rec)
		}
	}
	addr := w.servers[0].Addr()
	floor := w.maxViewID()
	w.servers[0].Close()

	// Restart on the same address with a fresh handle to the same store.
	store2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := NewServerNode(ServerConfig{
		ID:        "srv0",
		Addr:      addr,
		Servers:   types.NewProcSet("srv0"),
		Store:     store2,
		Watchdog:  25 * time.Millisecond,
		Transport: testTransport(),
	})
	if err != nil {
		t.Fatal(err)
	}
	w.servers[0] = sn // w.close now tears down the restarted instance

	// The WAL replay restored at least the pre-crash identifier state
	// (clients may already be re-attaching, which only raises the values).
	got := sn.Records()
	for p, rec := range pre {
		g, ok := got[p]
		if !ok || g.CID < rec.CID || g.Vid < rec.Vid || g.Epoch < rec.Epoch {
			t.Fatalf("record for %s regressed across restart: pre %+v post %+v", p, rec, g)
		}
	}

	sn.SetPeers(w.directory())
	sn.SetReachable(types.NewProcSet("srv0"))

	w.waitFullView("clients re-attached to the restarted server", floor)
	w.roundOfTraffic("post-restart")

	if err := w.specErr(); err != nil {
		t.Fatalf("spec violation across server restart: %v", err)
	}
}

// TestLiveWatchdogRecoversDroppedProposals runs reconfiguration attempts
// over a server-to-server trunk that drops 85% of frames in each direction.
// Without the watchdog a single lost proposal wedges the one-round protocol
// forever; with it, attempts complete in bounded retries (proposals are
// idempotent, so the spec suite stays green — drops are confined to
// server-to-server traffic).
func TestLiveWatchdogRecoversDroppedProposals(t *testing.T) {
	w := newAttachWorld(t, 2, 2, attachOptions{watchdog: 20 * time.Millisecond})
	defer w.close()
	w.boot() // static reachability: no heartbeats, so drops cannot churn the detector

	w.waitFullView("all clients attached and in the full view", 0)

	srv0, srv1 := w.servers[0], w.servers[1]
	srv0.Chaos().SetDropProbabilityFor(0.85, srv1.ID())
	srv1.Chaos().SetDropProbabilityFor(0.85, srv0.ID())

	for round := 0; round < 3; round++ {
		floor := w.maxViewID()
		w.servers[round%2].Reconfigure()
		w.waitFullView(fmt.Sprintf("round %d view over the lossy trunk", round), floor)
	}

	srv0.Chaos().Heal()
	srv1.Chaos().Heal()

	if rp := srv0.Stats().Reproposals + srv1.Stats().Reproposals; rp == 0 {
		t.Fatal("attempts completed over an 85%-lossy trunk without any reproposal — watchdog never fired")
	}
	if err := w.specErr(); err != nil {
		t.Fatalf("spec violation under proposal drops: %v", err)
	}
}

// TestLivePartitionedHomeEvictsStaleClients partitions one home server away
// from everything: its clients fail over on the silent-home timeout and the
// survivor serves the full group. When the partition heals, the stale
// server learns from epoch gossip that its registrations moved and evicts
// them instead of fighting over ownership; its late notifications are
// filtered client-side, so the spec suite stays green throughout.
func TestLivePartitionedHomeEvictsStaleClients(t *testing.T) {
	w := newAttachWorld(t, 2, 4, attachOptions{})
	defer w.close()
	w.boot()
	w.startHeartbeats(20*time.Millisecond, 150*time.Millisecond)

	w.waitFullView("all clients attached and in the full view", 0)
	w.roundOfTraffic("pre-partition")

	stale, survivor := w.servers[0], w.servers[1]
	floor := w.maxViewID()

	// Symmetric partition: srv0 cut off from its peer and every client.
	rest := []types.ProcID{survivor.ID()}
	for cid := range w.clients {
		rest = append(rest, cid)
	}
	stale.Chaos().BlockOutbound(rest...)
	survivor.Chaos().BlockOutbound(stale.ID())
	for _, node := range w.clients {
		node.Chaos().BlockOutbound(stale.ID())
	}

	w.waitFor("orphans fail over to the survivor", func() bool {
		for _, node := range w.clients {
			if node.Home() != survivor.ID() {
				return false
			}
		}
		return true
	})
	w.waitFullView("survivor reinstalls the full view", floor)
	w.roundOfTraffic("during-partition")

	w.healServers()

	// Post-heal proposal exchange gossips the orphans' new epochs; the stale
	// server must cede them rather than keep claiming ownership.
	w.waitFor("stale server evicts its superseded registrations", func() bool {
		return stale.Clients().Len() == 0
	})
	if ev := stale.Stats().Evictions; ev == 0 {
		t.Fatal("stale server dropped its clients without recording an eviction")
	}

	w.roundOfTraffic("post-heal")
	if err := w.specErr(); err != nil {
		t.Fatalf("spec violation across partition and heal: %v", err)
	}
}
