package live

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"vsgm/internal/types"
	"vsgm/internal/wire"
	"vsgm/internal/wire/pool"
)

// encodedAppFrame returns the length-prefixed wire bytes of one KindApp
// frame with the given payload.
func encodedAppFrame(t *testing.T, id int64, payload []byte) []byte {
	t.Helper()
	m := types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: id, Payload: payload}}
	fb, err := wire.EncodeFrame(frame{From: "src", Msg: &m})
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Release()
	b := fb.Bytes()
	out := []byte{byte(len(b) >> 24), byte(len(b) >> 16), byte(len(b) >> 8), byte(len(b))}
	return append(out, b...)
}

// feed pushes stream bytes into the assembler in chunks of at most max,
// collecting every decoded frame through visit.
func feed(t *testing.T, a *frameAssembler, stream []byte, max int, visit func(fr *frame, body *pool.Buf)) {
	t.Helper()
	var fr frame
	for len(stream) > 0 {
		w := a.writable()
		n := min(len(stream), min(len(w), max))
		copy(w, stream[:n])
		a.advance(n)
		stream = stream[n:]
		for {
			body, done, err := a.next(&fr)
			if err != nil {
				t.Fatalf("assembler error: %v", err)
			}
			if done {
				break
			}
			visit(&fr, body)
		}
	}
}

func TestAssemblerReassemblesArbitrarySegmentation(t *testing.T) {
	p := pool.New()
	rng := rand.New(rand.NewSource(7))
	var stream []byte
	const frames = 200
	for i := 0; i < frames; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, rng.Intn(600)+1)
		stream = append(stream, encodedAppFrame(t, int64(i), payload)...)
	}
	for _, chunk := range []int{1, 3, 7, 64, 1 << 20} {
		t.Run(fmt.Sprintf("chunk=%d", chunk), func(t *testing.T) {
			a := newFrameAssembler(p)
			got := 0
			feed(t, a, stream, chunk, func(fr *frame, body *pool.Buf) {
				if fr.Msg == nil || fr.Msg.Kind != types.KindApp {
					t.Fatalf("frame %d: unexpected shape %+v", got, fr)
				}
				if id := fr.Msg.App.ID; id != int64(got) {
					t.Fatalf("frame %d decoded with ID %d", got, id)
				}
				want := byte(got)
				for _, b := range fr.Msg.App.Payload {
					if b != want {
						t.Fatalf("frame %d payload corrupted", got)
					}
				}
				got++
				if body != nil {
					body.Release()
				}
			})
			if got != frames {
				t.Fatalf("decoded %d frames, want %d", got, frames)
			}
			a.close()
			if n := p.Stats().Outstanding; n != 0 {
				t.Fatalf("%d buffers outstanding after close", n)
			}
		})
	}
}

func TestAssemblerLargeFrameTakesFillPath(t *testing.T) {
	p := pool.New()
	a := newFrameAssembler(p)
	// Larger than the staging slab, still within the largest pool class:
	// the body must land in a dedicated pooled fill buffer.
	payload := bytes.Repeat([]byte("F"), stagingSlabSize+1024)
	stream := encodedAppFrame(t, 42, payload)
	var bodies []*pool.Buf
	got := 0
	feed(t, a, stream, 8<<10, func(fr *frame, body *pool.Buf) {
		got++
		if body == nil {
			t.Fatal("fill-path frame should carry a pooled body reference")
		}
		if !bytes.Equal(fr.Msg.App.Payload, payload) {
			t.Fatal("fill-path payload corrupted")
		}
		bodies = append(bodies, body)
	})
	if got != 1 {
		t.Fatalf("decoded %d frames, want 1", got)
	}
	for _, b := range bodies {
		b.Release()
	}
	a.close()
	if n := p.Stats().Outstanding; n != 0 {
		t.Fatalf("%d buffers outstanding after close", n)
	}
}

func TestAssemblerOversizedFrameIsPlainMemory(t *testing.T) {
	p := pool.New()
	a := newFrameAssembler(p)
	// Beyond the largest pool class: grown as bytes arrive, owned by the GC.
	payload := bytes.Repeat([]byte("G"), pool.MaxSlab+512)
	stream := encodedAppFrame(t, 7, payload)
	got := 0
	feed(t, a, stream, 32<<10, func(fr *frame, body *pool.Buf) {
		got++
		if body != nil {
			t.Fatal("oversized frame must not reference the pool")
		}
		if !bytes.Equal(fr.Msg.App.Payload, payload) {
			t.Fatal("oversized payload corrupted")
		}
	})
	if got != 1 {
		t.Fatalf("decoded %d frames, want 1", got)
	}
	a.close()
	if n := p.Stats().Outstanding; n != 0 {
		t.Fatalf("%d buffers outstanding after close", n)
	}
}

func TestAssemblerRejectsHostileLengthPrefix(t *testing.T) {
	a := newFrameAssembler(pool.New())
	defer a.close()
	huge := wire.MaxFrameSize + 1
	hdr := []byte{byte(huge >> 24), byte(huge >> 16), byte(huge >> 8), byte(huge)}
	copy(a.writable(), hdr)
	a.advance(4)
	var fr frame
	if _, _, err := a.next(&fr); err != wire.ErrFrameTooLarge {
		t.Fatalf("hostile length prefix: got err %v, want ErrFrameTooLarge", err)
	}
}

func TestAssemblerMidFrameStamp(t *testing.T) {
	a := newFrameAssembler(pool.New())
	defer a.close()
	if _, mid := a.midFrame(); mid {
		t.Fatal("fresh assembler claims a frame in progress")
	}
	stream := encodedAppFrame(t, 1, []byte("hello"))
	copy(a.writable(), stream[:3]) // partial header
	a.advance(3)
	var fr frame
	if _, done, _ := a.next(&fr); !done {
		t.Fatal("3 bytes should not decode a frame")
	}
	if _, mid := a.midFrame(); !mid {
		t.Fatal("partial frame not stamped as in progress")
	}
	copy(a.writable(), stream[3:])
	a.advance(len(stream) - 3)
	body, done, err := a.next(&fr)
	if err != nil || done {
		t.Fatalf("complete frame failed to decode: done=%v err=%v", done, err)
	}
	if body != nil {
		body.Release()
	}
	if _, mid := a.midFrame(); mid {
		t.Fatal("stamp not cleared after the stream drained")
	}
}

// TestPooledBodyCrossesGoroutines is the -race witness for the refcount
// contract: frame bodies decoded on one goroutine are handed to concurrent
// consumers that read the payload and release their reference, while the
// producer keeps decoding into fresh slabs. Run with -race.
func TestPooledBodyCrossesGoroutines(t *testing.T) {
	p := pool.New()
	a := newFrameAssembler(p)
	type delivery struct {
		payload []byte
		body    *pool.Buf
	}
	ch := make(chan delivery, 64)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range ch {
				sum := byte(0)
				for _, b := range d.payload {
					sum ^= b
				}
				_ = sum
				if d.body != nil {
					d.body.Release()
				}
			}
		}()
	}
	const frames = 500
	var stream []byte
	for i := 0; i < frames; i++ {
		stream = append(stream, encodedAppFrame(t, int64(i), bytes.Repeat([]byte{byte(i)}, 200))...)
	}
	got := 0
	feed(t, a, stream, 4<<10, func(fr *frame, body *pool.Buf) {
		got++
		ch <- delivery{payload: fr.Msg.App.Payload, body: body}
	})
	close(ch)
	wg.Wait()
	if got != frames {
		t.Fatalf("decoded %d frames, want %d", got, frames)
	}
	a.close()
	if n := p.Stats().Outstanding; n != 0 {
		t.Fatalf("%d buffers outstanding after all consumers released", n)
	}
}

// TestReactorModeMatrix runs one round trip under each explicitly forced
// engine, so a single test binary exercises both paths regardless of the
// ambient VSGM_REACTOR regime.
func TestReactorModeMatrix(t *testing.T) {
	modes := []struct {
		name string
		mode ReactorMode
		on   bool
	}{
		{"goroutine", ReactorOff, false},
		{"reactor", ReactorOn, reactorSupported},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			got := make(chan int64, 16)
			cfg := TransportConfig{Reactor: m.mode}
			fa, err := newFabric("a", "127.0.0.1:0", cfg, func(types.ProcID, frame) {}, func(types.ProcID, error) {})
			if err != nil {
				t.Fatal(err)
			}
			defer fa.Close()
			fb, err := newFabric("b", "127.0.0.1:0", cfg,
				func(_ types.ProcID, fr frame) {
					if fr.Msg != nil && fr.Msg.Kind == types.KindApp {
						got <- fr.Msg.App.ID
					}
				},
				func(types.ProcID, error) {})
			if err != nil {
				t.Fatal(err)
			}
			defer fb.Close()
			if fa.ReactorOn() != m.on || fb.ReactorOn() != m.on {
				t.Fatalf("engine mismatch: ReactorOn=%v/%v, want %v", fa.ReactorOn(), fb.ReactorOn(), m.on)
			}
			fa.SetPeers(map[types.ProcID]string{"b": fb.Addr()})
			for i := int64(0); i < 5; i++ {
				fa.Send([]types.ProcID{"b"}, types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: i, Payload: []byte("ping")}})
			}
			for i := int64(0); i < 5; i++ {
				select {
				case id := <-got:
					if id != i {
						t.Fatalf("frame %d arrived with ID %d", i, id)
					}
				case <-time.After(10 * time.Second):
					t.Fatalf("frame %d never arrived under %s engine", i, m.name)
				}
			}
		})
	}
}
