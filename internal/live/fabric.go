package live

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vsgm/internal/membership"
	"vsgm/internal/types"
	"vsgm/internal/wire"
	"vsgm/internal/wire/pool"
)

// ReactorMode selects the engine that drives a fabric's established
// connections.
type ReactorMode int

const (
	// ReactorAuto uses the shared epoll reactor where the platform supports
	// it (linux) and the goroutine-per-link engine elsewhere. The
	// VSGM_REACTOR environment variable ("1"/"on" or "0"/"off") overrides
	// the automatic choice, which is how the test matrix forces each engine.
	ReactorAuto ReactorMode = iota
	// ReactorOn forces the reactor (still subject to platform support).
	ReactorOn
	// ReactorOff forces the portable goroutine-per-link engine.
	ReactorOff
)

// TransportConfig tunes the supervised transport underneath a live node.
// The zero value selects production defaults; tests shrink the timeouts to
// keep fault-injection runs fast.
type TransportConfig struct {
	// DialTimeout bounds one connection attempt; a dead peer can never
	// block connection setup past it. Default 3s.
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write, so a peer that stops draining
	// its socket stalls a sender for at most this long before the link is
	// torn down and redialed. Default 10s.
	WriteTimeout time.Duration
	// ReadIdleTimeout, when positive, severs an inbound connection that has
	// been silent for the duration. Off by default: client links are
	// legitimately idle between multicasts.
	ReadIdleTimeout time.Duration
	// BackoffBase is the first reconnection delay; each failed attempt
	// doubles it (with jitter) up to BackoffMax. Defaults 50ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// QueueCap bounds each per-peer outbound queue; when a link is down
	// long enough to fill it, the oldest frames are evicted (and counted)
	// so senders never block. Default 4096.
	QueueCap int
	// MaxBatchFrames bounds how many queued frames the link writer drains
	// in one batch: a burst of k<=MaxBatchFrames frames costs one flush
	// instead of k. Default 64.
	MaxBatchFrames int
	// MaxBatchBytes caps the bytes coalesced into a single flush, so a
	// batch of large frames cannot defer the write (and the armed write
	// deadline) arbitrarily. Default 128 KiB.
	MaxBatchBytes int
	// Window is the per-link credit window: how many application data
	// frames may be outstanding (sent but not yet consumed by the peer's
	// application) before Node.Send stalls. Control-plane frames are never
	// gated. Default 1024; negative starts links with zero credit, so
	// every data send waits for an explicit grant (used by tests).
	Window int
	// Reactor selects the connection-driving engine; see ReactorMode.
	Reactor ReactorMode
	// ReactorLoops is the number of shared event-loop goroutines the
	// reactor runs (each drives a share of all established links). Default
	// min(4, GOMAXPROCS).
	ReactorLoops int
}

func (c TransportConfig) withDefaults() TransportConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 3 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4096
	}
	if c.MaxBatchFrames <= 0 {
		c.MaxBatchFrames = 64
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 128 << 10
	}
	if c.Window == 0 {
		c.Window = 1024
	}
	if c.ReactorLoops <= 0 {
		c.ReactorLoops = min(4, runtime.GOMAXPROCS(0))
	}
	return c
}

// reactorEnabled resolves the configured mode against platform support and
// the VSGM_REACTOR environment override (which applies only to Auto, so a
// test that pins a mode explicitly keeps it).
func (c TransportConfig) reactorEnabled() bool {
	mode := c.Reactor
	if mode == ReactorAuto {
		switch os.Getenv("VSGM_REACTOR") {
		case "0", "off":
			mode = ReactorOff
		case "1", "on":
			mode = ReactorOn
		}
	}
	return mode != ReactorOff && reactorSupported
}

// reactorStats are the reactor's engine-level counters (all zero when the
// fabric runs the goroutine-per-link engine).
type reactorStats struct {
	// wakeups counts epoll_wait returns with at least one event; events the
	// readiness events handled; framesIn the frames decoded by the batch
	// receive path; bytesIn the raw bytes read; writes the flush syscall
	// rounds on the writer side. framesIn/wakeups is the batch-amortization
	// factor the reactor exists to maximize.
	wakeups, events, framesIn, bytesIn, writes atomic.Int64
}

// LinkStats are the per-peer transport counters a fabric accumulates; they
// make degradation observable (tests assert on them, cmd/vsgm-live prints
// them).
type LinkStats struct {
	// Dials counts connection attempts; DialFailures the ones that errored.
	Dials        int64
	DialFailures int64
	// Reconnects counts successful connections after the first.
	Reconnects int64
	// Retries counts backoff sleeps taken while the link was down.
	Retries int64
	// FramesSent counts frames written to the socket.
	FramesSent int64
	// Flushes counts socket flushes; the coalescing writer keeps it well
	// below FramesSent under bursts (one flush per drained batch).
	Flushes int64
	// WriteErrors counts frame writes that failed (each tears the
	// connection down for a supervised redial).
	WriteErrors int64
	// QueueDrops counts frames evicted from the bounded outbound queue.
	QueueDrops int64
	// ChaosDrops / ChaosDups count frames dropped or duplicated by the
	// chaos controller (including one-way partition drops).
	ChaosDrops int64
	ChaosDups  int64
	// CreditsConsumed counts outbound window credit consumed: data frames
	// charged against the peer's cumulative grant (net of refunds for
	// frames that never reached the socket).
	CreditsConsumed int64
	// CreditsGranted counts inbound credit granted to the peer beyond its
	// initial window, i.e. how far the local application's consumption has
	// advanced the peer's permission to send.
	CreditsGranted int64
	// CreditFrames counts standalone credit frames sent to the peer
	// (including idempotent keepalive re-grants).
	CreditFrames int64
	// WindowExhausted counts exhaustion episodes: transitions of the
	// outbound window from open to shut with a sender waiting.
	WindowExhausted int64
	// HeartbeatsCoalesced counts queued heartbeats superseded by a newer
	// one before reaching the wire (not drops: the newest always flows).
	HeartbeatsCoalesced int64
}

// Drops is the total of all dropped frames on the link.
func (s LinkStats) Drops() int64 { return s.QueueDrops + s.ChaosDrops }

// mailbox is a FIFO queue: outbound sends and application events enqueue
// here so the automaton's step loop never blocks on a slow consumer, and a
// single goroutine drains in order (one entry at a time with take, or in
// coalesced batches with takeBatch). With a positive cap the queue is
// bounded: a full queue evicts an entry (counted) instead of blocking the
// producer. onDrop, when set, observes every entry the mailbox discards —
// evictions and anything still queued at close — so pooled entries can be
// released; such a mailbox drops its backlog at close instead of handing it
// out.
//
// classOf, when set, makes eviction class-aware: only ClassData entries may
// ever be evicted (oldest first), control entries are reliable and let the
// queue grow past cap rather than drop, and a newly queued heartbeat
// supersedes an already queued one (coalesced, not counted as a drop).
// sizeOf, when set, keeps a running byte total for the memory budget.
type mailbox[T any] struct {
	mu        sync.Mutex
	cond      *sync.Cond
	queue     []T // live entries are queue[head:]; the prefix is zeroed slack
	head      int
	cap       int
	onDrop    func(T)
	onReady   func() // fires (outside the lock) on empty->nonempty transitions
	classOf   func(T) wire.FrameClass
	sizeOf    func(T) int
	bytes     int64
	evicted   int64
	coalesced int64
	closed    bool
}

// compact reclaims the consumed prefix so the backing array is reused
// instead of reallocated: a full reset when the queue drains, a copy-down
// when an append would otherwise grow the array past dead slack.
func (m *mailbox[T]) compact() {
	if m.head == len(m.queue) {
		m.queue = m.queue[:0]
		m.head = 0
		return
	}
	if m.head > 0 && len(m.queue) == cap(m.queue) {
		n := copy(m.queue, m.queue[m.head:])
		var zero T
		for i := n; i < len(m.queue); i++ {
			m.queue[i] = zero
		}
		m.queue = m.queue[:n]
		m.head = 0
	}
}

func newMailbox[T any]() *mailbox[T] {
	m := &mailbox[T]{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func newBoundedMailbox[T any](cap int, onDrop func(T)) *mailbox[T] {
	m := newMailbox[T]()
	m.cap = cap
	m.onDrop = onDrop
	return m
}

// put enqueues v; it reports false if the mailbox is closed (the caller
// keeps ownership of v). A bounded mailbox at capacity evicts to make room:
// the oldest entry without a classifier, the oldest data entry with one —
// and with a classifier a control entry is never evicted, the queue grows
// past cap instead (control is low-rate and reliable by contract).
func (m *mailbox[T]) put(v T) bool {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return false
	}
	if m.classOf != nil && m.classOf(v) == wire.ClassHeartbeat {
		if i := m.findClass(wire.ClassHeartbeat); i >= 0 {
			m.coalesced++
			m.removeAt(i)
		}
	}
	if m.cap > 0 && len(m.queue)-m.head >= m.cap {
		i := m.head
		if m.classOf != nil {
			i = m.findClass(wire.ClassData)
		}
		if i >= 0 {
			m.evicted++
			m.removeAt(i)
		}
	}
	wasEmpty := m.head == len(m.queue)
	m.compact()
	m.queue = append(m.queue, v)
	if m.sizeOf != nil {
		m.bytes += int64(m.sizeOf(v))
	}
	m.cond.Signal()
	notify := wasEmpty && m.onReady != nil
	ready := m.onReady
	m.mu.Unlock()
	if notify {
		ready()
	}
	return true
}

// setOnReady installs the empty->nonempty notification hook (the reactor's
// wakeup). Must be installed before the first put that should observe it.
func (m *mailbox[T]) setOnReady(fn func()) {
	m.mu.Lock()
	m.onReady = fn
	m.mu.Unlock()
}

// tryTakeBatch drains up to max entries without blocking; ok=false means the
// queue was empty (or closed). This is the reactor's drain: the event loop
// must never park on a mailbox condvar.
func (m *mailbox[T]) tryTakeBatch(dst []T, max int) ([]T, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.queue) - m.head
	if n == 0 {
		return dst, false
	}
	if max > 0 && n > max {
		n = max
	}
	dst = append(dst, m.queue[m.head:m.head+n]...)
	var zero T
	for i := 0; i < n; i++ {
		if m.sizeOf != nil {
			m.bytes -= int64(m.sizeOf(m.queue[m.head+i]))
		}
		m.queue[m.head+i] = zero
	}
	m.head += n
	m.compact()
	return dst, true
}

// findClass returns the index of the oldest queued entry of class c, or -1.
func (m *mailbox[T]) findClass(c wire.FrameClass) int {
	for i := m.head; i < len(m.queue); i++ {
		if m.classOf(m.queue[i]) == c {
			return i
		}
	}
	return -1
}

// removeAt discards queue[i] (head <= i < len): byte accounting shrinks,
// onDrop observes the entry, and later entries shift down so FIFO order is
// preserved.
func (m *mailbox[T]) removeAt(i int) {
	v := m.queue[i]
	if m.sizeOf != nil {
		m.bytes -= int64(m.sizeOf(v))
	}
	var zero T
	if i == m.head {
		m.queue[m.head] = zero
		m.head++
	} else {
		copy(m.queue[i:], m.queue[i+1:])
		m.queue[len(m.queue)-1] = zero
		m.queue = m.queue[:len(m.queue)-1]
	}
	if m.onDrop != nil {
		m.onDrop(v)
	}
}

// take blocks until a value is available or the mailbox closes.
func (m *mailbox[T]) take() (T, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.head == len(m.queue) && !m.closed {
		m.cond.Wait()
	}
	if m.head == len(m.queue) {
		var zero T
		return zero, false
	}
	v := m.queue[m.head]
	var zero T
	m.queue[m.head] = zero
	m.head++
	if m.sizeOf != nil {
		m.bytes -= int64(m.sizeOf(v))
	}
	m.compact()
	return v, true
}

// takeBatch blocks until at least one entry is available (or the mailbox
// closes empty), then drains up to max entries into dst in FIFO order. One
// takeBatch per burst is what turns k queued frames into a single flush.
func (m *mailbox[T]) takeBatch(dst []T, max int) ([]T, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.head == len(m.queue) && !m.closed {
		m.cond.Wait()
	}
	n := len(m.queue) - m.head
	if n == 0 {
		return dst, false
	}
	if max > 0 && n > max {
		n = max
	}
	dst = append(dst, m.queue[m.head:m.head+n]...)
	var zero T
	for i := 0; i < n; i++ {
		if m.sizeOf != nil {
			m.bytes -= int64(m.sizeOf(m.queue[m.head+i]))
		}
		m.queue[m.head+i] = zero
	}
	m.head += n
	m.compact()
	return dst, true
}

func (m *mailbox[T]) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	if m.onDrop != nil {
		for i := m.head; i < len(m.queue); i++ {
			m.onDrop(m.queue[i])
			var zero T
			m.queue[i] = zero
		}
		m.queue = nil
		m.head = 0
		m.bytes = 0
	}
	m.cond.Broadcast()
}

func (m *mailbox[T]) evictions() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evicted
}

func (m *mailbox[T]) coalescedCount() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.coalesced
}

// queuedBytes is the running total of sizeOf over queued entries.
func (m *mailbox[T]) queuedBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// link is the supervised state for one destination: its bounded outbound
// queue of pre-encoded frames, counters, and both directions of credit
// bookkeeping. The writer goroutine starts on first use and owns the
// dial/backoff/reconnect cycle.
type link struct {
	peer    types.ProcID
	mb      *mailbox[*wire.FrameBuf]
	started bool

	mu        sync.Mutex
	stats     LinkStats
	connected bool // ever connected (distinguishes connects from reconnects)

	// Outbound credit (sender role): used counts data frames charged
	// toward the peer, refunded when one is discarded before the socket;
	// granted is the peer's cumulative permission. used >= granted means
	// the window is shut and data sends must wait.
	used    int64
	granted int64
	// Inbound credit (receiver role): consumed counts the peer's data
	// frames fully consumed by the local application; grantedOut is the
	// cumulative grant advertised back, advanced in half-window refreshes.
	consumed   int64
	grantedOut int64
	// exhaustedSince stamps the start of the current exhaustion episode
	// (zero while the window is open); reported latches the one
	// slow-consumer complaint filed per episode.
	exhaustedSince time.Time
	reported       bool
}

func (l *link) bump(f func(*LinkStats)) {
	l.mu.Lock()
	f(&l.stats)
	l.mu.Unlock()
}

func (l *link) snapshot(window int64) LinkStats {
	l.mu.Lock()
	s := l.stats
	s.CreditsConsumed = l.used
	s.CreditsGranted = l.grantedOut - window
	l.mu.Unlock()
	s.QueueDrops += l.mb.evictions()
	s.HeartbeatsCoalesced += l.mb.coalescedCount()
	return s
}

// windowOpen reports whether one more data frame fits the peer's window,
// stamping the start of an exhaustion episode (for the slow-consumer grace
// clock) when it does not.
func (l *link) windowOpen(now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.used < l.granted {
		return true
	}
	if l.exhaustedSince.IsZero() {
		l.exhaustedSince = now
		l.reported = false
		l.stats.WindowExhausted++
	}
	return false
}

// chargeData consumes one unit of outbound credit.
func (l *link) chargeData() {
	l.mu.Lock()
	l.used++
	l.mu.Unlock()
}

// fabric owns a process's listener, its supervised outbound links (one per
// destination, dialed lazily with timeout/backoff/reconnect), and the
// inbound reader goroutines. Incoming frames are handed to the receive
// callback in per-connection order. Link failures are reported through
// onDown so the layer above can translate them into detector suspicions.
type fabric struct {
	id      types.ProcID
	cfg     TransportConfig
	ln      net.Listener
	receive func(from types.ProcID, f frame)
	// receiveRef is the zero-copy delivery callback (set via newFabricRef):
	// the frame's payload aliases body (nil when the frame owns its memory)
	// and the callee must Release body when the payload is out of use. When
	// only the legacy receive is set, the fabric deep-copies frames before
	// delivery so existing consumers keep fully-owned semantics.
	receiveRef func(from types.ProcID, f frame, body *pool.Buf)
	onDown     func(peer types.ProcID, err error)
	chaos      *Chaos
	// pool feeds the receive path's slab buffers on both engines; its
	// outstanding count is the transport's buffer-leak detector.
	pool *pool.Pool
	// reactor drives established connections from shared epoll loops; nil
	// means the portable goroutine-per-link engine is in charge.
	reactor *reactor
	rstats  reactorStats

	mu     sync.Mutex
	peers  map[types.ProcID]string
	links  map[types.ProcID]*link
	closed bool

	// flowMu/flowCond park data senders waiting out a shut credit window
	// or a tripped memory budget; flowGen rises on every event that could
	// reopen one (credit arrival, queue drain, refund, tick), so a waiter
	// that sampled the generation before checking cannot miss its wakeup.
	flowMu   sync.Mutex
	flowCond *sync.Cond
	flowGen  uint64

	wg      sync.WaitGroup
	closing chan struct{}
	once    sync.Once
}

// newFabric starts listening on addr (use "127.0.0.1:0" for an ephemeral
// port) and begins accepting inbound connections. onDown (optional) is
// invoked from transport goroutines whenever an established link breaks or
// a dial fails; it must not block.
func newFabric(id types.ProcID, addr string, cfg TransportConfig,
	receive func(types.ProcID, frame), onDown func(types.ProcID, error)) (*fabric, error) {
	f, err := buildFabric(id, addr, cfg, onDown)
	if err != nil {
		return nil, err
	}
	f.receive = receive
	f.start()
	return f, nil
}

// newFabricRef is the zero-copy constructor: receive gets frames whose
// payloads alias the pooled body buffer and owns the obligation to Release
// it (body may be nil; see fabric.receiveRef).
func newFabricRef(id types.ProcID, addr string, cfg TransportConfig,
	receive func(types.ProcID, frame, *pool.Buf), onDown func(types.ProcID, error)) (*fabric, error) {
	f, err := buildFabric(id, addr, cfg, onDown)
	if err != nil {
		return nil, err
	}
	f.receiveRef = receive
	f.start()
	return f, nil
}

func buildFabric(id types.ProcID, addr string, cfg TransportConfig,
	onDown func(types.ProcID, error)) (*fabric, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", addr, err)
	}
	f := &fabric{
		id:      id,
		cfg:     cfg.withDefaults(),
		ln:      ln,
		onDown:  onDown,
		chaos:   newChaos(),
		pool:    pool.New(),
		peers:   make(map[types.ProcID]string),
		links:   make(map[types.ProcID]*link),
		closing: make(chan struct{}),
	}
	f.flowCond = sync.NewCond(&f.flowMu)
	if f.cfg.reactorEnabled() {
		// A reactor that cannot come up (fd limits, exotic kernels) is not
		// fatal: the goroutine-per-link engine carries the fabric instead.
		if r, rerr := newReactor(f, f.cfg.ReactorLoops); rerr == nil {
			f.reactor = r
		}
	}
	return f, nil
}

func (f *fabric) start() {
	f.wg.Add(1)
	go f.acceptLoop()
	if f.reactor != nil {
		f.reactor.startLoops()
	}
}

// ReactorOn reports which engine drives this fabric's connections.
func (f *fabric) ReactorOn() bool { return f.reactor != nil }

// PoolStats snapshots the receive-slab pool counters.
func (f *fabric) PoolStats() pool.Stats { return f.pool.Stats() }

// deliver routes one inbound frame to the fabric's consumer. The zero-copy
// callback takes the frame as-is plus the body reference; the legacy
// callback gets a deep copy (and the body is released here), preserving the
// fully-owned frame semantics older consumers were built on.
func (f *fabric) deliver(from types.ProcID, fr frame, body *pool.Buf) {
	if f.receiveRef != nil {
		f.receiveRef(from, fr, body)
		return
	}
	fr = ownedFrame(fr)
	if body != nil {
		body.Release()
	}
	f.receive(from, fr)
}

// ownedFrame rebuilds a borrowed frame (scratch pointers, slab-aliased
// payload) into one safe to hold indefinitely.
func ownedFrame(fr frame) frame {
	if fr.Msg != nil {
		m := *fr.Msg
		if len(m.App.Payload) > 0 {
			m.App.Payload = append([]byte(nil), m.App.Payload...)
		}
		fr.Msg = &m
	}
	if fr.Notify != nil {
		n := *fr.Notify
		fr.Notify = &n
	}
	if fr.Attach != nil {
		a := *fr.Attach
		fr.Attach = &a
	}
	if fr.Credit != nil {
		c := *fr.Credit
		fr.Credit = &c
	}
	return fr
}

// Addr returns the fabric's listen address.
func (f *fabric) Addr() string { return f.ln.Addr().String() }

// Chaos returns the fabric's fault-injection controller.
func (f *fabric) Chaos() *Chaos { return f.chaos }

// SetPeers installs (or extends) the address directory. A link whose peer
// address arrives late is picked up on its next reconnection attempt.
func (f *fabric) SetPeers(peers map[types.ProcID]string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for p, addr := range peers {
		f.peers[p] = addr
	}
}

func (f *fabric) addrOf(q types.ProcID) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.peers[q]
}

// Stats snapshots the per-link transport counters, keyed by peer.
func (f *fabric) Stats() map[types.ProcID]LinkStats {
	f.mu.Lock()
	links := make([]*link, 0, len(f.links))
	for _, l := range f.links {
		links = append(links, l)
	}
	f.mu.Unlock()
	out := make(map[types.ProcID]LinkStats, len(links))
	w := f.windowSize()
	for _, l := range links {
		out[l.peer] = l.snapshot(w)
	}
	return out
}

// windowSize is the effective initial credit window (negative config means
// zero: grant-only links).
func (f *fabric) windowSize() int64 {
	if f.cfg.Window < 0 {
		return 0
	}
	return int64(f.cfg.Window)
}

// flowBroadcast advances the flow generation and wakes every parked sender.
func (f *fabric) flowBroadcast() {
	f.flowMu.Lock()
	f.flowGen++
	f.flowCond.Broadcast()
	f.flowMu.Unlock()
}

func (f *fabric) flowGeneration() uint64 {
	f.flowMu.Lock()
	defer f.flowMu.Unlock()
	return f.flowGen
}

// waitFlowChange parks until the flow generation moves past gen (credit
// arrived, a queue drained, a tick fired) or the fabric closes; it reports
// false when closing.
func (f *fabric) waitFlowChange(gen uint64) bool {
	f.flowMu.Lock()
	defer f.flowMu.Unlock()
	for f.flowGen == gen && !f.isClosing() {
		f.flowCond.Wait()
	}
	return !f.isClosing()
}

// admitData gates one application data frame toward dests: nil once every
// destination's credit window has room, ErrOverloaded immediately when
// block is false and a window is shut (or, blocking, when the fabric closes
// under the waiter). Admission does not reserve the slot — accounting
// happens at enqueue — so concurrent senders can overshoot a window by at
// most the number of in-flight Send calls.
func (f *fabric) admitData(dests []types.ProcID, block bool) error {
	for {
		gen := f.flowGeneration()
		now := time.Now()
		open := true
		for _, q := range dests {
			if q == f.id {
				continue
			}
			if !f.linkFor(q).windowOpen(now) {
				open = false
				break
			}
		}
		if open {
			return nil
		}
		if !block {
			return ErrOverloaded
		}
		if !f.waitFlowChange(gen) {
			return ErrOverloaded
		}
	}
}

// handleCredit applies a peer's cumulative grant to the outbound window.
// Grants are monotone, so duplicated, reordered, or keepalive re-grants are
// no-ops.
func (f *fabric) handleCredit(from types.ProcID, grant int64) {
	l := f.linkFor(from)
	l.mu.Lock()
	if grant > l.granted {
		l.granted = grant
		if l.used < l.granted {
			l.exhaustedSince = time.Time{}
			l.reported = false
		}
	}
	l.mu.Unlock()
	f.flowBroadcast()
}

// consumedData records that the local application fully consumed one data
// frame from peer. When the peer's remaining credit falls below half the
// window, the grant front advances to consumed+window and is shipped as a
// standalone (idempotent) credit frame — so a steady consumer costs one
// credit frame per window/2 data frames.
func (f *fabric) consumedData(peer types.ProcID) {
	l := f.linkFor(peer)
	w := f.windowSize()
	var grant int64
	l.mu.Lock()
	l.consumed++
	if w > 0 && l.grantedOut-l.consumed < (w+1)/2 {
		if g := l.consumed + w; g > l.grantedOut {
			l.grantedOut = g
			grant = g
		}
	}
	l.mu.Unlock()
	if grant > 0 {
		f.sendCredit(peer, grant)
	}
	f.flowBroadcast()
}

// sendCredit ships a cumulative grant to peer. Credit frames are
// control-plane: never shed, never gated, coalesced onto whatever flush the
// link writer has pending.
func (f *fabric) sendCredit(peer types.ProcID, grant int64) {
	fb, err := wire.EncodeFrame(frame{From: f.id, Credit: &wire.Credit{Grant: uint64(grant)}})
	if err != nil {
		return
	}
	f.linkFor(peer).bump(func(s *LinkStats) { s.CreditFrames++ })
	f.fanOut(fb, []types.ProcID{peer})
}

// refundData returns one unit of outbound credit for a data frame that
// will never reach the peer's socket (chaos drop, queue eviction, closed
// mailbox), so injected loss and shed backlog cannot leak the window shut
// forever.
func (f *fabric) refundData(l *link) {
	l.mu.Lock()
	l.used--
	if l.used < l.granted {
		l.exhaustedSince = time.Time{}
	}
	l.mu.Unlock()
	f.flowBroadcast()
}

// regrant re-advertises the current cumulative grant on every link that has
// carried inbound data. Grants are idempotent, so this periodic keepalive
// cheaply repairs credit frames lost to reconnects or injected faults.
func (f *fabric) regrant() {
	f.mu.Lock()
	links := make([]*link, 0, len(f.links))
	for _, l := range f.links {
		links = append(links, l)
	}
	f.mu.Unlock()
	for _, l := range links {
		var grant int64
		l.mu.Lock()
		if l.consumed > 0 {
			grant = l.grantedOut
		}
		l.mu.Unlock()
		if grant > 0 {
			f.sendCredit(l.peer, grant)
		}
	}
}

// slowPeers returns peers whose credit window has been exhausted for at
// least grace with a sender still waiting, marking each so one exhaustion
// episode yields exactly one complaint.
func (f *fabric) slowPeers(grace time.Duration, now time.Time) []types.ProcID {
	f.mu.Lock()
	links := make([]*link, 0, len(f.links))
	for _, l := range f.links {
		links = append(links, l)
	}
	f.mu.Unlock()
	var out []types.ProcID
	for _, l := range links {
		l.mu.Lock()
		if !l.reported && !l.exhaustedSince.IsZero() && l.used >= l.granted &&
			now.Sub(l.exhaustedSince) >= grace {
			l.reported = true
			out = append(out, l.peer)
		}
		l.mu.Unlock()
	}
	return out
}

// QueuedBytes sums the encoded bytes resident in every outbound queue —
// the transport's share of the node's memory budget.
func (f *fabric) QueuedBytes() int64 {
	f.mu.Lock()
	links := make([]*link, 0, len(f.links))
	for _, l := range f.links {
		links = append(links, l)
	}
	f.mu.Unlock()
	var n int64
	for _, l := range links {
		n += l.mb.queuedBytes()
	}
	return n
}

// Send enqueues m toward each destination. The frame is marshaled exactly
// once — every destination queue holds a reference to the same pooled
// encoding, so fan-out costs one marshal instead of len(dests). Delivery is
// supervised per link: unknown or unreachable destinations retry with
// backoff in the background while the bounded queue absorbs (and eventually
// sheds) the backlog — a dead peer can never wedge the caller. A frame that
// cannot be encoded (or exceeds the wire bound) is dropped here, before any
// queue, rather than left to wedge a writer forever.
func (f *fabric) Send(dests []types.ProcID, m types.WireMsg) {
	if len(dests) == 0 {
		return
	}
	fb, err := wire.EncodeFrame(frame{From: f.id, Msg: &m})
	if err != nil {
		return
	}
	f.fanOut(fb, dests)
}

// SendNotify enqueues a membership notification toward one client.
func (f *fabric) SendNotify(dest types.ProcID, n membership.Notification) {
	fb, err := wire.EncodeFrame(frame{From: f.id, Notify: &n})
	if err != nil {
		return
	}
	f.fanOut(fb, []types.ProcID{dest})
}

// SendAttach enqueues an attach-protocol frame toward one peer.
func (f *fabric) SendAttach(dest types.ProcID, a wire.Attach) {
	fb, err := wire.EncodeFrame(frame{From: f.id, Attach: &a})
	if err != nil {
		return
	}
	f.fanOut(fb, []types.ProcID{dest})
}

// fanOut shares one encoded frame across every destination's queue. The
// extra references are taken before the first put so a fast writer draining
// one queue cannot recycle the buffer while it is still being enqueued
// elsewhere. Data frames are charged against each destination's credit
// window here (and refunded wherever a copy dies before the socket).
func (f *fabric) fanOut(fb *wire.FrameBuf, dests []types.ProcID) {
	fb.Retain(int32(len(dests) - 1))
	data := fb.Class() == wire.ClassData
	for _, q := range dests {
		l := f.outbox(q)
		if data {
			l.chargeData()
		}
		if !l.mb.put(fb) {
			if data {
				f.refundData(l)
			}
			fb.Release() // mailbox closed; this destination's reference
		}
	}
}

// linkFor returns (creating if needed) the link record for q without
// starting its writer — inbound chaos accounting needs stats-only access.
func (f *fabric) linkFor(q types.ProcID) *link {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.linkLocked(q)
}

func (f *fabric) linkLocked(q types.ProcID) *link {
	if l, ok := f.links[q]; ok {
		return l
	}
	l := &link{peer: q}
	w := f.windowSize()
	l.granted, l.grantedOut = w, w
	l.mb = newBoundedMailbox(f.cfg.QueueCap, func(fb *wire.FrameBuf) {
		if fb.Class() == wire.ClassData {
			f.refundData(l)
		}
		fb.Release()
	})
	l.mb.classOf = (*wire.FrameBuf).Class
	l.mb.sizeOf = func(fb *wire.FrameBuf) int { return len(fb.Bytes()) }
	if f.closed {
		l.mb.close()
	}
	f.links[q] = l
	return l
}

// outbox returns q's link with its writer engine running: a dedicated
// writeLoop goroutine on the portable engine, or a reactor-owned rlink whose
// mailbox wakes the owning event loop.
func (f *fabric) outbox(q types.ProcID) *link {
	f.mu.Lock()
	defer f.mu.Unlock()
	l := f.linkLocked(q)
	if !l.started && !f.closed {
		l.started = true
		if f.reactor != nil {
			f.reactor.startLink(l)
		} else {
			f.wg.Add(1)
			go f.writeLoop(l)
		}
	}
	return l
}

// sleep pauses for d, returning false if the fabric closed meanwhile.
func (f *fabric) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-f.closing:
		return false
	case <-t.C:
		return true
	}
}

func (f *fabric) isClosing() bool {
	select {
	case <-f.closing:
		return true
	default:
		return false
	}
}

// linkDown reports a broken or undialable link upward (unless the fabric
// itself is shutting down, when breakage is expected).
func (f *fabric) linkDown(peer types.ProcID, err error) {
	if f.isClosing() || f.onDown == nil {
		return
	}
	f.onDown(peer, err)
}

// watchConn closes conn when the fabric shuts down (unblocking any stuck
// syscall) and exits promptly when the connection is retired.
func (f *fabric) watchConn(conn net.Conn, retired <-chan struct{}) {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		select {
		case <-f.closing:
			conn.Close()
		case <-retired:
		}
	}()
}

// connect dials l's peer until a connection (with handshake) is
// established, backing off exponentially with jitter between attempts. It
// returns nils only when the fabric is closing. The peer address is
// re-resolved on every attempt, so directories installed after the first
// Send are picked up.
func (f *fabric) connect(l *link) (net.Conn, *wire.Encoder, chan struct{}) {
	backoff := f.cfg.BackoffBase
	for {
		if f.isClosing() {
			return nil, nil, nil
		}
		if addr := f.addrOf(l.peer); addr != "" {
			l.bump(func(s *LinkStats) { s.Dials++ })
			d := net.Dialer{Timeout: f.cfg.DialTimeout}
			conn, err := d.Dial("tcp", addr)
			if err == nil {
				enc := wire.NewEncoder(f.chaos.wrap(conn))
				enc.ArmWriteDeadline(conn, f.cfg.WriteTimeout)
				if err = enc.Encode(frame{From: f.id}); err == nil {
					l.mu.Lock()
					if l.connected {
						l.stats.Reconnects++
					}
					l.connected = true
					l.mu.Unlock()
					retired := make(chan struct{})
					f.watchConn(conn, retired)
					return conn, enc, retired
				}
				conn.Close()
			}
			l.bump(func(s *LinkStats) { s.DialFailures++ })
			f.linkDown(l.peer, err)
		}
		l.bump(func(s *LinkStats) { s.Retries++ })
		if !f.sleep(jitter(backoff)) {
			return nil, nil, nil
		}
		backoff = min(2*backoff, f.cfg.BackoffMax)
	}
}

// jitter spreads a backoff delay over [d/2, d] so a fleet of links redialing
// the same recovered peer does not thunder in lockstep.
func jitter(d time.Duration) time.Duration {
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// writeLoop supervises one outbound link: it drains the bounded queue in
// batches, applies outbound chaos frame by frame (so per-frame drop, dup,
// and latency verdicts — and their counters — are unchanged by coalescing),
// dials (and redials) the peer with backoff, and writes each surviving batch
// through the encoder with as few flushes as MaxBatchBytes allows. Frames
// not yet known flushed are retained across reconnects, so a transient
// failure loses at most the bytes the kernel had already accepted.
func (f *fabric) writeLoop(l *link) {
	defer f.wg.Done()
	var (
		conn    net.Conn
		enc     *wire.Encoder
		retired chan struct{}
		batch   []*wire.FrameBuf // frames drained from the mailbox this round
		pending []*wire.FrameBuf // chaos survivors awaiting a flushed write
		bufs    [][]byte         // scratch aliasing pending for EncodeBatch
	)
	dropConn := func() {
		if conn != nil {
			conn.Close()
			close(retired)
			conn, enc, retired = nil, nil, nil
		}
	}
	defer dropConn()
	defer func() { // fabric closing: drop the unsent tail
		for _, fb := range pending {
			fb.Release()
		}
	}()
	for {
		if len(pending) == 0 {
			var ok bool
			batch, ok = l.mb.takeBatch(batch[:0], f.cfg.MaxBatchFrames)
			if !ok {
				return
			}
			for i, fb := range batch {
				verdict := f.chaos.outbound(l.peer)
				if verdict.delay > 0 && !f.sleep(verdict.delay) {
					for _, rest := range batch[i:] {
						rest.Release()
					}
					return
				}
				if verdict.drop {
					l.bump(func(s *LinkStats) { s.ChaosDrops++ })
					if fb.Class() == wire.ClassData {
						f.refundData(l) // injected loss must not leak the window
					}
					fb.Release()
					continue
				}
				pending = append(pending, fb)
				if verdict.dup {
					l.bump(func(s *LinkStats) { s.ChaosDups++ })
					fb.Retain(1)
					pending = append(pending, fb)
				}
			}
			if len(pending) == 0 {
				continue
			}
		}
		if conn == nil {
			conn, enc, retired = f.connect(l)
			if conn == nil {
				return // fabric closing
			}
		}
		bufs = bufs[:0]
		for _, fb := range pending {
			bufs = append(bufs, fb.Bytes())
		}
		sent, flushes, err := enc.EncodeBatch(bufs, f.cfg.MaxBatchBytes)
		if sent > 0 || flushes > 0 {
			l.bump(func(s *LinkStats) {
				s.FramesSent += int64(sent)
				s.Flushes += int64(flushes)
			})
		}
		for _, fb := range pending[:sent] {
			fb.Release()
		}
		pending = append(pending[:0], pending[sent:]...)
		if sent > 0 {
			f.flowBroadcast() // queue drained: budget waiters may proceed
		}
		if err != nil {
			l.bump(func(s *LinkStats) { s.WriteErrors++ })
			dropConn()
			f.linkDown(l.peer, err)
			// pending retained; resent after reconnect
		}
	}
}

func (f *fabric) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-f.closing:
				return
			default:
				continue
			}
		}
		f.wg.Add(1)
		if f.reactor != nil {
			// The reactor takes inbound connections after a short transient
			// goroutine has read the handshake; established traffic is then
			// driven entirely by the shared event loops.
			go f.reactor.acceptInbound(conn)
		} else {
			go f.readLoop(conn)
		}
	}
}

func (f *fabric) readLoop(conn net.Conn) {
	defer f.wg.Done()
	defer conn.Close()
	retired := make(chan struct{})
	defer close(retired)
	f.watchConn(conn, retired)
	dec := wire.NewDecoder(conn)
	dec.UsePool(f.pool)
	dec.ArmReadDeadline(conn, f.cfg.ReadIdleTimeout)
	var hello frame
	if err := dec.Decode(&hello); err != nil {
		return
	}
	from := hello.From
	for {
		var fr frame
		body, err := dec.DecodeInto(&fr)
		if err != nil {
			// A broken inbound stream is link-failure evidence too: the
			// peer crashed, closed, or went idle past the read deadline.
			f.linkDown(from, err)
			return
		}
		if f.isClosing() {
			if body != nil {
				body.Release()
			}
			return
		}
		if f.chaos.inboundBlocked(from) {
			f.linkFor(from).bump(func(s *LinkStats) { s.ChaosDrops++ })
			// Chaos discards the frame above the flow-control layer, so a
			// blocked data frame still counts as consumed: simulated loss
			// must not starve the sender's window forever.
			if fr.Msg != nil && fr.Msg.Kind == types.KindApp {
				f.consumedData(from)
			}
			if body != nil {
				body.Release()
			}
			continue
		}
		if fr.Credit != nil {
			f.handleCredit(from, int64(fr.Credit.Grant))
			if body != nil {
				body.Release()
			}
			continue
		}
		f.deliver(from, fr, body)
	}
}

// Close shuts the fabric down: the listener stops, outboxes close, and all
// goroutines are joined.
func (f *fabric) Close() {
	f.once.Do(func() {
		close(f.closing)
		f.ln.Close()
		f.mu.Lock()
		f.closed = true
		for _, l := range f.links {
			l.mb.close()
		}
		f.mu.Unlock()
		f.flowBroadcast() // release senders parked on credit or budget
		if f.reactor != nil {
			f.reactor.shutdown() // wake every event loop so it can exit
		}
	})
	f.wg.Wait()
}
