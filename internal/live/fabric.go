package live

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"vsgm/internal/membership"
	"vsgm/internal/types"
	"vsgm/internal/wire"
)

// TransportConfig tunes the supervised transport underneath a live node.
// The zero value selects production defaults; tests shrink the timeouts to
// keep fault-injection runs fast.
type TransportConfig struct {
	// DialTimeout bounds one connection attempt; a dead peer can never
	// block connection setup past it. Default 3s.
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write, so a peer that stops draining
	// its socket stalls a sender for at most this long before the link is
	// torn down and redialed. Default 10s.
	WriteTimeout time.Duration
	// ReadIdleTimeout, when positive, severs an inbound connection that has
	// been silent for the duration. Off by default: client links are
	// legitimately idle between multicasts.
	ReadIdleTimeout time.Duration
	// BackoffBase is the first reconnection delay; each failed attempt
	// doubles it (with jitter) up to BackoffMax. Defaults 50ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// QueueCap bounds each per-peer outbound queue; when a link is down
	// long enough to fill it, the oldest frames are evicted (and counted)
	// so senders never block. Default 4096.
	QueueCap int
	// MaxBatchFrames bounds how many queued frames the link writer drains
	// in one batch: a burst of k<=MaxBatchFrames frames costs one flush
	// instead of k. Default 64.
	MaxBatchFrames int
	// MaxBatchBytes caps the bytes coalesced into a single flush, so a
	// batch of large frames cannot defer the write (and the armed write
	// deadline) arbitrarily. Default 128 KiB.
	MaxBatchBytes int
}

func (c TransportConfig) withDefaults() TransportConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 3 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4096
	}
	if c.MaxBatchFrames <= 0 {
		c.MaxBatchFrames = 64
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 128 << 10
	}
	return c
}

// LinkStats are the per-peer transport counters a fabric accumulates; they
// make degradation observable (tests assert on them, cmd/vsgm-live prints
// them).
type LinkStats struct {
	// Dials counts connection attempts; DialFailures the ones that errored.
	Dials        int64
	DialFailures int64
	// Reconnects counts successful connections after the first.
	Reconnects int64
	// Retries counts backoff sleeps taken while the link was down.
	Retries int64
	// FramesSent counts frames written to the socket.
	FramesSent int64
	// Flushes counts socket flushes; the coalescing writer keeps it well
	// below FramesSent under bursts (one flush per drained batch).
	Flushes int64
	// WriteErrors counts frame writes that failed (each tears the
	// connection down for a supervised redial).
	WriteErrors int64
	// QueueDrops counts frames evicted from the bounded outbound queue.
	QueueDrops int64
	// ChaosDrops / ChaosDups count frames dropped or duplicated by the
	// chaos controller (including one-way partition drops).
	ChaosDrops int64
	ChaosDups  int64
}

// Drops is the total of all dropped frames on the link.
func (s LinkStats) Drops() int64 { return s.QueueDrops + s.ChaosDrops }

// mailbox is a FIFO queue: outbound sends and application events enqueue
// here so the automaton's step loop never blocks on a slow consumer, and a
// single goroutine drains in order (one entry at a time with take, or in
// coalesced batches with takeBatch). With a positive cap the queue is
// bounded: a full queue evicts its oldest entry (counted) instead of
// blocking the producer. onDrop, when set, observes every entry the mailbox
// discards — evictions and anything still queued at close — so pooled
// entries can be released; such a mailbox drops its backlog at close instead
// of handing it out.
type mailbox[T any] struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []T // live entries are queue[head:]; the prefix is zeroed slack
	head    int
	cap     int
	onDrop  func(T)
	evicted int64
	closed  bool
}

// compact reclaims the consumed prefix so the backing array is reused
// instead of reallocated: a full reset when the queue drains, a copy-down
// when an append would otherwise grow the array past dead slack.
func (m *mailbox[T]) compact() {
	if m.head == len(m.queue) {
		m.queue = m.queue[:0]
		m.head = 0
		return
	}
	if m.head > 0 && len(m.queue) == cap(m.queue) {
		n := copy(m.queue, m.queue[m.head:])
		var zero T
		for i := n; i < len(m.queue); i++ {
			m.queue[i] = zero
		}
		m.queue = m.queue[:n]
		m.head = 0
	}
}

func newMailbox[T any]() *mailbox[T] {
	m := &mailbox[T]{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func newBoundedMailbox[T any](cap int, onDrop func(T)) *mailbox[T] {
	m := newMailbox[T]()
	m.cap = cap
	m.onDrop = onDrop
	return m
}

// put enqueues v; it reports false if the mailbox is closed (the caller
// keeps ownership of v). A bounded mailbox at capacity evicts its oldest
// entry to make room.
func (m *mailbox[T]) put(v T) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	if m.cap > 0 && len(m.queue)-m.head >= m.cap {
		old := m.queue[m.head]
		var zero T
		m.queue[m.head] = zero
		m.head++
		m.evicted++
		if m.onDrop != nil {
			m.onDrop(old)
		}
	}
	m.compact()
	m.queue = append(m.queue, v)
	m.cond.Signal()
	return true
}

// take blocks until a value is available or the mailbox closes.
func (m *mailbox[T]) take() (T, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.head == len(m.queue) && !m.closed {
		m.cond.Wait()
	}
	if m.head == len(m.queue) {
		var zero T
		return zero, false
	}
	v := m.queue[m.head]
	var zero T
	m.queue[m.head] = zero
	m.head++
	m.compact()
	return v, true
}

// takeBatch blocks until at least one entry is available (or the mailbox
// closes empty), then drains up to max entries into dst in FIFO order. One
// takeBatch per burst is what turns k queued frames into a single flush.
func (m *mailbox[T]) takeBatch(dst []T, max int) ([]T, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.head == len(m.queue) && !m.closed {
		m.cond.Wait()
	}
	n := len(m.queue) - m.head
	if n == 0 {
		return dst, false
	}
	if max > 0 && n > max {
		n = max
	}
	dst = append(dst, m.queue[m.head:m.head+n]...)
	var zero T
	for i := 0; i < n; i++ {
		m.queue[m.head+i] = zero
	}
	m.head += n
	m.compact()
	return dst, true
}

func (m *mailbox[T]) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	if m.onDrop != nil {
		for i := m.head; i < len(m.queue); i++ {
			m.onDrop(m.queue[i])
			var zero T
			m.queue[i] = zero
		}
		m.queue = nil
		m.head = 0
	}
	m.cond.Broadcast()
}

func (m *mailbox[T]) evictions() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evicted
}

// link is the supervised state for one destination: its bounded outbound
// queue of pre-encoded frames plus counters. The writer goroutine starts on
// first use and owns the dial/backoff/reconnect cycle.
type link struct {
	peer    types.ProcID
	mb      *mailbox[*wire.FrameBuf]
	started bool

	mu        sync.Mutex
	stats     LinkStats
	connected bool // ever connected (distinguishes connects from reconnects)
}

func (l *link) bump(f func(*LinkStats)) {
	l.mu.Lock()
	f(&l.stats)
	l.mu.Unlock()
}

func (l *link) snapshot() LinkStats {
	l.mu.Lock()
	s := l.stats
	l.mu.Unlock()
	s.QueueDrops += l.mb.evictions()
	return s
}

// fabric owns a process's listener, its supervised outbound links (one per
// destination, dialed lazily with timeout/backoff/reconnect), and the
// inbound reader goroutines. Incoming frames are handed to the receive
// callback in per-connection order. Link failures are reported through
// onDown so the layer above can translate them into detector suspicions.
type fabric struct {
	id      types.ProcID
	cfg     TransportConfig
	ln      net.Listener
	receive func(from types.ProcID, f frame)
	onDown  func(peer types.ProcID, err error)
	chaos   *Chaos

	mu     sync.Mutex
	peers  map[types.ProcID]string
	links  map[types.ProcID]*link
	closed bool

	wg      sync.WaitGroup
	closing chan struct{}
	once    sync.Once
}

// newFabric starts listening on addr (use "127.0.0.1:0" for an ephemeral
// port) and begins accepting inbound connections. onDown (optional) is
// invoked from transport goroutines whenever an established link breaks or
// a dial fails; it must not block.
func newFabric(id types.ProcID, addr string, cfg TransportConfig,
	receive func(types.ProcID, frame), onDown func(types.ProcID, error)) (*fabric, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", addr, err)
	}
	f := &fabric{
		id:      id,
		cfg:     cfg.withDefaults(),
		ln:      ln,
		receive: receive,
		onDown:  onDown,
		chaos:   newChaos(),
		peers:   make(map[types.ProcID]string),
		links:   make(map[types.ProcID]*link),
		closing: make(chan struct{}),
	}
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

// Addr returns the fabric's listen address.
func (f *fabric) Addr() string { return f.ln.Addr().String() }

// Chaos returns the fabric's fault-injection controller.
func (f *fabric) Chaos() *Chaos { return f.chaos }

// SetPeers installs (or extends) the address directory. A link whose peer
// address arrives late is picked up on its next reconnection attempt.
func (f *fabric) SetPeers(peers map[types.ProcID]string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for p, addr := range peers {
		f.peers[p] = addr
	}
}

func (f *fabric) addrOf(q types.ProcID) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.peers[q]
}

// Stats snapshots the per-link transport counters, keyed by peer.
func (f *fabric) Stats() map[types.ProcID]LinkStats {
	f.mu.Lock()
	links := make([]*link, 0, len(f.links))
	for _, l := range f.links {
		links = append(links, l)
	}
	f.mu.Unlock()
	out := make(map[types.ProcID]LinkStats, len(links))
	for _, l := range links {
		out[l.peer] = l.snapshot()
	}
	return out
}

// Send enqueues m toward each destination. The frame is marshaled exactly
// once — every destination queue holds a reference to the same pooled
// encoding, so fan-out costs one marshal instead of len(dests). Delivery is
// supervised per link: unknown or unreachable destinations retry with
// backoff in the background while the bounded queue absorbs (and eventually
// sheds) the backlog — a dead peer can never wedge the caller. A frame that
// cannot be encoded (or exceeds the wire bound) is dropped here, before any
// queue, rather than left to wedge a writer forever.
func (f *fabric) Send(dests []types.ProcID, m types.WireMsg) {
	if len(dests) == 0 {
		return
	}
	fb, err := wire.EncodeFrame(frame{From: f.id, Msg: &m})
	if err != nil {
		return
	}
	f.fanOut(fb, dests)
}

// SendNotify enqueues a membership notification toward one client.
func (f *fabric) SendNotify(dest types.ProcID, n membership.Notification) {
	fb, err := wire.EncodeFrame(frame{From: f.id, Notify: &n})
	if err != nil {
		return
	}
	f.fanOut(fb, []types.ProcID{dest})
}

// SendAttach enqueues an attach-protocol frame toward one peer.
func (f *fabric) SendAttach(dest types.ProcID, a wire.Attach) {
	fb, err := wire.EncodeFrame(frame{From: f.id, Attach: &a})
	if err != nil {
		return
	}
	f.fanOut(fb, []types.ProcID{dest})
}

// fanOut shares one encoded frame across every destination's queue. The
// extra references are taken before the first put so a fast writer draining
// one queue cannot recycle the buffer while it is still being enqueued
// elsewhere.
func (f *fabric) fanOut(fb *wire.FrameBuf, dests []types.ProcID) {
	fb.Retain(int32(len(dests) - 1))
	for _, q := range dests {
		if !f.outbox(q).put(fb) {
			fb.Release() // mailbox closed; this destination's reference
		}
	}
}

// linkFor returns (creating if needed) the link record for q without
// starting its writer — inbound chaos accounting needs stats-only access.
func (f *fabric) linkFor(q types.ProcID) *link {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.linkLocked(q)
}

func (f *fabric) linkLocked(q types.ProcID) *link {
	if l, ok := f.links[q]; ok {
		return l
	}
	l := &link{peer: q}
	l.mb = newBoundedMailbox(f.cfg.QueueCap, (*wire.FrameBuf).Release)
	if f.closed {
		l.mb.close()
	}
	f.links[q] = l
	return l
}

func (f *fabric) outbox(q types.ProcID) *mailbox[*wire.FrameBuf] {
	f.mu.Lock()
	defer f.mu.Unlock()
	l := f.linkLocked(q)
	if !l.started && !f.closed {
		l.started = true
		f.wg.Add(1)
		go f.writeLoop(l)
	}
	return l.mb
}

// sleep pauses for d, returning false if the fabric closed meanwhile.
func (f *fabric) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-f.closing:
		return false
	case <-t.C:
		return true
	}
}

func (f *fabric) isClosing() bool {
	select {
	case <-f.closing:
		return true
	default:
		return false
	}
}

// linkDown reports a broken or undialable link upward (unless the fabric
// itself is shutting down, when breakage is expected).
func (f *fabric) linkDown(peer types.ProcID, err error) {
	if f.isClosing() || f.onDown == nil {
		return
	}
	f.onDown(peer, err)
}

// watchConn closes conn when the fabric shuts down (unblocking any stuck
// syscall) and exits promptly when the connection is retired.
func (f *fabric) watchConn(conn net.Conn, retired <-chan struct{}) {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		select {
		case <-f.closing:
			conn.Close()
		case <-retired:
		}
	}()
}

// connect dials l's peer until a connection (with handshake) is
// established, backing off exponentially with jitter between attempts. It
// returns nils only when the fabric is closing. The peer address is
// re-resolved on every attempt, so directories installed after the first
// Send are picked up.
func (f *fabric) connect(l *link) (net.Conn, *wire.Encoder, chan struct{}) {
	backoff := f.cfg.BackoffBase
	for {
		if f.isClosing() {
			return nil, nil, nil
		}
		if addr := f.addrOf(l.peer); addr != "" {
			l.bump(func(s *LinkStats) { s.Dials++ })
			d := net.Dialer{Timeout: f.cfg.DialTimeout}
			conn, err := d.Dial("tcp", addr)
			if err == nil {
				enc := wire.NewEncoder(f.chaos.wrap(conn))
				enc.ArmWriteDeadline(conn, f.cfg.WriteTimeout)
				if err = enc.Encode(frame{From: f.id}); err == nil {
					l.mu.Lock()
					if l.connected {
						l.stats.Reconnects++
					}
					l.connected = true
					l.mu.Unlock()
					retired := make(chan struct{})
					f.watchConn(conn, retired)
					return conn, enc, retired
				}
				conn.Close()
			}
			l.bump(func(s *LinkStats) { s.DialFailures++ })
			f.linkDown(l.peer, err)
		}
		l.bump(func(s *LinkStats) { s.Retries++ })
		if !f.sleep(jitter(backoff)) {
			return nil, nil, nil
		}
		backoff = min(2*backoff, f.cfg.BackoffMax)
	}
}

// jitter spreads a backoff delay over [d/2, d] so a fleet of links redialing
// the same recovered peer does not thunder in lockstep.
func jitter(d time.Duration) time.Duration {
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// writeLoop supervises one outbound link: it drains the bounded queue in
// batches, applies outbound chaos frame by frame (so per-frame drop, dup,
// and latency verdicts — and their counters — are unchanged by coalescing),
// dials (and redials) the peer with backoff, and writes each surviving batch
// through the encoder with as few flushes as MaxBatchBytes allows. Frames
// not yet known flushed are retained across reconnects, so a transient
// failure loses at most the bytes the kernel had already accepted.
func (f *fabric) writeLoop(l *link) {
	defer f.wg.Done()
	var (
		conn    net.Conn
		enc     *wire.Encoder
		retired chan struct{}
		batch   []*wire.FrameBuf // frames drained from the mailbox this round
		pending []*wire.FrameBuf // chaos survivors awaiting a flushed write
		bufs    [][]byte         // scratch aliasing pending for EncodeBatch
	)
	dropConn := func() {
		if conn != nil {
			conn.Close()
			close(retired)
			conn, enc, retired = nil, nil, nil
		}
	}
	defer dropConn()
	defer func() { // fabric closing: drop the unsent tail
		for _, fb := range pending {
			fb.Release()
		}
	}()
	for {
		if len(pending) == 0 {
			var ok bool
			batch, ok = l.mb.takeBatch(batch[:0], f.cfg.MaxBatchFrames)
			if !ok {
				return
			}
			for i, fb := range batch {
				verdict := f.chaos.outbound(l.peer)
				if verdict.delay > 0 && !f.sleep(verdict.delay) {
					for _, rest := range batch[i:] {
						rest.Release()
					}
					return
				}
				if verdict.drop {
					l.bump(func(s *LinkStats) { s.ChaosDrops++ })
					fb.Release()
					continue
				}
				pending = append(pending, fb)
				if verdict.dup {
					l.bump(func(s *LinkStats) { s.ChaosDups++ })
					fb.Retain(1)
					pending = append(pending, fb)
				}
			}
			if len(pending) == 0 {
				continue
			}
		}
		if conn == nil {
			conn, enc, retired = f.connect(l)
			if conn == nil {
				return // fabric closing
			}
		}
		bufs = bufs[:0]
		for _, fb := range pending {
			bufs = append(bufs, fb.Bytes())
		}
		sent, flushes, err := enc.EncodeBatch(bufs, f.cfg.MaxBatchBytes)
		if sent > 0 || flushes > 0 {
			l.bump(func(s *LinkStats) {
				s.FramesSent += int64(sent)
				s.Flushes += int64(flushes)
			})
		}
		for _, fb := range pending[:sent] {
			fb.Release()
		}
		pending = append(pending[:0], pending[sent:]...)
		if err != nil {
			l.bump(func(s *LinkStats) { s.WriteErrors++ })
			dropConn()
			f.linkDown(l.peer, err)
			// pending retained; resent after reconnect
		}
	}
}

func (f *fabric) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-f.closing:
				return
			default:
				continue
			}
		}
		f.wg.Add(1)
		go f.readLoop(conn)
	}
}

func (f *fabric) readLoop(conn net.Conn) {
	defer f.wg.Done()
	defer conn.Close()
	retired := make(chan struct{})
	defer close(retired)
	f.watchConn(conn, retired)
	dec := wire.NewDecoder(conn)
	dec.ArmReadDeadline(conn, f.cfg.ReadIdleTimeout)
	var hello frame
	if err := dec.Decode(&hello); err != nil {
		return
	}
	from := hello.From
	for {
		var fr frame
		if err := dec.Decode(&fr); err != nil {
			// A broken inbound stream is link-failure evidence too: the
			// peer crashed, closed, or went idle past the read deadline.
			f.linkDown(from, err)
			return
		}
		if f.isClosing() {
			return
		}
		if f.chaos.inboundBlocked(from) {
			f.linkFor(from).bump(func(s *LinkStats) { s.ChaosDrops++ })
			continue
		}
		f.receive(from, fr)
	}
}

// Close shuts the fabric down: the listener stops, outboxes close, and all
// goroutines are joined.
func (f *fabric) Close() {
	f.once.Do(func() {
		close(f.closing)
		f.ln.Close()
		f.mu.Lock()
		f.closed = true
		for _, l := range f.links {
			l.mb.close()
		}
		f.mu.Unlock()
	})
	f.wg.Wait()
}
