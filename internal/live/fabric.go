package live

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"vsgm/internal/types"
	"vsgm/internal/wire"
)

// mailbox is an unbounded FIFO queue: outbound sends and application events
// enqueue here so the automaton's step loop never blocks on a slow consumer,
// and a single goroutine drains in order.
type mailbox[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []T
	closed bool
}

func newMailbox[T any]() *mailbox[T] {
	m := &mailbox[T]{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put enqueues v; it reports false if the mailbox is closed.
func (m *mailbox[T]) put(v T) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.queue = append(m.queue, v)
	m.cond.Signal()
	return true
}

// take blocks until a value is available or the mailbox closes.
func (m *mailbox[T]) take() (T, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		var zero T
		return zero, false
	}
	v := m.queue[0]
	m.queue = m.queue[1:]
	return v, true
}

func (m *mailbox[T]) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// fabric owns a process's listener, its outbound connections (one per
// destination, dialed lazily), and the inbound reader goroutines. Incoming
// frames are handed to the receive callback in per-connection order.
type fabric struct {
	id      types.ProcID
	ln      net.Listener
	receive func(from types.ProcID, f frame)

	mu    sync.Mutex
	peers map[types.ProcID]string
	outs  map[types.ProcID]*mailbox[frame]

	wg      sync.WaitGroup
	closing chan struct{}
	once    sync.Once
}

// newFabric starts listening on addr (use "127.0.0.1:0" for an ephemeral
// port) and begins accepting inbound connections.
func newFabric(id types.ProcID, addr string, receive func(types.ProcID, frame)) (*fabric, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", addr, err)
	}
	f := &fabric{
		id:      id,
		ln:      ln,
		receive: receive,
		peers:   make(map[types.ProcID]string),
		outs:    make(map[types.ProcID]*mailbox[frame]),
		closing: make(chan struct{}),
	}
	f.wg.Add(1)
	go f.acceptLoop()
	return f, nil
}

// Addr returns the fabric's listen address.
func (f *fabric) Addr() string { return f.ln.Addr().String() }

// SetPeers installs (or extends) the address directory.
func (f *fabric) SetPeers(peers map[types.ProcID]string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for p, addr := range peers {
		f.peers[p] = addr
	}
}

// Send enqueues m toward each destination, dialing lazily. Unknown or
// unreachable destinations are dropped silently — exactly the substrate's
// prerogative for processes outside the reliable set; the GCS layers above
// are built to tolerate and recover from it.
func (f *fabric) Send(dests []types.ProcID, m types.WireMsg) {
	cp := m
	fr := frame{From: f.id, Msg: &cp}
	for _, q := range dests {
		f.outbox(q).put(fr)
	}
}

// SendNotify enqueues a membership notification toward one client.
func (f *fabric) SendNotify(dest types.ProcID, n frame) {
	n.From = f.id
	f.outbox(dest).put(n)
}

func (f *fabric) outbox(q types.ProcID) *mailbox[frame] {
	f.mu.Lock()
	defer f.mu.Unlock()
	if mb, ok := f.outs[q]; ok {
		return mb
	}
	mb := newMailbox[frame]()
	f.outs[q] = mb
	addr := f.peers[q]
	f.wg.Add(1)
	go f.writeLoop(addr, mb)
	return mb
}

// writeLoop dials the destination and streams the mailbox into it.
func (f *fabric) writeLoop(addr string, mb *mailbox[frame]) {
	defer f.wg.Done()
	if addr == "" {
		// Unknown peer: drain and drop.
		for {
			if _, ok := mb.take(); !ok {
				return
			}
		}
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		for {
			if _, ok := mb.take(); !ok {
				return
			}
		}
	}
	defer conn.Close()
	go func() {
		<-f.closing
		conn.Close() // unblock a writer stuck in a syscall
	}()
	enc := wire.NewEncoder(conn)
	if err := enc.Encode(frame{From: f.id}); err != nil {
		return
	}
	for {
		fr, ok := mb.take()
		if !ok {
			return
		}
		if err := enc.Encode(fr); err != nil {
			return // connection broken; peer is gone
		}
	}
}

func (f *fabric) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-f.closing:
				return
			default:
				continue
			}
		}
		f.wg.Add(1)
		go f.readLoop(conn)
	}
}

func (f *fabric) readLoop(conn net.Conn) {
	defer f.wg.Done()
	defer conn.Close()
	go func() {
		<-f.closing
		conn.Close()
	}()
	dec := wire.NewDecoder(conn)
	var hello frame
	if err := dec.Decode(&hello); err != nil {
		return
	}
	from := hello.From
	for {
		var fr frame
		if err := dec.Decode(&fr); err != nil {
			return
		}
		select {
		case <-f.closing:
			return
		default:
		}
		f.receive(from, fr)
	}
}

// Close shuts the fabric down: the listener stops, outboxes close, and all
// goroutines are joined.
func (f *fabric) Close() {
	f.once.Do(func() {
		close(f.closing)
		f.ln.Close()
		f.mu.Lock()
		for _, mb := range f.outs {
			mb.close()
		}
		f.mu.Unlock()
	})
	f.wg.Wait()
}
