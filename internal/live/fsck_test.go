package live

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vsgm/internal/types"
	"vsgm/internal/wire"
)

// fsckFixture writes a WAL of n records into dir (via a real store, so the
// framing is exactly what production writes) and returns the records plus
// each record's byte offset in wal.log.
func fsckFixture(t *testing.T, dir string, n int) ([]wire.WALRecord, []int) {
	t.Helper()
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]wire.WALRecord, n)
	for i := range recs {
		recs[i] = wire.WALRecord{
			Client: types.ProcID(string(rune('a' + i))),
			CID:    types.StartChangeID(i)<<32 + types.StartChangeID(i) + 1,
			Vid:    types.ViewID(i + 1),
			Epoch:  int64(i),
		}
		if err := store.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	offsets := wire.ScanWAL(b).Offsets
	if len(offsets) != n {
		t.Fatalf("fixture scan found %d records, want %d", len(offsets), n)
	}
	return recs, offsets
}

// TestFsckCorruptionMatrix drives the repair engine through every damage
// shape the satellite checklist names — flipped byte, truncated tail,
// garbage prefix, duplicated region, empty file — and asserts the recovered
// state after a clean re-open is a superset of every record outside the
// damaged span.
func TestFsckCorruptionMatrix(t *testing.T) {
	const n = 5
	cases := []struct {
		name string
		// corrupt mutates the WAL bytes and returns the indices of records
		// that must survive the repair.
		corrupt func(b []byte, off []int) ([]byte, []int)
		damaged bool
	}{
		{
			name: "flipped byte mid-record",
			corrupt: func(b []byte, off []int) ([]byte, []int) {
				b[off[2]+9] ^= 0x80 // inside record 2's body
				return b, []int{0, 1, 3, 4}
			},
			damaged: true,
		},
		{
			name: "truncated tail",
			corrupt: func(b []byte, off []int) ([]byte, []int) {
				return b[:off[4]+3], []int{0, 1, 2, 3}
			},
			damaged: true,
		},
		{
			name: "garbage prefix",
			corrupt: func(b []byte, off []int) ([]byte, []int) {
				return append(bytes.Repeat([]byte{0xEE}, 17), b...), []int{0, 1, 2, 3, 4}
			},
			damaged: true,
		},
		{
			name: "duplicated region",
			corrupt: func(b []byte, off []int) ([]byte, []int) {
				// Splice a copy of records 1-2 over the middle of record 3:
				// the duplicates decode (harmless under max-merge), record 3's
				// torn remainder is damage.
				dup := append([]byte(nil), b[off[1]:off[3]]...)
				out := append(append(append([]byte(nil), b[:off[3]+5]...), dup...), b[off[4]:]...)
				return out, []int{0, 1, 2, 4}
			},
			damaged: true,
		},
		{
			name: "empty file",
			corrupt: func(b []byte, off []int) ([]byte, []int) {
				return nil, nil
			},
			damaged: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			recs, offsets := fsckFixture(t, dir, n)
			walPath := filepath.Join(dir, walFileName)
			b, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			mut, survivors := tc.corrupt(b, offsets)
			if err := os.WriteFile(walPath, mut, 0o644); err != nil {
				t.Fatal(err)
			}

			// Dry-run sees the damage and changes nothing.
			dry, err := Fsck(dir, FsckDryRun)
			if err != nil {
				t.Fatal(err)
			}
			if dry.Damaged() != tc.damaged {
				t.Fatalf("dry-run Damaged() = %v, want %v\n%s", dry.Damaged(), tc.damaged, dry)
			}
			if after, _ := os.ReadFile(walPath); !bytes.Equal(after, mut) {
				t.Fatal("dry-run modified the WAL")
			}

			// Re-open: NewFileStore repairs, Load serves the survivors.
			store, err := NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			rep := store.RepairReport()
			if rep == nil || rep.Damaged() != tc.damaged {
				t.Fatalf("repair report = %v, want damaged=%v", rep, tc.damaged)
			}
			state, err := store.Load()
			if err != nil {
				t.Fatal(err)
			}
			for _, i := range survivors {
				want := recs[i]
				got, ok := state[want.Client]
				if !ok {
					t.Fatalf("record %d (%s) lost outside the damaged span; state=%v", i, want.Client, state)
				}
				if got.CID < want.CID || got.Vid < want.Vid || got.Epoch < want.Epoch {
					t.Fatalf("record %d regressed: got %+v, want at least %+v", i, got, want)
				}
			}
			if tc.damaged {
				q, err := os.ReadFile(filepath.Join(dir, quarantineFileName))
				if err != nil {
					t.Fatalf("damage not quarantined: %v", err)
				}
				if !strings.Contains(string(q), "-- vsgm quarantine file="+walFileName) {
					t.Fatalf("quarantine missing header:\n%s", q)
				}
			}

			// The repaired file is clean: a second fsck finds nothing.
			again, err := Fsck(dir, FsckDryRun)
			if err != nil {
				t.Fatal(err)
			}
			if again.Damaged() {
				t.Fatalf("repair did not converge:\n%s", again)
			}
		})
	}
}

// TestFsckMigratesV1Records pins the migration path: a WAL written in the
// legacy unchecksummed v1 format is rewritten as v2 on open, with every
// record preserved.
func TestFsckMigratesV1Records(t *testing.T) {
	dir := t.TempDir()
	var log []byte
	recs := []wire.WALRecord{
		{Client: "a", CID: 5, Vid: 2, Epoch: 1},
		{Client: "b", CID: 1<<32 + 3, Vid: 9, Epoch: 1},
	}
	for _, rec := range recs {
		var err error
		if log, err = wire.AppendWALRecordV1(log, rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walFileName), log, 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if rep := store.RepairReport(); rep.V1Records() != len(recs) {
		t.Fatalf("report counted %d v1 records, want %d\n%s", rep.V1Records(), len(recs), rep)
	}
	b, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	scan := wire.ScanWAL(b)
	if scan.V1Records != 0 || len(scan.Damaged) != 0 || len(scan.Records) != len(recs) {
		t.Fatalf("migrated WAL not pure v2: v1=%d damaged=%d records=%d", scan.V1Records, len(scan.Damaged), len(scan.Records))
	}
	state, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		got := state[rec.Client]
		if got.CID != rec.CID || got.Vid != rec.Vid || got.Epoch != rec.Epoch {
			t.Fatalf("record %s mangled by migration: %+v vs %+v", rec.Client, got, rec)
		}
	}
}

// TestFsckSweepsStaleSnapshotTemps pins the temp-leak repair: snapshot temp
// files stranded by a crash between CreateTemp and rename are removed when
// the store re-opens, and counted in the report.
func TestFsckSweepsStaleSnapshotTemps(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{snapFileName + ".tmp-42", snapFileName + ".tmp-43", walFileName + ".fsck-7"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if swept := store.RepairReport().TempsSwept; swept != 3 {
		t.Fatalf("swept %d stale temps, want 3", swept)
	}
	left, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if err != nil || len(left) != 0 {
		t.Fatalf("stale temps survived the sweep: %v (err %v)", left, err)
	}
}

// TestFileStoreFsyncPolicies exercises the durability knob: every policy
// must keep Append working and the data durable across a reopen (the
// policies differ in crash semantics this test cannot observe, so it pins
// the API contract and the data path).
func TestFileStoreFsyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy FsyncPolicy
		every  int
	}{
		{"never", FsyncNever, 0},
		{"every-3", FsyncEveryN, 3},
		{"every-clamped", FsyncEveryN, -5},
		{"always", FsyncAlways, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			store, err := NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			store.SetFsyncPolicy(tc.policy, tc.every)
			for i := 0; i < 7; i++ {
				if err := store.Append(wire.WALRecord{Client: "c", CID: types.StartChangeID(i + 1)}); err != nil {
					t.Fatalf("append %d under %s: %v", i, tc.name, err)
				}
			}
			if err := store.Close(); err != nil {
				t.Fatal(err)
			}
			reopened, err := NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer reopened.Close()
			state, err := reopened.Load()
			if err != nil {
				t.Fatal(err)
			}
			if state["c"].CID != 7 {
				t.Fatalf("policy %s lost appends: %+v", tc.name, state["c"])
			}
		})
	}
}
