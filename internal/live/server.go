package live

import (
	"sync"
	"time"

	"vsgm/internal/membership"
	"vsgm/internal/obs"
	"vsgm/internal/types"
	"vsgm/internal/wire"
	"vsgm/internal/wire/pool"
)

// ServerConfig parameterizes a live membership server.
type ServerConfig struct {
	// ID is the server's identifier; required.
	ID types.ProcID
	// Addr is the TCP listen address ("127.0.0.1:0" for ephemeral).
	Addr string
	// Servers is the static set of all membership servers (including ID).
	Servers types.ProcSet
	// Store durably backs the per-client identifier state (cid, view id,
	// attach epoch): every mutation is appended to it and its contents are
	// replayed on construction, so a restarted server resumes above
	// everything it issued before the crash. Nil runs without durability.
	Store Store
	// SnapshotEvery compacts the WAL into a snapshot after this many
	// appends. 0 selects the default (64); negative disables compaction.
	SnapshotEvery int
	// Watchdog is the stall-detection interval: an attempt still incomplete
	// across two consecutive ticks gets its proposal re-sent, repairing
	// proposal frames lost to faults. 0 selects the default (500ms);
	// negative disables the watchdog.
	Watchdog time.Duration
	// Transport tunes the supervised transport (timeouts, backoff, queue
	// bounds); the zero value selects production defaults.
	Transport TransportConfig
	// SlowBan is how long a client evicted for slow consumption is barred
	// from re-attaching, so a laggard cannot flap the view by immediately
	// re-registering. 0 selects the default (30s); negative disables the
	// ban (suspects are still evicted).
	SlowBan time.Duration
	// AttachLease is the server-side failure detector for clients: an
	// in-band registration whose keepalives stop for a full lease is
	// presumed dead and deregistered (a dead member would otherwise stall
	// every future view's sync round forever). A live client that was
	// merely cut off re-attaches on its next keepalive and resumes its
	// identifiers from the retained record. Leases are swept on the
	// watchdog tick, so a disabled watchdog disables them too. Clients
	// registered out of band (AddClient) hold no lease and are never
	// swept. 0 selects the default (10s); negative disables leases.
	AttachLease time.Duration
	// WALFsync selects when WAL appends are flushed to stable storage, for
	// stores that support a policy (FileStore). The zero value keeps the
	// historical OS-buffered behavior; see FsyncPolicy.
	WALFsync FsyncPolicy
	// WALFsyncEvery is the N of FsyncEveryN (ignored by other policies);
	// values < 1 are treated as 1.
	WALFsyncEvery int
	// Detector tunes the heartbeat failure detector StartHeartbeats runs:
	// the accrual window size, the suspect/restore hysteresis thresholds,
	// the flap-damping quarantine base/cap, and the gray grace. The zero
	// value selects the adaptive engine with its defaults; set
	// Detector.Mode to membership.DetectorFixed for the legacy binary
	// last-seen timeout.
	Detector membership.DetectorConfig
	// Obs, when set, is the metrics registry the server publishes into
	// (counters labeled with the server id, a scrape-time collector for the
	// membership core's counters and aggregated link stats, and the full
	// ServerStats snapshot as a status section, frozen on Close).
	Obs *obs.Registry
}

const (
	defaultSnapshotEvery = 64
	defaultWatchdog      = 500 * time.Millisecond
	defaultSlowBan       = 30 * time.Second
	defaultAttachLease   = 10 * time.Second
)

// ServerNode is one dedicated membership server deployed as a concurrent
// process: the one-round membership algorithm (internal/membership) runs
// over TCP proposals to its peer servers, start_change / view notifications
// flow to its local clients as dedicated frames on the same fabric, and
// clients register themselves in-band through the attach protocol.
type ServerNode struct {
	id     types.ProcID
	fabric *fabric

	mu          sync.Mutex
	srv         *membership.Server
	detector    *membership.Detector
	detectorCfg membership.DetectorConfig
	ready       chan struct{}

	// phiHist distributes the detector's accrual scores, observed for every
	// peer on every heartbeat tick.
	phiHist *obs.Histogram

	store         Store
	snapshotEvery int
	sinceSnapshot int
	walAppends    *obs.Counter
	walSnapshots  *obs.Counter

	attachesServed *obs.Counter
	detaches       *obs.Counter

	// Slow-consumer policy: the static server set (to route a suspected
	// server into the detector), ban expiries for evicted laggards, and
	// the eviction counter. Guarded by mu.
	servers           types.ProcSet
	slowBan           time.Duration
	banned            map[types.ProcID]time.Time
	overloadEvictions *obs.Counter

	// Attach leases: the last keepalive seen from each in-band client, and
	// the counter for registrations dropped when a lease ran out. Guarded
	// by mu; swept on the watchdog tick.
	attachLease    time.Duration
	leases         map[types.ProcID]time.Time
	leaseEvictions *obs.Counter

	// obs is the registry the server's sections live in (nil when
	// unconfigured; the counters still work as unregistered handles).
	obs *obs.Registry

	hbStop chan struct{}
	hbWG   sync.WaitGroup

	wdStop chan struct{}
	wdWG   sync.WaitGroup

	closeOnce sync.Once
}

// serverTransport adapts the fabric to membership.ServerTransport.
type serverTransport struct {
	f *fabric
}

func (t serverTransport) Send(dests []types.ProcID, m types.WireMsg) {
	t.f.Send(dests, m)
}

// NewServerNode starts a live membership server listening on cfg.Addr. With
// a Store configured, the previously persisted identifier state is replayed
// before the listener serves its first frame.
func NewServerNode(cfg ServerConfig) (*ServerNode, error) {
	serverLabel := obs.L("server", string(cfg.ID))
	n := &ServerNode{
		id:            cfg.ID,
		ready:         make(chan struct{}),
		store:         cfg.Store,
		snapshotEvery: cfg.SnapshotEvery,
		servers:       cfg.Servers,
		slowBan:       cfg.SlowBan,
		banned:        make(map[types.ProcID]time.Time),
		attachLease:   cfg.AttachLease,
		leases:        make(map[types.ProcID]time.Time),
		obs:           cfg.Obs,
		detectorCfg:   cfg.Detector,

		phiHist: cfg.Obs.Histogram("vsgm_detector_phi",
			"Accrual suspicion scores observed per peer per heartbeat tick.",
			[]float64{0.25, 0.5, 1, 2, 4, 8, 12, 16, 24, 32}, serverLabel),

		walAppends: cfg.Obs.Counter("vsgm_server_wal_appends_total",
			"Identifier mutations appended to the write-ahead log.", serverLabel),
		walSnapshots: cfg.Obs.Counter("vsgm_server_wal_snapshots_total",
			"WAL compactions into a snapshot.", serverLabel),
		attachesServed: cfg.Obs.Counter("vsgm_server_attaches_served_total",
			"Attach requests acknowledged (registrations and keepalives).", serverLabel),
		detaches: cfg.Obs.Counter("vsgm_server_detaches_total",
			"Client-initiated detaches applied.", serverLabel),
		overloadEvictions: cfg.Obs.Counter("vsgm_server_overload_evictions_total",
			"Clients evicted (and banned) on slow-consumer complaints.", serverLabel),
		leaseEvictions: cfg.Obs.Counter("vsgm_server_lease_evictions_total",
			"Registrations dropped because the client's keepalives stopped for a full attach lease.", serverLabel),
	}
	if n.snapshotEvery == 0 {
		n.snapshotEvery = defaultSnapshotEvery
	}
	if n.slowBan == 0 {
		n.slowBan = defaultSlowBan
	}
	if n.attachLease == 0 {
		n.attachLease = defaultAttachLease
	}
	var restored map[types.ProcID]membership.ClientRecord
	if n.store != nil {
		if cfg.WALFsync != FsyncNever {
			if fs, ok := n.store.(interface {
				SetFsyncPolicy(FsyncPolicy, int)
			}); ok {
				fs.SetFsyncPolicy(cfg.WALFsync, cfg.WALFsyncEvery)
			}
		}
		var err error
		if restored, err = n.store.Load(); err != nil {
			return nil, err
		}
	}
	f, err := newFabricRef(cfg.ID, cfg.Addr, cfg.Transport, n.receiveRef, n.linkDown)
	if err != nil {
		return nil, err
	}
	n.fabric = f
	srv, err := membership.NewServer(cfg.ID, cfg.Servers, serverTransport{f: f}, n.notify)
	if err != nil {
		close(n.ready)
		f.Close()
		return nil, err
	}
	if len(restored) > 0 {
		srv.RestoreRecords(restored)
	}
	if n.store != nil {
		srv.SetRecorder(n.onRecord)
	}
	n.mu.Lock()
	n.srv = srv
	n.mu.Unlock()
	close(n.ready)
	n.registerObs()

	wd := cfg.Watchdog
	if wd == 0 {
		wd = defaultWatchdog
	}
	if wd > 0 {
		n.startWatchdog(wd)
	}
	return n, nil
}

// onRecord is the membership recorder hook: it appends every identifier
// mutation to the WAL and periodically compacts it into a snapshot. It runs
// with n.mu held (the server invokes it from within its handlers), so the
// snapshot can read the server's state directly.
func (n *ServerNode) onRecord(p types.ProcID, rec membership.ClientRecord) {
	if n.store.Append(wire.WALRecord{Client: p, CID: rec.CID, Vid: rec.Vid, Epoch: rec.Epoch}) != nil {
		return
	}
	n.walAppends.Inc()
	n.sinceSnapshot++
	if n.snapshotEvery > 0 && n.sinceSnapshot >= n.snapshotEvery {
		if n.store.WriteSnapshot(n.srv.ClientRecords()) == nil {
			n.walSnapshots.Inc()
			n.sinceSnapshot = 0
		}
	}
}

// registerObs publishes the server's scrape-time sections into the registry:
// the membership core's counters and aggregated link stats as a collector,
// the full ServerStats snapshot as a status section. Frozen on Close.
func (n *ServerNode) registerObs() {
	if n.obs == nil {
		return
	}
	serverLabel := obs.L("server", string(n.id))
	// The fsck outcome is fixed at store-open time; snapshot it once.
	var repair *RepairReport
	if fs, ok := n.store.(*FileStore); ok {
		repair = fs.RepairReport()
	}
	n.obs.RegisterCollector("server/"+string(n.id), func() []obs.Sample {
		n.mu.Lock()
		var evictions, reproposals, attempts, views int64
		var clients int
		var san membership.SanitizeStats
		if n.srv != nil {
			evictions = n.srv.Evictions()
			reproposals = n.srv.Reproposals()
			attempts = n.srv.AttemptsRun()
			views = n.srv.ViewsDelivered()
			clients = n.srv.LocalClients().Len()
			san = n.srv.Sanitized()
		}
		var det membership.DetectorStats
		if n.detector != nil {
			det = n.detector.Stats()
		}
		n.mu.Unlock()
		samples := []obs.Sample{
			{Name: "vsgm_server_clients", Kind: obs.KindGauge, Labels: []obs.Label{serverLabel}, Value: float64(clients)},
			{Name: "vsgm_server_evictions_total", Kind: obs.KindCounter, Labels: []obs.Label{serverLabel}, Value: float64(evictions)},
			{Name: "vsgm_server_reproposals_total", Kind: obs.KindCounter, Labels: []obs.Label{serverLabel}, Value: float64(reproposals)},
			{Name: "vsgm_server_attempts_total", Kind: obs.KindCounter, Labels: []obs.Label{serverLabel}, Value: float64(attempts)},
			{Name: "vsgm_server_views_delivered_total", Kind: obs.KindCounter, Labels: []obs.Label{serverLabel}, Value: float64(views)},
			{Name: "vsgm_detector_suspects_total", Kind: obs.KindCounter, Labels: []obs.Label{serverLabel}, Value: float64(det.Suspects)},
			{Name: "vsgm_detector_flaps_total", Kind: obs.KindCounter, Labels: []obs.Label{serverLabel}, Value: float64(det.Flaps)},
			{Name: "vsgm_detector_quarantines_total", Kind: obs.KindCounter, Labels: []obs.Label{serverLabel}, Value: float64(det.Quarantines)},
			{Name: "vsgm_detector_quarantined", Kind: obs.KindGauge, Labels: []obs.Label{serverLabel}, Value: float64(det.Quarantined)},
			{Name: "vsgm_detector_gray_downgrades_total", Kind: obs.KindCounter, Labels: []obs.Label{serverLabel}, Value: float64(det.GrayDowngrades)},
			{Name: "vsgm_detector_gray_excluded", Kind: obs.KindGauge, Labels: []obs.Label{serverLabel}, Value: float64(det.GrayExcluded)},
			{Name: "vsgm_view_churn_total", Kind: obs.KindCounter, Labels: []obs.Label{serverLabel}, Value: float64(det.VerdictChanges)},
		}
		for _, rs := range []struct {
			rule string
			v    int64
		}{
			{"negative", san.Negative},
			{"wrapped_epoch", san.WrappedEpoch},
			{"cid_ceiling", san.CIDCeiling},
			{"vid_ceiling", san.VidCeiling},
			{"vid_orphan", san.VidOrphan},
			{"epoch_raised", san.EpochRaised},
		} {
			samples = append(samples, obs.Sample{
				Name: "vsgm_sanitize_clamps_total", Kind: obs.KindCounter,
				Labels: []obs.Label{serverLabel, obs.L("rule", rs.rule)}, Value: float64(rs.v),
			})
		}
		if repair != nil {
			samples = append(samples,
				obs.Sample{Name: "vsgm_wal_repair_damaged_ranges_total", Kind: obs.KindCounter, Labels: []obs.Label{serverLabel}, Value: float64(repair.DamagedRanges())},
				obs.Sample{Name: "vsgm_wal_repair_damaged_bytes_total", Kind: obs.KindCounter, Labels: []obs.Label{serverLabel}, Value: float64(repair.DamagedBytes())},
				obs.Sample{Name: "vsgm_wal_repair_records_recovered", Kind: obs.KindGauge, Labels: []obs.Label{serverLabel}, Value: float64(repair.RecordsRecovered())},
				obs.Sample{Name: "vsgm_wal_repair_v1_migrated_total", Kind: obs.KindCounter, Labels: []obs.Label{serverLabel}, Value: float64(repair.V1Records())},
				obs.Sample{Name: "vsgm_wal_repair_temps_swept_total", Kind: obs.KindCounter, Labels: []obs.Label{serverLabel}, Value: float64(repair.TempsSwept)},
			)
		}
		samples = append(samples, linkSamples(serverLabel, n.fabric.Stats())...)
		return append(samples, reactorSamples(serverLabel, n.fabric)...)
	})
	n.obs.RegisterStatus("server/"+string(n.id), func() any { return n.Stats() })
	n.obs.SetHelp("vsgm_server_clients", "Local clients currently registered.")
	n.obs.SetHelp("vsgm_server_evictions_total", "Registrations dropped because a peer claimed the client under a higher epoch.")
	n.obs.SetHelp("vsgm_server_reproposals_total", "Watchdog-triggered proposal re-sends.")
	n.obs.SetHelp("vsgm_server_attempts_total", "Membership attempts run.")
	n.obs.SetHelp("vsgm_server_views_delivered_total", "Views assembled and delivered to local clients.")
	n.obs.SetHelp("vsgm_detector_suspects_total", "Failure-detector crossings into suspicion (accrual threshold or external link evidence).")
	n.obs.SetHelp("vsgm_detector_flaps_total", "Suspect-to-restore crossings — the signal flap damping acts on.")
	n.obs.SetHelp("vsgm_detector_quarantines_total", "Rejoin quarantines imposed on flapping peers.")
	n.obs.SetHelp("vsgm_detector_quarantined", "Peer servers currently serving a rejoin quarantine.")
	n.obs.SetHelp("vsgm_detector_gray_downgrades_total", "Peers downgraded on one-way-link (gray-failure) evidence from heartbeat bitmaps.")
	n.obs.SetHelp("vsgm_detector_gray_excluded", "Peer servers currently excluded by bitmap reconciliation.")
	n.obs.SetHelp("vsgm_view_churn_total", "Failure-detector verdict changes — each one triggers a reconfiguration attempt.")
	n.obs.SetHelp("vsgm_sanitize_clamps_total", "Impossible identifier values clamped out of restored state and attach claims, by rule.")
	n.obs.SetHelp("vsgm_wal_repair_damaged_ranges_total", "Undecodable byte ranges quarantined by the fsck pass at store open.")
	n.obs.SetHelp("vsgm_wal_repair_damaged_bytes_total", "Bytes those quarantined ranges covered.")
	n.obs.SetHelp("vsgm_wal_repair_records_recovered", "Records the fsck pass at store open decoded across WAL and snapshot.")
	n.obs.SetHelp("vsgm_wal_repair_v1_migrated_total", "Legacy v1 records found (and, when damaged or mixed, migrated to v2) at store open.")
	n.obs.SetHelp("vsgm_wal_repair_temps_swept_total", "Stale snapshot temp files removed at store open.")
}

// startWatchdog re-proposes the current attempt whenever it stays stalled
// across two consecutive ticks: a one-round attempt that has not completed
// after a full interval has almost certainly lost a proposal frame, and
// proposals are idempotent, so retrying is always safe. The tick is
// jittered so co-started servers do not retry in lockstep.
func (n *ServerNode) startWatchdog(interval time.Duration) {
	stop := make(chan struct{})
	n.wdStop = stop
	n.wdWG.Add(1)
	go func() {
		defer n.wdWG.Done()
		timer := time.NewTimer(jitter(interval))
		defer timer.Stop()
		lastAttempt := int64(-1)
		for {
			select {
			case <-timer.C:
				n.mu.Lock()
				if n.srv.Stalled() {
					if a := n.srv.CurrentAttempt(); a == lastAttempt {
						n.srv.Repropose()
					} else {
						lastAttempt = a
					}
				} else {
					lastAttempt = -1
				}
				n.mu.Unlock()
				n.sweepLeases(time.Now())
				timer.Reset(jitter(interval))
			case <-stop:
				return
			}
		}
	}()
}

// Addr returns the server's listen address.
func (n *ServerNode) Addr() string { return n.fabric.Addr() }

// ID returns the server's identifier.
func (n *ServerNode) ID() types.ProcID { return n.id }

// SetPeers installs the address directory (peer servers and local clients).
func (n *ServerNode) SetPeers(peers map[types.ProcID]string) { n.fabric.SetPeers(peers) }

// LinkStats snapshots the server's per-peer transport counters.
func (n *ServerNode) LinkStats() map[types.ProcID]LinkStats { return n.fabric.Stats() }

// Chaos returns the server's fault-injection controller.
func (n *ServerNode) Chaos() *Chaos { return n.fabric.Chaos() }

// linkDown translates transport-link failures into failure-detector
// suspicions: a broken or undialable connection to a peer server is
// evidence of unreachability, and feeding it here makes the membership
// react immediately instead of waiting out the heartbeat timeout. The
// detector ignores non-server peers, so client-link churn is harmless.
func (n *ServerNode) linkDown(peer types.ProcID, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.detector == nil || n.srv == nil {
		return
	}
	n.detector.Suspect(peer, time.Now())
	if reachable, changed := n.detector.Tick(time.Now()); changed {
		n.srv.SetReachable(reachable)
	}
}

// AddClient registers a local client; follow with Reconfigure to admit it.
func (n *ServerNode) AddClient(p types.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.srv.AddClient(p)
}

// RemoveClient deregisters a local client.
func (n *ServerNode) RemoveClient(p types.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.srv.RemoveClient(p)
}

// Clients returns the currently registered local clients.
func (n *ServerNode) Clients() types.ProcSet {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv.LocalClients()
}

// Records snapshots the durable per-client identifier state this server
// holds (live registrations plus retained records).
func (n *ServerNode) Records() map[types.ProcID]membership.ClientRecord {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv.ClientRecords()
}

// InjectRecords merges arbitrary per-client identifier records into the
// server's retained state and forces a reconfiguration — a chaos hook for
// arbitrary-state soak testing. The records pass through the same sanitizer
// as a WAL replay, so this exercises exactly the convergence path a server
// resurrected from corrupted storage takes, without a restart.
func (n *ServerNode) InjectRecords(recs map[types.ProcID]membership.ClientRecord) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.srv == nil {
		return
	}
	n.srv.RestoreRecords(recs)
	n.srv.Reconfigure()
}

// SetReachable feeds the failure detector: the servers currently reachable.
func (n *ServerNode) SetReachable(set types.ProcSet) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.srv.SetReachable(set)
}

// Reachable reports the servers this node's failure detector currently
// believes reachable.
func (n *ServerNode) Reachable() types.ProcSet {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv.Reachable()
}

// DetectorStats snapshots the heartbeat failure detector's counters (all
// zero before StartHeartbeats).
func (n *ServerNode) DetectorStats() membership.DetectorStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.detector == nil {
		return membership.DetectorStats{}
	}
	return n.detector.Stats()
}

// Reconfigure starts a fresh membership attempt.
func (n *ServerNode) Reconfigure() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.srv.Reconfigure()
}

// notify relays a membership notification to a client over the fabric. It
// runs with n.mu held (the server calls it from within its handlers), so it
// must only enqueue — the fabric encodes the frame immediately and queues
// the bytes, never blocking on the network.
func (n *ServerNode) notify(p types.ProcID, notif membership.Notification) {
	n.fabric.SendNotify(p, notif)
}

// receiveRef is the zero-copy receive entry point: fr's payloads may alias
// body, a pooled network buffer released once the synchronous handlers
// return (the server core copies anything it retains).
func (n *ServerNode) receiveRef(from types.ProcID, fr frame, body *pool.Buf) {
	n.receive(from, fr)
	if body != nil {
		body.Release()
	}
}

// receive handles an inbound frame: attach-protocol frames from clients,
// heartbeats and proposals from peer servers.
func (n *ServerNode) receive(from types.ProcID, fr frame) {
	<-n.ready
	if fr.Attach != nil {
		n.handleAttach(from, *fr.Attach)
		return
	}
	if fr.Msg == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if fr.Msg.Kind == types.KindHeartbeat {
		if n.detector != nil {
			n.detector.OnHeartbeatInfo(from, time.Now(), fr.Msg.Reach)
		}
		return
	}
	if n.srv != nil {
		n.srv.HandleMessage(from, *fr.Msg)
	}
}

// sweepLeases deregisters every in-band client whose keepalives stopped a
// full attach lease ago — the server-side failure detector for clients. A
// client can die the instant after its attach request is sent (a flash
// crowd straggler, a crashed process): no peer will ever claim it under a
// higher epoch, so without a lease its registration would keep a dead
// member in every future view, wedging the sync rounds forever. A falsely
// suspected client re-attaches on its next keepalive and resumes its
// identifiers from the retained record.
func (n *ServerNode) sweepLeases(now time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.attachLease <= 0 || n.srv == nil {
		return
	}
	changed := false
	for p, seen := range n.leases {
		if now.Sub(seen) <= n.attachLease {
			continue
		}
		delete(n.leases, p)
		if n.srv.HasClient(p) {
			n.srv.RemoveClient(p)
			n.leaseEvictions.Inc()
			changed = true
		}
	}
	if changed {
		n.srv.Reconfigure()
	}
}

// handleAttach serves the in-band attach protocol. A request registers (or
// keeps alive) the sender under its attach epoch and is always acknowledged
// with the server's recorded identifier state; only a registration this
// call created triggers a reconfiguration, so keepalives are cheap. A
// detach deregisters the sender unless the registration has moved to a
// newer epoch since (a late detach must not evict a fresh attach).
func (n *ServerNode) handleAttach(from types.ProcID, a wire.Attach) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.srv == nil {
		return
	}
	switch a.Kind {
	case wire.AttachRequest:
		if until, ok := n.banned[from]; ok {
			if time.Now().Before(until) {
				return // banned laggard: no ack, so it keeps failing over
			}
			delete(n.banned, from)
		}
		rec, added := n.srv.AttachClientClaim(from, a.Epoch,
			membership.ClientRecord{CID: a.CID, Vid: a.Vid})
		n.attachesServed.Inc()
		n.leases[from] = time.Now()
		// The ack must precede any notification from the registration's
		// first attempt on the client's FIFO link, so enqueue it before
		// reconfiguring.
		n.fabric.SendAttach(from, wire.Attach{
			Kind:   wire.AttachAck,
			Client: from,
			Epoch:  rec.Epoch,
			CID:    rec.CID,
			Vid:    rec.Vid,
		})
		if added {
			n.srv.Reconfigure()
		}
	case wire.AttachDetach:
		if rec, ok := n.srv.RecordOf(from); ok && rec.Epoch > a.Epoch {
			return
		}
		if n.srv.HasClient(from) {
			n.srv.RemoveClient(from)
			delete(n.leases, from)
			n.detaches.Inc()
			n.srv.Reconfigure()
		}
	case wire.AttachSuspect:
		n.handleSuspectLocked(a.Client)
	}
}

// handleSuspectLocked applies a slow-consumer complaint: a client holding a
// reporter's credit window exhausted past the grace period is evicted from
// the live view and banned from re-attaching for the cooldown (overload
// degrades membership, it must not flap it); a suspected peer server feeds
// the failure detector instead, the same path a broken trunk link takes.
// Complaints are broadcast to every server, so the laggard's actual home
// acts no matter which link the reporter had; non-homes holding no
// registration just refresh the ban. Callers hold mu.
func (n *ServerNode) handleSuspectLocked(laggard types.ProcID) {
	if laggard == n.id || laggard == "" {
		return
	}
	now := time.Now()
	if n.servers.Contains(laggard) {
		if n.detector != nil {
			n.detector.Suspect(laggard, now)
			if reachable, changed := n.detector.Tick(now); changed {
				n.srv.SetReachable(reachable)
			}
		}
		return
	}
	if n.slowBan > 0 {
		n.banned[laggard] = now.Add(n.slowBan)
	}
	if n.srv.HasClient(laggard) {
		n.srv.RemoveClient(laggard)
		delete(n.leases, laggard)
		n.overloadEvictions.Inc()
		// A best-effort detach tells the laggard its registration is gone,
		// so it starts courting (and being refused by) the next server
		// instead of trusting a home that no longer serves it.
		n.fabric.SendAttach(laggard, wire.Attach{Kind: wire.AttachDetach, Client: laggard})
		n.srv.Reconfigure()
	}
}

// ServerStats is a JSON-able snapshot of a server node's counters.
type ServerStats struct {
	ID                types.ProcID               `json:"id"`
	Clients           []types.ProcID             `json:"clients"`
	AttachesServed    int64                      `json:"attaches_served"`
	Detaches          int64                      `json:"detaches"`
	Evictions         int64                      `json:"evictions"`
	OverloadEvictions int64                      `json:"overload_evictions"`
	LeaseEvictions    int64                      `json:"lease_evictions"`
	Reproposals       int64                      `json:"reproposals"`
	AttemptsRun       int64                      `json:"attempts_run"`
	ViewsDelivered    int64                      `json:"views_delivered"`
	WALAppends        int64                      `json:"wal_appends"`
	WALSnapshots      int64                      `json:"wal_snapshots"`
	SanitizeClamps    int64                      `json:"sanitize_clamps"`
	Links             map[types.ProcID]LinkStats `json:"links"`
}

// Stats snapshots the server node's attach, membership, durability, and
// per-link transport counters.
func (n *ServerNode) Stats() ServerStats {
	n.mu.Lock()
	s := ServerStats{
		ID:                n.id,
		Clients:           n.srv.LocalClients().Sorted(),
		AttachesServed:    n.attachesServed.Value(),
		Detaches:          n.detaches.Value(),
		Evictions:         n.srv.Evictions(),
		OverloadEvictions: n.overloadEvictions.Value(),
		LeaseEvictions:    n.leaseEvictions.Value(),
		Reproposals:       n.srv.Reproposals(),
		AttemptsRun:       n.srv.AttemptsRun(),
		ViewsDelivered:    n.srv.ViewsDelivered(),
		WALAppends:        n.walAppends.Value(),
		WALSnapshots:      n.walSnapshots.Value(),
		SanitizeClamps:    n.srv.Sanitized().Total(),
	}
	n.mu.Unlock()
	s.Links = n.fabric.Stats()
	return s
}

// Close shuts the server down, joins its goroutines, and closes its store.
// Idempotent: a kill-path Close followed by a deferred Close must not close
// the fabric or store twice. The registry sections are frozen last, so a
// stats print after the kill reads the final values without touching the
// closed node.
func (n *ServerNode) Close() {
	n.closeOnce.Do(func() {
		n.mu.Lock()
		if n.hbStop != nil {
			close(n.hbStop)
			n.hbStop = nil
		}
		if n.wdStop != nil {
			close(n.wdStop)
			n.wdStop = nil
		}
		n.mu.Unlock()
		n.hbWG.Wait()
		n.wdWG.Wait()
		n.fabric.Close()
		if n.store != nil {
			n.store.Close()
		}
		n.obs.Detach("server/" + string(n.id))
	})
}

// StartHeartbeats runs a heartbeat failure detector for this server: it
// multicasts a heartbeat to its peer servers — immediately on start, then
// at jittered intervals so co-started servers don't burst in lockstep — and
// re-evaluates suspicions with the given timeout, feeding verdict changes
// straight into the membership algorithm. Stop by closing the server (Close
// joins the ticker goroutine).
func (n *ServerNode) StartHeartbeats(peers types.ProcSet, interval, timeout time.Duration) {
	n.mu.Lock()
	if n.detector == nil {
		n.detector = membership.NewDetectorWith(n.id, peers, timeout, time.Now(), n.detectorCfg)
	}
	if n.hbStop != nil {
		n.mu.Unlock()
		return // already running
	}
	stop := make(chan struct{})
	n.hbStop = stop
	n.mu.Unlock()

	others := peers.Minus(types.NewProcSet(n.id)).Sorted()
	n.hbWG.Add(1)
	go func() {
		defer n.hbWG.Done()
		// Fire immediately: peers learn of this server one dial, not one
		// interval, after it starts.
		timer := time.NewTimer(0)
		defer timer.Stop()
		for {
			select {
			case <-timer.C:
				if len(others) > 0 {
					// Piggyback the hearing set as the reachability bitmap:
					// peers use it to reconcile one-way links. Heartbeat
					// frames coalesce newest-wins per link, so a queued stale
					// bitmap is superseded, never delivered late.
					n.mu.Lock()
					reach := n.detector.Bitmap()
					n.mu.Unlock()
					n.fabric.Send(others, types.WireMsg{Kind: types.KindHeartbeat, Reach: reach})
				}
				n.mu.Lock()
				now := time.Now()
				reachable, changed := n.detector.Tick(now)
				for _, p := range others {
					n.phiHist.Observe(n.detector.Phi(p, now))
				}
				if changed {
					n.srv.SetReachable(reachable)
				}
				n.mu.Unlock()
				timer.Reset(jitter(interval))
			case <-stop:
				return
			}
		}
	}()
}
