package live

import (
	"sync"
	"time"

	"vsgm/internal/membership"
	"vsgm/internal/types"
)

// ServerConfig parameterizes a live membership server.
type ServerConfig struct {
	// ID is the server's identifier; required.
	ID types.ProcID
	// Addr is the TCP listen address ("127.0.0.1:0" for ephemeral).
	Addr string
	// Servers is the static set of all membership servers (including ID).
	Servers types.ProcSet
	// Transport tunes the supervised transport (timeouts, backoff, queue
	// bounds); the zero value selects production defaults.
	Transport TransportConfig
}

// ServerNode is one dedicated membership server deployed as a concurrent
// process: the one-round membership algorithm (internal/membership) runs
// over TCP proposals to its peer servers, and start_change / view
// notifications flow to its local clients as dedicated frames on the same
// fabric.
type ServerNode struct {
	id     types.ProcID
	fabric *fabric

	mu       sync.Mutex
	srv      *membership.Server
	detector *membership.Detector
	ready    chan struct{}

	hbStop chan struct{}
	hbWG   sync.WaitGroup
}

// serverTransport adapts the fabric to membership.ServerTransport.
type serverTransport struct {
	f *fabric
}

func (t serverTransport) Send(dests []types.ProcID, m types.WireMsg) {
	t.f.Send(dests, m)
}

// NewServerNode starts a live membership server listening on cfg.Addr.
func NewServerNode(cfg ServerConfig) (*ServerNode, error) {
	n := &ServerNode{id: cfg.ID, ready: make(chan struct{})}
	f, err := newFabric(cfg.ID, cfg.Addr, cfg.Transport, n.receive, n.linkDown)
	if err != nil {
		return nil, err
	}
	n.fabric = f
	srv, err := membership.NewServer(cfg.ID, cfg.Servers, serverTransport{f: f}, n.notify)
	if err != nil {
		close(n.ready)
		f.Close()
		return nil, err
	}
	n.mu.Lock()
	n.srv = srv
	n.mu.Unlock()
	close(n.ready)
	return n, nil
}

// Addr returns the server's listen address.
func (n *ServerNode) Addr() string { return n.fabric.Addr() }

// ID returns the server's identifier.
func (n *ServerNode) ID() types.ProcID { return n.id }

// SetPeers installs the address directory (peer servers and local clients).
func (n *ServerNode) SetPeers(peers map[types.ProcID]string) { n.fabric.SetPeers(peers) }

// LinkStats snapshots the server's per-peer transport counters.
func (n *ServerNode) LinkStats() map[types.ProcID]LinkStats { return n.fabric.Stats() }

// Chaos returns the server's fault-injection controller.
func (n *ServerNode) Chaos() *Chaos { return n.fabric.Chaos() }

// linkDown translates transport-link failures into failure-detector
// suspicions: a broken or undialable connection to a peer server is
// evidence of unreachability, and feeding it here makes the membership
// react immediately instead of waiting out the heartbeat timeout. The
// detector ignores non-server peers, so client-link churn is harmless.
func (n *ServerNode) linkDown(peer types.ProcID, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.detector == nil || n.srv == nil {
		return
	}
	n.detector.Suspect(peer, time.Now())
	if reachable, changed := n.detector.Tick(time.Now()); changed {
		n.srv.SetReachable(reachable)
	}
}

// AddClient registers a local client; follow with Reconfigure to admit it.
func (n *ServerNode) AddClient(p types.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.srv.AddClient(p)
}

// RemoveClient deregisters a local client.
func (n *ServerNode) RemoveClient(p types.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.srv.RemoveClient(p)
}

// SetReachable feeds the failure detector: the servers currently reachable.
func (n *ServerNode) SetReachable(set types.ProcSet) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.srv.SetReachable(set)
}

// Reconfigure starts a fresh membership attempt.
func (n *ServerNode) Reconfigure() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.srv.Reconfigure()
}

// notify relays a membership notification to a client over the fabric. It
// runs with n.mu held (the server calls it from within its handlers), so it
// must only enqueue — the fabric encodes the frame immediately and queues
// the bytes, never blocking on the network.
func (n *ServerNode) notify(p types.ProcID, notif membership.Notification) {
	n.fabric.SendNotify(p, notif)
}

// receive handles an inbound server-to-server frame.
func (n *ServerNode) receive(from types.ProcID, fr frame) {
	<-n.ready
	if fr.Msg == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if fr.Msg.Kind == types.KindHeartbeat {
		if n.detector != nil {
			n.detector.OnHeartbeat(from, time.Now())
		}
		return
	}
	if n.srv != nil {
		n.srv.HandleMessage(from, *fr.Msg)
	}
}

// Close shuts the server down and joins its goroutines.
func (n *ServerNode) Close() {
	n.mu.Lock()
	if n.hbStop != nil {
		close(n.hbStop)
		n.hbStop = nil
	}
	n.mu.Unlock()
	n.hbWG.Wait()
	n.fabric.Close()
}

// StartHeartbeats runs a heartbeat failure detector for this server: every
// interval it multicasts a heartbeat to its peer servers and re-evaluates
// suspicions with the given timeout, feeding verdict changes straight into
// the membership algorithm. Stop by closing the server (Close joins the
// ticker goroutine).
func (n *ServerNode) StartHeartbeats(peers types.ProcSet, interval, timeout time.Duration) {
	n.mu.Lock()
	if n.detector == nil {
		n.detector = membership.NewDetector(n.id, peers, timeout, time.Now())
	}
	if n.hbStop != nil {
		n.mu.Unlock()
		return // already running
	}
	stop := make(chan struct{})
	n.hbStop = stop
	n.mu.Unlock()

	others := peers.Minus(types.NewProcSet(n.id)).Sorted()
	n.hbWG.Add(1)
	go func() {
		defer n.hbWG.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if len(others) > 0 {
					n.fabric.Send(others, types.WireMsg{Kind: types.KindHeartbeat})
				}
				n.mu.Lock()
				reachable, changed := n.detector.Tick(time.Now())
				if changed {
					n.srv.SetReachable(reachable)
				}
				n.mu.Unlock()
			case <-stop:
				return
			}
		}
	}()
}
