package live

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vsgm/internal/wire"
)

// FsckMode selects what the fsck engine is allowed to do to a state dir.
type FsckMode int

const (
	// FsckDryRun scans and reports; the directory is not touched.
	FsckDryRun FsckMode = iota
	// FsckRepair scans, quarantines damaged byte ranges to wal.quarantine,
	// and rewrites each damaged (or v1-format) file from its intact records,
	// re-encoded as checksummed v2.
	FsckRepair
)

// quarantineFileName receives the damaged byte ranges a repair carved out of
// wal.log or snapshot.bin, each behind a one-line header, so corruption is
// preserved for forensics instead of silently destroyed.
const quarantineFileName = "wal.quarantine"

// FileReport is the fsck result for one file of a server state directory.
type FileReport struct {
	// Name is the file's base name ("wal.log" or "snapshot.bin").
	Name string `json:"name"`
	// Bytes is the file's size at scan time.
	Bytes int `json:"bytes"`
	// Records counts the records that decoded (both versions).
	Records int `json:"records"`
	// V1Records counts the legacy unchecksummed records among them.
	V1Records int `json:"v1_records"`
	// DamagedRanges counts the skipped undecodable spans.
	DamagedRanges int `json:"damaged_ranges"`
	// DamagedBytes totals the bytes those spans cover.
	DamagedBytes int `json:"damaged_bytes"`
	// Rewritten reports whether repair replaced the file (damage found, or
	// v1 records migrated to v2).
	Rewritten bool `json:"rewritten"`
}

// RepairReport is the outcome of one fsck pass over a state directory.
type RepairReport struct {
	// Dir is the scanned state directory.
	Dir string `json:"dir"`
	// Mode records whether the pass was allowed to repair.
	Mode FsckMode `json:"mode"`
	// Files holds one entry per file that existed.
	Files []FileReport `json:"files"`
	// TempsSwept counts stale snapshot temp files removed (a crash between
	// CreateTemp and the rename strands them; only repair mode sweeps).
	TempsSwept int `json:"temps_swept"`
}

// Damaged reports whether any scanned file contained undecodable bytes.
func (r *RepairReport) Damaged() bool {
	for _, f := range r.Files {
		if f.DamagedRanges > 0 {
			return true
		}
	}
	return false
}

// RecordsRecovered totals the decoded records across all files.
func (r *RepairReport) RecordsRecovered() int {
	n := 0
	for _, f := range r.Files {
		n += f.Records
	}
	return n
}

// DamagedBytes totals the quarantined byte count across all files.
func (r *RepairReport) DamagedBytes() int {
	n := 0
	for _, f := range r.Files {
		n += f.DamagedBytes
	}
	return n
}

// DamagedRanges totals the quarantined range count across all files.
func (r *RepairReport) DamagedRanges() int {
	n := 0
	for _, f := range r.Files {
		n += f.DamagedRanges
	}
	return n
}

// V1Records totals the legacy-format records across all files.
func (r *RepairReport) V1Records() int {
	n := 0
	for _, f := range r.Files {
		n += f.V1Records
	}
	return n
}

// String renders the report as one line per file.
func (r *RepairReport) String() string {
	var b strings.Builder
	verb := "scanned"
	if r.Mode == FsckRepair {
		verb = "repaired"
	}
	fmt.Fprintf(&b, "fsck %s %s:", verb, r.Dir)
	if len(r.Files) == 0 {
		fmt.Fprintf(&b, " no state files")
	}
	for _, f := range r.Files {
		fmt.Fprintf(&b, "\n  %-12s %7d bytes, %d records (%d v1), %d damaged ranges (%d bytes)",
			f.Name, f.Bytes, f.Records, f.V1Records, f.DamagedRanges, f.DamagedBytes)
		if f.Rewritten {
			fmt.Fprintf(&b, " [rewritten]")
		}
	}
	if r.TempsSwept > 0 {
		fmt.Fprintf(&b, "\n  swept %d stale snapshot temp file(s)", r.TempsSwept)
	}
	return b.String()
}

// Fsck scans (and in FsckRepair mode, repairs) the WAL and snapshot of one
// server state directory. It is the self-stabilizing half of restart
// recovery: instead of trusting whatever bytes the directory holds — where
// one flipped byte mid-WAL would silently discard every record after it —
// it skip-and-resync scans both files, preserves damaged byte ranges in
// wal.quarantine, rewrites the files from their intact records (migrating
// legacy v1 records to checksummed v2 in passing), and reports exactly what
// it found. Run it only while no store handle is open on the directory;
// NewFileStore runs it automatically before opening the WAL.
func Fsck(dir string, mode FsckMode) (*RepairReport, error) {
	report := &RepairReport{Dir: dir, Mode: mode}
	if mode == FsckRepair {
		swept, err := sweepSnapshotTemps(dir)
		if err != nil {
			return nil, err
		}
		report.TempsSwept = swept
	}
	for _, name := range []string{snapFileName, walFileName} {
		path := filepath.Join(dir, name)
		b, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("live: fsck %s: %w", name, err)
		}
		scan := wire.ScanWAL(b)
		fr := FileReport{
			Name:          name,
			Bytes:         len(b),
			Records:       len(scan.Records),
			V1Records:     scan.V1Records,
			DamagedRanges: len(scan.Damaged),
		}
		for _, d := range scan.Damaged {
			fr.DamagedBytes += d.Len
		}
		if mode == FsckRepair && !scan.Clean() {
			if len(scan.Damaged) > 0 {
				if err := quarantine(dir, name, b, scan.Damaged); err != nil {
					return nil, err
				}
			}
			if err := rewriteFromRecords(path, scan.Records); err != nil {
				return nil, err
			}
			fr.Rewritten = true
		}
		report.Files = append(report.Files, fr)
	}
	return report, nil
}

// sweepSnapshotTemps removes stale temp files: a crash between
// os.CreateTemp and the rename — in WriteSnapshot or in a previous repair's
// rewrite — strands them forever, and nothing else ever reads them.
func sweepSnapshotTemps(dir string) (int, error) {
	var matches []string
	for _, pat := range []string{snapFileName + ".tmp-*", snapFileName + ".fsck-*", walFileName + ".fsck-*"} {
		m, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			return 0, err
		}
		matches = append(matches, m...)
	}
	swept := 0
	for _, m := range matches {
		if err := os.Remove(m); err != nil && !os.IsNotExist(err) {
			return swept, fmt.Errorf("live: sweep stale temp: %w", err)
		}
		swept++
	}
	return swept, nil
}

// quarantine appends each damaged byte range of file to wal.quarantine,
// every range behind a one-line header naming its origin and offsets.
func quarantine(dir, file string, b []byte, damaged []wire.DamagedRange) error {
	f, err := os.OpenFile(filepath.Join(dir, quarantineFileName),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("live: open quarantine: %w", err)
	}
	defer f.Close()
	stamp := time.Now().UTC().Format(time.RFC3339)
	for _, d := range damaged {
		if _, err := fmt.Fprintf(f, "-- vsgm quarantine file=%s off=%d len=%d at=%s --\n",
			file, d.Off, d.Len, stamp); err != nil {
			return fmt.Errorf("live: write quarantine: %w", err)
		}
		if _, err := f.Write(b[d.Off:d.End()]); err != nil {
			return fmt.Errorf("live: write quarantine: %w", err)
		}
		if _, err := f.Write([]byte("\n")); err != nil {
			return fmt.Errorf("live: write quarantine: %w", err)
		}
	}
	return f.Sync()
}

// rewriteFromRecords atomically replaces path with the v2 re-encoding of
// recs — the repair step that drops damaged spans and migrates v1 records.
func rewriteFromRecords(path string, recs []wire.WALRecord) error {
	var b []byte
	for _, rec := range recs {
		var err error
		if b, err = wire.AppendWALRecord(b, rec); err != nil {
			return fmt.Errorf("live: re-encode record: %w", err)
		}
	}
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".fsck-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
