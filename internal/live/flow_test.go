package live

// Regime 6 tests: overload and flow control. The credit protocol must stall
// senders instead of shedding data frames, keep the control plane (sync,
// attach, proposals, credits, notifications) exempt from queue eviction,
// hold resident bytes under the memory budget, and degrade a persistently
// slow consumer by evicting it from the view — all without suppressing
// heartbeats on an exhausted link (no false suspicion before the grace).

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/types"
	"vsgm/internal/wire"
)

// encodeClass builds a pooled frame of the requested wire class.
func encodeClass(t testing.TB, class wire.FrameClass, from types.ProcID) *wire.FrameBuf {
	t.Helper()
	var fr frame
	switch class {
	case wire.ClassData:
		fr = frame{From: from, Msg: &types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: 1, Payload: []byte("d")}}}
	case wire.ClassHeartbeat:
		fr = frame{From: from, Msg: &types.WireMsg{Kind: types.KindHeartbeat}}
	default:
		fr = frame{From: from, Msg: &types.WireMsg{Kind: types.KindAck, Cut: types.Cut{from: 1}}}
	}
	fb, err := wire.EncodeFrame(fr)
	if err != nil {
		t.Fatal(err)
	}
	return fb
}

// TestMailboxControlExemptFromEviction pins the satellite invariant of the
// shedding policy: a full bounded queue evicts the oldest *data* frame, and
// when only control frames remain it grows past its cap rather than drop
// one. Byte accounting must track every enqueue, eviction, and dequeue.
func TestMailboxControlExemptFromEviction(t *testing.T) {
	var dropped []*wire.FrameBuf
	m := newBoundedMailbox(2, func(fb *wire.FrameBuf) { dropped = append(dropped, fb) })
	m.classOf = (*wire.FrameBuf).Class
	m.sizeOf = func(fb *wire.FrameBuf) int { return len(fb.Bytes()) }

	ctl1 := encodeClass(t, wire.ClassControl, "a")
	data1 := encodeClass(t, wire.ClassData, "a")
	data2 := encodeClass(t, wire.ClassData, "a")
	data3 := encodeClass(t, wire.ClassData, "a")
	ctl2 := encodeClass(t, wire.ClassControl, "a")
	ctl3 := encodeClass(t, wire.ClassControl, "a")

	m.put(ctl1)
	m.put(data1)
	m.put(data2) // full: evicts data1, never ctl1
	m.put(data3) // full: evicts data2
	m.put(ctl2)  // full: evicts data3 (data is sheddable, control is not)
	m.put(ctl3)  // only control queued: grows past cap instead of dropping

	if got := m.evictions(); got != 3 {
		t.Fatalf("evictions = %d, want 3", got)
	}
	for i, fb := range dropped {
		if fb.Class() != wire.ClassData {
			t.Fatalf("dropped[%d] is class %d — a control frame was shed", i, fb.Class())
		}
	}
	wantBytes := int64(len(ctl1.Bytes()) + len(ctl2.Bytes()) + len(ctl3.Bytes()))
	if got := m.queuedBytes(); got != wantBytes {
		t.Fatalf("queuedBytes = %d, want %d", got, wantBytes)
	}
	for i, want := range []*wire.FrameBuf{ctl1, ctl2, ctl3} {
		got, ok := m.take()
		if !ok || got != want {
			t.Fatalf("take %d: got %p ok=%v, want %p (FIFO of surviving control frames)", i, got, ok, want)
		}
	}
	if got := m.queuedBytes(); got != 0 {
		t.Fatalf("queuedBytes after drain = %d, want 0", got)
	}
}

// TestMailboxHeartbeatCoalescing: a heartbeat carries no information beyond
// liveness-now, so a newly queued one supersedes a queued predecessor. The
// control-exemption rule would otherwise let heartbeats accumulate without
// bound behind a dead link.
func TestMailboxHeartbeatCoalescing(t *testing.T) {
	var dropped []*wire.FrameBuf
	m := newBoundedMailbox(16, func(fb *wire.FrameBuf) { dropped = append(dropped, fb) })
	m.classOf = (*wire.FrameBuf).Class
	m.sizeOf = func(fb *wire.FrameBuf) int { return len(fb.Bytes()) }

	data := encodeClass(t, wire.ClassData, "a")
	hb1 := encodeClass(t, wire.ClassHeartbeat, "a")
	ctl := encodeClass(t, wire.ClassControl, "a")
	hb2 := encodeClass(t, wire.ClassHeartbeat, "a")
	hb3 := encodeClass(t, wire.ClassHeartbeat, "a")

	m.put(data)
	m.put(hb1)
	m.put(ctl)
	m.put(hb2) // supersedes hb1
	m.put(hb3) // supersedes hb2

	if got := m.coalescedCount(); got != 2 {
		t.Fatalf("coalesced = %d, want 2", got)
	}
	if got := m.evictions(); got != 0 {
		t.Fatalf("evictions = %d, want 0 (coalescing is not dropping)", got)
	}
	if len(dropped) != 2 || dropped[0] != hb1 || dropped[1] != hb2 {
		t.Fatalf("onDrop saw %v, want the two superseded heartbeats", dropped)
	}
	for i, want := range []*wire.FrameBuf{data, ctl, hb3} {
		got, ok := m.take()
		if !ok || got != want {
			t.Fatalf("take %d: wrong frame order after coalescing", i)
		}
	}
}

// TestChaosPressureNeverDropsSync is the satellite regression: chaos
// latency throttles the link writer so the bounded outbound queue
// overflows, and under that pressure data frames are shed — but every sync
// frame (the view-change critical path) must still arrive. Note the drops
// here are queue evictions under pressure; probabilistic chaos drops happen
// after dequeue and would not pressure the queue at all.
func TestChaosPressureNeverDropsSync(t *testing.T) {
	cfg := testTransport()
	cfg.QueueCap = 8
	cfg.MaxBatchFrames = 1

	var (
		mu       sync.Mutex
		syncSeen = map[types.StartChangeID]bool{}
	)
	recv := func(_ types.ProcID, fr frame) {
		if fr.Msg != nil && fr.Msg.Kind == types.KindSync {
			mu.Lock()
			syncSeen[fr.Msg.CID] = true
			mu.Unlock()
		}
	}
	fa, err := newFabric("a", "127.0.0.1:0", cfg, func(types.ProcID, frame) {}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fa.Close()
	fb, err := newFabric("b", "127.0.0.1:0", cfg, recv, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	fa.SetPeers(map[types.ProcID]string{"b": fb.Addr()})
	fa.Chaos().SetLatency(3*time.Millisecond, 0)

	v := types.NewView(1, types.NewProcSet("a", "b"), map[types.ProcID]types.StartChangeID{"a": 1, "b": 1})
	const rounds = 40
	for i := 0; i < rounds; i++ {
		for j := 0; j < 10; j++ {
			fa.Send([]types.ProcID{"b"}, types.WireMsg{
				Kind: types.KindApp,
				App:  types.AppMsg{ID: int64(i*10 + j), Payload: []byte("flood")},
			})
		}
		fa.Send([]types.ProcID{"b"}, types.WireMsg{
			Kind: types.KindSync, CID: types.StartChangeID(i), View: v, Cut: types.Cut{"a": 1},
		})
	}

	waitUntil(t, "every sync frame to survive the overloaded queue", 30*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(syncSeen) == rounds
	})
	if drops := fa.Stats()["b"].QueueDrops; drops == 0 {
		t.Fatalf("queue never overflowed (drops = 0) — the test applied no pressure")
	}
}

// TestCreditWindowBlocksSenderUntilConsumed drives the credit cycle at
// fabric level: a window of W data frames shuts after W charges, a blocking
// admit parks, and the receiver's consumption advances the cumulative grant
// (one standalone credit frame per half window) until the parked sender
// wakes.
func TestCreditWindowBlocksSenderUntilConsumed(t *testing.T) {
	cfg := testTransport()
	cfg.Window = 4

	var got atomic.Int64
	var fb *fabric
	recv := func(from types.ProcID, fr frame) {
		if fr.Msg != nil && fr.Msg.Kind == types.KindApp {
			got.Add(1)
		}
	}
	fa, err := newFabric("a", "127.0.0.1:0", cfg, func(types.ProcID, frame) {}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fa.Close()
	fb, err = newFabric("b", "127.0.0.1:0", cfg, recv, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	fa.SetPeers(map[types.ProcID]string{"b": fb.Addr()})
	fb.SetPeers(map[types.ProcID]string{"a": fa.Addr()})

	for i := 0; i < 4; i++ {
		fa.Send([]types.ProcID{"b"}, types.WireMsg{
			Kind: types.KindApp, App: types.AppMsg{ID: int64(i), Payload: []byte("x")},
		})
	}
	if err := fa.admitData([]types.ProcID{"b"}, false); err != ErrOverloaded {
		t.Fatalf("admit on a spent window = %v, want ErrOverloaded", err)
	}

	adm := make(chan error, 1)
	go func() { adm <- fa.admitData([]types.ProcID{"b"}, true) }()
	select {
	case err := <-adm:
		t.Fatalf("blocking admit returned %v before any consumption", err)
	case <-time.After(100 * time.Millisecond):
	}

	waitUntil(t, "the four data frames to arrive", 10*time.Second, func() bool { return got.Load() >= 4 })
	// Three consumptions push remaining credit below half the window, so
	// the receiver ships grant = consumed + window and the sender reopens.
	for i := 0; i < 3; i++ {
		fb.consumedData("a")
	}
	select {
	case err := <-adm:
		if err != nil {
			t.Fatalf("blocking admit = %v after credit arrived", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sender stayed parked after the receiver granted credit")
	}

	if s := fa.Stats()["b"]; s.WindowExhausted < 1 || s.CreditsConsumed != 4 {
		t.Fatalf("sender-side flow stats off: %+v", s)
	}
	if s := fb.Stats()["a"]; s.CreditFrames < 1 || s.CreditsGranted < 3 {
		t.Fatalf("receiver-side flow stats off: %+v", s)
	}
}

// TestZeroCreditLinkStillDeliversHeartbeats is the satellite liveness
// check: a link with no credit at all (Window < 0) admits no data, but
// heartbeats are control-plane and must keep flowing — an exhausted window
// must not starve the failure detector into a false suspicion. And mere
// exhaustion is not slowness: no complaint is due before the grace elapses.
func TestZeroCreditLinkStillDeliversHeartbeats(t *testing.T) {
	cfg := testTransport()
	cfg.Window = -1 // grant-only: every data send needs an explicit credit

	var beats atomic.Int64
	recv := func(types.ProcID, frame) {}
	fa, err := newFabric("a", "127.0.0.1:0", cfg, recv, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fa.Close()
	fb, err := newFabric("b", "127.0.0.1:0", cfg, func(_ types.ProcID, fr frame) {
		if fr.Msg != nil && fr.Msg.Kind == types.KindHeartbeat {
			beats.Add(1)
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	fa.SetPeers(map[types.ProcID]string{"b": fb.Addr()})

	if err := fa.admitData([]types.ProcID{"b"}, false); err != ErrOverloaded {
		t.Fatalf("zero-credit admit = %v, want ErrOverloaded", err)
	}
	// Send paced heartbeats (rapid-fire ones legitimately coalesce in the
	// queue) and require several distinct deliveries.
	waitUntil(t, "heartbeats to flow over the zero-credit link", 10*time.Second, func() bool {
		fa.Send([]types.ProcID{"b"}, types.WireMsg{Kind: types.KindHeartbeat})
		return beats.Load() >= 3
	})
	if slow := fa.slowPeers(time.Hour, time.Now()); len(slow) != 0 {
		t.Fatalf("slowPeers before the grace elapsed = %v, want none", slow)
	}
}

// TestMemoryBudgetLatchesAndReleases exercises gate 1 of Node.Send: bytes
// resident in transport queues count against MemHighWater, a non-blocking
// send above it fails fast with ErrOverloaded (latching the node
// overloaded), and draining the queues reopens the budget.
func TestMemoryBudgetLatchesAndReleases(t *testing.T) {
	n, err := NewNode(NodeConfig{
		ID:           "solo",
		Addr:         "127.0.0.1:0",
		AutoBlock:    true,
		Transport:    testTransport(),
		MemHighWater: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// Below budget every gate passes: the node starts in its singleton
	// view, so the send is admitted and self-delivered.
	if _, err := n.TrySend([]byte("probe")); err != nil {
		t.Fatalf("TrySend under budget = %v, want nil", err)
	}

	// Park 8 KiB of frames in the queue of an undialable peer.
	payload := make([]byte, 1024)
	for i := 0; i < 8; i++ {
		n.fabric.Send([]types.ProcID{"ghost"}, types.WireMsg{
			Kind: types.KindApp, App: types.AppMsg{ID: int64(i), Payload: payload},
		})
	}
	waitUntil(t, "queued bytes to exceed the high watermark", 5*time.Second, func() bool {
		return n.MemUsage() > 4<<10
	})
	if _, err := n.TrySend([]byte("probe")); err != ErrOverloaded {
		t.Fatalf("TrySend over budget = %v, want ErrOverloaded", err)
	}
	st := n.Stats()
	if !st.Overloaded || st.MemBytes <= 4<<10 || st.SendsOverloaded < 1 {
		t.Fatalf("overload not reflected in stats: %+v", st)
	}

	// Bring the ghost up; the writer drains, usage falls to zero (below
	// the low watermark), and the budget reopens.
	sink, err := newFabric("ghost", "127.0.0.1:0", testTransport(), func(types.ProcID, frame) {}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	n.SetPeers(map[types.ProcID]string{"ghost": sink.Addr()})
	waitUntil(t, "queues to drain below the low watermark", 10*time.Second, func() bool {
		return n.MemUsage() < 2<<10
	})
	if _, err := n.TrySend([]byte("probe")); err != nil {
		t.Fatalf("TrySend after drain = %v, want nil (budget reopened)", err)
	}
	if st := n.Stats(); st.Overloaded {
		t.Fatalf("overload latch stuck after drain: %+v", st)
	}
}

// TestLiveSlowConsumerOverloadEviction is the Regime 6 deployment test: two
// servers, four clients, one of which consumes events two times slower than
// the slow-consumer grace. Three fast clients flood the group through a
// four-frame credit window, so their Sends block instead of dropping data;
// the laggard's window stays exhausted past the grace, a complaint reaches
// its home server, and the laggard is evicted and banned. The survivors
// reconfigure, every blocked send completes under the new view, no data
// frame is ever shed, resident bytes stay under the budget, and the full
// spec suite (WV_RFIFO, VS_RFIFO, TRANS_SET, SELF) holds for the survivors.
func TestLiveSlowConsumerOverloadEviction(t *testing.T) {
	tr := testTransport()
	tr.Window = 4
	const (
		slowIdx   = 3
		grace     = 150 * time.Millisecond
		delay     = 300 * time.Millisecond // per event: twice the grace, so exhaustion outlasts it
		perSender = 20
		budget    = int64(1 << 20)
	)
	done := make(chan struct{}) // collapses the laggard's throttle at teardown

	w := newAttachWorld(t, 2, 4, attachOptions{
		transport:  &tr,
		tuneServer: func(_ types.ProcID, cfg *ServerConfig) { cfg.SlowBan = time.Minute },
		tuneNode: func(i int, cfg *NodeConfig) {
			cfg.SlowConsumerGrace = grace
			cfg.MemHighWater = budget
			if i == slowIdx {
				// Spec recording rides the synchronous Observe hook; the
				// throttle lives on the pump-based OnEvent, which is what
				// the consumed markers queue behind — so this models an
				// application that is slow to PROCESS deliveries, holding
				// its credit window shut, without stalling the automaton.
				cfg.OnEvent = func(core.Event) {
					select {
					case <-time.After(delay):
					case <-done:
					}
				}
			}
		},
	})
	defer w.close()
	defer close(done)
	w.boot()
	w.startHeartbeats(20*time.Millisecond, 150*time.Millisecond)
	w.waitFullView("all clients attached and in the full view", 0)

	slow := types.ProcID(fmt.Sprintf("cli%d", slowIdx))
	var senders []types.ProcID
	bases := map[types.ProcID]int64{}
	for i := 0; i < 4; i++ {
		cid := types.ProcID(fmt.Sprintf("cli%d", i))
		if cid != slow {
			senders = append(senders, cid)
			bases[cid] = int64(i+1) * 1_000_000 // matches newAttachWorld's MsgIDBase
		}
	}

	var wg sync.WaitGroup
	for _, cid := range senders {
		node, base := w.clients[cid], bases[cid]
		wg.Add(1)
		go func(cid types.ProcID, node *Node) {
			defer wg.Done()
			for k := 1; k <= perSender; k++ {
				want := base + int64(k)
				m, err := node.Send([]byte(fmt.Sprintf("flood-%s-%d", cid, k)))
				if err != nil {
					t.Errorf("%s send %d: %v", cid, k, err)
					return
				}
				if m.ID != want {
					t.Errorf("%s send %d: ID %d, want %d", cid, k, m.ID, want)
					return
				}
			}
		}(cid, node)
	}

	// Degradation: the laggard is evicted within the grace machinery and
	// the survivors install a view without it.
	rest := types.NewProcSet(senders...)
	w.waitFor("laggard evicted and survivors reconfigured", func() bool {
		var evictions int64
		for _, sn := range w.servers {
			evictions += sn.Stats().OverloadEvictions
		}
		if evictions == 0 {
			return false
		}
		for _, cid := range senders {
			if !w.clients[cid].CurrentView().Members.Equal(rest) {
				return false
			}
		}
		return true
	})
	wg.Wait() // every blocked send completed once the laggard left the view

	total := perSender * len(senders)
	w.waitFor("survivor traffic fully delivered", func() bool {
		snap := w.deliveredSnapshot()
		for _, cid := range senders {
			if snap[cid] < total {
				return false
			}
		}
		return true
	})

	var blocked, reports, evictions, drops int64
	for _, cid := range senders {
		st := w.clients[cid].Stats()
		blocked += st.SendsBlocked
		reports += st.SlowReports
		if st.MemBytes > budget {
			t.Errorf("%s resident bytes %d exceed the %d budget", cid, st.MemBytes, budget)
		}
		for peer, ls := range st.Links {
			drops += ls.QueueDrops + ls.ChaosDrops
			_ = peer
		}
	}
	for _, sn := range w.servers {
		st := sn.Stats()
		evictions += st.OverloadEvictions
		for _, ls := range st.Links {
			drops += ls.QueueDrops + ls.ChaosDrops
		}
	}
	if blocked == 0 {
		t.Error("no send ever blocked — the credit window applied no backpressure")
	}
	if reports == 0 {
		t.Error("no slow-consumer complaint was filed")
	}
	if evictions < 1 {
		t.Errorf("overload evictions = %d, want >= 1", evictions)
	}
	if drops != 0 {
		t.Errorf("flow control shed %d frames; blocking senders must make drops unnecessary", drops)
	}
	if err := w.specErr(); err != nil {
		t.Fatalf("spec violation under overload degradation: %v", err)
	}
}
