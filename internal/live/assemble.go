package live

import (
	"fmt"
	"time"

	"vsgm/internal/wire"
	"vsgm/internal/wire/pool"
)

// stagingSlabSize is the reactor's per-connection staging window: one
// readiness wakeup reads up to this many bytes in one syscall, and every
// frame that fits decodes in place inside the slab.
const stagingSlabSize = 64 << 10

// frameAssembler turns a raw byte stream into decoded frames without
// copying payloads: bytes land in pooled staging slabs, complete frames are
// decoded in place (payloads alias the slab, which is reference-counted per
// emitted frame), and frames too large for the staging window are filled
// directly into a dedicated pooled buffer — or, beyond the largest slab
// class, into a plain buffer grown only as bytes actually arrive, so a
// hostile length prefix cannot force a 16 MiB allocation up front.
//
// The protocol is: writable() hands out the next window to read into,
// advance(n) commits n bytes read, and next() drains decoded frames until it
// reports done. It is not safe for concurrent use; one assembler belongs to
// one connection on one event loop.
type frameAssembler struct {
	pool *pool.Pool
	st   *wire.DecodeState

	slab       *pool.Buf // staging; assembler holds one reference
	start, end int       // unparsed window within the slab

	bodyLen int // current frame's body length; -1 while reading the header

	fill  *pool.Buf // direct-fill target for bodies > staging but <= MaxSlab
	big   []byte    // grow-as-bytes-arrive fill for bodies > MaxSlab
	fillN int       // bytes of body landed in fill/big so far

	// frameStart stamps the first byte of the frame in progress, driving the
	// reactor's mid-frame progress deadline (a trickled body must finish
	// within the per-leg budget, it cannot re-arm per byte). Zero when no
	// frame is in progress.
	frameStart time.Time

	frames int64 // total frames emitted (reactor metrics)
}

func newFrameAssembler(p *pool.Pool) *frameAssembler {
	return &frameAssembler{pool: p, st: wire.NewDecodeState(), bodyLen: -1}
}

// close releases the assembler's buffer references. Frames already emitted
// keep their own references and stay valid.
func (a *frameAssembler) close() {
	if a.slab != nil {
		a.slab.Release()
		a.slab = nil
	}
	if a.fill != nil {
		a.fill.Release()
		a.fill = nil
	}
	a.big = nil
}

// midFrame reports whether a frame is partially assembled, and when its
// first byte arrived.
func (a *frameAssembler) midFrame() (time.Time, bool) {
	return a.frameStart, !a.frameStart.IsZero()
}

// roll moves the unparsed residual into a fresh staging slab. Emitted frames
// keep the old slab alive through their own references; the assembler drops
// its one.
func (a *frameAssembler) roll() {
	old := a.slab
	residual := a.end - a.start
	a.slab = a.pool.Get(stagingSlabSize)
	if residual > 0 {
		copy(a.slab.B(), old.B()[a.start:a.end])
	}
	a.start, a.end = 0, residual
	old.Release()
}

// writable returns the window the caller should read stream bytes into.
// It never returns an empty slice.
func (a *frameAssembler) writable() []byte {
	if a.big != nil {
		if a.fillN == len(a.big) {
			// Grow only as bytes arrive: double up to the claimed size.
			grown := make([]byte, min(2*len(a.big), a.bodyLen))
			copy(grown, a.big[:a.fillN])
			a.big = grown
		}
		return a.big[a.fillN:]
	}
	if a.fill != nil {
		return a.fill.B()[a.fillN:]
	}
	if a.slab == nil {
		a.slab = a.pool.Get(stagingSlabSize)
		a.start, a.end = 0, 0
	} else if a.end == stagingSlabSize {
		a.roll()
	}
	return a.slab.B()[a.end:]
}

// advance commits n bytes just read into the window writable returned.
func (a *frameAssembler) advance(n int) {
	if n <= 0 {
		return
	}
	if a.big != nil || a.fill != nil {
		a.fillN += n
		return
	}
	a.end += n
	if a.frameStart.IsZero() {
		a.frameStart = time.Now()
	}
}

// next decodes the next complete frame into fr. done=true means the stream
// is exhausted for now (read more bytes); otherwise fr is valid and body,
// when non-nil, is a buffer reference the consumer must Release once the
// frame's payload is no longer in use (body==nil frames either borrow only
// the assembler's scratch or own plain memory — nothing to release). fr is
// invalidated by the following next() call on this assembler.
func (a *frameAssembler) next(fr *frame) (body *pool.Buf, done bool, err error) {
	for {
		// Direct-fill modes: the body is accumulating outside the slab.
		if a.fill != nil {
			if a.fillN < a.bodyLen {
				return nil, true, nil
			}
			f := a.fill
			a.fill, a.fillN, a.bodyLen = nil, 0, -1
			a.frameStart = time.Time{}
			if err := wire.UnmarshalFrameBorrow(f.B(), fr, a.st); err != nil {
				f.Release()
				return nil, false, err
			}
			a.frames++
			return f, false, nil
		}
		if a.big != nil {
			if a.fillN < a.bodyLen {
				return nil, true, nil
			}
			b := a.big[:a.bodyLen]
			a.big, a.fillN, a.bodyLen = nil, 0, -1
			a.frameStart = time.Time{}
			// Oversized bodies are one-shot plain allocations: the frame owns
			// the memory outright (the GC keeps it alive through the payload),
			// so there is no reference to hand the consumer.
			if err := wire.UnmarshalFrameBorrow(b, fr, a.st); err != nil {
				return nil, false, err
			}
			a.frames++
			return nil, false, nil
		}

		residual := a.end - a.start
		if a.bodyLen < 0 {
			if residual == 0 {
				a.frameStart = time.Time{}
				return nil, true, nil
			}
			if residual < 4 {
				return nil, true, nil
			}
			h := a.slab.B()[a.start:]
			n := int(h[0])<<24 | int(h[1])<<16 | int(h[2])<<8 | int(h[3])
			if n > wire.MaxFrameSize {
				return nil, false, wire.ErrFrameTooLarge
			}
			a.start += 4
			a.bodyLen = n
			residual -= 4
			if a.bodyLen > stagingSlabSize {
				// Too big to ever sit contiguously in staging: switch to a
				// direct fill, seeded with whatever body bytes already landed.
				take := min(residual, a.bodyLen)
				seed := a.slab.B()[a.start : a.start+take]
				if a.bodyLen <= pool.MaxSlab {
					a.fill = a.pool.Get(a.bodyLen)
					copy(a.fill.B(), seed)
				} else {
					a.big = make([]byte, max(len(seed), initialBigFill))
					copy(a.big, seed)
				}
				a.fillN = take
				a.start += take
				continue
			}
		}
		if residual < a.bodyLen {
			return nil, true, nil // in-slab frame still incomplete
		}
		// A whole frame is contiguous in the slab: decode in place and hand
		// the consumer a reference to the slab backing it.
		win := a.slab.B()[a.start : a.start+a.bodyLen]
		a.start += a.bodyLen
		a.bodyLen = -1
		if a.start == a.end {
			a.frameStart = time.Time{}
		} else {
			a.frameStart = time.Now() // next frame's bytes already arrived
		}
		if err := wire.UnmarshalFrameBorrow(win, fr, a.st); err != nil {
			return nil, false, err
		}
		a.slab.Retain(1)
		a.frames++
		return a.slab, false, nil
	}
}

// initialBigFill seeds the grow-as-bytes-arrive buffer for frames beyond the
// largest slab class.
const initialBigFill = 64 << 10

// assemblerInvariant is a debug helper used by tests.
func (a *frameAssembler) String() string {
	return fmt.Sprintf("assembler{start=%d end=%d bodyLen=%d fillN=%d}", a.start, a.end, a.bodyLen, a.fillN)
}
