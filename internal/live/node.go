package live

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/membership"
	"vsgm/internal/obs"
	"vsgm/internal/types"
	"vsgm/internal/wire"
	"vsgm/internal/wire/pool"
)

// ErrOverloaded is TrySend's fast-fail: a destination's credit window is
// exhausted or the memory budget is above its high watermark, so admitting
// the send would have to stall. Blocking Send returns it only when the node
// closes underneath a parked sender.
var ErrOverloaded = errors.New("live: overloaded (credit window or memory budget exhausted)")

// NodeConfig parameterizes a live GCS end-point.
type NodeConfig struct {
	// ID is the process identifier; required.
	ID types.ProcID
	// Addr is the TCP listen address; "127.0.0.1:0" picks an ephemeral
	// port (read it back with Addr).
	Addr string
	// Level selects the automaton layer; defaults to core.LevelGCS.
	Level core.Level
	// Forwarding selects the forwarding strategy; defaults to simple.
	Forwarding core.ForwardingStrategy
	// AutoBlock makes the end-point acknowledge block requests itself.
	AutoBlock bool
	// SmallSync enables the Section 5.2.4 optimization.
	SmallSync bool
	// MsgIDBase offsets diagnostic message identifiers.
	MsgIDBase int64
	// OnEvent receives the end-point's application events, serialized (one
	// at a time, in order).
	OnEvent func(core.Event)
	// OnSend observes successful sends synchronously at the send point,
	// before the message reaches the wire — so a send is reported before
	// any event it causes on ANY node, not just this one (cross-node trace
	// collectors rely on that ordering). Unlike OnEvent it runs on the
	// sending goroutine, concurrently with the event stream: observers
	// shared with OnEvent must do their own locking, and the callback must
	// not call back into the Node.
	OnSend func(types.AppMsg)
	// OnNotify observes membership notifications (start_change and view)
	// as they arrive from the node's server, serialized on the same ordered
	// stream as OnEvent — a notification is reported before any event it
	// caused. Spec harnesses feed EMStartChange/EMView from here.
	OnNotify func(membership.Notification)
	// OnLinkDown observes transport-link failures (broken connections and
	// failed dials), serialized on the event stream. The supervised
	// transport keeps retrying regardless; this is observability only.
	OnLinkDown func(peer types.ProcID, err error)
	// Observe, when set, receives every endpoint event synchronously under
	// the node's state lock, in exact automaton order, at the moment it is
	// produced. Together with OnSend's pre-wire report this gives trace
	// collectors an interleaving consistent with causality across nodes —
	// OnEvent's pump can report an event after a peer has already reacted
	// to its consequences. Observe does not participate in flow control
	// (credit is returned when the pump drains past OnEvent, not here).
	// The callback must be fast and must not call back into the Node.
	Observe func(core.Event)
	// ObserveNotify mirrors Observe for membership notifications: it runs
	// synchronously under the node's state lock, before the notification is
	// handed to the endpoint, so the record precedes any event it causes.
	ObserveNotify func(membership.Notification)
	// HomeServers, when non-empty, enables in-band attachment: the node
	// registers with HomeServers[0] through the attach protocol and fails
	// over down the list (wrapping around) when its home goes silent or its
	// link dies. Notifications from any server other than the current home
	// are ignored, so a stale previous home cannot corrupt the notification
	// stream. Empty keeps the legacy out-of-band mode (ServerNode.AddClient
	// plus notifications accepted from anyone).
	HomeServers []types.ProcID
	// AttachInterval paces the attach manager: attach requests (first
	// registration and keepalives) go out at this jittered period, and the
	// stuck-view probe counts in these ticks. Defaults to 1s.
	AttachInterval time.Duration
	// AttachTimeout is how long the home may stay silent (no attach ack)
	// before the node fails over to the next server in HomeServers.
	// Defaults to 4× AttachInterval.
	AttachTimeout time.Duration
	// Transport tunes the supervised transport (timeouts, backoff, queue
	// bounds); the zero value selects production defaults.
	Transport TransportConfig
	// SlowConsumerGrace is how long a peer may hold an outbound credit
	// window exhausted (with a sender waiting) before the node reports it
	// to its membership servers for eviction — overload degrades to a
	// smaller live view instead of a stalled group. Defaults to 10s;
	// negative disables reporting.
	SlowConsumerGrace time.Duration
	// MemHighWater, when positive, is the node's memory budget in bytes
	// over resident transport queues plus endpoint message buffers: above
	// it Send stalls (TrySend fails) until usage falls to MemLowWater
	// (default MemHighWater/2). Zero disables the budget.
	MemHighWater int64
	MemLowWater  int64
	// Obs, when set, is the metrics registry the node publishes into: its
	// counters become registered series labeled with the node id, and a
	// scrape-time collector contributes endpoint gauges and aggregated link
	// counters. On Close the node's sections are frozen in the registry
	// (Detach), so a scrape after shutdown still sees the final values. Nil
	// keeps the counters node-local (Stats still works).
	Obs *obs.Registry
	// Tracer, when set, records this end-point's reconfiguration timeline
	// (start_change → sync → view) via a core.ProtocolTrace hook.
	Tracer *obs.Tracer
}

// Node is a GCS end-point deployed as a concurrent process: inbound TCP
// connections feed the automaton, outbound multicasts are encoded once and
// fanned out through per-peer mailbox goroutines that batch their writes,
// and application events are dispatched serially to the configured callback.
type Node struct {
	id     types.ProcID
	fabric *fabric

	mu        sync.Mutex
	ep        *core.Endpoint
	unblocked *sync.Cond // signaled whenever endpoint state advances
	closed    bool

	// Flow-control policy and counters.
	slowGrace       time.Duration
	memHigh, memLow int64
	overloaded      atomic.Bool // budget hysteresis latch
	sendsBlocked    *obs.Counter
	sendsOverloaded *obs.Counter
	slowReports     *obs.Counter

	// obs is the registry the node's sections are registered in (nil when
	// unconfigured; the counters above still work as unregistered handles).
	obs *obs.Registry

	// ready gates inbound frames until the endpoint exists: the listener is
	// live before NewNode finishes wiring.
	ready  chan struct{}
	events *mailbox[func()]
	pump   sync.WaitGroup

	onEvent    func(core.Event)
	onNotify   func(membership.Notification)
	observe    func(core.Event)
	observeNtf func(membership.Notification)
	onLinkDown func(types.ProcID, error)

	// Attach/failover state, guarded by amu (a leaf lock: it may be taken
	// while holding mu, and no code path acquires mu while holding amu).
	amu           sync.Mutex
	homeList      []types.ProcID
	homeIdx       int
	home          types.ProcID
	epoch         int64
	lastAck time.Time
	// lastCID/lastVid are the node's identifier high-water marks: the
	// largest start-change id and view id it has accepted (from
	// notifications or attach acks). They ride every attach request as the
	// claim the server merges, and they floor the stale-notification
	// filter. lastSC is the id of the last start_change notification
	// actually accepted — the value the MBRSHP spec requires the next
	// view's startId entry to equal.
	lastCID types.StartChangeID
	lastVid types.ViewID
	lastSC  types.StartChangeID
	attaches      *obs.Counter
	failovers     *obs.Counter
	attachRetries *obs.Counter
	staleNotifies *obs.Counter
	syncProbes    *obs.Counter
	selfClamps    *obs.Counter

	attachInterval time.Duration
	attachTimeout  time.Duration
	mgrStop        chan struct{}
	mgrWG          sync.WaitGroup
	closeOnce      sync.Once
}

// liveTransport adapts the fabric to core.Transport.
type liveTransport struct {
	f *fabric
}

func (t liveTransport) Send(dests []types.ProcID, m types.WireMsg) {
	t.f.Send(dests, m)
}

func (t liveTransport) SetReliable(types.ProcSet) {
	// TCP never drops acknowledged stream data; the reliable-set contract
	// is vacuously met for connected peers, and disconnected peers already
	// lose their suffix when the connection breaks.
}

// NewNode starts a live end-point listening on cfg.Addr.
func NewNode(cfg NodeConfig) (*Node, error) {
	nodeLabel := obs.L("node", string(cfg.ID))
	n := &Node{
		id:             cfg.ID,
		ready:          make(chan struct{}),
		events:         newMailbox[func()](),
		onEvent:        cfg.OnEvent,
		onNotify:       cfg.OnNotify,
		observe:        cfg.Observe,
		observeNtf:     cfg.ObserveNotify,
		onLinkDown:     cfg.OnLinkDown,
		homeList:       append([]types.ProcID(nil), cfg.HomeServers...),
		attachInterval: cfg.AttachInterval,
		attachTimeout:  cfg.AttachTimeout,
		mgrStop:        make(chan struct{}),
		slowGrace:      cfg.SlowConsumerGrace,
		memHigh:        cfg.MemHighWater,
		memLow:         cfg.MemLowWater,
		obs:            cfg.Obs,

		attaches: cfg.Obs.Counter("vsgm_node_attaches_total",
			"Completed attachments to a home server (first and after failover).", nodeLabel),
		failovers: cfg.Obs.Counter("vsgm_node_failovers_total",
			"Home-server failovers (silent-home timeouts, broken links, evictions).", nodeLabel),
		attachRetries: cfg.Obs.Counter("vsgm_node_attach_retries_total",
			"Attach requests re-sent while courting an unresponsive server.", nodeLabel),
		staleNotifies: cfg.Obs.Counter("vsgm_node_stale_notifies_total",
			"Membership notifications dropped because they came from a server other than the current home.", nodeLabel),
		syncProbes: cfg.Obs.Counter("vsgm_node_sync_probes_total",
			"Watchdog sync resends fired for a wedged view change.", nodeLabel),
		selfClamps: cfg.Obs.Counter("vsgm_node_self_clamps_total",
			"Attach ticks that clamped impossible local identifier watermarks (client-side self-stabilization).", nodeLabel),
		sendsBlocked: cfg.Obs.Counter("vsgm_node_sends_blocked_total",
			"Sends that stalled on a flow-control gate (credit window, memory budget, or reconfiguration block).", nodeLabel),
		sendsOverloaded: cfg.Obs.Counter("vsgm_node_sends_overloaded_total",
			"Non-blocking sends refused with ErrOverloaded.", nodeLabel),
		slowReports: cfg.Obs.Counter("vsgm_node_slow_reports_total",
			"Slow-consumer complaints filed with the membership servers.", nodeLabel),
	}
	n.unblocked = sync.NewCond(&n.mu)
	if n.attachInterval <= 0 {
		n.attachInterval = time.Second
	}
	if n.attachTimeout <= 0 {
		n.attachTimeout = 4 * n.attachInterval
	}
	if n.slowGrace == 0 {
		n.slowGrace = 10 * time.Second
	}
	if n.memHigh > 0 && n.memLow <= 0 {
		n.memLow = n.memHigh / 2
	}
	if len(n.homeList) > 0 {
		n.epoch = 1
	}
	f, err := newFabricRef(cfg.ID, cfg.Addr, cfg.Transport, n.receiveRef, n.linkDown)
	if err != nil {
		return nil, err
	}
	n.fabric = f
	n.pump.Add(1)
	go func() {
		defer n.pump.Done()
		for {
			fn, ok := n.events.take()
			if !ok {
				return
			}
			fn()
		}
	}()
	coreCfg := core.Config{
		ID:         cfg.ID,
		Transport:  liveTransport{f: f},
		Level:      cfg.Level,
		Forwarding: cfg.Forwarding,
		AutoBlock:  cfg.AutoBlock,
		SmallSync:  cfg.SmallSync,
		MsgIDBase:  cfg.MsgIDBase,
		OnSend:     cfg.OnSend,
	}
	if cfg.Tracer != nil {
		coreCfg.Trace = cfg.Tracer.ForEndpoint(cfg.ID)
	}
	ep, err := core.NewEndpoint(coreCfg)
	if err != nil {
		close(n.ready) // unblock any early readers; they drop their frames
		f.Close()
		n.events.close()
		n.pump.Wait()
		return nil, err
	}
	n.mu.Lock()
	n.ep = ep
	n.mu.Unlock()
	close(n.ready)
	n.registerObs()
	n.startManager()
	return n, nil
}

// registerObs publishes the node's scrape-time sections into the registry:
// endpoint gauges and aggregated link counters as a collector, the full
// NodeStats snapshot as a status section. Both run only at scrape time; on
// Close the registry freezes their final evaluation (Detach), which is what
// lets a late stats print read a killed node safely.
func (n *Node) registerObs() {
	if n.obs == nil {
		return
	}
	nodeLabel := obs.L("node", string(n.id))
	n.obs.RegisterCollector("node/"+string(n.id), func() []obs.Sample {
		n.mu.Lock()
		var views, delivered, forwards int64
		var bufMsgs int
		var bufBytes int64
		if n.ep != nil {
			views = n.ep.ViewsInstalled()
			delivered = n.ep.MessagesDelivered()
			forwards = n.ep.ForwardsSent()
			bufMsgs = n.ep.BufferedMessages()
			bufBytes = n.ep.BufferedBytes()
		}
		n.mu.Unlock()
		overloaded := float64(0)
		if n.overloaded.Load() {
			overloaded = 1
		}
		samples := []obs.Sample{
			{Name: "vsgm_endpoint_views_installed_total", Kind: obs.KindCounter, Labels: []obs.Label{nodeLabel}, Value: float64(views)},
			{Name: "vsgm_endpoint_msgs_delivered_total", Kind: obs.KindCounter, Labels: []obs.Label{nodeLabel}, Value: float64(delivered)},
			{Name: "vsgm_endpoint_forwards_total", Kind: obs.KindCounter, Labels: []obs.Label{nodeLabel}, Value: float64(forwards)},
			{Name: "vsgm_endpoint_buffered_messages", Kind: obs.KindGauge, Labels: []obs.Label{nodeLabel}, Value: float64(bufMsgs)},
			{Name: "vsgm_endpoint_buffered_bytes", Kind: obs.KindGauge, Labels: []obs.Label{nodeLabel}, Value: float64(bufBytes)},
			{Name: "vsgm_node_mem_bytes", Kind: obs.KindGauge, Labels: []obs.Label{nodeLabel}, Value: float64(bufBytes + n.fabric.QueuedBytes())},
			{Name: "vsgm_node_overloaded", Kind: obs.KindGauge, Labels: []obs.Label{nodeLabel}, Value: overloaded},
		}
		samples = append(samples, linkSamples(nodeLabel, n.fabric.Stats())...)
		return append(samples, reactorSamples(nodeLabel, n.fabric)...)
	})
	n.obs.RegisterStatus("node/"+string(n.id), func() any { return n.Stats() })
	n.obs.SetHelp("vsgm_endpoint_views_installed_total", "Views delivered to the application.")
	n.obs.SetHelp("vsgm_endpoint_msgs_delivered_total", "Application messages delivered.")
	n.obs.SetHelp("vsgm_endpoint_forwards_total", "Forwarded message copies sent during reconfigurations.")
	n.obs.SetHelp("vsgm_endpoint_buffered_messages", "Application messages resident in the endpoint's buffers.")
	n.obs.SetHelp("vsgm_endpoint_buffered_bytes", "Payload bytes resident across the endpoint's message buffers.")
	n.obs.SetHelp("vsgm_node_mem_bytes", "Bytes governed by the memory budget: transport queues plus message buffers.")
	n.obs.SetHelp("vsgm_node_overloaded", "1 while the memory-budget hysteresis latch is shut.")
	n.obs.SetHelp("vsgm_reactor_enabled", "1 when the epoll reactor drives this process's transport, 0 on the goroutine-per-link engine.")
	n.obs.SetHelp("vsgm_reactor_wakeups_total", "Event-loop wakeups with at least one ready descriptor.")
	n.obs.SetHelp("vsgm_reactor_events_total", "Readiness events dispatched across all event loops (events/wakeups is the loop batching depth).")
	n.obs.SetHelp("vsgm_reactor_frames_in_total", "Frames decoded by the reactor receive path (frames/wakeups is frames per wakeup).")
	n.obs.SetHelp("vsgm_reactor_bytes_in_total", "Stream bytes read by the reactor receive path.")
	n.obs.SetHelp("vsgm_reactor_writes_total", "Coalesced write syscalls issued by the reactor.")
	n.obs.SetHelp("vsgm_pool_gets_total", "Buffer requests served by the transport slab pool.")
	n.obs.SetHelp("vsgm_pool_hits_total", "Pool requests satisfied from a free ring (hits/gets is the recycle ratio).")
	n.obs.SetHelp("vsgm_pool_misses_total", "Pool requests that had to allocate fresh slabs.")
	n.obs.SetHelp("vsgm_pool_outstanding", "Pooled buffers currently on loan; must return to zero at rest.")
}

// linkSamples aggregates per-peer LinkStats into process-level counters.
func linkSamples(owner obs.Label, links map[types.ProcID]LinkStats) []obs.Sample {
	var agg LinkStats
	for _, ls := range links {
		agg.Dials += ls.Dials
		agg.DialFailures += ls.DialFailures
		agg.Reconnects += ls.Reconnects
		agg.Retries += ls.Retries
		agg.FramesSent += ls.FramesSent
		agg.Flushes += ls.Flushes
		agg.WriteErrors += ls.WriteErrors
		agg.QueueDrops += ls.QueueDrops
		agg.ChaosDrops += ls.ChaosDrops
		agg.ChaosDups += ls.ChaosDups
		agg.CreditsConsumed += ls.CreditsConsumed
		agg.CreditsGranted += ls.CreditsGranted
		agg.CreditFrames += ls.CreditFrames
		agg.WindowExhausted += ls.WindowExhausted
		agg.HeartbeatsCoalesced += ls.HeartbeatsCoalesced
	}
	c := func(name string, v int64) obs.Sample {
		return obs.Sample{Name: name, Kind: obs.KindCounter, Labels: []obs.Label{owner}, Value: float64(v)}
	}
	return []obs.Sample{
		c("vsgm_link_dials_total", agg.Dials),
		c("vsgm_link_dial_failures_total", agg.DialFailures),
		c("vsgm_link_reconnects_total", agg.Reconnects),
		c("vsgm_link_retries_total", agg.Retries),
		c("vsgm_link_frames_sent_total", agg.FramesSent),
		c("vsgm_link_flushes_total", agg.Flushes),
		c("vsgm_link_write_errors_total", agg.WriteErrors),
		c("vsgm_link_queue_drops_total", agg.QueueDrops),
		c("vsgm_link_chaos_drops_total", agg.ChaosDrops),
		c("vsgm_link_chaos_dups_total", agg.ChaosDups),
		c("vsgm_link_credits_consumed_total", agg.CreditsConsumed),
		c("vsgm_link_credits_granted_total", agg.CreditsGranted),
		c("vsgm_link_credit_frames_total", agg.CreditFrames),
		c("vsgm_link_window_exhausted_total", agg.WindowExhausted),
		c("vsgm_link_heartbeats_coalesced_total", agg.HeartbeatsCoalesced),
	}
}

// reactorSamples exposes the transport engine's receive-path health: which
// engine is running, how busy the event loops are (frames per wakeup is
// frames_in/wakeups), and how the slab pool is performing (hit ratio is
// hits/gets; outstanding counts buffers currently on loan, which must drain
// to zero at rest — a plateau is a leak).
func reactorSamples(owner obs.Label, f *fabric) []obs.Sample {
	c := func(name string, kind obs.MetricKind, v float64) obs.Sample {
		return obs.Sample{Name: name, Kind: kind, Labels: []obs.Label{owner}, Value: v}
	}
	enabled := float64(0)
	if f.ReactorOn() {
		enabled = 1
	}
	ps := f.PoolStats()
	rs := &f.rstats
	return []obs.Sample{
		c("vsgm_reactor_enabled", obs.KindGauge, enabled),
		c("vsgm_reactor_wakeups_total", obs.KindCounter, float64(rs.wakeups.Load())),
		c("vsgm_reactor_events_total", obs.KindCounter, float64(rs.events.Load())),
		c("vsgm_reactor_frames_in_total", obs.KindCounter, float64(rs.framesIn.Load())),
		c("vsgm_reactor_bytes_in_total", obs.KindCounter, float64(rs.bytesIn.Load())),
		c("vsgm_reactor_writes_total", obs.KindCounter, float64(rs.writes.Load())),
		c("vsgm_pool_gets_total", obs.KindCounter, float64(ps.Gets)),
		c("vsgm_pool_hits_total", obs.KindCounter, float64(ps.Hits)),
		c("vsgm_pool_misses_total", obs.KindCounter, float64(ps.Misses)),
		c("vsgm_pool_outstanding", obs.KindGauge, float64(ps.Outstanding)),
	}
}

// startManager runs the node's periodic maintenance loop: attach requests
// and keepalives toward the home server, silent-home failover, and the
// stuck-view sync probe. The loop runs for every node — probing repairs
// lost sync messages regardless of how the node was registered — while the
// attach duties engage only when HomeServers is configured.
func (n *Node) startManager() {
	n.mgrWG.Add(1)
	go func() {
		defer n.mgrWG.Done()
		n.amu.Lock()
		n.lastAck = time.Now() // courting starts now, not at the epoch origin
		n.amu.Unlock()
		// First tick immediately: a node with a home list attaches one dial,
		// not one interval, after it starts.
		timer := time.NewTimer(0)
		defer timer.Stop()
		var (
			stuckCID   types.StartChangeID = -1
			stuckTicks int
		)
		for {
			select {
			case <-timer.C:
				n.attachTick(time.Now())
				stuckCID, stuckTicks = n.probeTick(stuckCID, stuckTicks)
				n.overloadTick(time.Now())
				timer.Reset(jitter(n.attachInterval))
			case <-n.mgrStop:
				return
			}
		}
	}()
}

// attachTick performs one round of attach maintenance: fail over if the
// home has been silent past the timeout, then (re)send an attach request to
// the current target — a keepalive when attached, a registration retry when
// not.
func (n *Node) attachTick(now time.Time) {
	n.amu.Lock()
	if len(n.homeList) == 0 {
		n.amu.Unlock()
		return
	}
	n.sanitizeSelfLocked()
	if now.Sub(n.lastAck) > n.attachTimeout {
		n.failoverLocked(now)
	}
	if n.home == "" && n.attaches.Value() > 0 {
		n.attachRetries.Inc()
	}
	target := n.homeList[n.homeIdx%len(n.homeList)]
	epoch := n.epoch
	cid, vid := n.lastCID, n.lastVid
	n.amu.Unlock()
	// The request carries the node's identifier high-water mark: the server
	// merges it into the registration, so even a home with cold state (a
	// resurrected store, an empty gossip cache) mints identifiers strictly
	// above everything this node has seen.
	n.fabric.SendAttach(target, wire.Attach{Kind: wire.AttachRequest, Client: n.id, Epoch: epoch, CID: cid, Vid: vid})
}

// sanitizeSelfLocked is the client half of self-stabilizing recovery: clamp
// local identifier watermarks no correct execution produces (negative,
// above the plausibility ceilings) back to values the attach protocol can
// re-float from. Without it, a node restored from — or scrambled into —
// arbitrary state would reject every legitimate notification forever: the
// acceptNotify filter only moves forward, and the server sanitizes an
// impossible claim down to zero, so the views it mints would sit below the
// node's poisoned floor. Merely-huge-but-possible watermarks are left
// alone — the claim carries them and the server mints above them, which is
// the ordinary re-float path. Callers hold amu.
func (n *Node) sanitizeSelfLocked() {
	rec, st := membership.SanitizeClaim(membership.ClientRecord{CID: n.lastCID, Vid: n.lastVid, Epoch: n.epoch})
	if st.Total() > 0 {
		n.lastCID, n.lastVid, n.epoch = rec.CID, rec.Vid, rec.Epoch
		n.selfClamps.Inc()
	}
	// lastSC is the id of the last accepted start_change, never above the
	// cid watermark; an impossible value here self-heals on the next accepted
	// start_change, but clamping it now spares one rejected view round.
	if n.lastSC > n.lastCID || n.lastSC < 0 {
		n.lastSC = n.lastCID
		n.selfClamps.Inc()
	}
}

// ScrambleIdentifiers overwrites the node's in-memory identifier watermarks
// (start-change cid, view id, last-accepted start-change) with the given —
// typically adversarially random — values. It is a chaos-testing hook, the
// client-side analogue of ServerNode.InjectRecords: the soak harness uses
// it to prove the attach claim, the notification filter, and the sync probe
// re-converge the node from arbitrary state.
func (n *Node) ScrambleIdentifiers(cid types.StartChangeID, vid types.ViewID, sc types.StartChangeID) {
	n.amu.Lock()
	defer n.amu.Unlock()
	n.lastCID, n.lastVid, n.lastSC = cid, vid, sc
}

// failoverLocked abandons the current target: a best-effort detach is sent
// to it (rescinding only our current epoch, so it cannot evict a future
// re-attach), and courting moves to the next server in the list under a
// fresh epoch. Callers hold amu.
func (n *Node) failoverLocked(now time.Time) {
	old := n.homeList[n.homeIdx%len(n.homeList)]
	oldEpoch := n.epoch
	n.homeIdx++
	n.epoch++
	n.home = ""
	n.lastAck = now
	n.failovers.Inc()
	n.fabric.SendAttach(old, wire.Attach{Kind: wire.AttachDetach, Client: n.id, Epoch: oldEpoch})
}

// probeTick watches for a wedged view change: a start_change that stays
// pending across consecutive ticks means sync messages were lost (either
// ours to a peer or a peer's to us), so resend ours as a probe — receivers
// answer a probe with their own latest sync, repairing both directions.
func (n *Node) probeTick(prevCID types.StartChangeID, prevTicks int) (types.StartChangeID, int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	sc, ok := n.ep.PendingStartChange()
	if !ok {
		return -1, 0
	}
	if sc.ID != prevCID {
		return sc.ID, 0
	}
	if prevTicks+1 < 2 {
		return prevCID, prevTicks + 1
	}
	if n.ep.ResendSync() {
		n.syncProbes.Inc()
	}
	n.dispatch(n.ep.TakeEvents())
	return prevCID, 0
}

// Addr returns the node's listen address (for the peer directory).
func (n *Node) Addr() string { return n.fabric.Addr() }

// ID returns the node's process identifier.
func (n *Node) ID() types.ProcID { return n.id }

// SetPeers installs the address directory (other clients and the
// membership servers).
func (n *Node) SetPeers(peers map[types.ProcID]string) { n.fabric.SetPeers(peers) }

// LinkStats snapshots the node's per-peer transport counters.
func (n *Node) LinkStats() map[types.ProcID]LinkStats { return n.fabric.Stats() }

// Chaos returns the node's fault-injection controller.
func (n *Node) Chaos() *Chaos { return n.fabric.Chaos() }

// linkDown relays a transport-link failure onto the serialized event
// stream, and — when the failed link is the home server's — fails over
// immediately instead of waiting out the silent-home timeout: a broken
// connection is positive evidence, so the next manager tick courts the next
// server in the list.
func (n *Node) linkDown(peer types.ProcID, err error) {
	n.amu.Lock()
	if len(n.homeList) > 0 && peer == n.home && n.home != "" {
		n.failoverLocked(time.Now())
	}
	n.amu.Unlock()
	if n.onLinkDown == nil {
		return
	}
	n.events.put(func() { n.onLinkDown(peer, err) })
}

// Send multicasts payload to the current view, stalling at the source
// instead of shedding downstream: it waits out an exhausted destination
// credit window, a memory budget above its high watermark, and the
// end-point's blocked phase during reconfiguration (retrying under the new
// view, so Self Delivery is preserved — an admitted send is enqueued in the
// automaton before Send returns). It returns ErrOverloaded only when the
// node closes underneath a parked sender.
func (n *Node) Send(payload []byte) (types.AppMsg, error) {
	return n.send(payload, true)
}

// TrySend is the non-blocking Send: it fails fast with ErrOverloaded when
// flow control or the memory budget would stall, and with core.ErrBlocked
// while the end-point is reconfiguring.
func (n *Node) TrySend(payload []byte) (types.AppMsg, error) {
	return n.send(payload, false)
}

func (n *Node) send(payload []byte, block bool) (types.AppMsg, error) {
	waited := false
	stall := func() {
		if !waited {
			waited = true
			n.sendsBlocked.Inc()
		}
	}
	for {
		// Gate 1: the memory budget. Watermark hysteresis: once usage
		// crosses high, senders stall until it falls back to low.
		for {
			gen := n.fabric.flowGeneration()
			if n.budgetOpen() {
				break
			}
			if !block {
				n.sendsOverloaded.Inc()
				return types.AppMsg{}, ErrOverloaded
			}
			stall()
			if !n.fabric.waitFlowChange(gen) {
				return types.AppMsg{}, ErrOverloaded
			}
		}
		// Gate 2: per-destination credit windows for the current view.
		// Checked before taking n.mu — credit arrives through fabric
		// goroutines that never need the endpoint lock, so a parked sender
		// cannot deadlock the node. On a shut window the blocking mode
		// waits one flow change and restarts the loop rather than parking
		// inside admitData: the wait may coincide with a view change (a
		// slow consumer getting evicted is the expected one), and the
		// retry re-resolves the destinations under the new view.
		gen := n.fabric.flowGeneration()
		n.mu.Lock()
		var dests []types.ProcID
		if n.ep != nil {
			dests = n.ep.CurrentOthers()
		}
		n.mu.Unlock()
		if err := n.fabric.admitData(dests, false); err != nil {
			if !block {
				n.sendsOverloaded.Inc()
				return types.AppMsg{}, err
			}
			stall()
			if !n.fabric.waitFlowChange(gen) {
				return types.AppMsg{}, ErrOverloaded
			}
			continue
		}
		// Gate 3: the automaton. ErrBlocked during a view change parks the
		// sender until endpoint state advances, then every gate re-runs
		// against the (possibly new) view.
		n.mu.Lock()
		m, err := n.ep.Send(payload)
		if err == core.ErrBlocked && block && !n.closed {
			stall()
			n.unblocked.Wait()
			n.mu.Unlock()
			continue
		}
		n.dispatch(n.ep.TakeEvents())
		n.mu.Unlock()
		return m, err
	}
}

// budgetOpen evaluates the watermark hysteresis: above MemHighWater the
// budget latches shut and reopens only at or below MemLowWater.
func (n *Node) budgetOpen() bool {
	if n.memHigh <= 0 {
		return true
	}
	usage := n.MemUsage()
	if n.overloaded.Load() {
		if usage > n.memLow {
			return false
		}
		n.overloaded.Store(false)
		return true
	}
	if usage < n.memHigh {
		return true
	}
	n.overloaded.Store(true)
	return false
}

// MemUsage returns the bytes governed by the memory budget: encoded frames
// resident in outbound transport queues plus application payload bytes held
// in the endpoint's message buffers.
func (n *Node) MemUsage() int64 {
	n.mu.Lock()
	var buffered int64
	if n.ep != nil {
		buffered = n.ep.BufferedBytes()
	}
	n.mu.Unlock()
	return buffered + n.fabric.QueuedBytes()
}

// overloadTick is the manager's flow-control round: re-advertise credit
// grants (healing credit frames lost to reconnects or injected faults),
// wake parked senders (the liveness backstop for the flow condvar), and
// file one complaint per peer that has held a window exhausted past the
// grace period. Complaints go to every configured membership server: a
// client laggard is evicted and banned by its home, a server laggard feeds
// the failure detector.
func (n *Node) overloadTick(now time.Time) {
	n.fabric.regrant()
	n.fabric.flowBroadcast()
	if n.slowGrace <= 0 {
		return
	}
	var targets []types.ProcID
	for _, p := range n.fabric.slowPeers(n.slowGrace, now) {
		n.slowReports.Inc()
		if targets == nil {
			n.amu.Lock()
			targets = append([]types.ProcID(nil), n.homeList...)
			n.amu.Unlock()
		}
		for _, s := range targets {
			if s == p {
				continue
			}
			n.fabric.SendAttach(s, wire.Attach{Kind: wire.AttachSuspect, Client: p})
		}
	}
}

// BlockOK acknowledges an outstanding block request.
func (n *Node) BlockOK() {
	n.mu.Lock()
	n.ep.BlockOK()
	n.dispatch(n.ep.TakeEvents())
	n.unblocked.Broadcast()
	n.mu.Unlock()
}

// CurrentView returns the view last delivered to the application.
func (n *Node) CurrentView() types.View {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ep.CurrentView()
}

// receiveRef is the zero-copy receive entry point: fr's payloads may alias
// body, a pooled network buffer this method owns. Processing is synchronous
// — everything the protocol retains is copied at its single retention point
// (msgBuf.set) — so the buffer is recycled as soon as receive returns.
func (n *Node) receiveRef(from types.ProcID, fr frame, body *pool.Buf) {
	n.receive(from, fr)
	if body != nil {
		body.Release()
	}
}

// receive handles one inbound frame from the fabric.
func (n *Node) receive(from types.ProcID, fr frame) {
	<-n.ready
	if fr.Attach != nil {
		n.handleAttach(from, *fr.Attach)
		return
	}
	if fr.Notify != nil && !n.acceptNotify(from, fr.Notify) {
		// In-band attach mode: only the current home server's notifications
		// feed the endpoint. A stale previous home (partitioned, not yet
		// evicted) may still think it serves us; its notifications would
		// violate the per-client monotonicity the home hand-off preserved.
		return
	}
	n.mu.Lock()
	if n.ep == nil {
		n.mu.Unlock()
		return
	}
	var consumedFrom types.ProcID
	switch {
	case fr.Notify != nil:
		if n.observeNtf != nil {
			n.observeNtf(*fr.Notify)
		}
		if n.onNotify != nil {
			cp := *fr.Notify
			n.events.put(func() { n.onNotify(cp) })
		}
		switch fr.Notify.Kind {
		case membership.NotifyStartChange:
			n.ep.HandleStartChange(fr.Notify.StartChange)
		case membership.NotifyView:
			n.ep.HandleView(fr.Notify.View)
		}
	case fr.Msg != nil:
		n.ep.HandleMessage(from, *fr.Msg)
		if fr.Msg.Kind == types.KindApp {
			consumedFrom = from
		}
	}
	n.dispatch(n.ep.TakeEvents())
	if consumedFrom != "" {
		// The consumed marker rides the serialized event mailbox behind
		// the events this frame caused, so credit returns to the sender
		// only after the local application has actually processed them —
		// that ordering is what makes the backpressure end to end.
		n.events.put(func() { n.fabric.consumedData(consumedFrom) })
	}
	n.unblocked.Broadcast()
	n.mu.Unlock()
}

// acceptNotify decides whether a notification from the given server may
// feed the endpoint, enforcing the client side of the MBRSHP discipline:
// only the current home is heard, start-change identifiers must strictly
// increase, and a view must carry an increasing id whose startId entry for
// this node equals the last accepted start_change. Anything else is the
// residue of a stale attempt — a previous home not yet evicted, or the
// current home's in-flight attempt from before this attachment — and is
// dropped, because the endpoint (and the spec) require a locally monotone
// stream. Accepted notifications advance the watermarks that ride the next
// attach request. Legacy mode (no home list) accepts everything.
func (n *Node) acceptNotify(from types.ProcID, ntf *membership.Notification) bool {
	n.amu.Lock()
	defer n.amu.Unlock()
	if len(n.homeList) == 0 {
		return true
	}
	if from != n.home {
		n.staleNotifies.Inc()
		return false
	}
	switch ntf.Kind {
	case membership.NotifyStartChange:
		if ntf.StartChange.ID <= n.lastCID {
			n.staleNotifies.Inc()
			return false
		}
		n.lastCID = ntf.StartChange.ID
		n.lastSC = ntf.StartChange.ID
	case membership.NotifyView:
		if ntf.View.ID <= n.lastVid || ntf.View.StartID[n.id] != n.lastSC {
			n.staleNotifies.Inc()
			return false
		}
		n.lastVid = ntf.View.ID
	}
	return true
}

// handleAttach processes an attach-protocol frame from a server. An ack
// from the currently courted target completes (or refreshes) the
// attachment; it is handled synchronously on the receive path so that the
// home is set before the notifications that follow it on the same FIFO
// link are filtered. An ack may carry a higher epoch than ours: the server
// remembers an earlier incarnation of this client (Section 8 recovery), and
// adopting its epoch resumes that identity. A detach from the current home
// is an eviction; fail over.
func (n *Node) handleAttach(from types.ProcID, a wire.Attach) {
	n.amu.Lock()
	defer n.amu.Unlock()
	if len(n.homeList) == 0 {
		return
	}
	switch a.Kind {
	case wire.AttachAck:
		if from != n.homeList[n.homeIdx%len(n.homeList)] || a.Epoch < n.epoch {
			return // stale ack from an abandoned target or epoch
		}
		n.epoch = a.Epoch
		if n.home != from {
			n.home = from
			n.attaches.Inc()
		}
		n.lastAck = time.Now()
		// Max-merge, never overwrite: an ack from a home with stale state
		// must not lower the watermarks the notification filter enforces.
		if a.CID > n.lastCID {
			n.lastCID = a.CID
		}
		if a.Vid > n.lastVid {
			n.lastVid = a.Vid
		}
	case wire.AttachDetach:
		if from == n.home && n.home != "" {
			n.failoverLocked(time.Now())
		}
	}
}

// Home returns the server the node is currently attached to ("" while
// detached or in legacy mode).
func (n *Node) Home() types.ProcID {
	n.amu.Lock()
	defer n.amu.Unlock()
	return n.home
}

// dispatch hands events to the pump goroutine (and to the synchronous
// observer first). It must be called while holding n.mu so that the global
// event order matches the automaton's.
func (n *Node) dispatch(evs []core.Event) {
	for _, ev := range evs {
		if n.observe != nil {
			n.observe(ev)
		}
		if n.onEvent != nil {
			ev := ev
			n.events.put(func() { n.onEvent(ev) })
		}
	}
}

// NodeStats is a JSON-able snapshot of a node's counters.
type NodeStats struct {
	ID            types.ProcID               `json:"id"`
	Home          types.ProcID               `json:"home"`
	Epoch         int64                      `json:"epoch"`
	LastCID       types.StartChangeID        `json:"last_cid"`
	LastVid       types.ViewID               `json:"last_vid"`
	Attaches      int64                      `json:"attaches"`
	Failovers     int64                      `json:"failovers"`
	AttachRetries int64                      `json:"attach_retries"`
	StaleNotifies int64                      `json:"stale_notifies"`
	SyncProbes    int64                      `json:"sync_probes"`
	SelfClamps    int64                      `json:"self_clamps"`
	Links         map[types.ProcID]LinkStats `json:"links"`

	// Flow-control counters: sends that stalled on any gate, non-blocking
	// sends refused, slow-consumer complaints filed, current budgeted
	// bytes (transport queues + message buffers), and whether the memory
	// budget is latched shut.
	SendsBlocked    int64 `json:"sends_blocked"`
	SendsOverloaded int64 `json:"sends_overloaded"`
	SlowReports     int64 `json:"slow_reports"`
	MemBytes        int64 `json:"mem_bytes"`
	Overloaded      bool  `json:"overloaded"`
}

// Stats snapshots the node's attach, failover, probe, and per-link
// transport counters.
func (n *Node) Stats() NodeStats {
	n.amu.Lock()
	s := NodeStats{
		ID:            n.id,
		Home:          n.home,
		Epoch:         n.epoch,
		LastCID:       n.lastCID,
		LastVid:       n.lastVid,
		Attaches:      n.attaches.Value(),
		Failovers:     n.failovers.Value(),
		AttachRetries: n.attachRetries.Value(),
		StaleNotifies: n.staleNotifies.Value(),
		SyncProbes:    n.syncProbes.Value(),
		SelfClamps:    n.selfClamps.Value(),
	}
	n.amu.Unlock()
	s.Links = n.fabric.Stats()
	s.SendsBlocked = n.sendsBlocked.Value()
	s.SendsOverloaded = n.sendsOverloaded.Value()
	s.SlowReports = n.slowReports.Value()
	s.MemBytes = n.MemUsage()
	s.Overloaded = n.overloaded.Load()
	return s
}

// Close shuts the node down and joins its goroutines. Senders parked on
// any flow-control gate are released (with ErrOverloaded or ErrBlocked)
// before the transport and event pump join. The node's registry sections are
// frozen last, so post-close scrapes (and the deployment's final stats
// print) read the shutdown-complete values without touching the node again.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.mgrStop)
		n.mgrWG.Wait()
		n.mu.Lock()
		n.closed = true
		n.unblocked.Broadcast()
		n.mu.Unlock()
		n.fabric.Close()
		n.events.close()
		n.pump.Wait()
		n.obs.Detach("node/" + string(n.id))
	})
}
