package live

import (
	"sync"

	"vsgm/internal/core"
	"vsgm/internal/membership"
	"vsgm/internal/types"
)

// NodeConfig parameterizes a live GCS end-point.
type NodeConfig struct {
	// ID is the process identifier; required.
	ID types.ProcID
	// Addr is the TCP listen address; "127.0.0.1:0" picks an ephemeral
	// port (read it back with Addr).
	Addr string
	// Level selects the automaton layer; defaults to core.LevelGCS.
	Level core.Level
	// Forwarding selects the forwarding strategy; defaults to simple.
	Forwarding core.ForwardingStrategy
	// AutoBlock makes the end-point acknowledge block requests itself.
	AutoBlock bool
	// SmallSync enables the Section 5.2.4 optimization.
	SmallSync bool
	// MsgIDBase offsets diagnostic message identifiers.
	MsgIDBase int64
	// OnEvent receives the end-point's application events, serialized (one
	// at a time, in order).
	OnEvent func(core.Event)
	// OnSend observes successful sends, serialized on the same ordered
	// stream as OnEvent — a send is reported before any event it caused
	// (trace collectors rely on this ordering).
	OnSend func(types.AppMsg)
	// OnNotify observes membership notifications (start_change and view)
	// as they arrive from the node's server, serialized on the same ordered
	// stream as OnEvent — a notification is reported before any event it
	// caused. Spec harnesses feed EMStartChange/EMView from here.
	OnNotify func(membership.Notification)
	// OnLinkDown observes transport-link failures (broken connections and
	// failed dials), serialized on the event stream. The supervised
	// transport keeps retrying regardless; this is observability only.
	OnLinkDown func(peer types.ProcID, err error)
	// Transport tunes the supervised transport (timeouts, backoff, queue
	// bounds); the zero value selects production defaults.
	Transport TransportConfig
}

// Node is a GCS end-point deployed as a concurrent process: inbound TCP
// connections feed the automaton, outbound multicasts are encoded once and
// fanned out through per-peer mailbox goroutines that batch their writes,
// and application events are dispatched serially to the configured callback.
type Node struct {
	id     types.ProcID
	fabric *fabric

	mu sync.Mutex
	ep *core.Endpoint

	// ready gates inbound frames until the endpoint exists: the listener is
	// live before NewNode finishes wiring.
	ready  chan struct{}
	events *mailbox[func()]
	pump   sync.WaitGroup

	onEvent    func(core.Event)
	onSend     func(types.AppMsg)
	onNotify   func(membership.Notification)
	onLinkDown func(types.ProcID, error)
}

// liveTransport adapts the fabric to core.Transport.
type liveTransport struct {
	f *fabric
}

func (t liveTransport) Send(dests []types.ProcID, m types.WireMsg) {
	t.f.Send(dests, m)
}

func (t liveTransport) SetReliable(types.ProcSet) {
	// TCP never drops acknowledged stream data; the reliable-set contract
	// is vacuously met for connected peers, and disconnected peers already
	// lose their suffix when the connection breaks.
}

// NewNode starts a live end-point listening on cfg.Addr.
func NewNode(cfg NodeConfig) (*Node, error) {
	n := &Node{
		id:         cfg.ID,
		ready:      make(chan struct{}),
		events:     newMailbox[func()](),
		onEvent:    cfg.OnEvent,
		onSend:     cfg.OnSend,
		onNotify:   cfg.OnNotify,
		onLinkDown: cfg.OnLinkDown,
	}
	f, err := newFabric(cfg.ID, cfg.Addr, cfg.Transport, n.receive, n.linkDown)
	if err != nil {
		return nil, err
	}
	n.fabric = f
	n.pump.Add(1)
	go func() {
		defer n.pump.Done()
		for {
			fn, ok := n.events.take()
			if !ok {
				return
			}
			fn()
		}
	}()
	ep, err := core.NewEndpoint(core.Config{
		ID:         cfg.ID,
		Transport:  liveTransport{f: f},
		Level:      cfg.Level,
		Forwarding: cfg.Forwarding,
		AutoBlock:  cfg.AutoBlock,
		SmallSync:  cfg.SmallSync,
		MsgIDBase:  cfg.MsgIDBase,
	})
	if err != nil {
		close(n.ready) // unblock any early readers; they drop their frames
		f.Close()
		n.events.close()
		n.pump.Wait()
		return nil, err
	}
	n.mu.Lock()
	n.ep = ep
	n.mu.Unlock()
	close(n.ready)
	return n, nil
}

// Addr returns the node's listen address (for the peer directory).
func (n *Node) Addr() string { return n.fabric.Addr() }

// ID returns the node's process identifier.
func (n *Node) ID() types.ProcID { return n.id }

// SetPeers installs the address directory (other clients and the
// membership servers).
func (n *Node) SetPeers(peers map[types.ProcID]string) { n.fabric.SetPeers(peers) }

// LinkStats snapshots the node's per-peer transport counters.
func (n *Node) LinkStats() map[types.ProcID]LinkStats { return n.fabric.Stats() }

// Chaos returns the node's fault-injection controller.
func (n *Node) Chaos() *Chaos { return n.fabric.Chaos() }

// linkDown relays a transport-link failure onto the serialized event
// stream. The supervised transport is already redialing; this only makes
// the failure observable.
func (n *Node) linkDown(peer types.ProcID, err error) {
	if n.onLinkDown == nil {
		return
	}
	n.events.put(func() { n.onLinkDown(peer, err) })
}

// Send multicasts payload to the current view.
func (n *Node) Send(payload []byte) (types.AppMsg, error) {
	n.mu.Lock()
	m, err := n.ep.Send(payload)
	if err == nil && n.onSend != nil {
		msg := m
		n.events.put(func() { n.onSend(msg) })
	}
	n.dispatch(n.ep.TakeEvents())
	n.mu.Unlock()
	return m, err
}

// BlockOK acknowledges an outstanding block request.
func (n *Node) BlockOK() {
	n.mu.Lock()
	n.ep.BlockOK()
	n.dispatch(n.ep.TakeEvents())
	n.mu.Unlock()
}

// CurrentView returns the view last delivered to the application.
func (n *Node) CurrentView() types.View {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ep.CurrentView()
}

// receive handles one inbound frame from the fabric.
func (n *Node) receive(from types.ProcID, fr frame) {
	<-n.ready
	n.mu.Lock()
	if n.ep == nil {
		n.mu.Unlock()
		return
	}
	switch {
	case fr.Notify != nil:
		if n.onNotify != nil {
			cp := *fr.Notify
			n.events.put(func() { n.onNotify(cp) })
		}
		switch fr.Notify.Kind {
		case membership.NotifyStartChange:
			n.ep.HandleStartChange(fr.Notify.StartChange)
		case membership.NotifyView:
			n.ep.HandleView(fr.Notify.View)
		}
	case fr.Msg != nil:
		n.ep.HandleMessage(from, *fr.Msg)
	}
	n.dispatch(n.ep.TakeEvents())
	n.mu.Unlock()
}

// dispatch hands events to the pump goroutine. It must be called while
// holding n.mu so that the global event order matches the automaton's.
func (n *Node) dispatch(evs []core.Event) {
	if n.onEvent == nil {
		return
	}
	for _, ev := range evs {
		ev := ev
		n.events.put(func() { n.onEvent(ev) })
	}
}

// Close shuts the node down and joins its goroutines.
func (n *Node) Close() {
	n.fabric.Close()
	n.events.close()
	n.pump.Wait()
}
