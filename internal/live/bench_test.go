package live

// Transport data-path benchmarks. BenchmarkFabricBroadcast measures one
// multicast through the real fabric — encode, fan-out across per-peer
// queues, supervised writers, TCP sockets — against raw discard sinks, so
// the numbers isolate the sender path. Each fan-out runs twice: the
// encode-once coalescing path the fabric ships, and a baseline replicating
// the pre-change design (one marshal per destination, one flush per frame)
// for BENCH_*.json tracking of the win.

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"vsgm/internal/types"
	"vsgm/internal/wire"
	"vsgm/internal/wire/pool"
)

// startSink runs a raw TCP server that accepts connections and discards
// every byte: the cheapest possible peer, so sender-side cost dominates.
func startSink(b *testing.B) (addr string, closeFn func()) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				select {
				case <-done:
					return
				default:
				}
				io.Copy(io.Discard, conn)
			}()
		}
	}()
	return ln.Addr().String(), func() { close(done); ln.Close() }
}

// sendEncodePerLink replicates the pre-coalescing transmit path: one
// marshal per destination instead of one shared encoding.
func sendEncodePerLink(f *fabric, dests []types.ProcID, m types.WireMsg) {
	for _, q := range dests {
		fb, err := wire.EncodeFrame(frame{From: f.id, Msg: &m})
		if err != nil {
			return
		}
		if !f.outbox(q).mb.put(fb) {
			fb.Release()
		}
	}
}

func benchBroadcast(b *testing.B, fanout int, perLink bool) {
	cfg := TransportConfig{
		DialTimeout: 2 * time.Second, WriteTimeout: 5 * time.Second,
		BackoffBase: 5 * time.Millisecond, BackoffMax: 100 * time.Millisecond,
		QueueCap: 1 << 16,
	}
	if perLink {
		// The legacy shape also flushed after every frame.
		cfg.MaxBatchFrames = 1
		cfg.MaxBatchBytes = 1
	}
	dests := make([]types.ProcID, fanout)
	dir := make(map[types.ProcID]string, fanout)
	for i := range dests {
		q := types.ProcID(fmt.Sprintf("sink%02d", i))
		addr, closeSink := startSink(b)
		defer closeSink()
		dests[i] = q
		dir[q] = addr
	}
	fa, err := newFabric("bench", "127.0.0.1:0", cfg, func(types.ProcID, frame) {}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer fa.Close()
	fa.SetPeers(dir)

	msg := types.WireMsg{
		Kind: types.KindApp,
		App:  types.AppMsg{ID: 0, Payload: make([]byte, 64)},
		HistView: types.NewView(3, types.NewProcSet("p0", "p1", "p2", "p3"),
			map[types.ProcID]types.StartChangeID{"p0": 1, "p1": 1, "p2": 1, "p3": 1}),
		HistIndex: 7,
	}

	// Drain-wait: every link has put target frames on the wire, none shed.
	drained := func(target int64, deadline time.Duration) bool {
		limit := time.Now().Add(deadline)
		for time.Now().Before(limit) {
			ok := true
			for _, s := range fa.Stats() {
				if s.QueueDrops > 0 {
					b.Fatalf("bounded queue shed load mid-benchmark: %+v", s)
				}
				if s.FramesSent < target {
					ok = false
				}
			}
			if ok {
				return true
			}
			time.Sleep(200 * time.Microsecond)
		}
		return false
	}

	// Prime the links so dial/backoff stays out of the timed region.
	fa.Send(dests, msg)
	if !drained(1, 10*time.Second) {
		b.Fatal("links never came up")
	}

	const window = 1 << 14 // backpressure: bound the in-flight backlog
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.App.ID = int64(i + 1)
		if perLink {
			sendEncodePerLink(fa, dests, msg)
		} else {
			fa.Send(dests, msg)
		}
		if i%window == window-1 {
			if !drained(int64(i+2-window), 30*time.Second) {
				b.Fatal("writers fell too far behind")
			}
		}
	}
	if !drained(int64(b.N+1), 60*time.Second) {
		b.Fatal("benchmark frames never fully drained")
	}
	b.StopTimer()
	b.SetBytes(int64(fanout * len(msg.App.Payload)))
}

// BenchmarkFabricBroadcast: one multicast to N destinations through the
// live transport. "encode-once" is the shipping path (single marshal,
// shared pooled buffer, coalesced flushes); "encode-per-link" replicates
// the pre-change path (marshal per destination, flush per frame).
func BenchmarkFabricBroadcast(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("fanout-%d/encode-once", n), func(b *testing.B) {
			benchBroadcast(b, n, false)
		})
		b.Run(fmt.Sprintf("fanout-%d/encode-per-link", n), func(b *testing.B) {
			benchBroadcast(b, n, true)
		})
	}
}

// BenchmarkSendUnderBackpressure drives the full credit cycle: a sender
// with a small window blocks in admitData whenever the window shuts, the
// receiver marks every arriving data frame consumed, and the resulting
// credit frames reopen the window and wake the parked sender. This is the
// steady state of a loaded deployment — send, park, credit, wake — so the
// per-op allocation count is enforced with a hard ceiling: an allocation
// regression on this path multiplies across every message a busy cluster
// carries.
func BenchmarkSendUnderBackpressure(b *testing.B) {
	// Whole-process allocs per op (sender + receiver + credit return).
	// The path currently costs ~8; the ceiling leaves headroom for noise
	// but fails the build on anything resembling a per-frame copy creep.
	const allocCeiling = 40

	cfg := TransportConfig{
		DialTimeout: 2 * time.Second, WriteTimeout: 5 * time.Second,
		BackoffBase: 5 * time.Millisecond, BackoffMax: 100 * time.Millisecond,
		Window: 8,
	}
	var got atomic.Int64
	var fb *fabric
	recv := func(from types.ProcID, fr frame) {
		if fr.Msg != nil && fr.Msg.Kind == types.KindApp {
			got.Add(1)
			fb.consumedData(from)
		}
	}
	fa, err := newFabric("a", "127.0.0.1:0", cfg, func(types.ProcID, frame) {}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer fa.Close()
	fb, err = newFabric("b", "127.0.0.1:0", cfg, recv, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer fb.Close()
	fa.SetPeers(map[types.ProcID]string{"b": fb.Addr()})
	fb.SetPeers(map[types.ProcID]string{"a": fa.Addr()})

	dests := []types.ProcID{"b"}
	msg := types.WireMsg{Kind: types.KindApp, App: types.AppMsg{Payload: make([]byte, 64)}}

	// Prime the links (dial, handshake) outside the timed region.
	if err := fa.admitData(dests, true); err != nil {
		b.Fatal(err)
	}
	fa.Send(dests, msg)
	deadline := time.Now().Add(10 * time.Second)
	for got.Load() < 1 {
		if time.Now().After(deadline) {
			b.Fatal("links never came up")
		}
		time.Sleep(200 * time.Microsecond)
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.App.ID = int64(i + 1)
		if err := fa.admitData(dests, true); err != nil {
			b.Fatal(err)
		}
		fa.Send(dests, msg)
	}
	// Drain inside the timed region: the credit returns are part of the op.
	target := int64(b.N + 1)
	deadline = time.Now().Add(60 * time.Second)
	for got.Load() < target {
		if time.Now().After(deadline) {
			b.Fatalf("only %d of %d frames consumed", got.Load(), target)
		}
		time.Sleep(200 * time.Microsecond)
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	b.SetBytes(int64(len(msg.App.Payload)))

	if s := fa.Stats()["b"]; s.QueueDrops > 0 || s.ChaosDrops > 0 {
		b.Fatalf("backpressured sender shed frames: %+v", s)
	}
	if perOp := float64(after.Mallocs-before.Mallocs) / float64(b.N); perOp > allocCeiling {
		b.Fatalf("allocation ceiling breached: %.1f allocs/op > %d", perOp, allocCeiling)
	}
}

// benchLinkScale measures the receive path at connection scale: `links` raw
// TCP peers complete handshakes against one fabric and stay attached, then a
// small band of hot senders blasts pre-encoded frames while the rest sit
// idle — the many-idle/few-hot shape of a large group. The op is one frame
// received. Run with -bench LinkScale under both engines (the engine is
// pinned per sub-benchmark, not by VSGM_REACTOR) to compare frames/sec and
// resident goroutines: the goroutine engine pays one reader goroutine per
// link; the reactor drives them all from a fixed loop pool.
func benchLinkScale(b *testing.B, links int, mode ReactorMode) {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err == nil && rl.Cur < rl.Max {
		rl.Cur = rl.Max
		syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
		syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
	if need := uint64(2*links + 256); rl.Cur < need {
		b.Skipf("%d links need ~%d fds, RLIMIT_NOFILE allows %d", links, need, rl.Cur)
	}
	if mode == ReactorOn && !reactorSupported {
		b.Skip("no reactor on this platform")
	}

	var frames atomic.Int64
	rx, err := newFabricRef("rx", "127.0.0.1:0",
		TransportConfig{Reactor: mode, QueueCap: 1 << 16},
		func(_ types.ProcID, fr frame, body *pool.Buf) {
			if fr.Msg != nil && fr.Msg.Kind == types.KindApp {
				frames.Add(1)
			}
			if body != nil {
				body.Release()
			}
		}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer rx.Close()
	if on := rx.ReactorOn(); on != (mode == ReactorOn) {
		b.Fatalf("engine not pinned: ReactorOn=%v for mode %v", on, mode)
	}

	// Attach every link: dial and handshake concurrently, then leave the
	// connection open (and silent) for the duration.
	conns := make([]net.Conn, links)
	var dialWG sync.WaitGroup
	dialErr := make(chan error, links)
	sem := make(chan struct{}, 64)
	for i := range conns {
		dialWG.Add(1)
		go func(i int) {
			defer dialWG.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			conn, err := net.Dial("tcp", rx.Addr())
			if err != nil {
				dialErr <- err
				return
			}
			hello, err := wire.EncodeFrame(frame{From: types.ProcID(fmt.Sprintf("peer%05d", i))})
			if err != nil {
				dialErr <- err
				conn.Close()
				return
			}
			hb := hello.Bytes()
			buf := append([]byte{byte(len(hb) >> 24), byte(len(hb) >> 16), byte(len(hb) >> 8), byte(len(hb))}, hb...)
			_, err = conn.Write(buf)
			hello.Release()
			if err != nil {
				dialErr <- err
				conn.Close()
				return
			}
			conns[i] = conn
		}(i)
	}
	dialWG.Wait()
	select {
	case err := <-dialErr:
		b.Fatalf("attaching %d links: %v", links, err)
	default:
	}
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()

	// Pre-encode one frame and a write batch of them.
	m := types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: 1, Payload: make([]byte, 128)}}
	fb, err := wire.EncodeFrame(frame{From: "peer00000", Msg: &m})
	if err != nil {
		b.Fatal(err)
	}
	body := fb.Bytes()
	one := append([]byte{byte(len(body) >> 24), byte(len(body) >> 16), byte(len(body) >> 8), byte(len(body))}, body...)
	fb.Release()
	const batchFrames = 64
	batch := bytes.Repeat(one, batchFrames)

	hot := min(32, links)
	perSender := make([]int, hot)
	baseline := frames.Load()
	goroutines := runtime.NumGoroutine()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ReportAllocs()
	b.ResetTimer()
	for j := range perSender {
		perSender[j] = b.N / hot
		if j < b.N%hot {
			perSender[j]++
		}
	}
	var sendWG sync.WaitGroup
	for j := 0; j < hot; j++ {
		n := perSender[j]
		if n == 0 {
			continue
		}
		sendWG.Add(1)
		go func(conn net.Conn, n int) {
			defer sendWG.Done()
			for n >= batchFrames {
				if _, err := conn.Write(batch); err != nil {
					b.Errorf("hot sender: %v", err)
					return
				}
				n -= batchFrames
			}
			for ; n > 0; n-- {
				if _, err := conn.Write(one); err != nil {
					b.Errorf("hot sender: %v", err)
					return
				}
			}
		}(conns[j], n)
	}
	sendWG.Wait()
	target := baseline + int64(b.N)
	deadline := time.Now().Add(120 * time.Second)
	for frames.Load() < target {
		if time.Now().After(deadline) {
			b.Fatalf("received %d of %d frames across %d links", frames.Load()-baseline, b.N, links)
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	b.SetBytes(int64(len(m.App.Payload)))
	b.ReportMetric(float64(goroutines), "goroutines")
	ps := rx.PoolStats()
	if ps.Gets > 0 {
		b.ReportMetric(float64(ps.Hits)/float64(ps.Gets), "pool-hit-ratio")
	}
	// Zero-copy regression guard (make bench-smoke): the receive path must
	// stay at ~1 alloc per frame — a payload copy sneaking back in shows up
	// immediately. Enforced only at steady state, where setup allocations
	// (slab misses, goroutine stacks) have amortized away.
	const receiveAllocCeiling = 2
	if b.N >= 50_000 {
		if perOp := float64(after.Mallocs-before.Mallocs) / float64(b.N); perOp > receiveAllocCeiling {
			b.Fatalf("receive-path allocation ceiling breached: %.2f allocs/op > %d", perOp, receiveAllocCeiling)
		}
	}
}

// BenchmarkLinkScale: frames received per second with 1k and 10k attached
// links, goroutine-per-link engine vs epoll reactor. The 10k point needs
// ~20k file descriptors and skips (with the required rlimit in the message)
// on hosts that cannot hold both socket ends.
func BenchmarkLinkScale(b *testing.B) {
	for _, links := range []int{1000, 10000} {
		for _, eng := range []struct {
			name string
			mode ReactorMode
		}{{"goroutine", ReactorOff}, {"reactor", ReactorOn}} {
			b.Run(fmt.Sprintf("links=%d/%s", links, eng.name), func(b *testing.B) {
				benchLinkScale(b, links, eng.mode)
			})
		}
	}
}
