package live

// Transport data-path benchmarks. BenchmarkFabricBroadcast measures one
// multicast through the real fabric — encode, fan-out across per-peer
// queues, supervised writers, TCP sockets — against raw discard sinks, so
// the numbers isolate the sender path. Each fan-out runs twice: the
// encode-once coalescing path the fabric ships, and a baseline replicating
// the pre-change design (one marshal per destination, one flush per frame)
// for BENCH_*.json tracking of the win.

import (
	"fmt"
	"io"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"vsgm/internal/types"
	"vsgm/internal/wire"
)

// startSink runs a raw TCP server that accepts connections and discards
// every byte: the cheapest possible peer, so sender-side cost dominates.
func startSink(b *testing.B) (addr string, closeFn func()) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				select {
				case <-done:
					return
				default:
				}
				io.Copy(io.Discard, conn)
			}()
		}
	}()
	return ln.Addr().String(), func() { close(done); ln.Close() }
}

// sendEncodePerLink replicates the pre-coalescing transmit path: one
// marshal per destination instead of one shared encoding.
func sendEncodePerLink(f *fabric, dests []types.ProcID, m types.WireMsg) {
	for _, q := range dests {
		fb, err := wire.EncodeFrame(frame{From: f.id, Msg: &m})
		if err != nil {
			return
		}
		if !f.outbox(q).mb.put(fb) {
			fb.Release()
		}
	}
}

func benchBroadcast(b *testing.B, fanout int, perLink bool) {
	cfg := TransportConfig{
		DialTimeout: 2 * time.Second, WriteTimeout: 5 * time.Second,
		BackoffBase: 5 * time.Millisecond, BackoffMax: 100 * time.Millisecond,
		QueueCap: 1 << 16,
	}
	if perLink {
		// The legacy shape also flushed after every frame.
		cfg.MaxBatchFrames = 1
		cfg.MaxBatchBytes = 1
	}
	dests := make([]types.ProcID, fanout)
	dir := make(map[types.ProcID]string, fanout)
	for i := range dests {
		q := types.ProcID(fmt.Sprintf("sink%02d", i))
		addr, closeSink := startSink(b)
		defer closeSink()
		dests[i] = q
		dir[q] = addr
	}
	fa, err := newFabric("bench", "127.0.0.1:0", cfg, func(types.ProcID, frame) {}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer fa.Close()
	fa.SetPeers(dir)

	msg := types.WireMsg{
		Kind: types.KindApp,
		App:  types.AppMsg{ID: 0, Payload: make([]byte, 64)},
		HistView: types.NewView(3, types.NewProcSet("p0", "p1", "p2", "p3"),
			map[types.ProcID]types.StartChangeID{"p0": 1, "p1": 1, "p2": 1, "p3": 1}),
		HistIndex: 7,
	}

	// Drain-wait: every link has put target frames on the wire, none shed.
	drained := func(target int64, deadline time.Duration) bool {
		limit := time.Now().Add(deadline)
		for time.Now().Before(limit) {
			ok := true
			for _, s := range fa.Stats() {
				if s.QueueDrops > 0 {
					b.Fatalf("bounded queue shed load mid-benchmark: %+v", s)
				}
				if s.FramesSent < target {
					ok = false
				}
			}
			if ok {
				return true
			}
			time.Sleep(200 * time.Microsecond)
		}
		return false
	}

	// Prime the links so dial/backoff stays out of the timed region.
	fa.Send(dests, msg)
	if !drained(1, 10*time.Second) {
		b.Fatal("links never came up")
	}

	const window = 1 << 14 // backpressure: bound the in-flight backlog
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.App.ID = int64(i + 1)
		if perLink {
			sendEncodePerLink(fa, dests, msg)
		} else {
			fa.Send(dests, msg)
		}
		if i%window == window-1 {
			if !drained(int64(i+2-window), 30*time.Second) {
				b.Fatal("writers fell too far behind")
			}
		}
	}
	if !drained(int64(b.N+1), 60*time.Second) {
		b.Fatal("benchmark frames never fully drained")
	}
	b.StopTimer()
	b.SetBytes(int64(fanout * len(msg.App.Payload)))
}

// BenchmarkFabricBroadcast: one multicast to N destinations through the
// live transport. "encode-once" is the shipping path (single marshal,
// shared pooled buffer, coalesced flushes); "encode-per-link" replicates
// the pre-change path (marshal per destination, flush per frame).
func BenchmarkFabricBroadcast(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("fanout-%d/encode-once", n), func(b *testing.B) {
			benchBroadcast(b, n, false)
		})
		b.Run(fmt.Sprintf("fanout-%d/encode-per-link", n), func(b *testing.B) {
			benchBroadcast(b, n, true)
		})
	}
}

// BenchmarkSendUnderBackpressure drives the full credit cycle: a sender
// with a small window blocks in admitData whenever the window shuts, the
// receiver marks every arriving data frame consumed, and the resulting
// credit frames reopen the window and wake the parked sender. This is the
// steady state of a loaded deployment — send, park, credit, wake — so the
// per-op allocation count is enforced with a hard ceiling: an allocation
// regression on this path multiplies across every message a busy cluster
// carries.
func BenchmarkSendUnderBackpressure(b *testing.B) {
	// Whole-process allocs per op (sender + receiver + credit return).
	// The path currently costs ~8; the ceiling leaves headroom for noise
	// but fails the build on anything resembling a per-frame copy creep.
	const allocCeiling = 40

	cfg := TransportConfig{
		DialTimeout: 2 * time.Second, WriteTimeout: 5 * time.Second,
		BackoffBase: 5 * time.Millisecond, BackoffMax: 100 * time.Millisecond,
		Window: 8,
	}
	var got atomic.Int64
	var fb *fabric
	recv := func(from types.ProcID, fr frame) {
		if fr.Msg != nil && fr.Msg.Kind == types.KindApp {
			got.Add(1)
			fb.consumedData(from)
		}
	}
	fa, err := newFabric("a", "127.0.0.1:0", cfg, func(types.ProcID, frame) {}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer fa.Close()
	fb, err = newFabric("b", "127.0.0.1:0", cfg, recv, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer fb.Close()
	fa.SetPeers(map[types.ProcID]string{"b": fb.Addr()})
	fb.SetPeers(map[types.ProcID]string{"a": fa.Addr()})

	dests := []types.ProcID{"b"}
	msg := types.WireMsg{Kind: types.KindApp, App: types.AppMsg{Payload: make([]byte, 64)}}

	// Prime the links (dial, handshake) outside the timed region.
	if err := fa.admitData(dests, true); err != nil {
		b.Fatal(err)
	}
	fa.Send(dests, msg)
	deadline := time.Now().Add(10 * time.Second)
	for got.Load() < 1 {
		if time.Now().After(deadline) {
			b.Fatal("links never came up")
		}
		time.Sleep(200 * time.Microsecond)
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.App.ID = int64(i + 1)
		if err := fa.admitData(dests, true); err != nil {
			b.Fatal(err)
		}
		fa.Send(dests, msg)
	}
	// Drain inside the timed region: the credit returns are part of the op.
	target := int64(b.N + 1)
	deadline = time.Now().Add(60 * time.Second)
	for got.Load() < target {
		if time.Now().After(deadline) {
			b.Fatalf("only %d of %d frames consumed", got.Load(), target)
		}
		time.Sleep(200 * time.Microsecond)
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	b.SetBytes(int64(len(msg.App.Payload)))

	if s := fa.Stats()["b"]; s.QueueDrops > 0 || s.ChaosDrops > 0 {
		b.Fatalf("backpressured sender shed frames: %+v", s)
	}
	if perOp := float64(after.Mallocs-before.Mallocs) / float64(b.N); perOp > allocCeiling {
		b.Fatalf("allocation ceiling breached: %.1f allocs/op > %d", perOp, allocCeiling)
	}
}
