package live

import (
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"vsgm/internal/types"
	"vsgm/internal/wire"
)

// The linux reactor: a small fixed pool of event-loop goroutines drives all
// established connections through epoll. Inbound connections are read-only
// (batch receive through frameAssembler's pooled slabs); outbound
// connections are write-only (mailbox-fed batched flushes). Handshakes and
// dials still run in short-lived goroutines — blocking work never enters a
// loop — and hand the raw fd to a loop once the connection is established.
const reactorSupported = true

type reactor struct {
	f     *fabric
	loops []*evLoop
	next  atomic.Uint64
}

func newReactor(f *fabric, nloops int) (*reactor, error) {
	if nloops < 1 {
		nloops = 1
	}
	r := &reactor{f: f}
	for i := 0; i < nloops; i++ {
		lp, err := newEvLoop(r)
		if err != nil {
			for _, prev := range r.loops {
				prev.closeFDs()
			}
			return nil, err
		}
		r.loops = append(r.loops, lp)
	}
	return r, nil
}

func (r *reactor) startLoops() {
	for _, lp := range r.loops {
		r.f.wg.Add(1)
		go lp.run()
	}
}

// pick assigns work to loops round-robin.
func (r *reactor) pick() *evLoop {
	return r.loops[int(r.next.Add(1))%len(r.loops)]
}

// shutdown wakes every loop so it can observe the fabric closing and tear
// down; the fabric's WaitGroup joins them.
func (r *reactor) shutdown() {
	for _, lp := range r.loops {
		lp.wake()
	}
}

// startLink attaches a link's outbound side to a loop: the mailbox's
// ready-hook kicks the loop, which dials (in a transient goroutine) on first
// traffic and owns the connection's writes from then on.
func (r *reactor) startLink(l *link) {
	lp := r.pick()
	rl := &rlink{l: l, lp: lp}
	l.mb.setOnReady(func() { lp.kick(rl) })
	lp.kick(rl)
}

// acceptInbound runs in a transient goroutine per accepted connection: it
// reads the handshake frame with blocking I/O, then converts the connection
// to a raw nonblocking fd registered with an event loop. The caller has
// already added this goroutine to the fabric's WaitGroup.
func (r *reactor) acceptInbound(conn net.Conn) {
	f := r.f
	defer f.wg.Done()
	retired := make(chan struct{})
	f.watchConn(conn, retired) // fabric close unblocks a stuck handshake read
	from, err := readHandshake(conn, f.cfg.ReadIdleTimeout)
	if err != nil {
		conn.Close()
		close(retired)
		return
	}
	file, fd, err := dupFD(conn)
	if err != nil {
		conn.Close()
		close(retired)
		return
	}
	c := &rconn{
		fd:       fd,
		file:     file,
		peer:     from,
		retired:  retired,
		asm:      newFrameAssembler(f.pool),
		lastRead: time.Now(),
	}
	r.pick().register(c)
}

// readHandshake consumes the hello frame (any first frame; only its sender
// identity matters, matching the goroutine engine) using plocking reads on
// the net.Conn — deliberately unbuffered, so no stream bytes are stranded in
// a userspace buffer when the raw fd takes over.
func readHandshake(conn net.Conn, idle time.Duration) (types.ProcID, error) {
	if idle > 0 {
		conn.SetReadDeadline(time.Now().Add(idle))
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return "", err
	}
	n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if n > wire.MaxFrameSize {
		return "", wire.ErrFrameTooLarge
	}
	body := make([]byte, n)
	if idle > 0 {
		conn.SetReadDeadline(time.Now().Add(idle)) // re-arm per leg
	}
	if _, err := io.ReadFull(conn, body); err != nil {
		return "", err
	}
	hello, err := wire.UnmarshalFrame(body)
	if err != nil {
		return "", err
	}
	conn.SetReadDeadline(time.Time{})
	return hello.From, nil
}

// dupFD extracts a nonblocking raw fd from an established TCP connection.
// The returned *os.File owns the duplicated descriptor (it must stay alive
// and be Closed exactly once); the original connection is closed — the
// reactor is the sole owner from here.
func dupFD(conn net.Conn) (*os.File, int, error) {
	tc, ok := conn.(*net.TCPConn)
	if !ok {
		return nil, 0, fmt.Errorf("live: reactor needs *net.TCPConn, got %T", conn)
	}
	file, err := tc.File()
	if err != nil {
		return nil, 0, err
	}
	fd := int(file.Fd())
	if err := syscall.SetNonblock(fd, true); err != nil {
		file.Close()
		return nil, 0, err
	}
	conn.Close()
	return file, fd, nil
}

// rconn is one fd registered with a loop: inbound connections carry an
// assembler (read side), outbound connections carry their rlink (write
// side).
type rconn struct {
	fd      int
	file    *os.File
	peer    types.ProcID
	retired chan struct{}

	asm      *frameAssembler // inbound only
	lastRead time.Time

	lnk *rlink // outbound only

	wantW  bool // EPOLLOUT currently armed
	closed bool
}

// wframe is one chaos-processed frame waiting to be copied into the write
// buffer; readyAt defers it when latency injection is active.
type wframe struct {
	fb      *wire.FrameBuf
	readyAt time.Time
}

// rlink is the reactor-side writer state for one link, owned by its loop
// goroutine: pending chaos survivors, the coalesced write buffer (with frame
// bounds so a reconnect resends from the first frame the kernel did not
// fully accept), and the active connection.
type rlink struct {
	l  *link
	lp *evLoop

	conn    *rconn
	dialing bool

	pending    []wframe
	delayFront time.Time // serialized chaos latency front

	wbuf   []byte
	woff   int
	bounds []int // absolute end offset of each frame within wbuf
	acked  int   // frames already counted as sent

	// stalledAt stamps the moment the kernel stopped accepting bytes
	// (EAGAIN with no progress); WriteTimeout past it, the connection is
	// declared stuck and severed — the reactor's analogue of the goroutine
	// engine's per-flush write deadline.
	stalledAt time.Time

	batch  []*wire.FrameBuf // tryTakeBatch scratch
	parked bool             // on the loop's delay-wait list
}

// buffered reports whether the link has anything to push to the wire.
func (rl *rlink) buffered() bool {
	return len(rl.pending) > 0 || rl.woff < len(rl.wbuf)
}

type evLoop struct {
	r            *reactor
	epfd         int
	wakeR, wakeW int

	mu     sync.Mutex
	adds   []*rconn
	kicked []*rlink
	dialed []dialResult
	woken  bool
	dead   bool

	conns   map[int]*rconn
	links   map[*rlink]struct{}
	waiting []*rlink // links with delay-deferred frames
	scanAt  time.Time
}

type dialResult struct {
	rl *rlink
	c  *rconn // nil: the dial attempt could not be adopted; retry
}

func newEvLoop(r *reactor) (*evLoop, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, fmt.Errorf("live: epoll_create1: %w", err)
	}
	var p [2]int
	if err := syscall.Pipe2(p[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, fmt.Errorf("live: pipe2: %w", err)
	}
	lp := &evLoop{
		r:     r,
		epfd:  epfd,
		wakeR: p[0],
		wakeW: p[1],
		conns: make(map[int]*rconn),
		links: make(map[*rlink]struct{}),
	}
	ev := syscall.EpollEvent{Events: uint32(syscall.EPOLLIN), Fd: int32(lp.wakeR)}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, lp.wakeR, &ev); err != nil {
		lp.closeFDs()
		return nil, fmt.Errorf("live: epoll_ctl wake: %w", err)
	}
	return lp, nil
}

func (lp *evLoop) closeFDs() {
	syscall.Close(lp.epfd)
	syscall.Close(lp.wakeR)
	syscall.Close(lp.wakeW)
}

// wake nudges the loop out of epoll_wait (idempotent until drained).
func (lp *evLoop) wake() {
	lp.mu.Lock()
	if lp.woken || lp.dead {
		lp.mu.Unlock()
		return
	}
	lp.woken = true
	lp.mu.Unlock()
	one := [1]byte{1}
	syscall.Write(lp.wakeW, one[:])
}

// register queues an established inbound connection for the loop to adopt.
func (lp *evLoop) register(c *rconn) {
	lp.mu.Lock()
	if lp.dead {
		lp.mu.Unlock()
		releaseRconn(c)
		return
	}
	lp.adds = append(lp.adds, c)
	lp.mu.Unlock()
	lp.wake()
}

// kick marks a link as having work (mailbox traffic, retry).
func (lp *evLoop) kick(rl *rlink) {
	lp.mu.Lock()
	if lp.dead {
		lp.mu.Unlock()
		return
	}
	lp.kicked = append(lp.kicked, rl)
	lp.mu.Unlock()
	lp.wake()
}

// finishDial hands a freshly dialed (or failed) connection back to the loop.
func (lp *evLoop) finishDial(rl *rlink, c *rconn) {
	lp.mu.Lock()
	if lp.dead {
		lp.mu.Unlock()
		if c != nil {
			releaseRconn(c)
		}
		return
	}
	lp.dialed = append(lp.dialed, dialResult{rl: rl, c: c})
	lp.mu.Unlock()
	lp.wake()
}

func releaseRconn(c *rconn) {
	c.file.Close()
	close(c.retired)
	if c.asm != nil {
		c.asm.close()
	}
}

// run is one event loop: wait for readiness, drive reads and writes, adopt
// new connections, and enforce read-progress deadlines — all without ever
// blocking on anything but epoll_wait itself.
func (lp *evLoop) run() {
	f := lp.r.f
	defer f.wg.Done()
	defer lp.teardown()
	events := make([]syscall.EpollEvent, 256)
	var fr frame // decode scratch shared by all of this loop's conns
	for {
		n, err := syscall.EpollWait(lp.epfd, events, lp.timeoutMs())
		if err != nil && err != syscall.EINTR {
			return
		}
		if f.isClosing() {
			return
		}
		if n > 0 {
			f.rstats.wakeups.Add(1)
			f.rstats.events.Add(int64(n))
		}
		for i := 0; i < n; i++ {
			ev := events[i]
			fd := int(ev.Fd)
			if fd == lp.wakeR {
				lp.drainWake()
				continue
			}
			c := lp.conns[fd]
			if c == nil || c.closed {
				continue
			}
			switch {
			case c.asm != nil:
				lp.readReady(c, &fr)
			case c.lnk != nil:
				rl := c.lnk
				if ev.Events&uint32(syscall.EPOLLERR|syscall.EPOLLHUP) != 0 && !rl.buffered() {
					// Peer went away with nothing to send: retire the
					// connection quietly; the next frame redials.
					lp.teardownWrite(rl)
					continue
				}
				lp.pump(rl)
			}
			if f.isClosing() {
				return
			}
		}
		lp.processHandoffs(&fr)
		lp.runDue()
		lp.scanDeadlines()
		lp.scanWriteStalls()
		if f.isClosing() {
			return
		}
	}
}

// drainWake empties the self-pipe and re-arms the wake flag.
func (lp *evLoop) drainWake() {
	lp.mu.Lock()
	lp.woken = false
	lp.mu.Unlock()
	var buf [64]byte
	for {
		n, err := syscall.Read(lp.wakeR, buf[:])
		if n < len(buf) || err != nil {
			return
		}
	}
}

// processHandoffs adopts queued connections and runs queued kicks.
func (lp *evLoop) processHandoffs(fr *frame) {
	lp.mu.Lock()
	adds := lp.adds
	kicks := lp.kicked
	dialed := lp.dialed
	lp.adds, lp.kicked, lp.dialed = nil, nil, nil
	lp.mu.Unlock()
	for _, c := range adds {
		ev := syscall.EpollEvent{Events: uint32(syscall.EPOLLIN | syscall.EPOLLRDHUP), Fd: int32(c.fd)}
		if err := syscall.EpollCtl(lp.epfd, syscall.EPOLL_CTL_ADD, c.fd, &ev); err != nil {
			releaseRconn(c)
			continue
		}
		lp.conns[c.fd] = c
		// Bytes may already be waiting (level-triggered epoll will also
		// report them, but reading now saves a wakeup).
		lp.readReady(c, fr)
	}
	for _, d := range dialed {
		d.rl.dialing = false
		lp.links[d.rl] = struct{}{}
		if d.c != nil {
			ev := syscall.EpollEvent{Events: 0, Fd: int32(d.c.fd)}
			if err := syscall.EpollCtl(lp.epfd, syscall.EPOLL_CTL_ADD, d.c.fd, &ev); err != nil {
				releaseRconn(d.c)
			} else {
				lp.conns[d.c.fd] = d.c
				d.rl.conn = d.c
			}
		}
		lp.pump(d.rl)
	}
	for _, rl := range kicks {
		lp.links[rl] = struct{}{}
		lp.pump(rl)
	}
}

// runDue pumps links whose chaos-delayed frames have matured.
func (lp *evLoop) runDue() {
	if len(lp.waiting) == 0 {
		return
	}
	due := lp.waiting
	lp.waiting = nil // pump may re-park into a fresh list
	now := time.Now()
	for _, rl := range due {
		if len(rl.pending) > 0 && rl.pending[0].readyAt.After(now) {
			lp.waiting = append(lp.waiting, rl) // still parked
			continue
		}
		rl.parked = false
		lp.pump(rl)
	}
}

// park registers rl for a timed wakeup when its head frame matures.
func (lp *evLoop) park(rl *rlink) {
	if rl.parked {
		return
	}
	rl.parked = true
	lp.waiting = append(lp.waiting, rl)
}

// timeoutMs computes how long epoll_wait may sleep: indefinitely unless a
// delayed frame or a read-deadline scan needs a timed wakeup.
func (lp *evLoop) timeoutMs() int {
	var next time.Time
	for _, rl := range lp.waiting {
		if len(rl.pending) > 0 {
			if t := rl.pending[0].readyAt; next.IsZero() || t.Before(next) {
				next = t
			}
		}
	}
	if wt := lp.r.f.cfg.WriteTimeout; wt > 0 {
		for rl := range lp.links {
			if rl.conn != nil && !rl.stalledAt.IsZero() {
				if t := rl.stalledAt.Add(wt); next.IsZero() || t.Before(next) {
					next = t
				}
			}
		}
	}
	if idle := lp.r.f.cfg.ReadIdleTimeout; idle > 0 && len(lp.conns) > 0 {
		if lp.scanAt.IsZero() {
			lp.scanAt = time.Now().Add(scanInterval(idle))
		}
		if next.IsZero() || lp.scanAt.Before(next) {
			next = lp.scanAt
		}
	}
	if next.IsZero() {
		return -1
	}
	ms := time.Until(next).Milliseconds()
	if ms < 1 {
		return 1
	}
	if ms > 60_000 {
		return 60_000
	}
	return int(ms)
}

func scanInterval(idle time.Duration) time.Duration {
	d := idle / 4
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// scanDeadlines enforces read-progress bounds on inbound connections: idle
// links (no frame in progress) are severed after ReadIdleTimeout of silence;
// a frame in progress must complete within two timeouts (header leg + body
// leg) — stamped at its first byte, so trickling bytes cannot re-arm it.
func (lp *evLoop) scanDeadlines() {
	f := lp.r.f
	idle := f.cfg.ReadIdleTimeout
	if idle <= 0 || len(lp.conns) == 0 {
		return
	}
	now := time.Now()
	if !lp.scanAt.IsZero() && now.Before(lp.scanAt) {
		return
	}
	lp.scanAt = now.Add(scanInterval(idle))
	var expired []*rconn
	for _, c := range lp.conns {
		if c.asm == nil || c.closed {
			continue
		}
		if start, mid := c.asm.midFrame(); mid {
			if now.Sub(start) > 2*idle {
				expired = append(expired, c)
			}
		} else if now.Sub(c.lastRead) > idle {
			expired = append(expired, c)
		}
	}
	for _, c := range expired {
		peer := c.peer
		lp.closeConn(c)
		f.linkDown(peer, os.ErrDeadlineExceeded)
	}
}

// scanWriteStalls severs connections whose peer has accepted no bytes for
// WriteTimeout while a flush is blocked — the reactor's write deadline.
func (lp *evLoop) scanWriteStalls() {
	f := lp.r.f
	wt := f.cfg.WriteTimeout
	if wt <= 0 {
		return
	}
	now := time.Now()
	for rl := range lp.links {
		if rl.conn == nil || rl.stalledAt.IsZero() || now.Sub(rl.stalledAt) <= wt {
			continue
		}
		rl.l.bump(func(s *LinkStats) { s.WriteErrors++ })
		lp.teardownWrite(rl)
		f.linkDown(rl.l.peer, os.ErrDeadlineExceeded)
	}
}

// readBudget bounds the bytes one connection may consume per readiness event
// so a firehose peer cannot monopolize its loop; level-triggered epoll
// redelivers the remainder on the next wait.
const readBudget = 1 << 20

// readReady drains the socket into the assembler and delivers every
// completed frame.
func (lp *evLoop) readReady(c *rconn, fr *frame) {
	f := lp.r.f
	budget := readBudget
	for budget > 0 && !c.closed {
		buf := c.asm.writable()
		n, err := syscall.Read(c.fd, buf)
		if n > 0 {
			budget -= n
			c.lastRead = time.Now()
			c.asm.advance(n)
			f.rstats.bytesIn.Add(int64(n))
			if lp.drainFrames(c, fr) {
				return // torn down (parse error or fabric closing)
			}
			if n < len(buf) {
				return // socket likely drained
			}
			continue
		}
		switch err {
		case syscall.EAGAIN:
			return
		case syscall.EINTR:
			continue
		case nil:
			err = io.EOF // n == 0: orderly close
			fallthrough
		default:
			peer := c.peer
			lp.closeConn(c)
			f.linkDown(peer, err)
			return
		}
	}
}

// drainFrames decodes and delivers every complete frame buffered in c's
// assembler; true means the connection was torn down.
func (lp *evLoop) drainFrames(c *rconn, fr *frame) bool {
	f := lp.r.f
	for {
		body, done, err := c.asm.next(fr)
		if err != nil {
			peer := c.peer
			lp.closeConn(c)
			f.linkDown(peer, err)
			return true
		}
		if done {
			return false
		}
		f.rstats.framesIn.Add(1)
		if f.isClosing() {
			if body != nil {
				body.Release()
			}
			return true
		}
		if f.chaos.inboundBlocked(c.peer) {
			f.linkFor(c.peer).bump(func(s *LinkStats) { s.ChaosDrops++ })
			if fr.Msg != nil && fr.Msg.Kind == types.KindApp {
				f.consumedData(c.peer) // parity with readLoop: injected loss must not starve the window
			}
			if body != nil {
				body.Release()
			}
			continue
		}
		if fr.Credit != nil {
			f.handleCredit(c.peer, int64(fr.Credit.Grant))
			if body != nil {
				body.Release()
			}
			continue
		}
		f.deliver(c.peer, *fr, body)
	}
}

// pumpRounds bounds how many refill/flush cycles one pump may run before
// yielding the loop to other connections (the link re-kicks itself).
const pumpRounds = 16

// pump pushes a link's queued frames toward the wire: drain the mailbox
// through chaos, coalesce into the write buffer, write until the kernel
// stops accepting.
func (lp *evLoop) pump(rl *rlink) {
	f := lp.r.f
	for round := 0; ; round++ {
		lp.refill(rl)
		if !rl.buffered() {
			return
		}
		if rl.conn == nil {
			if !rl.dialing {
				rl.dialing = true
				f.wg.Add(1)
				go lp.dialLink(rl)
			}
			return
		}
		now := time.Now()
		lp.stage(rl, now)
		if rl.woff == len(rl.wbuf) {
			// Nothing writable: all pending frames are chaos-delayed.
			if len(rl.pending) > 0 {
				lp.park(rl)
			}
			return
		}
		switch lp.flush(rl) {
		case flushTorn, flushBlocked:
			return
		}
		if round >= pumpRounds {
			lp.kick(rl) // yield the loop; continue on the next iteration
			return
		}
	}
}

// refill drains the mailbox into rl.pending, applying per-frame chaos
// verdicts exactly like the goroutine engine's writeLoop: drops refund
// credit, duplicates retain, latency defers (serialized, preserving FIFO).
func (lp *evLoop) refill(rl *rlink) {
	f := lp.r.f
	l := rl.l
	for len(rl.pending) < f.cfg.MaxBatchFrames {
		var ok bool
		rl.batch, ok = l.mb.tryTakeBatch(rl.batch[:0], f.cfg.MaxBatchFrames-len(rl.pending))
		if !ok {
			return
		}
		now := time.Now()
		for _, fb := range rl.batch {
			verdict := f.chaos.outbound(l.peer)
			if verdict.drop {
				l.bump(func(s *LinkStats) { s.ChaosDrops++ })
				if fb.Class() == wire.ClassData {
					f.refundData(l)
				}
				fb.Release()
				continue
			}
			if verdict.delay > 0 {
				if rl.delayFront.Before(now) {
					rl.delayFront = now
				}
				rl.delayFront = rl.delayFront.Add(verdict.delay)
			}
			readyAt := rl.delayFront // zero (or past): immediately ready
			rl.pending = append(rl.pending, wframe{fb: fb, readyAt: readyAt})
			if verdict.dup {
				l.bump(func(s *LinkStats) { s.ChaosDups++ })
				fb.Retain(1)
				rl.pending = append(rl.pending, wframe{fb: fb, readyAt: readyAt})
			}
		}
	}
}

// stage copies matured pending frames into the coalesced write buffer (up to
// MaxBatchBytes beyond what is already staged), releasing each frame as its
// bytes move — the write buffer, with its frame bounds, is the retry state.
func (lp *evLoop) stage(rl *rlink, now time.Time) {
	maxBytes := lp.r.f.cfg.MaxBatchBytes
	for len(rl.pending) > 0 && len(rl.wbuf)-rl.woff < maxBytes {
		wf := rl.pending[0]
		if wf.readyAt.After(now) {
			return
		}
		b := wf.fb.Bytes()
		rl.wbuf = append(rl.wbuf, byte(len(b)>>24), byte(len(b)>>16), byte(len(b)>>8), byte(len(b)))
		rl.wbuf = append(rl.wbuf, b...)
		rl.bounds = append(rl.bounds, len(rl.wbuf))
		wf.fb.Release()
		rl.pending[0] = wframe{}
		rl.pending = rl.pending[1:]
	}
	if len(rl.pending) == 0 {
		rl.pending = nil // drop the advanced slice's backing array
	}
}

type flushStatus int

const (
	flushDrained flushStatus = iota
	flushBlocked
	flushTorn
)

// flush writes the staged buffer to the socket until it drains or the kernel
// pushes back (EAGAIN arms EPOLLOUT). Frame-sent accounting advances as
// frame bounds are crossed; on error the buffer is trimmed to resend from
// the first frame not fully accepted.
func (lp *evLoop) flush(rl *rlink) flushStatus {
	f := lp.r.f
	l := rl.l
	c := rl.conn
	wrote := false
	var status flushStatus
	for rl.woff < len(rl.wbuf) {
		chunk := rl.wbuf[rl.woff:]
		if f.chaos.partialWritesOn() {
			chunk = chunk[:min(partialWriteChunk, len(chunk))]
		}
		n, err := syscall.Write(c.fd, chunk)
		if n > 0 {
			rl.woff += n
			wrote = true
		}
		if err == nil {
			continue
		}
		if err == syscall.EINTR {
			continue
		}
		if err == syscall.EAGAIN {
			lp.armWrite(c, true)
			if wrote || rl.stalledAt.IsZero() {
				rl.stalledAt = time.Now() // (re)start the stall clock on progress
			}
			status = flushBlocked
			break
		}
		l.bump(func(s *LinkStats) { s.WriteErrors++ })
		lp.accountSent(rl, wrote)
		lp.teardownWrite(rl)
		f.linkDown(l.peer, err)
		return flushTorn
	}
	lp.accountSent(rl, wrote)
	if rl.woff == len(rl.wbuf) {
		rl.wbuf = rl.wbuf[:0]
		rl.woff = 0
		rl.bounds = rl.bounds[:0]
		rl.acked = 0
		rl.stalledAt = time.Time{}
		if c.wantW {
			lp.armWrite(c, false)
		}
	}
	return status
}

// accountSent advances FramesSent/Flushes for frames whose bytes the kernel
// has fully accepted since the last call.
func (lp *evLoop) accountSent(rl *rlink, wrote bool) {
	f := lp.r.f
	accepted := 0
	for i := rl.acked; i < len(rl.bounds) && rl.bounds[i] <= rl.woff; i++ {
		accepted++
	}
	rl.acked += accepted
	if accepted > 0 || wrote {
		rl.l.bump(func(s *LinkStats) {
			s.FramesSent += int64(accepted)
			if wrote {
				s.Flushes++
			}
		})
	}
	if wrote {
		f.rstats.writes.Add(1)
	}
	if accepted > 0 {
		f.flowBroadcast() // queue drained: budget waiters may proceed
	}
}

// teardownWrite retires a link's connection, keeping unaccepted bytes (from
// the first incompletely-sent frame) for resend after reconnect.
func (lp *evLoop) teardownWrite(rl *rlink) {
	if rl.conn != nil {
		lp.closeConn(rl.conn)
		rl.conn = nil
	}
	// Trim fully-accepted frames; a half-sent frame evaporated with the old
	// socket stream, so resend it in full on the fresh one.
	cut := 0
	for _, b := range rl.bounds {
		if b <= rl.woff {
			cut = b
		} else {
			break
		}
	}
	if cut > 0 {
		rl.wbuf = append(rl.wbuf[:0], rl.wbuf[cut:]...)
		nb := rl.bounds[:0]
		for _, b := range rl.bounds {
			if b > cut {
				nb = append(nb, b-cut)
			}
		}
		rl.bounds = nb
	}
	rl.woff = 0
	rl.acked = 0
	rl.stalledAt = time.Time{}
	if rl.buffered() && !rl.dialing {
		rl.dialing = true
		lp.r.f.wg.Add(1)
		go lp.dialLink(rl)
	}
}

// dialLink runs the blocking dial/handshake cycle (with the fabric's backoff
// supervision) in a transient goroutine and hands the fd to the loop.
func (lp *evLoop) dialLink(rl *rlink) {
	f := lp.r.f
	defer f.wg.Done()
	conn, _, retired := f.connect(rl.l)
	if conn == nil {
		return // fabric closing; dialing flag is moot at teardown
	}
	file, fd, err := dupFD(conn)
	if err != nil {
		conn.Close()
		close(retired)
		f.sleep(f.cfg.BackoffBase) // pathological: avoid a hot retry loop
		lp.finishDial(rl, nil)
		return
	}
	lp.finishDial(rl, &rconn{fd: fd, file: file, peer: rl.l.peer, retired: retired, lnk: rl})
}

// armWrite toggles EPOLLOUT interest on an outbound connection.
func (lp *evLoop) armWrite(c *rconn, on bool) {
	if c.wantW == on || c.closed {
		return
	}
	c.wantW = on
	var events uint32
	if on {
		events = uint32(syscall.EPOLLOUT)
	}
	ev := syscall.EpollEvent{Events: events, Fd: int32(c.fd)}
	syscall.EpollCtl(lp.epfd, syscall.EPOLL_CTL_MOD, c.fd, &ev)
}

// closeConn retires one fd: out of the epoll set, file closed (releasing the
// descriptor), watcher released, buffers returned.
func (lp *evLoop) closeConn(c *rconn) {
	if c.closed {
		return
	}
	c.closed = true
	delete(lp.conns, c.fd)
	syscall.EpollCtl(lp.epfd, syscall.EPOLL_CTL_DEL, c.fd, nil)
	releaseRconn(c)
}

// teardown runs at loop exit: every connection is retired, every queued
// handoff cleaned up, and all pending frames released.
func (lp *evLoop) teardown() {
	lp.mu.Lock()
	lp.dead = true
	adds := lp.adds
	dialed := lp.dialed
	lp.adds, lp.kicked, lp.dialed = nil, nil, nil
	lp.mu.Unlock()
	for _, c := range adds {
		releaseRconn(c)
	}
	for _, d := range dialed {
		if d.c != nil {
			releaseRconn(d.c)
		}
	}
	for fd := range lp.conns {
		lp.closeConn(lp.conns[fd])
	}
	for rl := range lp.links {
		for _, wf := range rl.pending {
			wf.fb.Release()
		}
		rl.pending = nil
	}
	lp.closeFDs()
}
