package live

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"vsgm/internal/membership"
	"vsgm/internal/types"
	"vsgm/internal/wire"
)

// Store is the durable backing for a membership server's per-client
// identifier state. A ServerNode appends one WALRecord per state mutation
// and periodically compacts the log into a snapshot; on restart, Load
// returns the merged state, which is replayed into the server so a bounced
// server never regresses an identifier it issued before the crash.
type Store interface {
	// Append durably logs one identifier-state mutation.
	Append(rec wire.WALRecord) error
	// WriteSnapshot replaces the compacted state and truncates the log.
	WriteSnapshot(state map[types.ProcID]membership.ClientRecord) error
	// Load returns the state recovered from snapshot plus log replay.
	Load() (map[types.ProcID]membership.ClientRecord, error)
	// Close releases any resources. The store is unusable afterwards.
	Close() error
}

// mergeRecord folds one WAL record into a recovered-state map, keeping
// field-wise maxima so replay order and duplicates are immaterial.
func mergeRecord(state map[types.ProcID]membership.ClientRecord, rec wire.WALRecord) {
	cur := state[rec.Client]
	if rec.CID > cur.CID {
		cur.CID = rec.CID
	}
	if rec.Vid > cur.Vid {
		cur.Vid = rec.Vid
	}
	if rec.Epoch > cur.Epoch {
		cur.Epoch = rec.Epoch
	}
	state[rec.Client] = cur
}

// replay decodes a concatenation of WAL records into state with
// skip-and-resync: damage (a torn tail from a crash mid-append, a flipped
// byte mid-log) costs only the bytes it covers, never the records after it.
// NewFileStore repairs the files before any replay, so in the normal path
// the scan finds nothing to skip; this is the second line of defense for a
// Load on an un-repaired directory.
func replay(b []byte, state map[types.ProcID]membership.ClientRecord) {
	for _, rec := range wire.ScanWAL(b).Records {
		mergeRecord(state, rec)
	}
}

// MemStore is an in-memory Store for tests and ephemeral deployments. It
// survives a ServerNode restart (hand the same MemStore to the new node)
// but not a process restart.
type MemStore struct {
	mu    sync.Mutex
	state map[types.ProcID]membership.ClientRecord
	wal   []wire.WALRecord
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{state: make(map[types.ProcID]membership.ClientRecord)}
}

// Append implements Store.
func (s *MemStore) Append(rec wire.WALRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wal = append(s.wal, rec)
	return nil
}

// WriteSnapshot implements Store.
func (s *MemStore) WriteSnapshot(state map[types.ProcID]membership.ClientRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = make(map[types.ProcID]membership.ClientRecord, len(state))
	for p, rec := range state {
		s.state[p] = rec
	}
	s.wal = s.wal[:0]
	return nil
}

// Load implements Store.
func (s *MemStore) Load() (map[types.ProcID]membership.ClientRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[types.ProcID]membership.ClientRecord, len(s.state))
	for p, rec := range s.state {
		out[p] = rec
	}
	for _, rec := range s.wal {
		mergeRecord(out, rec)
	}
	return out, nil
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// FsyncPolicy selects when a FileStore flushes WAL appends to stable
// storage. The default (FsyncNever) keeps the historical behavior: appends
// are buffered by the OS, surviving a process crash but not a power cut.
type FsyncPolicy int

const (
	// FsyncNever leaves appends OS-buffered (the default).
	FsyncNever FsyncPolicy = iota
	// FsyncEveryN syncs after every N appends (N from SetFsyncPolicy), so at
	// most N-1 acknowledged mutations can be lost to a power cut.
	FsyncEveryN
	// FsyncAlways syncs after every append — full durability, one disk
	// flush per identifier mutation.
	FsyncAlways
)

// FileStore is a file-backed Store: an append-only WAL (`wal.log`) plus a
// compacted snapshot (`snapshot.bin`), both living in one directory per
// server. Snapshots are written to a temporary file and renamed into place,
// then the WAL is truncated, so a crash at any point leaves a recoverable
// pair: at worst the WAL still holds records the snapshot already covers,
// and Load's max-merge makes that harmless. Append durability is governed
// by the FsyncPolicy (OS-buffered by default); the snapshot path always
// fsyncs. Opening a store runs the fsck engine in repair mode first, so
// Load never sees a WAL or snapshot with undecodable bytes in it.
type FileStore struct {
	mu   sync.Mutex
	dir  string
	wal  *os.File
	buf  []byte
	done bool

	fsync      FsyncPolicy
	fsyncEvery int
	sinceSync  int

	repair *RepairReport
}

const (
	walFileName  = "wal.log"
	snapFileName = "snapshot.bin"
)

// CloneStateDir copies a file store's on-disk state (WAL and snapshot)
// from src into dst, creating dst if needed and replacing its previous
// contents — a point-in-time backup/restore primitive for stale-WAL
// resurrection tests and the soak harness. Clone from a closed or
// quiescent store, and restore only while no store handle is open on dst.
func CloneStateDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return fmt.Errorf("live: clone state dir: %w", err)
	}
	for _, name := range []string{walFileName, snapFileName} {
		b, err := os.ReadFile(filepath.Join(src, name))
		if os.IsNotExist(err) {
			// Absent in the source generation: remove any newer leftover so
			// the destination matches the source exactly.
			if err := os.Remove(filepath.Join(dst, name)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("live: clone state dir: %w", err)
			}
			continue
		}
		if err != nil {
			return fmt.Errorf("live: clone state dir: %w", err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), b, 0o644); err != nil {
			return fmt.Errorf("live: clone state dir: %w", err)
		}
	}
	return nil
}

// NewFileStore opens (creating if needed) a file-backed store rooted at
// dir. Before the WAL is opened for appending, the fsck engine runs in
// repair mode: stale snapshot temp files are swept, damaged byte ranges in
// wal.log and snapshot.bin are quarantined to wal.quarantine, and the files
// are rewritten from their intact records (legacy v1 records migrating to
// checksummed v2 in passing). The outcome is retained — see RepairReport.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("live: store dir: %w", err)
	}
	report, err := Fsck(dir, FsckRepair)
	if err != nil {
		return nil, fmt.Errorf("live: fsck on open: %w", err)
	}
	wal, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("live: open wal: %w", err)
	}
	return &FileStore{dir: dir, wal: wal, repair: report}, nil
}

// Dir returns the store's root directory.
func (s *FileStore) Dir() string { return s.dir }

// RepairReport returns the fsck outcome from when this store was opened.
func (s *FileStore) RepairReport() *RepairReport { return s.repair }

// SetFsyncPolicy selects the WAL append durability policy. every is the N
// of FsyncEveryN (values < 1 are treated as 1) and is ignored by the other
// policies. Safe to call at any time; the next Append applies it.
func (s *FileStore) SetFsyncPolicy(p FsyncPolicy, every int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if every < 1 {
		every = 1
	}
	s.fsync, s.fsyncEvery, s.sinceSync = p, every, 0
}

// Append implements Store.
func (s *FileStore) Append(rec wire.WALRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return fmt.Errorf("live: store closed")
	}
	b, err := wire.AppendWALRecord(s.buf[:0], rec)
	if err != nil {
		return err
	}
	s.buf = b
	if _, err := s.wal.Write(b); err != nil {
		return err
	}
	switch s.fsync {
	case FsyncAlways:
		return s.wal.Sync()
	case FsyncEveryN:
		s.sinceSync++
		if s.sinceSync >= s.fsyncEvery {
			s.sinceSync = 0
			return s.wal.Sync()
		}
	}
	return nil
}

// WriteSnapshot implements Store.
func (s *FileStore) WriteSnapshot(state map[types.ProcID]membership.ClientRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return fmt.Errorf("live: store closed")
	}
	var b []byte
	for p, rec := range state {
		var err error
		b, err = wire.AppendWALRecord(b, wire.WALRecord{Client: p, CID: rec.CID, Vid: rec.Vid, Epoch: rec.Epoch})
		if err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(s.dir, snapFileName+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, snapFileName)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// The snapshot covers everything the WAL held; truncating is safe even
	// if we crash before it happens (max-merge deduplicates on Load).
	return os.Truncate(filepath.Join(s.dir, walFileName), 0)
}

// Load implements Store.
func (s *FileStore) Load() (map[types.ProcID]membership.ClientRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	state := make(map[types.ProcID]membership.ClientRecord)
	if b, err := os.ReadFile(filepath.Join(s.dir, snapFileName)); err == nil {
		replay(b, state)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	if b, err := os.ReadFile(filepath.Join(s.dir, walFileName)); err == nil {
		replay(b, state)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return state, nil
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil
	}
	s.done = true
	return s.wal.Close()
}
