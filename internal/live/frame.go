// Package live is the concurrent deployment runtime: GCS end-points and
// membership servers running as goroutines and communicating over real TCP
// connections with compact binary frames (internal/wire). It is the
// production-flavored counterpart of the deterministic simulator in
// internal/sim — the same automata (internal/core, internal/membership)
// drive both; only the scheduling and transport differ.
//
// Topology: every process (client end-point or membership server) is a
// listener with a static address directory. A sender lazily dials one
// outbound connection per destination; per-destination FIFO order — the
// CO_RFIFO contract — follows from TCP's in-order byte stream plus the
// per-destination outbox goroutine. Membership notifications travel over
// the same fabric as dedicated frames.
//
// Data path: a multicast is marshaled exactly once and the pooled encoding
// is shared (reference-counted) across every destination's bounded queue;
// each link writer drains its queue in batches and coalesces a batch into
// as few socket flushes as the configured byte cap allows. See DESIGN.md
// "Transport performance".
package live

import "vsgm/internal/wire"

// frame is the unit of the wire protocol; see wire.Frame. The first frame
// on every connection is a bare handshake carrying only From.
type frame = wire.Frame
