//go:build !linux

package live

import (
	"errors"
	"net"
)

// reactorSupported reports whether this platform has a readiness-driven
// reactor implementation. Without one, TransportConfig.Reactor resolves to
// the portable goroutine-per-link engine regardless of mode.
const reactorSupported = false

// reactor is a stub on platforms without epoll; a fabric here always runs
// with reactor == nil, so none of these methods are reachable.
type reactor struct{}

func newReactor(*fabric, int) (*reactor, error) {
	return nil, errors.New("live: reactor requires linux epoll")
}

func (*reactor) startLoops()             {}
func (*reactor) startLink(*link)         {}
func (*reactor) acceptInbound(net.Conn)  {}
func (*reactor) shutdown()               {}
