package live

// Regime 3 tests: the live deployment under fault injection. The chaos
// fabric degrades real TCP links (partitions, latency, partial writes,
// drops, duplicates) while the full spec suite checks every safety
// property, and white-box transport tests pin down the supervision
// guarantees: bounded queues, backoff without goroutine leaks, dial and
// write deadlines, and prompt teardown behind dead or stuck peers.

import (
	"bytes"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/types"
	"vsgm/internal/wire"
)

// waitUntil polls cond until it holds or the timeout passes.
func waitUntil(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// deliveredSnapshot copies the per-client delivery counters.
func (w *liveWorld) deliveredSnapshot() map[types.ProcID]int {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[types.ProcID]int, len(w.dlvrs))
	for k, v := range w.dlvrs {
		out[k] = v
	}
	return out
}

// sendRetry multicasts from cid, retrying through block windows (view
// changes block clients transiently; that is correct behavior, not failure).
func (w *liveWorld) sendRetry(cid types.ProcID, payload string) {
	w.t.Helper()
	node := w.clients[cid]
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		_, err := node.Send([]byte(payload))
		if err == nil {
			return
		}
		if err != core.ErrBlocked {
			w.t.Fatalf("send from %s: %v", cid, err)
		}
		time.Sleep(3 * time.Millisecond)
	}
	w.t.Fatalf("send from %s still blocked after 10s", cid)
}

// sideClients returns the clients homed at the given server.
func (w *liveWorld) sideClients(srv types.ProcID) types.ProcSet {
	s := types.NewProcSet()
	for cid, home := range w.homes {
		if home == srv {
			s.Add(cid)
		}
	}
	return s
}

// allClients returns the full client set.
func (w *liveWorld) allClients() types.ProcSet {
	s := types.NewProcSet()
	for cid := range w.clients {
		s.Add(cid)
	}
	return s
}

// TestLiveChaosPartitionAndHeal is the live-network mirror of
// sim.TestServerWorldPartitionAndHeal: two servers with two clients each
// run over real sockets, the chaos fabric partitions the deployment
// mid-multicast, each side reconfigures down to its own component and keeps
// multicasting, the partition heals, and the group reconverges on the
// merged view — with the full spec suite checking every event throughout.
func TestLiveChaosPartitionAndHeal(t *testing.T) {
	w := newLiveWorld(t, 2, 4)
	defer w.close()
	w.startHeartbeats(15*time.Millisecond, 120*time.Millisecond)

	all := w.allClients()
	w.waitFor("initial full view", func() bool {
		for _, node := range w.clients {
			if !node.CurrentView().Members.Equal(all) {
				return false
			}
		}
		return true
	})

	// Pre-partition round: everyone hears everyone.
	base := w.deliveredSnapshot()
	for cid := range w.clients {
		w.sendRetry(cid, "pre-"+string(cid))
	}
	w.waitFor("pre-partition deliveries everywhere", func() bool {
		snap := w.deliveredSnapshot()
		for cid := range w.clients {
			if snap[cid] < base[cid]+len(w.clients) {
				return false
			}
		}
		return true
	})

	// Background traffic keeps flowing through the partition onset and the
	// heal, so the faults land mid-multicast rather than between quiet
	// phases. Errors (block windows during view changes) are expected.
	stop := make(chan struct{})
	var traffic sync.WaitGroup
	for cid, node := range w.clients {
		cid, node := cid, node
		traffic.Add(1)
		go func() {
			defer traffic.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				node.Send([]byte(fmt.Sprintf("bg-%s-%d", cid, i)))
				time.Sleep(3 * time.Millisecond)
			}
		}()
	}

	sideA := w.sideClients(w.servers[0].ID())
	sideB := w.sideClients(w.servers[1].ID())
	w.partitionServers(
		types.NewProcSet(w.servers[0].ID()),
		types.NewProcSet(w.servers[1].ID()),
	)

	w.waitFor("each side to install its own view", func() bool {
		for cid, node := range w.clients {
			want := sideA
			if sideB.Contains(cid) {
				want = sideB
			}
			if !node.CurrentView().Members.Equal(want) {
				return false
			}
		}
		return true
	})

	// Mid-partition round: each component keeps multicasting internally.
	mid := w.deliveredSnapshot()
	for cid := range w.clients {
		w.sendRetry(cid, "mid-"+string(cid))
	}
	w.waitFor("mid-partition deliveries within each side", func() bool {
		snap := w.deliveredSnapshot()
		for cid := range w.clients {
			side := sideA
			if sideB.Contains(cid) {
				side = sideB
			}
			if snap[cid] < mid[cid]+side.Len() {
				return false
			}
		}
		return true
	})

	w.healServers()
	w.waitFor("clients to reconverge on the merged view", func() bool {
		for _, node := range w.clients {
			if !node.CurrentView().Members.Equal(all) {
				return false
			}
		}
		return true
	})

	close(stop)
	traffic.Wait()

	// Post-heal round: the merged group is fully connected again.
	post := w.deliveredSnapshot()
	for cid := range w.clients {
		w.sendRetry(cid, "post-"+string(cid))
	}
	w.waitFor("post-heal deliveries everywhere", func() bool {
		snap := w.deliveredSnapshot()
		for cid := range w.clients {
			if snap[cid] < post[cid]+len(w.clients) {
				return false
			}
		}
		return true
	})

	if err := w.specErr(); err != nil {
		t.Fatalf("spec violations across partition and heal:\n%v", err)
	}

	// The degradation was observable: the partition blocks counted drops.
	var chaosDrops int64
	for _, sn := range w.servers {
		for _, s := range sn.LinkStats() {
			chaosDrops += s.ChaosDrops
		}
	}
	for _, node := range w.clients {
		for _, s := range node.LinkStats() {
			chaosDrops += s.ChaosDrops
		}
	}
	if chaosDrops == 0 {
		t.Error("partition dropped no frames — chaos blocks never engaged")
	}
}

// TestLiveGrayFailureAsymmetricPartition breaks ONE direction of the
// server-server link: srv1 can no longer hear srv0, while srv0 still hears
// srv1 perfectly. A binary detector livelocks here — srv1 proposes a view
// without srv0, srv0 keeps proposing the full view, and the one-round
// membership protocol never completes. The gray-failure reconciliation must
// instead read srv1's piggybacked reachability bitmap (which excludes
// srv0), conclude the link is useless in both directions, and converge both
// sides on ONE symmetric reconfiguration into disjoint side views — which
// must then hold without oscillating until the link heals.
func TestLiveGrayFailureAsymmetricPartition(t *testing.T) {
	w := newLiveWorld(t, 2, 4)
	defer w.close()
	w.startHeartbeats(15*time.Millisecond, 120*time.Millisecond)

	all := w.allClients()
	w.waitFor("initial full view", func() bool {
		for _, node := range w.clients {
			if !node.CurrentView().Members.Equal(all) {
				return false
			}
		}
		return true
	})

	sideA := w.sideClients(w.servers[0].ID())
	sideB := w.sideClients(w.servers[1].ID())

	// Break srv0→srv1 only: srv1 stops hearing srv0; the reverse direction
	// stays perfect.
	w.servers[1].Chaos().BlockInbound(w.servers[0].ID())

	w.waitFor("both sides to install symmetric disjoint views", func() bool {
		for cid, node := range w.clients {
			want := sideA
			if sideB.Contains(cid) {
				want = sideB
			}
			if !node.CurrentView().Members.Equal(want) {
				return false
			}
		}
		return true
	})

	// Both detectors must agree the pair is broken — neither side may keep
	// trusting the half-open link.
	for _, sn := range w.servers {
		if r := sn.DetectorStats(); sn == w.servers[0] && r.GrayDowngrades == 0 {
			t.Errorf("srv0 never gray-downgraded its half-open peer: %+v", r)
		}
	}

	// One reconfiguration, then stability: hold the asymmetric fault for
	// many detection periods and assert nobody's view moves again. A
	// detector that flip-flops on the half-open link (hearing srv1 restores
	// it, the bitmap evidence drops it again) would churn views here.
	type snap struct{ vid types.ViewID }
	before := make(map[types.ProcID]snap)
	for cid, node := range w.clients {
		before[cid] = snap{node.CurrentView().ID}
	}
	time.Sleep(700 * time.Millisecond)
	for cid, node := range w.clients {
		if got := node.CurrentView().ID; got != before[cid].vid {
			t.Errorf("view oscillated under a stable asymmetric fault: %s moved %d -> %d",
				cid, before[cid].vid, got)
		}
	}

	// Heal the direction: hearing recovers, the advertised bitmaps
	// re-include both ends, and the reconciliation unwinds into the merged
	// view.
	w.servers[1].Chaos().Unblock(w.servers[0].ID())
	w.waitFor("merged view after the link heals", func() bool {
		for _, node := range w.clients {
			if !node.CurrentView().Members.Equal(all) {
				return false
			}
		}
		return true
	})

	if err := w.specErr(); err != nil {
		t.Fatalf("spec violations across the asymmetric partition:\n%v", err)
	}
}

// TestLiveLinkFailureFeedsSuspicion pins the transport→detector wiring:
// with a heartbeat timeout far past the test's lifetime, the only way the
// surviving server can learn of its peer's death is the transport reporting
// the broken link (linkDown → Detector.Suspect).
func TestLiveLinkFailureFeedsSuspicion(t *testing.T) {
	w := newLiveWorld(t, 2, 2)
	defer w.close()
	w.startHeartbeats(20*time.Millisecond, 60*time.Second)

	all := w.allClients()
	w.waitFor("initial full view", func() bool {
		for _, node := range w.clients {
			if !node.CurrentView().Members.Equal(all) {
				return false
			}
		}
		return true
	})

	dead := w.servers[1]
	deadClients := w.sideClients(dead.ID())
	dead.Close()

	rest := all.Minus(deadClients)
	w.waitFor("link-failure suspicion to reconfigure the survivors", func() bool {
		for cid, node := range w.clients {
			if deadClients.Contains(cid) {
				continue
			}
			if !node.CurrentView().Members.Equal(rest) {
				return false
			}
		}
		return true
	})

	if err := w.specErr(); err != nil {
		t.Fatalf("spec violations:\n%v", err)
	}
}

// TestLiveReconnectBackoffAndResume kills a peer's listener mid-traffic,
// asserts the supervisor backs off in place (no per-attempt goroutine
// growth), restarts the listener on the same address, and asserts delivery
// resumes with the retry counters advanced.
func TestLiveReconnectBackoffAndResume(t *testing.T) {
	cfg := TransportConfig{
		DialTimeout:  time.Second,
		WriteTimeout: time.Second,
		BackoffBase:  5 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
		QueueCap:     256,
	}

	var mu sync.Mutex
	var got []string
	recv := func(from types.ProcID, fr frame) {
		if fr.Msg != nil && fr.Msg.Kind == types.KindApp {
			mu.Lock()
			got = append(got, string(fr.Msg.App.Payload))
			mu.Unlock()
		}
	}
	has := func(want string) bool {
		mu.Lock()
		defer mu.Unlock()
		for _, s := range got {
			if s == want {
				return true
			}
		}
		return false
	}

	before := runtime.NumGoroutine()

	fa, err := newFabric("a", "127.0.0.1:0", cfg, func(types.ProcID, frame) {}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := newFabric("b", "127.0.0.1:0", cfg, recv, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := fb.Addr()
	fa.SetPeers(map[types.ProcID]string{"b": addr})

	send := func(payload string, id int64) {
		fa.Send([]types.ProcID{"b"}, types.WireMsg{
			Kind: types.KindApp,
			App:  types.AppMsg{ID: id, Payload: []byte(payload)},
		})
	}

	send("first", 1)
	waitUntil(t, "first delivery", 5*time.Second, func() bool { return has("first") })

	// Kill the listener. An idle link only discovers the break on its next
	// write, so probe while waiting; the supervisor must then retry in place.
	fb.Close()
	probe := 0
	waitUntil(t, "the break to be noticed", 5*time.Second, func() bool {
		send(fmt.Sprintf("probe-%d", probe), int64(500+probe))
		probe++
		s := fa.Stats()["b"]
		return s.DialFailures >= 1 || s.WriteErrors >= 1
	})

	g0 := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		send(fmt.Sprintf("down-%d", i), int64(10+i))
		time.Sleep(2 * time.Millisecond)
	}
	waitUntil(t, "backoff retries to accumulate", 5*time.Second, func() bool {
		return fa.Stats()["b"].Retries >= 3
	})
	if g1 := runtime.NumGoroutine(); g1 > g0+10 {
		t.Fatalf("goroutines grew while the peer was down: %d -> %d (per-attempt leak?)", g0, g1)
	}
	if s := fa.Stats()["b"]; s.DialFailures < 1 {
		t.Fatalf("expected dial failures while the listener was down, got %+v", s)
	}

	// Restart the listener on the same address; delivery must resume. The
	// OS may briefly hold the port, so rebinding retries.
	var fb2 *fabric
	waitUntil(t, "rebinding the peer's address", 5*time.Second, func() bool {
		fb2, err = newFabric("b", addr, cfg, recv, nil)
		return err == nil
	})

	send("after-restart", 1000)
	waitUntil(t, "delivery to resume after restart", 10*time.Second, func() bool {
		return has("after-restart")
	})

	s := fa.Stats()["b"]
	if s.Reconnects < 1 {
		t.Errorf("expected >=1 reconnect, got %+v", s)
	}
	if s.Retries < 3 {
		t.Errorf("expected >=3 retries, got %+v", s)
	}

	fa.Close()
	fb2.Close()
	waitUntil(t, "goroutines to settle after close", 5*time.Second, func() bool {
		return runtime.NumGoroutine() <= before+3
	})
}

// TestLiveDeadPeerNeverWedgesSend sends a burst at an address that refuses
// connections: Send must return immediately (bounded queue, supervised
// dialing), the dial failures must be counted, and Close must stay prompt.
func TestLiveDeadPeerNeverWedgesSend(t *testing.T) {
	cfg := TransportConfig{
		DialTimeout:  200 * time.Millisecond,
		WriteTimeout: time.Second,
		BackoffBase:  5 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
		QueueCap:     64,
	}
	fa, err := newFabric("a", "127.0.0.1:0", cfg, func(types.ProcID, frame) {}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// A port that refuses connections: bind one, note it, close it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()
	fa.SetPeers(map[types.ProcID]string{"ghost": deadAddr})

	start := time.Now()
	for i := 0; i < 500; i++ {
		fa.Send([]types.ProcID{"ghost"}, types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: int64(i)}})
		fa.Send([]types.ProcID{"ghost"}, types.WireMsg{Kind: types.KindHeartbeat})
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("1000 sends to a dead peer took %v — Send must never block on the network", d)
	}

	waitUntil(t, "supervised dial failures", 5*time.Second, func() bool {
		s := fa.Stats()["ghost"]
		return s.DialFailures >= 2 && s.Retries >= 2
	})
	// The bounded queue degrades by class: data frames are shed once the
	// cap is hit, while heartbeats coalesce in place (a newer one replaces
	// the queued older one) so they never contribute to queue growth.
	if s := fa.Stats()["ghost"]; s.QueueDrops == 0 {
		t.Errorf("expected the bounded queue to shed data load (500 sends, cap 64): %+v", s)
	} else if s.HeartbeatsCoalesced == 0 {
		t.Errorf("expected queued heartbeats to coalesce: %+v", s)
	}

	done := make(chan struct{})
	go func() { fa.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Close wedged behind a dead peer")
	}
}

// TestLiveChaosPartialWritesAndLatency fragments every socket write into
// 7-byte chunks and adds jittered latency: frames must still arrive intact
// and in order, because framing is length-prefixed and the decoder reads
// incrementally.
func TestLiveChaosPartialWritesAndLatency(t *testing.T) {
	cfg := TransportConfig{
		DialTimeout: time.Second, WriteTimeout: 2 * time.Second,
		BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
	}
	var mu sync.Mutex
	var got []string
	recv := func(from types.ProcID, fr frame) {
		if fr.Msg != nil && fr.Msg.Kind == types.KindApp {
			mu.Lock()
			got = append(got, string(fr.Msg.App.Payload))
			mu.Unlock()
		}
	}
	fa, err := newFabric("a", "127.0.0.1:0", cfg, func(types.ProcID, frame) {}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fa.Close()
	fb, err := newFabric("b", "127.0.0.1:0", cfg, recv, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	fa.SetPeers(map[types.ProcID]string{"b": fb.Addr()})

	fa.Chaos().SetPartialWrites(true)
	fa.Chaos().SetLatency(time.Millisecond, 2*time.Millisecond)

	const n = 20
	for i := 0; i < n; i++ {
		fa.Send([]types.ProcID{"b"}, types.WireMsg{
			Kind: types.KindApp,
			App:  types.AppMsg{ID: int64(i), Payload: []byte(fmt.Sprintf("m-%02d", i))},
		})
	}
	waitUntil(t, "all frames to arrive through the degraded link", 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == n
	})

	mu.Lock()
	defer mu.Unlock()
	for i, s := range got {
		if want := fmt.Sprintf("m-%02d", i); s != want {
			t.Fatalf("frame %d out of order or corrupted: got %q, want %q", i, s, want)
		}
	}
	if s := fa.Stats()["b"]; s.FramesSent != n {
		t.Errorf("FramesSent = %d, want %d", s.FramesSent, n)
	}
}

// TestLiveChaosDropAndDuplicate drives the probabilistic knobs at 1.0 so
// their effect is deterministic: dup doubles every frame (counted), drop
// suppresses every frame (counted), and Heal restores faithful delivery.
func TestLiveChaosDropAndDuplicate(t *testing.T) {
	cfg := TransportConfig{
		DialTimeout: time.Second, WriteTimeout: 2 * time.Second,
		BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
	}
	var received atomic.Int64
	var dropped atomic.Int64
	recv := func(from types.ProcID, fr frame) {
		if fr.Msg == nil || fr.Msg.Kind != types.KindApp {
			return
		}
		if bytes.HasPrefix(fr.Msg.App.Payload, []byte("drop-")) {
			dropped.Add(1)
			return
		}
		received.Add(1)
	}
	fa, err := newFabric("a", "127.0.0.1:0", cfg, func(types.ProcID, frame) {}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fa.Close()
	fb, err := newFabric("b", "127.0.0.1:0", cfg, recv, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	fa.SetPeers(map[types.ProcID]string{"b": fb.Addr()})

	send := func(payload string, id int64) {
		fa.Send([]types.ProcID{"b"}, types.WireMsg{
			Kind: types.KindApp,
			App:  types.AppMsg{ID: id, Payload: []byte(payload)},
		})
	}

	const n = 10
	fa.Chaos().SetDuplicateProbability(1.0)
	for i := 0; i < n; i++ {
		send(fmt.Sprintf("dup-%d", i), int64(i))
	}
	waitUntil(t, "every frame to arrive twice", 10*time.Second, func() bool {
		return received.Load() == 2*n
	})
	if s := fa.Stats()["b"]; s.ChaosDups != n {
		t.Errorf("ChaosDups = %d, want %d", s.ChaosDups, n)
	}

	fa.Chaos().Heal()
	fa.Chaos().SetDropProbability(1.0)
	for i := 0; i < n; i++ {
		send(fmt.Sprintf("drop-%d", i), int64(100+i))
	}
	waitUntil(t, "every frame to be dropped", 10*time.Second, func() bool {
		return fa.Stats()["b"].ChaosDrops >= n
	})
	if got := dropped.Load(); got != 0 {
		t.Errorf("%d frames leaked through a 1.0 drop probability", got)
	}

	fa.Chaos().Heal()
	send("probe", 1000)
	waitUntil(t, "faithful delivery after Heal", 10*time.Second, func() bool {
		return received.Load() == 2*n+1
	})
	if got := dropped.Load(); got != 0 {
		t.Errorf("dropped frames resurfaced after Heal: %d", got)
	}
}

// TestLiveWriteDeadlineBreaksStuckPeer connects to a listener that accepts
// and then never reads. Once the kernel buffers fill, writes stall; the
// write deadline must break the stall, count it, surface it through onDown,
// and leave Close prompt.
func TestLiveWriteDeadlineBreaksStuckPeer(t *testing.T) {
	cfg := TransportConfig{
		DialTimeout:  time.Second,
		WriteTimeout: 250 * time.Millisecond,
		BackoffBase:  10 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
		QueueCap:     8,
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var cmu sync.Mutex
	var held []net.Conn
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			cmu.Lock()
			held = append(held, c)
			cmu.Unlock()
		}
	}()
	defer func() {
		cmu.Lock()
		defer cmu.Unlock()
		for _, c := range held {
			c.Close()
		}
	}()

	var downs atomic.Int64
	fa, err := newFabric("a", "127.0.0.1:0", cfg,
		func(types.ProcID, frame) {},
		func(types.ProcID, error) { downs.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	fa.SetPeers(map[types.ProcID]string{"stuck": ln.Addr().String()})

	// Keep feeding large frames until the socket buffers fill and the
	// deadline fires (buffer sizes vary by host, so a fixed burst is not
	// enough).
	payload := bytes.Repeat([]byte("x"), 512<<10)
	big := types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: 1, Payload: payload}}
	waitUntil(t, "the write deadline to break the stuck link", 15*time.Second, func() bool {
		fa.Send([]types.ProcID{"stuck"}, big)
		return fa.Stats()["stuck"].WriteErrors >= 1
	})
	if downs.Load() == 0 {
		t.Error("link failure was not reported through onDown")
	}

	done := make(chan struct{})
	go func() { fa.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close wedged behind a stuck peer")
	}
}

// TestLiveChaosSoakPartitionCycles runs repeated partition/heal cycles with
// latency and partial writes on every link while background traffic flows,
// then checks the full spec suite. Skipped under -short.
func TestLiveChaosSoakPartitionCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: repeated partition/heal cycles under degraded links")
	}
	w := newLiveWorld(t, 2, 4)
	defer w.close()
	w.startHeartbeats(15*time.Millisecond, 120*time.Millisecond)

	all := w.allClients()
	fullView := func() bool {
		for _, node := range w.clients {
			if !node.CurrentView().Members.Equal(all) {
				return false
			}
		}
		return true
	}
	w.waitFor("initial full view", fullView)

	// Degrade every link; Heal clears these, so reapply after each cycle.
	degrade := func() {
		for _, c := range w.chaosOf() {
			c.SetLatency(0, 2*time.Millisecond)
			c.SetPartialWrites(true)
		}
	}
	degrade()

	stop := make(chan struct{})
	var traffic sync.WaitGroup
	for cid, node := range w.clients {
		cid, node := cid, node
		traffic.Add(1)
		go func() {
			defer traffic.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				node.Send([]byte(fmt.Sprintf("soak-%s-%d", cid, i)))
				time.Sleep(3 * time.Millisecond)
			}
		}()
	}

	sideA := w.sideClients(w.servers[0].ID())
	sideB := w.sideClients(w.servers[1].ID())
	for cycle := 0; cycle < 2; cycle++ {
		w.partitionServers(
			types.NewProcSet(w.servers[0].ID()),
			types.NewProcSet(w.servers[1].ID()),
		)
		w.waitFor(fmt.Sprintf("cycle %d: side views", cycle), func() bool {
			for cid, node := range w.clients {
				want := sideA
				if sideB.Contains(cid) {
					want = sideB
				}
				if !node.CurrentView().Members.Equal(want) {
					return false
				}
			}
			return true
		})
		w.healServers()
		w.waitFor(fmt.Sprintf("cycle %d: merged view", cycle), fullView)
		degrade()
	}

	close(stop)
	traffic.Wait()

	post := w.deliveredSnapshot()
	for cid := range w.clients {
		w.sendRetry(cid, "final-"+string(cid))
	}
	w.waitFor("final deliveries everywhere", func() bool {
		snap := w.deliveredSnapshot()
		for cid := range w.clients {
			if snap[cid] < post[cid]+len(w.clients) {
				return false
			}
		}
		return true
	})

	if err := w.specErr(); err != nil {
		t.Fatalf("spec violations across soak cycles:\n%v", err)
	}
}

// ---- batching vs. chaos interplay ----
//
// The coalescing writer batches many frames into one flush; these tests pin
// that fault injection still operates at frame granularity: per-frame drop,
// dup, and partition verdicts land mid-batch with exact counters, and frame
// boundaries survive arbitrarily fragmented coalesced writes.

// TestLiveChaosMidBatchDropsKeepFrameBoundaries pushes a burst through a
// link with probabilistic drops and duplicates plus partial-write
// fragmentation. Every enqueued frame must be accounted for exactly once
// (sent or chaos-dropped, dups extra), and the receiver must see an intact,
// non-decreasing subsequence — a mid-batch drop is a cleanly missing frame,
// never a corrupt boundary.
func TestLiveChaosMidBatchDropsKeepFrameBoundaries(t *testing.T) {
	cfg := TransportConfig{
		DialTimeout: time.Second, WriteTimeout: 2 * time.Second,
		BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
		QueueCap: 2048,
	}
	var mu sync.Mutex
	var got []int64
	recv := func(from types.ProcID, fr frame) {
		if fr.Msg != nil && fr.Msg.Kind == types.KindApp {
			mu.Lock()
			got = append(got, fr.Msg.App.ID)
			mu.Unlock()
		}
	}
	fa, err := newFabric("a", "127.0.0.1:0", cfg, func(types.ProcID, frame) {}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fa.Close()
	fb, err := newFabric("b", "127.0.0.1:0", cfg, recv, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	fa.SetPeers(map[types.ProcID]string{"b": fb.Addr()})

	fa.Chaos().SetPartialWrites(true)
	fa.Chaos().SetDropProbability(0.3)
	fa.Chaos().SetDuplicateProbability(0.3)

	const n = 300
	for i := 0; i < n; i++ {
		fa.Send([]types.ProcID{"b"}, types.WireMsg{
			Kind: types.KindApp,
			App:  types.AppMsg{ID: int64(i), Payload: []byte(fmt.Sprintf("burst-%03d", i))},
		})
	}

	// Every frame resolved: sent or dropped, duplicates on top.
	waitUntil(t, "per-frame accounting to close", 15*time.Second, func() bool {
		s := fa.Stats()["b"]
		return s.FramesSent+s.ChaosDrops == n+s.ChaosDups && s.QueueDrops == 0
	})
	s := fa.Stats()["b"]
	if s.ChaosDrops == 0 || s.ChaosDups == 0 {
		t.Fatalf("probabilistic faults never engaged mid-batch: %+v", s)
	}
	waitUntil(t, "every sent frame to arrive", 15*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return int64(len(got)) == s.FramesSent
	})

	mu.Lock()
	defer mu.Unlock()
	seen := make(map[int64]int)
	for i, id := range got {
		if i > 0 && id < got[i-1] {
			t.Fatalf("frame order violated at %d: %d after %d", i, id, got[i-1])
		}
		seen[id]++
		if seen[id] > 2 {
			t.Fatalf("frame %d delivered %d times with one dup verdict max", id, seen[id])
		}
	}
}

// TestLiveChaosOneWayPartitionMidBatch flips a one-way partition on and off
// between bursts while reverse traffic keeps flowing: the blocked window is
// dropped and counted exactly, the surviving bursts arrive intact and in
// order, and the unblocked direction never loses a frame.
func TestLiveChaosOneWayPartitionMidBatch(t *testing.T) {
	cfg := TransportConfig{
		DialTimeout: time.Second, WriteTimeout: 2 * time.Second,
		BackoffBase: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
		QueueCap: 2048,
	}
	var mu sync.Mutex
	var fwd []int64
	var rev atomic.Int64
	recvB := func(from types.ProcID, fr frame) {
		if fr.Msg != nil && fr.Msg.Kind == types.KindApp {
			mu.Lock()
			fwd = append(fwd, fr.Msg.App.ID)
			mu.Unlock()
		}
	}
	recvA := func(from types.ProcID, fr frame) {
		if fr.Msg != nil && fr.Msg.Kind == types.KindApp {
			rev.Add(1)
		}
	}
	fa, err := newFabric("a", "127.0.0.1:0", cfg, recvA, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fa.Close()
	fb, err := newFabric("b", "127.0.0.1:0", cfg, recvB, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	fa.SetPeers(map[types.ProcID]string{"b": fb.Addr()})
	fb.SetPeers(map[types.ProcID]string{"a": fa.Addr()})

	send := func(f *fabric, dest types.ProcID, lo, hi int) {
		for i := lo; i < hi; i++ {
			f.Send([]types.ProcID{dest}, types.WireMsg{
				Kind: types.KindApp,
				App:  types.AppMsg{ID: int64(i), Payload: []byte(fmt.Sprintf("p-%03d", i))},
			})
		}
	}

	send(fa, "b", 0, 100)
	waitUntil(t, "first burst sent", 10*time.Second, func() bool {
		return fa.Stats()["b"].FramesSent == 100
	})

	// One-way: a→b blocked, b→a untouched.
	fa.Chaos().BlockOutbound("b")
	send(fa, "b", 100, 200)
	send(fb, "a", 0, 100)
	waitUntil(t, "blocked window to be dropped and counted", 10*time.Second, func() bool {
		return fa.Stats()["b"].ChaosDrops == 100
	})
	waitUntil(t, "reverse direction to stay open", 10*time.Second, func() bool {
		return rev.Load() == 100
	})

	fa.Chaos().Unblock("b")
	send(fa, "b", 200, 300)
	waitUntil(t, "post-heal burst sent", 10*time.Second, func() bool {
		return fa.Stats()["b"].FramesSent == 200
	})
	waitUntil(t, "post-heal burst delivered", 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(fwd) == 200
	})

	mu.Lock()
	defer mu.Unlock()
	for i, id := range fwd {
		want := int64(i)
		if i >= 100 {
			want = int64(i + 100) // the blocked window [100,200) is cleanly missing
		}
		if id != want {
			t.Fatalf("frame %d: got id %d, want %d (partition must not reorder or corrupt)", i, id, want)
		}
	}
	if s := fa.Stats()["b"]; s.FramesSent+s.ChaosDrops != 300 {
		t.Errorf("accounting: FramesSent=%d + ChaosDrops=%d != 300", s.FramesSent, s.ChaosDrops)
	}
}

// TestLiveBatchCoalescingBacklogFlushesOnce pins the syscall win: a backlog
// accumulated while the peer address was unknown drains in big batches —
// far fewer flushes than frames — through partial-write fragmentation, with
// order and boundaries intact.
func TestLiveBatchCoalescingBacklogFlushesOnce(t *testing.T) {
	cfg := TransportConfig{
		DialTimeout: time.Second, WriteTimeout: 2 * time.Second,
		BackoffBase: 20 * time.Millisecond, BackoffMax: 100 * time.Millisecond,
		QueueCap: 2048,
	}
	var mu sync.Mutex
	var got []int64
	recv := func(from types.ProcID, fr frame) {
		if fr.Msg != nil && fr.Msg.Kind == types.KindApp {
			mu.Lock()
			got = append(got, fr.Msg.App.ID)
			mu.Unlock()
		}
	}
	fa, err := newFabric("a", "127.0.0.1:0", cfg, func(types.ProcID, frame) {}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fa.Close()
	fb, err := newFabric("b", "127.0.0.1:0", cfg, recv, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	fa.Chaos().SetPartialWrites(true)

	// Enqueue the whole burst before the directory knows b's address: the
	// writer can only back off, so the backlog is guaranteed to be present
	// when the first connection comes up.
	const n = 100
	for i := 0; i < n; i++ {
		fa.Send([]types.ProcID{"b"}, types.WireMsg{
			Kind: types.KindApp,
			App:  types.AppMsg{ID: int64(i), Payload: []byte(fmt.Sprintf("bl-%03d", i))},
		})
	}
	fa.SetPeers(map[types.ProcID]string{"b": fb.Addr()})

	waitUntil(t, "backlog to drain", 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == n
	})

	mu.Lock()
	for i, id := range got {
		if id != int64(i) {
			t.Fatalf("frame %d out of order after batched drain: got %d", i, id)
		}
	}
	mu.Unlock()

	s := fa.Stats()["b"]
	if s.FramesSent != n {
		t.Fatalf("FramesSent = %d, want %d", s.FramesSent, n)
	}
	if s.Flushes == 0 || s.Flushes > n/5 {
		t.Errorf("Flushes = %d for %d frames — coalescing should need far fewer flushes than frames", s.Flushes, n)
	}
}

// TestSlowLorisSevered drives the classic slow-loris attack against a
// receiving fabric: the attacker completes the handshake promptly, then
// starts a frame and trickles its bytes one at a time, each inside the idle
// window. Per-byte deadline re-arming would keep such a parser open forever;
// the read-progress budget (a frame must complete within two
// ReadIdleTimeouts of its first byte) must sever the connection instead.
func TestSlowLorisSevered(t *testing.T) {
	idle := 300 * time.Millisecond
	var downs atomic.Int64
	var received atomic.Int64
	fb, err := newFabric("victim", "127.0.0.1:0", TransportConfig{ReadIdleTimeout: idle},
		func(types.ProcID, frame) { received.Add(1) },
		func(types.ProcID, error) { downs.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()

	conn, err := net.Dial("tcp", fb.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := wire.NewEncoder(conn)
	if err := enc.Encode(frame{From: "loris"}); err != nil {
		t.Fatal(err)
	}

	payload := types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: 1, Payload: bytes.Repeat([]byte("x"), 256)}}
	body, err := wire.EncodeFrame(frame{From: "loris", Msg: &payload})
	if err != nil {
		t.Fatal(err)
	}
	defer body.Release()
	b := body.Bytes()
	full := append([]byte{byte(len(b) >> 24), byte(len(b) >> 16), byte(len(b) >> 8), byte(len(b))}, b...)

	// Trickle well inside the idle window per byte: only the whole-frame
	// budget can catch this. The victim must cut us off long before the
	// frame completes (256+ bytes at 60ms each would take ~15s).
	start := time.Now()
	severed := false
	for i := 0; i < len(full) && time.Since(start) < 10*time.Second; i++ {
		conn.SetWriteDeadline(time.Now().Add(time.Second))
		if _, err := conn.Write(full[i : i+1]); err != nil {
			severed = true
			break
		}
		time.Sleep(60 * time.Millisecond)
		// A severed TCP connection can absorb a few more writes into the
		// kernel buffer before the reset surfaces; probe with a read too.
		conn.SetReadDeadline(time.Now().Add(time.Millisecond))
		if _, err := conn.Read(make([]byte, 1)); err != nil && !isTimeout(err) {
			severed = true
			break
		}
	}
	if !severed {
		t.Fatal("slow-loris connection was never severed by the read-progress budget")
	}
	waitUntil(t, "the victim to report the severed link", 5*time.Second, func() bool {
		return downs.Load() >= 1
	})
	if got := received.Load(); got != 0 {
		t.Errorf("victim delivered %d frames from a trickled stream that never completed one", got)
	}
}

func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

// TestTrickledSenderWithinBudgetSurvives is the other half of the slow-loris
// contract: a slow but live peer whose every frame still completes within
// the read-progress budget must NOT be severed — the per-leg deadline re-arm
// (rather than one deadline across the whole stream) is what makes both
// properties hold at once.
func TestTrickledSenderWithinBudgetSurvives(t *testing.T) {
	idle := 2 * time.Second
	var received atomic.Int64
	fb, err := newFabric("victim", "127.0.0.1:0", TransportConfig{ReadIdleTimeout: idle},
		func(_ types.ProcID, fr frame) {
			if fr.Msg != nil && fr.Msg.Kind == types.KindApp {
				received.Add(1)
			}
		},
		func(types.ProcID, error) {})
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()

	// The sender runs the goroutine engine (its chaos trickle wraps the
	// socket) regardless of the ambient reactor mode; the victim above runs
	// whichever engine the regime selects.
	sender, err := newFabric("loris", "127.0.0.1:0", TransportConfig{Reactor: ReactorOff, WriteTimeout: -1},
		func(types.ProcID, frame) {},
		func(types.ProcID, error) {})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	sender.SetPeers(map[types.ProcID]string{"victim": fb.Addr()})
	sender.Chaos().SetTrickle(2 * time.Millisecond)

	for i := 0; i < 3; i++ {
		sender.Send([]types.ProcID{"victim"}, types.WireMsg{Kind: types.KindApp, App: types.AppMsg{ID: int64(i), Payload: []byte("slow and steady")}})
	}
	waitUntil(t, "all trickled frames to arrive intact", 15*time.Second, func() bool {
		return received.Load() == 3
	})
}
