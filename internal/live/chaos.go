package live

import (
	"math/rand"
	"net"
	"sync"
	"time"

	"vsgm/internal/types"
)

// Chaos is a fabric's fault-injection controller: it degrades the node's
// links on command so tests (and operators) can watch the transport — and
// the group-membership layers above it — absorb adverse network conditions.
// All knobs are safe to flip while traffic is flowing.
//
// Faults are injected at frame granularity on the outbound path (latency,
// probabilistic drops and duplicates, per-peer partitions) and below frame
// granularity on the socket (partial writes). Framing is never corrupted:
// a dropped frame is a cleanly missing frame, exactly like a frame lost to
// a severed link, so the semantics match the simulator's lossy network.
//
// Note the spec caveat: probabilistic drops and duplicates violate the
// reliable-FIFO substrate the GCS automata assume between live processes,
// so spec-checked runs should confine them to idempotent traffic (e.g.
// heartbeats) or accept liveness-only assertions; partitions, latency, and
// partial writes are safe under the full checkers because the membership
// protocol observes and repairs them.
type Chaos struct {
	mu            sync.Mutex
	rng           *rand.Rand
	latency       time.Duration
	latencyJitter time.Duration
	dropProb      float64
	dropFor       map[types.ProcID]float64
	dupProb       float64
	partialWrites bool
	trickleGap    time.Duration
	blockOut      map[types.ProcID]bool
	blockIn       map[types.ProcID]bool
}

func newChaos() *Chaos {
	return &Chaos{
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
		dropFor:  make(map[types.ProcID]float64),
		blockOut: make(map[types.ProcID]bool),
		blockIn:  make(map[types.ProcID]bool),
	}
}

// SetLatency delays every outbound frame by base plus a uniform random
// extra of up to jitter.
func (c *Chaos) SetLatency(base, jitter time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.latency, c.latencyJitter = base, jitter
}

// SetDropProbability makes each outbound frame vanish with probability p.
func (c *Chaos) SetDropProbability(p float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropProb = p
}

// SetDropProbabilityFor makes each outbound frame addressed to one of the
// given peers vanish with probability p, leaving other links faithful —
// lossy server-to-server trunks with healthy client links, for example. It
// overrides the global probability for those peers; p = 0 removes the
// override.
func (c *Chaos) SetDropProbabilityFor(p float64, peers ...types.ProcID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, q := range peers {
		if p <= 0 {
			delete(c.dropFor, q)
		} else {
			c.dropFor[q] = p
		}
	}
}

// SetDuplicateProbability makes each outbound frame go out twice with
// probability p.
func (c *Chaos) SetDuplicateProbability(p float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dupProb = p
}

// SetPartialWrites fragments every socket write into small chunks,
// exercising reader resilience against arbitrarily segmented streams.
func (c *Chaos) SetPartialWrites(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.partialWrites = on
}

// SetTrickle turns this node into a slow sender: every socket write is
// stretched to one byte per gap, the classic slow-loris shape. Receivers
// with a read-progress budget (ReadIdleTimeout) must sever such a peer
// rather than hold a parser open forever; receivers without one will see
// frames arrive, just very slowly. Zero turns the fault off. Trickling is
// honored by the goroutine-per-link engine's socket writes (the reactor's
// raw-fd flush path is not wrapped).
func (c *Chaos) SetTrickle(gap time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trickleGap = gap
}

// BlockOutbound silently discards frames addressed to the given peers —
// this node's half of a partition. Blocking only one direction yields a
// one-way partition.
func (c *Chaos) BlockOutbound(peers ...types.ProcID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range peers {
		c.blockOut[p] = true
	}
}

// BlockInbound silently discards frames received from the given peers.
func (c *Chaos) BlockInbound(peers ...types.ProcID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range peers {
		c.blockIn[p] = true
	}
}

// Unblock lifts outbound and inbound blocks for the given peers.
func (c *Chaos) Unblock(peers ...types.ProcID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range peers {
		delete(c.blockOut, p)
		delete(c.blockIn, p)
	}
}

// Heal restores a faithful network: all blocks, probabilities, latency, and
// write fragmentation are cleared.
func (c *Chaos) Heal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.latency, c.latencyJitter = 0, 0
	c.dropProb, c.dupProb = 0, 0
	c.dropFor = make(map[types.ProcID]float64)
	c.partialWrites = false
	c.trickleGap = 0
	c.blockOut = make(map[types.ProcID]bool)
	c.blockIn = make(map[types.ProcID]bool)
}

// chaosVerdict is the fate of one outbound frame.
type chaosVerdict struct {
	delay time.Duration
	drop  bool
	dup   bool
}

func (c *Chaos) outbound(peer types.ProcID) chaosVerdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	var v chaosVerdict
	if c.blockOut[peer] {
		v.drop = true
		return v
	}
	v.delay = c.latency
	if c.latencyJitter > 0 {
		v.delay += time.Duration(c.rng.Int63n(int64(c.latencyJitter) + 1))
	}
	drop := c.dropProb
	if p, ok := c.dropFor[peer]; ok {
		drop = p
	}
	if drop > 0 && c.rng.Float64() < drop {
		v.drop = true
		return v
	}
	if c.dupProb > 0 && c.rng.Float64() < c.dupProb {
		v.dup = true
	}
	return v
}

func (c *Chaos) inboundBlocked(peer types.ProcID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blockIn[peer]
}

func (c *Chaos) partialWritesOn() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.partialWrites
}

func (c *Chaos) trickle() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.trickleGap
}

// wrap interposes the chaos controller between an encoder and its socket.
func (c *Chaos) wrap(conn net.Conn) net.Conn {
	return &chaosConn{Conn: conn, chaos: c}
}

// chaosConn fragments writes into small chunks when partial-write injection
// is on. Bytes are never reordered or lost, so framing stays intact — the
// fault is purely in how the stream is segmented on the wire.
type chaosConn struct {
	net.Conn
	chaos *Chaos
}

const partialWriteChunk = 7

func (cc *chaosConn) Write(p []byte) (int, error) {
	if gap := cc.chaos.trickle(); gap > 0 {
		total := 0
		for len(p) > 0 {
			n, err := cc.Conn.Write(p[:1])
			total += n
			if err != nil {
				return total, err
			}
			p = p[1:]
			if len(p) > 0 {
				time.Sleep(gap)
			}
		}
		return total, nil
	}
	if !cc.chaos.partialWritesOn() {
		return cc.Conn.Write(p)
	}
	total := 0
	for len(p) > 0 {
		k := min(partialWriteChunk, len(p))
		n, err := cc.Conn.Write(p[:k])
		total += n
		if err != nil {
			return total, err
		}
		p = p[k:]
	}
	return total, nil
}
