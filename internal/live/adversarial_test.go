package live

// Regime 7 satellites: adversarial scenarios first surfaced by the soak
// harness (internal/soak), promoted into deterministic unit tests. A flash
// crowd attaches in one burst and departs as abruptly; a server is
// resurrected from a stale WAL clone and must not regress any identifier it
// ever issued; and the node-side notification filter is exercised directly
// against out-of-order, replayed, and wrong-home notifications.

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"vsgm/internal/core"
	"vsgm/internal/membership"
	"vsgm/internal/types"
	"vsgm/internal/wire"
)

// TestLiveFlashCrowdAttachBurst admits a burst of new clients — constructed
// and courting their homes in the same instant — into a running deployment,
// runs traffic through the enlarged view, then closes the whole crowd at
// once. The servers must absorb both edges (including attach requests that
// time out during the burst and land late) without a spec violation.
func TestLiveFlashCrowdAttachBurst(t *testing.T) {
	w := newAttachWorld(t, 2, 3, attachOptions{})
	defer w.close()
	w.boot()

	w.waitFullView("core clients attached and in the full view", 0)
	w.roundOfTraffic("pre-crowd")

	const crowdSize = 6
	serverIDs := []types.ProcID{w.servers[0].ID(), w.servers[1].ID()}
	floor := w.maxViewID()
	crowd := make([]types.ProcID, 0, crowdSize)
	for i := 0; i < crowdSize; i++ {
		cid := types.ProcID(fmt.Sprintf("crowd%d", i))
		cfg := NodeConfig{
			ID:        cid,
			Addr:      "127.0.0.1:0",
			AutoBlock: true,
			// Offset well past the core clients' bases so identifiers
			// stay globally unique.
			MsgIDBase:      int64(i+1001) * 1_000_000,
			HomeServers:    []types.ProcID{serverIDs[i%2], serverIDs[(i+1)%2]},
			AttachInterval: 40 * time.Millisecond,
			AttachTimeout:  250 * time.Millisecond,
			Transport:      testTransport(),
			Observe:        func(ev core.Event) { w.onEvent(cid, ev) },
			OnSend:         func(m types.AppMsg) { w.recordSend(cid, m.ID) },
			ObserveNotify:  func(n membership.Notification) { w.onNotify(cid, n) },
		}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w.clients[cid] = node
		w.homes[cid] = cfg.HomeServers[0]
		crowd = append(crowd, cid)
	}
	dir := w.directory()
	for _, sn := range w.servers {
		sn.SetPeers(dir)
	}
	for _, node := range w.clients {
		node.SetPeers(dir)
	}

	w.waitFullView("crowd admitted into the full view", floor)
	w.roundOfTraffic("with-crowd")

	// Departure is as abrupt as the arrival: every crowd node closes without
	// ceremony. Deregistration must be a retried scrub, not a one-shot scan —
	// an attach request that timed out during the burst can land at a server
	// after the scan and resurrect a closed client's registration.
	floor = w.maxViewID()
	for _, cid := range crowd {
		w.clients[cid].Close()
		delete(w.clients, cid)
		delete(w.homes, cid)
	}
	core := w.allClients()
	w.waitFor("view shrinks back to the core clients", func() bool {
		clean := true
		for _, sn := range w.servers {
			for _, cid := range crowd {
				if sn.Clients().Contains(cid) {
					sn.RemoveClient(cid)
					clean = false
				}
			}
		}
		if !clean {
			w.servers[0].Reconfigure()
			return false
		}
		for _, node := range w.clients {
			v := node.CurrentView()
			if v.ID <= floor || !v.Members.Equal(core) {
				return false
			}
		}
		return true
	})
	w.roundOfTraffic("post-crowd")

	if err := w.specErr(); err != nil {
		t.Fatalf("spec violation across the flash crowd: %v", err)
	}
}

// TestLiveStaleWALResurrection clones a server's durable state, lets the
// deployment advance several reconfigurations past the clone, then crashes
// the server and resurrects it FROM THE STALE CLONE — the disaster-recovery
// mistake of restoring an old backup. The resurrected server's retained
// records are genuinely behind what its clients have seen; the only defense
// is the attach claim (each re-attach carries the client's identifier
// high-water mark), which must floor every identifier the server mints next.
// Without it the clients would reject the regressing notifications and the
// attachment would wedge; with it the deployment converges and Local
// Monotonicity holds (the spec suite flags any regression).
func TestLiveStaleWALResurrection(t *testing.T) {
	liveDir := t.TempDir()
	store, err := NewFileStore(liveDir)
	if err != nil {
		t.Fatal(err)
	}
	w := newAttachWorld(t, 1, 2, attachOptions{
		stores: map[types.ProcID]Store{"srv0": store},
	})
	defer w.close()
	w.boot()

	w.waitFullView("clients attached and in the full view", 0)
	w.roundOfTraffic("pre-snapshot")

	// Freeze the backup while the deployment keeps moving.
	staleDir := filepath.Join(t.TempDir(), "stale")
	if err := CloneStateDir(liveDir, staleDir); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 3; round++ {
		f := w.maxViewID()
		w.servers[0].Reconfigure()
		w.waitFullView(fmt.Sprintf("advance round %d past the backup", round), f)
	}
	w.roundOfTraffic("post-snapshot")
	advanced := w.servers[0].Records()

	addr := w.servers[0].Addr()
	floor := w.maxViewID()
	w.servers[0].Close()

	// The clone must be genuinely stale — otherwise the resurrection below
	// proves nothing. Inspect it before the restarted server touches it.
	staleStore, err := NewFileStore(staleDir)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := staleStore.Load()
	if err != nil {
		t.Fatal(err)
	}
	for p, adv := range advanced {
		st, ok := loaded[p]
		if !ok || st.CID == 0 {
			t.Fatalf("clone has no populated record for %s: %+v (ok=%v)", p, st, ok)
		}
		if st.CID >= adv.CID || st.Vid >= adv.Vid {
			t.Fatalf("clone is not stale for %s: clone %+v, live %+v", p, st, adv)
		}
	}

	sn, err := NewServerNode(ServerConfig{
		ID:        "srv0",
		Addr:      addr,
		Servers:   types.NewProcSet("srv0"),
		Store:     staleStore,
		Watchdog:  25 * time.Millisecond,
		Transport: testTransport(),
	})
	if err != nil {
		t.Fatal(err)
	}
	w.servers[0] = sn // w.close now tears down the resurrected instance
	sn.SetPeers(w.directory())
	sn.SetReachable(types.NewProcSet("srv0"))

	w.waitFullView("clients re-attached to the resurrected server", floor)
	w.roundOfTraffic("post-resurrection")

	// Every identifier minted after the resurrection dominates everything
	// the clients saw before the crash, despite the stale store.
	got := sn.Records()
	for p, adv := range advanced {
		g, ok := got[p]
		if !ok || g.CID <= adv.CID || g.Vid <= adv.Vid {
			t.Fatalf("resurrected server regressed %s: pre-crash %+v, post %+v (ok=%v)", p, adv, g, ok)
		}
	}
	if err := w.specErr(); err != nil {
		t.Fatalf("spec violation across the stale-WAL resurrection: %v", err)
	}
}

// TestLiveAttachLeaseEvictsSilentClient kills a client the instant after its
// registration lands — the flash-crowd straggler the soak harness first
// caught. No peer ever claims a dead client under a higher epoch and no
// detach is sent, so only the attach lease (the server-side failure detector
// for clients) can remove it; without the sweep every later view would carry
// the corpse and its sync rounds would never complete.
func TestLiveAttachLeaseEvictsSilentClient(t *testing.T) {
	const lease = 300 * time.Millisecond
	w := newAttachWorld(t, 1, 2, attachOptions{
		tuneServer: func(sid types.ProcID, cfg *ServerConfig) { cfg.AttachLease = lease },
	})
	defer w.close()
	w.boot()

	w.waitFullView("core clients attached and in the full view", 0)
	w.roundOfTraffic("pre-ghost")

	// A third client attaches, enters one view, and dies without ceremony.
	floor := w.maxViewID()
	ghost := types.ProcID("ghost")
	cfg := NodeConfig{
		ID:             ghost,
		Addr:           "127.0.0.1:0",
		AutoBlock:      true,
		MsgIDBase:      9_000_000,
		HomeServers:    []types.ProcID{w.servers[0].ID()},
		AttachInterval: 40 * time.Millisecond,
		AttachTimeout:  250 * time.Millisecond,
		Transport:      testTransport(),
		Observe:        func(ev core.Event) { w.onEvent(ghost, ev) },
		OnSend:         func(m types.AppMsg) { w.recordSend(ghost, m.ID) },
		ObserveNotify:  func(n membership.Notification) { w.onNotify(ghost, n) },
	}
	node, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.clients[ghost] = node
	w.homes[ghost] = cfg.HomeServers[0]
	dir := w.directory()
	w.servers[0].SetPeers(dir)
	for _, n := range w.clients {
		n.SetPeers(dir)
	}
	w.waitFullView("ghost admitted into the full view", floor)

	floor = w.maxViewID()
	node.Close() // no detach: the process is simply gone
	delete(w.clients, ghost)
	delete(w.homes, ghost)

	// The lease sweep alone must deregister the ghost and shrink the view.
	core := w.allClients()
	w.waitFor("lease eviction shrinks the view back to the core", func() bool {
		if w.servers[0].Clients().Contains(ghost) {
			return false
		}
		for _, n := range w.clients {
			v := n.CurrentView()
			if v.ID <= floor || !v.Members.Equal(core) {
				return false
			}
		}
		return true
	})
	if got := w.servers[0].Stats().LeaseEvictions; got < 1 {
		t.Fatalf("lease evictions = %d, want at least 1", got)
	}
	w.roundOfTraffic("post-ghost")

	if err := w.specErr(); err != nil {
		t.Fatalf("spec violation across the lease eviction: %v", err)
	}
}

// TestNodeNotifyFilterDropsRegressions drives the node-side notification
// filter directly: after an attach ack establishes the identifier
// high-water mark, notifications from the wrong server, start changes at or
// below the mark, views at or below the last view, views built on a start
// change the node never accepted, and straight replays must all be dropped
// (and counted), while the in-order stream passes.
func TestNodeNotifyFilterDropsRegressions(t *testing.T) {
	node, err := NewNode(NodeConfig{
		ID:             "c",
		Addr:           "127.0.0.1:0",
		AutoBlock:      true,
		HomeServers:    []types.ProcID{"srv0", "srv1"},
		AttachInterval: time.Hour, // driven by hand below
		AttachTimeout:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	// The ack from the courted home seeds the watermarks (a previous
	// incarnation's identifiers, relayed by the server's retained record).
	base := types.StartChangeID(2)<<32 + 5
	node.handleAttach("srv0", wire.Attach{Kind: wire.AttachAck, Client: "c", Epoch: 2, CID: base, Vid: 9})
	if got := node.Home(); got != "srv0" {
		t.Fatalf("home after ack = %q, want srv0", got)
	}

	sc := func(id types.StartChangeID) *membership.Notification {
		return &membership.Notification{
			Kind:        membership.NotifyStartChange,
			StartChange: types.StartChange{ID: id, Set: types.NewProcSet("c")},
		}
	}
	view := func(id types.ViewID, scid types.StartChangeID) *membership.Notification {
		return &membership.Notification{
			Kind: membership.NotifyView,
			View: types.NewView(id, types.NewProcSet("c"),
				map[types.ProcID]types.StartChangeID{"c": scid}),
		}
	}

	cases := []struct {
		name string
		from types.ProcID
		ntf  *membership.Notification
		want bool
	}{
		{"start change from a non-home server", "srv1", sc(base + 1), false},
		{"start change at the watermark", "srv0", sc(base), false},
		{"fresh start change", "srv0", sc(base + 1), true},
		{"view at the last view id", "srv0", view(9, base + 1), false},
		{"view built on an unaccepted start change", "srv0", view(10, base), false},
		{"fresh view", "srv0", view(10, base + 1), true},
		{"replay of the fresh view", "srv0", view(10, base + 1), false},
	}
	for _, tc := range cases {
		if got := node.acceptNotify(tc.from, tc.ntf); got != tc.want {
			t.Fatalf("%s: acceptNotify = %v, want %v", tc.name, got, tc.want)
		}
	}
	if st := node.Stats(); st.StaleNotifies != 5 {
		t.Fatalf("stale-notification counter = %d, want 5", st.StaleNotifies)
	}

	// Legacy mode (no HomeServers) has no attach protocol and no filter:
	// the oracle feeds a single trusted stream.
	legacy, err := NewNode(NodeConfig{ID: "x", Addr: "127.0.0.1:0", AutoBlock: true})
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	if !legacy.acceptNotify("anyone", sc(1)) {
		t.Fatal("legacy node filtered a notification")
	}
}
