package explore

import (
	"fmt"
	"strings"
	"testing"

	"vsgm/internal/types"
)

// reconfigScenario is the hard window the paper's algorithm targets: a
// group forms, every member multicasts, and — with all of that traffic
// still undelivered — the membership announces and commits a change. Every
// interleaving of app messages, view messages, synchronization messages,
// and membership notifications must satisfy all specifications and converge.
func reconfigScenario(members, survivors types.ProcSet) Scenario {
	return func(w *World) error {
		if err := w.StartChange(members); err != nil {
			return err
		}
		if _, err := w.DeliverView(members); err != nil {
			return err
		}
		if err := w.Drain(); err != nil {
			return err
		}
		for _, p := range members.Sorted() {
			if _, err := w.Send(p, []byte("m-"+string(p))); err != nil {
				return err
			}
		}
		// Without draining: the change races the application traffic.
		if err := w.StartChange(survivors); err != nil {
			return err
		}
		v, err := w.DeliverView(survivors)
		if err != nil {
			return err
		}
		if err := w.Drain(); err != nil {
			return err
		}
		for _, p := range survivors.Sorted() {
			if got := w.Endpoint(p).CurrentView(); !got.Equal(v) {
				return fmt.Errorf("%s stabilized in %s, want %s", p, got, v)
			}
		}
		return nil
	}
}

func TestExhaustiveTwoProcessReconfiguration(t *testing.T) {
	budget := 15_000
	if testing.Short() {
		budget = 1_000
	}
	members := types.NewProcSet("a", "b")
	res, err := Exhaustive(Config{Procs: []types.ProcID{"a", "b"}},
		reconfigScenario(members, members), budget)
	if err != nil {
		t.Fatalf("after %d schedules: %v", res.Schedules, err)
	}
	if !res.Exhausted {
		t.Logf("schedule tree larger than the budget; ran %d schedules", res.Schedules)
	}
	if res.Schedules < 10 {
		t.Fatalf("only %d schedules explored; the scenario has real nondeterminism", res.Schedules)
	}
	t.Logf("explored %d schedules (exhausted=%v)", res.Schedules, res.Exhausted)
}

func TestExhaustiveMemberLeaves(t *testing.T) {
	members := types.NewProcSet("a", "b", "c")
	survivors := types.NewProcSet("a", "b")
	res, err := Exhaustive(Config{Procs: []types.ProcID{"a", "b", "c"}},
		reconfigScenario(members, survivors), 3_000)
	if err != nil {
		t.Fatalf("after %d schedules: %v", res.Schedules, err)
	}
	t.Logf("explored %d schedules (exhausted=%v)", res.Schedules, res.Exhausted)
}

func TestSwarmThreeProcesses(t *testing.T) {
	members := types.NewProcSet("a", "b", "c")
	runs := 300
	if testing.Short() {
		runs = 50
	}
	res, err := Swarm(Config{Procs: []types.ProcID{"a", "b", "c"}},
		reconfigScenario(members, members), runs, 1)
	if err != nil {
		t.Fatalf("after %d schedules: %v", res.Schedules, err)
	}
}

func TestSwarmCascadingChange(t *testing.T) {
	// Two changes committed back to back: schedules where the second
	// start_change overtakes the first view exercise the obsolete-view
	// skipping logic under every interleaving.
	procs := []types.ProcID{"a", "b", "c"}
	all := types.NewProcSet(procs...)
	pair := types.NewProcSet("a", "b")
	scenario := func(w *World) error {
		if err := w.StartChange(pair); err != nil {
			return err
		}
		if _, err := w.DeliverView(pair); err != nil {
			return err
		}
		if err := w.Drain(); err != nil {
			return err
		}
		if _, err := w.Send("a", []byte("x")); err != nil {
			return err
		}
		if err := w.StartChange(all); err != nil {
			return err
		}
		if _, err := w.DeliverView(all); err != nil {
			return err
		}
		// Cascade before anyone can settle.
		if err := w.StartChange(all); err != nil {
			return err
		}
		v, err := w.DeliverView(all)
		if err != nil {
			return err
		}
		if err := w.Drain(); err != nil {
			return err
		}
		for _, p := range procs {
			if got := w.Endpoint(p).CurrentView(); !got.Equal(v) {
				return fmt.Errorf("%s stabilized in %s, want %s", p, got, v)
			}
		}
		return nil
	}
	runs := 300
	if testing.Short() {
		runs = 50
	}
	if _, err := Swarm(Config{Procs: procs}, scenario, runs, 7); err != nil {
		t.Fatal(err)
	}
}

func TestExplorerDetectsInjectedViolation(t *testing.T) {
	// Sanity: the explorer actually fails when the scenario's assertions
	// fail — a scenario that claims a wrong final view must be reported.
	members := types.NewProcSet("a", "b")
	scenario := func(w *World) error {
		if err := w.StartChange(members); err != nil {
			return err
		}
		if _, err := w.DeliverView(members); err != nil {
			return err
		}
		if err := w.Drain(); err != nil {
			return err
		}
		return fmt.Errorf("injected failure")
	}
	_, err := Exhaustive(Config{Procs: []types.ProcID{"a", "b"}}, scenario, 100)
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("err = %v, want the injected failure", err)
	}
}

func TestSwarmHierarchyAndOptimizations(t *testing.T) {
	// Model-check the extensions together: the two-tier hierarchy, the
	// §5.2.4 small/elided syncs, and stability acks, under every explored
	// interleaving of a reconfiguration with in-flight traffic.
	procs := []types.ProcID{"a", "b", "c", "d"}
	members := types.NewProcSet(procs...)
	survivors := types.NewProcSet("a", "b", "c")
	runs := 250
	if testing.Short() {
		runs = 40
	}
	cfg := Config{
		Procs:              procs,
		SmallSync:          true,
		AckInterval:        1,
		HierarchyGroupSize: 2,
	}
	if _, err := Swarm(cfg, reconfigScenario(members, survivors), runs, 11); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustiveHierarchyThreeMembers(t *testing.T) {
	budget := 4_000
	if testing.Short() {
		budget = 500
	}
	procs := []types.ProcID{"a", "b", "c"}
	members := types.NewProcSet(procs...)
	cfg := Config{Procs: procs, HierarchyGroupSize: 2}
	res, err := Exhaustive(cfg, reconfigScenario(members, members), budget)
	if err != nil {
		t.Fatalf("after %d schedules: %v", res.Schedules, err)
	}
	t.Logf("explored %d hierarchy schedules (exhausted=%v)", res.Schedules, res.Exhausted)
}

func TestSwarmCrashDuringReconfiguration(t *testing.T) {
	// A member crashes while the change that would have included it is in
	// flight; the membership then excludes it. Every interleaving of the
	// doomed change's traffic with the corrective change must stay safe
	// and converge.
	procs := []types.ProcID{"a", "b", "c"}
	all := types.NewProcSet(procs...)
	survivors := types.NewProcSet("a", "b")
	scenario := func(w *World) error {
		if err := w.StartChange(all); err != nil {
			return err
		}
		if _, err := w.DeliverView(all); err != nil {
			return err
		}
		if err := w.Drain(); err != nil {
			return err
		}
		if _, err := w.Send("a", []byte("x")); err != nil {
			return err
		}
		if _, err := w.Send("c", []byte("doomed")); err != nil {
			return err
		}
		if err := w.StartChange(all); err != nil {
			return err
		}
		// c dies mid-change; the membership corrects to the survivors.
		if err := w.Crash("c"); err != nil {
			return err
		}
		if err := w.StartChange(survivors); err != nil {
			return err
		}
		v, err := w.DeliverView(survivors)
		if err != nil {
			return err
		}
		if err := w.Drain(); err != nil {
			return err
		}
		for _, p := range survivors.Sorted() {
			if got := w.Endpoint(p).CurrentView(); !got.Equal(v) {
				return fmt.Errorf("%s stabilized in %s, want %s", p, got, v)
			}
		}
		return nil
	}
	runs := 300
	if testing.Short() {
		runs = 50
	}
	if _, err := Swarm(Config{Procs: procs}, scenario, runs, 13); err != nil {
		t.Fatal(err)
	}
}

func TestSwarmRecoveryRejoin(t *testing.T) {
	procs := []types.ProcID{"a", "b"}
	all := types.NewProcSet(procs...)
	scenario := func(w *World) error {
		if err := w.StartChange(all); err != nil {
			return err
		}
		if _, err := w.DeliverView(all); err != nil {
			return err
		}
		if err := w.Drain(); err != nil {
			return err
		}
		if err := w.Crash("b"); err != nil {
			return err
		}
		if err := w.StartChange(types.NewProcSet("a")); err != nil {
			return err
		}
		if _, err := w.DeliverView(types.NewProcSet("a")); err != nil {
			return err
		}
		if err := w.Drain(); err != nil {
			return err
		}
		if err := w.Recover("b"); err != nil {
			return err
		}
		if err := w.StartChange(all); err != nil {
			return err
		}
		v, err := w.DeliverView(all)
		if err != nil {
			return err
		}
		if err := w.Drain(); err != nil {
			return err
		}
		for _, p := range procs {
			if got := w.Endpoint(p).CurrentView(); !got.Equal(v) {
				return fmt.Errorf("%s stabilized in %s, want %s", p, got, v)
			}
		}
		return nil
	}
	res, err := Exhaustive(Config{Procs: procs}, scenario, 3000)
	if err != nil {
		t.Fatalf("after %d schedules: %v", res.Schedules, err)
	}
	t.Logf("explored %d crash/recovery schedules (exhausted=%v)", res.Schedules, res.Exhausted)
}
