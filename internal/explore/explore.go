// Package explore is a stateless model checker for the group communication
// service: it systematically explores message and membership-notification
// interleavings of a fixed scenario, validating every schedule against the
// specification checkers. Where the discrete-event simulator (internal/sim)
// samples schedules from a latency distribution, the explorer *enumerates*
// them — depth-first over the tree of scheduling choices, with replay from
// the initial state on every branch — plus a seeded random swarm mode for
// the deeper parts of the tree.
//
// The nondeterminism explored is exactly the asynchronous environment's:
// which nonempty CO_RFIFO channel delivers next, and when each client hears
// each membership notification. Per-channel and per-client FIFO order is
// preserved, matching the substrate's guarantees.
package explore

import (
	"fmt"
	"math/rand"
	"sort"

	"vsgm/internal/core"
	"vsgm/internal/corfifo"
	"vsgm/internal/membership"
	"vsgm/internal/spec"
	"vsgm/internal/types"
)

// chooser resolves scheduling choices. A prefix of forced choices replays a
// branch; choices beyond the prefix default to 0 and are recorded together
// with their branching factors so the explorer can backtrack.
type chooser struct {
	prefix []int
	taken  []int
	width  []int
	rng    *rand.Rand // non-nil in swarm mode: free choices drawn at random
}

func (c *chooser) choose(n int) int {
	idx := len(c.taken)
	pick := 0
	if idx < len(c.prefix) {
		pick = c.prefix[idx]
	} else if c.rng != nil {
		pick = c.rng.Intn(n)
	}
	if pick >= n {
		pick = n - 1
	}
	c.taken = append(c.taken, pick)
	c.width = append(c.width, n)
	return pick
}

// World is one instantiation of the system under exploration: end-points
// over a substrate whose deliveries the chooser schedules, plus a
// membership oracle whose notifications queue per client.
type World struct {
	procs  []types.ProcID
	net    *corfifo.Network
	eps    map[types.ProcID]*core.Endpoint
	oracle *membership.Oracle
	suite  *spec.Suite

	notifs map[types.ProcID][]membership.Notification
	choose func(n int) int
}

// Scenario drives a World through a fixed script; the schedule within the
// script is what the explorer varies.
type Scenario func(w *World) error

// Config parameterizes an exploration.
type Config struct {
	// Procs lists the end-point identifiers; required.
	Procs []types.ProcID
	// Level selects the automaton layer; defaults to core.LevelGCS.
	Level core.Level
	// Forwarding selects the forwarding strategy; defaults to simple.
	Forwarding core.ForwardingStrategy
	// SmallSync enables the Section 5.2.4 optimizations.
	SmallSync bool
	// AckInterval enables within-view stability acknowledgments.
	AckInterval int
	// HierarchyGroupSize enables the two-tier synchronization hierarchy.
	HierarchyGroupSize int
	// NewSuite builds the specification suite checked on every schedule;
	// defaults to spec.FullSuite.
	NewSuite func() *spec.Suite
}

func newWorld(cfg Config, choose func(int) int) (*World, error) {
	if cfg.Level == 0 {
		cfg.Level = core.LevelGCS
	}
	newSuite := cfg.NewSuite
	if newSuite == nil {
		newSuite = func() *spec.Suite { return spec.FullSuite(spec.WithTrace()) }
	}
	w := &World{
		procs:  append([]types.ProcID(nil), cfg.Procs...),
		net:    corfifo.NewNetwork(),
		eps:    make(map[types.ProcID]*core.Endpoint, len(cfg.Procs)),
		suite:  newSuite(),
		notifs: make(map[types.ProcID][]membership.Notification),
		choose: choose,
	}
	w.oracle = membership.NewOracle(func(p types.ProcID, n membership.Notification) {
		w.notifs[p] = append(w.notifs[p], n)
	})
	for i, p := range cfg.Procs {
		ep, err := core.NewEndpoint(core.Config{
			ID:                 p,
			Transport:          w.net.Handle(p),
			Level:              cfg.Level,
			Forwarding:         cfg.Forwarding,
			SmallSync:          cfg.SmallSync,
			AckInterval:        cfg.AckInterval,
			HierarchyGroupSize: cfg.HierarchyGroupSize,
			AutoBlock:          true,
			MsgIDBase:          int64(i+1) * 1_000_000,
		})
		if err != nil {
			return nil, err
		}
		w.eps[p] = ep
		w.oracle.Register(p)
		pp := p
		w.net.Register(p, corfifo.HandlerFunc(func(from types.ProcID, m types.WireMsg) {
			ep.HandleMessage(from, m)
			w.drain(pp)
		}))
	}
	return w, nil
}

// Procs returns the world's process identifiers.
func (w *World) Procs() []types.ProcID {
	return append([]types.ProcID(nil), w.procs...)
}

// Endpoint returns the end-point for p.
func (w *World) Endpoint(p types.ProcID) *core.Endpoint { return w.eps[p] }

// Send multicasts from p.
func (w *World) Send(p types.ProcID, payload []byte) (types.AppMsg, error) {
	m, err := w.eps[p].Send(payload)
	if err != nil {
		return types.AppMsg{}, err
	}
	w.suite.OnEvent(spec.ESend{P: p, MsgID: m.ID})
	w.drain(p)
	return m, nil
}

// StartChange begins a membership change.
func (w *World) StartChange(set types.ProcSet) error {
	_, err := w.oracle.StartChange(set)
	return err
}

// DeliverView commits a membership view.
func (w *World) DeliverView(set types.ProcSet) (types.View, error) {
	return w.oracle.DeliverView(set)
}

// Crash crashes end-point p (scenario-driven; crash timing relative to the
// schedule is explored by where the scenario places the call).
func (w *World) Crash(p types.ProcID) error {
	w.suite.OnEvent(spec.ECrash{P: p})
	w.eps[p].Crash()
	w.net.Unregister(p)
	return w.oracle.Crash(p)
}

// Recover restarts end-point p from its initial state.
func (w *World) Recover(p types.ProcID) error {
	w.suite.OnEvent(spec.ERecover{P: p})
	if err := w.oracle.Recover(p); err != nil {
		return err
	}
	ep := w.eps[p]
	w.net.Register(p, corfifo.HandlerFunc(func(from types.ProcID, m types.WireMsg) {
		ep.HandleMessage(from, m)
		w.drain(p)
	}))
	ep.Recover()
	w.drain(p)
	return nil
}

func (w *World) drain(p types.ProcID) {
	for _, ev := range w.eps[p].TakeEvents() {
		switch e := ev.(type) {
		case core.DeliverEvent:
			w.suite.OnEvent(spec.EDeliver{P: p, From: e.Sender, MsgID: e.Msg.ID})
		case core.ViewEvent:
			w.suite.OnEvent(spec.EView{P: p, View: e.View, Trans: e.TransitionalSet,
				HasTrans: e.TransitionalSet != nil})
		case core.BlockEvent:
			w.suite.OnEvent(spec.EBlock{P: p})
			w.suite.OnEvent(spec.EBlockOK{P: p})
		}
	}
}

// step lists the schedulable steps and executes the chooser's pick. It
// reports false at quiescence.
func (w *World) step() bool {
	type stepFn struct {
		name string
		run  func()
	}
	var steps []stepFn
	for _, from := range w.procs {
		for _, to := range w.procs {
			if from == to || w.net.Pending(from, to) == 0 {
				continue
			}
			from, to := from, to
			steps = append(steps, stepFn{
				name: fmt.Sprintf("deliver %s->%s", from, to),
				run:  func() { w.net.DeliverNext(from, to) },
			})
		}
	}
	for _, p := range w.procs {
		if len(w.notifs[p]) == 0 {
			continue
		}
		p := p
		steps = append(steps, stepFn{
			name: fmt.Sprintf("notify %s", p),
			run: func() {
				n := w.notifs[p][0]
				w.notifs[p] = w.notifs[p][1:]
				switch n.Kind {
				case membership.NotifyStartChange:
					w.suite.OnEvent(spec.EMStartChange{P: p, SC: n.StartChange})
					w.eps[p].HandleStartChange(n.StartChange)
				case membership.NotifyView:
					w.suite.OnEvent(spec.EMView{P: p, View: n.View})
					w.eps[p].HandleView(n.View)
				}
				w.drain(p)
			},
		})
	}
	if len(steps) == 0 {
		return false
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i].name < steps[j].name })
	steps[w.choose(len(steps))].run()
	return true
}

// Drain schedules steps until quiescence (bounded against livelock).
func (w *World) Drain() error {
	for i := 0; i < 1_000_000; i++ {
		if !w.step() {
			return nil
		}
	}
	return fmt.Errorf("explore: no quiescence after 1M steps")
}

// Result summarizes one exploration.
type Result struct {
	// Schedules is the number of schedules executed.
	Schedules int
	// Exhausted reports whether the whole choice tree was covered (only
	// meaningful for Exhaustive).
	Exhausted bool
}

// runOne executes the scenario under the given chooser and returns the
// chooser (for backtracking) and any violation.
func runOne(cfg Config, scenario Scenario, ch *chooser) (*chooser, error) {
	w, err := newWorld(cfg, ch.choose)
	if err != nil {
		return ch, err
	}
	if err := scenario(w); err != nil {
		return ch, err
	}
	if err := w.suite.Err(); err != nil {
		return ch, fmt.Errorf("schedule %v: %w", ch.taken, err)
	}
	return ch, nil
}

// Exhaustive explores the scenario's schedule tree depth-first, replaying
// from the initial state on every branch, until the tree is exhausted or
// maxSchedules have run. It returns an error for the first schedule that
// violates a specification (or fails the scenario's own assertions).
func Exhaustive(cfg Config, scenario Scenario, maxSchedules int) (Result, error) {
	var res Result
	prefix := []int{}
	for {
		if res.Schedules >= maxSchedules {
			return res, nil
		}
		ch, err := runOne(cfg, scenario, &chooser{prefix: prefix})
		res.Schedules++
		if err != nil {
			return res, err
		}
		// Backtrack: find the deepest choice point with an untried branch.
		next := append([]int(nil), ch.taken...)
		i := len(next) - 1
		for ; i >= 0; i-- {
			if next[i]+1 < ch.width[i] {
				break
			}
		}
		if i < 0 {
			res.Exhausted = true
			return res, nil
		}
		prefix = append(next[:i:i], next[i]+1)
	}
}

// Swarm explores `runs` random schedules drawn from the given seed.
func Swarm(cfg Config, scenario Scenario, runs int, seed int64) (Result, error) {
	var res Result
	for i := 0; i < runs; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		_, err := runOne(cfg, scenario, &chooser{rng: rng})
		res.Schedules++
		if err != nil {
			return res, err
		}
	}
	return res, nil
}
