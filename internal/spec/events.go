// Package spec implements the paper's specification automata as trace
// checkers. Each abstract automaton of Section 4 (WV_RFIFO:SPEC,
// VS_RFIFO:SPEC, TRANS_SET:SPEC, SELF:SPEC), the MBRSHP specification of
// Section 3.1, the blocking-client specification of Figure 12, and the
// conditional liveness property (Property 4.2) are realized as online
// checkers over a global trace of external events.
//
// A trace is legal for a specification automaton exactly when the checker
// reports no violations; the checkers therefore play the role of the
// simulation proofs of Sections 6-7, validated mechanically on every
// execution the tests and benchmarks produce.
package spec

import (
	"fmt"

	"vsgm/internal/types"
)

// Event is one external action of the composed system, tagged with the
// process it occurs at.
//
// Immutability contract: the sets, views, and start-changes carried by an
// event are snapshots — the emitter must never mutate them after OnEvent
// (emitting a private copy, or a shared snapshot that is thereafter
// read-only, both satisfy this; the membership server deliberately shares
// one estimate/view across a whole notification fan-out). The checkers
// rely on this and store payloads by reference: defensively deep-cloning a
// view per event would make checking a deployment of n processes O(n²) per
// reconfiguration, which is what caps large-population simulations.
type Event interface {
	Proc() types.ProcID
	String() string
}

// ESend is GCS.send_p(m): the application at P multicasts the message.
type ESend struct {
	P     types.ProcID
	MsgID int64
}

// Proc returns the event's process.
func (e ESend) Proc() types.ProcID { return e.P }

func (e ESend) String() string { return fmt.Sprintf("%s: send(#%d)", e.P, e.MsgID) }

// EDeliver is GCS.deliver_p(q, m): P's application receives message MsgID
// originally sent by From.
type EDeliver struct {
	P     types.ProcID
	From  types.ProcID
	MsgID int64
}

// Proc returns the event's process.
func (e EDeliver) Proc() types.ProcID { return e.P }

func (e EDeliver) String() string {
	return fmt.Sprintf("%s: deliver(from=%s #%d)", e.P, e.From, e.MsgID)
}

// EView is GCS.view_p(v, T): P's application receives the new view. HasTrans
// distinguishes levels that deliver transitional sets from WV_RFIFO runs.
type EView struct {
	P        types.ProcID
	View     types.View
	Trans    types.ProcSet
	HasTrans bool
}

// Proc returns the event's process.
func (e EView) Proc() types.ProcID { return e.P }

func (e EView) String() string {
	if e.HasTrans {
		return fmt.Sprintf("%s: view(%s T=%s)", e.P, e.View, e.Trans)
	}
	return fmt.Sprintf("%s: view(%s)", e.P, e.View)
}

// EBlock is GCS.block_p().
type EBlock struct{ P types.ProcID }

// Proc returns the event's process.
func (e EBlock) Proc() types.ProcID { return e.P }

func (e EBlock) String() string { return fmt.Sprintf("%s: block()", e.P) }

// EBlockOK is client.block_ok_p().
type EBlockOK struct{ P types.ProcID }

// Proc returns the event's process.
func (e EBlockOK) Proc() types.ProcID { return e.P }

func (e EBlockOK) String() string { return fmt.Sprintf("%s: block_ok()", e.P) }

// EMStartChange is MBRSHP.start_change_p(cid, set).
type EMStartChange struct {
	P  types.ProcID
	SC types.StartChange
}

// Proc returns the event's process.
func (e EMStartChange) Proc() types.ProcID { return e.P }

func (e EMStartChange) String() string {
	return fmt.Sprintf("%s: mbrshp.start_change(cid=%d set=%s)", e.P, e.SC.ID, e.SC.Set)
}

// EMView is MBRSHP.view_p(v).
type EMView struct {
	P    types.ProcID
	View types.View
}

// Proc returns the event's process.
func (e EMView) Proc() types.ProcID { return e.P }

func (e EMView) String() string { return fmt.Sprintf("%s: mbrshp.view(%s)", e.P, e.View) }

// ECrash is crash_p() (Section 8).
type ECrash struct{ P types.ProcID }

// Proc returns the event's process.
func (e ECrash) Proc() types.ProcID { return e.P }

func (e ECrash) String() string { return fmt.Sprintf("%s: crash()", e.P) }

// ERecover is recover_p() (Section 8).
type ERecover struct{ P types.ProcID }

// Proc returns the event's process.
func (e ERecover) Proc() types.ProcID { return e.P }

func (e ERecover) String() string { return fmt.Sprintf("%s: recover()", e.P) }

// Checker consumes a trace event-by-event and accumulates violations.
type Checker interface {
	// Name identifies the specification the checker enforces.
	Name() string
	// OnEvent feeds the next trace event.
	OnEvent(ev Event)
	// Finalize performs end-of-trace checks (used by properties that can
	// only be evaluated once the whole trace is known).
	Finalize()
	// Violations returns the violations found so far.
	Violations() []string
}

// base provides violation collection for checkers.
type base struct {
	name string
	errs []string
}

func (b *base) Name() string { return b.name }

// Violations returns the collected violations.
func (b *base) Violations() []string { return b.errs }

func (b *base) failf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Sprintf(format, args...))
}
