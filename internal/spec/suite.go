package spec

import (
	"errors"
	"fmt"
	"strings"

	"vsgm/internal/types"
)

// Suite runs a set of checkers over one trace and aggregates violations. It
// also retains the raw trace so liveness (an end-to-end property of whole
// executions) can be evaluated after the fact.
type Suite struct {
	checkers []Checker
	trace    []Event
	keep     bool
	sample   func(types.ProcID) bool
	seen     int64
	kept     int64
}

// SuiteOption configures a Suite.
type SuiteOption func(*Suite)

// WithTrace makes the suite retain the full event trace (required by
// CheckLiveness and useful in test failure output).
func WithTrace() SuiteOption {
	return func(s *Suite) { s.keep = true }
}

// NewSuite builds a suite over the given checkers.
func NewSuite(checkers []Checker, opts ...SuiteOption) *Suite {
	s := &Suite{checkers: checkers}
	for _, o := range opts {
		o(s)
	}
	return s
}

// FullSuite returns the checkers for a complete GCS-level run: MBRSHP,
// WV_RFIFO, VS_RFIFO, TRANS_SET, SELF, and the blocking-client contract.
func FullSuite(opts ...SuiteOption) *Suite {
	return NewSuite([]Checker{
		NewMembership(),
		NewWVRFIFO(),
		NewVSRFIFO(),
		NewTransSet(),
		NewSelfDelivery(),
		NewBlockingClient(),
	}, opts...)
}

// VSSuite returns the checkers valid for a VS_RFIFO+TS-level run (no Self
// Delivery, no blocking contract).
func VSSuite(opts ...SuiteOption) *Suite {
	return NewSuite([]Checker{
		NewMembership(),
		NewWVRFIFO(),
		NewVSRFIFO(),
		NewTransSet(),
	}, opts...)
}

// WVSuite returns the checkers valid for a WV_RFIFO-level run.
func WVSuite(opts ...SuiteOption) *Suite {
	return NewSuite([]Checker{
		NewMembership(),
		NewWVRFIFO(),
	}, opts...)
}

// OnEvent feeds one trace event to every checker, subject to the sampling
// projection (see WithSample).
func (s *Suite) OnEvent(ev Event) {
	s.seen++
	if !s.sampled(ev) {
		return
	}
	s.kept++
	if s.keep {
		s.trace = append(s.trace, ev)
	}
	for _, c := range s.checkers {
		c.OnEvent(ev)
	}
}

// Trace returns the retained trace (empty unless WithTrace was given).
func (s *Suite) Trace() []Event { return s.trace }

// Err finalizes every checker and returns an aggregate error listing all
// violations, or nil if the trace satisfies every specification.
func (s *Suite) Err() error {
	var msgs []string
	for _, c := range s.checkers {
		c.Finalize()
		for _, v := range c.Violations() {
			msgs = append(msgs, fmt.Sprintf("[%s] %s", c.Name(), v))
		}
	}
	if len(msgs) == 0 {
		return nil
	}
	return errors.New(strings.Join(msgs, "\n"))
}

// CheckLiveness evaluates Property 4.2 on a finished trace: given that the
// membership delivered view v to every member of v.set with no later
// membership events at those members (the caller's responsibility to
// arrange), every member must deliver v through the GCS, and every message
// sent after that delivery must be delivered by every member.
func CheckLiveness(trace []Event, v types.View) error {
	var msgs []string

	gcsViewAt := make(map[types.ProcID]int)
	for i, ev := range trace {
		if e, ok := ev.(EView); ok && e.View.Key() == v.Key() {
			gcsViewAt[e.P] = i
		}
	}
	for _, p := range v.Members.Sorted() {
		if _, ok := gcsViewAt[p]; !ok {
			msgs = append(msgs, fmt.Sprintf("%s never delivered GCS view %s", p, v))
		}
	}

	// Every message sent by a member after it installed v must reach every
	// member of v.
	delivered := make(map[types.ProcID]map[int64]bool)
	for _, ev := range trace {
		if e, ok := ev.(EDeliver); ok {
			row := delivered[e.P]
			if row == nil {
				row = make(map[int64]bool)
				delivered[e.P] = row
			}
			row[e.MsgID] = true
		}
	}
	for i, ev := range trace {
		e, ok := ev.(ESend)
		if !ok || !v.Members.Contains(e.P) {
			continue
		}
		at, installed := gcsViewAt[e.P]
		if !installed || i < at {
			continue
		}
		for _, q := range v.Members.Sorted() {
			if !delivered[q][e.MsgID] {
				msgs = append(msgs, fmt.Sprintf(
					"message #%d sent by %s in final view was not delivered at %s", e.MsgID, e.P, q))
			}
		}
	}

	if len(msgs) == 0 {
		return nil
	}
	return errors.New(strings.Join(msgs, "\n"))
}

// RenderTrace formats a retained trace as one event per line, prefixed with
// a sequence number — a readable whole-execution log for debugging and for
// the scenario runner's -trace flag.
func RenderTrace(trace []Event) string {
	var b strings.Builder
	for i, ev := range trace {
		fmt.Fprintf(&b, "%5d  %s\n", i, ev)
	}
	return b.String()
}
