package spec

import (
	"strings"
	"testing"

	"vsgm/internal/types"
)

// The checkers are only trustworthy if they reject bad traces; these tests
// feed hand-crafted violations of each property and expect a complaint.

func view(id types.ViewID, procs ...types.ProcID) types.View {
	sid := make(map[types.ProcID]types.StartChangeID, len(procs))
	for _, p := range procs {
		sid[p] = 1
	}
	return types.NewView(id, types.NewProcSet(procs...), sid)
}

func wantViolation(t *testing.T, c Checker, substr string) {
	t.Helper()
	c.Finalize()
	for _, v := range c.Violations() {
		if strings.Contains(v, substr) {
			return
		}
	}
	t.Fatalf("checker %s found %v, want a violation containing %q",
		c.Name(), c.Violations(), substr)
}

func wantClean(t *testing.T, c Checker) {
	t.Helper()
	c.Finalize()
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("checker %s rejected a legal trace: %v", c.Name(), v)
	}
}

func TestWVRFIFOAcceptsLegalTrace(t *testing.T) {
	c := NewWVRFIFO()
	v := view(1, "a", "b")
	c.OnEvent(EView{P: "a", View: v})
	c.OnEvent(EView{P: "b", View: v})
	c.OnEvent(ESend{P: "a", MsgID: 1})
	c.OnEvent(ESend{P: "a", MsgID: 2})
	c.OnEvent(EDeliver{P: "b", From: "a", MsgID: 1})
	c.OnEvent(EDeliver{P: "a", From: "a", MsgID: 1})
	c.OnEvent(EDeliver{P: "b", From: "a", MsgID: 2})
	c.OnEvent(EDeliver{P: "a", From: "a", MsgID: 2})
	wantClean(t, c)
}

func TestWVRFIFODetectsFIFOGap(t *testing.T) {
	c := NewWVRFIFO()
	v := view(1, "a", "b")
	c.OnEvent(EView{P: "a", View: v})
	c.OnEvent(EView{P: "b", View: v})
	c.OnEvent(ESend{P: "a", MsgID: 1})
	c.OnEvent(ESend{P: "a", MsgID: 2})
	c.OnEvent(EDeliver{P: "b", From: "a", MsgID: 2}) // skips #1
	wantViolation(t, c, "gap-free FIFO")
}

func TestWVRFIFODetectsCrossViewDelivery(t *testing.T) {
	c := NewWVRFIFO()
	v1 := view(1, "a", "b")
	v2 := view(2, "a", "b")
	c.OnEvent(EView{P: "a", View: v1})
	c.OnEvent(EView{P: "b", View: v1})
	c.OnEvent(ESend{P: "a", MsgID: 1}) // sent in v1
	c.OnEvent(EView{P: "b", View: v2})
	c.OnEvent(EDeliver{P: "b", From: "a", MsgID: 1}) // delivered in v2
	wantViolation(t, c, "within-view")
}

func TestWVRFIFODetectsNonMonotonicViews(t *testing.T) {
	c := NewWVRFIFO()
	c.OnEvent(EView{P: "a", View: view(2, "a")})
	c.OnEvent(EView{P: "a", View: view(1, "a")})
	wantViolation(t, c, "Local Monotonicity")
}

func TestWVRFIFODetectsMissingSelfInclusion(t *testing.T) {
	c := NewWVRFIFO()
	c.OnEvent(EView{P: "z", View: view(1, "a", "b")})
	wantViolation(t, c, "Self Inclusion")
}

func TestWVRFIFODetectsUnknownMessage(t *testing.T) {
	c := NewWVRFIFO()
	c.OnEvent(EDeliver{P: "a", From: "b", MsgID: 404})
	wantViolation(t, c, "never sent")
}

func TestWVRFIFODetectsWrongAttribution(t *testing.T) {
	c := NewWVRFIFO()
	v := view(1, "a", "b")
	c.OnEvent(EView{P: "a", View: v})
	c.OnEvent(EView{P: "b", View: v})
	c.OnEvent(ESend{P: "a", MsgID: 1})
	c.OnEvent(EDeliver{P: "b", From: "b", MsgID: 1})
	wantViolation(t, c, "sent by")
}

func TestWVRFIFORecoveryEpochSeparatesStreams(t *testing.T) {
	c := NewWVRFIFO()
	// A process sends in its initial view, crashes, recovers, and sends
	// again; the new message re-uses index 1 in a fresh epoch.
	c.OnEvent(ESend{P: "a", MsgID: 1})
	c.OnEvent(EDeliver{P: "a", From: "a", MsgID: 1})
	c.OnEvent(ECrash{P: "a"})
	c.OnEvent(ERecover{P: "a"})
	c.OnEvent(ESend{P: "a", MsgID: 2})
	c.OnEvent(EDeliver{P: "a", From: "a", MsgID: 2})
	wantClean(t, c)
}

func TestVSRFIFODetectsCutMismatch(t *testing.T) {
	c := NewVSRFIFO()
	v1 := view(1, "a", "b", "x")
	v2 := view(2, "a", "b")
	for _, p := range []types.ProcID{"a", "b"} {
		c.OnEvent(EView{P: p, View: v1})
	}
	// a delivers one message from x before moving; b delivers none.
	c.OnEvent(EDeliver{P: "a", From: "x", MsgID: 9})
	c.OnEvent(EView{P: "a", View: v2, Trans: types.NewProcSet("a", "b"), HasTrans: true})
	c.OnEvent(EView{P: "b", View: v2, Trans: types.NewProcSet("a", "b"), HasTrans: true})
	wantViolation(t, c, "Virtual Synchrony")
}

func TestVSRFIFOAcceptsAgreedCuts(t *testing.T) {
	c := NewVSRFIFO()
	v1 := view(1, "a", "b")
	v2 := view(2, "a", "b")
	for _, p := range []types.ProcID{"a", "b"} {
		c.OnEvent(EView{P: p, View: v1})
	}
	for _, p := range []types.ProcID{"a", "b"} {
		c.OnEvent(EDeliver{P: p, From: "a", MsgID: 1})
		c.OnEvent(EView{P: p, View: v2, Trans: types.NewProcSet("a", "b"), HasTrans: true})
	}
	wantClean(t, c)
}

func TestTransSetDetectsMissingMover(t *testing.T) {
	c := NewTransSet()
	v1 := view(1, "a", "b")
	v2 := view(2, "a", "b")
	for _, p := range []types.ProcID{"a", "b"} {
		c.OnEvent(EView{P: p, View: v1, Trans: types.NewProcSet(p), HasTrans: true})
	}
	// Both move v1 → v2 together, but a's transitional set omits b.
	c.OnEvent(EView{P: "a", View: v2, Trans: types.NewProcSet("a"), HasTrans: true})
	c.OnEvent(EView{P: "b", View: v2, Trans: types.NewProcSet("a", "b"), HasTrans: true})
	wantViolation(t, c, "missing from T")
}

func TestTransSetDetectsForeignMember(t *testing.T) {
	c := NewTransSet()
	v1 := view(1, "a", "b")
	v2 := view(2, "a", "b")
	// a moves from v1; b never installed v1 (it moves from its initial
	// view) — yet a claims b moved with it.
	c.OnEvent(EView{P: "a", View: v1, Trans: types.NewProcSet("a"), HasTrans: true})
	c.OnEvent(EView{P: "a", View: v2, Trans: types.NewProcSet("a", "b"), HasTrans: true})
	c.OnEvent(EView{P: "b", View: v2, Trans: types.NewProcSet("b"), HasTrans: true})
	wantViolation(t, c, "appears in T")
}

func TestTransSetDetectsSelfExclusion(t *testing.T) {
	c := NewTransSet()
	c.OnEvent(EView{P: "a", View: view(1, "a", "b"), Trans: types.NewProcSet(), HasTrans: true})
	wantViolation(t, c, "does not include the process itself")
}

func TestSelfDeliveryDetectsMissingOwnMessage(t *testing.T) {
	c := NewSelfDelivery()
	c.OnEvent(ESend{P: "a", MsgID: 1})
	c.OnEvent(EView{P: "a", View: view(1, "a")})
	wantViolation(t, c, "Self Delivery")
}

func TestSelfDeliveryAcceptsCompleteSelfStream(t *testing.T) {
	c := NewSelfDelivery()
	c.OnEvent(ESend{P: "a", MsgID: 1})
	c.OnEvent(EDeliver{P: "a", From: "a", MsgID: 1})
	c.OnEvent(EView{P: "a", View: view(1, "a")})
	wantClean(t, c)
}

func TestBlockingClientDetectsSendWhileBlocked(t *testing.T) {
	c := NewBlockingClient()
	c.OnEvent(EBlock{P: "a"})
	c.OnEvent(EBlockOK{P: "a"})
	c.OnEvent(ESend{P: "a", MsgID: 1})
	wantViolation(t, c, "while blocked")
}

func TestBlockingClientDetectsSpuriousAck(t *testing.T) {
	c := NewBlockingClient()
	c.OnEvent(EBlockOK{P: "a"})
	wantViolation(t, c, "without an outstanding block request")
}

func TestBlockingClientUnblocksOnView(t *testing.T) {
	c := NewBlockingClient()
	c.OnEvent(EBlock{P: "a"})
	c.OnEvent(EBlockOK{P: "a"})
	c.OnEvent(EView{P: "a", View: view(1, "a")})
	c.OnEvent(ESend{P: "a", MsgID: 1})
	wantClean(t, c)
}

func TestMembershipDetectsViewWithoutStartChange(t *testing.T) {
	c := NewMembership()
	c.OnEvent(EMView{P: "a", View: view(1, "a")})
	wantViolation(t, c, "without a preceding start_change")
}

func TestMembershipDetectsNonIncreasingCid(t *testing.T) {
	c := NewMembership()
	c.OnEvent(EMStartChange{P: "a", SC: types.StartChange{ID: 2, Set: types.NewProcSet("a")}})
	c.OnEvent(EMStartChange{P: "a", SC: types.StartChange{ID: 2, Set: types.NewProcSet("a")}})
	wantViolation(t, c, "identifiers must increase")
}

func TestMembershipDetectsStartIdMismatch(t *testing.T) {
	c := NewMembership()
	c.OnEvent(EMStartChange{P: "a", SC: types.StartChange{ID: 5, Set: types.NewProcSet("a")}})
	v := types.NewView(1, types.NewProcSet("a"), map[types.ProcID]types.StartChangeID{"a": 4})
	c.OnEvent(EMView{P: "a", View: v})
	wantViolation(t, c, "want latest cid")
}

func TestMembershipDetectsSupersetView(t *testing.T) {
	c := NewMembership()
	c.OnEvent(EMStartChange{P: "a", SC: types.StartChange{ID: 1, Set: types.NewProcSet("a")}})
	v := types.NewView(1, types.NewProcSet("a", "b"),
		map[types.ProcID]types.StartChangeID{"a": 1, "b": 1})
	c.OnEvent(EMView{P: "a", View: v})
	wantViolation(t, c, "not a subset")
}

func TestSuiteAggregatesViolations(t *testing.T) {
	s := FullSuite(WithTrace())
	s.OnEvent(EMView{P: "a", View: view(1, "a")}) // no start_change
	if err := s.Err(); err == nil {
		t.Fatal("suite accepted a bad trace")
	} else if !strings.Contains(err.Error(), "MBRSHP") {
		t.Fatalf("error %v does not name the failing spec", err)
	}
	if len(s.Trace()) != 1 {
		t.Fatalf("trace length = %d", len(s.Trace()))
	}
}

func TestCheckLivenessDetectsMissingInstall(t *testing.T) {
	v := view(1, "a", "b")
	trace := []Event{
		EView{P: "a", View: v},
		// b never installs v.
	}
	if err := CheckLiveness(trace, v); err == nil ||
		!strings.Contains(err.Error(), "never delivered") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckLivenessDetectsUndeliveredMessage(t *testing.T) {
	v := view(1, "a", "b")
	trace := []Event{
		EView{P: "a", View: v},
		EView{P: "b", View: v},
		ESend{P: "a", MsgID: 1},
		EDeliver{P: "a", From: "a", MsgID: 1},
		// b never delivers #1.
	}
	if err := CheckLiveness(trace, v); err == nil ||
		!strings.Contains(err.Error(), "not delivered at") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckLivenessAcceptsCompleteRun(t *testing.T) {
	v := view(1, "a", "b")
	trace := []Event{
		EView{P: "a", View: v},
		EView{P: "b", View: v},
		ESend{P: "a", MsgID: 1},
		EDeliver{P: "a", From: "a", MsgID: 1},
		EDeliver{P: "b", From: "a", MsgID: 1},
	}
	if err := CheckLiveness(trace, v); err != nil {
		t.Fatalf("err = %v", err)
	}
}

func TestEventStrings(t *testing.T) {
	evs := []Event{
		ESend{P: "a", MsgID: 1},
		EDeliver{P: "a", From: "b", MsgID: 1},
		EView{P: "a", View: view(1, "a"), Trans: types.NewProcSet("a"), HasTrans: true},
		EView{P: "a", View: view(1, "a")},
		EBlock{P: "a"},
		EBlockOK{P: "a"},
		EMStartChange{P: "a", SC: types.StartChange{ID: 1, Set: types.NewProcSet("a")}},
		EMView{P: "a", View: view(1, "a")},
		ECrash{P: "a"},
		ERecover{P: "a"},
	}
	for _, ev := range evs {
		if ev.Proc() != "a" {
			t.Errorf("%T proc = %s", ev, ev.Proc())
		}
		if ev.String() == "" {
			t.Errorf("%T has empty string", ev)
		}
	}
}

func TestCheckersRejectActivityAtCrashedProcesses(t *testing.T) {
	c := NewWVRFIFO()
	c.OnEvent(ECrash{P: "a"})
	c.OnEvent(ESend{P: "a", MsgID: 1})
	wantViolation(t, c, "crashed")

	c2 := NewWVRFIFO()
	c2.OnEvent(EView{P: "a", View: view(1, "a")})
	c2.OnEvent(ECrash{P: "a"})
	c2.OnEvent(EDeliver{P: "a", From: "a", MsgID: 1})
	wantViolation(t, c2, "crashed")

	c3 := NewWVRFIFO()
	c3.OnEvent(ECrash{P: "a"})
	c3.OnEvent(EView{P: "a", View: view(1, "a")})
	wantViolation(t, c3, "crashed")
}

func TestVSAndTransSetIgnoreCrashedProcesses(t *testing.T) {
	// The adapted specifications of Section 8 disable obligations while
	// crashed; events at crashed processes must not corrupt cross-process
	// state.
	vs := NewVSRFIFO()
	ts := NewTransSet()
	v1 := view(1, "a", "b")
	for _, c := range []Checker{vs, ts} {
		c.OnEvent(EView{P: "a", View: v1, Trans: types.NewProcSet("a"), HasTrans: true})
		c.OnEvent(ECrash{P: "a"})
		c.OnEvent(EDeliver{P: "a", From: "b", MsgID: 5})
		c.OnEvent(EView{P: "a", View: view(2, "a", "b"), Trans: types.NewProcSet("a"), HasTrans: true})
		c.OnEvent(ERecover{P: "a"})
		wantClean(t, c)
	}
}

func TestSuiteVariants(t *testing.T) {
	for name, s := range map[string]*Suite{
		"wv": WVSuite(),
		"vs": VSSuite(),
	} {
		s.OnEvent(EView{P: "a", View: view(1, "a", "b")})
		if err := s.Err(); err != nil {
			t.Errorf("%s suite rejected a legal view: %v", name, err)
		}
		if got := s.Trace(); got != nil {
			t.Errorf("%s suite retained a trace without WithTrace", name)
		}
	}
}

func TestRenderTrace(t *testing.T) {
	out := RenderTrace([]Event{
		ESend{P: "a", MsgID: 1},
		EDeliver{P: "b", From: "a", MsgID: 1},
	})
	if !strings.Contains(out, "0  a: send(#1)") || !strings.Contains(out, "1  b: deliver") {
		t.Errorf("rendered trace:\n%s", out)
	}
}

func TestSelfDeliveryCrashClearsCounters(t *testing.T) {
	c := NewSelfDelivery()
	c.OnEvent(ESend{P: "a", MsgID: 1})
	c.OnEvent(ECrash{P: "a"})
	c.OnEvent(ERecover{P: "a"})
	// The pre-crash send no longer obliges anything (no stable storage).
	c.OnEvent(EView{P: "a", View: view(1, "a")})
	wantClean(t, c)
}

func TestBlockingClientCrashResets(t *testing.T) {
	c := NewBlockingClient()
	c.OnEvent(EBlock{P: "a"})
	c.OnEvent(EBlockOK{P: "a"})
	c.OnEvent(ECrash{P: "a"})
	c.OnEvent(ERecover{P: "a"})
	c.OnEvent(ESend{P: "a", MsgID: 1}) // recovered clients start unblocked
	wantClean(t, c)
}

func TestMembershipCrashRecoverResetsMode(t *testing.T) {
	c := NewMembership()
	c.OnEvent(EMStartChange{P: "a", SC: types.StartChange{ID: 1, Set: types.NewProcSet("a")}})
	c.OnEvent(ECrash{P: "a"})
	c.OnEvent(ERecover{P: "a"})
	// After recovery the mode is normal again: a view without a fresh
	// start_change violates the spec.
	v := types.NewView(1, types.NewProcSet("a"), map[types.ProcID]types.StartChangeID{"a": 1})
	c.OnEvent(EMView{P: "a", View: v})
	wantViolation(t, c, "without a preceding start_change")
}
