package spec

import (
	"fmt"
	"testing"

	"vsgm/internal/types"
)

func TestSampleEveryKthDeterministicRate(t *testing.T) {
	keep := SampleEveryKth(10)
	kept := 0
	for i := 0; i < 10000; i++ {
		p := types.ProcID(fmt.Sprintf("c%05d", i))
		if keep(p) != keep(p) {
			t.Fatalf("predicate not deterministic for %s", p)
		}
		if keep(p) {
			kept++
		}
	}
	// Hash-based selection: expect ~1000 of 10000, allow generous slack.
	if kept < 700 || kept > 1300 {
		t.Fatalf("SampleEveryKth(10) kept %d of 10000, want ~1000", kept)
	}
	all := SampleEveryKth(1)
	if !all("anything") {
		t.Fatalf("SampleEveryKth(1) must keep everything")
	}
}

func TestSuiteSamplingProjectsTrace(t *testing.T) {
	only := func(p types.ProcID) func(types.ProcID) bool {
		return func(q types.ProcID) bool { return q == p }
	}
	view := func(id types.ViewID, cid types.StartChangeID, ps ...types.ProcID) types.View {
		set := types.NewProcSet(ps...)
		start := make(map[types.ProcID]types.StartChangeID)
		for _, p := range ps {
			start[p] = cid
		}
		return types.NewView(id, set, start)
	}

	// A Local Monotonicity violation at an unsampled process is not checked;
	// the identical violation at a sampled process is.
	for _, tc := range []struct {
		victim  types.ProcID
		wantErr bool
	}{{"b", false}, {"a", true}} {
		s := NewSuite([]Checker{NewMembership()}, WithTrace(), WithSample(only(tc.victim)))
		s.OnEvent(EMStartChange{P: "a", SC: types.StartChange{ID: 5, Set: types.NewProcSet("a", "b")}})
		s.OnEvent(EMStartChange{P: "b", SC: types.StartChange{ID: 5, Set: types.NewProcSet("a", "b")}})
		s.OnEvent(EMView{P: "a", View: view(2, 5, "a", "b")})
		s.OnEvent(EMView{P: "b", View: view(2, 5, "a", "b")})
		// Regressing view id at "a" only.
		s.OnEvent(EMStartChange{P: "a", SC: types.StartChange{ID: 6, Set: types.NewProcSet("a", "b")}})
		s.OnEvent(EMView{P: "a", View: view(1, 6, "a", "b")})
		err := s.Err()
		if tc.wantErr && err == nil {
			t.Fatalf("sampling %q: violation at sampled process must be reported", tc.victim)
		}
		if !tc.wantErr && err != nil {
			t.Fatalf("sampling %q: violation at unsampled process leaked through: %v", tc.victim, err)
		}
		seen, kept := s.SampleStats()
		if seen != 6 {
			t.Fatalf("seen = %d, want 6", seen)
		}
		if kept >= seen {
			t.Fatalf("kept = %d, want < seen %d", kept, seen)
		}
		if int64(len(s.Trace())) != kept {
			t.Fatalf("retained trace has %d events, want kept count %d", len(s.Trace()), kept)
		}
	}
}

func TestSuiteSamplingDropsDeliveriesFromUnsampledSenders(t *testing.T) {
	s := NewSuite([]Checker{}, WithTrace(), WithSample(func(p types.ProcID) bool { return p == "a" }))
	s.OnEvent(ESend{P: "a", MsgID: 1})
	s.OnEvent(EDeliver{P: "a", From: "a", MsgID: 1})
	s.OnEvent(EDeliver{P: "a", From: "b", MsgID: 99}) // sender unsampled: projected out
	s.OnEvent(EDeliver{P: "b", From: "a", MsgID: 1})  // receiver unsampled
	if _, kept := s.SampleStats(); kept != 2 {
		t.Fatalf("kept = %d, want 2 (own send + own delivery)", kept)
	}
}
