package spec

import "vsgm/internal/types"

// transRecord captures one view installation: process P moved from the view
// with key fromKey (member set fromSet) into view toKey, delivering
// transitional set T.
type transRecord struct {
	p       types.ProcID
	fromKey string
	fromSet types.ProcSet
	toKey   string
	toSet   types.ProcSet
	trans   types.ProcSet
}

// TransSet checks the Transitional Set property (Property 4.1): when p moves
// from view v to v', the transitional set delivered with v' is a subset of
// v.set ∩ v'.set containing p and every process that moves directly from v
// to v', and no member of v'.set that moves to v' from a different view.
//
// Because whether q "moves directly from v to v'" is only observable when q
// itself installs v', the cross-process obligations are evaluated in
// Finalize, over the complete trace.
type TransSet struct {
	base

	views   map[types.ProcID]procView
	records []transRecord
	// moved[q][toKey] = fromKey of the view q moved to toKey from.
	moved   map[types.ProcID]map[string]string
	crashed map[types.ProcID]bool
}

// NewTransSet returns a checker for TRANS_SET : SPEC.
func NewTransSet() *TransSet {
	return &TransSet{
		base:    base{name: "TRANS_SET:SPEC"},
		views:   make(map[types.ProcID]procView),
		moved:   make(map[types.ProcID]map[string]string),
		crashed: make(map[types.ProcID]bool),
	}
}

func (c *TransSet) viewOf(p types.ProcID) procView {
	if pv, ok := c.views[p]; ok {
		return pv
	}
	pv := procView{view: types.InitialView(p)}
	c.views[p] = pv
	return pv
}

// OnEvent implements Checker.
func (c *TransSet) OnEvent(ev Event) {
	switch e := ev.(type) {
	case EView:
		if c.crashed[e.P] || !e.HasTrans {
			// WV_RFIFO-level runs deliver no transitional sets.
			if !c.crashed[e.P] {
				from := c.viewOf(e.P)
				c.views[e.P] = procView{view: e.View, epoch: from.epoch}
			}
			return
		}
		from := c.viewOf(e.P)
		rec := transRecord{
			p:       e.P,
			fromKey: from.key(),
			fromSet: from.view.Members,
			toKey:   e.View.Key(),
			toSet:   e.View.Members,
			trans:   e.Trans,
		}
		c.records = append(c.records, rec)
		row := c.moved[e.P]
		if row == nil {
			row = make(map[string]string)
			c.moved[e.P] = row
		}
		row[rec.toKey] = rec.fromKey
		c.views[e.P] = procView{view: e.View, epoch: from.epoch}

	case ECrash:
		c.crashed[e.P] = true

	case ERecover:
		c.crashed[e.P] = false
		pv := c.viewOf(e.P)
		c.views[e.P] = procView{view: types.InitialView(e.P), epoch: pv.epoch + 1}
	}
}

// Finalize evaluates the cross-process conditions of Property 4.1.
func (c *TransSet) Finalize() {
	for _, rec := range c.records {
		inter := rec.toSet.Intersect(rec.fromSet)
		if !rec.trans.SubsetOf(inter) {
			c.failf("%s -> %s at %s: transitional set %s not a subset of v.set ∩ v'.set %s",
				rec.fromKey, rec.toKey, rec.p, rec.trans, inter)
		}
		if !rec.trans.Contains(rec.p) {
			c.failf("%s -> %s at %s: transitional set %s does not include the process itself",
				rec.fromKey, rec.toKey, rec.p, rec.trans)
		}
		for q := range inter {
			qFrom, qMoved := c.moved[q][rec.toKey]
			if !qMoved {
				// q never installed this view in the trace; whether it
				// "moves directly" is unobservable, so no obligation.
				continue
			}
			movesDirectly := qFrom == rec.fromKey
			inT := rec.trans.Contains(q)
			if movesDirectly && !inT {
				c.failf("%s -> %s at %s: %s moves directly from the same view but is missing from T=%s",
					rec.fromKey, rec.toKey, rec.p, q, rec.trans)
			}
			if !movesDirectly && inT {
				c.failf("%s -> %s at %s: %s moves from view %s (not %s) but appears in T=%s",
					rec.fromKey, rec.toKey, rec.p, q, qFrom, rec.fromKey, rec.trans)
			}
		}
		// Members of v'.set outside v.set can never be in T.
		for q := range rec.trans {
			if !rec.toSet.Contains(q) {
				c.failf("%s -> %s at %s: T member %s is not a member of the new view",
					rec.fromKey, rec.toKey, rec.p, q)
			}
		}
	}
}

var _ Checker = (*TransSet)(nil)
