package spec

import (
	"strings"
	"testing"

	"vsgm/internal/types"
)

func mview(p types.ProcID, vid types.ViewID, members ...types.ProcID) Event {
	return EMView{P: p, View: types.NewView(vid, types.NewProcSet(members...), nil)}
}

func TestCheckConvergenceAccepts(t *testing.T) {
	want := types.NewProcSet("a", "b")
	trace := []Event{
		mview("a", 1, "a"),      // pre-injection noise
		mview("a", 2, "a"),      // one misaligned view after the mark...
		mview("a", 3, "a", "b"), // ...then aligned
		mview("b", 3, "a", "b"), // aligned immediately
	}
	if err := CheckConvergence(trace, 1, want, want, 1); err != nil {
		t.Fatalf("legal convergence rejected: %v", err)
	}
	// A client aligned before the mark with nothing after passes vacuously.
	pre := []Event{mview("a", 3, "a", "b"), mview("b", 3, "a", "b")}
	if err := CheckConvergence(pre, len(pre), want, want, 0); err != nil {
		t.Fatalf("pre-converged trace rejected: %v", err)
	}
}

func TestCheckConvergenceRejects(t *testing.T) {
	want := types.NewProcSet("a", "b")
	cases := []struct {
		name   string
		trace  []Event
		after  int
		budget int
		frag   string
	}{
		{
			name:  "no view at all",
			trace: []Event{mview("a", 3, "a", "b")},
			frag:  "never installed",
		},
		{
			name: "final view misaligned",
			trace: []Event{
				mview("a", 3, "a", "b"),
				mview("b", 4, "b"),
			},
			frag: "final view 4",
		},
		{
			name: "budget exhausted",
			trace: []Event{
				mview("a", 1, "a"), mview("a", 2, "a"),
				mview("a", 3, "a", "b"),
				mview("b", 3, "a", "b"),
			},
			budget: 1,
			frag:   "misaligned views",
		},
		{
			name: "final views disagree",
			trace: []Event{
				mview("a", 3, "a", "b"),
				mview("b", 4, "a", "b"),
			},
			frag: "disagrees",
		},
	}
	for _, tc := range cases {
		err := CheckConvergence(tc.trace, tc.after, want, want, tc.budget)
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: err = %v, want fragment %q", tc.name, err, tc.frag)
		}
	}
}
